// Figure 5: network perturbation analysis.
//
// Paper: Iperf (UDP) measures available bandwidth between two cluster nodes
// while dproc runs on 0..8 nodes. Bandwidth drops by less than 0.5% with a
// 1 s update period and stays essentially constant for 2 s and the
// differential filter. Our reproduction shows the same ordering; the
// absolute drop is smaller because only the real monitoring bytes compete
// for the measured links (see EXPERIMENTS.md).
#include "bench_common.hpp"
#include "dproc/workload/iperf.hpp"

namespace dproc::bench {
namespace {

double run_cell(std::size_t dproc_nodes, MonitorConfig config) {
  sim::Engine engine;
  core::ClusterConfig cluster_config = paper_cluster(8, config);
  cluster_config.dproc_nodes.emplace();
  for (std::size_t i = 0; i < dproc_nodes; ++i) {
    cluster_config.dproc_nodes->push_back(i);
  }
  core::Cluster cluster{engine, cluster_config};
  if (dproc_nodes > 0) {
    cluster.start_dproc();
    apply_monitor_config(cluster, config);
  }
  engine.run_until(SimTime{} + seconds(3.0));

  // Iperf saturates the node0 -> node1 path; goodput measured at node1.
  workload::IperfConfig iperf;
  iperf.rate_bps = 100e6;  // offered above line rate, like iperf -b 100M
  workload::IperfReceiver receiver{cluster.nic(1), iperf.port};
  workload::IperfSender sender{cluster.nic(0), 1, iperf};
  sender.start();
  engine.run_until(SimTime{} + seconds(8.0));  // let the queue reach steady state
  receiver.checkpoint();
  engine.run_until(SimTime{} + seconds(28.0));
  return receiver.goodput_bps_since_checkpoint() / 1e6;
}

}  // namespace
}  // namespace dproc::bench

int main() {
  using namespace dproc::bench;
  Table table({"nodes", "update_period_1s", "update_period_2s",
               "differential_filter"});
  for (std::size_t n = 0; n <= 8; ++n) {
    table.add_row({static_cast<double>(n),
                   run_cell(n, MonitorConfig::kPeriod1s),
                   run_cell(n, MonitorConfig::kPeriod2s),
                   run_cell(n, MonitorConfig::kDifferential)});
  }
  table.print("fig5_iperf_goodput_mbps_vs_dproc_nodes");
  std::printf(
      "\npaper: ~96 Mbps available; <=0.5%% drop at 1 s period, flat for 2 s\n"
      "       and the differential filter (Figure 5).\n");
  return 0;
}
