// Figure 4: CPU perturbation analysis.
//
// Paper: linpack runs on one node while dproc runs on 0..8 nodes; measured
// Mflops decrease only slightly with cluster size, least with the
// differential filter (17.4 unperturbed, roughly 17.0-17.2 at 8 nodes).
#include "bench_common.hpp"
#include "dproc/workload/linpack.hpp"

namespace dproc::bench {
namespace {

double run_cell(std::size_t dproc_nodes, MonitorConfig config) {
  sim::Engine engine;
  core::ClusterConfig cluster_config = paper_cluster(8, config);
  cluster_config.dproc_nodes.emplace();
  for (std::size_t i = 0; i < dproc_nodes; ++i) {
    cluster_config.dproc_nodes->push_back(i);
  }
  const bool any_dproc = dproc_nodes > 0;

  core::Cluster cluster{engine, cluster_config};
  if (any_dproc) {
    cluster.start_dproc();
    apply_monitor_config(cluster, config);
  }

  // Warm up channels and monitors, then measure linpack over 30 s.
  engine.run_until(SimTime{} + seconds(5.0));
  workload::LinpackTask linpack{cluster.host(0)};
  linpack.checkpoint();
  engine.run_until(SimTime{} + seconds(35.0));
  return linpack.mflops_since_checkpoint();
}

}  // namespace
}  // namespace dproc::bench

int main() {
  using namespace dproc::bench;
  Table table({"nodes", "update_period_1s", "update_period_2s",
               "differential_filter"});
  for (std::size_t n = 0; n <= 8; ++n) {
    table.add_row({static_cast<double>(n),
                   run_cell(n, MonitorConfig::kPeriod1s),
                   run_cell(n, MonitorConfig::kPeriod2s),
                   run_cell(n, MonitorConfig::kDifferential)});
  }
  table.print("fig4_linpack_mflops_vs_dproc_nodes");
  std::printf(
      "\npaper: 17.4 Mflops unperturbed; slight decrease with node count;\n"
      "       differential filter least affected (Figure 4).\n");
  return 0;
}
