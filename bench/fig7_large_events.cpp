// Figure 7: submission overhead with 5 KB monitoring events.
//
// Paper: same experiment as Figure 6 but with events of average size 5 KB;
// overheads grow (to ~4.5-5 ms at 8 nodes, 1 s period) while the curves
// keep the Figure 6 shape.
#include "bench_common.hpp"

namespace dproc::bench {
namespace {

// Five modules of 250 metrics each: one monitoring event is 250 x 20 B of
// samples plus framing, ~5 KB on the wire.
void bulk_modules(dproc::core::DMon& dmon, dproc::host::Host&,
                  dproc::net::Nic&) {
  for (int m = 0; m < 5; ++m) {
    dmon.register_module(std::make_unique<dproc::core::SyntheticMonitor>(
        "bulk" + std::to_string(m), 250));
  }
}

double run_cell(std::size_t nodes, MonitorConfig config) {
  sim::Engine engine;
  core::ClusterConfig cluster_config = paper_cluster(nodes, config);
  cluster_config.module_factory = bulk_modules;
  core::Cluster cluster{engine, cluster_config};
  cluster.start_dproc();
  apply_monitor_config(cluster, config);

  const double period = cluster_config.dmon.poll_period.sec();
  engine.run_until(SimTime{} + seconds(5.0 * period + 3.0));
  core::DMon& dmon = *cluster.dmon(0);
  StreamingStats costs;
  const std::uint64_t start_count = dmon.submit_cost_us().count();
  while (dmon.submit_cost_us().count() < start_count + 100) {
    engine.run_for(seconds(period));
    costs.add(dmon.last_poll().submit_cost.us());
  }
  return costs.mean();
}

}  // namespace
}  // namespace dproc::bench

int main() {
  using namespace dproc::bench;
  Table table({"nodes", "update_period_1s", "update_period_2s",
               "differential_filter"});
  for (std::size_t n = 1; n <= 8; ++n) {
    table.add_row({static_cast<double>(n),
                   run_cell(n, MonitorConfig::kPeriod1s),
                   run_cell(n, MonitorConfig::kPeriod2s),
                   run_cell(n, MonitorConfig::kDifferential)});
  }
  table.print("fig7_submit_overhead_us_5kb_events");
  std::printf(
      "\npaper: up to ~4.5-5 ms at 8 nodes (1 s period) with 5 KB events,\n"
      "       same shape as Figure 6 (Figure 7).\n");
  return 0;
}
