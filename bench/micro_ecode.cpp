// E-code microbenchmarks (wall-clock, google-benchmark).
//
// Quantifies the paper's §3 claim that parameters are "cheaper" than
// dynamic filters: compilation is the dominant one-time cost, execution a
// small per-publication cost, and parameter evaluation is cheaper than
// either.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>

#include "alloc_counter.hpp"
#include "bench_json.hpp"
#include "dproc/core/tuning.hpp"
#include "dproc/ecode/ecode.hpp"

namespace {

using dproc::ecode::CompileEnv;
using dproc::ecode::Filter;
using dproc::ecode::Sample;

const char* kFigure3Filter = R"({
  int i = 0;
  if (input[LOADAVG].value > 2) {
    output[i] = input[LOADAVG];
    i = i + 1;
  }
  if (input[DISKUSAGE].value > 10000 && input[FREEMEM].value < 50e6) {
    output[i] = input[DISKUSAGE];
    i = i + 1;
    output[i] = input[FREEMEM];
    i = i + 1;
  }
  if (input[CACHE_MISS].value > input[CACHE_MISS].last_value_sent) {
    output[i] = input[CACHE_MISS];
    i = i + 1;
  }
})";

CompileEnv paper_env() {
  CompileEnv env;
  env.constants = {{"LOADAVG", 0}, {"DISKUSAGE", 1}, {"FREEMEM", 2},
                   {"CACHE_MISS", 3}};
  return env;
}

std::vector<Sample> paper_input() {
  return {{0, 2.5, 0.4, 0}, {1, 20'000, 220, 0}, {2, 41e6, 310e6, 0},
          {3, 8'812'004, 8'611'220, 0}};
}

void BM_CompileFigure3Filter(benchmark::State& state) {
  const CompileEnv env = paper_env();
  for (auto _ : state) {
    auto filter = Filter::compile(kFigure3Filter, env);
    benchmark::DoNotOptimize(filter);
  }
}
BENCHMARK(BM_CompileFigure3Filter);

void BM_ExecuteFigure3Filter(benchmark::State& state) {
  auto filter = Filter::compile(kFigure3Filter, paper_env()).value();
  const auto input = paper_input();
  for (auto _ : state) {
    auto result = filter.run(input);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExecuteFigure3Filter);

void BM_VmInstructionThroughput(benchmark::State& state) {
  // A tight counted loop; reports instructions/second of the interpreter.
  auto filter =
      Filter::compile("int s = 0; for (int i = 0; i < 10000; ++i) s += i;")
          .value();
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    auto result = filter.run({});
    instructions += result.value().instructions_executed;
  }
  state.counters["insns_per_s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmInstructionThroughput);

void BM_CompileScalesWithSource(benchmark::State& state) {
  // Source size grows linearly with the statement count.
  std::string source = "int acc = 0;\n";
  for (int i = 0; i < state.range(0); ++i) {
    source += "acc = acc + " + std::to_string(i) + ";\n";
  }
  const CompileEnv env;
  for (auto _ : state) {
    auto filter = Filter::compile(source, env);
    benchmark::DoNotOptimize(filter);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * source.size()));
}
BENCHMARK(BM_CompileScalesWithSource)->Arg(8)->Arg(64)->Arg(512);

void BM_ParameterDecision(benchmark::State& state) {
  // The parameter path the paper calls "cheaper": thresholds + periods,
  // no compiled code involved.
  std::map<std::string, dproc::core::MetricId> ids{
      {"loadavg", 0}, {"diskusage", 1}, {"freemem", 2}, {"cache_miss", 3}};
  dproc::core::PublisherTuning tuning{dproc::seconds(1.0), ids};
  dproc::core::TuningConfig config;
  config.thresholds.push_back(
      {"loadavg", dproc::core::ThresholdKind::kAbove, 2.0, 0});
  config.differential_pct = 15.0;
  (void)tuning.apply(config);

  std::vector<dproc::core::MetricSample> samples{
      {0, 2.5, {}}, {1, 20'000, {}}, {2, 41e6, {}}, {3, 8'812'004, {}}};
  dproc::SimTime now;
  for (auto _ : state) {
    now = now + dproc::seconds(1.0);
    auto decision = tuning.decide(samples, now);
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_ParameterDecision);

void BM_FilterDecision(benchmark::State& state) {
  // The same policy expressed as an E-code filter, through PublisherTuning.
  std::map<std::string, dproc::core::MetricId> ids{
      {"loadavg", 0}, {"diskusage", 1}, {"freemem", 2}, {"cache_miss", 3}};
  dproc::core::PublisherTuning tuning{dproc::seconds(1.0), ids};
  dproc::core::TuningConfig config;
  config.filter_source = kFigure3Filter;
  (void)tuning.apply(config);

  std::vector<dproc::core::MetricSample> samples{
      {0, 2.5, {}}, {1, 20'000, {}}, {2, 41e6, {}}, {3, 8'812'004, {}}};
  dproc::SimTime now;
  for (auto _ : state) {
    now = now + dproc::seconds(1.0);
    auto decision = tuning.decide(samples, now);
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_FilterDecision);

// --- BENCH_micro_ecode.json: the perf-trajectory numbers -------------------
// Measured with plain chrono timing (not google-benchmark) so the loop is
// exactly the steady-state d-mon pattern: one persistent Vm, one reused
// FilterResult, one filter evaluation per "poll".

dproc::bench::JsonBenchEntry measure_steady_state(std::uint64_t iters) {
  using Clock = std::chrono::steady_clock;
  auto filter = Filter::compile(kFigure3Filter, paper_env()).value();
  const auto input = paper_input();

  dproc::ecode::Vm vm;
  dproc::ecode::FilterResult result;
  for (int i = 0; i < 1000; ++i) {  // warm the scratch arenas
    (void)vm.run(filter.bytecode(), input, result);
  }

  const std::uint64_t allocs_before = dproc::bench::alloc_count();
  const Clock::time_point start = Clock::now();
  std::uint64_t insns = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    (void)vm.run(filter.bytecode(), input, result);
    insns += result.instructions_executed;
  }
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - start)
                              .count());
  const std::uint64_t allocs = dproc::bench::alloc_count() - allocs_before;
  benchmark::DoNotOptimize(insns);

  dproc::bench::JsonBenchEntry entry;
  entry.name = "filter_eval_steady_state";
  entry.iterations = iters;
  entry.ns_per_event = ns / static_cast<double>(iters);
  entry.ops_per_sec = 1e9 / entry.ns_per_event;
  entry.allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(iters);
  return entry;
}

dproc::bench::JsonBenchEntry measure_pooled(std::uint64_t iters) {
  // The pooled path: no caller-owned Vm, but the per-channel VmPool keeps
  // the leased Vm's arenas warm — steady-state latency at fresh-VM call
  // convenience.
  using Clock = std::chrono::steady_clock;
  auto filter = Filter::compile(kFigure3Filter, paper_env()).value();
  const auto input = paper_input();

  dproc::ecode::VmPool pool;
  dproc::ecode::FilterResult result;
  for (int i = 0; i < 1000; ++i) {  // warm the pool's single lease slot
    (void)filter.run(pool, input, result);
  }

  const std::uint64_t allocs_before = dproc::bench::alloc_count();
  const Clock::time_point start = Clock::now();
  std::uint64_t insns = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    (void)filter.run(pool, input, result);
    insns += result.instructions_executed;
  }
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - start)
                              .count());
  const std::uint64_t allocs = dproc::bench::alloc_count() - allocs_before;
  benchmark::DoNotOptimize(insns);

  dproc::bench::JsonBenchEntry entry;
  entry.name = "filter_eval_pooled";
  entry.iterations = iters;
  entry.ns_per_event = ns / static_cast<double>(iters);
  entry.ops_per_sec = 1e9 / entry.ns_per_event;
  entry.allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(iters);
  return entry;
}

dproc::bench::JsonBenchEntry measure_per_call(std::uint64_t iters) {
  // The compatibility path (fresh result per call), for comparison.
  using Clock = std::chrono::steady_clock;
  auto filter = Filter::compile(kFigure3Filter, paper_env()).value();
  const auto input = paper_input();

  const std::uint64_t allocs_before = dproc::bench::alloc_count();
  const Clock::time_point start = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    auto result = filter.run(input);
    benchmark::DoNotOptimize(result);
  }
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - start)
                              .count());
  const std::uint64_t allocs = dproc::bench::alloc_count() - allocs_before;

  dproc::bench::JsonBenchEntry entry;
  entry.name = "filter_eval_fresh_vm";
  entry.iterations = iters;
  entry.ns_per_event = ns / static_cast<double>(iters);
  entry.ops_per_sec = 1e9 / entry.ns_per_event;
  entry.allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(iters);
  return entry;
}

dproc::bench::JsonBenchEntry measure_fresh_pooled(std::uint64_t iters) {
  // The fresh-call shape d-mon uses per channel: every evaluation acquires
  // a lease from the per-channel pool (no caller-owned Vm or result) and
  // releases it. Once the single slot has warmed up this must sit within
  // 1.5x of the persistent-Vm steady state with zero heap traffic — the
  // exit-code bar in main().
  using Clock = std::chrono::steady_clock;
  auto filter = Filter::compile(kFigure3Filter, paper_env()).value();
  const auto input = paper_input();

  dproc::ecode::VmPool pool;
  for (int i = 0; i < 1000; ++i) {  // warm the pool's single lease slot
    auto lease = filter.eval(pool, input);
    benchmark::DoNotOptimize(lease);
  }

  const std::uint64_t allocs_before = dproc::bench::alloc_count();
  const Clock::time_point start = Clock::now();
  std::uint64_t insns = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    auto lease = filter.eval(pool, input);
    insns += lease.value().result().instructions_executed;
  }
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - start)
                              .count());
  const std::uint64_t allocs = dproc::bench::alloc_count() - allocs_before;
  benchmark::DoNotOptimize(insns);

  dproc::bench::JsonBenchEntry entry;
  entry.name = "filter_eval_fresh_pooled";
  entry.iterations = iters;
  entry.ns_per_event = ns / static_cast<double>(iters);
  entry.ops_per_sec = 1e9 / entry.ns_per_event;
  entry.allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(iters);
  return entry;
}

dproc::bench::JsonBenchEntry measure_dispatch(dproc::ecode::VmDispatch tier,
                                              const char* name,
                                              std::uint64_t iters) {
  // Interpreter throughput over a heterogeneous filter corpus, evaluated
  // round-robin the way a d-mon hosting many channels (each with its own
  // filter) interleaves them. The varied opcode mix is what separates the
  // tiers: the switch loop funnels every handler transition through one
  // shared indirect branch whose history the interleaving scrambles, while
  // the threaded tier's per-handler branches keep per-opcode-pair history.
  // One corpus pass executes ~12k VM instructions; scale the outer count
  // down accordingly.
  using Clock = std::chrono::steady_clock;
  // Control-flow-dense filters (counters, rate accumulators, hysteresis
  // state machines): the handler work is cheap, so dispatch — the thing
  // the tier changes — is what gets measured.
  static const char* const kCorpus[] = {
      // counted integer loop (the classic dispatch stressor)
      "int s = 0; for (int i = 0; i < 1000; ++i) s += i; return s;",
      // xorshift-style bit mixing
      "int h = 12345;\n"
      "for (int i = 0; i < 600; ++i) {\n"
      "  h = h ^ (h << 13); h = h ^ (h >> 7); h = h + i;\n"
      "}\n"
      "return h % 65536;",
      // branchy ternaries and modulo
      "int a = 0; int b = 1;\n"
      "for (int i = 1; i < 500; ++i) {\n"
      "  a = (i % 3 == 0) ? a + b : a - 1;\n"
      "  b = b + (a < 0 ? 1 : 2);\n"
      "}\n"
      "return a + b;",
      // hysteresis state machine over a synthetic level
      "int state = 0; int flips = 0; int level = 0;\n"
      "for (int i = 0; i < 500; ++i) {\n"
      "  level = (level * 13 + 7) % 100;\n"
      "  if (state == 0) { if (level > 80) { state = 1; flips = flips + 1; } }\n"
      "  else { if (level < 20) { state = 0; flips = flips + 1; } }\n"
      "}\n"
      "return flips * 2 + state;",
      // sample traffic: the paper's threshold filter over an input frame
      "int sent = 0;\n"
      "for (int i = 0; i < 8; ++i) {\n"
      "  if (input[i].value > input[i].last_value_sent * 1.05) {\n"
      "    output[i] = input[i]; sent = sent + 1;\n"
      "  }\n"
      "}\n"
      "return sent;",
  };
  std::vector<Filter> corpus;
  for (const char* source : kCorpus) {
    corpus.push_back(Filter::compile(source).value());
  }
  std::vector<Sample> input;
  for (int i = 0; i < 8; ++i) {
    Sample s;
    s.id = i;
    s.value = 100.0 + i;
    s.last_value_sent = (i % 2 == 0) ? 90.0 : 100.0 + i;
    input.push_back(s);
  }
  const std::uint64_t outer = std::max<std::uint64_t>(iters / 200, 8);

  dproc::ecode::Vm vm;
  vm.set_dispatch(tier);
  dproc::ecode::FilterResult result;
  for (const Filter& filter : corpus) {
    (void)vm.run(filter.bytecode(), input, result);
  }

  const Clock::time_point start = Clock::now();
  std::uint64_t insns = 0;
  for (std::uint64_t i = 0; i < outer; ++i) {
    for (const Filter& filter : corpus) {
      (void)vm.run(filter.bytecode(), input, result);
      insns += result.instructions_executed;
    }
  }
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - start)
                              .count());

  dproc::bench::JsonBenchEntry entry;
  entry.name = name;
  entry.iterations = outer;
  entry.ns_per_event = ns / static_cast<double>(outer);
  entry.ops_per_sec = 1e9 / entry.ns_per_event;
  entry.extras.emplace_back("insns_per_s",
                            static_cast<double>(insns) * 1e9 / ns);
  return entry;
}

/// Best-of-N to keep the exit-code ratio bars stable at smoke scale.
template <typename Fn>
dproc::bench::JsonBenchEntry best_of(int n, Fn measure) {
  dproc::bench::JsonBenchEntry best = measure();
  for (int i = 1; i < n; ++i) {
    dproc::bench::JsonBenchEntry candidate = measure();
    if (candidate.ns_per_event < best.ns_per_event) best = candidate;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const std::uint64_t iters = dproc::bench::bench_iterations(2'000'000);
  auto steady = best_of(3, [&] { return measure_steady_state(iters); });
  auto pooled = best_of(3, [&] { return measure_pooled(iters); });
  auto fresh = best_of(3, [&] { return measure_fresh_pooled(iters); });
  auto tier_switch = best_of(3, [&] {
    return measure_dispatch(dproc::ecode::VmDispatch::kSwitch,
                            "filter_eval_switch", iters);
  });
  auto tier_threaded = best_of(3, [&] {
    return measure_dispatch(dproc::ecode::VmDispatch::kThreaded,
                            "filter_eval_threaded", iters);
  });
  const double speedup = tier_switch.ns_per_event / tier_threaded.ns_per_event;
  tier_threaded.extras.emplace_back("speedup_vs_switch", speedup);
  tier_threaded.extras.emplace_back(
      "threaded_available",
      dproc::ecode::Vm::threaded_available() ? 1.0 : 0.0);
  const double fresh_ratio = fresh.ns_per_event / steady.ns_per_event;
  fresh.extras.emplace_back("ratio_vs_steady", fresh_ratio);

  const bool ok = dproc::bench::write_bench_json(
      "micro_ecode", {steady, pooled, fresh, measure_per_call(iters),
                      tier_switch, tier_threaded});
  if (!ok) return 1;

  // Exit-code bars: the pooled fresh-call path must stay within 1.5x of
  // steady state and allocation-free once warm. (The threaded-vs-switch
  // speedup is recorded in the JSON but not exit-enforced — it varies with
  // host branch predictors more than with regressions in this repo.)
  if (fresh_ratio > 1.5) {
    std::fprintf(stderr,
                 "PERF BAR FAILED: fresh_pooled %.1f ns vs steady %.1f ns "
                 "(ratio %.2f > 1.5)\n",
                 fresh.ns_per_event, steady.ns_per_event, fresh_ratio);
    return 1;
  }
  if (fresh.allocs_per_event != 0.0) {
    std::fprintf(stderr,
                 "PERF BAR FAILED: fresh_pooled allocates (%.4f/event)\n",
                 fresh.allocs_per_event);
    return 1;
  }
  return 0;
}
