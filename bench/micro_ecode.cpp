// E-code microbenchmarks (wall-clock, google-benchmark).
//
// Quantifies the paper's §3 claim that parameters are "cheaper" than
// dynamic filters: compilation is the dominant one-time cost, execution a
// small per-publication cost, and parameter evaluation is cheaper than
// either.
#include <benchmark/benchmark.h>

#include "dproc/core/tuning.hpp"
#include "dproc/ecode/ecode.hpp"

namespace {

using dproc::ecode::CompileEnv;
using dproc::ecode::Filter;
using dproc::ecode::Sample;

const char* kFigure3Filter = R"({
  int i = 0;
  if (input[LOADAVG].value > 2) {
    output[i] = input[LOADAVG];
    i = i + 1;
  }
  if (input[DISKUSAGE].value > 10000 && input[FREEMEM].value < 50e6) {
    output[i] = input[DISKUSAGE];
    i = i + 1;
    output[i] = input[FREEMEM];
    i = i + 1;
  }
  if (input[CACHE_MISS].value > input[CACHE_MISS].last_value_sent) {
    output[i] = input[CACHE_MISS];
    i = i + 1;
  }
})";

CompileEnv paper_env() {
  CompileEnv env;
  env.constants = {{"LOADAVG", 0}, {"DISKUSAGE", 1}, {"FREEMEM", 2},
                   {"CACHE_MISS", 3}};
  return env;
}

std::vector<Sample> paper_input() {
  return {{0, 2.5, 0.4, 0}, {1, 20'000, 220, 0}, {2, 41e6, 310e6, 0},
          {3, 8'812'004, 8'611'220, 0}};
}

void BM_CompileFigure3Filter(benchmark::State& state) {
  const CompileEnv env = paper_env();
  for (auto _ : state) {
    auto filter = Filter::compile(kFigure3Filter, env);
    benchmark::DoNotOptimize(filter);
  }
}
BENCHMARK(BM_CompileFigure3Filter);

void BM_ExecuteFigure3Filter(benchmark::State& state) {
  auto filter = Filter::compile(kFigure3Filter, paper_env()).value();
  const auto input = paper_input();
  for (auto _ : state) {
    auto result = filter.run(input);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_ExecuteFigure3Filter);

void BM_VmInstructionThroughput(benchmark::State& state) {
  // A tight counted loop; reports instructions/second of the interpreter.
  auto filter =
      Filter::compile("int s = 0; for (int i = 0; i < 10000; ++i) s += i;")
          .value();
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    auto result = filter.run({});
    instructions += result.value().instructions_executed;
  }
  state.counters["insns_per_s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_VmInstructionThroughput);

void BM_CompileScalesWithSource(benchmark::State& state) {
  // Source size grows linearly with the statement count.
  std::string source = "int acc = 0;\n";
  for (int i = 0; i < state.range(0); ++i) {
    source += "acc = acc + " + std::to_string(i) + ";\n";
  }
  const CompileEnv env;
  for (auto _ : state) {
    auto filter = Filter::compile(source, env);
    benchmark::DoNotOptimize(filter);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(
      state.iterations() * source.size()));
}
BENCHMARK(BM_CompileScalesWithSource)->Arg(8)->Arg(64)->Arg(512);

void BM_ParameterDecision(benchmark::State& state) {
  // The parameter path the paper calls "cheaper": thresholds + periods,
  // no compiled code involved.
  std::map<std::string, dproc::core::MetricId> ids{
      {"loadavg", 0}, {"diskusage", 1}, {"freemem", 2}, {"cache_miss", 3}};
  dproc::core::PublisherTuning tuning{dproc::seconds(1.0), ids};
  dproc::core::TuningConfig config;
  config.thresholds.push_back(
      {"loadavg", dproc::core::ThresholdKind::kAbove, 2.0, 0});
  config.differential_pct = 15.0;
  (void)tuning.apply(config);

  std::vector<dproc::core::MetricSample> samples{
      {0, 2.5, {}}, {1, 20'000, {}}, {2, 41e6, {}}, {3, 8'812'004, {}}};
  dproc::SimTime now;
  for (auto _ : state) {
    now = now + dproc::seconds(1.0);
    auto decision = tuning.decide(samples, now);
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_ParameterDecision);

void BM_FilterDecision(benchmark::State& state) {
  // The same policy expressed as an E-code filter, through PublisherTuning.
  std::map<std::string, dproc::core::MetricId> ids{
      {"loadavg", 0}, {"diskusage", 1}, {"freemem", 2}, {"cache_miss", 3}};
  dproc::core::PublisherTuning tuning{dproc::seconds(1.0), ids};
  dproc::core::TuningConfig config;
  config.filter_source = kFigure3Filter;
  (void)tuning.apply(config);

  std::vector<dproc::core::MetricSample> samples{
      {0, 2.5, {}}, {1, 20'000, {}}, {2, 41e6, {}}, {3, 8'812'004, {}}};
  dproc::SimTime now;
  for (auto _ : state) {
    now = now + dproc::seconds(1.0);
    auto decision = tuning.decide(samples, now);
    benchmark::DoNotOptimize(decision);
  }
}
BENCHMARK(BM_FilterDecision);

}  // namespace

BENCHMARK_MAIN();
