// Ablation: how much monitoring traffic does each customization mechanism
// remove? (The design-choice study DESIGN.md calls out: parameters vs the
// differential filter vs a dynamic E-code filter.)
//
// An 8-node cluster idles except for a load spike on one node mid-run; we
// count the events and bytes node 0 publishes under each configuration,
// plus whether the spike was still reported (usefulness check).
#include <memory>

#include "bench_common.hpp"
#include "dproc/workload/linpack.hpp"

namespace dproc::bench {
namespace {

struct AblationResult {
  double events_per_s;
  double wire_kbps;
  bool spike_visible;  // did node 7 hear about node 0's load spike?
};

AblationResult run_config(const std::string& control) {
  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 8;
  core::Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(3.0));

  if (!control.empty()) {
    auto parsed = core::parse_control_commands(control);
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      (void)cluster.dmon(i)->apply_tuning(parsed.value());
    }
  }
  engine.run_until(SimTime{} + seconds(10.0));

  const std::uint64_t bytes_before = cluster.nic(0).stats().bytes_sent;
  std::uint64_t events = 0;
  const double window_sec = 60.0;

  // Load spike on node 0 from t=30 for 20 s.
  std::vector<std::unique_ptr<workload::LinpackTask>> spike;
  engine.schedule_after(seconds(20.0), [&] {
    for (int i = 0; i < 3; ++i) {
      spike.push_back(std::make_unique<workload::LinpackTask>(cluster.host(0)));
    }
  });
  engine.schedule_after(seconds(40.0), [&] { spike.clear(); });

  const SimTime end = engine.now() + seconds(window_sec);
  double max_seen_loadavg = 0.0;
  while (engine.now() < end) {
    engine.run_for(seconds(1.0));
    events += cluster.dmon(0)->last_poll().events_submitted;
    const core::RemoteMetric* loadavg =
        cluster.dmon(7)->remote_metric(0, "loadavg");
    if (loadavg != nullptr) {
      max_seen_loadavg = std::max(max_seen_loadavg, loadavg->value);
    }
  }

  const std::uint64_t bytes = cluster.nic(0).stats().bytes_sent - bytes_before;
  const bool spike_visible = max_seen_loadavg > 1.5;
  return AblationResult{static_cast<double>(events) / window_sec,
                        static_cast<double>(bytes) * 8.0 / window_sec / 1e3,
                        spike_visible};
}

}  // namespace
}  // namespace dproc::bench

int main() {
  using namespace dproc::bench;

  struct Config {
    const char* name;
    const char* control;
  };
  const Config configs[] = {
      {"baseline_1s", ""},
      {"period_4s", "period 4"},
      {"threshold_loadavg", "threshold loadavg above 1\n"
                            "threshold cpu_util above 0.5\n"},
      {"differential_15pct", "differential 15%"},
      {"ecode_filter", "filter {\n"
                       "  if (input[LOADAVG].value > 1) {\n"
                       "    output[0] = input[LOADAVG];\n"
                       "  }\n"
                       "  if (input[LOADAVG].value >\n"
                       "      input[LOADAVG].last_value_sent * 1.1 ||\n"
                       "      input[LOADAVG].value <\n"
                       "      input[LOADAVG].last_value_sent * 0.9) {\n"
                       "    output[1] = input[LOADAVG];\n"
                       "  }\n"
                       "}\n"},
  };

  Table table({"config", "events_per_s", "wire_kbps", "spike_visible"});
  int index = 0;
  std::printf("configs: 0=baseline_1s 1=period_4s 2=threshold_loadavg "
              "3=differential_15pct 4=ecode_filter\n");
  for (const Config& config : configs) {
    const AblationResult result = run_config(config.control);
    table.add_row({static_cast<double>(index++), result.events_per_s,
                   result.wire_kbps, result.spike_visible ? 1.0 : 0.0});
  }
  table.print("ablation_filter_traffic_reduction");
  std::printf(
      "\nEach mechanism trades traffic for information: periods cut volume\n"
      "uniformly, thresholds and the differential filter cut it adaptively,\n"
      "and the E-code filter expresses an application-specific rule while\n"
      "still reporting the load spike.\n");
  return 0;
}
