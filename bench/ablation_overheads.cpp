// Sensitivity of the Figure 4 result to the overhead calibration.
//
// DESIGN.md documents one free parameter without a measured anchor in the
// paper: collateral_cycles_per_event (cache pollution and deferred kernel
// work around each monitoring event). This ablation sweeps it and reports
// the linpack Mflops at 8 nodes, showing (a) the measured submit cost —
// which the paper anchors — is unaffected, and (b) how the knob maps onto
// the Figure 4 end point, so readers can judge the calibration.
#include "bench_common.hpp"
#include "dproc/workload/linpack.hpp"

namespace dproc::bench {
namespace {

struct Point {
  double mflops;
  double submit_us;
};

Point run_cell(double collateral_cycles) {
  sim::Engine engine;
  core::ClusterConfig config = paper_cluster(8, MonitorConfig::kPeriod1s);
  config.dmon.overheads.collateral_cycles_per_event = collateral_cycles;
  core::Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(5.0));
  workload::LinpackTask linpack{cluster.host(0)};
  linpack.checkpoint();
  engine.run_until(SimTime{} + seconds(35.0));
  return Point{linpack.mflops_since_checkpoint(),
               cluster.dmon(0)->submit_cost_us().mean()};
}

}  // namespace
}  // namespace dproc::bench

int main() {
  using namespace dproc::bench;
  Table table({"collateral_cycles_per_event", "linpack_mflops_8_nodes",
               "measured_submit_us"});
  for (double cycles : {0.0, 10e3, 20e3, 40e3, 80e3, 160e3}) {
    const Point point = run_cell(cycles);
    table.add_row({cycles, point.mflops, point.submit_us});
  }
  table.print("ablation_collateral_overhead_sensitivity");
  std::printf(
      "\nThe default (40k cycles/event) lands Figure 4's 8-node endpoint\n"
      "near the paper's ~17.0-17.1 Mflops; the rdtsc-style measured submit\n"
      "cost is independent of the knob, as in the real system where cache\n"
      "refill costs land outside the timed region.\n");
  return 0;
}
