// Figure 11: combined CPU + network perturbation; which resources should
// the dynamic filter monitor?
//
// Paper: the client suffers k linpack threads and 10k Mbps of Iperf
// perturbation (k = 1..8). Three dynamic filters are compared: one that
// monitors only CPU, one only the network, and one that uses CPU, network,
// and disk information. Single-resource adaptation backfires — offloading
// the CPU inflates the stream (network, disk), fitting the network inflates
// client processing — so the hybrid filter wins.
#include <memory>

#include "bench_common.hpp"
#include "dproc/smartpointer/client.hpp"
#include "dproc/smartpointer/server.hpp"
#include "dproc/workload/iperf.hpp"
#include "dproc/workload/linpack.hpp"

namespace dproc::bench {
namespace {

using smartpointer::PolicyInputs;

core::ClusterConfig trunk_cluster() {
  core::ClusterConfig config;
  config.node_count = 4;
  config.trunk_split = 2;
  config.dmon.poll_period = seconds(1.0);
  return config;
}

double run_cell(PolicyInputs policy, int k) {
  sim::Engine engine;
  core::Cluster cluster{engine, trunk_cluster()};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(3.0));

  smartpointer::ServerConfig server_config;
  server_config.frame_rate_hz = 1.25;
  server_config.atom_count = 120'000;  // 3 MB full frames
  server_config.policy = policy;
  smartpointer::Server server{cluster.host(0), cluster.nic(0),
                              cluster.dmon(0), server_config};
  server.start();

  smartpointer::ClientConfig client_config;
  client_config.mode = smartpointer::FilterMode::kDynamic;
  client_config.processing_scale = 0.35;  // rendering matters, CPU is scarce
  client_config.storage_client = true;    // frames are written to disk
  client_config.dmon = cluster.dmon(2);
  smartpointer::Client client{cluster.host(2), cluster.nic(2), 0,
                              server_config.port, client_config};
  client.connect();
  engine.run_until(SimTime{} + seconds(8.0));

  // k linpack threads on the client plus 10k Mbps of cross traffic.
  std::vector<std::unique_ptr<workload::LinpackTask>> threads;
  for (int i = 0; i < k; ++i) {
    threads.push_back(std::make_unique<workload::LinpackTask>(cluster.host(2)));
  }
  workload::IperfReceiver sink{cluster.nic(3)};
  workload::IperfConfig iperf_config;
  iperf_config.rate_bps = 10e6 * k;
  workload::IperfSender iperf{cluster.nic(1), 3, iperf_config};
  iperf.start();

  engine.run_until(SimTime{} + seconds(28.0));
  const std::size_t before = client.lag_series().size();
  engine.run_until(SimTime{} + seconds(43.0));

  StreamingStats lag;
  for (std::size_t i = before; i < client.lag_series().size(); ++i) {
    lag.add(client.lag_series()[i].lag.sec());
  }
  if (lag.count() == 0 && !client.lag_series().empty()) {
    const auto& last = client.lag_series().back();
    return (last.lag + (engine.now() - last.completed_at)).sec();
  }
  return lag.mean();
}

}  // namespace
}  // namespace dproc::bench

int main() {
  using namespace dproc::bench;
  Table table({"linpack_threads_x_10mbps", "cpu_monitor_lag_s",
               "network_monitor_lag_s", "hybrid_monitor_lag_s"});
  for (int k = 1; k <= 8; ++k) {
    table.add_row({static_cast<double>(k),
                   run_cell(PolicyInputs::kCpuOnly, k),
                   run_cell(PolicyInputs::kNetOnly, k),
                   run_cell(PolicyInputs::kHybrid, k)});
  }
  table.print("fig11_latency_vs_combined_perturbation");
  std::printf(
      "\npaper: filters using more resource information perform better;\n"
      "adapting on one resource alone aggravates the other (Figure 11).\n");
  return 0;
}
