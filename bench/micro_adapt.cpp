// Period-adaptation microbenchmark: the overhead-budget control loop under
// sustained publishing pressure, swept across cluster sizes.
//
// Every node carries a 250-metric always-changing "firehose" module (the
// paper's ~5 KB event, Figure 7) on top of the standard five, so the
// accuracy pass alone would pin every period at min_period and the d-mon
// would happily burn CPU. The run first calibrates: with an effectively
// unlimited budget it measures the unclamped steady-state overhead, then
// halves it, writes the result through /proc/dproc/adapt on every node and
// lets the clamp walk periods out until the measured overhead honours it.
//
// Emits BENCH_micro_adapt.json. The exit code enforces the ISSUE bar: at
// the largest node count the settled overhead must sit at or under the
// budget — an adaptation loop that cannot hold its own budget fails CI.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "alloc_counter.hpp"
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "dproc/core/adapt.hpp"
#include "dproc/core/cluster.hpp"
#include "dproc/core/monitors.hpp"

namespace dproc::bench {
namespace {

struct AdaptRun {
  std::size_t nodes = 0;
  std::uint64_t periods = 0;       // measured monitoring periods
  double unclamped_overhead = 0;   // max over nodes, calibration window
  double budget = 0;               // the knob actually parsed by the nodes
  double settled_overhead = 0;     // max over nodes, end of run
  std::uint64_t clamps = 0;        // budget clamps fired, all nodes
  double firehose_period_sec = 0;  // node 0's adapted firehose period
  std::uint64_t events = 0;        // KECho events in the measured window
  double wall_ns = 0;
  double allocs = 0;
};

std::size_t bench_nodes() {
  if (const char* s = std::getenv("DPROC_BENCH_NODES")) {
    const unsigned long v = std::strtoul(s, nullptr, 10);
    if (v >= 2) return static_cast<std::size_t>(v);
  }
  return 8;
}

double max_overhead(core::Cluster& cluster) {
  double worst = 0.0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const core::PeriodController* controller = cluster.dmon(i)->adaptation();
    if (controller && controller->last_overhead() > worst) {
      worst = controller->last_overhead();
    }
  }
  return worst;
}

AdaptRun measure(std::size_t nodes, std::uint64_t periods) {
  using Clock = std::chrono::steady_clock;
  constexpr double kCalibrateSec = 11.0;  // two adaptation rounds + join

  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = nodes;
  config.adapt.enabled = true;
  config.adapt.overhead_budget = 1.0;  // calibration: clamp cannot fire
  config.adapt.adapt_every_periods = 5;
  core::Cluster cluster{engine, config};
  for (std::size_t i = 0; i < nodes; ++i) {
    cluster.dmon(i)->register_module(
        std::make_unique<core::SyntheticMonitor>(
            "firehose", 250, [](std::size_t metric, SimTime now) {
              return static_cast<double>(metric) + now.sec();
            }));
  }
  cluster.start_dproc();
  engine.run_until(SimTime::zero() + seconds(kCalibrateSec));

  AdaptRun run;
  run.nodes = nodes;
  run.periods = periods;
  run.unclamped_overhead = max_overhead(cluster);
  if (run.unclamped_overhead <= 0.0) std::abort();  // harness wired wrong

  char knob[64];
  std::snprintf(knob, sizeof(knob), "budget %.9f",
                run.unclamped_overhead / 2.0);
  for (std::size_t i = 0; i < nodes; ++i) {
    if (!cluster.procfs(i).write("/proc/dproc/adapt", knob).is_ok()) {
      std::abort();
    }
  }
  run.budget = cluster.dmon(0)->adaptation()->budget();

  auto events_total = [&] {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      total += cluster.node(i)
                   .kecho->join(cluster.config().dmon.monitor_channel)
                   .events_submitted();
    }
    return total;
  };

  const std::uint64_t events_before = events_total();
  const std::uint64_t allocs_before = alloc_count();
  const Clock::time_point start = Clock::now();
  engine.run_until(SimTime::zero() +
                   seconds(kCalibrateSec + static_cast<double>(periods)));
  run.wall_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - start)
                              .count());
  run.allocs = static_cast<double>(alloc_count() - allocs_before);
  run.events = events_total() - events_before;
  if (run.events == 0) std::abort();

  run.settled_overhead = max_overhead(cluster);
  for (std::size_t i = 0; i < nodes; ++i) {
    run.clamps += cluster.dmon(i)->adaptation()->budget_clamps();
  }
  for (const core::PeriodController::Region& region :
       cluster.dmon(0)->adaptation()->regions()) {
    if (region.module == "firehose") {
      run.firehose_period_sec = region.period.sec();
    }
  }
  return run;
}

JsonBenchEntry to_entry(const AdaptRun& run) {
  JsonBenchEntry entry;
  entry.name = "adapt_clamp_" + std::to_string(run.nodes) + "node";
  entry.iterations = run.periods;
  entry.ns_per_event = run.wall_ns / static_cast<double>(run.events);
  entry.ops_per_sec = 1e9 / entry.ns_per_event;
  entry.allocs_per_event = run.allocs / static_cast<double>(run.events);
  entry.extras.emplace_back("unclamped_overhead", run.unclamped_overhead);
  entry.extras.emplace_back("budget", run.budget);
  entry.extras.emplace_back("settled_overhead", run.settled_overhead);
  entry.extras.emplace_back("overhead_vs_budget",
                            run.settled_overhead / run.budget);
  entry.extras.emplace_back("budget_clamps",
                            static_cast<double>(run.clamps));
  entry.extras.emplace_back("firehose_period_sec", run.firehose_period_sec);
  entry.extras.emplace_back("events_per_period",
                            static_cast<double>(run.events) /
                                static_cast<double>(run.periods));
  return entry;
}

}  // namespace
}  // namespace dproc::bench

int main(int argc, char** argv) {
  using namespace dproc::bench;
  std::uint64_t periods = bench_iterations(120);
  if (argc > 1) {
    const int v = std::atoi(argv[1]);
    if (v > 0) periods = static_cast<std::uint64_t>(v);
  }

  // Sweep up to the configured size; the bar applies at the largest.
  std::vector<std::size_t> sizes{2, 4};
  const std::size_t largest = bench_nodes();
  while (!sizes.empty() && sizes.back() >= largest) sizes.pop_back();
  sizes.push_back(largest);

  std::vector<AdaptRun> runs;
  runs.reserve(sizes.size());
  for (std::size_t n : sizes) runs.push_back(measure(n, periods));

  Table table({"nodes", "unclamped_ovh", "budget", "settled_ovh",
               "firehose_period_s", "events/period"});
  for (const AdaptRun& run : runs) {
    table.add_row({static_cast<double>(run.nodes), run.unclamped_overhead,
                   run.budget, run.settled_overhead, run.firehose_period_sec,
                   static_cast<double>(run.events) /
                       static_cast<double>(run.periods)});
  }
  table.print("micro_adapt_budget_clamp");

  std::vector<JsonBenchEntry> entries;
  entries.reserve(runs.size());
  for (const AdaptRun& run : runs) entries.push_back(to_entry(run));
  const bool ok = write_bench_json("micro_adapt", entries);

  const AdaptRun& bar = runs.back();
  std::printf(
      "\nadaptation under budget (%zu nodes): %.4f%% -> %.4f%% against a "
      "%.4f%% budget, %llu clamps\n",
      bar.nodes, 100.0 * bar.unclamped_overhead, 100.0 * bar.settled_overhead,
      100.0 * bar.budget, static_cast<unsigned long long>(bar.clamps));
  if (bar.settled_overhead > bar.budget) {
    std::fprintf(stderr,
                 "micro_adapt: settled overhead %.6f exceeds budget %.6f at "
                 "%zu nodes\n",
                 bar.settled_overhead, bar.budget, bar.nodes);
    return 1;
  }
  return ok ? 0 : 1;
}
