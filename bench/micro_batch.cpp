// Batched-publishing microbenchmark: per-period submit cost and fabric
// traffic for an 8-node d-mon cluster, legacy per-module loop vs the
// MonitorBatch path with delta suppression and interest-scoped fan-out.
//
// Emits BENCH_micro_batch.json so the fan-out savings are tracked across
// PRs: the legacy loop submits one KECho event per module per period
// (5 standard modules -> 5 events), the batch path coalesces them into at
// most one frame and delta suppression plus interest filtering shrink what
// is left. Extras record the raw event/byte totals and the reduction
// factors the batch entry achieves over the baseline.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "alloc_counter.hpp"
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "dproc/core/cluster.hpp"

namespace dproc::bench {
namespace {

struct SteadyState {
  std::uint64_t events = 0;      // KECho events submitted, all nodes
  std::uint64_t wire_bytes = 0;  // fabric bytes delivered, all nodes
  double wall_ns = 0.0;          // host wall-clock for the measured window
  double allocs = 0.0;           // heap allocations in the measured window
  std::uint64_t periods = 0;
};

/// Cluster size: 8 by default (the tracked BENCH numbers);
/// DPROC_BENCH_NODES scales the same measurement up (EXPERIMENTS.md runs
/// the 8 -> 64 sweep this way).
std::size_t bench_nodes() {
  if (const char* s = std::getenv("DPROC_BENCH_NODES")) {
    const unsigned long v = std::strtoul(s, nullptr, 10);
    if (v >= 2) return static_cast<std::size_t>(v);
  }
  return 8;
}

/// Drives the cluster for `periods` monitoring periods (one per simulated
/// second) and reports the steady-state deltas after a warm-up window
/// that absorbs channel joins and interest propagation.
SteadyState measure(bool batched, std::uint64_t periods) {
  using Clock = std::chrono::steady_clock;
  constexpr double kWarmupSec = 4.0;

  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = bench_nodes();
  if (batched) {
    config.batch.enabled = true;
    config.batch.delta_epsilon = 0.0;  // suppress exactly-unchanged values
    config.batch.keyframe_every = 10;
    config.batch.interest = true;
  }
  core::Cluster cluster{engine, config};
  cluster.start_dproc();
  if (batched) {
    engine.run_until(SimTime::zero() + seconds(2.0));
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      (void)cluster.dmon(i)->declare_interest({"cpu", "mem"});
    }
  }
  engine.run_until(SimTime::zero() + seconds(kWarmupSec));

  auto totals = [&] {
    SteadyState t;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      t.events += cluster.node(i)
                      .kecho->join(cluster.config().dmon.monitor_channel)
                      .events_submitted();
      t.wire_bytes +=
          cluster.fabric().bytes_delivered_to(cluster.nic(i).node());
    }
    return t;
  };

  const SteadyState before = totals();
  const std::uint64_t allocs_before = alloc_count();
  const Clock::time_point start = Clock::now();
  engine.run_until(SimTime::zero() +
                   seconds(kWarmupSec + static_cast<double>(periods)));
  const double wall_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - start)
                              .count());
  const std::uint64_t allocs = alloc_count() - allocs_before;
  const SteadyState after = totals();

  SteadyState out;
  out.events = after.events - before.events;
  out.wire_bytes = after.wire_bytes - before.wire_bytes;
  out.wall_ns = wall_ns;
  out.allocs = static_cast<double>(allocs);
  out.periods = periods;
  if (out.events == 0) std::abort();  // harness wired wrong
  return out;
}

JsonBenchEntry to_entry(const std::string& name, const SteadyState& s) {
  JsonBenchEntry entry;
  entry.name = name;
  entry.iterations = s.periods;
  entry.ns_per_event = s.wall_ns / static_cast<double>(s.events);
  entry.ops_per_sec = 1e9 / entry.ns_per_event;
  entry.allocs_per_event = s.allocs / static_cast<double>(s.events);
  const double periods = static_cast<double>(s.periods);
  entry.extras.emplace_back("events_submitted",
                            static_cast<double>(s.events));
  entry.extras.emplace_back("wire_bytes", static_cast<double>(s.wire_bytes));
  entry.extras.emplace_back("events_per_period",
                            static_cast<double>(s.events) / periods);
  entry.extras.emplace_back("wire_bytes_per_period",
                            static_cast<double>(s.wire_bytes) / periods);
  return entry;
}

}  // namespace
}  // namespace dproc::bench

int main(int argc, char** argv) {
  using namespace dproc::bench;
  // argv[1] (or DPROC_BENCH_ITERS) overrides the measured period count.
  std::uint64_t periods = bench_iterations(120);
  if (argc > 1) {
    const int v = std::atoi(argv[1]);
    if (v > 0) periods = static_cast<std::uint64_t>(v);
  }

  const SteadyState baseline = measure(/*batched=*/false, periods);
  const SteadyState batched = measure(/*batched=*/true, periods);

  const double event_reduction = static_cast<double>(baseline.events) /
                                 static_cast<double>(batched.events);
  const double byte_reduction = static_cast<double>(baseline.wire_bytes) /
                                static_cast<double>(batched.wire_bytes);

  const std::string nodes = std::to_string(bench_nodes());
  Table table({"batched", "events/period", "wire_bytes/period", "ns/event"});
  const double p = static_cast<double>(periods);
  table.add_row({0, static_cast<double>(baseline.events) / p,
                 static_cast<double>(baseline.wire_bytes) / p,
                 baseline.wall_ns / static_cast<double>(baseline.events)});
  table.add_row({1, static_cast<double>(batched.events) / p,
                 static_cast<double>(batched.wire_bytes) / p,
                 batched.wall_ns / static_cast<double>(batched.events)});
  table.print("micro_batch_" + nodes + "node_steady_state");
  std::printf(
      "\nbatch + delta + interest vs per-module loop (%s nodes): "
      "%.1fx fewer events, %.2fx fewer fabric bytes\n",
      nodes.c_str(), event_reduction, byte_reduction);

  JsonBenchEntry base_entry = to_entry("per_module_" + nodes + "node", baseline);
  JsonBenchEntry batch_entry =
      to_entry("batched_delta_interest_" + nodes + "node", batched);
  batch_entry.extras.emplace_back("event_reduction_x", event_reduction);
  batch_entry.extras.emplace_back("byte_reduction_x", byte_reduction);
  const bool ok = write_bench_json("micro_batch", {base_entry, batch_entry});
  // The ISSUE acceptance bar: >=5x fewer events in steady state.
  if (event_reduction < 5.0) {
    std::fprintf(stderr, "micro_batch: event reduction %.2fx below 5x bar\n",
                 event_reduction);
    return 1;
  }
  return ok ? 0 : 1;
}
