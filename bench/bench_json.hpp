// BENCH_*.json emission for the perf trajectory.
//
// Each microbenchmark binary writes a BENCH_<name>.json file so successive
// PRs can compare hot-path throughput. Schema (validated by
// bench_json_check, run from the bench-smoke CTest target):
//
//   {
//     "bench": "<binary name>",
//     "benchmarks": [
//       {"name": "...", "ops_per_sec": <num>, "ns_per_event": <num>,
//        "allocs_per_event": <num>, "iterations": <num>},
//       ...
//     ]
//   }
//
// Files land in $DPROC_BENCH_JSON_DIR if set (the smoke tests point it at
// the build tree so tiny smoke runs never overwrite the committed numbers),
// otherwise at the repo root (DPROC_REPO_ROOT, baked in by CMake).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace dproc::bench {

struct JsonBenchEntry {
  std::string name;
  double ops_per_sec = 0.0;
  double ns_per_event = 0.0;
  double allocs_per_event = 0.0;
  std::uint64_t iterations = 0;
  /// Additional bench-specific numbers, emitted verbatim as extra keys
  /// (the checker validates the core schema and ignores extras).
  std::vector<std::pair<std::string, double>> extras;
};

inline std::string bench_json_path(const std::string& bench_name) {
  const char* dir = std::getenv("DPROC_BENCH_JSON_DIR");
#ifdef DPROC_REPO_ROOT
  if (dir == nullptr || *dir == '\0') dir = DPROC_REPO_ROOT;
#endif
  if (dir == nullptr || *dir == '\0') dir = ".";
  return std::string{dir} + "/BENCH_" + bench_name + ".json";
}

/// Writes the JSON file; returns true on success.
inline bool write_bench_json(const std::string& bench_name,
                             const std::vector<JsonBenchEntry>& entries) {
  const std::string path = bench_json_path(bench_name);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot open %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"benchmarks\": [\n",
               bench_name.c_str());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const JsonBenchEntry& e = entries[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ops_per_sec\": %.6g, "
                 "\"ns_per_event\": %.6g, \"allocs_per_event\": %.6g, "
                 "\"iterations\": %llu",
                 e.name.c_str(), e.ops_per_sec, e.ns_per_event,
                 e.allocs_per_event,
                 static_cast<unsigned long long>(e.iterations));
    for (const auto& [key, value] : e.extras) {
      std::fprintf(f, ", \"%s\": %.6g", key.c_str(), value);
    }
    std::fprintf(f, "}%s\n", i + 1 < entries.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
  return true;
}

/// Iteration-count override for smoke runs (DPROC_BENCH_ITERS).
inline std::uint64_t bench_iterations(std::uint64_t default_iters) {
  if (const char* s = std::getenv("DPROC_BENCH_ITERS")) {
    const unsigned long long v = std::strtoull(s, nullptr, 10);
    if (v > 0) return v;
  }
  return default_iters;
}

}  // namespace dproc::bench
