// Figure 9: SmartPointer performance with a CPU-loaded client.
//
// Paper: the client is loaded with an increasing number of linpack threads
// (one more every 200 s). 9(a): total latency (propagation + processing)
// over time — grows without bound with no filter, less with a static
// filter, stays flat and low with dynamic filters driven by dproc.
// 9(b): processed events/second vs thread count — the dynamic filter keeps
// the client at the server's send rate while the others decay.
#include <memory>

#include "bench_common.hpp"
#include "dproc/smartpointer/client.hpp"
#include "dproc/smartpointer/server.hpp"
#include "dproc/workload/linpack.hpp"

namespace dproc::bench {
namespace {

using smartpointer::FilterMode;

constexpr double kStepSeconds = 200.0;
constexpr int kMaxThreads = 9;
constexpr double kTotalSeconds = kStepSeconds * (kMaxThreads + 1);  // 2000 s

struct RunResult {
  // Mean lag (s) per 25 s bucket over the whole run.
  std::vector<double> lag_by_bucket;
  // Processed events/s measured over the second half of each load step.
  std::vector<double> rate_by_threads;
};

RunResult run_mode(FilterMode mode) {
  sim::Engine engine;
  core::ClusterConfig config = paper_cluster(8, MonitorConfig::kPeriod1s);
  core::Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(3.0));

  smartpointer::ServerConfig server_config;
  server_config.frame_rate_hz = 5.0;
  server_config.atom_count = 30'000;  // 750 KB full frames, ~0.12 s to render
  smartpointer::Server server{cluster.host(0), cluster.nic(0),
                              cluster.dmon(0), server_config};
  server.start();

  smartpointer::ClientConfig client_config;
  client_config.mode = mode;
  client_config.static_rep = smartpointer::Representation::kPositionOnly;
  client_config.dmon = cluster.dmon(1);
  smartpointer::Client client{cluster.host(1), cluster.nic(1), 0,
                              server_config.port, client_config};
  client.connect();
  engine.run_until(SimTime{} + seconds(5.0));

  const SimTime start = engine.now();
  std::vector<std::unique_ptr<workload::LinpackTask>> threads;
  RunResult result;

  for (int step = 0; step <= kMaxThreads; ++step) {
    // First half of the step: let the system settle; second half: measure.
    engine.run_until(start + seconds(step * kStepSeconds + kStepSeconds / 2));
    client.checkpoint();
    engine.run_until(start + seconds((step + 1) * kStepSeconds));
    result.rate_by_threads.push_back(client.event_rate_since_checkpoint());
    if (step < kMaxThreads) {
      threads.push_back(
          std::make_unique<workload::LinpackTask>(cluster.host(1)));
    }
  }

  // Bucket the lag series (25 s buckets across the run).
  const std::size_t buckets = static_cast<std::size_t>(kTotalSeconds / 25.0);
  std::vector<StreamingStats> stats(buckets);
  for (const auto& point : client.lag_series()) {
    const double t = (point.completed_at - start).sec();
    if (t < 0) continue;
    const auto bucket = static_cast<std::size_t>(t / 25.0);
    if (bucket < buckets) stats[bucket].add(point.lag.sec());
  }
  double last = 0.0;
  for (auto& s : stats) {
    // An empty bucket means no frame completed: latency is still climbing,
    // so carry the last value forward rather than reporting zero.
    last = s.count() > 0 ? s.mean() : last;
    result.lag_by_bucket.push_back(last);
  }
  return result;
}

}  // namespace
}  // namespace dproc::bench

int main() {
  using namespace dproc::bench;
  const RunResult none = run_mode(FilterMode::kNone);
  const RunResult fixed = run_mode(FilterMode::kStatic);
  const RunResult dynamic = run_mode(FilterMode::kDynamic);

  Table lag({"time_s", "no_filter_lag_s", "static_filter_lag_s",
             "dynamic_filter_lag_s"});
  for (std::size_t i = 0; i < none.lag_by_bucket.size(); ++i) {
    lag.add_row({25.0 * static_cast<double>(i + 1), none.lag_by_bucket[i],
                 fixed.lag_by_bucket[i], dynamic.lag_by_bucket[i]});
  }
  lag.print("fig9a_latency_vs_time_cpu_loaded");

  Table rate({"linpack_threads", "no_filter_events_per_s",
              "static_filter_events_per_s", "dynamic_filter_events_per_s"});
  for (std::size_t k = 0; k < none.rate_by_threads.size(); ++k) {
    rate.add_row({static_cast<double>(k), none.rate_by_threads[k],
                  fixed.rate_by_threads[k], dynamic.rate_by_threads[k]});
  }
  rate.print("fig9b_event_rate_vs_linpack_threads");

  std::printf(
      "\npaper: 9(a) no-filter latency grows to tens of seconds as linpack\n"
      "threads start; static filter grows later/slower; dynamic filter\n"
      "stays flat and low. 9(b) dynamic filter holds ~5 events/s across\n"
      "all thread counts; the others decay.\n");
  return 0;
}
