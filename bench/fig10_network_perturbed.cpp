// Figure 10: latency with varying network perturbation.
//
// Paper: 3 MB events; the client does very little processing; the link
// between server and client shares a segment with an Iperf UDP flood.
// Latency stays flat until the perturbation passes ~70 Mbps (the stream
// needs ~30 Mbps of the 100 Mbps capacity), then explodes for the no-filter
// and static-filter cases while the dynamic filter reduces the data size
// and stays low.
#include "bench_common.hpp"
#include "dproc/smartpointer/client.hpp"
#include "dproc/smartpointer/server.hpp"
#include "dproc/workload/iperf.hpp"

namespace dproc::bench {
namespace {

using smartpointer::FilterMode;

// Dual-switch topology: server(0) + iperf source(1) on switch A,
// client(2) + iperf sink(3) on switch B, one 100 Mbps trunk between them.
core::ClusterConfig trunk_cluster() {
  core::ClusterConfig config;
  config.node_count = 4;
  config.trunk_split = 2;
  config.dmon.poll_period = seconds(1.0);
  return config;
}

double run_cell(FilterMode mode, double perturbation_mbps) {
  sim::Engine engine;
  core::Cluster cluster{engine, trunk_cluster()};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(3.0));

  smartpointer::ServerConfig server_config;
  server_config.frame_rate_hz = 1.25;    // 3 MB x 1.25/s = 30 Mbps
  server_config.atom_count = 120'000;    // 3 MB full frames
  smartpointer::Server server{cluster.host(0), cluster.nic(0),
                              cluster.dmon(0), server_config};
  server.start();

  smartpointer::ClientConfig client_config;
  client_config.mode = mode;
  client_config.static_rep = smartpointer::Representation::kPositionOnly;
  client_config.processing_scale = 0.01;  // "very little processing"
  client_config.dmon = cluster.dmon(2);
  smartpointer::Client client{cluster.host(2), cluster.nic(2), 0,
                              server_config.port, client_config};
  client.connect();
  engine.run_until(SimTime{} + seconds(8.0));  // unperturbed warm-up

  std::unique_ptr<workload::IperfSender> iperf;
  workload::IperfReceiver sink{cluster.nic(3)};
  if (perturbation_mbps > 0) {
    workload::IperfConfig iperf_config;
    iperf_config.rate_bps = perturbation_mbps * 1e6;
    iperf = std::make_unique<workload::IperfSender>(cluster.nic(1), 3,
                                                    iperf_config);
    iperf->start();
  }

  engine.run_until(SimTime{} + seconds(28.0));  // let adaptation converge
  const std::size_t before = client.lag_series().size();
  engine.run_until(SimTime{} + seconds(43.0));  // measurement window

  StreamingStats lag;
  for (std::size_t i = before; i < client.lag_series().size(); ++i) {
    lag.add(client.lag_series()[i].lag.sec());
  }
  if (lag.count() == 0 && !client.lag_series().empty()) {
    // No frame completed during the window: report the last observed lag
    // plus the stall time, a lower bound on the real latency.
    const auto& last = client.lag_series().back();
    return (last.lag + (engine.now() - last.completed_at)).sec();
  }
  return lag.mean();
}

}  // namespace
}  // namespace dproc::bench

int main() {
  using namespace dproc::bench;
  Table table({"perturbation_mbps", "no_filter_lag_s", "static_filter_lag_s",
               "dynamic_filter_lag_s"});
  for (int p = 0; p <= 90; p += 10) {
    table.add_row({static_cast<double>(p),
                   run_cell(FilterMode::kNone, p),
                   run_cell(FilterMode::kStatic, p),
                   run_cell(FilterMode::kDynamic, p)});
  }
  table.print("fig10_latency_vs_network_perturbation");
  std::printf(
      "\npaper: flat until ~70 Mbps perturbation (stream needs ~30 of\n"
      "100 Mbps), then no-filter and static-filter latency explodes while\n"
      "dynamic filters shrink the stream and stay low (Figure 10).\n");
  return 0;
}
