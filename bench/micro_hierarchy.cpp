// Hierarchical-overlay scaling benchmark: per-node fabric traffic as the
// cluster grows, zone aggregation vs the flat all-pairs monitoring channel.
//
// Sweeps N in {max/8, max/4, max/2, max} simulated nodes (max = 4096, or
// DPROC_BENCH_NODES) with the zone overlay on: leaves publish one batch per
// period into their zone aggregator, aggregators republish compact
// AggregateBatch roll-ups up the tree, and only the subscriber hears the
// root summary. The flat baseline is measured once at the smallest sweep
// point and projected linearly (flat per-node traffic grows with N-1: every
// publisher reaches every other channel member), since actually simulating
// a flat 4096-node cluster is the O(N^2) explosion the overlay exists to
// avoid.
//
// Emits BENCH_micro_hierarchy.json. CI bar (exit code): per-node delivered
// bytes per period at N=max must stay within 2x of N=max/8 — the overlay's
// per-node traffic is dominated by fixed-size zone fan-in, so growth must
// be sublinear in N.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "alloc_counter.hpp"
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "dproc/core/cluster.hpp"

namespace dproc::bench {
namespace {

struct ScalePoint {
  std::size_t nodes = 0;
  std::uint64_t periods = 0;
  std::uint64_t delivered_bytes = 0;  // fabric bytes, all nodes, window
  std::uint64_t packets = 0;          // fabric packets delivered, window
  double wall_ns = 0.0;
  double allocs = 0.0;

  [[nodiscard]] double per_node_bytes_per_period() const {
    return static_cast<double>(delivered_bytes) /
           static_cast<double>(nodes) / static_cast<double>(periods);
  }
};

/// Largest sweep point: 4096 by default, DPROC_BENCH_NODES overrides (the
/// smoke test runs 128). Must be >= 16 so max/8 still forms a cluster.
std::size_t bench_max_nodes() {
  if (const char* s = std::getenv("DPROC_BENCH_NODES")) {
    const unsigned long v = std::strtoul(s, nullptr, 10);
    if (v >= 16) return static_cast<std::size_t>(v);
  }
  return 4096;
}

/// Zone width and fanout (DPROC_BENCH_ZONE, default 8). Per-node traffic
/// flattens once tier-1 groups saturate at zone*fanout nodes, so the sweep
/// base point should sit at or past that knee: the default sweep starts at
/// 512 >> 64; the 128-node smoke run uses zone 4 (knee at 16).
std::size_t bench_zone() {
  if (const char* s = std::getenv("DPROC_BENCH_ZONE")) {
    const unsigned long v = std::strtoul(s, nullptr, 10);
    if (v >= 2) return static_cast<std::size_t>(v);
  }
  return 8;
}

/// One steady-state window: warm up the channel joins and the roll-up
/// pipeline, then measure fabric deltas over `periods` simulated seconds.
ScalePoint measure(std::size_t nodes, bool hierarchy, std::uint64_t periods) {
  using Clock = std::chrono::steady_clock;
  constexpr double kWarmupSec = 6.0;

  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = nodes;
  if (hierarchy) {
    const std::size_t zone = bench_zone();
    config.hierarchy.enabled = true;
    config.hierarchy.zone_size = zone;
    config.hierarchy.fanout = zone;
    // Thousands of nodes: no pre-declared peer tables (aggregators learn
    // their zone mates from the first frame), one subscriber at the far
    // end of the tree so the summary actually crosses the fabric.
    config.hierarchy.declare_zone_peers = false;
    config.hierarchy.subscribers = std::vector<std::size_t>{nodes - 1};
  }
  // Every node boots at t=0. Thousands of simultaneous joins tail-drop on
  // the registry link, but join retries (capped backoff, deterministic
  // per-node jitter) re-spread the collisions until every join lands — no
  // staggered boot needed, and the warmup absorbs the retry tail.
  config.liveness.join_retries = true;
  config.liveness.retry_jitter = 1.0;
  core::Cluster cluster{engine, config};
  for (std::size_t i = 0; i < nodes; ++i) {
    cluster.dmon(i)->start();
  }
  engine.run_until(SimTime::zero() + seconds(kWarmupSec));

  auto delivered = [&] {
    std::uint64_t bytes = 0;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      bytes += cluster.fabric().bytes_delivered_to(cluster.nic(i).node());
    }
    return bytes;
  };

  const std::uint64_t bytes_before = delivered();
  const std::uint64_t packets_before = cluster.fabric().stats().packets_delivered;
  const std::uint64_t allocs_before = alloc_count();
  const Clock::time_point start = Clock::now();
  engine.run_until(SimTime::zero() +
                   seconds(kWarmupSec + static_cast<double>(periods)));
  const double wall_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - start)
                              .count());

  ScalePoint point;
  point.nodes = nodes;
  point.periods = periods;
  point.delivered_bytes = delivered() - bytes_before;
  point.packets = cluster.fabric().stats().packets_delivered - packets_before;
  point.wall_ns = wall_ns;
  point.allocs = static_cast<double>(alloc_count() - allocs_before);
  if (point.delivered_bytes == 0) std::abort();  // harness wired wrong
  return point;
}

JsonBenchEntry to_entry(const ScalePoint& point, double flat_per_node) {
  JsonBenchEntry entry;
  entry.name = "hier_" + std::to_string(point.nodes) + "node";
  entry.iterations = point.periods;
  const double node_periods =
      static_cast<double>(point.nodes) * static_cast<double>(point.periods);
  entry.ns_per_event = point.wall_ns / node_periods;
  entry.ops_per_sec = 1e9 / entry.ns_per_event;
  entry.allocs_per_event = point.allocs / node_periods;
  entry.extras.emplace_back("nodes", static_cast<double>(point.nodes));
  entry.extras.emplace_back("delivered_bytes",
                            static_cast<double>(point.delivered_bytes));
  entry.extras.emplace_back("packets_delivered",
                            static_cast<double>(point.packets));
  entry.extras.emplace_back("per_node_bytes_per_period",
                            point.per_node_bytes_per_period());
  entry.extras.emplace_back("flat_per_node_bytes_projected", flat_per_node);
  return entry;
}

}  // namespace
}  // namespace dproc::bench

int main(int argc, char** argv) {
  using namespace dproc::bench;
  // argv[1] (or DPROC_BENCH_ITERS) overrides the measured period count.
  std::uint64_t periods = bench_iterations(20);
  if (argc > 1) {
    const int v = std::atoi(argv[1]);
    if (v > 0) periods = static_cast<std::uint64_t>(v);
  }

  const std::size_t max_nodes = bench_max_nodes();
  const std::vector<std::size_t> sweep{max_nodes / 8, max_nodes / 4,
                                       max_nodes / 2, max_nodes};

  // Flat baseline at the smallest sweep point only; per-node traffic there
  // is proportional to (N - 1) publishers x their event bytes, so larger
  // flat clusters are projected, not simulated.
  const ScalePoint flat = measure(sweep.front(), /*hierarchy=*/false, periods);
  const double flat_per_pair =
      flat.per_node_bytes_per_period() /
      static_cast<double>(flat.nodes - 1);

  std::vector<ScalePoint> points;
  points.reserve(sweep.size());
  for (const std::size_t nodes : sweep) {
    points.push_back(measure(nodes, /*hierarchy=*/true, periods));
  }

  Table table({"nodes", "per_node_B/period", "flat_projected_B/period",
               "packets/period"});
  std::vector<JsonBenchEntry> entries;
  for (const ScalePoint& point : points) {
    const double flat_projected =
        flat_per_pair * static_cast<double>(point.nodes - 1);
    table.add_row({static_cast<double>(point.nodes),
                   point.per_node_bytes_per_period(), flat_projected,
                   static_cast<double>(point.packets) /
                       static_cast<double>(point.periods)});
    entries.push_back(to_entry(point, flat_projected));
  }
  table.print("micro_hierarchy_scaling");

  const double small = points.front().per_node_bytes_per_period();
  const double large = points.back().per_node_bytes_per_period();
  std::printf(
      "\nper-node delivered bytes/period: %.1f at %zu nodes -> %.1f at %zu "
      "nodes (%.2fx across an 8x node growth; flat projection %.1fx)\n",
      small, points.front().nodes, large, points.back().nodes, large / small,
      flat_per_pair * static_cast<double>(points.back().nodes - 1) / large);

  const bool ok = write_bench_json("micro_hierarchy", entries);
  // The ISSUE acceptance bar: sublinear growth — 8x the nodes may at most
  // double the per-node traffic.
  if (large > 2.0 * small) {
    std::fprintf(stderr,
                 "micro_hierarchy: per-node bytes grew %.2fx from %zu to %zu "
                 "nodes (bar: <= 2x)\n",
                 large / small, points.front().nodes, points.back().nodes);
    return 1;
  }
  return ok ? 0 : 1;
}
