// Figure 6: event submission overhead per d-mon polling iteration.
//
// Paper: overhead measured with rdtsc, averaged over 100 polling
// iterations; grows with cluster size to ~1.8 ms at 8 nodes for a 1 s
// period, roughly half for 2 s, and stays under ~100 us with the
// differential filter (steady resource values rarely pass the 15% test).
#include "bench_common.hpp"

namespace dproc::bench {
namespace {

double run_cell(std::size_t nodes, MonitorConfig config) {
  sim::Engine engine;
  core::ClusterConfig cluster_config = paper_cluster(nodes, config);
  core::Cluster cluster{engine, cluster_config};
  cluster.start_dproc();
  apply_monitor_config(cluster, config);

  // Warm up, then average the rdtsc-equivalent submit cost over 100 polls.
  const double period = cluster_config.dmon.poll_period.sec();
  engine.run_until(SimTime{} + seconds(5.0 * period + 3.0));
  core::DMon& dmon = *cluster.dmon(0);
  StreamingStats costs;
  const std::uint64_t start_count = dmon.submit_cost_us().count();
  while (dmon.submit_cost_us().count() < start_count + 100) {
    engine.run_for(seconds(period));
    costs.add(dmon.last_poll().submit_cost.us());
  }
  return costs.mean();
}

}  // namespace
}  // namespace dproc::bench

int main() {
  using namespace dproc::bench;
  Table table({"nodes", "update_period_1s", "update_period_2s",
               "differential_filter"});
  for (std::size_t n = 1; n <= 8; ++n) {
    table.add_row({static_cast<double>(n),
                   run_cell(n, MonitorConfig::kPeriod1s),
                   run_cell(n, MonitorConfig::kPeriod2s),
                   run_cell(n, MonitorConfig::kDifferential)});
  }
  table.print("fig6_submit_overhead_us_vs_nodes");
  std::printf(
      "\npaper: ~1.8 ms at 8 nodes (1 s period); differential filter stays\n"
      "       within ~100 us (Figure 6). Events are 50-100 bytes.\n");
  return 0;
}
