// KECho microbenchmarks: channel latency and the kernel-level vs user-level
// RTT-variance claim.
//
// The paper motivates kernel-kernel messaging with [11]: user-level
// communication shows much larger round-trip variation because endpoint
// processing waits on the CPU scheduler behind application load. Here both
// variants run over identical links; the user-level variant's receive
// processing waits out a scheduler dispatch delay (a uniformly distributed
// remainder of the running task's timeslice, Linux 2.4's ~50 ms default
// scaled per competitor) and then competes for CPU with linpack threads,
// while the kernel-level variant's processing runs at interrupt priority —
// reproducing the variance gap from first principles.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "alloc_counter.hpp"
#include "bench_common.hpp"
#include "bench_json.hpp"
#include "dproc/kecho/registry.hpp"
#include "dproc/net/wire.hpp"
#include "dproc/workload/linpack.hpp"

namespace dproc::bench {
namespace {

struct LatencyStats {
  double mean_us;
  double stddev_us;
  double max_us;
};

/// Round-trips `count` messages node0 -> node1 -> node0. `user_level`
/// selects whether endpoint processing contends with user load.
LatencyStats measure(bool user_level, int count) {
  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 2;
  config.dproc_nodes.emplace();  // bare hosts; we drive the channels manually
  core::Cluster cluster{engine, config};

  // Background load on both endpoints.
  workload::LinpackTask load0{cluster.host(0)}, load1{cluster.host(1)};

  const double endpoint_cpu_sec = 50e-6;  // per-message endpoint processing
  const SimDuration timeslice = milliseconds(50.0);  // Linux 2.4 default-ish
  host::TaskId task0 = 0, task1 = 0;
  if (user_level) {
    task0 = cluster.host(0).cpu().add_server_task("user-endpoint");
    task1 = cluster.host(1).cpu().add_server_task("user-endpoint");
  }

  // A woken user process waits for the current task's quantum remainder
  // before it is dispatched; kernel handlers do not.
  auto dispatch = [&](host::Host& host, std::function<void()> fn) {
    const double competitors =
        static_cast<double>(host.cpu().run_queue_length());
    const SimDuration delay =
        timeslice * host.rng().uniform() * std::max(competitors, 1.0);
    host.engine().schedule_after(delay, std::move(fn));
  };

  StreamingStats stats;
  net::Nic& nic0 = cluster.nic(0);
  net::Nic& nic1 = cluster.nic(1);
  SimTime sent_at;

  // Node 1: echo every datagram after its endpoint processing.
  nic1.bind_datagram(40, [&](net::NodeId, net::Port, const net::MessagePtr& m) {
    auto reply = [&nic1, m] { nic1.send_datagram(0, 41, m, 40); };
    if (user_level) {
      dispatch(cluster.host(1), [&, reply] {
        cluster.host(1).cpu().submit_work(task1, endpoint_cpu_sec, reply);
      });
    } else {
      cluster.host(1).cpu().consume_kernel(seconds(endpoint_cpu_sec));
      reply();
    }
  });

  int remaining = count;
  std::function<void()> send_next;
  auto complete = [&] {
    stats.add((engine.now() - sent_at).us());
    if (--remaining > 0) {
      engine.schedule_after(milliseconds(7.0), send_next);
    }
  };
  // Node 0: account the receive processing, then record the RTT.
  nic0.bind_datagram(41, [&](net::NodeId, net::Port, const net::MessagePtr&) {
    if (user_level) {
      dispatch(cluster.host(0), [&] {
        cluster.host(0).cpu().submit_work(task0, endpoint_cpu_sec, complete);
      });
    } else {
      cluster.host(0).cpu().consume_kernel(seconds(endpoint_cpu_sec));
      complete();
    }
  });

  send_next = [&] {
    sent_at = engine.now();
    nic0.send_datagram(1, 40, net::make_message({}, 64), 41);
  };
  engine.schedule_after(milliseconds(5.0), send_next);
  engine.run_until(SimTime{} + seconds(400.0));

  return LatencyStats{stats.mean(), stats.stddev(), stats.max()};
}

/// Wall-clock cost of the KECho hot path itself: encode + fan-out submit on
/// a 4-member channel, delivery through the fabric, zero-copy decode and
/// poll drain on every subscriber. Reported per submitted event.
JsonBenchEntry measure_submit_fanout(std::uint64_t events) {
  using Clock = std::chrono::steady_clock;
  constexpr std::size_t kNodes = 4;

  sim::Engine engine;
  net::Fabric fabric{engine};
  std::vector<net::NodeId> ids;
  for (std::size_t i = 0; i < kNodes; ++i) {
    ids.push_back(fabric.add_node("n" + std::to_string(i)));
  }
  fabric.build_star(ids, net::LinkConfig{});
  Rng master{99};
  std::vector<std::unique_ptr<host::Host>> hosts;
  std::vector<std::unique_ptr<net::Nic>> nics;
  for (std::size_t i = 0; i < kNodes; ++i) {
    host::HostConfig config;
    config.name = "n" + std::to_string(i);
    hosts.push_back(std::make_unique<host::Host>(
        engine, static_cast<host::HostId>(i), config, master.split()));
    nics.push_back(std::make_unique<net::Nic>(fabric, ids[i]));
  }
  kecho::RegistryServer registry{*nics[0]};
  std::vector<std::unique_ptr<kecho::Node>> nodes;
  for (std::size_t i = 0; i < kNodes; ++i) {
    nodes.push_back(std::make_unique<kecho::Node>(*hosts[i], *nics[i], ids[0]));
  }
  std::vector<kecho::Channel*> channels;
  for (std::size_t i = 0; i < kNodes; ++i) {
    channels.push_back(&nodes[i]->join("monitor"));
  }
  engine.run_until(engine.now() + seconds(2.0));

  // A paper-sized (~84 byte) monitoring event, reused across submissions.
  net::ByteWriter w;
  for (int i = 0; i < 10; ++i) w.f64(1.5 * i);
  const net::MessagePtr payload = net::make_message(w.take(), 0);

  std::uint64_t delivered = 0;
  for (std::size_t i = 1; i < kNodes; ++i) {
    channels[i]->set_handler([&](const kecho::Event&) { ++delivered; });
  }
  // Warm-up pass so steady state excludes TCP connection setup.
  const auto drive = [&](std::uint64_t count) {
    for (std::uint64_t e = 0; e < count; ++e) {
      channels[0]->submit(payload);
      engine.run_until(engine.now() + milliseconds(5.0));
      for (std::size_t i = 1; i < kNodes; ++i) (void)nodes[i]->poll();
    }
  };
  drive(64);

  const std::uint64_t allocs_before = alloc_count();
  const Clock::time_point start = Clock::now();
  drive(events);
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - start)
                              .count());
  const std::uint64_t allocs = alloc_count() - allocs_before;
  if (delivered == 0) std::abort();  // harness wired wrong

  JsonBenchEntry entry;
  entry.name = "submit_fanout_4node_roundtrip";
  entry.iterations = events;
  entry.ns_per_event = ns / static_cast<double>(events);
  entry.ops_per_sec = 1e9 / entry.ns_per_event;
  entry.allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(events);
  return entry;
}

}  // namespace
}  // namespace dproc::bench

int main(int argc, char** argv) {
  using namespace dproc::bench;
  // argv[1] overrides the RTT round-trip count (the smoke test runs small).
  int rtt_count = 2000;
  if (argc > 1) {
    const int v = std::atoi(argv[1]);
    if (v > 0) rtt_count = v;
  }
  const LatencyStats kernel = measure(/*user_level=*/false, rtt_count);
  const LatencyStats user = measure(/*user_level=*/true, rtt_count);

  Table table({"level(0=kernel,1=user)", "mean_rtt_us", "stddev_us", "max_us"});
  table.add_row({0, kernel.mean_us, kernel.stddev_us, kernel.max_us});
  table.add_row({1, user.mean_us, user.stddev_us, user.max_us});
  table.print("micro_kecho_rtt_kernel_vs_user");

  std::printf(
      "\npaper ([11], motivating dproc's kernel-kernel messaging): RTT\n"
      "variation is much larger for user-level communication because the\n"
      "endpoints wait on the CPU scheduler behind application load.\n"
      "variance ratio (user/kernel stddev): %.1fx\n",
      user.stddev_us / (kernel.stddev_us > 0 ? kernel.stddev_us : 1.0));

  const std::uint64_t events = bench_iterations(20'000);
  const bool ok = write_bench_json("micro_kecho", {measure_submit_fanout(events)});
  return ok ? 0 : 1;
}
