#include "alloc_counter.hpp"

#include <atomic>
#include <cstdlib>
#include <new>

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

namespace dproc::bench {

std::uint64_t alloc_count() {
  return g_allocs.load(std::memory_order_relaxed);
}

}  // namespace dproc::bench

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
