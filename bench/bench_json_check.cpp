// Validates BENCH_*.json files emitted by the microbenchmarks.
//
// Run by the bench-smoke CTest target after the smoke benches: parses each
// file with a strict little JSON parser and checks the schema documented in
// bench_json.hpp — a "bench" string and a non-empty "benchmarks" array whose
// entries carry a name plus positive ops_per_sec / ns_per_event and a
// non-negative allocs_per_event. Exits non-zero on any parse or schema
// error so a rotten harness fails the suite instead of rotting silently.
#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : text_(std::move(text)) {}

  bool parse(JsonValue& out, std::string& error) {
    if (!value(out)) {
      error = error_ + " at offset " + std::to_string(pos_);
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error = "trailing data at offset " + std::to_string(pos_);
      return false;
    }
    return true;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool fail(const std::string& why) {
    if (error_.empty()) error_ = why;
    return false;
  }
  bool literal(const char* word, JsonValue& out, JsonValue::Kind kind,
               bool boolean) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) return fail("bad literal");
    }
    out.kind = kind;
    out.boolean = boolean;
    return true;
  }
  bool string_token(std::string& out) {
    if (text_[pos_] != '"') return fail("expected string");
    ++pos_;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return fail("bad escape");
        switch (text_[pos_++]) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          default: return fail("unsupported escape");
        }
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) return fail("unterminated string");
    ++pos_;  // closing quote
    return true;
  }
  bool value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == 'n') return literal("null", out, JsonValue::Kind::kNull, false);
    if (c == 't') return literal("true", out, JsonValue::Kind::kBool, true);
    if (c == 'f') return literal("false", out, JsonValue::Kind::kBool, false);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return string_token(out.string);
    }
    if (c == '[') {
      ++pos_;
      out.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      while (true) {
        JsonValue element;
        if (!value(element)) return false;
        out.array.push_back(std::move(element));
        skip_ws();
        if (pos_ >= text_.size()) return fail("unterminated array");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      ++pos_;
      out.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!string_token(key)) return false;
        skip_ws();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return fail("expected ':'");
        }
        ++pos_;
        JsonValue element;
        if (!value(element)) return false;
        out.object.emplace(std::move(key), std::move(element));
        skip_ws();
        if (pos_ >= text_.size()) return fail("unterminated object");
        if (text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    // number
    const std::size_t start = pos_;
    if (text_[pos_] == '-' || text_[pos_] == '+') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return fail("unexpected character");
    try {
      out.number = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return fail("bad number");
    }
    out.kind = JsonValue::Kind::kNumber;
    return true;
  }

  std::string text_;
  std::size_t pos_ = 0;
  std::string error_;
};

bool check_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path.c_str());
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  JsonValue root;
  std::string error;
  if (!JsonParser{buffer.str()}.parse(root, error)) {
    std::fprintf(stderr, "%s: JSON parse error: %s\n", path.c_str(),
                 error.c_str());
    return false;
  }
  const auto schema_error = [&](const std::string& why) {
    std::fprintf(stderr, "%s: schema error: %s\n", path.c_str(), why.c_str());
    return false;
  };
  if (root.kind != JsonValue::Kind::kObject) {
    return schema_error("top level is not an object");
  }
  const auto bench = root.object.find("bench");
  if (bench == root.object.end() ||
      bench->second.kind != JsonValue::Kind::kString ||
      bench->second.string.empty()) {
    return schema_error("missing or empty \"bench\" string");
  }
  const auto benchmarks = root.object.find("benchmarks");
  if (benchmarks == root.object.end() ||
      benchmarks->second.kind != JsonValue::Kind::kArray ||
      benchmarks->second.array.empty()) {
    return schema_error("missing or empty \"benchmarks\" array");
  }
  for (const JsonValue& entry : benchmarks->second.array) {
    if (entry.kind != JsonValue::Kind::kObject) {
      return schema_error("benchmark entry is not an object");
    }
    const auto field = [&](const char* key, JsonValue::Kind kind,
                           const JsonValue** out) {
      const auto it = entry.object.find(key);
      if (it == entry.object.end() || it->second.kind != kind) return false;
      *out = &it->second;
      return true;
    };
    const JsonValue* v = nullptr;
    if (!field("name", JsonValue::Kind::kString, &v) || v->string.empty()) {
      return schema_error("entry missing \"name\"");
    }
    const std::string name = v->string;
    if (!field("ops_per_sec", JsonValue::Kind::kNumber, &v) || v->number <= 0) {
      return schema_error(name + ": ops_per_sec missing or not positive");
    }
    if (!field("ns_per_event", JsonValue::Kind::kNumber, &v) || v->number <= 0) {
      return schema_error(name + ": ns_per_event missing or not positive");
    }
    if (!field("allocs_per_event", JsonValue::Kind::kNumber, &v) ||
        v->number < 0) {
      return schema_error(name + ": allocs_per_event missing or negative");
    }
  }
  std::printf("%s: ok (%zu benchmark entries)\n", path.c_str(),
              benchmarks->second.array.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: bench_json_check <BENCH_*.json>...\n");
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) ok = check_file(argv[i]) && ok;
  return ok ? 0 : 1;
}
