// Process-global heap allocation counter.
//
// Linking alloc_counter.cpp into a binary replaces the global operator
// new/delete pair with counting versions; alloc_count() then reads the
// number of allocations performed so far. Used by the microbenchmarks to
// report allocs/event and by the perf regression tests to pin the hot
// paths at zero steady-state allocations.
#pragma once

#include <cstdint>

namespace dproc::bench {

/// Allocations (operator new calls) since process start.
std::uint64_t alloc_count();

}  // namespace dproc::bench
