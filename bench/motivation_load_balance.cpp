// The paper's §1 motivation, quantified: "reallocation of workers from one
// parallel task component to another to achieve better load balance".
//
// A master farms a 60-unit batch to 3 workers while one worker suffers
// 0..4 background linpack threads. Blind round-robin keeps feeding the
// crushed worker its fair share; dproc-driven placement reads the cluster's
// loadavg feeds and steers around it. Reported: batch makespan for both
// policies and the speedup.
#include <memory>

#include "bench_common.hpp"
#include "dproc/apps/workqueue.hpp"
#include "dproc/workload/linpack.hpp"

namespace dproc::bench {
namespace {

double run_cell(dproc::apps::SchedulePolicy policy, int hogs) {
  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 4;  // master + 3 workers
  core::Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(2.0));

  apps::WorkQueueConfig wq;
  wq.policy = policy;
  wq.max_outstanding_per_worker = 100;  // no implicit backpressure
  std::vector<std::unique_ptr<apps::Worker>> workers;
  for (std::size_t i = 1; i < 4; ++i) {
    workers.push_back(
        std::make_unique<apps::Worker>(cluster.host(i), cluster.nic(i), wq));
  }
  std::vector<std::unique_ptr<workload::LinpackTask>> load;
  for (int i = 0; i < hogs; ++i) {
    load.push_back(std::make_unique<workload::LinpackTask>(cluster.host(1)));
  }
  engine.run_until(SimTime{} + seconds(10.0));  // monitoring settles

  apps::Master master{cluster.host(0), cluster.nic(0), cluster.dmon(0),
                      {1, 2, 3}, wq};
  engine.run_until(engine.now() + seconds(1.0));  // connections establish
  const SimTime start = engine.now();
  master.submit(60);
  engine.run_until(engine.now() + seconds(300.0));
  if (master.completed() < 60) return -1.0;  // did not finish (shouldn't happen)
  return (master.last_completion_at() - start).sec();
}

}  // namespace
}  // namespace dproc::bench

int main() {
  using namespace dproc::bench;
  Table table({"hogs_on_worker1", "round_robin_makespan_s",
               "dproc_makespan_s", "speedup"});
  for (int hogs = 0; hogs <= 4; ++hogs) {
    const double blind = run_cell(dproc::apps::SchedulePolicy::kRoundRobin, hogs);
    const double informed = run_cell(dproc::apps::SchedulePolicy::kDprocLoad, hogs);
    table.add_row({static_cast<double>(hogs), blind, informed,
                   informed > 0 ? blind / informed : 0.0});
  }
  table.print("motivation_load_balance_makespan");
  std::printf(
      "\npaper §1: run-time monitoring lets applications rebalance work\n"
      "under dynamic conditions. With no background load the policies tie;\n"
      "as one worker degrades, dproc-driven placement wins by the ratio of\n"
      "wasted to useful capacity.\n");
  return 0;
}
