// Replicated-registry benchmark: join-completion latency through a join
// storm, with and without replication + client caching, and under a leader
// kill landing mid-storm.
//
// Every node (minus the three replica hosts) joins one channel at t=1.0 —
// the ISSUE's 512-node join storm. Three scenarios:
//
//   single          one registry server, no replication, no cache
//   replicated      3 replicas + client-side channel cache, no fault
//   leader_kill     same, with the lease leader killed 1 ms into the storm
//
// Join-completion latency is measured per node from the join() call to the
// channel turning ready; the table reports p50/p99 per scenario. Emits
// BENCH_micro_registry.json. CI bar (exit code): p99 under the leader kill
// must stay within 3x of the no-fault single-server baseline — failover
// (lease expiry + queued-write drain) may cost a bounded constant, not a
// multiple of the storm itself.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "dproc/core/cluster.hpp"
#include "dproc/sim/fault.hpp"

namespace dproc::bench {
namespace {

constexpr double kStormAt = 1.0;

struct StormResult {
  std::string name;
  std::size_t joiners = 0;
  std::size_t completed = 0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  std::uint64_t failovers = 0;
  std::uint64_t forwards = 0;
  std::uint64_t queued = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t events = 0;
};

std::size_t bench_nodes() {
  if (const char* s = std::getenv("DPROC_BENCH_NODES")) {
    const unsigned long v = std::strtoul(s, nullptr, 10);
    if (v >= 8) return static_cast<std::size_t>(v);
  }
  return 512;
}

/// Replica heartbeat period in ms (DPROC_BENCH_HB_MS, default 100). The
/// failover cost is a constant of roughly one lease (heartbeat x misses)
/// plus one queue-drain tick, so the ratio bar against the no-fault
/// baseline only binds when the lease is sized against the storm: the
/// 512-node default storm tail is seconds, the 96-node smoke tail tens of
/// milliseconds, hence the smoke test passes a 25 ms heartbeat.
double bench_heartbeat_ms() {
  if (const char* s = std::getenv("DPROC_BENCH_HB_MS")) {
    const double v = std::strtod(s, nullptr);
    if (v >= 1.0) return v;
  }
  return 100.0;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

/// One storm run. Replication keeps a deliberately short lease (100 ms
/// heartbeats, 3 misses) so the failover constant is visible next to the
/// storm's own queueing tail rather than dwarfing it.
StormResult run_storm(std::size_t nodes, bool replicated, bool leader_kill,
                      const std::string& name) {
  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = nodes;
  config.dproc_nodes = std::vector<std::size_t>{};  // directory traffic only
  config.liveness.join_retries = true;
  config.liveness.retry_jitter = 1.0;
  config.liveness.retry_base = milliseconds(50.0);
  config.liveness.retry_cap = seconds(1.0);
  if (replicated) {
    config.registry.enabled = true;
    config.registry.replicas = 3;
    config.registry.heartbeat_period = milliseconds(bench_heartbeat_ms());
    config.registry.miss_threshold = 3;
    config.registry.client_cache = true;
  }
  core::Cluster cluster{engine, config};

  // Nodes 0..2 host the replicas; everyone else joins the storm channel, so
  // the kill never takes a joiner down with it.
  const std::size_t first_joiner = 3;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(nodes - first_joiner);
  engine.schedule_at(SimTime::zero() + seconds(kStormAt), [&] {
    for (std::size_t i = first_joiner; i < cluster.size(); ++i) {
      cluster.node(i).kecho->join("storm", [&engine, &latencies_ms](
                                               kecho::Channel&) {
        latencies_ms.push_back(
            (engine.now() - (SimTime::zero() + seconds(kStormAt))).ms());
      });
    }
  });
  if (leader_kill) {
    sim::FaultPlan plan;
    plan.kill_registry_leader(SimTime::zero() + seconds(kStormAt + 0.001));
    cluster.inject(plan);
  }
  engine.run_until(SimTime::zero() + seconds(30.0));

  StormResult result;
  result.name = name;
  result.joiners = nodes - first_joiner;
  result.completed = latencies_ms.size();
  std::sort(latencies_ms.begin(), latencies_ms.end());
  result.p50_ms = percentile(latencies_ms, 0.50);
  result.p99_ms = percentile(latencies_ms, 0.99);
  result.max_ms = latencies_ms.empty() ? 0.0 : latencies_ms.back();
  for (std::size_t r = 0; r < cluster.registry_replica_count(); ++r) {
    const kecho::RegistryStats& stats = cluster.registry_replica(r).stats();
    result.failovers += stats.failovers;
    result.forwards += stats.forwards;
    result.queued += stats.queued_writes;
  }
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    result.cache_hits += cluster.node(i).kecho->cache_stats().hits;
  }
  result.events = engine.events_processed();
  return result;
}

JsonBenchEntry to_entry(const StormResult& result) {
  JsonBenchEntry entry;
  entry.name = result.name;
  entry.iterations = result.joiners;
  entry.ns_per_event = result.p99_ms * 1e6;  // p99 join latency, in ns
  entry.ops_per_sec =
      entry.ns_per_event > 0.0 ? 1e9 / entry.ns_per_event : 0.0;
  entry.allocs_per_event = 0.0;
  entry.extras.emplace_back("joins_completed",
                            static_cast<double>(result.completed));
  entry.extras.emplace_back("p50_ms", result.p50_ms);
  entry.extras.emplace_back("p99_ms", result.p99_ms);
  entry.extras.emplace_back("max_ms", result.max_ms);
  entry.extras.emplace_back("failovers",
                            static_cast<double>(result.failovers));
  entry.extras.emplace_back("forwards", static_cast<double>(result.forwards));
  entry.extras.emplace_back("queued_writes",
                            static_cast<double>(result.queued));
  entry.extras.emplace_back("cache_hits",
                            static_cast<double>(result.cache_hits));
  return entry;
}

}  // namespace
}  // namespace dproc::bench

int main(int argc, char** argv) {
  using namespace dproc::bench;
  std::size_t nodes = bench_nodes();
  if (argc > 1) {
    const int v = std::atoi(argv[1]);
    if (v >= 8) nodes = static_cast<std::size_t>(v);
  }

  const StormResult single =
      run_storm(nodes, /*replicated=*/false, /*leader_kill=*/false, "single");
  const StormResult replicated = run_storm(nodes, /*replicated=*/true,
                                           /*leader_kill=*/false,
                                           "replicated_cached");
  const StormResult killed = run_storm(nodes, /*replicated=*/true,
                                       /*leader_kill=*/true, "leader_kill");

  Table table({"scenario", "completed", "p50_ms", "p99_ms", "max_ms",
               "failovers"});
  std::vector<JsonBenchEntry> entries;
  std::size_t row = 0;
  for (const StormResult* result : {&single, &replicated, &killed}) {
    table.add_row({static_cast<double>(row++),
                   static_cast<double>(result->completed), result->p50_ms,
                   result->p99_ms, result->max_ms,
                   static_cast<double>(result->failovers)});
    entries.push_back(to_entry(*result));
  }
  table.print("micro_registry_join_storm");
  std::printf(
      "\njoin storm at %zu nodes: p99 %.1f ms single, %.1f ms replicated, "
      "%.1f ms under leader kill (%.2fx baseline)\n",
      nodes, single.p99_ms, replicated.p99_ms, killed.p99_ms,
      single.p99_ms > 0.0 ? killed.p99_ms / single.p99_ms : 0.0);

  const bool ok = write_bench_json("micro_registry", entries);
  bool pass = ok;
  // Correctness gates first: every join completes in every scenario, and
  // the kill actually exercised a failover.
  for (const StormResult* result : {&single, &replicated, &killed}) {
    if (result->completed != result->joiners) {
      std::fprintf(stderr, "micro_registry: %s completed %zu/%zu joins\n",
                   result->name.c_str(), result->completed, result->joiners);
      pass = false;
    }
  }
  if (killed.failovers == 0) {
    std::fprintf(stderr, "micro_registry: leader kill caused no failover\n");
    pass = false;
  }
  // The ISSUE acceptance bar: p99 join latency under the leader kill stays
  // within 3x of the no-fault single-server baseline.
  if (killed.p99_ms > 3.0 * single.p99_ms) {
    std::fprintf(stderr,
                 "micro_registry: leader-kill p99 %.1f ms exceeds 3x "
                 "baseline %.1f ms\n",
                 killed.p99_ms, single.p99_ms);
    pass = false;
  }
  return pass ? 0 : 1;
}
