// Shared helpers for the figure-reproduction benchmarks.
//
// Every bench binary prints the paper's series as an aligned text table plus
// a CSV block (grep '^csv,' to extract). The simulated testbed defaults to
// the paper's §4 platform: 8 nodes, ~17.4 Mflops CPUs, switched 100 Mbps
// Fast Ethernet, monitoring events of 50–100 bytes.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "dproc/core/cluster.hpp"

namespace dproc::bench {

/// Column-aligned table + machine-readable CSV printer.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {}

  void add_row(const std::vector<double>& values) { rows_.push_back(values); }

  void print(const std::string& title) const {
    std::printf("\n== %s ==\n", title.c_str());
    for (const auto& c : columns_) std::printf("%-22s", c.c_str());
    std::printf("\n");
    for (const auto& row : rows_) {
      for (double v : row) std::printf("%-22.6g", v);
      std::printf("\n");
    }
    for (const auto& row : rows_) {
      std::printf("csv,%s", title.c_str());
      for (double v : row) std::printf(",%.6g", v);
      std::printf("\n");
    }
    std::fflush(stdout);
  }

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

/// The three monitoring configurations compared throughout §4.1.
enum class MonitorConfig { kPeriod1s, kPeriod2s, kDifferential };

inline const char* to_string(MonitorConfig config) {
  switch (config) {
    case MonitorConfig::kPeriod1s: return "update_period_1s";
    case MonitorConfig::kPeriod2s: return "update_period_2s";
    case MonitorConfig::kDifferential: return "differential_filter";
  }
  return "?";
}

inline core::ClusterConfig paper_cluster(std::size_t node_count,
                                         MonitorConfig config) {
  (void)config;  // applied post-construction, see apply_monitor_config
  core::ClusterConfig cluster;
  cluster.node_count = node_count;
  // d-mon always polls once per second (§2.1); the update period and the
  // differential filter are tuning parameters layered on top.
  cluster.dmon.poll_period = seconds(1.0);
  return cluster;
}

/// Applies the §4.1 monitoring configuration to every d-mon: a 1 s or 2 s
/// update period, or the 15% differential filter.
inline void apply_monitor_config(core::Cluster& cluster, MonitorConfig config,
                                 double differential_pct = 15.0) {
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (cluster.dmon(i) == nullptr) continue;
    core::TuningConfig tuning;
    switch (config) {
      case MonitorConfig::kPeriod1s:
        tuning.default_period = seconds(1.0);
        break;
      case MonitorConfig::kPeriod2s:
        tuning.default_period = seconds(2.0);
        break;
      case MonitorConfig::kDifferential:
        tuning.differential_pct = differential_pct;
        break;
    }
    cluster.dmon(i)->apply_tuning(tuning);
  }
}

}  // namespace dproc::bench
