// Figure 8: overhead of receiving incoming events per polling iteration.
//
// Paper: d-mon polls its listening sockets every second and consumes queued
// events; the handling cost stays under 1 ms at 8 nodes for the 2 s period
// and the differential filter, and under ~2.2 ms for the 1 s period.
#include "bench_common.hpp"

namespace dproc::bench {
namespace {

double run_cell(std::size_t nodes, MonitorConfig config) {
  sim::Engine engine;
  core::ClusterConfig cluster_config = paper_cluster(nodes, config);
  core::Cluster cluster{engine, cluster_config};
  cluster.start_dproc();
  apply_monitor_config(cluster, config);

  const double period = cluster_config.dmon.poll_period.sec();
  engine.run_until(SimTime{} + seconds(5.0 * period + 3.0));
  core::DMon& dmon = *cluster.dmon(0);
  StreamingStats costs;
  const std::uint64_t start_count = dmon.receive_cost_us().count();
  while (dmon.receive_cost_us().count() < start_count + 100) {
    engine.run_for(seconds(period));
    costs.add(dmon.last_poll().receive_cost.us());
  }
  return costs.mean();
}

}  // namespace
}  // namespace dproc::bench

int main() {
  using namespace dproc::bench;
  Table table({"nodes", "update_period_1s", "update_period_2s",
               "differential_filter"});
  for (std::size_t n = 1; n <= 8; ++n) {
    table.add_row({static_cast<double>(n),
                   run_cell(n, MonitorConfig::kPeriod1s),
                   run_cell(n, MonitorConfig::kPeriod2s),
                   run_cell(n, MonitorConfig::kDifferential)});
  }
  table.print("fig8_receive_overhead_us_vs_nodes");
  std::printf(
      "\npaper: <1 ms at 8 nodes for 2 s period and differential filter,\n"
      "       <2.2 ms for the 1 s period (Figure 8).\n");
  return 0;
}
