// Flight-recorder microbenchmark: the cost of a record point, wall-clock.
//
// The recorder's contract is that instrumenting every membership change,
// liveness transition, and SLO breach is cheap enough to leave on in any
// experiment: a disabled record point is one relaxed atomic load and a
// branch, and an enabled one is a spinlock acquire plus a fixed-size slot
// write — no allocation either way. This bench measures both paths with
// std::chrono (real nanoseconds, not simulated cycles, since record() is
// host-side bookkeeping outside the simulation's cost model), pins the
// steady-state allocation count at zero via the alloc counter, and fails
// (exit 1) if the enabled path exceeds 100 ns/event — the acceptance bar.
//
// Extras report the telemetry counter-add and interned-id lookup costs for
// comparison: a flight record should stay within an order of magnitude of
// a counter bump, or instrumenting transitions would distort experiments.
#include <chrono>
#include <cstdint>
#include <cstdio>

#include "alloc_counter.hpp"
#include "bench_json.hpp"
#include "dproc/telemetry/flight.hpp"
#include "dproc/telemetry/telemetry.hpp"

namespace dproc::bench {
namespace {

volatile std::uint64_t g_sink = 0;

/// Measures `fn(i)` over `iters` iterations; returns ns/op.
template <typename Fn>
double measure_ns(std::uint64_t iters, Fn&& fn) {
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) fn(i);
  const auto stop = std::chrono::steady_clock::now();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
          .count();
  return static_cast<double>(ns) / static_cast<double>(iters);
}

JsonBenchEntry entry(const std::string& name, double ns_per_event,
                     std::uint64_t iters, std::uint64_t allocs) {
  JsonBenchEntry e;
  e.name = name;
  e.ns_per_event = ns_per_event;
  e.ops_per_sec = ns_per_event > 0 ? 1e9 / ns_per_event : 0.0;
  e.allocs_per_event =
      static_cast<double>(allocs) / static_cast<double>(iters);
  e.iterations = iters;
  return e;
}

int run() {
  const std::uint64_t iters = bench_iterations(2'000'000);
  std::vector<JsonBenchEntry> entries;

  telemetry::FlightRecorder disabled;  // never configured: the default state
  {
    const std::uint64_t a0 = alloc_count();
    const double ns = measure_ns(iters, [&](std::uint64_t i) {
      disabled.record(telemetry::Severity::kInfo,
                      telemetry::FlightSubsystem::kDmon,
                      telemetry::FlightCode::kPeerLive, i);
    });
    entries.push_back(
        entry("record_disabled", ns, iters, alloc_count() - a0));
    g_sink += disabled.size();
  }

  telemetry::FlightRecorder enabled;
  enabled.configure(1024);
  enabled.set_enabled(true);
  double enabled_ns = 0.0;
  {
    // Warm the ring past the fill phase so the measured loop is pure
    // steady-state overwrite.
    for (std::uint64_t i = 0; i < 2048; ++i) {
      enabled.record(telemetry::Severity::kInfo,
                     telemetry::FlightSubsystem::kDmon,
                     telemetry::FlightCode::kPeerLive, i);
    }
    const std::uint64_t a0 = alloc_count();
    enabled_ns = measure_ns(iters, [&](std::uint64_t i) {
      enabled.record(telemetry::Severity::kWarn,
                     telemetry::FlightSubsystem::kDmon,
                     telemetry::FlightCode::kPeerStale, i, i * 3, i * 5, 0,
                     i);
    });
    const std::uint64_t allocs = alloc_count() - a0;
    entries.push_back(entry("record_enabled", enabled_ns, iters, allocs));
    g_sink += enabled.dropped();
    if (allocs != 0) {
      std::fprintf(stderr,
                   "micro_flight: enabled record() allocated (%llu allocs)\n",
                   static_cast<unsigned long long>(allocs));
      return 1;
    }
  }

  // Comparison points: a telemetry counter bump through the interned-id
  // fast path, and the string-keyed lookup it replaces.
  telemetry::Registry registry;
  registry.set_enabled(true);
  telemetry::Counter& counter = registry.counter("bench", "events");
  const telemetry::InstrumentId id = registry.counter_id("bench", "events");
  {
    const std::uint64_t a0 = alloc_count();
    const double ns =
        measure_ns(iters, [&](std::uint64_t) { counter.add(); });
    entries.push_back(entry("counter_add", ns, iters, alloc_count() - a0));
  }
  {
    const std::uint64_t a0 = alloc_count();
    const double ns =
        measure_ns(iters, [&](std::uint64_t) { registry.counter(id).add(); });
    entries.push_back(
        entry("counter_add_by_id", ns, iters, alloc_count() - a0));
  }
  {
    const std::uint64_t lookup_iters = iters / 10 + 1;
    const std::uint64_t a0 = alloc_count();
    const double ns = measure_ns(lookup_iters, [&](std::uint64_t) {
      registry.counter("bench", "events").add();
    });
    entries.push_back(entry("counter_lookup_by_name", ns, lookup_iters,
                            alloc_count() - a0));
  }

  entries[1].extras.emplace_back("budget_ns", 100.0);
  write_bench_json("micro_flight", entries);
  std::printf("record disabled %.2f ns, enabled %.2f ns (budget 100 ns)\n",
              entries[0].ns_per_event, enabled_ns);

  // The acceptance bar. Smoke runs (tiny DPROC_BENCH_ITERS) are noisy, so
  // the bar only binds at full scale.
  if (iters >= 1'000'000 && enabled_ns > 100.0) {
    std::fprintf(stderr, "micro_flight: enabled record %.2f ns > 100 ns\n",
                 enabled_ns);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace dproc::bench

int main() { return dproc::bench::run(); }
