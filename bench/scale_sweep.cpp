// Scalability sweep beyond the paper's 8-node testbed.
//
// The paper argues dproc's peer-to-peer channels scale better than
// centralized collectors (Supermon's "centralized data concentrator" is
// called out). With N nodes each publishing to N-1 peers, per-node cost
// grows linearly in N while a central collector's receive path grows as
// N^2 events per interval. This sweep measures both quantities in the same
// simulated cluster: per-node submit/receive cost, total monitoring wire
// traffic, and the hypothetical concentrator load (sum of all events).
#include "bench_common.hpp"

namespace dproc::bench {
namespace {

struct ScalePoint {
  double submit_us;
  double receive_us;
  double cluster_kbps;      // total monitoring traffic on the wire
  double events_per_s;      // cluster-wide published events/s
};

ScalePoint run_cell(std::size_t nodes) {
  sim::Engine engine;
  core::ClusterConfig config = paper_cluster(nodes, MonitorConfig::kPeriod1s);
  core::Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(5.0));

  std::uint64_t wire_before = 0;
  for (std::size_t i = 0; i < nodes; ++i) {
    wire_before += cluster.nic(i).stats().bytes_sent;
  }
  const double window = 30.0;
  std::uint64_t events = 0;
  StreamingStats submit_us, receive_us;
  const SimTime end = engine.now() + seconds(window);
  while (engine.now() < end) {
    engine.run_for(seconds(1.0));
    submit_us.add(cluster.dmon(0)->last_poll().submit_cost.us());
    receive_us.add(cluster.dmon(0)->last_poll().receive_cost.us());
    for (std::size_t i = 0; i < nodes; ++i) {
      events += cluster.dmon(i)->last_poll().events_submitted;
    }
  }
  std::uint64_t wire_after = 0;
  for (std::size_t i = 0; i < nodes; ++i) {
    wire_after += cluster.nic(i).stats().bytes_sent;
  }
  return ScalePoint{
      submit_us.mean(), receive_us.mean(),
      static_cast<double>(wire_after - wire_before) * 8.0 / window / 1e3,
      static_cast<double>(events) / window};
}

}  // namespace
}  // namespace dproc::bench

int main() {
  using namespace dproc::bench;
  Table table({"nodes", "node0_submit_us", "node0_receive_us",
               "cluster_monitor_kbps", "concentrator_events_per_s"});
  for (std::size_t n : {2, 4, 8, 16, 32}) {
    const ScalePoint point = run_cell(n);
    table.add_row({static_cast<double>(n), point.submit_us, point.receive_us,
                   point.cluster_kbps, point.events_per_s});
  }
  table.print("scale_sweep_per_node_vs_concentrator");
  std::printf(
      "\nPer-node costs grow linearly with cluster size (peer-to-peer);\n"
      "the last column is what a Supermon-style central concentrator would\n"
      "have to absorb at one node — growing with N x events, the paper's\n"
      "scalability argument (§1, Related Work).\n");
  return 0;
}
