// Pseudo-filesystem microbenchmarks (wall-clock, google-benchmark).
#include <benchmark/benchmark.h>

#include "dproc/procfs/procfs.hpp"

namespace {

using dproc::procfs::ProcFs;

void populate(ProcFs& fs, int nodes) {
  for (int n = 0; n < nodes; ++n) {
    const std::string base = "/proc/cluster/node" + std::to_string(n);
    for (const char* metric :
         {"cpu/loadavg", "cpu/utilization", "mem/freemem", "disk/sectors",
          "net/in_bps", "net/out_bps", "pmc/cache_misses"}) {
      (void)fs.register_file(base + "/" + metric, [] { return "42\n"; });
    }
    (void)fs.register_file(
        base + "/control", [] { return ""; },
        [](const std::string&) { return dproc::Status::ok(); });
  }
}

void BM_ProcfsRead(benchmark::State& state) {
  ProcFs fs;
  populate(fs, static_cast<int>(state.range(0)));
  const std::string path = "/proc/cluster/node0/cpu/loadavg";
  for (auto _ : state) {
    auto content = fs.read(path);
    benchmark::DoNotOptimize(content);
  }
}
BENCHMARK(BM_ProcfsRead)->Arg(8)->Arg(64)->Arg(512);

void BM_ProcfsControlWrite(benchmark::State& state) {
  ProcFs fs;
  populate(fs, 8);
  for (auto _ : state) {
    auto status = fs.write("/proc/cluster/node0/control", "period 2\n");
    benchmark::DoNotOptimize(status);
  }
}
BENCHMARK(BM_ProcfsControlWrite);

void BM_ProcfsRegisterRemove(benchmark::State& state) {
  ProcFs fs;
  populate(fs, 8);
  for (auto _ : state) {
    (void)fs.register_file("/proc/tmp/metric", [] { return ""; });
    (void)fs.remove("/proc/tmp");
  }
}
BENCHMARK(BM_ProcfsRegisterRemove);

void BM_ProcfsList(benchmark::State& state) {
  ProcFs fs;
  populate(fs, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto entries = fs.list("/proc/cluster");
    benchmark::DoNotOptimize(entries);
  }
}
BENCHMARK(BM_ProcfsList)->Arg(8)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
