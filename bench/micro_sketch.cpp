// Heavy-hitter sketch microbenchmark: the constant-space claim, measured.
//
// Sweeps the entity count (simulated process population) across two orders
// of magnitude and records, per population: sketch update throughput, the
// sketch state footprint, and top-8 recall against an exact count table.
// The exit code enforces the module family's reason to exist:
//
//   - state_bytes identical at 100 and 10,000 entities (constant space);
//   - top-8 recall >= 7/8 on the Zipf(1.2) stream at every population.
//
// Workloads are fully deterministic (seeded Zipf observer, splitmix64
// hashing), so the bars cannot flake. Emits BENCH_micro_sketch.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <vector>

#include "bench_json.hpp"
#include "dproc/core/monitors.hpp"
#include "dproc/core/sketch.hpp"

namespace {

using dproc::core::TopKSketch;

struct SweepPoint {
  dproc::bench::JsonBenchEntry entry;
  std::size_t state_bytes = 0;
  double recall = 0.0;
};

SweepPoint measure_population(std::size_t entities, std::uint64_t draws) {
  using Clock = std::chrono::steady_clock;

  // One deterministic observation stream feeds both the sketch under test
  // and the exact table the recall is judged against.
  auto observe = dproc::core::make_zipf_observer(entities, 1.2, /*seed=*/17,
                                                 /*draws_per_collect=*/4096);
  std::vector<std::pair<std::int64_t, double>> obs;
  std::map<std::int64_t, double> exact;
  TopKSketch sketch;

  std::uint64_t updates = 0;
  double ns = 0.0;
  while (updates < draws) {
    obs.clear();
    observe(obs, dproc::SimTime::zero());
    for (const auto& [key, weight] : obs) exact[key] += weight;
    const Clock::time_point start = Clock::now();
    for (const auto& [key, weight] : obs) sketch.update(key, weight);
    ns += static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start)
            .count());
    updates += obs.size();
  }
  sketch.refresh_top(8);

  // Exact top-8 (count desc, key asc) for the recall score.
  std::vector<std::pair<std::int64_t, double>> sorted(exact.begin(),
                                                      exact.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::size_t hits = 0;
  for (std::size_t rank = 0; rank < 8; ++rank) {
    const std::int64_t key = sketch.rank_key(rank);
    for (std::size_t i = 0; i < std::min<std::size_t>(8, sorted.size()); ++i) {
      if (sorted[i].first == key) {
        ++hits;
        break;
      }
    }
  }

  SweepPoint point;
  point.state_bytes = sketch.byte_size();
  point.recall = static_cast<double>(hits) / 8.0;
  point.entry.name = "topk_update_" + std::to_string(entities);
  point.entry.iterations = updates;
  point.entry.ns_per_event = ns / static_cast<double>(updates);
  point.entry.ops_per_sec = 1e9 / point.entry.ns_per_event;
  point.entry.extras.emplace_back("state_bytes",
                                  static_cast<double>(point.state_bytes));
  point.entry.extras.emplace_back("recall8", point.recall);
  point.entry.extras.emplace_back("entities",
                                  static_cast<double>(entities));
  return point;
}

dproc::bench::JsonBenchEntry measure_cm_lookup(std::uint64_t iters) {
  using Clock = std::chrono::steady_clock;
  TopKSketch sketch;
  for (std::int64_t key = 0; key < 1'000; ++key) {
    sketch.update(key, static_cast<double>(1'000 - key));
  }
  double sink = 0.0;
  const Clock::time_point start = Clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) {
    sink += sketch.estimate(static_cast<std::int64_t>(i % 1'000));
  }
  const double ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              Clock::now() - start)
                              .count());
  dproc::bench::JsonBenchEntry entry;
  entry.name = "cm_lookup";
  entry.iterations = iters;
  entry.ns_per_event = ns / static_cast<double>(iters);
  entry.ops_per_sec = 1e9 / entry.ns_per_event;
  entry.extras.emplace_back("sink", sink > 0.0 ? 1.0 : 0.0);
  return entry;
}

}  // namespace

int main() {
  const std::uint64_t draws = dproc::bench::bench_iterations(1'000'000);

  std::vector<SweepPoint> sweep;
  for (const std::size_t entities : {100ul, 1'000ul, 10'000ul}) {
    sweep.push_back(measure_population(entities, draws));
  }

  std::vector<dproc::bench::JsonBenchEntry> entries;
  for (const SweepPoint& point : sweep) entries.push_back(point.entry);
  entries.push_back(measure_cm_lookup(std::max<std::uint64_t>(draws, 1'000)));
  if (!dproc::bench::write_bench_json("micro_sketch", entries)) return 1;

  // Exit-code bars (deterministic workload — these cannot flake).
  bool failed = false;
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    if (sweep[i].state_bytes != sweep[0].state_bytes) {
      std::fprintf(stderr,
                   "SKETCH BAR FAILED: state grows with population "
                   "(%zu bytes at point 0 vs %zu at point %zu)\n",
                   sweep[0].state_bytes, sweep[i].state_bytes, i);
      failed = true;
    }
  }
  for (const SweepPoint& point : sweep) {
    if (point.recall < 7.0 / 8.0) {
      std::fprintf(stderr,
                   "SKETCH BAR FAILED: top-8 recall %.3f < 0.875 (%s)\n",
                   point.recall, point.entry.name.c_str());
      failed = true;
    }
  }
  return failed ? 1 : 0;
}
