// Q-Fabric-style QoS management on top of dproc (the paper's §5 outlook):
// a latency-sensitive analysis task reserves 60% of a node's CPU; when
// batch jobs pile on, the QoS manager's feedback controller defends the
// reservation by adjusting scheduler weights, and the application learns —
// through a violation callback — when the node is genuinely oversubscribed
// so it can adapt instead of thrashing.
//
//   $ ./qos_reservations
#include <cstdio>
#include <memory>
#include <vector>

#include "dproc/core/cluster.hpp"
#include "dproc/qos/manager.hpp"
#include "dproc/workload/linpack.hpp"

int main() {
  using namespace dproc;

  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 2;
  config.node_names = {"compute", "observer"};
  core::Cluster cluster{engine, config};
  cluster.start_dproc();

  host::Host& node = cluster.host(0);
  qos::Manager manager{node};

  // The analysis pipeline: a long-running compute task with a reservation.
  const host::TaskId analysis = node.cpu().add_compute_task("analysis");
  qos::ReservationConfig reservation;
  reservation.cpu_share = 0.6;
  int violations = 0;
  reservation.on_violation = [&](double achieved) {
    ++violations;
    if (violations == 1) {
      std::printf("  [t=%.0fs] violation callback: achieving %.2f of 0.60 — "
                  "application could shed work here\n",
                  engine.now().sec(), achieved);
    }
  };
  auto status = manager.reserve(analysis, reservation);
  std::printf("reserve 60%% for 'analysis' -> %s\n", status.to_string().c_str());

  auto report = [&](const char* phase) {
    const qos::ReservationStatus* s = manager.status(analysis);
    std::printf("%-28s achieved=%.2f weight=%.2f violations=%llu\n", phase,
                s ? s->achieved_share : 0.0, s ? s->weight : 0.0,
                s ? static_cast<unsigned long long>(s->violations) : 0);
  };

  engine.run_until(SimTime{} + seconds(20.0));
  report("alone:");

  std::printf("\nthree batch jobs arrive (fair share would be 25%% each):\n");
  std::vector<std::unique_ptr<workload::LinpackTask>> batch;
  for (int i = 0; i < 3; ++i) {
    batch.push_back(std::make_unique<workload::LinpackTask>(node, "batch"));
  }
  engine.run_until(engine.now() + seconds(30.0));
  report("with 3 batch jobs:");

  std::printf("\nsix more batch jobs — 60%% is still feasible, barely:\n");
  for (int i = 0; i < 6; ++i) {
    batch.push_back(std::make_unique<workload::LinpackTask>(node, "batch"));
  }
  engine.run_until(engine.now() + seconds(30.0));
  report("with 9 batch jobs:");

  std::printf("\nkernel pressure (40%% of every second) makes 60%% infeasible:\n");
  auto pressure = engine.schedule_periodic(seconds(1.0), [&] {
    node.cpu().consume_kernel(milliseconds(400.0));
  });
  engine.run_until(engine.now() + seconds(30.0));
  report("with kernel pressure:");
  pressure.cancel();

  std::printf("\nrelease the reservation: back to best effort\n");
  manager.release(analysis);
  engine.run_until(engine.now() + seconds(10.0));
  std::printf("\nfinal manager state:\n%s", manager.describe().c_str());
  std::printf(
      "\nThe reservation held at 0.60 while it was feasible (batch jobs\n"
      "squeezed to the remainder); under kernel pressure the violation\n"
      "callback fired %d times — the dproc-style signal the paper's\n"
      "Q-Fabric integration uses to trigger application adaptation.\n",
      violations);
  return 0;
}
