// Quickstart: the paper's Figure 1 scenario.
//
// Builds the three-node cluster (alan, maui, etna), starts dproc on every
// node, generates some load, and then browses alan's /proc/cluster view of
// the other machines — the "distributed /proc" experience.
//
//   $ ./quickstart
#include <cstdio>

#include "dproc/core/cluster.hpp"
#include "dproc/workload/linpack.hpp"

int main() {
  using namespace dproc;

  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 3;
  config.node_names = {"alan", "maui", "etna"};
  core::Cluster cluster{engine, config};
  cluster.start_dproc();

  // Load etna with two linpack threads so there is something to observe.
  workload::LinpackTask thread1{cluster.host(2)};
  workload::LinpackTask thread2{cluster.host(2)};

  // Let the cluster run for ten simulated seconds.
  engine.run_until(SimTime{} + seconds(10.0));

  procfs::ProcFs& alan = cluster.procfs(0);

  std::printf("alan's pseudo-filesystem after 10s:\n\n%s\n",
              alan.tree().c_str());

  std::printf("Reading remote metrics from alan:\n");
  for (const char* path : {
           "/proc/cluster/etna/cpu/loadavg",
           "/proc/cluster/etna/mem/freemem",
           "/proc/cluster/etna/pmc/cache_misses",
           "/proc/cluster/maui/cpu/loadavg",
           "/proc/cluster/maui/net/in_bps",
       }) {
    auto content = alan.read(path);
    std::printf("  %-40s %s", path,
                content.is_ok() ? content.value().c_str()
                                : (content.status().to_string() + "\n").c_str());
  }

  std::printf(
      "\netna runs two linpack threads, so alan sees its loadavg near 2;\n"
      "maui is idle apart from monitoring traffic.\n");

  // Retune etna's reporting from alan through the control file.
  auto status = alan.write("/proc/cluster/etna/control",
                           "period 0.5\nthreshold loadavg above 1\n");
  std::printf("\nwrite /proc/cluster/etna/control -> %s\n",
              status.to_string().c_str());
  engine.run_until(engine.now() + seconds(3.0));
  auto loadavg = alan.read("/proc/cluster/etna/cpu/loadavg");
  std::printf("etna loadavg (now updated every 0.5s while above 1):\n%s\n",
              loadavg.value().c_str());
  return 0;
}
