// Interactive shell over a live simulated cluster.
//
// Drives the same pseudo-filesystem interface a real dproc user would
// touch from a terminal: ls/cat to browse /proc/cluster, echo-style writes
// to control files, plus commands to generate load and advance virtual
// time. Run it and poke around:
//
//   $ ./dproc_shell
//   dproc> ls /proc/cluster
//   dproc> cat /proc/cluster/etna/cpu/loadavg
//   dproc> load etna 2
//   dproc> run 10
//   dproc> write /proc/cluster/etna/control threshold loadavg above 1
//   dproc> top
//
// A script can be piped on stdin (one command per line); see README.
#include <cstdio>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "dproc/core/aggregate.hpp"
#include "dproc/core/cluster.hpp"
#include "dproc/workload/linpack.hpp"

namespace {

using namespace dproc;

struct Shell {
  sim::Engine engine;
  std::unique_ptr<core::Cluster> cluster;
  std::unique_ptr<core::ClusterAggregator> aggregator;
  std::vector<std::unique_ptr<workload::LinpackTask>> load;
  std::size_t current_node = 0;

  Shell() {
    core::ClusterConfig config;
    config.node_count = 4;
    config.node_names = {"alan", "maui", "etna", "kea"};
    config.self_monitor = true;  // telemetry browsable out of the box
    cluster = std::make_unique<core::Cluster>(engine, config);
    aggregator = std::make_unique<core::ClusterAggregator>(
        *cluster->dmon(0), cluster->procfs(0));
    cluster->start_dproc();
    engine.run_until(SimTime{} + seconds(3.0));
  }

  procfs::ProcFs& fs() { return cluster->procfs(current_node); }

  int node_by_name(const std::string& name) {
    for (std::size_t i = 0; i < cluster->size(); ++i) {
      if (cluster->fabric().node_name(static_cast<net::NodeId>(i)) == name) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  void help() {
    std::printf(
        "commands:\n"
        "  ls <path>            list a pseudo-directory\n"
        "  cat <path>           read a pseudo-file\n"
        "  write <path> <text>  write a control file (rest of line is text)\n"
        "  tree                 dump the whole pseudo-filesystem\n"
        "  node <name>          switch which node's /proc you browse\n"
        "  load <name> <n>      run n linpack threads on a node\n"
        "  unload               stop all linpack threads\n"
        "  run <seconds>        advance virtual time\n"
        "  top                  cluster summary (min/mean/max loadavg etc.)\n"
        "  telemetry            current node's self-monitoring snapshot\n"
        "  telemetry on|off     toggle the current node's telemetry\n"
        "  telemetry export <file>  write all nodes' spans as Chrome trace\n"
        "  quit\n");
  }

  void top() {
    std::printf("%-12s %10s %10s %10s %8s\n", "metric", "min", "mean", "max",
                "nodes");
    for (const char* key : {"loadavg", "cpu_util", "freemem", "net_in"}) {
      const core::AggregateView view = aggregator->aggregate(key);
      std::printf("%-12s %10.3g %10.3g %10.3g %8zu\n", key, view.min,
                  view.mean, view.max, view.nodes);
    }
  }

  bool dispatch(const std::string& line) {
    std::istringstream words{line};
    std::string cmd;
    if (!(words >> cmd) || cmd[0] == '#') return true;
    if (cmd == "quit" || cmd == "exit") return false;
    if (cmd == "help") {
      help();
    } else if (cmd == "ls") {
      std::string path;
      words >> path;
      auto entries = fs().list(path.empty() ? "/proc" : path);
      if (!entries.is_ok()) {
        std::printf("ls: %s\n", entries.status().to_string().c_str());
      } else {
        for (const auto& entry : entries.value()) {
          std::printf("%s\n", entry.c_str());
        }
      }
    } else if (cmd == "cat") {
      std::string path;
      words >> path;
      auto content = fs().read(path);
      if (!content.is_ok()) {
        std::printf("cat: %s\n", content.status().to_string().c_str());
      } else {
        std::printf("%s", content.value().c_str());
      }
    } else if (cmd == "write") {
      std::string path, rest;
      words >> path;
      std::getline(words, rest);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      const Status status = fs().write(path, rest);
      std::printf("%s\n", status.to_string().c_str());
    } else if (cmd == "tree") {
      std::printf("%s", fs().tree().c_str());
    } else if (cmd == "node") {
      std::string name;
      words >> name;
      const int node = node_by_name(name);
      if (node < 0) {
        std::printf("unknown node '%s'\n", name.c_str());
      } else {
        current_node = static_cast<std::size_t>(node);
      }
    } else if (cmd == "load") {
      std::string name;
      int count = 1;
      words >> name >> count;
      const int node = node_by_name(name);
      if (node < 0) {
        std::printf("unknown node '%s'\n", name.c_str());
      } else {
        for (int i = 0; i < count; ++i) {
          load.push_back(std::make_unique<workload::LinpackTask>(
              cluster->host(static_cast<std::size_t>(node))));
        }
        std::printf("started %d linpack thread(s) on %s\n", count,
                    name.c_str());
      }
    } else if (cmd == "unload") {
      load.clear();
      std::printf("all load stopped\n");
    } else if (cmd == "run") {
      double sec = 1.0;
      words >> sec;
      engine.run_until(engine.now() + seconds(sec));
      std::printf("t=%.1fs\n", engine.now().sec());
    } else if (cmd == "top") {
      top();
    } else if (cmd == "telemetry") {
      std::string arg;
      words >> arg;
      telemetry::Registry& registry =
          cluster->host(current_node).telemetry();
      if (arg.empty()) {
        std::printf("%s", registry.render().c_str());
      } else if (arg == "on" || arg == "off") {
        registry.set_enabled(arg == "on");
        std::printf("telemetry %s on %s\n", arg.c_str(),
                    cluster->host(current_node).name().c_str());
      } else if (arg == "export") {
        std::string path;
        words >> path;
        if (path.empty()) path = "dproc_trace.json";
        std::vector<std::pair<int, const telemetry::Registry*>> registries;
        for (std::size_t i = 0; i < cluster->size(); ++i) {
          registries.emplace_back(static_cast<int>(i),
                                  &cluster->host(i).telemetry());
        }
        const std::string json = telemetry::merge_chrome_trace(registries);
        std::FILE* out = std::fopen(path.c_str(), "w");
        if (out == nullptr) {
          std::printf("telemetry export: cannot open %s\n", path.c_str());
        } else {
          std::fwrite(json.data(), 1, json.size(), out);
          std::fclose(out);
          std::printf("wrote %zu bytes to %s (open in chrome://tracing)\n",
                      json.size(), path.c_str());
        }
      } else {
        std::printf("usage: telemetry [on|off|export <file>]\n");
      }
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
    return true;
  }
};

}  // namespace

int main() {
  Shell shell;
  std::printf("dproc shell — 4-node simulated cluster (alan maui etna kea)\n"
              "type 'help' for commands; browsing %s\n",
              "alan's /proc");
  std::string line;
  while (true) {
    std::printf("dproc> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    if (!shell.dispatch(line)) break;
  }
  return 0;
}
