// The paper's §3 batch-queue scheduler example.
//
// A scheduler on node 0 wants to place jobs on machines with a free CPU.
// Stage 1 uses a threshold parameter ("load average updates only if it is
// less than the number of CPUs"). Stage 2 upgrades to the paper's dynamic
// filter: the scheduler actually cares about free memory, but only wants
// that information when there is also a free CPU to run on — a relationship
// parameters cannot express, so it ships an E-code filter that ties the two
// together at the remote kernel.
//
//   $ ./batch_scheduler
#include <cstdio>
#include <memory>
#include <vector>

#include "dproc/core/cluster.hpp"
#include "dproc/workload/linpack.hpp"

int main() {
  using namespace dproc;

  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 4;
  config.node_names = {"scheduler", "worker1", "worker2", "worker3"};
  core::Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(2.0));

  // Busy workers: worker1 fully loaded, worker2 half, worker3 idle.
  std::vector<std::unique_ptr<workload::LinpackTask>> jobs;
  jobs.push_back(std::make_unique<workload::LinpackTask>(cluster.host(1)));
  jobs.push_back(std::make_unique<workload::LinpackTask>(cluster.host(1)));
  jobs.push_back(std::make_unique<workload::LinpackTask>(cluster.host(2)));

  procfs::ProcFs& sched = cluster.procfs(0);

  std::printf("== stage 1: threshold parameters ==\n");
  // Single-CPU machines: interesting iff loadavg < 1.
  for (const char* worker : {"worker1", "worker2", "worker3"}) {
    auto status = sched.write(std::string{"/proc/cluster/"} + worker + "/control",
                              "threshold loadavg below 1\n");
    std::printf("  retune %s -> %s\n", worker, status.to_string().c_str());
  }
  engine.run_until(engine.now() + seconds(10.0));

  for (const char* worker : {"worker1", "worker2", "worker3"}) {
    auto loadavg =
        sched.read(std::string{"/proc/cluster/"} + worker + "/cpu/loadavg");
    std::printf("  %s loadavg: %s", worker,
                loadavg.value().substr(0, loadavg.value().find('\n') + 1).c_str());
  }
  std::printf(
      "  (loaded workers stop reporting; only machines with a free CPU\n"
      "   keep updating, so monitoring traffic shrinks with the load)\n\n");

  std::printf("== stage 2: a dynamic E-code filter ==\n");
  // The scheduler wants *free memory*, but only when a CPU is free too.
  const char* filter =
      "filter {\n"
      "  if (input[LOADAVG].value < 1) {\n"
      "    output[0] = input[FREEMEM];\n"
      "  }\n"
      "}\n";
  for (const char* worker : {"worker1", "worker2", "worker3"}) {
    auto status = sched.write(std::string{"/proc/cluster/"} + worker + "/control",
                              std::string{"clear\n"} + filter);
    std::printf("  deploy filter on %s -> %s\n", worker,
                status.to_string().c_str());
  }
  engine.run_until(engine.now() + seconds(10.0));

  std::printf("\n  scheduler's view of free memory (bytes):\n");
  for (const char* worker : {"worker1", "worker2", "worker3"}) {
    auto freemem =
        sched.read(std::string{"/proc/cluster/"} + worker + "/mem/freemem");
    std::printf("  %-9s %s", worker,
                freemem.value().substr(0, freemem.value().find('\n') + 1).c_str());
  }
  std::printf(
      "\n  worker1 (loadavg ~2) publishes nothing; worker3 (idle) keeps the\n"
      "  scheduler's freemem view fresh. The placement decision is local:\n");

  // Place the job on the worker with a fresh freemem report.
  for (std::size_t w = 1; w <= 3; ++w) {
    const core::RemoteMetric* m = cluster.dmon(0)->remote_metric(
        static_cast<net::NodeId>(w), "freemem");
    const bool fresh =
        m != nullptr && (engine.now() - m->received_at).sec() < 3.0;
    std::printf("  worker%zu: %s\n", w,
                fresh ? "ELIGIBLE (fresh freemem, CPU free)" : "skip");
  }
  return 0;
}
