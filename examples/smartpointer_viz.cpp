// The §4.2 scientific-collaboration scenario: a SmartPointer server feeds a
// molecular-dynamics stream to heterogeneous clients while dproc's
// monitoring drives per-client stream customization.
//
// Three clients subscribe: a workstation (plenty of everything), a loaded
// desktop (CPU contention), and a storage node that archives frames to
// disk. Watch the server pick a different derivation for each.
//
//   $ ./smartpointer_viz
#include <cstdio>

#include "dproc/core/cluster.hpp"
#include "dproc/smartpointer/client.hpp"
#include "dproc/smartpointer/server.hpp"
#include "dproc/workload/linpack.hpp"

int main() {
  using namespace dproc;
  using smartpointer::FilterMode;
  using smartpointer::Representation;

  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 4;
  config.node_names = {"server", "workstation", "desktop", "archive"};
  core::Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(2.0));

  smartpointer::ServerConfig server_config;
  server_config.frame_rate_hz = 5.0;
  server_config.atom_count = 30'000;  // ~750 KB per full frame
  smartpointer::Server server{cluster.host(0), cluster.nic(0),
                              cluster.dmon(0), server_config};
  server.start();

  smartpointer::ClientConfig dynamic;
  dynamic.mode = FilterMode::kDynamic;

  smartpointer::Client workstation{cluster.host(1), cluster.nic(1), 0,
                                   server_config.port, dynamic};
  workstation.connect();

  smartpointer::Client desktop{cluster.host(2), cluster.nic(2), 0,
                               server_config.port, dynamic};
  desktop.connect();

  smartpointer::ClientConfig archive_config = dynamic;
  archive_config.storage_client = true;
  smartpointer::Client archive{cluster.host(3), cluster.nic(3), 0,
                               server_config.port, archive_config};
  archive.connect();

  // The desktop user compiles something large on the side.
  workload::LinpackTask hog1{cluster.host(2)}, hog2{cluster.host(2)},
      hog3{cluster.host(2)}, hog4{cluster.host(2)}, hog5{cluster.host(2)};

  engine.run_until(SimTime{} + seconds(60.0));

  auto report = [&](const char* name, net::NodeId node,
                    smartpointer::Client& client) {
    const smartpointer::Server::ClientState* state = server.client(node);
    std::printf(
        "  %-12s rep=%-13s fraction=%.2f  processed=%llu/%llu  "
        "mean lag=%.0f ms  backlog=%zu\n",
        name, state ? to_string(state->last_rep) : "?",
        state ? state->last_fraction : 0.0,
        static_cast<unsigned long long>(client.frames_processed()),
        static_cast<unsigned long long>(client.frames_received()),
        client.lags().mean() * 1e3, client.backlog());
  };

  std::printf("after 60 s of streaming at 5 frames/s (~30 Mbps full feed):\n\n");
  report("workstation", 1, workstation);
  report("desktop", 2, desktop);
  report("archive", 3, archive);

  std::printf(
      "\nThe workstation receives (near-)full frames. The desktop's five\n"
      "compute jobs show up in its dproc loadavg, so the server ships it a\n"
      "cheaper derivation and keeps its lag flat instead of letting frames\n"
      "queue. The archive node's disk writes are part of the hybrid cost\n"
      "estimate. No client ever told the server its requirements - the\n"
      "monitoring data did.\n");
  return 0;
}
