// E-code filter playground: compile and run monitoring filters against a
// recorded snapshot, printing diagnostics, disassembly, and results.
//
//   $ ./filter_playground                 # runs the built-in demo filters
//   $ echo '{ output[0] = input[LOADAVG]; }' | ./filter_playground -
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dproc/ecode/ecode.hpp"
#include "dproc/ecode/lexer.hpp"
#include "dproc/ecode/parser.hpp"
#include "dproc/ecode/printer.hpp"

namespace {

using dproc::ecode::CompileEnv;
using dproc::ecode::Filter;
using dproc::ecode::Sample;

// A snapshot of a busy node, in cluster-convention metric order.
struct NamedSample {
  const char* name;
  Sample sample;
};

const NamedSample kSnapshot[] = {
    {"LOADAVG", {0, 2.71, 0.4, 1'000'000'000}},
    {"FREEMEM", {1, 41e6, 310e6, 1'000'000'000}},
    {"DISKUSAGE", {2, 15'000, 220, 1'000'000'000}},
    {"CACHE_MISS", {3, 8'812'004, 8'611'220, 1'000'000'000}},
    {"NET_IN", {4, 31.2e6, 30.9e6, 1'000'000'000}},
};

void run_filter(const std::string& source) {
  CompileEnv env;
  std::vector<Sample> input;
  for (const NamedSample& entry : kSnapshot) {
    env.constants[entry.name] = entry.sample.id;
    input.push_back(entry.sample);
  }

  std::printf("---- filter ----\n%s\n", source.c_str());
  auto filter = Filter::compile(source, env);
  if (!filter.is_ok()) {
    std::printf("compile error:\n%s\n\n", filter.status().message().c_str());
    return;
  }
  // Canonical source, as the AST printer renders it.
  {
    auto tokens = dproc::ecode::Lexer{source}.tokenize();
    if (tokens.is_ok()) {
      auto ast = dproc::ecode::Parser{std::move(tokens).value()}.parse_program();
      if (ast.is_ok()) {
        std::printf("---- canonical ----\n%s",
                    dproc::ecode::to_source(ast.value()).c_str());
      }
    }
  }
  std::printf("---- bytecode (after constant folding) ----\n%s",
              filter.value().bytecode().disassemble().c_str());

  auto result = filter.value().run(input);
  if (!result.is_ok()) {
    std::printf("runtime error: %s\n\n", result.status().message().c_str());
    return;
  }
  std::printf("---- result (%llu instructions) ----\n",
              static_cast<unsigned long long>(
                  result.value().instructions_executed));
  if (result.value().outputs.empty()) {
    std::printf("  (no samples published)\n");
  }
  for (const auto& [slot, sample] : result.value().outputs) {
    const char* name = "?";
    for (const NamedSample& entry : kSnapshot) {
      if (entry.sample.id == sample.id) name = entry.name;
    }
    std::printf("  output[%lld] = %s value=%g\n",
                static_cast<long long>(slot), name, sample.value);
  }
  if (result.value().return_value) {
    std::printf("  return value: %g\n", *result.value().return_value);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string{argv[1]} == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    run_filter(buffer.str());
    return 0;
  }

  std::printf("input snapshot (a busy node):\n");
  for (const NamedSample& entry : kSnapshot) {
    std::printf("  %-11s value=%-12g last_value_sent=%g\n", entry.name,
                entry.sample.value, entry.sample.last_value_sent);
  }
  std::printf("\n");

  // 1. The paper's Figure 3 filter, verbatim structure.
  run_filter(R"({
  int i = 0;
  if (input[LOADAVG].value > 2) {
    output[i] = input[LOADAVG];
    i = i + 1;
  }
  if (input[DISKUSAGE].value > 10000 && input[FREEMEM].value < 50e6) {
    output[i] = input[DISKUSAGE];
    i = i + 1;
    output[i] = input[FREEMEM];
    i = i + 1;
  }
  if (input[CACHE_MISS].value > input[CACHE_MISS].last_value_sent) {
    output[i] = input[CACHE_MISS];
    i = i + 1;
  }
})");

  // 2. Data transformation: publish a derived value (load per 100 MB free).
  run_filter(R"({
  sample derived = input[LOADAVG];
  derived.value = input[LOADAVG].value / (input[FREEMEM].value / 100e6);
  output[0] = derived;
})");

  // 3. A broken filter, to show the diagnostics a remote writer gets back.
  run_filter("{ output[0] = input[TEMPERATURE]; }");

  // 4. A runaway filter, stopped by the instruction budget.
  run_filter("{ int i = 0; while (1) { i = i + 1; } }");

  return 0;
}
