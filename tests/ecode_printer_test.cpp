// AST printer: canonical rendering and the parse -> print -> parse
// round-trip property (same bytecode both ways).
#include <gtest/gtest.h>

#include <sstream>

#include "dproc/ecode/compiler.hpp"
#include "dproc/ecode/ecode.hpp"
#include "dproc/ecode/lexer.hpp"
#include "dproc/ecode/parser.hpp"
#include "dproc/ecode/printer.hpp"
#include "dproc/util/rng.hpp"

namespace dproc::ecode {
namespace {

Result<Program> parse(std::string_view source) {
  auto tokens = Lexer{source}.tokenize();
  if (!tokens.is_ok()) return tokens.status();
  return Parser{std::move(tokens).value()}.parse_program();
}

std::string bytecode_of(std::string_view source, const CompileEnv& env = {}) {
  auto filter = Filter::compile(source, env);
  EXPECT_TRUE(filter.is_ok()) << filter.status().to_string() << "\n" << source;
  return filter.is_ok() ? filter.value().bytecode().disassemble() : "";
}

void expect_round_trip(std::string_view source, const CompileEnv& env = {}) {
  auto program = parse(source);
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();
  const std::string printed = to_source(program.value());
  EXPECT_EQ(bytecode_of(source, env), bytecode_of(printed, env))
      << "original:\n" << source << "\nprinted:\n" << printed;
  // The printer itself must be a fixed point.
  auto reparsed = parse(printed);
  ASSERT_TRUE(reparsed.is_ok()) << printed;
  EXPECT_EQ(to_source(reparsed.value()), printed);
}

TEST(Printer, SimpleStatements) {
  auto program = parse("int i = 0; i = i + 1; return i;");
  ASSERT_TRUE(program.is_ok());
  EXPECT_EQ(to_source(program.value()),
            "int i = 0;\ni = (i + 1);\nreturn i;\n");
}

TEST(Printer, RoundTripPaperFilter) {
  CompileEnv env;
  env.constants = {{"LOADAVG", 0}, {"DISKUSAGE", 1}, {"FREEMEM", 2},
                   {"CACHE_MISS", 3}};
  expect_round_trip(R"({
    int i = 0;
    if (input[LOADAVG].value > 2) {
      output[i] = input[LOADAVG];
      i = i + 1;
    }
    if (input[DISKUSAGE].value > 10000 && input[FREEMEM].value < 50e6) {
      output[i] = input[DISKUSAGE];
      i = i + 1;
      output[i] = input[FREEMEM];
      i = i + 1;
    }
    if (input[CACHE_MISS].value > input[CACHE_MISS].last_value_sent) {
      output[i] = input[CACHE_MISS];
      i = i + 1;
    }
  })", env);
}

TEST(Printer, RoundTripControlFlow) {
  expect_round_trip(
      "int sum = 0;\n"
      "for (int i = 0; i < 10; ++i) {\n"
      "  if (i % 2) continue; else sum += i;\n"
      "  if (sum > 100) break;\n"
      "}\n"
      "while (sum > 0) sum = sum - 3;\n"
      "return sum;");
}

TEST(Printer, RoundTripOperatorZoo) {
  expect_round_trip(
      "int a = 5; int b = 3;\n"
      "int c = a * b + a / b - a % b;\n"
      "int d = (a << 2) | (b >> 1) & ~a ^ 7;\n"
      "int e = a < b ? -a : +b;\n"
      "int f = !(a <= b) && a != b || a == 5;\n"
      "double g = 1.5e3 + 0.25;\n"
      "return c + d + e + f + g;");
}

TEST(Printer, RoundTripSamplesAndBuiltins) {
  expect_round_trip(
      "sample s = input[0];\n"
      "s.value = max(abs(s.value), sqrt(4.0));\n"
      "output[0] = s;\n"
      "output[1].value = floor(min(1.9, 2));\n"
      "output[1].id = 7;");
}

TEST(Printer, RoundTripIncDec) {
  expect_round_trip(
      "int i = 0; int j = i++; int k = ++i; i--; --i; return i * 100 + j + k;");
}

TEST(Printer, RandomProgramsRoundTrip) {
  Rng rng{0x715};
  for (int trial = 0; trial < 60; ++trial) {
    std::ostringstream source;
    source << "int v0 = " << rng.uniform_int(-9, 9) << ";\n"
           << "int v1 = " << rng.uniform_int(-9, 9) << ";\n"
           << "double v2 = " << rng.uniform_int(0, 9) << ".5;\n";
    for (int stmt = 0; stmt < 12; ++stmt) {
      const int dst = static_cast<int>(rng.uniform_int(0, 1));
      switch (rng.uniform_int(0, 4)) {
        case 0:
          source << "v" << dst << " = v0 + v1 * " << rng.uniform_int(1, 5)
                 << ";\n";
          break;
        case 1:
          source << "if (v0 > v1) v" << dst << " = v" << dst
                 << " - 1; else v" << dst << " += 2;\n";
          break;
        case 2:
          source << "for (int i = 0; i < " << rng.uniform_int(1, 5)
                 << "; ++i) v" << dst << " = v" << dst << " + i;\n";
          break;
        case 3:
          source << "v2 = v2 * 1.5 + min(v0, v1);\n";
          break;
        case 4:
          source << "v" << dst << " = v0 > 0 ? v1 : -v1;\n";
          break;
      }
    }
    source << "return v0 + 1000 * v1 + v2;";
    expect_round_trip(source.str());
  }
}

TEST(Printer, ExpressionRendering) {
  auto program = parse("int x = min(1, 2) + input[0].value;");
  ASSERT_TRUE(program.is_ok());
  const Expr& init = *program.value().statements[0]->expr;
  EXPECT_EQ(to_source(init), "(min(1, 2) + input[0].value)");
}

}  // namespace
}  // namespace dproc::ecode
