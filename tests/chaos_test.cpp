// Chaos tests: the scripted fault-injection scenarios that pin the stack's
// failure behaviour end to end.
//
// The full scenario follows the ISSUE brief: an 8-node cluster with KECho
// liveness enabled loses 2 nodes to crashes, one access link to a
// partition, and the channel registry to an outage — with the windows
// overlapping — then everything comes back and the membership must
// reconverge with no duplicates. Everything is deterministic: the same
// seed replays the identical trace, which the determinism test pins by
// fingerprinting two independent runs.
//
// The ChaosSmoke suite is a fast subset wired into ctest as `chaos_smoke`.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "dproc/core/cluster.hpp"
#include "dproc/sim/fault.hpp"

namespace dproc::core {
namespace {

SimTime at(double sec) { return SimTime::zero() + seconds(sec); }

ClusterConfig chaos_config(std::size_t nodes) {
  ClusterConfig config;
  config.node_count = nodes;
  config.liveness.enabled = true;
  config.liveness.heartbeat_period = seconds(1.0);
  // Staleness (3 poll periods) must be observable before eviction declares
  // the peer dead, so the miss threshold sits above stale_after_periods.
  config.liveness.miss_threshold = 5;
  config.dmon.stale_after_periods = 3;
  return config;
}

void run_to(Cluster& cluster, double sec) {
  cluster.engine().run_until(at(sec));
}

/// Builds the ISSUE scenario: crash 2 of 8 at t=5, partition node 5's
/// uplink over t=8..14, registry outage over t=10..16, restarts at t=20
/// and t=22.
sim::FaultPlan issue_plan(Cluster& cluster) {
  sim::FaultPlan plan;
  plan.crash_node(at(5.0), 6)
      .crash_node(at(5.0), 7)
      .partition_link(at(8.0), cluster.uplink(5))
      .heal_link(at(14.0), cluster.uplink(5))
      .registry_outage(at(10.0), at(16.0))
      .restart_node(at(20.0), 6)
      .restart_node(at(22.0), 7);
  return plan;
}

/// Runs the full scenario with mid-flight assertions and returns a
/// determinism fingerprint covering the event count, the applied fault
/// log, final membership, and per-node liveness counters.
std::string run_issue_scenario() {
  sim::Engine engine;
  Cluster cluster(engine, chaos_config(8));
  cluster.start_dproc();
  sim::FaultInjector& injector = cluster.inject(issue_plan(cluster));

  const net::NodeId n5 = cluster.nic(5).node();
  const net::NodeId n6 = cluster.nic(6).node();
  const net::NodeId n7 = cluster.nic(7).node();

  // Before any fault: every view of node 6 is live.
  run_to(cluster, 4.5);
  EXPECT_EQ(cluster.dmon(0)->peer_state(n6), PeerState::kLive);
  EXPECT_EQ(cluster.dmon(3)->peer_state(n7), PeerState::kLive);

  // Crash at t=5; within stale_after_periods (3) poll periods the feed is
  // flagged stale — before the eviction (miss threshold 5) declares it
  // dead. The procfs status file renders the degradation for applications.
  run_to(cluster, 8.7);
  EXPECT_EQ(cluster.dmon(0)->peer_state(n6), PeerState::kStale);
  EXPECT_EQ(cluster.dmon(0)->peer_state(n7), PeerState::kStale);
  auto status = cluster.procfs(0).read("/proc/cluster/node6/status");
  EXPECT_TRUE(status.is_ok());
  if (status.is_ok()) {
    EXPECT_NE(status.value().find("state stale"), std::string::npos);
  }

  // Mid-outage (registry down, node 5 partitioned): the surviving, still
  // connected nodes keep exchanging monitoring data undisturbed.
  run_to(cluster, 12.0);
  for (std::size_t i : {0u, 1u, 2u, 3u, 4u}) {
    for (std::size_t j : {0u, 1u, 2u, 3u, 4u}) {
      if (i == j) continue;
      EXPECT_EQ(cluster.dmon(i)->peer_state(cluster.nic(j).node()),
                PeerState::kLive)
          << "survivor " << i << " lost survivor " << j << " mid-chaos";
    }
  }

  // By t=19 the registry is back, the partition healed, the evictions of
  // the crashed nodes went through, and node 5 (spuriously evicted while
  // partitioned) has re-joined and resumed publishing.
  run_to(cluster, 19.0);
  EXPECT_EQ(cluster.dmon(0)->peer_state(n6), PeerState::kDead);
  EXPECT_EQ(cluster.dmon(0)->peer_state(n7), PeerState::kDead);
  EXPECT_EQ(cluster.dmon(0)->peer_state(n5), PeerState::kLive);
  status = cluster.procfs(0).read("/proc/cluster/node6/status");
  EXPECT_TRUE(status.is_ok());
  if (status.is_ok()) {
    EXPECT_NE(status.value().find("state dead"), std::string::npos);
  }
  const auto evicted = cluster.registry().channel_members(
      cluster.config().dmon.monitor_channel);
  EXPECT_EQ(evicted.size(), 6u);
  for (const kecho::Member& m : evicted) {
    EXPECT_NE(m.node, n6);
    EXPECT_NE(m.node, n7);
  }

  // Restarts at t=20/22: by t=40 the membership has reconverged with no
  // duplicates and every feed is live everywhere again.
  run_to(cluster, 40.0);
  for (const std::string& channel : {cluster.config().dmon.monitor_channel,
                                     cluster.config().dmon.control_channel}) {
    const auto members = cluster.registry().channel_members(channel);
    EXPECT_EQ(members.size(), 8u) << "channel " << channel;
    for (std::size_t i = 0; i < members.size(); ++i) {
      for (std::size_t j = i + 1; j < members.size(); ++j) {
        EXPECT_NE(members[i].node, members[j].node)
            << "duplicate member in " << channel;
      }
    }
  }
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    for (std::size_t j = 0; j < cluster.size(); ++j) {
      if (i == j) continue;
      EXPECT_EQ(cluster.dmon(i)->peer_state(cluster.nic(j).node()),
                PeerState::kLive)
          << "node " << i << " view of node " << j << " after reconvergence";
    }
  }
  EXPECT_EQ(injector.applied().size(), injector.scheduled());

  std::ostringstream fp;
  fp << "events=" << engine.events_processed();
  for (const sim::FaultEvent& e : injector.applied()) {
    fp << ";" << to_string(e.kind) << "@" << e.at.ns() << "#" << e.target;
  }
  for (const kecho::Member& m : cluster.registry().channel_members(
           cluster.config().dmon.monitor_channel)) {
    fp << ";m" << m.node;
  }
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    fp << ";n" << i << "=" << cluster.node(i).kecho->heartbeats_sent() << ","
       << cluster.node(i).kecho->evictions_initiated();
  }
  return fp.str();
}

TEST(ChaosTest, IssueScenarioSurvivesAndReconverges) {
  (void)run_issue_scenario();
}

TEST(ChaosTest, IssueScenarioIsDeterministic) {
  const std::string first = run_issue_scenario();
  const std::string second = run_issue_scenario();
  EXPECT_EQ(first, second) << "same seed must replay the identical trace";
}

TEST(ChaosTest, EmptyPlanChangesNothing) {
  auto run = [](bool with_injector) {
    sim::Engine engine;
    Cluster cluster(engine, chaos_config(4));
    cluster.start_dproc();
    if (with_injector) cluster.inject(sim::FaultPlan{});
    engine.run_until(at(10.0));
    return engine.events_processed();
  };
  EXPECT_EQ(run(false), run(true))
      << "an empty fault plan must schedule zero events";
}

// Fast subset for the `chaos_smoke` ctest target: one node churns through
// crash, staleness, eviction, restart, and reconvergence in 12 simulated
// seconds on a 4-node cluster.
TEST(ChaosSmoke, NodeOutageEvictsThenReconverges) {
  sim::Engine engine;
  Cluster cluster(engine, chaos_config(4));
  cluster.start_dproc();
  sim::FaultPlan plan;
  plan.node_outage(at(2.0), at(9.0), 3);
  cluster.inject(plan);

  const net::NodeId n3 = cluster.nic(3).node();
  run_to(cluster, 5.5);
  EXPECT_EQ(cluster.dmon(0)->peer_state(n3), PeerState::kStale);
  run_to(cluster, 8.5);
  EXPECT_EQ(cluster.dmon(0)->peer_state(n3), PeerState::kDead);
  EXPECT_EQ(cluster.registry()
                .channel_members(cluster.config().dmon.monitor_channel)
                .size(),
            3u);

  run_to(cluster, 14.0);
  const auto members = cluster.registry().channel_members(
      cluster.config().dmon.monitor_channel);
  EXPECT_EQ(members.size(), 4u);
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      EXPECT_NE(members[i].node, members[j].node);
    }
  }
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    for (std::size_t j = 0; j < cluster.size(); ++j) {
      if (i == j) continue;
      EXPECT_EQ(cluster.dmon(i)->peer_state(cluster.nic(j).node()),
                PeerState::kLive);
    }
  }
}

}  // namespace
}  // namespace dproc::core
