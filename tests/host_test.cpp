#include <gtest/gtest.h>

#include "dproc/host/host.hpp"

namespace dproc::host {
namespace {

class CpuTest : public ::testing::Test {
 protected:
  sim::Engine engine;
  Cpu cpu{engine, CpuConfig{}};  // 17.4 Mflops @ 200 MHz

  void run_for(double sec) { engine.run_until(engine.now() + seconds(sec)); }
};

TEST_F(CpuTest, SingleComputeTaskGetsFullCpu) {
  const TaskId task = cpu.add_compute_task("linpack");
  run_for(10.0);
  EXPECT_NEAR(cpu.task_cpu_time(task).sec(), 10.0, 1e-9);
  EXPECT_NEAR(cpu.task_mflops(task), 17.4, 1e-9);
}

TEST_F(CpuTest, TwoComputeTasksShareEqually) {
  const TaskId a = cpu.add_compute_task("a");
  const TaskId b = cpu.add_compute_task("b");
  run_for(10.0);
  EXPECT_NEAR(cpu.task_cpu_time(a).sec(), 5.0, 1e-9);
  EXPECT_NEAR(cpu.task_cpu_time(b).sec(), 5.0, 1e-9);
  EXPECT_NEAR(cpu.task_mflops(a), 8.7, 1e-9);
}

TEST_F(CpuTest, SharesSumToCapacity) {
  std::vector<TaskId> tasks;
  for (int i = 0; i < 5; ++i) tasks.push_back(cpu.add_compute_task("t"));
  run_for(7.0);
  double total = 0;
  for (TaskId t : tasks) total += cpu.task_cpu_time(t).sec();
  EXPECT_NEAR(total, 7.0, 1e-9);
}

TEST_F(CpuTest, RemoveTaskRedistributes) {
  const TaskId a = cpu.add_compute_task("a");
  const TaskId b = cpu.add_compute_task("b");
  run_for(4.0);
  cpu.remove_task(b);
  run_for(4.0);
  EXPECT_NEAR(cpu.task_cpu_time(a).sec(), 2.0 + 4.0, 1e-9);
}

TEST_F(CpuTest, KernelWorkHasStrictPriority) {
  const TaskId task = cpu.add_compute_task("user");
  run_for(1.0);
  cpu.consume_kernel(milliseconds(100.0));
  run_for(1.0);
  // During the second second the kernel stole 100 ms.
  EXPECT_NEAR(cpu.task_cpu_time(task).sec(), 1.9, 1e-9);
  EXPECT_NEAR(cpu.kernel_cpu_time().sec(), 0.1, 1e-12);
}

TEST_F(CpuTest, KernelCyclesConvertByClockRate) {
  cpu.consume_kernel_cycles(200e6);  // one second at 200 MHz
  EXPECT_NEAR(cpu.kernel_cpu_time().sec(), 1.0, 1e-9);
}

TEST_F(CpuTest, MflopsDropMatchesKernelSteal) {
  const TaskId task = cpu.add_compute_task("linpack");
  // Steal 1% of each second, the Figure 4 mechanism.
  engine.schedule_periodic(seconds(1.0),
                           [&] { cpu.consume_kernel(milliseconds(10.0)); });
  run_for(30.0);
  EXPECT_NEAR(cpu.task_mflops(task), 17.4 * 0.99, 0.01);
}

TEST_F(CpuTest, ServerTaskCompletesWork) {
  const TaskId server = cpu.add_server_task("srv");
  bool done = false;
  cpu.submit_work(server, 2.0, [&] { done = true; });
  run_for(1.9);
  EXPECT_FALSE(done);
  run_for(0.2);
  EXPECT_TRUE(done);
}

TEST_F(CpuTest, ServerWorkFifoWithinTask) {
  const TaskId server = cpu.add_server_task("srv");
  std::vector<int> order;
  cpu.submit_work(server, 1.0, [&] { order.push_back(1); });
  cpu.submit_work(server, 1.0, [&] { order.push_back(2); });
  EXPECT_EQ(cpu.queued_items(server), 2u);
  run_for(3.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(cpu.queued_items(server), 0u);
}

TEST_F(CpuTest, ServerSlowsUnderCompeteLoad) {
  const TaskId server = cpu.add_server_task("srv");
  cpu.add_compute_task("linpack");
  SimTime completed;
  cpu.submit_work(server, 1.0, [&] { completed = engine.now(); });
  engine.run();
  // Fair share of 1/2 CPU: 1 cpu-second takes 2 wall-seconds.
  EXPECT_NEAR((completed - SimTime::zero()).sec(), 2.0, 1e-9);
}

TEST_F(CpuTest, ServerIdleWhenQueueEmpty) {
  const TaskId server = cpu.add_server_task("srv");
  const TaskId sink = cpu.add_compute_task("sink");
  run_for(5.0);
  // The idle server is not runnable; the sink gets everything.
  EXPECT_NEAR(cpu.task_cpu_time(sink).sec(), 5.0, 1e-9);
  EXPECT_NEAR(cpu.task_cpu_time(server).sec(), 0.0, 1e-12);
}

TEST_F(CpuTest, RunQueueLengthCountsRunnable) {
  EXPECT_EQ(cpu.run_queue_length(), 0u);
  cpu.add_compute_task("a");
  const TaskId server = cpu.add_server_task("srv");
  EXPECT_EQ(cpu.run_queue_length(), 1u);
  cpu.submit_work(server, 10.0, {});
  EXPECT_EQ(cpu.run_queue_length(), 2u);
}

TEST_F(CpuTest, SimultaneousCompletionsBothFire) {
  const TaskId s1 = cpu.add_server_task("s1");
  const TaskId s2 = cpu.add_server_task("s2");
  int done = 0;
  cpu.submit_work(s1, 1.0, [&] { ++done; });
  cpu.submit_work(s2, 1.0, [&] { ++done; });
  engine.run();
  EXPECT_EQ(done, 2);
  EXPECT_NEAR((engine.now() - SimTime::zero()).sec(), 2.0, 1e-9);
}

TEST_F(CpuTest, UtilizationTracksBusyFraction) {
  cpu.add_compute_task("busy");
  run_for(10.0);
  EXPECT_NEAR(cpu.utilization(), 1.0, 1e-9);
}

TEST_F(CpuTest, UtilizationZeroWhenIdle) {
  run_for(10.0);
  EXPECT_NEAR(cpu.utilization(), 0.0, 1e-12);
}

TEST_F(CpuTest, InvalidArgumentsThrow) {
  EXPECT_THROW(cpu.submit_work(999, 1.0, {}), std::invalid_argument);
  const TaskId sink = cpu.add_compute_task("sink");
  EXPECT_THROW(cpu.submit_work(sink, 1.0, {}), std::invalid_argument);
  const TaskId server = cpu.add_server_task("srv");
  EXPECT_THROW(cpu.submit_work(server, -1.0, {}), std::invalid_argument);
  EXPECT_THROW(cpu.consume_kernel(seconds(-1.0)), std::invalid_argument);
  EXPECT_THROW(cpu.task_cpu_time(12345), std::invalid_argument);
}

// --- memory -------------------------------------------------------------

TEST(Memory, AllocateAndRelease) {
  Memory memory{1 << 20};
  EXPECT_TRUE(memory.allocate(1 << 19));
  EXPECT_EQ(memory.free_bytes(), 1u << 19);
  memory.release(1 << 19);
  EXPECT_EQ(memory.free_bytes(), 1u << 20);
}

TEST(Memory, AllocationFailsWhenFull) {
  Memory memory{1024};
  EXPECT_TRUE(memory.allocate(1024));
  EXPECT_FALSE(memory.allocate(1));
}

TEST(Memory, ReleaseUnderflowThrows) {
  Memory memory{1024};
  EXPECT_THROW(memory.release(1), std::logic_error);
}

TEST(Memory, FreePages) {
  Memory memory{Memory::kPageSize * 10};
  ASSERT_TRUE(memory.allocate(Memory::kPageSize * 3 + 1));
  EXPECT_EQ(memory.free_pages(), 6u);  // partial page not free
}

TEST(Memory, ReservationRaii) {
  Memory memory{1024};
  {
    MemoryReservation reservation{memory, 512};
    EXPECT_TRUE(reservation.ok());
    EXPECT_EQ(memory.used_bytes(), 512u);
  }
  EXPECT_EQ(memory.used_bytes(), 0u);
}

TEST(Memory, ReservationMove) {
  Memory memory{1024};
  MemoryReservation a{memory, 256};
  MemoryReservation b = std::move(a);
  EXPECT_EQ(b.bytes(), 256u);
  EXPECT_EQ(memory.used_bytes(), 256u);
  b.reset();
  EXPECT_EQ(memory.used_bytes(), 0u);
}

// --- disk -----------------------------------------------------------------

class DiskTest : public ::testing::Test {
 protected:
  sim::Engine engine;
  Disk disk{engine, DiskConfig{}};  // 20 MB/s, 5 ms seek
};

TEST_F(DiskTest, ServiceTimeIsSeekPlusTransfer) {
  SimTime completed;
  disk.submit(Disk::Op::kRead, 20'000'000, [&] { completed = engine.now(); });
  engine.run();
  EXPECT_NEAR((completed - SimTime::zero()).sec(), 1.005, 1e-9);
}

TEST_F(DiskTest, CountersTrackOpsAndSectors) {
  disk.submit(Disk::Op::kWrite, 1024);
  disk.submit(Disk::Op::kRead, 100);  // rounds up to one sector
  engine.run();
  EXPECT_EQ(disk.counters().writes, 1u);
  EXPECT_EQ(disk.counters().reads, 1u);
  EXPECT_EQ(disk.counters().sectors_written, 2u);
  EXPECT_EQ(disk.counters().sectors_read, 1u);
}

TEST_F(DiskTest, FifoOrdering) {
  std::vector<int> order;
  disk.submit(Disk::Op::kWrite, 1024, [&] { order.push_back(1); });
  disk.submit(Disk::Op::kWrite, 1024, [&] { order.push_back(2); });
  EXPECT_EQ(disk.queue_depth(), 2u);
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(disk.queue_depth(), 0u);
}

TEST_F(DiskTest, QueueingDelaysLaterRequests) {
  SimTime first, second;
  disk.submit(Disk::Op::kRead, 20'000'000, [&] { first = engine.now(); });
  disk.submit(Disk::Op::kRead, 20'000'000, [&] { second = engine.now(); });
  engine.run();
  EXPECT_NEAR((second - first).sec(), 1.005, 1e-9);
}

// --- pmc ------------------------------------------------------------------

TEST(Pmc, UnknownCounterReadsZero) {
  Pmc pmc;
  EXPECT_EQ(pmc.read("nonexistent"), 0u);
}

TEST(Pmc, IncrementAccumulates) {
  Pmc pmc;
  pmc.increment(Pmc::kCacheMisses, 10);
  pmc.increment(Pmc::kCacheMisses, 5);
  EXPECT_EQ(pmc.read(Pmc::kCacheMisses), 15u);
  EXPECT_EQ(pmc.counter_names().size(), 1u);
}

// --- host aggregate --------------------------------------------------------

TEST(Host, WiresComponentsTogether) {
  sim::Engine engine;
  HostConfig config;
  config.name = "alan";
  Host host{engine, 3, config, Rng{1}};
  EXPECT_EQ(host.name(), "alan");
  EXPECT_EQ(host.id(), 3u);
  EXPECT_EQ(host.memory().total_bytes(), 512ULL << 20);
  EXPECT_NEAR(host.cpu().config().mflops_capacity, 17.4, 1e-12);
}

}  // namespace
}  // namespace dproc::host
