// PublisherTuning: parameters, thresholds, differential filter, E-code
// filters, and the control command language + wire codec.
#include <gtest/gtest.h>

#include "dproc/core/tuning.hpp"

namespace dproc::core {
namespace {

std::map<std::string, MetricId> metric_ids() {
  return {{"loadavg", 0}, {"freemem", 1}, {"diskusage", 2}, {"cache_miss", 3}};
}

std::vector<MetricSample> samples(double loadavg, double freemem,
                                  double diskusage, double cache_miss,
                                  SimTime t = SimTime{}) {
  return {{0, loadavg, t}, {1, freemem, t}, {2, diskusage, t},
          {3, cache_miss, t}};
}

class TuningTest : public ::testing::Test {
 protected:
  PublisherTuning tuning{seconds(1.0), metric_ids()};
  SimTime t0;

  SimTime at(double sec) { return t0 + seconds(sec); }
};

TEST_F(TuningTest, DefaultSendsEverythingEachPeriod) {
  auto first = tuning.decide(samples(1, 2, 3, 4), at(0));
  EXPECT_EQ(first.to_send.size(), 4u);
  // Within the period: nothing.
  auto second = tuning.decide(samples(1, 2, 3, 4), at(0.5));
  EXPECT_TRUE(second.to_send.empty());
  // After the period: everything again.
  auto third = tuning.decide(samples(1, 2, 3, 4), at(1.0));
  EXPECT_EQ(third.to_send.size(), 4u);
}

TEST_F(TuningTest, DefaultPeriodOverride) {
  TuningConfig config;
  config.default_period = seconds(2.0);
  ASSERT_TRUE(tuning.apply(config).is_ok());
  (void)tuning.decide(samples(1, 2, 3, 4), at(0));
  EXPECT_TRUE(tuning.decide(samples(1, 2, 3, 4), at(1.0)).to_send.empty());
  EXPECT_EQ(tuning.decide(samples(1, 2, 3, 4), at(2.0)).to_send.size(), 4u);
}

TEST_F(TuningTest, PerMetricPeriod) {
  TuningConfig config;
  config.metric_periods.push_back(MetricPeriod{"loadavg", seconds(3.0)});
  ASSERT_TRUE(tuning.apply(config).is_ok());
  (void)tuning.decide(samples(1, 2, 3, 4), at(0));
  // At 1 s: everything except loadavg.
  auto mid = tuning.decide(samples(1, 2, 3, 4), at(1.0));
  EXPECT_EQ(mid.to_send.size(), 3u);
  for (const auto& s : mid.to_send) EXPECT_NE(s.id, 0u);
  // At 3 s: loadavg is due again.
  auto later = tuning.decide(samples(1, 2, 3, 4), at(3.0));
  EXPECT_EQ(later.to_send.size(), 4u);
}

TEST_F(TuningTest, ConditionalPeriodGates) {
  // The paper's example: update CPU info every 2 s IF utilization > 80%.
  // The guard selects between the special period and the default cadence;
  // it must not silence the metric while unmet.
  TuningConfig config;
  MetricPeriod mp;
  mp.metric = "loadavg";
  mp.period = seconds(3.0);
  mp.conditional = true;
  mp.cond_metric = "freemem";
  mp.cond_kind = ThresholdKind::kBelow;
  mp.cond_value = 100.0;
  config.metric_periods.push_back(mp);
  ASSERT_TRUE(tuning.apply(config).is_ok());

  auto has_loadavg = [](const Decision& d) {
    for (const auto& s : d.to_send) {
      if (s.id == 0) return true;
    }
    return false;
  };

  // Condition false: loadavg follows the default 1 s period, not silence.
  EXPECT_TRUE(has_loadavg(tuning.decide(samples(5, 500, 0, 0), at(0))));
  EXPECT_FALSE(has_loadavg(tuning.decide(samples(5, 500, 0, 0), at(0.5))));
  EXPECT_TRUE(has_loadavg(tuning.decide(samples(5, 500, 0, 0), at(1.0))));
  // Condition becomes true: the 3 s period applies from the last send.
  EXPECT_FALSE(has_loadavg(tuning.decide(samples(5, 50, 0, 0), at(2.0))));
  EXPECT_FALSE(has_loadavg(tuning.decide(samples(5, 50, 0, 0), at(3.0))));
  EXPECT_TRUE(has_loadavg(tuning.decide(samples(5, 50, 0, 0), at(4.0))));
}

TEST_F(TuningTest, ConditionalPeriodTracksGuardEachPoll) {
  // Regression: the guard is evaluated against the live metric every poll.
  // A guard that flips mid-stream must flip the effective period with it —
  // the old behaviour resolved the gate into "drop the metric" and the
  // period never tracked the guard.
  TuningConfig config;
  config.default_period = seconds(4.0);
  MetricPeriod mp;
  mp.metric = "loadavg";
  mp.period = seconds(1.0);
  mp.conditional = true;
  mp.cond_metric = "freemem";
  mp.cond_kind = ThresholdKind::kBelow;
  mp.cond_value = 100.0;
  config.metric_periods.push_back(mp);
  ASSERT_TRUE(tuning.apply(config).is_ok());

  auto has_loadavg = [](const Decision& d) {
    for (const auto& s : d.to_send) {
      if (s.id == 0) return true;
    }
    return false;
  };

  // Guard met (freemem low): tight 1 s period.
  EXPECT_TRUE(has_loadavg(tuning.decide(samples(5, 50, 0, 0), at(0))));
  EXPECT_TRUE(has_loadavg(tuning.decide(samples(5, 50, 0, 0), at(1.0))));
  // Guard flips off at t=2: the slow default period (4 s since the t=1
  // send) takes over immediately.
  EXPECT_FALSE(has_loadavg(tuning.decide(samples(5, 500, 0, 0), at(2.0))));
  EXPECT_FALSE(has_loadavg(tuning.decide(samples(5, 500, 0, 0), at(4.0))));
  EXPECT_TRUE(has_loadavg(tuning.decide(samples(5, 500, 0, 0), at(5.0))));
  // Guard flips back on at t=6: the tight period resumes.
  EXPECT_TRUE(has_loadavg(tuning.decide(samples(5, 50, 0, 0), at(6.0))));
}

TEST_F(TuningTest, AdaptivePeriodOverridesDefaultNotRules) {
  TuningConfig config;
  config.metric_periods.push_back(MetricPeriod{"freemem", seconds(1.0)});
  ASSERT_TRUE(tuning.apply(config).is_ok());
  // Controller slows loadavg to 3 s and (ineffectively) freemem to 3 s.
  tuning.set_adaptive_period(0, seconds(3.0));
  tuning.set_adaptive_period(1, seconds(3.0));
  EXPECT_EQ(tuning.adaptive_period(0)->sec(), 3.0);

  (void)tuning.decide(samples(1, 2, 3, 4), at(0));
  auto d = tuning.decide(samples(1, 2, 3, 4), at(1.0));
  bool has_loadavg = false, has_freemem = false;
  for (const auto& s : d.to_send) {
    has_loadavg |= s.id == 0;
    has_freemem |= s.id == 1;
  }
  // The operator's explicit freemem rule wins over the adaptive period;
  // loadavg (default-period metric) is slowed by the controller.
  EXPECT_FALSE(has_loadavg);
  EXPECT_TRUE(has_freemem);
  EXPECT_NE(tuning.describe().find("adaptive loadavg"), std::string::npos);

  tuning.clear_adaptive_periods();
  d = tuning.decide(samples(1, 2, 3, 4), at(2.0));
  has_loadavg = false;
  for (const auto& s : d.to_send) has_loadavg |= s.id == 0;
  EXPECT_TRUE(has_loadavg);
}

TEST_F(TuningTest, ThresholdAboveSuppressesOutOfBand) {
  TuningConfig config;
  config.thresholds.push_back(Threshold{"loadavg", ThresholdKind::kAbove, 2.0, 0});
  ASSERT_TRUE(tuning.apply(config).is_ok());
  auto d = tuning.decide(samples(1.5, 0, 0, 0), at(0));
  for (const auto& s : d.to_send) EXPECT_NE(s.id, 0u);
  d = tuning.decide(samples(2.5, 0, 0, 0), at(1.0));
  bool has_loadavg = false;
  for (const auto& s : d.to_send) has_loadavg |= s.id == 0;
  EXPECT_TRUE(has_loadavg);
}

TEST_F(TuningTest, ThresholdRange) {
  TuningConfig config;
  config.thresholds.push_back(Threshold{"freemem", ThresholdKind::kRange, 10, 20});
  ASSERT_TRUE(tuning.apply(config).is_ok());
  auto in_range = tuning.decide(samples(0, 15, 0, 0), at(0));
  bool has = false;
  for (const auto& s : in_range.to_send) has |= s.id == 1;
  EXPECT_TRUE(has);
  auto out_of_range = tuning.decide(samples(0, 25, 0, 0), at(1.0));
  for (const auto& s : out_of_range.to_send) EXPECT_NE(s.id, 1u);
}

TEST_F(TuningTest, ChangePctThreshold) {
  TuningConfig config;
  config.thresholds.push_back(
      Threshold{"freemem", ThresholdKind::kChangePct, 10.0, 0});
  ASSERT_TRUE(tuning.apply(config).is_ok());
  (void)tuning.decide(samples(0, 100, 0, 0), at(0));  // seeds last-sent
  // 5% change: suppressed.
  auto d = tuning.decide(samples(0, 105, 0, 0), at(1.0));
  for (const auto& s : d.to_send) EXPECT_NE(s.id, 1u);
  // 15% change from the value last SENT (100), not last seen.
  d = tuning.decide(samples(0, 115, 0, 0), at(2.0));
  bool has = false;
  for (const auto& s : d.to_send) has |= s.id == 1;
  EXPECT_TRUE(has);
}

TEST_F(TuningTest, DifferentialFilterFirstSampleAlwaysSent) {
  TuningConfig config;
  config.differential_pct = 15.0;
  ASSERT_TRUE(tuning.apply(config).is_ok());
  EXPECT_EQ(tuning.decide(samples(1, 2, 3, 4), at(0)).to_send.size(), 4u);
  // Unchanged values: silence.
  EXPECT_TRUE(tuning.decide(samples(1, 2, 3, 4), at(1.0)).to_send.empty());
  // One metric moves 20%.
  auto d = tuning.decide(samples(1.2, 2, 3, 4), at(2.0));
  ASSERT_EQ(d.to_send.size(), 1u);
  EXPECT_EQ(d.to_send[0].id, 0u);
}

TEST_F(TuningTest, DifferentialExactlyAtBoundarySuppressed) {
  TuningConfig config;
  config.differential_pct = 15.0;
  ASSERT_TRUE(tuning.apply(config).is_ok());
  (void)tuning.decide(samples(100, 0, 0, 0), at(0));
  // |115 - 100| == 15% of 100: not strictly greater, suppressed.
  auto d = tuning.decide(samples(115, 0, 0, 0), at(1.0));
  for (const auto& s : d.to_send) EXPECT_NE(s.id, 0u);
}

TEST_F(TuningTest, UnknownMetricRejectedAtomically) {
  TuningConfig config;
  config.default_period = seconds(9.0);
  config.thresholds.push_back(Threshold{"bogus", ThresholdKind::kAbove, 1, 0});
  EXPECT_FALSE(tuning.apply(config).is_ok());
  // The valid default_period in the same request must not have applied.
  EXPECT_EQ(tuning.default_period().sec(), 1.0);
}

TEST_F(TuningTest, NonPositivePeriodsRejected) {
  // Decoded control events bypass parse_control_commands, so apply() and
  // validate() must reject zero/negative durations themselves: a zero
  // period publishes every poll forever, a negative one is always "due".
  TuningConfig config;
  config.default_period = SimDuration::zero();
  Status status = tuning.apply(config);
  EXPECT_FALSE(status.is_ok());
  EXPECT_NE(status.to_string().find("update period must be positive"),
            std::string::npos);
  EXPECT_EQ(tuning.default_period().sec(), 1.0);

  TuningConfig metric;
  metric.metric_periods.push_back(MetricPeriod{"loadavg", seconds(-2.0)});
  status = tuning.apply(metric);
  EXPECT_FALSE(status.is_ok());
  EXPECT_NE(status.to_string().find("update period must be positive"),
            std::string::npos);
  status = tuning.validate(metric);
  EXPECT_FALSE(status.is_ok());
  EXPECT_NE(status.to_string().find("update period must be positive"),
            std::string::npos);
  // Everything still publishes at the untouched default.
  EXPECT_EQ(tuning.decide(samples(1, 2, 3, 4), at(0)).to_send.size(), 4u);
}

TEST_F(TuningTest, NonPositiveModuleWindowRejectedByValidate) {
  TuningConfig config;
  config.module_periods.emplace_back("cpu", SimDuration::zero());
  Status status = tuning.validate(config);
  EXPECT_FALSE(status.is_ok());
  EXPECT_NE(status.to_string().find("module window must be positive"),
            std::string::npos);
  config.module_periods.clear();
  config.module_periods.emplace_back("cpu", seconds(-5.0));
  EXPECT_FALSE(tuning.validate(config).is_ok());
  // A positive window for an unknown module still validates here — module
  // sets are per-node, so existence is checked at the receiving d-mon.
  config.module_periods.clear();
  config.module_periods.emplace_back("no_such_module", seconds(5.0));
  EXPECT_TRUE(tuning.validate(config).is_ok());
}

TEST_F(TuningTest, FilterReplacesParameterLogic) {
  TuningConfig config;
  config.filter_source = "if (input[LOADAVG].value > 2) output[0] = input[LOADAVG];";
  ASSERT_TRUE(tuning.apply(config).is_ok());
  EXPECT_TRUE(tuning.has_filter());

  auto quiet = tuning.decide(samples(1, 2, 3, 4), at(0));
  EXPECT_TRUE(quiet.to_send.empty());
  EXPECT_GT(quiet.filter_instructions, 0u);

  auto loaded = tuning.decide(samples(3, 2, 3, 4), at(0.1));
  ASSERT_EQ(loaded.to_send.size(), 1u);
  EXPECT_EQ(loaded.to_send[0].id, 0u);
  EXPECT_DOUBLE_EQ(loaded.to_send[0].value, 3.0);
}

TEST_F(TuningTest, FilterSeesLastValueSent) {
  TuningConfig config;
  config.filter_source =
      "if (input[CACHE_MISS].value > input[CACHE_MISS].last_value_sent) "
      "output[0] = input[CACHE_MISS];";
  ASSERT_TRUE(tuning.apply(config).is_ok());
  EXPECT_EQ(tuning.decide(samples(0, 0, 0, 10), at(0)).to_send.size(), 1u);
  // Not higher than what was sent: silent.
  EXPECT_TRUE(tuning.decide(samples(0, 0, 0, 10), at(1)).to_send.empty());
  EXPECT_EQ(tuning.decide(samples(0, 0, 0, 11), at(2)).to_send.size(), 1u);
}

TEST_F(TuningTest, BadFilterKeepsPreviousState) {
  TuningConfig good;
  good.filter_source = "output[0] = input[LOADAVG];";
  ASSERT_TRUE(tuning.apply(good).is_ok());
  TuningConfig bad;
  bad.filter_source = "this is not e-code";
  EXPECT_FALSE(tuning.apply(bad).is_ok());
  EXPECT_TRUE(tuning.has_filter());
  EXPECT_EQ(tuning.filter_source(), *good.filter_source);
}

TEST_F(TuningTest, FilterRuntimeErrorFailsOpen) {
  TuningConfig config;
  config.filter_source = "int x = 0; output[1/x] = input[0];";
  ASSERT_TRUE(tuning.apply(config).is_ok());
  auto d = tuning.decide(samples(1, 2, 3, 4), at(0));
  EXPECT_TRUE(d.filter_error);
  EXPECT_EQ(d.to_send.size(), 4u);  // unfiltered fallback
}

TEST_F(TuningTest, EmptyFilterSourceRemovesFilter) {
  TuningConfig config;
  config.filter_source = "output[0] = input[0];";
  ASSERT_TRUE(tuning.apply(config).is_ok());
  TuningConfig removal;
  removal.filter_source = "";
  ASSERT_TRUE(tuning.apply(removal).is_ok());
  EXPECT_FALSE(tuning.has_filter());
}

TEST_F(TuningTest, ClearResetsEverything) {
  TuningConfig config;
  config.default_period = seconds(5.0);
  config.differential_pct = 20.0;
  config.filter_source = "output[0] = input[0];";
  ASSERT_TRUE(tuning.apply(config).is_ok());
  TuningConfig clear;
  clear.clear = true;
  ASSERT_TRUE(tuning.apply(clear).is_ok());
  EXPECT_FALSE(tuning.has_filter());
  EXPECT_FALSE(tuning.differential_pct().has_value());
  EXPECT_EQ(tuning.default_period().sec(), 1.0);
}

TEST_F(TuningTest, DescribeMentionsSettings) {
  TuningConfig config;
  config.differential_pct = 15.0;
  config.thresholds.push_back(Threshold{"loadavg", ThresholdKind::kAbove, 2, 0});
  ASSERT_TRUE(tuning.apply(config).is_ok());
  const std::string description = tuning.describe();
  EXPECT_NE(description.find("differential 15"), std::string::npos);
  EXPECT_NE(description.find("threshold loadavg above 2"), std::string::npos);
}

// --- fuel knob and compile cache ---------------------------------------------

TEST_F(TuningTest, FuelOverrideReachesVmLimits) {
  TuningConfig config;
  config.max_filter_instructions = 50'000;
  ASSERT_TRUE(tuning.apply(config).is_ok());
  EXPECT_EQ(tuning.vm_limits().max_instructions, 50'000u);
  EXPECT_NE(tuning.describe().find("fuel 50000"), std::string::npos);
  // `clear` drops back to the default limit.
  TuningConfig clear;
  clear.clear = true;
  ASSERT_TRUE(tuning.apply(clear).is_ok());
  EXPECT_EQ(tuning.vm_limits().max_instructions,
            ecode::VmLimits{}.max_instructions);
}

TEST_F(TuningTest, FuelBoundsRejectedWithDescriptiveErrors) {
  // Zero would disable filtering; past the hard ceiling the fuel check at
  // control-flow edges could never fire. Both must fail loudly — these are
  // user-writable control-file values.
  TuningConfig zero;
  zero.max_filter_instructions = 0;
  const Status zero_status = tuning.apply(zero);
  ASSERT_FALSE(zero_status);
  EXPECT_NE(zero_status.message().find("filter instruction limit must be "
                                       "positive"),
            std::string::npos);

  TuningConfig huge;
  huge.max_filter_instructions = ecode::VmLimits::kMaxInstructionLimit + 1;
  const Status huge_status = tuning.apply(huge);
  ASSERT_FALSE(huge_status);
  EXPECT_NE(huge_status.message().find("exceeds hard ceiling"),
            std::string::npos);
  // Rejection is atomic: the previous (default) limit still stands.
  EXPECT_EQ(tuning.vm_limits().max_instructions,
            ecode::VmLimits{}.max_instructions);

  // validate() flags the same bounds without touching state.
  EXPECT_FALSE(tuning.validate(zero).is_ok());
  EXPECT_FALSE(tuning.validate(huge).is_ok());
}

TEST_F(TuningTest, FuelLimitActuallyBoundsFilterExecution) {
  TuningConfig config;
  config.max_filter_instructions = 64;
  config.filter_source = "for (int i = 0; i < 100000; ++i) { }";
  ASSERT_TRUE(tuning.apply(config).is_ok());
  // The filter runs out of fuel, so publication fails open: all 4 samples
  // pass through unfiltered.
  auto decision = tuning.decide(samples(1, 2, 3, 4), at(0));
  EXPECT_EQ(decision.to_send.size(), 4u);
}

TEST_F(TuningTest, IdenticalFilterReinstallSkipsRecompile) {
  TuningConfig config;
  config.filter_source = "output[0] = input[0];";
  ASSERT_TRUE(tuning.apply(config).is_ok());
  EXPECT_EQ(tuning.filter_compiles(), 1u);
  // Same source again — e.g. a control file rewritten with an unchanged
  // filter block — must hit the program cache.
  ASSERT_TRUE(tuning.apply(config).is_ok());
  ASSERT_TRUE(tuning.apply(config).is_ok());
  EXPECT_EQ(tuning.filter_compiles(), 1u);
  // A different program is a real compile.
  TuningConfig other;
  other.filter_source = "output[1] = input[1];";
  ASSERT_TRUE(tuning.apply(other).is_ok());
  EXPECT_EQ(tuning.filter_compiles(), 2u);
}

TEST_F(TuningTest, SketchEnvChangeInvalidatesProgramCache) {
  TuningConfig config;
  config.filter_source = "output[0] = input[0];";
  ASSERT_TRUE(tuning.apply(config).is_ok());
  EXPECT_EQ(tuning.filter_compiles(), 1u);
  // Flipping the sketch environment changes what the source may mean, so
  // the cache must not serve the stale program.
  tuning.enable_sketch_builtins(true);
  ASSERT_TRUE(tuning.apply(config).is_ok());
  EXPECT_EQ(tuning.filter_compiles(), 2u);
}

TEST_F(TuningTest, SketchBuiltinsRejectedUnlessEnabled) {
  TuningConfig config;
  config.filter_source = "return topk(0);";
  const Status status = tuning.apply(config);
  ASSERT_FALSE(status);
  EXPECT_NE(status.message().find("sketch support"), std::string::npos);
  tuning.enable_sketch_builtins(true);
  EXPECT_TRUE(tuning.apply(config).is_ok());
}

// --- control command parsing ------------------------------------------------

TEST(ControlParse, Period) {
  auto config = parse_control_commands("period 2.5");
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config.value().default_period->sec(), 2.5);
}

TEST(ControlParse, MetricPeriodWithCondition) {
  auto config = parse_control_commands(
      "period loadavg 2 if cpu_util above 0.8");
  ASSERT_TRUE(config.is_ok());
  ASSERT_EQ(config.value().metric_periods.size(), 1u);
  const MetricPeriod& mp = config.value().metric_periods[0];
  EXPECT_EQ(mp.metric, "loadavg");
  EXPECT_EQ(mp.period.sec(), 2.0);
  EXPECT_TRUE(mp.conditional);
  EXPECT_EQ(mp.cond_metric, "cpu_util");
  EXPECT_EQ(mp.cond_kind, ThresholdKind::kAbove);
  EXPECT_DOUBLE_EQ(mp.cond_value, 0.8);
}

TEST(ControlParse, Thresholds) {
  auto config = parse_control_commands(
      "threshold freemem below 50e6\n"
      "threshold loadavg above 2\n"
      "threshold diskusage range 10 100\n"
      "threshold cache_miss change 15%\n");
  ASSERT_TRUE(config.is_ok());
  ASSERT_EQ(config.value().thresholds.size(), 4u);
  EXPECT_DOUBLE_EQ(config.value().thresholds[0].a, 50e6);
  EXPECT_EQ(config.value().thresholds[2].kind, ThresholdKind::kRange);
  EXPECT_EQ(config.value().thresholds[3].kind, ThresholdKind::kChangePct);
  EXPECT_DOUBLE_EQ(config.value().thresholds[3].a, 15.0);
}

TEST(ControlParse, Differential) {
  auto config = parse_control_commands("differential 15%");
  ASSERT_TRUE(config.is_ok());
  EXPECT_DOUBLE_EQ(*config.value().differential_pct, 15.0);
}

TEST(ControlParse, FilterConsumesRemainder) {
  auto config = parse_control_commands(
      "period 2\nfilter {\n int i = 0;\n output[i] = input[0];\n}\n");
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config.value().default_period->sec(), 2.0);
  ASSERT_TRUE(config.value().filter_source.has_value());
  EXPECT_NE(config.value().filter_source->find("output[i]"), std::string::npos);
}

TEST(ControlParse, CommentsAndBlanksIgnored) {
  auto config = parse_control_commands("# a comment\n\nperiod 1\n");
  ASSERT_TRUE(config.is_ok());
  EXPECT_TRUE(config.value().default_period.has_value());
}

TEST(ControlParse, WindowCommand) {
  auto config = parse_control_commands("window cpu 5");
  ASSERT_TRUE(config.is_ok());
  ASSERT_EQ(config.value().module_periods.size(), 1u);
  EXPECT_EQ(config.value().module_periods[0].first, "cpu");
  EXPECT_EQ(config.value().module_periods[0].second.sec(), 5.0);
  EXPECT_FALSE(parse_control_commands("window cpu").is_ok());
  EXPECT_FALSE(parse_control_commands("window cpu -1").is_ok());
}

TEST(ControlParse, FuelCommand) {
  auto config = parse_control_commands("fuel 50000");
  ASSERT_TRUE(config.is_ok());
  EXPECT_EQ(config.value().max_filter_instructions, 50'000u);

  EXPECT_FALSE(parse_control_commands("fuel").is_ok());
  EXPECT_FALSE(parse_control_commands("fuel abc").is_ok());

  auto zero = parse_control_commands("fuel 0");
  ASSERT_FALSE(zero.is_ok());
  EXPECT_NE(zero.status().message().find("must be positive"),
            std::string::npos);
  EXPECT_FALSE(parse_control_commands("fuel -5").is_ok());

  // A user-writable control file cannot push the limit past the hard
  // ceiling, which would make out_of_fuel() unreachable.
  auto huge = parse_control_commands("fuel 1000000001");
  ASSERT_FALSE(huge.is_ok());
  EXPECT_NE(huge.status().message().find("exceeds hard ceiling"),
            std::string::npos);
  EXPECT_TRUE(parse_control_commands("fuel 1000000000").is_ok());
}

TEST(ControlParse, Clear) {
  auto config = parse_control_commands("clear");
  ASSERT_TRUE(config.is_ok());
  EXPECT_TRUE(config.value().clear);
}

TEST(ControlParse, NoFilterCommand) {
  auto config = parse_control_commands("nofilter");
  ASSERT_TRUE(config.is_ok());
  ASSERT_TRUE(config.value().filter_source.has_value());
  EXPECT_TRUE(config.value().filter_source->empty());
}

TEST(ControlParse, ErrorsAreDescriptive) {
  EXPECT_FALSE(parse_control_commands("period").is_ok());
  EXPECT_FALSE(parse_control_commands("period abc").is_ok());
  EXPECT_FALSE(parse_control_commands("threshold loadavg sideways 3").is_ok());
  EXPECT_FALSE(parse_control_commands("threshold loadavg range 10 5").is_ok());
  EXPECT_FALSE(parse_control_commands("frobnicate 3").is_ok());
  EXPECT_FALSE(parse_control_commands("period loadavg 2 if x sideways 1").is_ok());
  EXPECT_FALSE(parse_control_commands("period loadavg -1").is_ok());
}

// --- wire codec ------------------------------------------------------------

TEST(ControlCodec, RoundTrip) {
  TuningConfig config;
  config.clear = true;
  config.default_period = seconds(2.0);
  MetricPeriod mp;
  mp.metric = "loadavg";
  mp.period = milliseconds(500);
  mp.conditional = true;
  mp.cond_metric = "freemem";
  mp.cond_kind = ThresholdKind::kBelow;
  mp.cond_value = 50e6;
  config.metric_periods.push_back(mp);
  config.thresholds.push_back(Threshold{"diskusage", ThresholdKind::kRange, 1, 2});
  config.differential_pct = 15.0;
  config.filter_source = "output[0] = input[0];";

  auto decoded = decode_tuning(encode_tuning(config));
  ASSERT_TRUE(decoded.is_ok());
  const TuningConfig& d = decoded.value();
  EXPECT_TRUE(d.clear);
  EXPECT_EQ(d.default_period->ns(), config.default_period->ns());
  ASSERT_EQ(d.metric_periods.size(), 1u);
  EXPECT_EQ(d.metric_periods[0].metric, "loadavg");
  EXPECT_EQ(d.metric_periods[0].cond_metric, "freemem");
  EXPECT_DOUBLE_EQ(d.metric_periods[0].cond_value, 50e6);
  ASSERT_EQ(d.thresholds.size(), 1u);
  EXPECT_EQ(d.thresholds[0].kind, ThresholdKind::kRange);
  EXPECT_DOUBLE_EQ(*d.differential_pct, 15.0);
  EXPECT_EQ(*d.filter_source, "output[0] = input[0];");
}

TEST(ControlCodec, ModulePeriodsRoundTrip) {
  TuningConfig config;
  config.module_periods.emplace_back("cpu", seconds(5.0));
  config.module_periods.emplace_back("disk", milliseconds(500.0));
  auto decoded = decode_tuning(encode_tuning(config));
  ASSERT_TRUE(decoded.is_ok());
  ASSERT_EQ(decoded.value().module_periods.size(), 2u);
  EXPECT_EQ(decoded.value().module_periods[0].first, "cpu");
  EXPECT_EQ(decoded.value().module_periods[1].second.ns(),
            milliseconds(500.0).ns());
}

TEST(ControlCodec, EmptyConfigRoundTrips) {
  auto decoded = decode_tuning(encode_tuning(TuningConfig{}));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_FALSE(decoded.value().clear);
  EXPECT_FALSE(decoded.value().default_period.has_value());
  EXPECT_FALSE(decoded.value().filter_source.has_value());
}

TEST(ControlCodec, FuelRoundTrips) {
  TuningConfig config;
  config.max_filter_instructions = 123'456;
  auto decoded = decode_tuning(encode_tuning(config));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().max_filter_instructions, 123'456u);
  // Absent stays absent (the presence byte carries the distinction).
  auto empty = decode_tuning(encode_tuning(TuningConfig{}));
  ASSERT_TRUE(empty.is_ok());
  EXPECT_FALSE(empty.value().max_filter_instructions.has_value());
}

TEST(ControlCodec, TruncatedPayloadRejected) {
  auto bytes = encode_tuning(TuningConfig{});
  bytes.pop_back();
  EXPECT_FALSE(decode_tuning(bytes).is_ok());
}

}  // namespace
}  // namespace dproc::core
