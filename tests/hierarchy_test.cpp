// Hierarchical aggregation overlay: layout builder, roll-up state machine,
// election fallback, end-to-end roll-up/drill-down behaviour, and the
// aggregator-crash chaos scenario:
//  * the zone tree is a pure function of (node_count, config) — every node
//    derives the same shape, candidates and parents without a protocol;
//  * ZoneRollup folds origin feeds and child aggregates with overwrite
//    semantics, so a re-elected child aggregator never double-counts;
//  * a subscriber sees one cluster summary whose per-metric count covers
//    every live node, plus /proc/cluster/rollup and zone files;
//  * drill-down pulls one node's raw feed through the tree without
//    flattening its zone;
//  * crashing an acting aggregator mid-period converges to the next
//    candidate, keeps counts duplicate-free, and keeps an active
//    drill-down alive across the handoff.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dproc/core/cluster.hpp"
#include "dproc/core/hierarchy.hpp"
#include "dproc/sim/fault.hpp"

namespace dproc::core {
namespace {

SimTime at(double sec) { return SimTime::zero() + seconds(sec); }

HierarchyConfig hier(std::size_t zone_size, std::size_t fanout) {
  HierarchyConfig config;
  config.enabled = true;
  config.zone_size = zone_size;
  config.fanout = fanout;
  return config;
}

// ---------------------------------------------------------------------------
// Layout builder.

TEST(HierarchyLayout, SixtyFourNodesMakeEightZonesAndOneRoot) {
  const HierarchyLayout layout = build_hierarchy(64, hier(8, 8));
  EXPECT_EQ(layout.node_count(), 64u);
  EXPECT_EQ(layout.tiers(), 2u);
  ASSERT_EQ(layout.zones().size(), 9u);  // 8 leaves + root
  EXPECT_EQ(layout.root().tier, 1u);
  EXPECT_EQ(layout.root().children.size(), 8u);
  EXPECT_EQ(layout.root().node_count, 64u);
  // Root candidates are the leftmost leaf's members: failover needs only
  // leaf membership knowledge.
  EXPECT_EQ(layout.root().candidates,
            (std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7}));
  // Every node is covered by exactly its leaf.
  for (std::size_t node = 0; node < 64; ++node) {
    const HierarchyZone& leaf = layout.leaf_of(node);
    EXPECT_EQ(leaf.tier, 0u);
    EXPECT_TRUE(leaf.contains(node));
  }
  // Duties follow a node up the tree: node 0 serves its leaf and the root,
  // node 8 only its leaf.
  EXPECT_EQ(layout.duty_zones(0).size(), 2u);
  EXPECT_EQ(layout.duty_zones(8).size(), 1u);
}

TEST(HierarchyLayout, FiveTwelveNodesNeedThreeTiers) {
  const HierarchyLayout layout = build_hierarchy(512, hier(8, 8));
  EXPECT_EQ(layout.tiers(), 3u);
  ASSERT_EQ(layout.zones().size(), 64u + 8u + 1u);
  EXPECT_EQ(layout.root().node_count, 512u);
  std::size_t leaves = 0;
  for (const HierarchyZone& zone : layout.zones()) {
    if (zone.tier == 0) ++leaves;
    if (zone.parent) {
      EXPECT_EQ(layout.zone(*zone.parent).tier, zone.tier + 1);
    } else {
      EXPECT_EQ(zone.id, layout.root().id);
    }
  }
  EXPECT_EQ(leaves, 64u);
  // Node 0 is a candidate at every tier.
  EXPECT_EQ(layout.duty_zones(0).size(), 3u);
}

TEST(HierarchyLayout, RaggedNodeCountMakesAShortLastZone) {
  const HierarchyLayout layout = build_hierarchy(10, hier(8, 8));
  ASSERT_EQ(layout.zones().size(), 3u);  // {0..7}, {8,9}, root
  EXPECT_EQ(layout.leaf_of(9).members, (std::vector<std::size_t>{8, 9}));
  EXPECT_EQ(layout.root().node_count, 10u);
}

TEST(HierarchyLayout, ActingElectionFallsThroughDeadCandidates) {
  const HierarchyLayout layout = build_hierarchy(16, hier(8, 8));
  const HierarchyZone& leaf = layout.leaf_of(0);
  auto all_alive = [](std::size_t) { return true; };
  EXPECT_EQ(layout.acting(leaf, all_alive), 0u);
  auto zero_dead = [](std::size_t node) { return node != 0; };
  EXPECT_EQ(layout.acting(leaf, zero_dead), 1u);
  auto all_dead = [](std::size_t) { return false; };
  EXPECT_EQ(layout.acting(leaf, all_dead), std::nullopt);
}

// ---------------------------------------------------------------------------
// ZoneRollup state machine.

TEST(ZoneRollup, FoldsOriginSamplesIntoOneEntry) {
  ZoneRollup rollup;
  rollup.update_origin_sample(1, 0, 1.0, 100, at(1.0));
  rollup.update_origin_sample(2, 0, 3.0, 200, at(1.0));
  rollup.update_origin_sample(3, 0, 2.0, 300, at(1.0));
  RollupSpec spec;
  spec.top_k = 2;
  net::AggregateBatch out;
  ASSERT_TRUE(rollup.build(out, spec, at(1.5), seconds(3.0)));
  ASSERT_EQ(out.entries.size(), 1u);
  const net::AggregateBatch::Entry& entry = out.entries[0];
  EXPECT_EQ(entry.count, 3u);
  EXPECT_DOUBLE_EQ(entry.min, 1.0);
  EXPECT_DOUBLE_EQ(entry.max, 3.0);
  EXPECT_DOUBLE_EQ(entry.sum, 6.0);
  EXPECT_EQ(entry.latest_ns, 300);
  ASSERT_EQ(entry.top.size(), 2u);
  EXPECT_EQ(entry.top[0].node, 2u);  // 3.0 beats 2.0
  EXPECT_DOUBLE_EQ(entry.top[0].value, 3.0);
  EXPECT_EQ(entry.top[1].node, 3u);
}

TEST(ZoneRollup, StaleOriginsAgeOutOfTheBuild) {
  ZoneRollup rollup;
  rollup.update_origin_sample(1, 0, 1.0, 0, at(0.0));
  rollup.update_origin_sample(2, 0, 2.0, 0, at(9.0));
  net::AggregateBatch out;
  ASSERT_TRUE(rollup.build(out, RollupSpec{}, at(10.0), seconds(3.0)));
  ASSERT_EQ(out.entries.size(), 1u);
  EXPECT_EQ(out.entries[0].count, 1u) << "origin 1 is past the horizon";
  // Everything stale: nothing to publish.
  EXPECT_FALSE(rollup.build(out, RollupSpec{}, at(20.0), seconds(3.0)));
}

TEST(ZoneRollup, ChildRepublishOverwritesInsteadOfDoubleCounting) {
  ZoneRollup rollup;
  net::AggregateBatch child;
  child.flags = RollupSpec{}.flags();
  child.tier = 0;
  child.zone = 7;
  child.entries.push_back({0, 8, 100, 1.0, 4.0, 16.0, {}});
  rollup.update_child(child, at(1.0));
  // The zone's re-elected aggregator republishes the same zone id — the
  // zone id is the overwrite key, so the count stays 8.
  child.entries[0].count = 8;
  child.entries[0].sum = 20.0;
  rollup.update_child(child, at(2.0));
  net::AggregateBatch out;
  ASSERT_TRUE(rollup.build(out, RollupSpec{}, at(2.5), seconds(3.0)));
  ASSERT_EQ(out.entries.size(), 1u);
  EXPECT_EQ(out.entries[0].count, 8u);
  EXPECT_DOUBLE_EQ(out.entries[0].sum, 20.0);
  EXPECT_EQ(rollup.child_count(), 1u);
}

// ---------------------------------------------------------------------------
// End-to-end roll-up on a real cluster.

TEST(HierarchyOverlay, SubscriberSeesOneClusterWideSummary) {
  sim::Engine engine;
  ClusterConfig config;
  config.node_count = 16;
  config.hierarchy = hier(4, 4);
  config.hierarchy.rollup.top_k = 2;
  config.hierarchy.subscribers = std::vector<std::size_t>{5};
  Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(at(10.0));

  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_TRUE(cluster.dmon(i)->hierarchy_active());
  }
  // Node 5 is a plain leaf member of t0.z1, not a root candidate: its
  // summary arrived over the summary channel.
  const net::AggregateBatch* summary = cluster.dmon(5)->cluster_summary();
  ASSERT_NE(summary, nullptr);
  EXPECT_GT(cluster.dmon(5)->cluster_summary_at(), at(8.0));
  const net::AggregateBatch::Entry* loadavg = nullptr;
  for (const net::AggregateBatch::Entry& e : summary->entries) {
    if (e.id == 0) loadavg = &e;
  }
  ASSERT_NE(loadavg, nullptr);
  EXPECT_EQ(loadavg->count, 16u) << "every node folded exactly once";
  EXPECT_LE(loadavg->min, loadavg->max);
  ASSERT_FALSE(loadavg->top.empty());
  EXPECT_LE(loadavg->top.size(), 2u);

  // Rendered roll-up files at the subscriber...
  auto rendered = cluster.procfs(5).read("/proc/cluster/rollup/cpu/loadavg");
  ASSERT_TRUE(rendered.is_ok());
  EXPECT_NE(rendered.value().find("count 16"), std::string::npos)
      << rendered.value();
  // ...zone summaries at an acting aggregator...
  auto zone = cluster.procfs(12).read("/proc/cluster/zones/t0.z3/cpu/loadavg");
  ASSERT_TRUE(zone.is_ok());
  EXPECT_NE(zone.value().find("count 4"), std::string::npos) << zone.value();
  // ...and the overlay status file everywhere.
  auto status = cluster.procfs(8).read("/proc/dproc/hierarchy");
  ASSERT_TRUE(status.is_ok());
  EXPECT_NE(status.value().find("duty t0.z2 acting 8 (self)"),
            std::string::npos)
      << status.value();

  // A non-subscriber plain member holds no cluster summary and hears no
  // per-node raw feeds from other zones — the overlay does not flatten.
  EXPECT_EQ(cluster.dmon(14)->cluster_summary(), nullptr);
  EXPECT_EQ(cluster.dmon(5)->remote_metric(cluster.nic(13).node(), "loadavg"),
            nullptr);
}

TEST(HierarchyOverlay, DrillDownPullsOneRawFeedWithoutFlattening) {
  sim::Engine engine;
  ClusterConfig config;
  config.node_count = 16;
  config.hierarchy = hier(4, 4);
  config.hierarchy.subscribers = std::vector<std::size_t>{5};
  config.hierarchy.drill_ttl_periods = 3;
  Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(at(5.0));

  // Only summary members can drill (they own the summary channel).
  EXPECT_FALSE(cluster.dmon(8)->drill_down(13, true).is_ok());

  // Procfs is the application-facing switch; node 13 lives in t0.z3.
  ASSERT_TRUE(cluster.procfs(5).write("/proc/dproc/drilldown", "13").is_ok());
  engine.run_until(at(10.0));
  const net::NodeId n13 = cluster.nic(13).node();
  const RemoteMetric* raw = cluster.dmon(5)->remote_metric(n13, "loadavg");
  ASSERT_NE(raw, nullptr) << "drilled feed must reach the requester";
  EXPECT_GT(raw->received_at, at(8.0));
  // The zone did not flatten: its other members' raw feeds stay zone-local.
  EXPECT_EQ(cluster.dmon(5)->remote_metric(cluster.nic(14).node(), "loadavg"),
            nullptr);
  auto rendered = cluster.procfs(5).read("/proc/dproc/drilldown");
  ASSERT_TRUE(rendered.is_ok());
  EXPECT_NE(rendered.value().find("local 13"), std::string::npos);

  // Switching it off stops the feed (explicit disable, not TTL expiry).
  ASSERT_TRUE(
      cluster.procfs(5).write("/proc/dproc/drilldown", "13 off").is_ok());
  engine.run_until(at(12.0));
  const SimTime stopped_at =
      cluster.dmon(5)->remote_metric(n13, "loadavg")->received_at;
  engine.run_until(at(16.0));
  EXPECT_EQ(cluster.dmon(5)->remote_metric(n13, "loadavg")->received_at,
            stopped_at)
      << "feed kept flowing after the drill-down was disabled";
}

// ---------------------------------------------------------------------------
// Chaos: crash the acting aggregator of a populated zone mid-period.

TEST(HierarchyChaos, AggregatorCrashFailsOverWithoutDoubleCounting) {
  sim::Engine engine;
  ClusterConfig config;
  config.node_count = 64;
  config.hierarchy = hier(8, 8);
  config.hierarchy.subscribers = std::vector<std::size_t>{20};
  config.hierarchy.drill_ttl_periods = 5;
  config.liveness.enabled = true;
  config.liveness.heartbeat_period = seconds(1.0);
  config.liveness.miss_threshold = 3;
  Cluster cluster{engine, config};
  cluster.start_dproc();

  const HierarchyLayout layout = build_hierarchy(64, config.hierarchy);
  const std::uint32_t z1 = layout.leaf_of(9).id;  // nodes 8..15

  engine.run_until(at(5.0));
  ASSERT_EQ(cluster.dmon(9)->zone_acting(z1), 8u);
  // An active drill-down through the zone that is about to lose its
  // aggregator. The request propagates one tier per poll period (each hop
  // drains its channel at its own poll), so give the pipeline a few
  // periods before asserting delivery.
  ASSERT_TRUE(cluster.dmon(20)->drill_down(10, true).is_ok());
  engine.run_until(at(12.0));
  const net::NodeId n10 = cluster.nic(10).node();
  ASSERT_NE(cluster.dmon(20)->remote_metric(n10, "loadavg"), nullptr);

  // Crash node 8 (acting aggregator of t0.z1) mid-period.
  cluster.crash_node(8);
  engine.run_until(at(25.0));

  // Failover converged: the zone's survivors elected the next candidate.
  EXPECT_EQ(cluster.dmon(9)->zone_acting(z1), 9u);
  EXPECT_EQ(cluster.dmon(15)->zone_acting(z1), 9u);

  // The cluster summary stays fresh and duplicate-free: node 8's
  // contribution aged out, every survivor is folded exactly once (the zone
  // id is the overwrite key at the parent, so the re-elected aggregator's
  // frames replace the dead one's rather than adding to them).
  const net::AggregateBatch* summary = cluster.dmon(20)->cluster_summary();
  ASSERT_NE(summary, nullptr);
  EXPECT_GT(cluster.dmon(20)->cluster_summary_at(), at(23.0));
  const net::AggregateBatch::Entry* loadavg = nullptr;
  for (const net::AggregateBatch::Entry& e : summary->entries) {
    if (e.id == 0) loadavg = &e;
  }
  ASSERT_NE(loadavg, nullptr);
  EXPECT_EQ(loadavg->count, 63u)
      << "either the dead node leaked back in or a survivor double-counted";

  // The drill-down survived the handoff: the requester keeps receiving
  // node 10's raw feed through the new aggregator (the per-poll
  // re-announcement re-seeds the routing state at the new acting node).
  const RemoteMetric* raw = cluster.dmon(20)->remote_metric(n10, "loadavg");
  ASSERT_NE(raw, nullptr);
  EXPECT_GT(raw->received_at, at(23.0));
}

TEST(HierarchyOverlay, DisabledConfigKeepsTheFlatStack) {
  // Byte-identity of the flat wire format is pinned by the golden-trace
  // test; here we pin the defaults and the absence of overlay state.
  const HierarchyConfig defaults;
  EXPECT_FALSE(defaults.enabled);

  sim::Engine engine;
  ClusterConfig config;
  config.node_count = 2;
  Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(at(4.0));
  EXPECT_FALSE(cluster.dmon(0)->hierarchy_active());
  EXPECT_EQ(cluster.dmon(0)->cluster_summary(), nullptr);
  EXPECT_FALSE(cluster.procfs(0).read("/proc/dproc/hierarchy").is_ok());
}

}  // namespace
}  // namespace dproc::core
