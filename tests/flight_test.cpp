// Flight recorder, health engine, and incident pipeline: the post-mortem
// observability layer end to end.
//
// Coverage, unit to acceptance:
//  * ring semantics — wraparound, oldest-first indexing, drop accounting,
//    render/parse round-trip, and a concurrent-record stress run (the
//    recorder's spinlock exists solely for this);
//  * health engine — incident-trigger dedup folding a sustained signal
//    into one open incident, and the score reacting to failure signals;
//  * the acceptance scenario — an 8-node chaos run (node crash, access
//    partition, registry outage, leader kill) post-mortemed purely from
//    the /proc/dproc/incidents dumps: every disruptive fault must be
//    explained by a recorded symptom after merging the per-node bundles
//    on the shared virtual clock;
//  * SmartPointer trust — the published health score demotes a client's
//    feed before any staleness-SLO violation exists.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dproc/core/cluster.hpp"
#include "dproc/host/host.hpp"
#include "dproc/core/health.hpp"
#include "dproc/core/incident.hpp"
#include "dproc/sim/fault.hpp"
#include "dproc/smartpointer/client.hpp"
#include "dproc/smartpointer/server.hpp"
#include "dproc/telemetry/flight.hpp"
#include "dproc/util/rng.hpp"

namespace dproc {
namespace {

using telemetry::FlightCode;
using telemetry::FlightEvent;
using telemetry::FlightRecorder;
using telemetry::FlightSubsystem;
using telemetry::Severity;

SimTime at(double sec) { return SimTime::zero() + seconds(sec); }

// --- ring semantics ---------------------------------------------------------

TEST(FlightRing, DisabledByDefaultRecordsNothing) {
  FlightRecorder rec;
  rec.record(Severity::kInfo, FlightSubsystem::kKecho, FlightCode::kMemberJoin,
             1);
  EXPECT_FALSE(rec.enabled());
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_TRUE(rec.render().empty());
}

TEST(FlightRing, WraparoundKeepsNewestOldestFirst) {
  FlightRecorder rec;
  rec.configure(8);
  rec.set_enabled(true);
  for (std::uint64_t i = 0; i < 20; ++i) {
    rec.record(Severity::kInfo, FlightSubsystem::kDmon, FlightCode::kPeerLive,
               i);
  }
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.dropped(), 12u);
  for (std::size_t i = 0; i < rec.size(); ++i) {
    EXPECT_EQ(rec.event(i).args[0], 12u + i) << "slot " << i;
  }
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
}

TEST(FlightRing, RenderParseRoundTrip) {
  FlightRecorder rec;
  rec.configure(4);
  rec.set_enabled(true);
  rec.record(Severity::kWarn, FlightSubsystem::kDmon, FlightCode::kPeerStale,
             3, 4200, 0, 0, 0xdeadbeef);
  rec.record(Severity::kError, FlightSubsystem::kFault,
             FlightCode::kFaultInjected, 0, 6, 500000, UINT64_MAX);

  std::vector<FlightEvent> events;
  std::istringstream in(rec.render());
  std::string line;
  while (std::getline(in, line)) {
    FlightEvent e;
    ASSERT_TRUE(telemetry::parse_event(line, e)) << line;
    events.push_back(e);
  }
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].severity, Severity::kWarn);
  EXPECT_EQ(events[0].subsystem, FlightSubsystem::kDmon);
  EXPECT_EQ(events[0].code, FlightCode::kPeerStale);
  EXPECT_EQ(events[0].args[1], 4200u);
  EXPECT_EQ(events[0].trace_id, 0xdeadbeefu);
  EXPECT_EQ(events[1].code, FlightCode::kFaultInjected);
  EXPECT_EQ(events[1].args[3], UINT64_MAX);
  // Round-trip is a fixed point: rendering the parsed event reproduces the
  // line byte for byte.
  EXPECT_EQ(telemetry::render_event(events[0]) + "\n" +
                telemetry::render_event(events[1]) + "\n",
            rec.render());
}

TEST(FlightRing, ConcurrentRecordStress) {
  FlightRecorder rec;
  rec.configure(256);
  rec.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        rec.record(Severity::kInfo, FlightSubsystem::kDmon,
                   FlightCode::kPeerLive, static_cast<std::uint64_t>(t), i);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  // Nothing lost silently: every record either landed or was counted as an
  // overwrite, and every retained slot is a coherent event.
  EXPECT_EQ(rec.size(), 256u);
  EXPECT_EQ(rec.size() + rec.dropped(), kThreads * kPerThread);
  for (std::size_t i = 0; i < rec.size(); ++i) {
    const FlightEvent& e = rec.event(i);
    EXPECT_EQ(e.code, FlightCode::kPeerLive);
    EXPECT_LT(e.args[0], static_cast<std::uint64_t>(kThreads));
    EXPECT_LT(e.args[1], kPerThread);
  }
}

// --- health engine ----------------------------------------------------------

struct HealthHarness {
  HealthHarness() : host(engine, 0, host::HostConfig{}, Rng{42}.split()) {
    host.telemetry().set_enabled(true);
    host.flight().configure(64);
    host.flight().set_enabled(true);
  }
  sim::Engine engine;
  host::Host host;
};

TEST(HealthEngine, SustainedTriggerDedupsIntoOneIncident) {
  HealthHarness h;
  core::HealthConfig config;
  config.enabled = true;
  config.dedup_window = seconds(2.0);
  core::HealthEngine health{h.host, &h.host.flight(), config};
  telemetry::Counter& evictions =
      h.host.telemetry().counter("kecho", "evictions");

  evictions.add();
  health.on_poll({}, at(1.0));
  EXPECT_EQ(health.incidents_opened(), 1u);

  // The signal persists across the next polls: absorbed as symptoms, not
  // new incidents.
  evictions.add();
  health.on_poll({}, at(2.0));
  evictions.add();
  health.on_poll({}, at(3.0));
  EXPECT_EQ(health.incidents_opened(), 1u);
  EXPECT_GE(health.triggers_deduped(), 2u);
  ASSERT_EQ(health.incidents().size(), 1u);
  EXPECT_GE(health.incidents()[0].symptoms, 2u);

  // Past the dedup window a fresh trigger opens a fresh incident.
  evictions.add();
  health.on_poll({}, at(7.0));
  EXPECT_EQ(health.incidents_opened(), 2u);

  // Bundles render and parse back losslessly (count, trigger, events).
  std::vector<core::IncidentBundle> parsed;
  ASSERT_TRUE(core::parse_bundles(health.render_incidents(), parsed));
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].trigger, "kecho/evictions");
  EXPECT_EQ(parsed[0].symptoms, health.incidents()[0].symptoms);
  EXPECT_FALSE(parsed[0].events.empty());
}

TEST(HealthEngine, ScoreFallsWithFailureSignalsAndRecovers) {
  HealthHarness h;
  core::HealthConfig config;
  config.enabled = true;
  config.score_window = 2;
  core::HealthEngine health{h.host, &h.host.flight(), config};
  EXPECT_EQ(health.score(), 100.0);
  EXPECT_TRUE(health.trusted());

  // Drops (the whole 1-poll window active) plus one third of peers stale:
  // 20 + 10 penalty.
  h.host.telemetry().counter("net", "drops").add(5);
  health.on_poll({.peers_total = 3, .peers_stale = 1}, at(1.0));
  EXPECT_NEAR(health.score(), 100.0 - 20.0 - 30.0 / 3.0, 1e-9);
  EXPECT_TRUE(health.trusted());

  // Clean polls age the counter signal out of the 2-poll score window:
  // half-active first, then gone.
  health.on_poll({.peers_total = 3}, at(2.0));
  EXPECT_NEAR(health.score(), 100.0 - 20.0 * 0.5, 1e-9);
  health.on_poll({.peers_total = 3}, at(3.0));
  health.on_poll({.peers_total = 3}, at(4.0));
  EXPECT_EQ(health.score(), 100.0);

  // The score history ring saw the dip.
  const core::MetricHistory* hist = health.history("health/score");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->size(), 4u);
  EXPECT_LT(hist->at(0), 100.0);
  EXPECT_EQ(hist->at(3), 100.0);
}

// --- acceptance: chaos post-mortem from incident dumps ----------------------

core::ClusterConfig chaos_config() {
  core::ClusterConfig config;
  config.node_count = 8;
  config.liveness.enabled = true;
  config.liveness.heartbeat_period = seconds(1.0);
  config.liveness.miss_threshold = 5;
  config.dmon.stale_after_periods = 3;
  config.registry.enabled = true;
  config.registry.replicas = 3;
  config.flight.enabled = true;
  config.health.enabled = true;
  return config;
}

TEST(FlightChaos, IncidentDumpsReconstructTheFaultPlan) {
  sim::Engine engine;
  core::Cluster cluster{engine, chaos_config()};
  cluster.start_dproc();

  sim::FaultPlan plan;
  plan.crash_node(at(5.0), 6)
      .restart_node(at(20.0), 6)
      .partition_link(at(8.0), cluster.uplink(5))
      .heal_link(at(14.0), cluster.uplink(5))
      .registry_outage(at(10.0), at(16.0))
      .kill_registry_leader(at(25.0));
  cluster.inject(plan);
  engine.run_until(at(45.0));

  // Post-mortem purely from the per-node procfs dumps, the operator path.
  std::vector<core::IncidentBundle> bundles;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto dump = cluster.procfs(i).read("/proc/dproc/incidents");
    ASSERT_TRUE(dump.is_ok()) << "node " << i;
    ASSERT_TRUE(core::parse_bundles(dump.value(), bundles)) << "node " << i;
  }
  ASSERT_FALSE(bundles.empty());

  const auto timeline = core::merge_timeline(bundles);
  const auto findings = core::align_faults(timeline);

  // All 7 injected faults appear exactly once in the merged timeline (the
  // cluster-wide ground-truth broadcast dedups), and every disruptive one
  // has a recorded symptom after it.
  ASSERT_EQ(findings.size(), 7u);
  EXPECT_TRUE(core::faults_recovered(findings));
  std::set<sim::FaultKind> kinds;
  for (const core::FaultFinding& f : findings) {
    kinds.insert(static_cast<sim::FaultKind>(f.fault.args[0]));
    if (!f.disruptive) continue;
    // >= not >: a registry outage records its symptom synchronously at the
    // fault instant (the replica's outage handler runs inline).
    EXPECT_GE(f.symptom.ts_ns, f.fault.ts_ns)
        << sim::to_string(static_cast<sim::FaultKind>(f.fault.args[0]));
  }
  for (sim::FaultKind kind :
       {sim::FaultKind::kNodeCrash, sim::FaultKind::kLinkDown,
        sim::FaultKind::kRegistryDown, sim::FaultKind::kRegistryLeaderKill}) {
    EXPECT_TRUE(kinds.contains(kind)) << sim::to_string(kind);
  }

  // First symptom of the crash is correctly attributed: a liveness
  // transition (or eviction) of the crashed node, not of a bystander.
  for (const core::FaultFinding& f : findings) {
    if (static_cast<sim::FaultKind>(f.fault.args[0]) !=
        sim::FaultKind::kNodeCrash) {
      continue;
    }
    ASSERT_TRUE(f.observed);
    EXPECT_EQ(f.symptom.args[0], f.fault.args[1]);
  }

  // Merged timestamps are monotone — the shared virtual clock IS the
  // causal order, no reconciliation pass needed.
  for (std::size_t i = 1; i < timeline.size(); ++i) {
    EXPECT_LE(timeline[i - 1].event.ts_ns, timeline[i].event.ts_ns);
  }

  // The machine-readable report agrees.
  const std::string json = core::timeline_json(timeline, findings);
  EXPECT_NE(json.find("\"recovered\": true"), std::string::npos);
  EXPECT_NE(json.find("node_crash"), std::string::npos);
}

TEST(FlightChaos, HealthScoreIsPublishedClusterWide) {
  sim::Engine engine;
  core::Cluster cluster{engine, chaos_config()};
  cluster.start_dproc();
  sim::FaultPlan plan;
  plan.crash_node(at(5.0), 6);
  cluster.inject(plan);
  engine.run_until(at(12.0));

  // Survivors saw churn: their own engines dipped below 100 and published
  // the score on the monitoring channel like any other metric.
  const core::HealthEngine* health = cluster.dmon(0)->health_engine();
  ASSERT_NE(health, nullptr);
  EXPECT_LT(health->score(), 100.0);
  const core::RemoteMetric* remote =
      cluster.dmon(0)->remote_metric(cluster.nic(1).node(),
                                     "dproc_health_score");
  ASSERT_NE(remote, nullptr);
  EXPECT_LT(remote->value, 100.0);
  EXPECT_GE(remote->value, 0.0);

  // And the procfs surface renders both views.
  auto local = cluster.procfs(0).read("/proc/dproc/health");
  ASSERT_TRUE(local.is_ok());
  EXPECT_NE(local.value().find("score"), std::string::npos);
  auto fleet = cluster.procfs(0).read("/proc/cluster/health");
  ASSERT_TRUE(fleet.is_ok());
  EXPECT_NE(fleet.value().find("node1"), std::string::npos);
}

// --- SmartPointer trust: health demotes before the SLO fires ----------------

TEST(FlightChaos, HealthScoreDemotesFeedBeforeSloFires) {
  using namespace smartpointer;
  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 4;
  config.liveness.enabled = true;
  config.liveness.heartbeat_period = seconds(1.0);
  config.liveness.miss_threshold = 5;
  config.dmon.stale_after_periods = 3;
  config.flight.enabled = true;
  config.health.enabled = true;
  // Trust bar high enough that bystander churn (a third node crashing)
  // pushes the client below it.
  config.health.trust_threshold = 80.0;
  // A staleness SLO so generous it never fires: any distrust must come
  // from the health score, not the per-sample watchdog.
  config.trace.enabled = true;
  config.trace.channel_slo.emplace_back(config.dmon.monitor_channel,
                                        seconds(10.0));
  core::Cluster cluster{engine, config};
  cluster.start_dproc();

  Server server{cluster.host(0), cluster.nic(0), cluster.dmon(0),
                ServerConfig{}};
  server.start();
  ClientConfig client_config;
  client_config.mode = FilterMode::kDynamic;
  Client client{cluster.host(1), cluster.nic(1), 0, 9000, client_config};
  client.connect();

  sim::FaultPlan plan;
  plan.crash_node(at(5.0), 3);
  cluster.inject(plan);
  // Stop mid-churn: the eviction and drop signals are inside every score
  // window, so node 1's published score sits below the trust bar.
  engine.run_until(at(12.0));

  // No SLO violation anywhere, and node 1's own feed is live — yet its
  // published health score (dragged down by the node-3 churn it watched)
  // demoted the stream.
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    if (i == 3) continue;
    EXPECT_EQ(cluster.dmon(i)->slo_violations(), 0u) << "node " << i;
  }
  EXPECT_FALSE(cluster.dmon(0)->peer_health_ok(cluster.nic(1).node()));
  const Server::ClientState* state = server.client(cluster.nic(1).node());
  ASSERT_NE(state, nullptr);
  EXPECT_GT(state->health_distrusts, 0u);
  EXPECT_EQ(state->slo_distrusts, 0u);
  EXPECT_EQ(state->stale_fallbacks, 0u);
  EXPECT_EQ(state->last_rep, ServerConfig{}.stale_fallback_rep);

  // The decision is in the flight record for the post-mortem.
  bool trust_drop = false;
  const telemetry::FlightRecorder& flight = cluster.host(0).flight();
  for (std::size_t i = 0; i < flight.size(); ++i) {
    const FlightEvent& e = flight.event(i);
    if (e.code == FlightCode::kTrustDrop && e.args[1] == 2) trust_drop = true;
  }
  EXPECT_TRUE(trust_drop);
}

}  // namespace
}  // namespace dproc
