// End-to-end causal tracing: per-sample provenance across the 8-node
// cluster (publish → submit → wire → deliver → render → decision), hop
// latency breakdowns, the staleness SLO watchdog, and the Chrome trace
// export's flow events. The disabled-by-default contract itself is pinned
// by trace_golden_test (byte-identical frames) and perf_regression_test
// (zero-allocation hot paths); here we assert the *enabled* behaviour.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "dproc/core/cluster.hpp"
#include "dproc/smartpointer/client.hpp"
#include "dproc/smartpointer/server.hpp"
#include "dproc/telemetry/telemetry.hpp"

namespace dproc {
namespace {

using telemetry::HopStage;

// --- a minimal JSON parser, just enough to validate the Chrome export ------

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] const JsonValue* get(const std::string& key) const {
    auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::string str(const std::string& key) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->kind == kString ? v->string : std::string{};
  }
  [[nodiscard]] double num(const std::string& key) const {
    const JsonValue* v = get(key);
    return v != nullptr && v->kind == kNumber ? v->number : 0.0;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    return p_ == end_;  // no trailing garbage
  }

 private:
  void skip_ws() {
    while (p_ < end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }
  bool literal(const char* text) {
    const char* q = p_;
    for (; *text != '\0'; ++text, ++q) {
      if (q == end_ || *q != *text) return false;
    }
    p_ = q;
    return true;
  }
  bool value(JsonValue& out) {
    skip_ws();
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': return object(out);
      case '[': return array(out);
      case '"': out.kind = JsonValue::kString; return string(out.string);
      case 't': out.kind = JsonValue::kBool; out.boolean = true;
        return literal("true");
      case 'f': out.kind = JsonValue::kBool; out.boolean = false;
        return literal("false");
      case 'n': out.kind = JsonValue::kNull; return literal("null");
      default: return number(out);
    }
  }
  bool string(std::string& out) {
    if (*p_ != '"') return false;
    ++p_;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
        switch (*p_) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: return false;  // \uXXXX never emitted by the export
        }
        ++p_;
      } else {
        out += *p_++;
      }
    }
    if (p_ == end_) return false;
    ++p_;  // closing quote
    return true;
  }
  bool number(JsonValue& out) {
    char* after = nullptr;
    out.kind = JsonValue::kNumber;
    out.number = std::strtod(p_, &after);
    if (after == p_ || after > end_) return false;
    p_ = after;
    return true;
  }
  bool array(JsonValue& out) {
    out.kind = JsonValue::kArray;
    ++p_;  // '['
    skip_ws();
    if (p_ < end_ && *p_ == ']') { ++p_; return true; }
    while (true) {
      JsonValue element;
      if (!value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == ',') { ++p_; continue; }
      if (*p_ == ']') { ++p_; return true; }
      return false;
    }
  }
  bool object(JsonValue& out) {
    out.kind = JsonValue::kObject;
    ++p_;  // '{'
    skip_ws();
    if (p_ < end_ && *p_ == '}') { ++p_; return true; }
    while (true) {
      skip_ws();
      std::string key;
      if (p_ == end_ || !string(key)) return false;
      skip_ws();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      JsonValue element;
      if (!value(element)) return false;
      out.object.emplace(std::move(key), std::move(element));
      skip_ws();
      if (p_ == end_) return false;
      if (*p_ == ',') { ++p_; continue; }
      if (*p_ == '}') { ++p_; return true; }
      return false;
    }
  }

  const char* p_;
  const char* end_;
};

// --- fixtures ---------------------------------------------------------------

struct TracedCluster {
  explicit TracedCluster(std::size_t nodes, SimDuration monitor_slo = {},
                         double run_seconds = 5.0) {
    core::ClusterConfig config;
    config.node_count = nodes;
    config.self_monitor = true;
    config.trace.enabled = true;
    if (monitor_slo > SimDuration::zero()) {
      config.trace.channel_slo.emplace_back(config.dmon.monitor_channel,
                                            monitor_slo);
    }
    cluster = std::make_unique<core::Cluster>(engine, config);
    cluster->start_dproc();
    engine.run_until(SimTime{} + seconds(run_seconds));
  }

  [[nodiscard]] std::vector<std::pair<int, const telemetry::Registry*>>
  registries() const {
    std::vector<std::pair<int, const telemetry::Registry*>> out;
    for (std::size_t i = 0; i < cluster->size(); ++i) {
      out.emplace_back(static_cast<int>(i), &cluster->host(i).telemetry());
    }
    return out;
  }

  /// Stage sets per trace id across every node's hop log.
  [[nodiscard]] std::map<std::uint64_t, std::set<HopStage>> stage_sets()
      const {
    std::map<std::uint64_t, std::set<HopStage>> out;
    for (const auto& [pid, registry] : registries()) {
      for (std::size_t i = 0; i < registry->hop_count(); ++i) {
        out[registry->hop(i).trace_id].insert(registry->hop(i).stage);
      }
    }
    return out;
  }

  sim::Engine engine;
  std::unique_ptr<core::Cluster> cluster;
};

const std::set<HopStage> kFullMonitorChain{
    HopStage::kPublish, HopStage::kSubmit, HopStage::kArrive,
    HopStage::kDeliver, HopStage::kRender};

// --- tracing disabled (the default) -----------------------------------------

TEST(Tracing, OffByDefaultRecordsNothing) {
  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 3;
  core::Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(3.0));
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_FALSE(cluster.host(i).telemetry().trace_enabled());
    EXPECT_EQ(cluster.host(i).telemetry().hop_count(), 0u);
  }
}

// --- causal-chain reconstruction --------------------------------------------

TEST(Tracing, EightNodeCausalChainReconstructs) {
  TracedCluster tc{8};

  // At least one trace id must cover the full monitoring pipeline.
  std::uint64_t full_id = 0;
  for (const auto& [id, stages] : tc.stage_sets()) {
    bool full = true;
    for (HopStage stage : kFullMonitorChain) full &= stages.contains(stage);
    if (full) { full_id = id; break; }
  }
  ASSERT_NE(full_id, 0u) << "no fully reconstructed causal chain";

  const auto chain = telemetry::collect_trace(tc.registries(), full_id);
  ASSERT_GE(chain.size(), kFullMonitorChain.size());

  // Virtual-clock timestamps along the chain never go backwards, stage
  // order is causal, durations are non-negative, and the chain actually
  // crosses nodes.
  std::int64_t prev_ts = 0;
  HopStage prev_stage = HopStage::kPublish;
  std::set<int> nodes;
  for (const auto& [hop, node] : chain) {
    EXPECT_GE(hop.ts_ns, prev_ts);
    EXPECT_GE(hop.stage, prev_stage);
    EXPECT_GE(hop.dur_ns, 0);
    prev_ts = hop.ts_ns;
    prev_stage = hop.stage;
    nodes.insert(node);
  }
  EXPECT_EQ(chain.front().first.stage, HopStage::kPublish);
  EXPECT_EQ(chain.front().first.dur_ns, 0);
  // Origin node is the high word of the id; publish happened there.
  EXPECT_EQ(chain.front().second, static_cast<int>(full_id >> 32));
  EXPECT_GE(nodes.size(), 2u);

  // In a quiet cluster every publisher's chains complete: most traced
  // events should reconstruct fully, not just one lucky sample.
  std::size_t full_chains = 0;
  for (const auto& [id, stages] : tc.stage_sets()) {
    bool full = true;
    for (HopStage stage : kFullMonitorChain) full &= stages.contains(stage);
    full_chains += full ? 1 : 0;
  }
  EXPECT_GT(full_chains, 10u);
}

TEST(Tracing, HopBreakdownCoversMonitoringPipeline) {
  TracedCluster tc{4};
  std::vector<const telemetry::Registry*> bare;
  for (const auto& [pid, registry] : tc.registries()) bare.push_back(registry);
  const auto rows = telemetry::hop_breakdown(bare);
  ASSERT_FALSE(rows.empty());

  const auto channels = tc.cluster->node(0).kecho->channels();
  std::uint32_t monitor_id = 0;
  for (const auto& [cid, name] : channels) {
    if (name == tc.cluster->config().dmon.monitor_channel) monitor_id = cid;
  }
  ASSERT_NE(monitor_id, 0u);

  std::set<HopStage> covered;
  for (const auto& row : rows) {
    if (row.channel != monitor_id) continue;
    EXPECT_GT(row.durations_us.count(), 0u);
    covered.insert(row.stage);
  }
  for (HopStage stage : kFullMonitorChain) {
    EXPECT_TRUE(covered.contains(stage))
        << "stage " << telemetry::to_string(stage) << " missing";
  }

  // The rendered table resolves channel names and prints every stage.
  const std::string table = telemetry::render_hop_breakdown(
      rows, [&channels](std::uint32_t id) -> std::string {
        for (const auto& [cid, name] : channels) {
          if (cid == id) return name;
        }
        return {};
      });
  EXPECT_NE(table.find("dproc.monitor"), std::string::npos);
  for (HopStage stage : kFullMonitorChain) {
    EXPECT_NE(table.find(telemetry::to_string(stage)), std::string::npos);
  }
}

// --- staleness SLO watchdog -------------------------------------------------

TEST(Tracing, SloWatchdogFlagsLateFeeds) {
  // Monitoring events wait up to a full poll period in the receiver's rx
  // queue, so a 1 ms end-to-end budget must be violated constantly.
  TracedCluster tc{4, milliseconds(1.0)};
  const auto& cluster = *tc.cluster;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    total += tc.cluster->dmon(i)->slo_violations();
  }
  EXPECT_GT(total, 0u);

  // Every updating peer's feed is distrusted, and the health snapshot says
  // so too.
  core::DMon& dmon = *tc.cluster->dmon(0);
  bool any_checked = false;
  dmon.for_each_peer([&](net::NodeId node, const std::string&) {
    auto health = dmon.peer_health(node);
    ASSERT_TRUE(health.has_value());
    if (!health->has_data) return;
    EXPECT_FALSE(health->slo_ok);
    EXPECT_FALSE(dmon.feed_within_slo(node));
    any_checked = true;
  });
  EXPECT_TRUE(any_checked);
}

TEST(Tracing, SloWatchdogQuietWithinBudget) {
  // A 10 s budget comfortably covers the 1 s poll period: no violations,
  // every feed trusted.
  TracedCluster tc{4, seconds(10.0)};
  for (std::size_t i = 0; i < tc.cluster->size(); ++i) {
    core::DMon& dmon = *tc.cluster->dmon(i);
    EXPECT_EQ(dmon.slo_violations(), 0u);
    dmon.for_each_peer([&](net::NodeId node, const std::string&) {
      EXPECT_TRUE(dmon.feed_within_slo(node));
    });
  }
}

TEST(Tracing, SmartPointerDistrustsSloBreachedFeed) {
  using namespace smartpointer;
  TracedCluster tc{3, milliseconds(1.0), 2.0};
  Server server{tc.cluster->host(0), tc.cluster->nic(0), tc.cluster->dmon(0),
                ServerConfig{}};
  server.start();
  ClientConfig config;
  config.mode = FilterMode::kDynamic;
  Client client{tc.cluster->host(1), tc.cluster->nic(1), 0, 9000, config};
  client.connect();
  tc.engine.run_until(tc.engine.now() + seconds(8.0));

  const Server::ClientState* state = server.client(1);
  ASSERT_NE(state, nullptr);
  EXPECT_GT(state->slo_distrusts, 0u);
  // The feed is alive (so no stale fallbacks), but steering dropped to the
  // conservative representation because its samples break the budget.
  EXPECT_EQ(state->stale_fallbacks, 0u);
  EXPECT_EQ(state->last_rep, ServerConfig{}.stale_fallback_rep);
}

TEST(Tracing, DecisionHopClosesChain) {
  using namespace smartpointer;
  TracedCluster tc{3, SimDuration::zero(), 2.0};
  Server server{tc.cluster->host(0), tc.cluster->nic(0), tc.cluster->dmon(0),
                ServerConfig{}};
  server.start();
  ClientConfig config;
  config.mode = FilterMode::kDynamic;
  Client client{tc.cluster->host(1), tc.cluster->nic(1), 0, 9000, config};
  client.connect();
  tc.engine.run_until(tc.engine.now() + seconds(8.0));

  // The server (node 0) stamped decision hops against the client's (node
  // 1's) monitoring feed.
  const telemetry::Registry& server_tm = tc.cluster->host(0).telemetry();
  std::uint64_t decided_id = 0;
  for (std::size_t i = 0; i < server_tm.hop_count(); ++i) {
    const telemetry::Hop& hop = server_tm.hop(i);
    if (hop.stage == HopStage::kDecision && hop.origin == 1) {
      decided_id = hop.trace_id;
    }
  }
  ASSERT_NE(decided_id, 0u);
  EXPECT_EQ(decided_id >> 32, 1u);  // minted by the client's d-mon

  // That trace id covers the complete six-stage pipeline somewhere in the
  // cluster: publish/submit at the client, wire/deliver/render/decision at
  // the consumers.
  const auto stages = tc.stage_sets().at(decided_id);
  EXPECT_EQ(stages.size(), telemetry::kHopStageCount);
}

// --- Chrome trace export ----------------------------------------------------

TEST(Tracing, MergedChromeTraceIsValidAndStitched) {
  TracedCluster tc{4};
  const auto registries = tc.registries();
  const std::string json = telemetry::merge_chrome_trace(registries);

  JsonValue doc;
  ASSERT_TRUE(JsonParser{json}.parse(doc)) << "export is not valid JSON";
  const JsonValue* events = doc.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::kArray);
  ASSERT_FALSE(events->array.empty());

  std::map<std::pair<int, int>, double> last_ts;             // per lane
  std::map<std::string, std::set<int>> flow_pids;            // per flow id
  std::map<std::string, std::size_t> flow_starts;
  std::map<int, std::set<std::string>> lane_names;           // per pid
  for (const JsonValue& event : events->array) {
    ASSERT_EQ(event.kind, JsonValue::kObject);
    const std::string ph = event.str("ph");
    const int pid = static_cast<int>(event.num("pid"));
    const int tid = static_cast<int>(event.num("tid"));
    ASSERT_FALSE(ph.empty());
    ASSERT_NE(event.get("name"), nullptr);
    if (ph == "M") {
      EXPECT_EQ(event.str("name"), "thread_name");
      lane_names[pid].insert(event.get("args")->str("name"));
      continue;
    }
    // Span and flow events appear in virtual-clock order within each lane.
    const double ts = event.num("ts");
    const auto lane = std::pair{pid, tid};
    if (auto it = last_ts.find(lane); it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "lane pid=" << pid << " tid=" << tid;
    }
    last_ts[lane] = ts;
    if (ph == "s" || ph == "t" || ph == "f") {
      const std::string id = event.str("id");
      ASSERT_EQ(id.rfind("0x", 0), 0u) << "flow id not hex: " << id;
      EXPECT_EQ(event.str("cat"), "trace");
      flow_pids[id].insert(pid);
      if (ph == "s") ++flow_starts[id];
      if (ph == "f") {
        EXPECT_EQ(event.str("bp"), "e");
      }
    } else {
      EXPECT_EQ(ph, "X");  // only complete spans besides flows + metadata
    }
  }

  // Each node lane names its subsystem threads, including the flow lane.
  ASSERT_EQ(lane_names.size(), tc.cluster->size());
  for (const auto& [pid, names] : lane_names) {
    EXPECT_TRUE(names.contains("trace")) << "pid " << pid;
    EXPECT_TRUE(names.contains("kecho") || names.contains("dmon"))
        << "pid " << pid;
  }

  // Flows: every id starts exactly once (one publish hop mints it), and
  // cross-node stitching happened — some flows span several pid lanes.
  ASSERT_FALSE(flow_pids.empty());
  for (const auto& [id, starts] : flow_starts) EXPECT_EQ(starts, 1u);
  std::size_t cross_node = 0;
  for (const auto& [id, pids] : flow_pids) {
    cross_node += pids.size() > 1 ? 1 : 0;
  }
  EXPECT_GT(cross_node, 0u);
}

}  // namespace
}  // namespace dproc
