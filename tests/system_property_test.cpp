// System-level property tests: invariants that must hold for any workload,
// checked on randomized inputs.
#include <gtest/gtest.h>

#include "dproc/core/cluster.hpp"
#include "dproc/net/tcp.hpp"
#include "dproc/procfs/procfs.hpp"
#include "dproc/util/rng.hpp"

namespace dproc {
namespace {

// --- TCP: reliable, in-order, exactly-once under any loss pattern ---------

class TcpLossProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcpLossProperty, DeliveryExactlyOnceInOrder) {
  // Buffer size parameterizes the loss regime: from heavy loss (tiny
  // buffers, go-back-N churn) to none (roomy buffers).
  const std::uint64_t buffer = GetParam();
  sim::Engine engine;
  net::Fabric fabric{engine};
  const net::NodeId a = fabric.add_node("a");
  const net::NodeId b = fabric.add_node("b");
  net::LinkConfig link;
  link.buffer_bytes = buffer;
  fabric.build_star({a, b}, link);
  net::Nic nic_a{fabric, a}, nic_b{fabric, b};

  Rng rng{buffer};
  std::vector<std::uint64_t> sent_sizes;
  std::vector<std::uint64_t> got_sizes;

  net::TcpListener listener{nic_b, 80, net::TcpConfig{},
                            [&](net::TcpConnection::Ptr conn) {
                              conn->set_message_handler(
                                  [&](const net::MessagePtr& m) {
                                    got_sizes.push_back(m->size());
                                  });
                            }};
  auto client = net::TcpConnection::connect(nic_a, b, 80);

  // Random message mix: tiny control messages to multi-segment bulk.
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t size =
        rng.bernoulli(0.3)
            ? static_cast<std::uint64_t>(rng.uniform_int(1, 100))
            : static_cast<std::uint64_t>(rng.uniform_int(1'000, 200'000));
    sent_sizes.push_back(size);
    engine.schedule_after(milliseconds(rng.uniform(0.0, 500.0)),
                          [&client, size] {
                            client->send(net::make_message({}, size));
                          });
  }
  engine.run_until(SimTime{} + seconds(120.0));

  // Exactly once, in order, sizes intact — note sends were scheduled at
  // random times, so compare as multisets in arrival order of submission.
  ASSERT_EQ(got_sizes.size(), sent_sizes.size());
  std::sort(sent_sizes.begin(), sent_sizes.end());
  std::vector<std::uint64_t> got_sorted = got_sizes;
  std::sort(got_sorted.begin(), got_sorted.end());
  EXPECT_EQ(got_sorted, sent_sizes);
  EXPECT_EQ(client->stats().messages_sent, 40u);
  EXPECT_EQ(client->stats().send_queue_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(BufferSizes, TcpLossProperty,
                         ::testing::Values(6'000, 12'000, 32'000, 256'000),
                         [](const auto& info) {
                           return "buffer" + std::to_string(info.param);
                         });

// --- CPU: conservation under random schedules ------------------------------

TEST(CpuProperty, TimeConservedUnderRandomOperations) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::Engine engine;
    host::Cpu cpu{engine, host::CpuConfig{}};
    Rng rng{seed};

    std::vector<host::TaskId> sinks;
    std::vector<host::TaskId> servers;
    double kernel_injected = 0.0;

    for (int step = 0; step < 60; ++step) {
      engine.run_until(engine.now() + seconds(rng.uniform(0.05, 0.5)));
      switch (rng.uniform_int(0, 4)) {
        case 0:
          sinks.push_back(cpu.add_compute_task("sink"));
          break;
        case 1:
          if (!sinks.empty()) {
            cpu.remove_task(sinks.back());
            sinks.pop_back();
          }
          break;
        case 2:
          servers.push_back(cpu.add_server_task("srv"));
          cpu.submit_work(servers.back(), rng.uniform(0.01, 0.3), {});
          break;
        case 3:
          if (!servers.empty()) {
            cpu.submit_work(
                servers[static_cast<std::size_t>(
                    rng.uniform_int(0, static_cast<std::int64_t>(servers.size()) - 1))],
                rng.uniform(0.01, 0.2), {});
          }
          break;
        case 4: {
          const double k = rng.uniform(0.001, 0.05);
          kernel_injected += k;
          cpu.consume_kernel(seconds(k));
          break;
        }
      }
      if (!sinks.empty() && rng.bernoulli(0.3)) {
        cpu.set_task_weight(sinks[0], rng.uniform(0.1, 8.0));
      }
    }
    engine.run_until(engine.now() + seconds(2.0));

    // Conservation: total user CPU handed out <= elapsed - kernel consumed,
    // and utilization is a valid fraction.
    double user_total = 0.0;
    for (host::TaskId id : sinks) user_total += cpu.task_cpu_time(id).sec();
    for (host::TaskId id : servers) user_total += cpu.task_cpu_time(id).sec();
    const double elapsed = (engine.now() - SimTime::zero()).sec();
    EXPECT_LE(user_total + cpu.kernel_cpu_time().sec(), elapsed + 1e-6)
        << "seed " << seed;
    // consume_kernel truncates to whole nanoseconds per call.
    EXPECT_NEAR(cpu.kernel_cpu_time().sec(), kernel_injected, 60e-9);
    EXPECT_GE(cpu.utilization(), 0.0);
    EXPECT_LE(cpu.utilization(), 1.0);
  }
}

TEST(CpuProperty, WeightsSplitProportionally) {
  sim::Engine engine;
  host::Cpu cpu{engine, host::CpuConfig{}};
  const host::TaskId heavy = cpu.add_compute_task("heavy");
  const host::TaskId light = cpu.add_compute_task("light");
  cpu.set_task_weight(heavy, 3.0);
  engine.run_until(SimTime{} + seconds(8.0));
  EXPECT_NEAR(cpu.task_cpu_time(heavy).sec(), 6.0, 1e-9);
  EXPECT_NEAR(cpu.task_cpu_time(light).sec(), 2.0, 1e-9);
}

// --- procfs: random operation sequences keep the tree consistent -----------

TEST(ProcfsProperty, RandomOperationsNeverCorrupt) {
  Rng rng{0x9999};
  procfs::ProcFs fs;
  std::vector<std::string> registered;

  auto random_path = [&](bool existing) -> std::string {
    if (existing && !registered.empty()) {
      return registered[static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(registered.size()) - 1))];
    }
    std::string path = "/proc";
    const int depth = static_cast<int>(rng.uniform_int(1, 4));
    for (int d = 0; d < depth; ++d) {
      path += "/n" + std::to_string(rng.uniform_int(0, 5));
    }
    return path;
  };

  for (int op = 0; op < 2000; ++op) {
    switch (rng.uniform_int(0, 3)) {
      case 0: {
        const std::string path = random_path(false);
        if (fs.register_file(path, [] { return "v"; }).is_ok()) {
          registered.push_back(path);
        }
        break;
      }
      case 1: {
        const std::string path = random_path(true);
        auto content = fs.read(path);
        if (content.is_ok()) EXPECT_EQ(content.value(), "v");
        break;
      }
      case 2:
        (void)fs.remove(random_path(rng.bernoulli(0.5)));
        // Conservative: drop tracking of everything under that prefix.
        registered.clear();
        break;
      case 3:
        (void)fs.list("/proc");
        break;
    }
  }
  // The tree still renders and the root is intact.
  EXPECT_TRUE(fs.is_directory("/proc") || !fs.exists("/proc"));
  (void)fs.tree();
}

// --- cluster trunk topology --------------------------------------------------

TEST(TrunkTopology, CrossSwitchFloodLeavesDisjointPathsAlone) {
  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 4;
  config.trunk_split = 2;
  config.dproc_nodes.emplace();
  core::Cluster cluster{engine, config};

  // Flood 0->2 saturates 0's uplink, the trunk, and 2's downlink. The probe
  // 1->0 uses 1's uplink and 0's downlink: fully disjoint, must be clean;
  // a second probe 1->3 shares the trunk with the flood and must suffer.
  std::uint64_t probe_disjoint = 0;
  cluster.nic(0).bind_datagram(9, [&](net::NodeId, net::Port,
                                      const net::MessagePtr& m) {
    probe_disjoint += m->size();
  });
  std::uint64_t probe_shared = 0;
  cluster.nic(3).bind_datagram(9, [&](net::NodeId, net::Port,
                                      const net::MessagePtr& m) {
    probe_shared += m->size();
  });

  for (int i = 0; i < 20'000; ++i) {
    engine.schedule_at(SimTime{i * 50'000}, [&] {  // ~230 Mbps offered
      cluster.nic(0).send_datagram(2, 7, net::make_message({}, 1400));
    });
  }
  for (int i = 0; i < 2000; ++i) {
    engine.schedule_at(SimTime{i * 500'000}, [&] {  // ~23 Mbps each
      cluster.nic(1).send_datagram(0, 9, net::make_message({}, 1400));
      cluster.nic(1).send_datagram(3, 9, net::make_message({}, 1400));
    });
  }
  engine.run_until(SimTime{} + seconds(1.2));
  EXPECT_GT(probe_disjoint, 2000u * 1400u * 95 / 100);
  EXPECT_LT(probe_shared, probe_disjoint);
}

TEST(TrunkTopology, DprocWorksAcrossSwitches) {
  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 4;
  config.trunk_split = 2;
  core::Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(4.0));
  // Node 0 (switch A) sees node 3 (switch B) and vice versa.
  EXPECT_NE(cluster.dmon(0)->remote_metric(3, "freemem"), nullptr);
  EXPECT_NE(cluster.dmon(3)->remote_metric(0, "freemem"), nullptr);
}

// --- determinism across the full stack -----------------------------------

TEST(Determinism, EightNodeClusterWithLoadIsBitStable) {
  auto fingerprint = [] {
    sim::Engine engine;
    core::ClusterConfig config;
    config.node_count = 8;
    core::Cluster cluster{engine, config};
    cluster.start_dproc();
    engine.run_until(SimTime{} + seconds(15.0));
    std::uint64_t hash = 1469598103934665603ULL;
    auto mix = [&hash](std::uint64_t v) {
      hash ^= v;
      hash *= 1099511628211ULL;
    };
    mix(engine.events_processed());
    for (std::size_t i = 0; i < 8; ++i) {
      mix(cluster.nic(i).stats().bytes_sent);
      mix(cluster.nic(i).stats().bytes_received);
      mix(static_cast<std::uint64_t>(
          cluster.host(i).cpu().kernel_cpu_time().ns()));
    }
    return hash;
  };
  EXPECT_EQ(fingerprint(), fingerprint());
}

}  // namespace
}  // namespace dproc
