// Batched per-period publishing, delta suppression and interest-scoped
// fan-out — plus the d-mon submit-loop bugfixes that ride along:
//  * a module returning the wrong sample count must not publish
//    default-constructed zeros cluster-wide;
//  * a publish-ready sample whose id fits no registered module range must
//    not be grouped into a neighbouring module's frame;
//  * batching must cut the 8-node steady-state event count by at least the
//    module count (5×) and measurably reduce fabric bytes;
//  * a restarted subscriber must reconverge through delta-suppression
//    keyframes;
//  * interest filtering must strictly reduce fabric bytes.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dproc/core/cluster.hpp"
#include "dproc/sim/fault.hpp"

namespace dproc::core {
namespace {

SimTime at(double sec) { return SimTime::zero() + seconds(sec); }

// ---------------------------------------------------------------------------
// group_by_range: the grouping primitive behind both submit paths.

MetricSample ms(MetricId id, double value) {
  return MetricSample{id, value, SimTime::zero()};
}

TEST(GroupByRange, PartitionsWellFormedInputPerModule) {
  const std::vector<MetricRange> ranges{{0, 2}, {2, 3}, {5, 1}};
  const std::vector<MetricSample> sorted{ms(0, 1), ms(1, 2), ms(2, 3),
                                         ms(4, 5), ms(5, 6)};
  std::vector<std::vector<MetricSample>> groups;
  EXPECT_EQ(group_by_range(sorted, ranges, groups), 0u);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].size(), 2u);
  EXPECT_EQ(groups[1].size(), 2u);  // id 3 filtered out upstream, fine
  EXPECT_EQ(groups[2].size(), 1u);
  EXPECT_EQ(groups[1][1].id, 4u);
}

TEST(GroupByRange, StrayBelowFirstRangeIsNotGroupedIntoIt) {
  // Ranges that do not start at 0 (e.g. after a module was dropped): an id
  // below every range used to ride along in the first group.
  const std::vector<MetricRange> ranges{{5, 2}, {7, 2}};
  const std::vector<MetricSample> sorted{ms(1, 1), ms(5, 2), ms(8, 3)};
  std::vector<std::vector<MetricSample>> groups;
  EXPECT_EQ(group_by_range(sorted, ranges, groups), 1u);
  ASSERT_EQ(groups.size(), 2u);
  ASSERT_EQ(groups[0].size(), 1u);
  EXPECT_EQ(groups[0][0].id, 5u);
  ASSERT_EQ(groups[1].size(), 1u);
  EXPECT_EQ(groups[1][0].id, 8u);
}

TEST(GroupByRange, StraysInGapsAndBeyondLastRangeAreCounted) {
  const std::vector<MetricRange> ranges{{0, 2}, {10, 2}};
  const std::vector<MetricSample> sorted{ms(0, 1), ms(4, 2), ms(7, 3),
                                         ms(10, 4), ms(50, 5)};
  std::vector<std::vector<MetricSample>> groups;
  EXPECT_EQ(group_by_range(sorted, ranges, groups), 3u);
  EXPECT_EQ(groups[0].size(), 1u);
  EXPECT_EQ(groups[1].size(), 1u);
}

TEST(GroupByRange, EmptyInputsAreFine) {
  std::vector<std::vector<MetricSample>> groups;
  EXPECT_EQ(group_by_range({}, {{0, 3}}, groups), 0u);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_TRUE(groups[0].empty());
  EXPECT_EQ(group_by_range({ms(0, 1)}, {}, groups), 1u);
  EXPECT_TRUE(groups.empty());
}

// ---------------------------------------------------------------------------
// Collect-loop bugfix: wrong sample counts drop the module's samples for
// the period instead of publishing zeros under valid ids.

/// Emits 3 metrics; under-reports (1 sample) while `broken` is set.
class FlakyMonitor : public MonitoringModule {
 public:
  FlakyMonitor(std::shared_ptr<bool> broken, std::shared_ptr<double> base)
      : broken_(std::move(broken)), base_(std::move(base)) {}

  [[nodiscard]] std::string name() const override { return "flaky"; }
  [[nodiscard]] std::vector<MetricDesc> metrics() const override {
    return {{0, "flaky_a", "flaky/a"},
            {0, "flaky_b", "flaky/b"},
            {0, "flaky_c", "flaky/c"}};
  }
  void collect(std::vector<MetricSample>& out, SimTime now) override {
    if (*broken_) {
      out.push_back(sample(0, -1.0, now));  // wrong count: 1 of 3
      return;
    }
    for (int i = 0; i < 3; ++i) {
      out.push_back(sample(0, *base_ + i, now));
    }
  }

 private:
  std::shared_ptr<bool> broken_;
  std::shared_ptr<double> base_;
};

TEST(CollectBugfix, WrongSampleCountDropsModuleInsteadOfPublishingZeros) {
  sim::Engine engine;
  ClusterConfig config;
  config.node_count = 2;
  auto broken = std::make_shared<bool>(false);
  auto base = std::make_shared<double>(42.0);
  config.module_factory = [broken, base](DMon& dmon, host::Host&, net::Nic&) {
    dmon.register_module(std::make_unique<FlakyMonitor>(broken, base));
  };
  Cluster cluster{engine, config};
  cluster.start_dproc();

  engine.run_until(at(3.5));
  const net::NodeId n0 = cluster.nic(0).node();
  const RemoteMetric* b = cluster.dmon(1)->remote_metric(n0, "flaky_b");
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(b->value, 43.0);
  EXPECT_EQ(cluster.dmon(0)->collect_errors(), 0u);

  // Break every publisher. The old code would resize() the short collection
  // and publish value-0 samples under valid ids; now the period's samples
  // from that module are dropped and an error counter moves.
  *broken = true;
  engine.run_until(at(8.5));
  EXPECT_GT(cluster.dmon(0)->collect_errors(), 0u);
  b = cluster.dmon(1)->remote_metric(n0, "flaky_b");
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(b->value, 43.0) << "a zero-valued sample leaked out";
  // The local view keeps the last good collection too (id-dense backfill).
  const MetricSample* local = cluster.dmon(0)->local_metric(1);
  ASSERT_NE(local, nullptr);
  EXPECT_DOUBLE_EQ(local->value, 43.0);

  // Module recovers with new values: publication resumes.
  *broken = false;
  *base = 100.0;
  engine.run_until(at(11.5));
  b = cluster.dmon(1)->remote_metric(n0, "flaky_b");
  ASSERT_NE(b, nullptr);
  EXPECT_DOUBLE_EQ(b->value, 101.0);
}

// ---------------------------------------------------------------------------
// End-to-end batching behaviour on real clusters.

struct RunTotals {
  std::uint64_t events = 0;       // KECho events submitted, all nodes
  std::uint64_t wire_bytes = 0;   // fabric bytes delivered, all nodes
};

RunTotals run_steady_state(std::size_t nodes, const BatchConfig& batch,
                           const std::vector<std::string>& interest,
                           double sim_seconds) {
  sim::Engine engine;
  ClusterConfig config;
  config.node_count = nodes;
  config.batch = batch;
  Cluster cluster{engine, config};
  cluster.start_dproc();
  if (!interest.empty()) {
    // Let the channels come up, then every node narrows its subscription.
    engine.run_until(at(2.0));
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      (void)cluster.dmon(i)->declare_interest(interest);
    }
  }
  engine.run_until(at(sim_seconds));
  RunTotals totals;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    totals.events += cluster.node(i)
                         .kecho->join(cluster.config().dmon.monitor_channel)
                         .events_submitted();
    totals.wire_bytes += cluster.fabric().bytes_delivered_to(
        cluster.nic(i).node());
  }
  return totals;
}

TEST(BatchPublish, EightNodeSteadyStateCutsEventsFiveFoldAndBytes) {
  const RunTotals baseline = run_steady_state(8, BatchConfig{}, {}, 30.0);

  BatchConfig batch;
  batch.enabled = true;
  batch.delta_epsilon = 0.0;  // suppress exactly-unchanged values
  batch.keyframe_every = 10;
  batch.interest = true;
  const RunTotals batched = run_steady_state(8, batch, {"cpu", "mem"}, 30.0);

  ASSERT_GT(baseline.events, 0u);
  ASSERT_GT(batched.events, 0u) << "keyframes must keep the feed alive";
  // 5 standard modules coalesce into (at most) one frame per period.
  EXPECT_GE(baseline.events, 5 * batched.events)
      << "baseline " << baseline.events << " vs batched " << batched.events;
  EXPECT_LT(batched.wire_bytes, baseline.wire_bytes);
}

TEST(BatchPublish, InterestFilteringStrictlyReducesFabricBytes) {
  BatchConfig batch;
  batch.enabled = true;
  batch.interest = true;
  const RunTotals full = run_steady_state(8, batch, {}, 25.0);
  const RunTotals narrowed = run_steady_state(8, batch, {"cpu"}, 25.0);
  EXPECT_LT(narrowed.wire_bytes, full.wire_bytes);
  EXPECT_EQ(full.events, narrowed.events)
      << "interest narrows payloads, not the event count";
}

TEST(BatchPublish, InterestSavingsAreAccountedByThePublisher) {
  sim::Engine engine;
  ClusterConfig config;
  config.node_count = 3;
  config.batch.enabled = true;
  config.batch.interest = true;
  Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(at(2.0));
  ASSERT_TRUE(cluster.dmon(1)->declare_interest({"cpu"}).is_ok());
  ASSERT_TRUE(cluster.dmon(2)->declare_interest({"cpu"}).is_ok());
  engine.run_until(at(8.0));
  // Node 0 publishes full batches but sends nodes 1 and 2 only CPU_MON's
  // slice; the byte delta is accounted on the publisher.
  EXPECT_GT(cluster.dmon(0)->interest_bytes_saved(), 0u);
  // The narrowed subscribers keep receiving node 0's cpu metrics...
  const net::NodeId n0 = cluster.nic(0).node();
  const RemoteMetric* loadavg = cluster.dmon(1)->remote_metric(n0, "loadavg");
  ASSERT_NE(loadavg, nullptr);
  EXPECT_GT(loadavg->received_at, at(6.0));
  // ...while its other modules stopped updating once the narrowing took
  // effect (values cached from the pre-declaration full batches may
  // remain, but nothing fresh arrives).
  const RemoteMetric* freemem = cluster.dmon(1)->remote_metric(n0, "freemem");
  if (freemem != nullptr) EXPECT_LT(freemem->received_at, at(4.0));
  // Node 0 never declared: it still receives everything from node 1.
  const net::NodeId n1 = cluster.nic(1).node();
  EXPECT_NE(cluster.dmon(0)->remote_metric(n1, "freemem"), nullptr);
}

TEST(BatchPublish, InterestDeclarationIsWritableThroughProcfs) {
  sim::Engine engine;
  ClusterConfig config;
  config.node_count = 2;
  config.batch.enabled = true;
  config.batch.interest = true;
  Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(at(2.0));
  ASSERT_TRUE(cluster.procfs(1).write("/proc/dproc/interest", "cpu net").is_ok());
  engine.run_until(at(4.0));
  auto rendered = cluster.procfs(1).read("/proc/dproc/interest");
  ASSERT_TRUE(rendered.is_ok());
  EXPECT_NE(rendered.value().find("local cpu net"), std::string::npos);
  // The publisher side learned it over the control channel.
  auto publisher_view = cluster.procfs(0).read("/proc/dproc/interest");
  ASSERT_TRUE(publisher_view.is_ok());
  EXPECT_NE(publisher_view.value().find("cpu net"), std::string::npos);
  // "all" clears the narrowing again.
  ASSERT_TRUE(cluster.procfs(1).write("/proc/dproc/interest", "all").is_ok());
  engine.run_until(at(6.0));
  EXPECT_TRUE(cluster.dmon(0)->peer_interests().empty());
}

TEST(BatchPublish, RestartedSubscriberReconvergesThroughKeyframes) {
  // Same fault shape as the chaos smoke test (outage → eviction → restart
  // → rejoin), with delta suppression so aggressive that regular batches
  // carry nothing: the restarted subscriber can only reconverge through a
  // keyframe.
  auto converged_after_restart = [](int keyframe_every, double check_at) {
    sim::Engine engine;
    ClusterConfig config;
    config.node_count = 3;
    config.liveness.enabled = true;
    config.liveness.heartbeat_period = seconds(1.0);
    config.liveness.miss_threshold = 5;
    config.batch.enabled = true;
    config.batch.delta_epsilon = 1e30;  // nothing ever exceeds it
    config.batch.keyframe_every = keyframe_every;
    Cluster cluster{engine, config};
    cluster.start_dproc();
    sim::FaultPlan plan;
    plan.node_outage(at(4.0), at(11.0), 2);
    cluster.inject(plan);

    engine.run_until(at(3.5));
    const net::NodeId n0 = cluster.nic(0).node();
    EXPECT_NE(cluster.dmon(2)->remote_metric(n0, "freemem"), nullptr);
    EXPECT_GT(cluster.dmon(0)->delta_suppressed_total(), 0u)
        << "suppression must actually be active for this test to mean "
           "anything";

    // Node 2 crashes at t=4, is evicted (miss threshold 5), restarts at
    // t=11 with empty caches and rejoins. Wait out the refresh window.
    engine.run_until(at(check_at));
    const RemoteMetric* metric = cluster.dmon(2)->remote_metric(n0, "freemem");
    if (metric == nullptr) return false;
    // Fresh data, not a leftover: it arrived after the restart.
    return metric->received_at > at(11.0);
  };

  // Rejoin (a couple of seconds) + keyframe_every periods suffice to hear
  // a full refresh.
  EXPECT_TRUE(converged_after_restart(4, 11.0 + 4.0 + 5.0));
  // Contrast over the same window: with keyframes effectively disabled the
  // subscriber stays blind, which proves the keyframe is the convergence
  // mechanism (delta suppression never lets a regular frame out).
  EXPECT_FALSE(converged_after_restart(1'000'000, 11.0 + 4.0 + 5.0));
}

TEST(BatchPublish, PeriodChangeForcesKeyframe) {
  // A runtime period change invalidates delta-suppressed subscribers'
  // decode baselines (their next expected update may now be a slow period
  // away). Suppression is total and the keyframe schedule effectively
  // disabled, so the only way fresh data can arrive after the retune is
  // the forced keyframe.
  sim::Engine engine;
  ClusterConfig config;
  config.node_count = 2;
  config.batch.enabled = true;
  config.batch.delta_epsilon = 1e30;       // regular frames carry nothing
  config.batch.keyframe_every = 1'000'000;  // no scheduled keyframe either
  Cluster cluster{engine, config};
  cluster.start_dproc();

  engine.run_until(at(4.0));
  const net::NodeId n0 = cluster.nic(0).node();
  const RemoteMetric* metric = cluster.dmon(1)->remote_metric(n0, "freemem");
  ASSERT_NE(metric, nullptr);  // the phase-0 keyframe seeded the caches
  const SimTime before_change = metric->received_at;
  EXPECT_LT(before_change, at(2.5));

  // A retune that does not touch periods must not force anything. (The
  // threshold gates loadavg only; freemem keeps flowing into the batch,
  // where the huge epsilon suppresses it.)
  TuningConfig no_period;
  no_period.thresholds.push_back(
      Threshold{"loadavg", ThresholdKind::kAbove, 1e9, 0.0});
  ASSERT_TRUE(cluster.dmon(0)->apply_tuning(no_period).is_ok());
  engine.run_until(at(7.0));
  metric = cluster.dmon(1)->remote_metric(n0, "freemem");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->received_at.ns(), before_change.ns());

  // A period change must emit a keyframe on the next batch, mid-schedule.
  TuningConfig retune;
  retune.default_period = seconds(1.0);
  ASSERT_TRUE(cluster.dmon(0)->apply_tuning(retune).is_ok());
  engine.run_until(at(10.0));
  metric = cluster.dmon(1)->remote_metric(n0, "freemem");
  ASSERT_NE(metric, nullptr);
  EXPECT_GT(metric->received_at, at(7.0))
      << "no keyframe followed the period change";
}

TEST(BatchPublish, DisabledConfigKeepsLegacyBehaviour) {
  // BatchConfig is fully off by default: the byte-identity of the default
  // wire format is pinned by the golden-trace test; here we pin the
  // defaults themselves and the per-module event count.
  const BatchConfig defaults;
  EXPECT_FALSE(defaults.enabled);
  EXPECT_LT(defaults.delta_epsilon, 0.0);
  EXPECT_FALSE(defaults.interest);

  sim::Engine engine;
  ClusterConfig config;
  config.node_count = 2;
  Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(at(5.5));
  // 5 standard modules → 5 events per steady-state period.
  EXPECT_EQ(cluster.dmon(0)->last_poll().events_submitted, 5u);
  EXPECT_EQ(cluster.dmon(0)->delta_suppressed_total(), 0u);
  EXPECT_EQ(cluster.dmon(0)->interest_bytes_saved(), 0u);
}

}  // namespace
}  // namespace dproc::core
