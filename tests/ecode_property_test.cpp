// Property tests: the E-code VM must agree with C++ evaluation on randomly
// generated programs, and filters must respect structural invariants.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "dproc/ecode/ecode.hpp"
#include "dproc/util/rng.hpp"

namespace dproc::ecode {
namespace {

double run_ret(const std::string& source) {
  auto filter = Filter::compile(source);
  EXPECT_TRUE(filter.is_ok()) << filter.status().to_string() << "\n" << source;
  if (!filter.is_ok()) return 0;
  auto result = filter.value().run({});
  EXPECT_TRUE(result.is_ok()) << result.status().to_string() << "\n" << source;
  if (!result.is_ok()) return 0;
  EXPECT_TRUE(result.value().return_value.has_value()) << source;
  return result.value().return_value.value_or(0);
}

// --- single binary operations against native C++ ------------------------

struct IntOpCase {
  const char* op;
  std::int64_t (*eval)(std::int64_t, std::int64_t);
  bool (*valid)(std::int64_t, std::int64_t);
};

std::int64_t shift_mask(std::int64_t b) { return b & 63; }

const IntOpCase kIntOps[] = {
    {"+", [](std::int64_t a, std::int64_t b) { return a + b; }, nullptr},
    {"-", [](std::int64_t a, std::int64_t b) { return a - b; }, nullptr},
    {"*", [](std::int64_t a, std::int64_t b) { return a * b; }, nullptr},
    {"/", [](std::int64_t a, std::int64_t b) { return a / b; },
     [](std::int64_t, std::int64_t b) { return b != 0; }},
    {"%", [](std::int64_t a, std::int64_t b) { return a % b; },
     [](std::int64_t, std::int64_t b) { return b != 0; }},
    {"&", [](std::int64_t a, std::int64_t b) { return a & b; }, nullptr},
    {"|", [](std::int64_t a, std::int64_t b) { return a | b; }, nullptr},
    {"^", [](std::int64_t a, std::int64_t b) { return a ^ b; }, nullptr},
    {"<", [](std::int64_t a, std::int64_t b) -> std::int64_t { return a < b; },
     nullptr},
    {"<=", [](std::int64_t a, std::int64_t b) -> std::int64_t { return a <= b; },
     nullptr},
    {">", [](std::int64_t a, std::int64_t b) -> std::int64_t { return a > b; },
     nullptr},
    {">=", [](std::int64_t a, std::int64_t b) -> std::int64_t { return a >= b; },
     nullptr},
    {"==", [](std::int64_t a, std::int64_t b) -> std::int64_t { return a == b; },
     nullptr},
    {"!=", [](std::int64_t a, std::int64_t b) -> std::int64_t { return a != b; },
     nullptr},
    {"<<",
     [](std::int64_t a, std::int64_t b) {
       return static_cast<std::int64_t>(static_cast<std::uint64_t>(a)
                                        << shift_mask(b));
     },
     nullptr},
    {">>", [](std::int64_t a, std::int64_t b) { return a >> shift_mask(b); },
     nullptr},
};

class IntOpProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IntOpProperty, MatchesNativeOnRandomOperands) {
  const IntOpCase& op_case = kIntOps[GetParam()];
  Rng rng{0xBEEF + GetParam()};
  for (int trial = 0; trial < 200; ++trial) {
    std::int64_t a = rng.uniform_int(-1000, 1000);
    std::int64_t b = rng.uniform_int(-1000, 1000);
    if (std::string_view{op_case.op} == "<<" ||
        std::string_view{op_case.op} == ">>") {
      b = rng.uniform_int(0, 63);
    }
    if (op_case.valid != nullptr && !op_case.valid(a, b)) continue;
    std::ostringstream source;
    source << "int a = " << a << "; int b = " << b << "; return a "
           << op_case.op << " b;";
    const double expected = static_cast<double>(op_case.eval(a, b));
    EXPECT_DOUBLE_EQ(run_ret(source.str()), expected) << source.str();
  }
}

std::string int_op_name(const ::testing::TestParamInfo<std::size_t>& info) {
  static const char* const names[] = {"add", "sub", "mul", "div",  "mod",
                                      "band", "bor", "bxor", "lt", "le",
                                      "gt",   "ge",  "eq",   "ne", "shl",
                                      "shr"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllIntOps, IntOpProperty,
                         ::testing::Range<std::size_t>(0, std::size(kIntOps)),
                         int_op_name);

// --- double operations ----------------------------------------------------

struct FloatOpCase {
  const char* op;
  double (*eval)(double, double);
};

const FloatOpCase kFloatOps[] = {
    {"+", [](double a, double b) { return a + b; }},
    {"-", [](double a, double b) { return a - b; }},
    {"*", [](double a, double b) { return a * b; }},
    {"/", [](double a, double b) { return a / b; }},
};

class FloatOpProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FloatOpProperty, MatchesNativeOnRandomOperands) {
  const FloatOpCase& op_case = kFloatOps[GetParam()];
  Rng rng{0xF00D + GetParam()};
  for (int trial = 0; trial < 200; ++trial) {
    const double a = rng.uniform(-100.0, 100.0);
    double b = rng.uniform(-100.0, 100.0);
    if (std::string_view{op_case.op} == "/" && b == 0.0) b = 1.0;
    std::ostringstream source;
    source.precision(17);
    source << "double a = " << a << "; double b = " << b << "; return a "
           << op_case.op << " b;";
    EXPECT_DOUBLE_EQ(run_ret(source.str()), op_case.eval(a, b)) << source.str();
  }
}

std::string float_op_name(const ::testing::TestParamInfo<std::size_t>& info) {
  static const char* const names[] = {"add", "sub", "mul", "div"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllFloatOps, FloatOpProperty,
                         ::testing::Range<std::size_t>(0, std::size(kFloatOps)),
                         float_op_name);

// --- random straight-line programs (differential interpretation) ----------

TEST(ProgramProperty, RandomStraightLineProgramsMatchReference) {
  Rng rng{0xCAFE};
  constexpr int kVars = 4;
  for (int trial = 0; trial < 100; ++trial) {
    std::int64_t vars[kVars] = {0, 0, 0, 0};
    std::ostringstream source;
    for (int v = 0; v < kVars; ++v) {
      const std::int64_t init = rng.uniform_int(-50, 50);
      vars[v] = init;
      source << "int v" << v << " = " << init << ";\n";
    }
    for (int stmt = 0; stmt < 30; ++stmt) {
      const int dst = static_cast<int>(rng.uniform_int(0, kVars - 1));
      const int lhs = static_cast<int>(rng.uniform_int(0, kVars - 1));
      const int rhs = static_cast<int>(rng.uniform_int(0, kVars - 1));
      switch (rng.uniform_int(0, 3)) {
        case 0:
          source << "v" << dst << " = v" << lhs << " + v" << rhs << ";\n";
          vars[dst] = vars[lhs] + vars[rhs];
          break;
        case 1:
          source << "v" << dst << " = v" << lhs << " - v" << rhs << ";\n";
          vars[dst] = vars[lhs] - vars[rhs];
          break;
        case 2: {
          // Keep magnitudes bounded so multiplication cannot overflow.
          source << "v" << dst << " = v" << lhs << " % 97 * (v" << rhs
                 << " % 13);\n";
          vars[dst] = vars[lhs] % 97 * (vars[rhs] % 13);
          break;
        }
        case 3:
          source << "v" << dst << " = v" << lhs << " < v" << rhs << " ? v"
                 << lhs << " : v" << rhs << ";\n";
          vars[dst] = vars[lhs] < vars[rhs] ? vars[lhs] : vars[rhs];
          break;
      }
    }
    source << "return v0 + 1000 * v1 + 1000000 * v2 + v3;\n";
    const double expected = static_cast<double>(
        vars[0] + 1000 * vars[1] + 1000000 * vars[2] + vars[3]);
    ASSERT_DOUBLE_EQ(run_ret(source.str()), expected)
        << "trial " << trial << "\n" << source.str();
  }
}

// --- loop equivalence -------------------------------------------------------

TEST(ProgramProperty, CountedLoopsMatchClosedForm) {
  Rng rng{0xD1CE};
  for (int trial = 0; trial < 50; ++trial) {
    const std::int64_t n = rng.uniform_int(0, 200);
    std::ostringstream source;
    source << "int sum = 0; for (int i = 0; i < " << n
           << "; ++i) sum += i; return sum;";
    EXPECT_DOUBLE_EQ(run_ret(source.str()),
                     static_cast<double>(n * (n - 1) / 2));
  }
}

// --- filter invariants -------------------------------------------------------

TEST(FilterProperty, OutputsAreSubsetCopiesUnderIdentityFilter) {
  // A pass-through filter must reproduce every input sample exactly.
  Rng rng{0xAB};
  for (int trial = 0; trial < 50; ++trial) {
    const int n = static_cast<int>(rng.uniform_int(1, 16));
    std::vector<Sample> input;
    for (int i = 0; i < n; ++i) {
      input.push_back(Sample{i, rng.uniform(-1e6, 1e6), rng.uniform(0, 10),
                             rng.uniform_int(0, 1'000'000)});
    }
    std::ostringstream source;
    source << "for (int i = 0; i < " << n << "; ++i) output[i] = input[i];";
    auto filter = Filter::compile(source.str());
    ASSERT_TRUE(filter.is_ok());
    auto result = filter.value().run(input);
    ASSERT_TRUE(result.is_ok());
    ASSERT_EQ(result.value().outputs.size(), input.size());
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(result.value().outputs[static_cast<std::size_t>(i)].second,
                input[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(FilterProperty, ThresholdFilterEquivalentToPredicate) {
  // A value-threshold filter must forward exactly the samples that pass.
  CompileEnv env;
  const char* source = R"({
    int i = 0;
    int n = 8;
    for (int k = 0; k < n; ++k) {
      if (input[k].value > 100.0) {
        output[i] = input[k];
        i = i + 1;
      }
    }
  })";
  auto filter = Filter::compile(source, env);
  ASSERT_TRUE(filter.is_ok()) << filter.status().to_string();

  Rng rng{0xEE};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Sample> input;
    std::vector<Sample> expected;
    for (int i = 0; i < 8; ++i) {
      Sample s{i, rng.uniform(0.0, 200.0), 0.0, 0};
      input.push_back(s);
      if (s.value > 100.0) expected.push_back(s);
    }
    auto result = filter.value().run(input);
    ASSERT_TRUE(result.is_ok());
    ASSERT_EQ(result.value().outputs.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.value().outputs[i].second, expected[i]);
    }
  }
}

TEST(FilterProperty, FuelBoundIsProportionalToWork) {
  // Executing n iterations must consume O(n) instructions — a guard against
  // accidental quadratic dispatch in the VM.
  auto instructions_for = [](int n) {
    std::ostringstream source;
    source << "int s = 0; for (int i = 0; i < " << n << "; ++i) s += i;";
    auto filter = Filter::compile(source.str());
    EXPECT_TRUE(filter.is_ok());
    auto result = filter.value().run({});
    EXPECT_TRUE(result.is_ok());
    return result.value().instructions_executed;
  };
  const auto small = instructions_for(100);
  const auto large = instructions_for(10'000);
  EXPECT_LT(static_cast<double>(large),
            110.0 * static_cast<double>(small));  // linear, not quadratic
}

TEST(ProgramProperty, FoldingPreservesSemanticsOnRandomPrograms) {
  // Differential test of the optimizer: compile every random program with
  // and without constant folding and require identical results.
  Rng rng{0xF01D};
  for (int trial = 0; trial < 80; ++trial) {
    std::ostringstream source;
    source << "int a = " << rng.uniform_int(-20, 20) << ";\n"
           << "double b = " << rng.uniform_int(0, 9) << ".25;\n";
    for (int stmt = 0; stmt < 10; ++stmt) {
      switch (rng.uniform_int(0, 4)) {
        case 0:
          source << "a = a + " << rng.uniform_int(1, 9) << " * "
                 << rng.uniform_int(1, 9) << ";\n";
          break;
        case 1:
          source << "b = b * (1.5 + " << rng.uniform_int(0, 3) << ") + a;\n";
          break;
        case 2:
          source << "a = " << rng.uniform_int(0, 1) << " ? a + 1 : a - 1;\n";
          break;
        case 3:
          source << "a = a + (0 && (a = 99));\n";
          break;
        case 4:
          source << "b = b + max(" << rng.uniform_int(0, 5) << ", abs(0 - "
                 << rng.uniform_int(0, 5) << "));\n";
          break;
      }
    }
    source << "return a * 1000 + b;";
    auto folded = Filter::compile(source.str());
    auto unfolded = Filter::compile(source.str(), {},
                                    CompileOptions{.fold_constants = false});
    ASSERT_TRUE(folded.is_ok()) << source.str();
    ASSERT_TRUE(unfolded.is_ok());
    auto folded_run = folded.value().run({});
    auto unfolded_run = unfolded.value().run({});
    ASSERT_TRUE(folded_run.is_ok());
    ASSERT_TRUE(unfolded_run.is_ok());
    ASSERT_EQ(folded_run.value().return_value.has_value(),
              unfolded_run.value().return_value.has_value());
    EXPECT_DOUBLE_EQ(*folded_run.value().return_value,
                     *unfolded_run.value().return_value)
        << source.str();
    EXPECT_LE(folded.value().bytecode().insns.size(),
              unfolded.value().bytecode().insns.size());
  }
}

TEST(FilterProperty, CompileDeterministic) {
  const char* source = "int i = 0; for (; i < 4; ++i) output[i] = input[i];";
  auto a = Filter::compile(source);
  auto b = Filter::compile(source);
  ASSERT_TRUE(a.is_ok());
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(a.value().bytecode().disassemble(),
            b.value().bytecode().disassemble());
}

}  // namespace
}  // namespace dproc::ecode
