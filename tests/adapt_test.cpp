// Period-adaptation tests: the PeriodController state machine in isolation,
// then the closed loop through a live cluster — the ISSUE's two chaos
// scenarios (a load spike must re-tighten a relaxed period within one
// adaptation interval; the overhead budget clamp must hold through a
// partition-heal burst) plus the /proc/dproc/adapt knob surface.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "dproc/core/adapt.hpp"
#include "dproc/core/cluster.hpp"
#include "dproc/core/monitors.hpp"
#include "dproc/sim/fault.hpp"

namespace dproc::core {
namespace {

SimTime at(double sec) { return SimTime::zero() + seconds(sec); }

// --- controller unit tests ---------------------------------------------------

AdaptConfig unit_config() {
  AdaptConfig config;
  config.enabled = true;
  config.accuracy_target = 0.05;
  config.overhead_budget = 0.01;
  config.min_period = seconds(1.0);
  config.max_period = seconds(30.0);
  return config;
}

/// Feeds `polls` observation rounds; metric ids below `hot_count` swing by
/// +/- `wobble` each poll, the rest hold perfectly still.
void feed(PeriodController& controller, std::vector<double> values,
          std::size_t hot_count = 0, double wobble = 0.0, int polls = 8) {
  std::vector<PublishedState> published;  // empty: baseline = own prev value
  for (int p = 0; p < polls; ++p) {
    std::vector<MetricSample> collected;
    for (std::size_t i = 0; i < values.size(); ++i) {
      const double swing = i < hot_count ? ((p % 2 == 0) ? wobble : -wobble)
                                         : 0.0;
      collected.push_back(
          MetricSample{static_cast<MetricId>(i), values[i] + swing, at(p)});
    }
    controller.observe(collected, published);
  }
}

TEST(AdaptController, TightensHotRegionRelaxesColdRegion) {
  PeriodController controller{unit_config(), seconds(2.0)};
  controller.add_region("hot", 0, 2);
  controller.add_region("cold", 2, 2);
  // Metrics 0-1 swing by their full magnitude every poll; 2-3 hold still.
  feed(controller, {100.0, 80.0, 100.0, 100.0}, /*hot_count=*/2,
       /*wobble=*/60.0);

  EXPECT_TRUE(controller.adapt(/*measured_overhead=*/0.0));
  ASSERT_EQ(controller.regions().size(), 2u);
  EXPECT_EQ(controller.regions()[0].period, seconds(1.0));  // 2.0 * 0.5
  EXPECT_EQ(controller.regions()[1].period, seconds(3.0));  // 2.0 * 1.5
  EXPECT_GT(controller.regions()[0].score, controller.config().accuracy_target);
  EXPECT_GE(controller.periods_tightened(), 1u);
  EXPECT_GE(controller.periods_relaxed(), 1u);
  EXPECT_EQ(controller.budget_clamps(), 0u);
  EXPECT_EQ(controller.rounds(), 1u);

  // region_of() resolves ids to their owning range.
  const PeriodController::Region* hot = controller.region_of(1);
  ASSERT_NE(hot, nullptr);
  EXPECT_EQ(hot->module, "hot");
  EXPECT_EQ(controller.region_of(3)->module, "cold");
  EXPECT_EQ(controller.region_of(99), nullptr);
}

TEST(AdaptController, AccuracyBaselineIsThePublishedValue) {
  // With a published snapshot pinned at 100 while collections drift to 160,
  // the rate must track the *cluster's* staleness, not the per-poll delta.
  PeriodController controller{unit_config(), seconds(2.0)};
  controller.add_region("drift", 0, 1);
  std::vector<PublishedState> published{PublishedState{true, 100.0}};
  for (int p = 0; p < 8; ++p) {
    std::vector<MetricSample> collected{
        MetricSample{0, 100.0 + 60.0 * (p / 8.0), at(p)}};
    controller.observe(collected, published);
  }
  EXPECT_GT(controller.rate(0), controller.config().accuracy_target);
}

TEST(AdaptController, BudgetClampScalesEveryPeriodAndIsCapped) {
  PeriodController controller{unit_config(), seconds(2.0)};
  controller.add_region("a", 0, 1);
  controller.add_region("b", 1, 1);
  feed(controller, {100.0, 100.0});  // all flat: no accuracy pressure

  // 4x over budget: both periods scale by 4 (the relax factor first nudges
  // flat regions from 2s to 3s, then the clamp multiplies).
  EXPECT_TRUE(controller.adapt(4.0 * controller.budget()));
  EXPECT_EQ(controller.regions()[0].period, seconds(12.0));
  EXPECT_EQ(controller.regions()[1].period, seconds(12.0));
  EXPECT_EQ(controller.budget_clamps(), 2u);

  // A pathological sample is capped at 8x and by max_period.
  EXPECT_TRUE(controller.adapt(1000.0 * controller.budget()));
  EXPECT_EQ(controller.regions()[0].period, seconds(30.0));
  EXPECT_DOUBLE_EQ(controller.last_overhead(), 1000.0 * controller.budget());
}

TEST(AdaptController, KnobsRejectNonPositiveValues) {
  PeriodController controller{unit_config(), seconds(1.0)};
  EXPECT_FALSE(controller.set_budget(0.0).is_ok());
  EXPECT_FALSE(controller.set_budget(-0.5).is_ok());
  EXPECT_FALSE(controller.set_target(0.0).is_ok());
  EXPECT_TRUE(controller.set_budget(0.02).is_ok());
  EXPECT_TRUE(controller.set_target(0.2).is_ok());
  EXPECT_DOUBLE_EQ(controller.budget(), 0.02);
  EXPECT_DOUBLE_EQ(controller.target(), 0.2);
}

TEST(AdaptController, ResetRestoresBasePeriodsAndForgetsRates) {
  PeriodController controller{unit_config(), seconds(2.0)};
  controller.add_region("m", 0, 1);
  feed(controller, {100.0}, /*hot_count=*/1, /*wobble=*/60.0);
  EXPECT_TRUE(controller.adapt(0.0));
  EXPECT_NE(controller.regions()[0].period, seconds(2.0));

  controller.reset();
  EXPECT_EQ(controller.regions()[0].period, seconds(2.0));
  EXPECT_EQ(controller.rounds(), 0u);
  EXPECT_EQ(controller.rate(0), 0.0);
}

// --- closed-loop chaos scenarios ---------------------------------------------

const PeriodController::Region* region_named(const PeriodController& controller,
                                             const std::string& module) {
  for (const PeriodController::Region& region : controller.regions()) {
    if (region.module == module) return &region;
  }
  return nullptr;
}

/// Chaos A: a metric that has been flat long enough for its period to relax
/// starts swinging hard; the next adaptation round — within one adaptation
/// interval of the spike — must tighten it back.
TEST(AdaptChaos, LoadSpikeRetightensWithinOneInterval) {
  sim::Engine engine;
  ClusterConfig config;
  config.node_count = 2;
  config.adapt.enabled = true;
  config.adapt.overhead_budget = 1.0;  // accuracy only; clamp stays idle
  config.adapt.adapt_every_periods = 5;
  Cluster cluster{engine, config};

  // Flat at 100 until the spike at t=30, then a full-scale square wave.
  const double spike_at = 30.0;
  cluster.dmon(0)->register_module(std::make_unique<SyntheticMonitor>(
      "load", 4, [=](std::size_t metric, SimTime now) {
        if (now < at(spike_at)) return 100.0 + static_cast<double>(metric);
        const auto second = static_cast<long long>(now.ns() / 1'000'000'000);
        return second % 2 == 0 ? 40.0 : 180.0;
      }));
  cluster.start_dproc();

  engine.run_until(at(spike_at - 0.5));
  const PeriodController* controller = cluster.dmon(0)->adaptation();
  ASSERT_NE(controller, nullptr);
  const PeriodController::Region* load = region_named(*controller, "load");
  ASSERT_NE(load, nullptr);
  // ~6 idle rounds of 1.5x relaxation from the 1s base.
  const SimDuration relaxed = load->period;
  EXPECT_GT(relaxed, seconds(3.0)) << to_string(relaxed);
  EXPECT_GT(controller->rounds(), 0u);

  // One adaptation interval = adapt_every_periods polls = 5 s. The round
  // whose window covers the spike must already see the square wave's rate
  // blow through the target and tighten.
  const double interval = config.adapt.adapt_every_periods *
                          1.0 /* poll_period seconds */;
  engine.run_until(at(spike_at + interval + 0.5));
  EXPECT_LT(load->period, relaxed)
      << "spike did not re-tighten the period within one interval";
  EXPECT_GT(load->score, config.adapt.accuracy_target);
  EXPECT_GE(controller->periods_tightened(), 1u);

  // The tightening propagates into the effective tuning as an adaptive
  // period, visible through the control surface.
  auto described = cluster.procfs(0).read("/proc/dproc/adapt");
  ASSERT_TRUE(described.is_ok());
  EXPECT_NE(described.value().find("region load"), std::string::npos);
}

/// Chaos B: a publisher pushed over its overhead budget by a wide, volatile
/// module — with a mid-run partition and heal of its uplink thrown in —
/// must stretch periods until the measured overhead sits back under budget,
/// and hold it there through the heal burst.
TEST(AdaptChaos, BudgetClampHoldsThroughPartitionHeal) {
  sim::Engine engine;
  ClusterConfig config;
  config.node_count = 4;
  config.adapt.enabled = true;
  config.adapt.adapt_every_periods = 5;
  config.adapt.accuracy_target = 1e9;  // accuracy never tightens: clamp only
  Cluster cluster{engine, config};

  // A 250-metric always-changing module (the paper's ~5 KB event) makes
  // publishing the dominant cost on node 1.
  cluster.dmon(1)->register_module(std::make_unique<SyntheticMonitor>(
      "firehose", 250, [](std::size_t metric, SimTime now) {
        return static_cast<double>(metric) + now.sec();
      }));
  cluster.start_dproc();

  // Find a budget the unclamped steady state actually violates: measure it
  // first, then restart the run — deterministically — with half that.
  engine.run_until(at(10.0));
  const PeriodController* controller = cluster.dmon(1)->adaptation();
  ASSERT_NE(controller, nullptr);
  const double unclamped = controller->last_overhead();
  ASSERT_GT(unclamped, 0.0);
  const double requested = unclamped / 2.0;
  ASSERT_TRUE(cluster.procfs(1)
                  .write("/proc/dproc/adapt",
                         "budget " + std::to_string(requested))
                  .is_ok());
  // to_string rounds to 6 decimals; the parsed knob is the real budget.
  const double budget = controller->budget();
  ASSERT_NEAR(budget, requested, 1e-6);

  sim::FaultPlan plan;
  plan.partition_link(at(15.0), cluster.uplink(1))
      .heal_link(at(25.0), cluster.uplink(1));
  cluster.inject(plan);

  engine.run_until(at(60.0));
  // The clamp fired, stretched the firehose region's period above base, and
  // the post-heal steady state honours the budget.
  EXPECT_GE(controller->budget_clamps(), 1u);
  const PeriodController::Region* firehose =
      region_named(*controller, "firehose");
  ASSERT_NE(firehose, nullptr);
  EXPECT_GT(firehose->period, seconds(1.0));
  EXPECT_LE(controller->last_overhead(), budget)
      << "overhead " << controller->last_overhead() << " vs budget " << budget;
}

// --- feature flag and knob surface -------------------------------------------

TEST(AdaptSurface, DisabledByDefaultWithInertProcfs) {
  sim::Engine engine;
  ClusterConfig config;
  config.node_count = 1;
  Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(at(3.0));

  EXPECT_EQ(cluster.dmon(0)->adaptation(), nullptr);
  auto described = cluster.procfs(0).read("/proc/dproc/adapt");
  ASSERT_TRUE(described.is_ok());
  EXPECT_NE(described.value().find("adaptation disabled"), std::string::npos);
  EXPECT_FALSE(cluster.procfs(0)
                   .write("/proc/dproc/adapt", "budget 0.02")
                   .is_ok());
}

TEST(AdaptSurface, ProcfsKnobsParseAndValidate) {
  sim::Engine engine;
  ClusterConfig config;
  config.node_count = 1;
  config.adapt.enabled = true;
  Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(at(1.5));

  procfs::ProcFs& fs = cluster.procfs(0);
  EXPECT_TRUE(
      fs.write("/proc/dproc/adapt", "# comment\nbudget 0.02\ntarget 0.1\n")
          .is_ok());
  const PeriodController* controller = cluster.dmon(0)->adaptation();
  ASSERT_NE(controller, nullptr);
  EXPECT_DOUBLE_EQ(controller->budget(), 0.02);
  EXPECT_DOUBLE_EQ(controller->target(), 0.1);

  EXPECT_FALSE(fs.write("/proc/dproc/adapt", "budget").is_ok());
  EXPECT_FALSE(fs.write("/proc/dproc/adapt", "budget -1").is_ok());
  EXPECT_FALSE(fs.write("/proc/dproc/adapt", "wibble 3").is_ok());
  // Failed writes leave the knobs untouched.
  EXPECT_DOUBLE_EQ(controller->budget(), 0.02);

  auto described = fs.read("/proc/dproc/adapt");
  ASSERT_TRUE(described.is_ok());
  EXPECT_NE(described.value().find("budget 0.02"), std::string::npos);
  EXPECT_NE(described.value().find("target 0.1"), std::string::npos);
}

}  // namespace
}  // namespace dproc::core
