// Constant folding: semantics preserved, code shrunk, diagnostics kept.
#include <gtest/gtest.h>

#include "dproc/ecode/ecode.hpp"

namespace dproc::ecode {
namespace {

std::size_t insn_count(std::string_view source, const CompileEnv& env = {}) {
  auto filter = Filter::compile(source, env);
  EXPECT_TRUE(filter.is_ok()) << filter.status().to_string();
  return filter.is_ok() ? filter.value().bytecode().insns.size() : 0;
}

double run_ret(std::string_view source, const CompileEnv& env = {}) {
  auto filter = Filter::compile(source, env);
  EXPECT_TRUE(filter.is_ok()) << filter.status().to_string();
  auto result = filter.value().run({});
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  return result.value().return_value.value_or(0.0);
}

TEST(Fold, ArithmeticCollapsesToOnePush) {
  // push + return + halt.
  EXPECT_EQ(insn_count("return 2 + 3 * 4 - 1;"), 3u);
  EXPECT_DOUBLE_EQ(run_ret("return 2 + 3 * 4 - 1;"), 13.0);
  EXPECT_EQ(insn_count("return (1 << 10) | 7;"), 3u);
  EXPECT_DOUBLE_EQ(run_ret("return -(2.5 * 4);"), -10.0);
  EXPECT_EQ(insn_count("return -(2.5 * 4);"), 3u);
}

TEST(Fold, EnvironmentConstantsParticipate) {
  CompileEnv env;
  env.constants = {{"LOADAVG", 3}};
  EXPECT_EQ(insn_count("return LOADAVG * 2 + 1;", env), 3u);
  EXPECT_DOUBLE_EQ(run_ret("return LOADAVG * 2 + 1;", env), 7.0);
}

TEST(Fold, BuiltinsFoldOnConstants) {
  EXPECT_EQ(insn_count("return max(abs(0 - 4), sqrt(9.0));"), 3u);
  EXPECT_DOUBLE_EQ(run_ret("return max(abs(0 - 4), sqrt(9.0));"), 4.0);
}

TEST(Fold, TernaryDropsDeadBranch) {
  EXPECT_EQ(insn_count("return 1 ? 10 : 20;"), 3u);
  EXPECT_DOUBLE_EQ(run_ret("return 1 ? 10 : 20;"), 10.0);
  EXPECT_DOUBLE_EQ(run_ret("return 0 ? 10 : 20;"), 20.0);
  // Widening preserved: an int branch under a double ternary.
  EXPECT_DOUBLE_EQ(run_ret("return 0 ? 1.5 : 3;"), 3.0);
  EXPECT_DOUBLE_EQ(run_ret("double d = 1 ? 2 : 0.5; return d * 2;"), 4.0);
}

TEST(Fold, ShortCircuitWithConstantLeft) {
  EXPECT_EQ(insn_count("return 0 && 1;"), 3u);
  EXPECT_DOUBLE_EQ(run_ret("return 0 && 1;"), 0.0);
  EXPECT_DOUBLE_EQ(run_ret("return 1 || 0;"), 1.0);
  EXPECT_DOUBLE_EQ(run_ret("return 1 && 7;"), 1.0);  // normalized
  // Non-constant right side under a true left keeps the normalization.
  EXPECT_DOUBLE_EQ(run_ret("int x = 7; return 1 && x;"), 1.0);
}

TEST(Fold, DivisionByConstantZeroStaysRuntime) {
  auto filter = Filter::compile("return 1 / 0;");
  ASSERT_TRUE(filter.is_ok());
  auto result = filter.value().run({});
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("division by zero"),
            std::string::npos);
  // Same for modulo and sqrt of a negative constant.
  EXPECT_FALSE(Filter::compile("return 5 % 0;").value().run({}).is_ok());
  EXPECT_FALSE(Filter::compile("return sqrt(0-1);").value().run({}).is_ok());
}

TEST(Fold, RuntimeValuesNotFolded) {
  std::vector<Sample> input{{0, 5.0, 0.0, 0}};
  auto filter = Filter::compile("return input[0].value * (2 + 3);");
  ASSERT_TRUE(filter.is_ok());
  auto result = filter.value().run(input);
  ASSERT_TRUE(result.is_ok());
  EXPECT_DOUBLE_EQ(*result.value().return_value, 25.0);
}

TEST(Fold, FoldingShrinksThePaperFilterStyleConditions) {
  CompileEnv env;
  env.constants = {{"FREEMEM", 2}};
  // 50e6 / 2 folds; the comparison against live input cannot.
  const std::size_t folded =
      insn_count("if (input[FREEMEM].value < 50e6 / 2) output[0] = input[FREEMEM];",
                 env);
  const std::size_t reference =
      insn_count("if (input[FREEMEM].value < 25e6) output[0] = input[FREEMEM];",
                 env);
  EXPECT_EQ(folded, reference);
}

TEST(Fold, LoopBoundsFold) {
  // The loop itself must still execute (bound is constant but the body
  // accumulates), with the bound expression collapsed.
  EXPECT_DOUBLE_EQ(
      run_ret("int s = 0; for (int i = 0; i < 2 * 5; ++i) s += i; return s;"),
      45.0);
}

}  // namespace
}  // namespace dproc::ecode
