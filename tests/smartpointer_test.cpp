// SmartPointer server/client tests: subscription, the three filter modes,
// the adaptation policies, and the lag/backlog instrumentation.
#include <gtest/gtest.h>

#include "dproc/core/cluster.hpp"
#include "dproc/smartpointer/client.hpp"
#include "dproc/smartpointer/server.hpp"
#include "dproc/smartpointer/sync.hpp"
#include "dproc/workload/iperf.hpp"
#include "dproc/workload/linpack.hpp"

namespace dproc::smartpointer {
namespace {

// --- cost model ------------------------------------------------------------

TEST(StreamCostModel, FrameBytesByRepresentation) {
  StreamCostModel costs;
  EXPECT_EQ(costs.frame_bytes(Representation::kFull, 1000, 1.0), 25'000u);
  EXPECT_EQ(costs.frame_bytes(Representation::kPositionOnly, 1000, 1.0),
            13'000u);
  EXPECT_EQ(costs.frame_bytes(Representation::kCompressed, 1000, 1.0),
            10'000u);
  EXPECT_EQ(costs.frame_bytes(Representation::kPreRendered, 1000, 1.0),
            workload::MdLayout::kImageBytes);
  // Decimation scales data derivations but not images.
  EXPECT_EQ(costs.frame_bytes(Representation::kFull, 1000, 0.5), 12'500u);
  EXPECT_EQ(costs.frame_bytes(Representation::kPreRendered, 1000, 0.5),
            workload::MdLayout::kImageBytes);
}

TEST(StreamCostModel, CpuTradeoffInversesNetworkTradeoff) {
  StreamCostModel costs;
  const std::uint32_t atoms = 100'000;
  const auto full_bytes = costs.frame_bytes(Representation::kFull, atoms, 1.0);
  const auto comp_bytes =
      costs.frame_bytes(Representation::kCompressed, atoms, 1.0);
  const auto image_bytes =
      costs.frame_bytes(Representation::kPreRendered, atoms, 1.0);
  // Compressed: fewer bytes, more CPU. Image: more bytes, less CPU.
  EXPECT_LT(comp_bytes, full_bytes);
  EXPECT_GT(costs.client_cpu_seconds(Representation::kCompressed, comp_bytes),
            costs.client_cpu_seconds(Representation::kFull, full_bytes));
  EXPECT_GT(image_bytes, full_bytes);
  EXPECT_LT(costs.client_cpu_seconds(Representation::kPreRendered, image_bytes),
            costs.client_cpu_seconds(Representation::kFull, full_bytes));
}

TEST(StreamCodec, FrameRoundTrip) {
  FramePayload frame;
  frame.frame_number = 42;
  frame.generated_at = SimTime{123456789};
  frame.rep = Representation::kCompressed;
  frame.fraction = 0.25;
  frame.data_bytes = 1'000'000;
  auto decoded = decode_frame(encode_frame(frame));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().frame_number, 42u);
  EXPECT_EQ(decoded.value().generated_at.ns(), 123456789);
  EXPECT_EQ(decoded.value().rep, Representation::kCompressed);
  EXPECT_DOUBLE_EQ(decoded.value().fraction, 0.25);
  EXPECT_EQ(decoded.value().data_bytes, 1'000'000u);
  // Bulk rides as body bytes, headers stay small.
  EXPECT_EQ(encode_frame(frame)->body_bytes, 1'000'000u);
  EXPECT_LT(encode_frame(frame)->header.size(), 64u);
}

TEST(StreamCodec, SubscribeRoundTrip) {
  Subscribe sub;
  sub.client_node = 7;
  sub.mode = FilterMode::kDynamic;
  sub.static_rep = Representation::kPreRendered;
  sub.storage_client = true;
  auto decoded = decode_subscribe(encode_subscribe(sub));
  ASSERT_TRUE(decoded.is_ok());
  EXPECT_EQ(decoded.value().client_node, 7u);
  EXPECT_EQ(decoded.value().mode, FilterMode::kDynamic);
  EXPECT_TRUE(decoded.value().storage_client);
}

TEST(StreamCodec, WrongOpcodeRejected) {
  EXPECT_FALSE(decode_frame(encode_subscribe(Subscribe{})).is_ok());
  FramePayload frame;
  EXPECT_FALSE(decode_subscribe(encode_frame(frame)).is_ok());
}

// --- end-to-end fixtures -----------------------------------------------------

class SmartPointerTest : public ::testing::Test {
 protected:
  SmartPointerTest() {
    core::ClusterConfig config;
    config.node_count = 3;
    cluster = std::make_unique<core::Cluster>(engine, config);
    cluster->start_dproc();
    engine.run_until(SimTime{} + seconds(2.0));
  }

  std::unique_ptr<Server> make_server(ServerConfig config = {}) {
    auto server = std::make_unique<Server>(cluster->host(0), cluster->nic(0),
                                           cluster->dmon(0), config);
    server->start();
    return server;
  }

  void run_for(double sec) { engine.run_until(engine.now() + seconds(sec)); }

  sim::Engine engine;
  std::unique_ptr<core::Cluster> cluster;
};

TEST_F(SmartPointerTest, SubscribeEstablishesClientState) {
  auto server = make_server();
  ClientConfig config;
  config.mode = FilterMode::kStatic;
  config.static_rep = Representation::kPositionOnly;
  Client client{cluster->host(1), cluster->nic(1), 0, 9000, config};
  client.connect();
  run_for(1.0);
  ASSERT_EQ(server->client_count(), 1u);
  const Server::ClientState* state = server->client(1);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->subscription.mode, FilterMode::kStatic);
  EXPECT_EQ(state->subscription.static_rep, Representation::kPositionOnly);
}

TEST_F(SmartPointerTest, FramesFlowAtServerRate) {
  ServerConfig server_config;
  server_config.frame_rate_hz = 5.0;
  server_config.atom_count = 10'000;
  auto server = make_server(server_config);
  Client client{cluster->host(1), cluster->nic(1), 0, 9000, ClientConfig{}};
  client.connect();
  run_for(1.0);
  client.checkpoint();
  run_for(10.0);
  EXPECT_NEAR(client.event_rate_since_checkpoint(), 5.0, 0.3);
  EXPECT_GT(client.frames_processed(), 45u);
}

TEST_F(SmartPointerTest, NoFilterSendsFullFrames) {
  ServerConfig server_config;
  server_config.atom_count = 10'000;
  auto server = make_server(server_config);
  Client client{cluster->host(1), cluster->nic(1), 0, 9000, ClientConfig{}};
  client.connect();
  run_for(3.0);
  const Server::ClientState* state = server->client(1);
  ASSERT_NE(state, nullptr);
  EXPECT_EQ(state->last_rep, Representation::kFull);
  EXPECT_DOUBLE_EQ(state->last_fraction, 1.0);
}

TEST_F(SmartPointerTest, StaticFilterUsesChosenRepresentation) {
  auto server = make_server();
  ClientConfig config;
  config.mode = FilterMode::kStatic;
  config.static_rep = Representation::kCompressed;
  Client client{cluster->host(1), cluster->nic(1), 0, 9000, config};
  client.connect();
  run_for(3.0);
  EXPECT_EQ(server->client(1)->last_rep, Representation::kCompressed);
}

TEST_F(SmartPointerTest, LagMeasuredPerFrame) {
  ServerConfig server_config;
  server_config.atom_count = 10'000;
  auto server = make_server(server_config);
  Client client{cluster->host(1), cluster->nic(1), 0, 9000, ClientConfig{}};
  client.connect();
  run_for(5.0);
  ASSERT_GT(client.lag_series().size(), 10u);
  for (const auto& point : client.lag_series()) {
    EXPECT_GT(point.lag.ns(), 0);
    EXPECT_LT(point.lag.sec(), 1.0);  // unloaded LAN
  }
}

TEST_F(SmartPointerTest, StorageClientWritesToDisk) {
  ServerConfig server_config;
  server_config.atom_count = 10'000;
  auto server = make_server(server_config);
  ClientConfig config;
  config.storage_client = true;
  Client client{cluster->host(1), cluster->nic(1), 0, 9000, config};
  client.connect();
  run_for(5.0);
  EXPECT_GT(cluster->host(1).disk().counters().writes, 0u);
}

TEST_F(SmartPointerTest, DynamicPolicyPrefersFidelityWhenUnloaded) {
  ServerConfig server_config;
  server_config.frame_rate_hz = 2.0;
  server_config.atom_count = 10'000;  // tiny stream, everything sustainable
  auto server = make_server(server_config);
  ClientConfig config;
  config.mode = FilterMode::kDynamic;
  Client client{cluster->host(1), cluster->nic(1), 0, 9000, config};
  client.connect();
  run_for(10.0);
  const Server::ClientState* state = server->client(1);
  EXPECT_EQ(state->last_rep, Representation::kFull);
  EXPECT_DOUBLE_EQ(state->last_fraction, 1.0);
}

TEST_F(SmartPointerTest, DynamicPolicyShedsCpuLoad) {
  ServerConfig server_config;
  server_config.frame_rate_hz = 5.0;
  server_config.atom_count = 30'000;  // full rendering ~0.12 s/frame
  auto server = make_server(server_config);
  ClientConfig config;
  config.mode = FilterMode::kDynamic;
  Client client{cluster->host(1), cluster->nic(1), 0, 9000, config};
  client.connect();
  run_for(5.0);

  // Load the client heavily; the policy must keep the backlog bounded.
  workload::LinpackTask t1{cluster->host(1)}, t2{cluster->host(1)},
      t3{cluster->host(1)}, t4{cluster->host(1)};
  run_for(40.0);
  client.checkpoint();
  run_for(20.0);
  EXPECT_NEAR(client.event_rate_since_checkpoint(), 5.0, 0.5)
      << "dynamic filter should keep up with the send rate";
  EXPECT_LT(client.backlog(), 10u);
  const Server::ClientState* state = server->client(1);
  EXPECT_TRUE(state->last_rep != Representation::kFull ||
              state->last_fraction < 1.0)
      << "policy should have customized the stream";
}

TEST_F(SmartPointerTest, WithoutFilterBacklogGrowsUnderLoad) {
  ServerConfig server_config;
  server_config.frame_rate_hz = 5.0;
  server_config.atom_count = 30'000;
  auto server = make_server(server_config);
  Client client{cluster->host(1), cluster->nic(1), 0, 9000, ClientConfig{}};
  client.connect();
  run_for(5.0);
  workload::LinpackTask t1{cluster->host(1)}, t2{cluster->host(1)},
      t3{cluster->host(1)}, t4{cluster->host(1)};
  run_for(60.0);
  EXPECT_GT(client.backlog(), 50u) << "no filter: queue must grow";
}

TEST_F(SmartPointerTest, MultipleClientsCustomizedIndependently) {
  ServerConfig server_config;
  server_config.frame_rate_hz = 5.0;
  server_config.atom_count = 30'000;
  auto server = make_server(server_config);

  ClientConfig dynamic_config;
  dynamic_config.mode = FilterMode::kDynamic;
  Client loaded{cluster->host(1), cluster->nic(1), 0, 9000, dynamic_config};
  loaded.connect();
  Client idle{cluster->host(2), cluster->nic(2), 0, 9000, dynamic_config};
  idle.connect();
  run_for(5.0);

  workload::LinpackTask t1{cluster->host(1)}, t2{cluster->host(1)},
      t3{cluster->host(1)}, t4{cluster->host(1)}, t5{cluster->host(1)};
  run_for(40.0);

  const Server::ClientState* loaded_state = server->client(1);
  const Server::ClientState* idle_state = server->client(2);
  ASSERT_NE(loaded_state, nullptr);
  ASSERT_NE(idle_state, nullptr);
  // The idle client keeps (near-)full fidelity — this stream runs close to
  // its sustainability budget even unloaded, so mild decimation is allowed;
  // the loaded client must be customized substantially more.
  EXPECT_EQ(idle_state->last_rep, Representation::kFull);
  EXPECT_GT(idle_state->last_fraction, 0.9);
  const auto fidelity_of = [](const Server::ClientState& s) {
    const double base = s.last_rep == Representation::kFull ? 1.0 : 0.85;
    return base * s.last_fraction;
  };
  EXPECT_LT(fidelity_of(*loaded_state), fidelity_of(*idle_state) * 0.75);
}

// --- multi-stream synchronization (the §4.2 data/video/audio story) --------

class SyncTest : public SmartPointerTest {
 protected:
  // Two streams from the same server node to the same client node: a light
  // "audio/data" stream and a heavy "video" stream that is slower to
  // process. Both tick at 5 Hz from the same virtual clock.
  std::unique_ptr<Server> data_server, video_server;
  std::unique_ptr<Client> data_stream, video_stream;

  void start_streams(double video_processing_scale) {
    ServerConfig data_config;
    data_config.port = 9000;
    data_config.frame_rate_hz = 5.0;
    data_config.atom_count = 2'000;  // tiny
    data_server = std::make_unique<Server>(cluster->host(0), cluster->nic(0),
                                           cluster->dmon(0), data_config);
    data_server->start();

    ServerConfig video_config;
    video_config.port = 9001;
    video_config.frame_rate_hz = 5.0;
    video_config.atom_count = 30'000;
    video_server = std::make_unique<Server>(cluster->host(0), cluster->nic(0),
                                            cluster->dmon(0), video_config);
    video_server->start();

    ClientConfig light;
    data_stream = std::make_unique<Client>(cluster->host(1), cluster->nic(1),
                                           0, 9000, light);
    ClientConfig heavy;
    heavy.processing_scale = video_processing_scale;
    video_stream = std::make_unique<Client>(cluster->host(1), cluster->nic(1),
                                            0, 9001, heavy);
  }
};

TEST_F(SyncTest, UnsynchronizedStreamsDrift) {
  start_streams(1.0);
  data_stream->connect();
  video_stream->connect();
  run_for(20.0);
  // The light stream completes frames much earlier than the heavy one.
  ASSERT_GT(data_stream->frames_processed(), 50u);
  ASSERT_GT(video_stream->frames_processed(), 50u);
  const double data_lag = data_stream->lags().mean();
  const double video_lag = video_stream->lags().mean();
  EXPECT_GT(video_lag, data_lag * 3) << "streams drift without sync";
}

TEST_F(SyncTest, SyncGroupBoundsSkew) {
  start_streams(1.0);
  SyncGroup sync{{data_stream.get(), video_stream.get()}};
  data_stream->connect();
  video_stream->connect();
  run_for(20.0);

  SyncStats& stats = sync.stats();
  ASSERT_GT(stats.presented, 50u);
  // Presentation is aligned: the skew the group *absorbed* equals the raw
  // completion spread, and the light stream pays it as buffer delay.
  EXPECT_GT(stats.skew_sec.mean(), 0.02);
  EXPECT_NEAR(stats.buffer_delay_sec.quantile(1.0), stats.skew_sec.quantile(1.0),
              1e-9);
  // Every presented group waited for its slowest member; nothing leaks.
  EXPECT_LE(sync.buffered(), 4u);
}

TEST_F(SyncTest, SyncGroupHandlesHeavyImbalance) {
  start_streams(3.0);  // video frames take ~0.36 s each at 0.2 s cadence
  SyncGroup sync{{data_stream.get(), video_stream.get()}};
  data_stream->connect();
  video_stream->connect();
  run_for(30.0);
  // The video stream falls behind unboundedly; the sync buffer grows with
  // it, but presented groups stay consistent (monotone frame completion).
  EXPECT_GT(sync.stats().presented, 10u);
  EXPECT_GT(sync.stats().max_buffered, 10u);
}

TEST(SyncGroupUnit, RejectsSingleStream) {
  EXPECT_THROW(SyncGroup{std::vector<Client*>{nullptr}},
               std::invalid_argument);
}

}  // namespace
}  // namespace dproc::smartpointer
