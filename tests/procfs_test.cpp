#include <gtest/gtest.h>

#include "dproc/procfs/procfs.hpp"

namespace dproc::procfs {
namespace {

class ProcFsTest : public ::testing::Test {
 protected:
  ProcFs fs;
};

TEST_F(ProcFsTest, RegisterAndReadFile) {
  ASSERT_TRUE(fs.register_file("/proc/loadavg", [] { return "0.42\n"; }).is_ok());
  auto content = fs.read("/proc/loadavg");
  ASSERT_TRUE(content.is_ok());
  EXPECT_EQ(content.value(), "0.42\n");
}

TEST_F(ProcFsTest, IntermediateDirectoriesCreated) {
  ASSERT_TRUE(
      fs.register_file("/proc/cluster/alan/cpu/loadavg", [] { return "1\n"; })
          .is_ok());
  EXPECT_TRUE(fs.is_directory("/proc/cluster/alan/cpu"));
  EXPECT_TRUE(fs.is_directory("/proc/cluster"));
}

TEST_F(ProcFsTest, ReadReflectsLiveState) {
  int value = 0;
  ASSERT_TRUE(fs.register_file("/proc/value", [&] {
                  return std::to_string(value);
                }).is_ok());
  value = 7;
  EXPECT_EQ(fs.read("/proc/value").value(), "7");
  value = 9;
  EXPECT_EQ(fs.read("/proc/value").value(), "9");
}

TEST_F(ProcFsTest, WriteInvokesHandler) {
  std::string written;
  ASSERT_TRUE(fs.register_file(
                    "/proc/cluster/alan/control", [] { return ""; },
                    [&](const std::string& data) {
                      written = data;
                      return Status::ok();
                    })
                  .is_ok());
  ASSERT_TRUE(fs.write("/proc/cluster/alan/control", "period 2").is_ok());
  EXPECT_EQ(written, "period 2");
}

TEST_F(ProcFsTest, WriteHandlerErrorsPropagate) {
  ASSERT_TRUE(fs.register_file(
                    "/proc/ctl", [] { return ""; },
                    [](const std::string&) {
                      return Status::invalid_argument("bad command");
                    })
                  .is_ok());
  const Status status = fs.write("/proc/ctl", "x");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ProcFsTest, WriteToReadOnlyFileDenied) {
  ASSERT_TRUE(fs.register_file("/proc/ro", [] { return "x"; }).is_ok());
  EXPECT_EQ(fs.write("/proc/ro", "y").code(), StatusCode::kPermissionDenied);
}

TEST_F(ProcFsTest, MissingPathsReported) {
  EXPECT_EQ(fs.read("/proc/nothing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(fs.write("/proc/nothing", "x").code(), StatusCode::kNotFound);
  EXPECT_FALSE(fs.exists("/proc/nothing"));
}

TEST_F(ProcFsTest, ReadingDirectoryIsError) {
  ASSERT_TRUE(fs.mkdir("/proc/cluster").is_ok());
  EXPECT_EQ(fs.read("/proc/cluster").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ProcFsTest, ListSortsAndMarksDirectories) {
  ASSERT_TRUE(fs.register_file("/proc/zeta", [] { return ""; }).is_ok());
  ASSERT_TRUE(fs.mkdir("/proc/alpha").is_ok());
  auto entries = fs.list("/proc");
  ASSERT_TRUE(entries.is_ok());
  EXPECT_EQ(entries.value(), (std::vector<std::string>{"alpha/", "zeta"}));
}

TEST_F(ProcFsTest, ListFileIsError) {
  ASSERT_TRUE(fs.register_file("/proc/x", [] { return ""; }).is_ok());
  EXPECT_FALSE(fs.list("/proc/x").is_ok());
}

TEST_F(ProcFsTest, RemoveSubtree) {
  ASSERT_TRUE(fs.register_file("/proc/cluster/alan/cpu/loadavg",
                               [] { return ""; }).is_ok());
  ASSERT_TRUE(fs.remove("/proc/cluster/alan").is_ok());
  EXPECT_FALSE(fs.exists("/proc/cluster/alan/cpu/loadavg"));
  EXPECT_TRUE(fs.exists("/proc/cluster"));
  EXPECT_EQ(fs.remove("/proc/cluster/alan").code(), StatusCode::kNotFound);
}

TEST_F(ProcFsTest, RelativePathsRejected) {
  EXPECT_FALSE(fs.register_file("proc/x", [] { return ""; }).is_ok());
  EXPECT_FALSE(fs.read("relative").is_ok());
}

TEST_F(ProcFsTest, DotComponentsRejected) {
  EXPECT_FALSE(fs.register_file("/proc/../etc/passwd", [] { return ""; }).is_ok());
  EXPECT_FALSE(fs.read("/proc/./x").is_ok());
}

TEST_F(ProcFsTest, FileOverDirectoryRejected) {
  ASSERT_TRUE(fs.mkdir("/proc/cluster").is_ok());
  EXPECT_EQ(fs.register_file("/proc/cluster", [] { return ""; }).code(),
            StatusCode::kAlreadyExists);
}

TEST_F(ProcFsTest, ReRegisterReplacesHandlers) {
  ASSERT_TRUE(fs.register_file("/proc/x", [] { return "a"; }).is_ok());
  ASSERT_TRUE(fs.register_file("/proc/x", [] { return "b"; }).is_ok());
  EXPECT_EQ(fs.read("/proc/x").value(), "b");
}

TEST_F(ProcFsTest, TreeRendersHierarchy) {
  ASSERT_TRUE(fs.register_file("/proc/cluster/alan/cpu/loadavg",
                               [] { return ""; }).is_ok());
  const std::string tree = fs.tree();
  EXPECT_NE(tree.find("cluster/"), std::string::npos);
  EXPECT_NE(tree.find("alan/"), std::string::npos);
  EXPECT_NE(tree.find("loadavg"), std::string::npos);
}

TEST_F(ProcFsTest, DuplicateSlashesTolerated) {
  ASSERT_TRUE(fs.register_file("//proc//x", [] { return "v"; }).is_ok());
  EXPECT_EQ(fs.read("/proc/x").value(), "v");
}

TEST_F(ProcFsTest, NullReadHandlerYieldsEmpty) {
  ASSERT_TRUE(fs.register_file("/proc/empty", {}).is_ok());
  EXPECT_EQ(fs.read("/proc/empty").value(), "");
}

}  // namespace
}  // namespace dproc::procfs
