// Robustness under malformed and adversarial inputs: the E-code front end,
// the control-command parser, and the wire codecs must reject garbage with
// a Status — never crash, hang, or accept silently corrupted state.
#include <gtest/gtest.h>

#include <span>
#include <sstream>

#include "dproc/core/cluster.hpp"
#include "dproc/core/sketch.hpp"
#include "dproc/core/history.hpp"
#include "dproc/core/incident.hpp"
#include "dproc/core/tuning.hpp"
#include "dproc/ecode/ecode.hpp"
#include "dproc/kecho/node.hpp"
#include "dproc/net/wire.hpp"
#include "dproc/util/rng.hpp"

namespace dproc {
namespace {

std::string random_token_soup(Rng& rng, int tokens) {
  static const char* kTokens[] = {
      "int",  "double", "sample", "if",    "else",  "for",   "while",
      "return", "break", "continue", "input", "output", "value",
      "x",    "y",      "0",      "1",    "2.5",  "50e6",  "(",
      ")",    "{",      "}",      "[",    "]",    ";",     ",",
      ".",    "+",      "-",      "*",    "/",    "%",     "=",
      "==",   "!=",     "<",      ">",    "&&",   "||",    "!",
      "?",    ":",      "++",     "--",   "abs",  "min"};
  std::string out;
  for (int i = 0; i < tokens; ++i) {
    out += kTokens[rng.uniform_int(0, std::size(kTokens) - 1)];
    out += ' ';
  }
  return out;
}

TEST(FuzzEcode, TokenSoupNeverCrashes) {
  Rng rng{0xF022};
  ecode::CompileEnv env;
  env.constants = {{"LOADAVG", 0}};
  int compiled = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string source =
        random_token_soup(rng, static_cast<int>(rng.uniform_int(1, 40)));
    auto filter = ecode::Filter::compile(source, env);
    if (filter.is_ok()) {
      ++compiled;
      // Whatever parsed must also run to completion or fail cleanly.
      std::vector<ecode::Sample> input{{0, 1.0, 0.5, 0}};
      (void)filter.value().run(input,
                               ecode::VmLimits{.max_instructions = 50'000});
    } else {
      EXPECT_FALSE(filter.status().message().empty());
    }
  }
  // Sanity: the soup occasionally forms valid programs (e.g. "x" fails,
  // ";" parses) — the fuzzer is actually exercising both paths.
  EXPECT_GT(compiled, 0);
}

TEST(FuzzEcode, RandomBytesNeverCrash) {
  Rng rng{0xF0FF};
  for (int trial = 0; trial < 500; ++trial) {
    std::string source;
    const int length = static_cast<int>(rng.uniform_int(0, 200));
    for (int i = 0; i < length; ++i) {
      source += static_cast<char>(rng.uniform_int(1, 127));
    }
    (void)ecode::Filter::compile(source);
  }
}

TEST(FuzzEcode, DeepNestingIsBounded) {
  // Pathological nesting must not smash the stack: 20k parens.
  std::string source = "return ";
  for (int i = 0; i < 20'000; ++i) source += '(';
  source += '1';
  for (int i = 0; i < 20'000; ++i) source += ')';
  source += ';';
  // Either compiles (fine) or errors (fine); it must return.
  (void)ecode::Filter::compile(source);
}

TEST(FuzzControl, RandomCommandLinesNeverCrash) {
  Rng rng{0xC001};
  static const char* kWords[] = {"period", "threshold", "differential",
                                 "filter", "clear",     "window",
                                 "loadavg", "above",    "below",
                                 "range",   "change",   "2",
                                 "-1",      "50e6",     "15%",
                                 "if",      "cpu_util", "garbage"};
  for (int trial = 0; trial < 2000; ++trial) {
    std::string text;
    const int lines = static_cast<int>(rng.uniform_int(1, 4));
    for (int l = 0; l < lines; ++l) {
      const int words = static_cast<int>(rng.uniform_int(1, 6));
      for (int w = 0; w < words; ++w) {
        text += kWords[rng.uniform_int(0, std::size(kWords) - 1)];
        text += ' ';
      }
      text += '\n';
    }
    auto config = core::parse_control_commands(text);
    if (!config.is_ok()) {
      EXPECT_FALSE(config.status().message().empty());
    }
  }
}

TEST(FuzzCodec, TuningDecoderRejectsBitFlips) {
  core::TuningConfig config;
  config.default_period = seconds(2.0);
  config.thresholds.push_back(
      {"loadavg", core::ThresholdKind::kAbove, 2.0, 0.0});
  config.filter_source = "output[0] = input[0];";
  const auto bytes = core::encode_tuning(config);

  Rng rng{0xB17F};
  for (int trial = 0; trial < 500; ++trial) {
    auto corrupted = bytes;
    // Truncate or flip a few bytes.
    if (rng.bernoulli(0.5) && corrupted.size() > 1) {
      corrupted.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(corrupted.size()) - 1)));
    }
    for (int flips = 0; flips < 3 && !corrupted.empty(); ++flips) {
      const auto at = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(corrupted.size()) - 1));
      corrupted[at] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    }
    // Must return (ok or error), never crash; decoded strings stay bounded.
    auto decoded = core::decode_tuning(corrupted);
    if (decoded.is_ok() && decoded.value().filter_source) {
      EXPECT_LE(decoded.value().filter_source->size(), corrupted.size());
    }
  }
}

TEST(FuzzCodec, HistoryTraceDecoderRejectsBitFlips) {
  Rng rng{0x7ACE};
  std::vector<std::uint8_t> bytes;
  {
    // A hand-built valid trace: magic + one series.
    net::ByteWriter w;
    w.u32(0x44504854);
    w.u32(1);
    w.u32(0);
    w.u32(2);
    w.i64(1'000'000);
    w.f64(1.5);
    w.i64(2'000'000);
    w.f64(2.5);
    bytes = w.take();
  }
  ASSERT_TRUE(core::HistoryRecorder::import_trace(bytes).is_ok());
  for (int trial = 0; trial < 500; ++trial) {
    auto corrupted = bytes;
    if (rng.bernoulli(0.5)) {
      corrupted.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(corrupted.size()))));
    }
    if (!corrupted.empty()) {
      const auto at = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(corrupted.size()) - 1));
      corrupted[at] ^= 0x5A;
    }
    (void)core::HistoryRecorder::import_trace(corrupted);
  }
}

// Builds a well-formed KECho event frame: fixed header + payload header +
// optionally one trace-context trailer.
net::MessagePtr event_frame(std::size_t payload_bytes,
                            const net::TraceContext* trace) {
  net::ByteWriter w;
  w.u32(3);             // channel
  w.u32(7);             // source
  w.i64(1'000'000);     // submit time
  w.u32(static_cast<std::uint32_t>(payload_bytes));
  for (std::size_t i = 0; i < payload_bytes; ++i) {
    w.u8(static_cast<std::uint8_t>(i));
  }
  if (trace != nullptr) trace->encode(w);
  return net::make_message(w.take());
}

TEST(FuzzTraceContext, FrameDecoderHandlesEveryTruncation) {
  net::TraceContext ctx;
  ctx.trace_id = (7ull << 32) | 42;
  ctx.origin = 7;
  ctx.publish_ns = 1'000'000;
  ctx.prev_hop_ns = 1'000'000;
  const net::MessagePtr full = event_frame(24, &ctx);

  for (std::size_t len = 0; len <= full->header.size(); ++len) {
    auto truncated = std::make_shared<net::Message>();
    truncated->header.assign(full->header.begin(),
                             full->header.begin() + static_cast<long>(len));
    kecho::Event event;
    const bool ok = kecho::decode_event_frame(truncated, event);
    // Exactly two prefixes are valid: payload with no trailer, and the
    // full frame. Everything between is a truncated trailer → reject.
    const std::size_t payload_end = 20 + 24;
    if (len == payload_end) {
      EXPECT_TRUE(ok);
      EXPECT_EQ(event.trace.trace_id, 0u);  // no context decoded
    } else if (len == full->header.size()) {
      EXPECT_TRUE(ok);
      EXPECT_EQ(event.trace.trace_id, ctx.trace_id);
      EXPECT_EQ(event.trace.origin, ctx.origin);
    } else {
      EXPECT_FALSE(ok) << "accepted truncation at " << len;
    }
  }
}

TEST(FuzzTraceContext, BadMagicByteRejectsTrailer) {
  net::TraceContext ctx;
  ctx.trace_id = 99;
  const net::MessagePtr frame = event_frame(8, &ctx);
  auto mangled = std::make_shared<net::Message>();
  mangled->header = frame->header;
  // The trailer starts right after the 8-byte payload header.
  mangled->header[20 + 8] ^= 0xFF;
  kecho::Event event;
  EXPECT_FALSE(kecho::decode_event_frame(mangled, event));
}

TEST(FuzzTraceContext, FrameBitFlipsNeverCrash) {
  Rng rng{0x7C7C};
  net::TraceContext ctx;
  ctx.trace_id = (3ull << 32) | 1;
  ctx.origin = 3;
  const net::MessagePtr base = event_frame(40, &ctx);
  for (int trial = 0; trial < 2000; ++trial) {
    auto corrupted = std::make_shared<net::Message>();
    corrupted->header = base->header;
    if (rng.bernoulli(0.5)) {
      corrupted->header.resize(static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(corrupted->header.size()))));
    }
    for (int flips = 0; flips < 3 && !corrupted->header.empty(); ++flips) {
      const auto at = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(corrupted->header.size()) - 1));
      corrupted->header[at] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    }
    kecho::Event event;
    if (kecho::decode_event_frame(corrupted, event)) {
      // Whatever decodes must stay inside the frame.
      EXPECT_LE(event.payload_offset + event.payload_bytes,
                corrupted->header.size());
      (void)event.payload_header();
    }
  }
}

net::MonitorBatch sample_batch(std::size_t entries, std::uint8_t flags) {
  net::MonitorBatch batch;
  batch.flags = flags;
  for (std::size_t i = 0; i < entries; ++i) {
    batch.entries.push_back(net::MonitorBatch::Entry{
        static_cast<std::uint32_t>(i), 0.5 + static_cast<double>(i),
        static_cast<std::int64_t>(1'000'000 * (i + 1))});
  }
  return batch;
}

TEST(FuzzMonitorBatch, RoundTripPreservesEveryEntry) {
  const net::MonitorBatch batch =
      sample_batch(13, net::MonitorBatch::kFlagKeyframe);
  net::ByteWriter w;
  batch.encode(w);
  EXPECT_EQ(w.size(), batch.encoded_bytes());

  net::ByteReader r{w.bytes()};
  net::MonitorBatch decoded;
  ASSERT_TRUE(net::MonitorBatch::decode(r, decoded));
  EXPECT_TRUE(decoded.keyframe());
  ASSERT_EQ(decoded.entries.size(), batch.entries.size());
  for (std::size_t i = 0; i < batch.entries.size(); ++i) {
    EXPECT_EQ(decoded.entries[i].id, batch.entries[i].id);
    EXPECT_DOUBLE_EQ(decoded.entries[i].value, batch.entries[i].value);
    EXPECT_EQ(decoded.entries[i].sampled_ns, batch.entries[i].sampled_ns);
  }
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(FuzzMonitorBatch, EveryTruncationIsRejected) {
  net::ByteWriter w;
  sample_batch(5, 0).encode(w);
  const std::vector<std::uint8_t> full = w.bytes();
  for (std::size_t len = 0; len < full.size(); ++len) {
    net::ByteReader r{std::span<const std::uint8_t>{full.data(), len}};
    net::MonitorBatch out;
    EXPECT_FALSE(net::MonitorBatch::decode(r, out))
        << "accepted truncation at " << len;
  }
}

TEST(FuzzMonitorBatch, RejectsUnknownVersionAndReservedZero) {
  net::ByteWriter w;
  sample_batch(2, 0).encode(w);
  for (const std::uint8_t version :
       {std::uint8_t{0}, std::uint8_t{net::MonitorBatch::kVersion + 1},
        std::uint8_t{0xFF}}) {
    std::vector<std::uint8_t> bytes = w.bytes();
    bytes[0] = version;
    net::ByteReader r{bytes};
    net::MonitorBatch out;
    EXPECT_FALSE(net::MonitorBatch::decode(r, out))
        << "accepted version " << int(version);
  }
}

TEST(FuzzMonitorBatch, CorruptCountCannotOverAllocateOrCrash) {
  Rng rng{0xBA7C};
  net::ByteWriter w;
  sample_batch(8, net::MonitorBatch::kFlagKeyframe).encode(w);
  const std::vector<std::uint8_t> base = w.bytes();
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> corrupted = base;
    if (rng.bernoulli(0.5)) {
      corrupted.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(corrupted.size()))));
    }
    for (int flips = 0; flips < 4 && !corrupted.empty(); ++flips) {
      const auto at = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(corrupted.size()) - 1));
      corrupted[at] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    }
    net::ByteReader r{corrupted};
    net::MonitorBatch out;
    if (net::MonitorBatch::decode(r, out)) {
      // Whatever decodes must have fit inside the buffer.
      EXPECT_LE(out.encoded_bytes(), corrupted.size());
    }
  }
}

net::AggregateBatch sample_aggregate(std::size_t entries, std::uint8_t flags,
                                     std::size_t top) {
  net::AggregateBatch batch;
  batch.flags = flags;
  batch.tier = 1;
  batch.zone = 7;
  for (std::size_t i = 0; i < entries; ++i) {
    net::AggregateBatch::Entry entry;
    entry.id = static_cast<std::uint32_t>(i);
    entry.count = static_cast<std::uint32_t>(8 + i);
    entry.latest_ns = static_cast<std::int64_t>(1'000'000 * (i + 1));
    entry.min = 0.25 * static_cast<double>(i);
    entry.max = 4.0 + static_cast<double>(i);
    entry.sum = 10.0 * static_cast<double>(i + 1);
    for (std::size_t t = 0; t < top; ++t) {
      entry.top.push_back(net::AggregateBatch::Top{
          static_cast<std::uint32_t>(t), entry.max - static_cast<double>(t)});
    }
    batch.entries.push_back(std::move(entry));
  }
  return batch;
}

TEST(FuzzAggregateBatch, RoundTripPreservesEveryEntry) {
  const net::AggregateBatch batch =
      sample_aggregate(9, net::AggregateBatch::kKnownFlags, 3);
  net::ByteWriter w;
  batch.encode(w);
  EXPECT_EQ(w.size(), batch.encoded_bytes());

  net::ByteReader r{w.bytes()};
  net::AggregateBatch decoded;
  ASSERT_TRUE(net::AggregateBatch::decode(r, decoded));
  EXPECT_EQ(decoded.flags, batch.flags);
  EXPECT_EQ(decoded.tier, batch.tier);
  EXPECT_EQ(decoded.zone, batch.zone);
  ASSERT_EQ(decoded.entries.size(), batch.entries.size());
  for (std::size_t i = 0; i < batch.entries.size(); ++i) {
    EXPECT_EQ(decoded.entries[i], batch.entries[i]);
  }
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(FuzzAggregateBatch, EveryTruncationIsRejected) {
  net::ByteWriter w;
  sample_aggregate(4, net::AggregateBatch::kKnownFlags, 2).encode(w);
  const std::vector<std::uint8_t> full = w.bytes();
  for (std::size_t len = 0; len < full.size(); ++len) {
    net::ByteReader r{std::span<const std::uint8_t>{full.data(), len}};
    net::AggregateBatch out;
    EXPECT_FALSE(net::AggregateBatch::decode(r, out))
        << "accepted truncation at " << len;
  }
}

TEST(FuzzAggregateBatch, RejectsUnknownVersionFlagsAndOversizedTopList) {
  net::ByteWriter w;
  sample_aggregate(2, net::AggregateBatch::kFlagMean, 0).encode(w);
  for (const std::uint8_t version :
       {std::uint8_t{0}, std::uint8_t{net::AggregateBatch::kVersion + 1},
        std::uint8_t{0xFF}}) {
    std::vector<std::uint8_t> bytes = w.bytes();
    bytes[0] = version;
    net::ByteReader r{bytes};
    net::AggregateBatch out;
    EXPECT_FALSE(net::AggregateBatch::decode(r, out))
        << "accepted version " << int(version);
  }
  {
    // Reserved flag bits must be rejected, not silently ignored.
    std::vector<std::uint8_t> bytes = w.bytes();
    bytes[1] = static_cast<std::uint8_t>(net::AggregateBatch::kKnownFlags + 1);
    net::ByteReader r{bytes};
    net::AggregateBatch out;
    EXPECT_FALSE(net::AggregateBatch::decode(r, out));
  }
  {
    // A top_count past kMaxTopK bounds what a reader will reserve. The
    // top-count byte of entry 0 sits right after the fixed fields.
    net::ByteWriter wt;
    sample_aggregate(1, net::AggregateBatch::kFlagTopK, 1).encode(wt);
    std::vector<std::uint8_t> bytes = wt.bytes();
    const std::size_t top_at = net::AggregateBatch::kHeaderBytes +
                               net::AggregateBatch::kEntryFixedBytes;
    bytes[top_at] = net::AggregateBatch::kMaxTopK + 1;
    net::ByteReader r{bytes};
    net::AggregateBatch out;
    EXPECT_FALSE(net::AggregateBatch::decode(r, out));
  }
  {
    // A zero-origin entry is nonsense (count >= 1 by construction).
    net::ByteWriter wz;
    sample_aggregate(1, 0, 0).encode(wz);
    std::vector<std::uint8_t> bytes = wz.bytes();
    const std::size_t count_at = net::AggregateBatch::kHeaderBytes + 4;
    bytes[count_at] = bytes[count_at + 1] = bytes[count_at + 2] =
        bytes[count_at + 3] = 0;
    net::ByteReader r{bytes};
    net::AggregateBatch out;
    EXPECT_FALSE(net::AggregateBatch::decode(r, out));
  }
}

TEST(FuzzAggregateBatch, CorruptCountCannotOverAllocateOrCrash) {
  Rng rng{0xA66B};
  net::ByteWriter w;
  sample_aggregate(6, net::AggregateBatch::kKnownFlags, 2).encode(w);
  const std::vector<std::uint8_t> base = w.bytes();
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> corrupted = base;
    if (rng.bernoulli(0.5)) {
      corrupted.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(corrupted.size()))));
    }
    for (int flips = 0; flips < 4 && !corrupted.empty(); ++flips) {
      const auto at = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(corrupted.size()) - 1));
      corrupted[at] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    }
    net::ByteReader r{corrupted};
    net::AggregateBatch out;
    if (net::AggregateBatch::decode(r, out)) {
      // Whatever decodes must have fit inside the buffer.
      EXPECT_LE(out.encoded_bytes(), corrupted.size());
    }
  }
}

// --- registry wire protocol -------------------------------------------------
//
// The directory server is the one component every node talks to, so its
// request parser faces the whole cluster: truncations, corrupted counts,
// unknown ops and replica-protocol frames aimed at an unreplicated server
// must all be counted drops, never crashes or phantom registrations.

/// A live single-server registry to aim frames at (2 nodes, no monitors).
struct RegistryFuzzRig {
  sim::Engine engine;
  core::Cluster cluster;
  RegistryFuzzRig() : cluster(engine, config()) {}
  static core::ClusterConfig config() {
    core::ClusterConfig config;
    config.node_count = 2;
    config.dproc_nodes = std::vector<std::size_t>{};
    return config;
  }
  kecho::RegistryServer& registry() { return cluster.registry(); }
  void pump() { engine.run_until(engine.now() + seconds(0.1)); }
};

TEST(FuzzRegistry, TruncatedJoinRequestIsCountedMalformed) {
  RegistryFuzzRig rig;
  const net::MessagePtr full =
      kecho::encode_join_request("fuzzchan", kecho::Member{1, 7788});
  for (std::size_t len = 0; len < full->header.size(); ++len) {
    auto truncated = std::make_shared<net::Message>();
    truncated->header.assign(full->header.begin(),
                             full->header.begin() + static_cast<long>(len));
    rig.registry().handle_request(1, 7788, truncated);
  }
  // Every proper prefix is malformed; none may register anything.
  EXPECT_EQ(rig.registry().stats().drops_malformed, full->header.size());
  EXPECT_EQ(rig.registry().stats().joins, 0u);
  EXPECT_TRUE(rig.registry().channel_names().empty());
  // The intact frame still works after the abuse.
  rig.registry().handle_request(1, 7788, full);
  rig.pump();
  EXPECT_EQ(rig.registry().stats().joins, 1u);
  EXPECT_EQ(rig.registry().channel_members("fuzzchan").size(), 1u);
}

TEST(FuzzRegistry, JoinResponseDecoderRejectsTruncationAndBadCount) {
  // A well-formed response body (as the client sees it, op byte stripped).
  net::ByteWriter w;
  w.str("fuzzchan");
  w.u32(5);  // channel id
  w.u32(2);  // member count
  w.u32(10);
  w.u16(7788);
  w.u32(11);
  w.u16(7788);
  const std::vector<std::uint8_t> full = w.take();

  for (std::size_t len = 0; len < full.size(); ++len) {
    net::ByteReader r{std::span<const std::uint8_t>{full.data(), len}};
    kecho::JoinResponse out;
    EXPECT_FALSE(kecho::decode_join_response(r, false, out))
        << "accepted truncation at " << len;
  }
  {
    net::ByteReader r{full};
    kecho::JoinResponse out;
    ASSERT_TRUE(kecho::decode_join_response(r, false, out));
    EXPECT_EQ(out.id, 5u);
    ASSERT_EQ(out.members.size(), 2u);
    EXPECT_EQ(out.members[1].node, 11u);
  }
  {
    // A corrupted member count far past the bytes present must be rejected
    // up front — not reserve gigabytes or decode a partial list. The count
    // sits right after the name (4 + 8 bytes) and the id (4 bytes).
    std::vector<std::uint8_t> corrupted = full;
    const std::size_t count_at = 4 + 8 + 4;
    corrupted[count_at] = 0xFF;
    corrupted[count_at + 1] = 0xFF;
    corrupted[count_at + 2] = 0xFF;
    corrupted[count_at + 3] = 0xFF;
    net::ByteReader r{corrupted};
    kecho::JoinResponse out;
    EXPECT_FALSE(kecho::decode_join_response(r, false, out));
    EXPECT_TRUE(out.members.empty());
  }
}

TEST(FuzzRegistry, UnknownAndReplicaOpsDropAtUnreplicatedServer) {
  RegistryFuzzRig rig;
  std::uint64_t expected = 0;
  // Genuinely unknown opcodes.
  for (const std::uint8_t op : {std::uint8_t{16}, std::uint8_t{99},
                                std::uint8_t{0xFF}, std::uint8_t{0}}) {
    net::ByteWriter w;
    w.u8(op);
    w.u32(1);
    rig.registry().handle_request(1, 7788, net::make_message(w.take()));
    ++expected;
    EXPECT_EQ(rig.registry().stats().drops_unknown_op, expected);
  }
  // Replica-protocol frames (heartbeat, sync, forward...) aimed at a server
  // with replication off are protocol violations, not crashes.
  for (const kecho::RegistryOp op :
       {kecho::RegistryOp::kReplicaHeartbeat, kecho::RegistryOp::kRegistrySync,
        kecho::RegistryOp::kSyncRequest, kecho::RegistryOp::kSyncDone,
        kecho::RegistryOp::kForward}) {
    net::ByteWriter w;
    w.u8(static_cast<std::uint8_t>(op));
    w.u32(0);
    w.u32(7);
    rig.registry().handle_request(1, 7788, net::make_message(w.take()));
    ++expected;
    EXPECT_EQ(rig.registry().stats().drops_unknown_op, expected);
  }
  EXPECT_TRUE(rig.registry().channel_names().empty());
}

TEST(FuzzRegistry, SyncFrameBitFlipsNeverCrashOrOverAllocate) {
  net::RegistrySync sync;
  sync.table_version = 42;
  sync.next_id = 7;
  sync.channel_id = 3;
  sync.name = "fuzzchan";
  for (std::uint32_t i = 0; i < 6; ++i) {
    sync.members.push_back(net::RegistrySync::Member{i + 1, 7788});
  }
  net::ByteWriter w;
  sync.encode(w);
  const std::vector<std::uint8_t> base = w.take();
  {
    net::ByteReader r{base};
    net::RegistrySync out;
    ASSERT_TRUE(net::RegistrySync::decode(r, out));
    EXPECT_EQ(out.members.size(), 6u);
  }
  for (std::size_t len = 0; len < base.size(); ++len) {
    net::ByteReader r{std::span<const std::uint8_t>{base.data(), len}};
    net::RegistrySync out;
    EXPECT_FALSE(net::RegistrySync::decode(r, out))
        << "accepted truncation at " << len;
  }
  Rng rng{0x5FA6};
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> corrupted = base;
    if (rng.bernoulli(0.5)) {
      corrupted.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(corrupted.size()))));
    }
    for (int flips = 0; flips < 4 && !corrupted.empty(); ++flips) {
      const auto at = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(corrupted.size()) - 1));
      corrupted[at] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    }
    net::ByteReader r{corrupted};
    net::RegistrySync out;
    if (net::RegistrySync::decode(r, out)) {
      // A decoded member list must have fit inside the buffer.
      EXPECT_LE(out.members.size() * net::RegistrySync::kMemberBytes,
                corrupted.size());
      EXPECT_LE(out.name.size(), corrupted.size());
    }
  }
}

TEST(FuzzRegistry, CacheInvalidateBitFlipsNeverCrash) {
  net::CacheInvalidate invalidate;
  invalidate.table_version = 17;
  invalidate.name = "fuzzchan";
  net::ByteWriter w;
  invalidate.encode(w);
  const std::vector<std::uint8_t> base = w.take();
  for (std::size_t len = 0; len < base.size(); ++len) {
    net::ByteReader r{std::span<const std::uint8_t>{base.data(), len}};
    net::CacheInvalidate out;
    EXPECT_FALSE(net::CacheInvalidate::decode(r, out))
        << "accepted truncation at " << len;
  }
  Rng rng{0xCA5E};
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<std::uint8_t> corrupted = base;
    if (rng.bernoulli(0.5)) {
      corrupted.resize(static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(corrupted.size()))));
    }
    for (int flips = 0; flips < 3 && !corrupted.empty(); ++flips) {
      const auto at = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(corrupted.size()) - 1));
      corrupted[at] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
    }
    net::ByteReader r{corrupted};
    net::CacheInvalidate out;
    if (net::CacheInvalidate::decode(r, out)) {
      EXPECT_LE(out.name.size(), corrupted.size());
    }
  }
}

TEST(FuzzRegistry, ReplicatedServerSurvivesCorruptedReplicaTraffic) {
  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 4;
  config.registry.enabled = true;
  config.dproc_nodes = std::vector<std::size_t>{};
  core::Cluster cluster(engine, config);
  engine.run_until(SimTime::zero() + seconds(1.0));

  kecho::RegistryServer& leader = cluster.registry_replica(0);
  Rng rng{0xF0D6};
  // Corrupted heartbeats, syncs, sync requests, done markers and forwards,
  // from a peer address: parsed or dropped, never fatal, and the leadership
  // state stays sane throughout.
  const std::uint8_t ops[] = {
      static_cast<std::uint8_t>(kecho::RegistryOp::kReplicaHeartbeat),
      static_cast<std::uint8_t>(kecho::RegistryOp::kRegistrySync),
      static_cast<std::uint8_t>(kecho::RegistryOp::kSyncRequest),
      static_cast<std::uint8_t>(kecho::RegistryOp::kSyncDone),
      static_cast<std::uint8_t>(kecho::RegistryOp::kForward),
      static_cast<std::uint8_t>(kecho::RegistryOp::kCacheInvalidate)};
  for (int trial = 0; trial < 2000; ++trial) {
    net::ByteWriter w;
    w.u8(ops[rng.uniform_int(0, std::size(ops) - 1)]);
    const int body = static_cast<int>(rng.uniform_int(0, 40));
    for (int i = 0; i < body; ++i) {
      w.u8(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    }
    leader.handle_request(2, kecho::RegistryServer::kDefaultPort,
                          net::make_message(w.take()));
  }
  engine.run_until(engine.now() + seconds(2.0));
  // The replica set still functions: replica 0 leads (or a successor does),
  // and a real join still completes end to end.
  ASSERT_NE(cluster.registry_leader(), nullptr);
  cluster.node(3).kecho->join("after-the-storm");
  engine.run_until(engine.now() + seconds(2.0));
  EXPECT_GE(cluster.registry_leader()->channel_members("after-the-storm")
                .size(),
            1u);
}

TEST(FuzzFlight, ParseEventNeverCrashesAndRoundTrips) {
  // Field-wise mutation of a valid line: each position draws from a pool
  // mixing valid and hostile values, so both accept and reject paths run.
  Rng rng{0xF119};
  static const char* kTags[] = {"flight", "incident", "fl", ""};
  static const char* kTs[] = {"5", "-3", "99999999999999999999", "x", "5.5"};
  static const char* kSev[] = {"warn", "info", "debug", "error", "fatal", "3"};
  static const char* kSub[] = {"dmon", "kecho", "fault", "smartptr", "tcp"};
  static const char* kCode[] = {"201:peer_stale", "1:member_join", "42",
                                ":", "65536:huge", "-1:neg", "x:y"};
  static const char* kArg[] = {"0", "3", "18446744073709551615", "-1", "z"};
  static const char* kTail[] = {"", "", "trace=0xabc", "trace=", "trace=zz",
                                "extra stuff"};
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 4000; ++trial) {
    std::string line = kTags[rng.uniform_int(0, std::size(kTags) - 1)];
    line += ' ';
    line += kTs[rng.uniform_int(0, std::size(kTs) - 1)];
    line += ' ';
    line += kSev[rng.uniform_int(0, std::size(kSev) - 1)];
    line += ' ';
    line += kSub[rng.uniform_int(0, std::size(kSub) - 1)];
    line += ' ';
    line += kCode[rng.uniform_int(0, std::size(kCode) - 1)];
    const int args = static_cast<int>(rng.uniform_int(0, 5));
    for (int i = 0; i < args; ++i) {
      line += ' ';
      line += kArg[rng.uniform_int(0, std::size(kArg) - 1)];
    }
    line += ' ';
    line += kTail[rng.uniform_int(0, std::size(kTail) - 1)];
    telemetry::FlightEvent event;
    if (telemetry::parse_event(line, event)) {
      ++parsed;
      // Anything accepted must survive a render/parse round trip intact.
      telemetry::FlightEvent again;
      ASSERT_TRUE(
          telemetry::parse_event(telemetry::render_event(event), again));
      EXPECT_EQ(telemetry::render_event(again),
                telemetry::render_event(event));
    } else {
      ++rejected;
    }
  }
  EXPECT_GT(parsed, 0);
  EXPECT_GT(rejected, 0);
}

TEST(FuzzFlight, ParseBundlesNeverCrashes) {
  Rng rng{0xB0DL};
  static const char* kLines[] = {
      "incident 1 node 0 node0 opened_ns 5 trigger t score 80 symptoms 1",
      "incident x node y",
      "history kecho/evictions 1 0 2",
      "history",
      "flight 5 warn dmon 201:peer_stale 3 4200 0 0",
      "flight garbage",
      "end",
      "",
      "prose between bundles",
  };
  for (int trial = 0; trial < 3000; ++trial) {
    std::string dump;
    const int lines = static_cast<int>(rng.uniform_int(0, 10));
    for (int i = 0; i < lines; ++i) {
      dump += kLines[rng.uniform_int(0, std::size(kLines) - 1)];
      dump += '\n';
    }
    std::vector<core::IncidentBundle> bundles;
    const bool ok = core::parse_bundles(dump, bundles);
    if (ok) {
      // Whatever parsed must re-render and re-parse to the same bundles.
      std::vector<core::IncidentBundle> again;
      ASSERT_TRUE(core::parse_bundles(core::render_bundles(bundles), again));
      EXPECT_EQ(again.size(), bundles.size());
    }
  }
}

TEST(FuzzFlight, ParseBundlesRandomBytesNeverCrash) {
  Rng rng{0xB0FF};
  for (int trial = 0; trial < 1000; ++trial) {
    std::string dump;
    const int length = static_cast<int>(rng.uniform_int(0, 400));
    for (int i = 0; i < length; ++i) {
      dump += static_cast<char>(rng.uniform_int(1, 127));
    }
    std::vector<core::IncidentBundle> bundles;
    (void)core::parse_bundles(dump, bundles);
    telemetry::FlightEvent event;
    (void)telemetry::parse_event(dump, event);
  }
}

// --- differential VM dispatch fuzz ------------------------------------------
//
// The threaded and switch interpreters are one handler body compiled twice
// (vm_dispatch.inc); any divergence is a bug in the dispatch plumbing. Every
// generated program runs through both tiers and must agree byte-for-byte on
// status (code and message), outputs, return value, and fuel — including the
// error paths (division by zero, fuel exhaustion).

void expect_tiers_agree(const ecode::Bytecode& code,
                        std::span<const ecode::Sample> input,
                        ecode::VmLimits limits, ecode::SketchHost* host_switch,
                        ecode::SketchHost* host_threaded,
                        const std::string& source) {
  ecode::Vm vm_switch{limits};
  ecode::Vm vm_threaded{limits};
  vm_switch.set_dispatch(ecode::VmDispatch::kSwitch);
  vm_threaded.set_dispatch(ecode::VmDispatch::kThreaded);
  vm_switch.set_sketch_host(host_switch);
  vm_threaded.set_sketch_host(host_threaded);
  ecode::FilterResult a;
  ecode::FilterResult b;
  const Status sa = vm_switch.run(code, input, a);
  const Status sb = vm_threaded.run(code, input, b);
  ASSERT_EQ(sa.code(), sb.code()) << source << "\nswitch: " << sa.to_string()
                                  << "\nthreaded: " << sb.to_string();
  EXPECT_EQ(sa.message(), sb.message()) << source;
  if (sa && sb) {
    EXPECT_EQ(a.outputs, b.outputs) << source;
    ASSERT_EQ(a.return_value.has_value(), b.return_value.has_value()) << source;
    if (a.return_value) {
      EXPECT_DOUBLE_EQ(*a.return_value, *b.return_value) << source;
    }
    EXPECT_EQ(a.instructions_executed, b.instructions_executed) << source;
  }
}

std::string random_vm_program(Rng& rng, std::size_t input_count) {
  std::ostringstream source;
  source << "int a = " << rng.uniform_int(-50, 50) << ";\n"
         << "double b = " << rng.uniform_int(0, 9) << ".5;\n"
         << "int out = 0;\n";
  const int stmts = static_cast<int>(rng.uniform_int(1, 12));
  for (int stmt = 0; stmt < stmts; ++stmt) {
    switch (rng.uniform_int(0, 9)) {
      case 0:
        source << "a = a + " << rng.uniform_int(-9, 9) << " * "
               << rng.uniform_int(1, 9) << ";\n";
        break;
      case 1:
        source << "b = b * 1.25 + input["
               << rng.uniform_int(0, static_cast<std::int64_t>(input_count) - 1)
               << "].value;\n";
        break;
      case 2:
        source << "a = a " << (rng.bernoulli(0.5) ? "<<" : ">>") << " "
               << rng.uniform_int(0, 63) << ";\n";
        break;
      case 3:
        // Sometimes divides by zero: the error path must also agree.
        source << "a = " << rng.uniform_int(-99, 99) << " / (a % "
               << rng.uniform_int(2, 5) << ");\n";
        break;
      case 4:
        source << "for (int i = 0; i < " << rng.uniform_int(0, 40)
               << "; ++i) a = a + i;\n";
        break;
      case 5:
        source << "if (b > " << rng.uniform_int(0, 20)
               << ") { a = a + 1; } else { b = b - 0.5; }\n";
        break;
      case 6:
        source << "output[out] = input["
               << rng.uniform_int(0, static_cast<std::int64_t>(input_count) - 1)
               << "]; out = out + 1;\n";
        break;
      case 7:
        source << "b = b + max(abs(a), min(b, "
               << rng.uniform_int(0, 9) << ".0)) + sqrt(abs(b));\n";
        break;
      case 8:
        source << "a = a " << (rng.bernoulli(0.5) ? "&" : "|") << " "
               << rng.uniform_int(0, 255) << ";\n";
        break;
      case 9:
        source << "a = (b != 0.0) ? a ^ " << rng.uniform_int(0, 127)
               << " : ~a;\n";
        break;
    }
  }
  if (rng.bernoulli(0.8)) source << "return a + b;\n";
  return source.str();
}

TEST(FuzzVmDispatch, ThreadedAndSwitchTiersAgreeOnRandomPrograms) {
  if (!ecode::Vm::threaded_available()) {
    GTEST_SKIP() << "build has no threaded dispatch tier";
  }
  Rng rng{0xD1FF};
  std::vector<ecode::Sample> input;
  for (int i = 0; i < 4; ++i) {
    input.push_back(ecode::Sample{i, rng.uniform(-100.0, 100.0),
                                  rng.uniform(0.0, 50.0), 1'000 * (i + 1)});
  }
  int error_paths = 0;
  for (int trial = 0; trial < 400; ++trial) {
    const std::string source = random_vm_program(rng, input.size());
    auto filter = ecode::Filter::compile(source);
    ASSERT_TRUE(filter.is_ok()) << filter.status().to_string() << "\n"
                                << source;
    // Tight limits on some trials force the fuel-exhaustion path through
    // both tiers; count errors to prove both paths actually run.
    ecode::VmLimits limits;
    if (trial % 5 == 0) limits.max_instructions = 40;
    ecode::Vm probe{limits};
    probe.set_dispatch(ecode::VmDispatch::kSwitch);
    ecode::FilterResult scratch;
    if (!probe.run(filter.value().bytecode(), input, scratch)) ++error_paths;
    expect_tiers_agree(filter.value().bytecode(), input, limits, nullptr,
                       nullptr, source);
  }
  EXPECT_GT(error_paths, 0);  // the harness exercises the error paths too
}

TEST(FuzzVmDispatch, TiersAgreeOnSketchBuiltins) {
  if (!ecode::Vm::threaded_available()) {
    GTEST_SKIP() << "build has no threaded dispatch tier";
  }
  // Two structurally identical sketch stacks, one per tier, so skmerge's
  // mutation cannot leak between the runs under comparison.
  auto build_stack = [](core::TopKSketch& primary, core::TopKSketch& aux) {
    Rng feed{0x5EED};
    for (int i = 0; i < 4'000; ++i) {
      primary.update(feed.uniform_int(0, 300), 1.0);
      aux.update(feed.uniform_int(0, 300), 2.0);
    }
    primary.refresh_top(8);
  };
  Rng rng{0x5ED1};
  for (int trial = 0; trial < 100; ++trial) {
    core::TopKSketch primary_a, aux_a, primary_b, aux_b;
    build_stack(primary_a, aux_a);
    build_stack(primary_b, aux_b);
    core::FilterSketchBridge host_a{primary_a};
    host_a.add_aux(aux_a);
    core::FilterSketchBridge host_b{primary_b};
    host_b.add_aux(aux_b);

    std::ostringstream source;
    source << "double acc = 0.0;\n";
    const int stmts = static_cast<int>(rng.uniform_int(1, 6));
    for (int stmt = 0; stmt < stmts; ++stmt) {
      switch (rng.uniform_int(0, 3)) {
        case 0:
          source << "acc = acc + topk(" << rng.uniform_int(0, 9) << ");\n";
          break;
        case 1:
          source << "acc = acc + topkid(" << rng.uniform_int(0, 9) << ");\n";
          break;
        case 2:
          source << "acc = acc + cmlookup(" << rng.uniform_int(0, 400)
                 << ");\n";
          break;
        case 3:
          source << "acc = acc + skmerge(" << rng.uniform_int(0, 2) << ");\n";
          break;
      }
    }
    source << "return acc;\n";
    ecode::CompileEnv env;
    env.sketch_builtins = true;
    auto filter = ecode::Filter::compile(source.str(), env);
    ASSERT_TRUE(filter.is_ok()) << filter.status().to_string() << "\n"
                                << source.str();
    expect_tiers_agree(filter.value().bytecode(), {}, ecode::VmLimits{},
                       &host_a, &host_b, source.str());
  }
}

TEST(FuzzTraceContext, RawDecodeNeverReadsPastBuffer) {
  Rng rng{0x7CAB};
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(
        rng.uniform_int(0, 2 * net::TraceContext::kWireBytes)));
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    // Half the trials lead with the real magic so the body path runs too.
    if (!bytes.empty() && rng.bernoulli(0.5)) {
      bytes[0] = net::TraceContext::kMagic;
    }
    net::ByteReader r{bytes};
    net::TraceContext ctx;
    const bool ok = net::TraceContext::decode(r, ctx);
    if (ok) {
      EXPECT_GE(bytes.size(), net::TraceContext::kWireBytes);
    }
  }
}

}  // namespace
}  // namespace dproc
