// Tests for the extension subsystems: battery/power monitoring, the
// history recorder, cluster aggregation, the QoS manager, and fault
// injection (the paper's peer-to-peer fault-tolerance claim).
#include <gtest/gtest.h>

#include "dproc/core/aggregate.hpp"
#include "dproc/core/cluster.hpp"
#include "dproc/core/history.hpp"
#include "dproc/host/battery.hpp"
#include "dproc/qos/manager.hpp"
#include "dproc/workload/linpack.hpp"

namespace dproc {
namespace {

// --- battery ---------------------------------------------------------------

class BatteryTest : public ::testing::Test {
 protected:
  BatteryTest() {
    core::ClusterConfig config;
    config.node_count = 2;
    config.dproc_nodes.emplace();
    cluster = std::make_unique<core::Cluster>(engine, config);
    battery = std::make_unique<host::Battery>(engine, cluster->host(0).cpu(),
                                              cluster->nic(0));
  }
  void run_for(double sec) { engine.run_until(engine.now() + seconds(sec)); }

  sim::Engine engine;
  std::unique_ptr<core::Cluster> cluster;
  std::unique_ptr<host::Battery> battery;
};

TEST_F(BatteryTest, IdleDrainIsBaselineOnly) {
  run_for(100.0);
  const double expected = 100.0 * battery->config().idle_watts;
  EXPECT_NEAR(battery->remaining_joules(),
              battery->config().capacity_joules - expected, 1.0);
  EXPECT_NEAR(battery->watts(), battery->config().idle_watts, 0.01);
}

TEST_F(BatteryTest, CpuLoadIncreasesDrain) {
  run_for(50.0);
  const double idle_level = battery->level();
  workload::LinpackTask burn{cluster->host(0)};
  run_for(50.0);
  const double active_drop = idle_level - battery->level();
  const double expected_joules =
      50.0 * (battery->config().idle_watts + battery->config().cpu_active_watts);
  EXPECT_NEAR(active_drop * battery->config().capacity_joules,
              expected_joules, expected_joules * 0.05);
}

TEST_F(BatteryTest, NetworkTrafficDrains) {
  run_for(10.0);
  const double before = battery->remaining_joules();
  // Push ~12 MB through the radio.
  for (int i = 0; i < 250; ++i) {
    cluster->nic(0).send_datagram(1, 99, net::make_message({}, 50'000));
  }
  run_for(10.0);
  const double spent = before - battery->remaining_joules();
  const double radio = 12.5e6 * battery->config().nanojoules_per_byte * 1e-9;
  EXPECT_GT(spent, 10.0 * battery->config().idle_watts + radio * 0.8);
}

TEST_F(BatteryTest, LevelNeverNegative) {
  host::BatteryConfig tiny;
  tiny.capacity_joules = 5.0;
  host::Battery small{engine, cluster->host(0).cpu(), cluster->nic(0), tiny};
  run_for(100.0);
  EXPECT_EQ(small.remaining_joules(), 0.0);
  EXPECT_TRUE(small.depleted());
  EXPECT_EQ(small.level(), 0.0);
}

TEST(BatteryMonitorTest, PublishesPowerMetricsClusterWide) {
  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 2;
  core::Cluster cluster{engine, config};
  // The mobile node (1) registers the power module dynamically — the
  // paper's §2.1 extension example.
  auto battery = std::make_unique<host::Battery>(engine, cluster.host(1).cpu(),
                                                 cluster.nic(1));
  cluster.dmon(1)->register_module(
      std::make_unique<core::BatteryMonitor>(*battery));
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(5.0));

  // Node 0 never registered a power module but still renders the peer's
  // metric: ids are registered symmetrically... here they are not, so the
  // value travels but node 0 lacks the procfs file. Check via the API:
  const core::RemoteMetric* level =
      cluster.dmon(1)->remote_metric(0, "battery_level");
  (void)level;  // node 0 publishes no battery; nothing to assert there
  auto reading = cluster.procfs(1).read("/proc/power/battery_level");
  ASSERT_TRUE(reading.is_ok());
  EXPECT_GT(std::stod(reading.value()), 0.99);
  auto watts = cluster.procfs(1).read("/proc/power/watts");
  ASSERT_TRUE(watts.is_ok());
  EXPECT_GT(std::stod(watts.value()), 0.0);
}

// --- history recorder --------------------------------------------------------

class HistoryTest : public ::testing::Test {
 protected:
  HistoryTest() {
    core::ClusterConfig config;
    config.node_count = 2;
    cluster = std::make_unique<core::Cluster>(engine, config);
    recorder = std::make_unique<core::HistoryRecorder>(
        *cluster->dmon(0), cluster->procfs(0), 16);
    cluster->start_dproc();
  }
  void run_for(double sec) { engine.run_until(engine.now() + seconds(sec)); }

  sim::Engine engine;
  std::unique_ptr<core::Cluster> cluster;
  std::unique_ptr<core::HistoryRecorder> recorder;
};

TEST_F(HistoryTest, RecordsOneSamplePerPoll) {
  run_for(5.5);
  const auto id = cluster->dmon(0)->metric_id("freemem");
  ASSERT_TRUE(id.has_value());
  const auto history = recorder->history(*id);
  EXPECT_EQ(history.size(), 5u);
  for (std::size_t i = 1; i < history.size(); ++i) {
    EXPECT_GT(history[i].at.ns(), history[i - 1].at.ns());
  }
}

TEST_F(HistoryTest, DepthBoundsRetention) {
  run_for(30.5);
  const auto id = cluster->dmon(0)->metric_id("loadavg");
  EXPECT_EQ(recorder->history(*id).size(), 16u);  // depth cap
}

TEST_F(HistoryTest, HistoryVisibleInProcfs) {
  run_for(3.5);
  auto content = cluster->procfs(0).read("/proc/history/loadavg");
  ASSERT_TRUE(content.is_ok());
  // One "time value" line per poll.
  EXPECT_EQ(std::count(content.value().begin(), content.value().end(), '\n'),
            3);
}

TEST_F(HistoryTest, TraceExportImportRoundTrip) {
  run_for(10.5);
  const auto bytes = recorder->export_trace();
  auto imported = core::HistoryRecorder::import_trace(bytes);
  ASSERT_TRUE(imported.is_ok());
  const auto id = cluster->dmon(0)->metric_id("freemem");
  const auto original = recorder->history(*id);
  bool found = false;
  for (const auto& [metric, series] : imported.value()) {
    if (metric != *id) continue;
    found = true;
    ASSERT_EQ(series.size(), original.size());
    for (std::size_t i = 0; i < series.size(); ++i) {
      EXPECT_EQ(series[i].at.ns(), original[i].at.ns());
      EXPECT_DOUBLE_EQ(series[i].value, original[i].value);
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(HistoryTest, CorruptTraceRejected) {
  run_for(2.5);
  auto bytes = recorder->export_trace();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(core::HistoryRecorder::import_trace(bytes).is_ok());
  std::vector<std::uint8_t> garbage{1, 2, 3, 4};
  EXPECT_FALSE(core::HistoryRecorder::import_trace(garbage).is_ok());
}

// --- aggregation ------------------------------------------------------------

TEST(AggregateTest, SummarizesAcrossCluster) {
  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 4;
  core::Cluster cluster{engine, config};
  core::ClusterAggregator aggregator{*cluster.dmon(0), cluster.procfs(0)};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(3.0));

  // Two linpack threads on node 2: cluster max loadavg should reflect it.
  workload::LinpackTask a{cluster.host(2)}, b{cluster.host(2)};
  engine.run_until(SimTime{} + seconds(12.0));

  const core::AggregateView view = aggregator.aggregate("loadavg");
  EXPECT_EQ(view.nodes, 4u);  // self + three peers
  EXPECT_GT(view.max, 1.5);
  EXPECT_LT(view.min, 0.5);
  EXPECT_GT(view.mean, 0.3);
  EXPECT_LT(view.mean, 1.2);

  auto rendered = cluster.procfs(0).read("/proc/cluster/summary/loadavg");
  ASSERT_TRUE(rendered.is_ok());
  EXPECT_NE(rendered.value().find("nodes 4"), std::string::npos);
  EXPECT_NE(rendered.value().find("max"), std::string::npos);
}

TEST(AggregateTest, StalePeersExcluded) {
  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 3;
  core::Cluster cluster{engine, config};
  core::ClusterAggregator aggregator{*cluster.dmon(0), cluster.procfs(0),
                                     seconds(5.0)};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(4.0));
  EXPECT_EQ(aggregator.aggregate("freemem").nodes, 3u);

  // Kill node 2's network: its values age out of the aggregate.
  cluster.fabric().set_node_down(2, true);
  engine.run_until(engine.now() + seconds(10.0));
  EXPECT_EQ(aggregator.aggregate("freemem").nodes, 2u);
}

TEST(AggregateTest, UnknownMetricYieldsEmptyView) {
  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 2;
  core::Cluster cluster{engine, config};
  core::ClusterAggregator aggregator{*cluster.dmon(0), cluster.procfs(0)};
  EXPECT_EQ(aggregator.aggregate("bogus").nodes, 0u);
}

// --- qos ---------------------------------------------------------------------

class QosTest : public ::testing::Test {
 protected:
  QosTest() {
    core::ClusterConfig config;
    config.node_count = 1;
    config.dproc_nodes.emplace();
    cluster = std::make_unique<core::Cluster>(engine, config);
    manager = std::make_unique<qos::Manager>(cluster->host(0));
  }
  void run_for(double sec) { engine.run_until(engine.now() + seconds(sec)); }

  sim::Engine engine;
  std::unique_ptr<core::Cluster> cluster;
  std::unique_ptr<qos::Manager> manager;
};

TEST_F(QosTest, ReservationEnforcedAgainstBackgroundLoad) {
  // The reserved task would get 1/4 CPU unmanaged; it reserved 60%.
  host::Cpu& cpu = cluster->host(0).cpu();
  const host::TaskId reserved = cpu.add_compute_task("reserved");
  workload::LinpackTask bg1{cluster->host(0)}, bg2{cluster->host(0)},
      bg3{cluster->host(0)};

  qos::ReservationConfig reservation;
  reservation.cpu_share = 0.6;
  ASSERT_TRUE(manager->reserve(reserved, reservation).is_ok());
  run_for(30.0);  // let the controller converge

  const SimDuration before = cpu.task_cpu_time(reserved);
  run_for(20.0);
  const double achieved = (cpu.task_cpu_time(reserved) - before).sec() / 20.0;
  EXPECT_NEAR(achieved, 0.6, 0.06);
}

TEST_F(QosTest, AdmissionControlRejectsOversubscription) {
  host::Cpu& cpu = cluster->host(0).cpu();
  const host::TaskId a = cpu.add_compute_task("a");
  const host::TaskId b = cpu.add_compute_task("b");
  qos::ReservationConfig big;
  big.cpu_share = 0.6;
  ASSERT_TRUE(manager->reserve(a, big).is_ok());
  EXPECT_EQ(manager->reserve(b, big).code(), StatusCode::kResourceExhausted);
  EXPECT_NEAR(manager->admitted_share(), 0.6, 1e-12);
  // A smaller reservation still fits.
  qos::ReservationConfig small;
  small.cpu_share = 0.2;
  EXPECT_TRUE(manager->reserve(b, small).is_ok());
}

TEST_F(QosTest, ViolationCallbackFiresWhenInfeasible) {
  host::Cpu& cpu = cluster->host(0).cpu();
  const host::TaskId reserved = cpu.add_compute_task("reserved");
  qos::ReservationConfig reservation;
  reservation.cpu_share = 0.9;
  int violations = 0;
  reservation.on_violation = [&](double) { ++violations; };
  ASSERT_TRUE(manager->reserve(reserved, reservation).is_ok());

  // Kernel load eats ~40% of every second: 0.9 is unreachable even at
  // maximum weight.
  engine.schedule_periodic(seconds(1.0), [&] {
    cluster->host(0).cpu().consume_kernel(milliseconds(400.0));
  });
  workload::LinpackTask bg{cluster->host(0)};
  run_for(30.0);
  EXPECT_GT(violations, 5);
  const qos::ReservationStatus* status = manager->status(reserved);
  ASSERT_NE(status, nullptr);
  EXPECT_GT(status->violations, 5u);
  EXPECT_LT(status->achieved_share, 0.9);
}

TEST_F(QosTest, ReleaseRestoresBestEffort) {
  host::Cpu& cpu = cluster->host(0).cpu();
  const host::TaskId reserved = cpu.add_compute_task("reserved");
  workload::LinpackTask bg{cluster->host(0)};
  qos::ReservationConfig reservation;
  reservation.cpu_share = 0.8;
  ASSERT_TRUE(manager->reserve(reserved, reservation).is_ok());
  run_for(20.0);
  manager->release(reserved);
  EXPECT_EQ(manager->reservation_count(), 0u);
  EXPECT_DOUBLE_EQ(cpu.task_weight(reserved), 1.0);
  EXPECT_DOUBLE_EQ(manager->admitted_share(), 0.0);

  const SimDuration before = cpu.task_cpu_time(reserved);
  run_for(10.0);
  const double achieved = (cpu.task_cpu_time(reserved) - before).sec() / 10.0;
  EXPECT_NEAR(achieved, 0.5, 0.02);  // back to fair share
}

TEST_F(QosTest, VanishedTaskDropsReservation) {
  host::Cpu& cpu = cluster->host(0).cpu();
  const host::TaskId task = cpu.add_compute_task("short-lived");
  qos::ReservationConfig reservation;
  reservation.cpu_share = 0.5;
  ASSERT_TRUE(manager->reserve(task, reservation).is_ok());
  run_for(3.0);
  cpu.remove_task(task);
  run_for(3.0);
  EXPECT_EQ(manager->reservation_count(), 0u);
  EXPECT_DOUBLE_EQ(manager->admitted_share(), 0.0);
}

TEST_F(QosTest, InvalidSharesRejected) {
  host::Cpu& cpu = cluster->host(0).cpu();
  const host::TaskId task = cpu.add_compute_task("t");
  qos::ReservationConfig bad;
  bad.cpu_share = 0.0;
  EXPECT_FALSE(manager->reserve(task, bad).is_ok());
  bad.cpu_share = 1.5;
  EXPECT_FALSE(manager->reserve(task, bad).is_ok());
  EXPECT_FALSE(manager->describe().empty());
}

// --- cluster configuration validation ---------------------------------------

TEST(ClusterConfigTest, RejectsInvalidShapes) {
  sim::Engine engine;
  core::ClusterConfig zero;
  zero.node_count = 0;
  EXPECT_THROW((core::Cluster{engine, zero}), std::invalid_argument);

  core::ClusterConfig bad_split;
  bad_split.node_count = 4;
  bad_split.trunk_split = 0;
  EXPECT_THROW((core::Cluster{engine, bad_split}), std::invalid_argument);
  bad_split.trunk_split = 4;
  EXPECT_THROW((core::Cluster{engine, bad_split}), std::invalid_argument);

  core::ClusterConfig bad_dproc;
  bad_dproc.node_count = 2;
  bad_dproc.dproc_nodes = std::vector<std::size_t>{5};
  EXPECT_THROW((core::Cluster{engine, bad_dproc}), std::out_of_range);
}

TEST(ClusterConfigTest, GeneratedNamesAndCustomNamesCoexist) {
  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 3;
  config.node_names = {"alpha"};  // remaining nodes get generated names
  core::Cluster cluster{engine, config};
  EXPECT_EQ(cluster.fabric().node_name(0), "alpha");
  EXPECT_EQ(cluster.fabric().node_name(1), "node1");
  EXPECT_EQ(cluster.fabric().node_name(2), "node2");
}

TEST(ClusterConfigTest, CustomModuleFactoryReplacesStandardSet) {
  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 2;
  config.module_factory = [](core::DMon& dmon, host::Host&, net::Nic&) {
    dmon.register_module(
        std::make_unique<core::SyntheticMonitor>("only", 2));
  };
  core::Cluster cluster{engine, config};
  EXPECT_EQ(cluster.dmon(0)->metric_table().size(), 2u);
  EXPECT_FALSE(cluster.dmon(0)->metric_id("loadavg").has_value());
  EXPECT_TRUE(cluster.dmon(0)->metric_id("only0").has_value());
}

// --- history with late module registration ----------------------------------

TEST(HistoryLateModules, RecorderGrowsWithNewMetrics) {
  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 2;
  core::Cluster cluster{engine, config};
  core::HistoryRecorder recorder{*cluster.dmon(0), cluster.procfs(0), 8};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(2.5));

  // A module registered after the recorder: its samples must be captured
  // from the next poll on (without a procfs history file, documented).
  cluster.dmon(0)->register_module(std::make_unique<core::SyntheticMonitor>(
      "late", 1, [](std::size_t, SimTime now) { return now.sec(); }));
  const auto id = cluster.dmon(0)->metric_id("late0");
  ASSERT_TRUE(id.has_value());
  engine.run_until(SimTime{} + seconds(6.5));
  const auto series = recorder.history(*id);
  ASSERT_GE(series.size(), 3u);
  EXPECT_GT(series.back().value, series.front().value);
}

// --- fault tolerance ----------------------------------------------------------

TEST(FaultTolerance, MonitoringSurvivesPeerCrash) {
  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 4;
  core::Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(4.0));

  // Crash node 3. The paper's p2p design: no central collector to lose.
  cluster.fabric().set_node_down(3, true);
  engine.run_until(engine.now() + seconds(10.0));

  // Surviving pairs still exchange fresh data.
  const core::RemoteMetric* fresh = cluster.dmon(0)->remote_metric(1, "freemem");
  ASSERT_NE(fresh, nullptr);
  EXPECT_LT((engine.now() - fresh->received_at).sec(), 2.0);

  // The dead node's last values remain visible but age out.
  const core::RemoteMetric* stale = cluster.dmon(0)->remote_metric(3, "freemem");
  ASSERT_NE(stale, nullptr);
  EXPECT_GT((engine.now() - stale->received_at).sec(), 8.0);
}

TEST(FaultTolerance, RegistryCrashAfterSetupIsHarmless) {
  // The registry (on node 0) is only needed for channel discovery; once
  // membership is established, monitoring is pure peer-to-peer.
  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 4;
  core::Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(4.0));

  cluster.fabric().set_node_down(0, true);  // registry host dies
  engine.run_until(engine.now() + seconds(10.0));

  const core::RemoteMetric* fresh = cluster.dmon(1)->remote_metric(2, "freemem");
  ASSERT_NE(fresh, nullptr);
  EXPECT_LT((engine.now() - fresh->received_at).sec(), 2.0);
}

TEST(FaultTolerance, NodeRecoveryResumesUpdates) {
  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 3;
  core::Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(4.0));

  cluster.fabric().set_node_down(2, true);
  engine.run_until(engine.now() + seconds(8.0));
  cluster.fabric().set_node_down(2, false);
  engine.run_until(engine.now() + seconds(15.0));  // TCP RTO backoff recovery

  const core::RemoteMetric* metric = cluster.dmon(0)->remote_metric(2, "freemem");
  ASSERT_NE(metric, nullptr);
  EXPECT_LT((engine.now() - metric->received_at).sec(), 5.0);
}

}  // namespace
}  // namespace dproc
