// End-to-end integration: full cluster bring-up, remote /proc population,
// control-file round trips, filter deployment across the wire.
#include <gtest/gtest.h>

#include "dproc/core/cluster.hpp"
#include "dproc/workload/linpack.hpp"

#include <memory>

namespace dproc {
namespace {

core::ClusterConfig three_nodes() {
  core::ClusterConfig config;
  config.node_count = 3;
  config.node_names = {"alan", "maui", "etna"};
  return config;
}

TEST(Integration, RemoteProcEntriesPopulate) {
  sim::Engine engine;
  core::Cluster cluster{engine, three_nodes()};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(5.0));

  // Figure 1's hierarchy: every node sees every other node's metrics.
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (i == j) continue;
      const std::string path = "/proc/cluster/" +
                               cluster.fabric().node_name(
                                   static_cast<net::NodeId>(j)) +
                               "/cpu/loadavg";
      auto content = cluster.procfs(i).read(path);
      ASSERT_TRUE(content.is_ok()) << path << ": " << content.status().to_string();
      EXPECT_NE(content.value(), "no data\n") << path;
    }
  }
}

TEST(Integration, LoadOnOneNodeVisibleOnAnother) {
  sim::Engine engine;
  core::Cluster cluster{engine, three_nodes()};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(2.0));

  // Start 3 linpack threads on etna; alan should see its loadavg rise.
  std::vector<std::unique_ptr<workload::LinpackTask>> threads;
  for (int i = 0; i < 3; ++i) {
    threads.push_back(std::make_unique<workload::LinpackTask>(cluster.host(2)));
  }
  engine.run_until(SimTime{} + seconds(12.0));

  const core::RemoteMetric* loadavg =
      cluster.dmon(0)->remote_metric(2, "loadavg");
  ASSERT_NE(loadavg, nullptr);
  EXPECT_GT(loadavg->value, 2.0);
  EXPECT_LE(loadavg->value, 3.5);
}

TEST(Integration, ControlFileDeploysFilterRemotely) {
  sim::Engine engine;
  core::Cluster cluster{engine, three_nodes()};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(2.0));

  // From alan, deploy a filter on etna that only reports loadavg > 2.
  const std::string control = "filter {\n"
                              "  int i = 0;\n"
                              "  if (input[LOADAVG].value > 2) {\n"
                              "    output[i] = input[LOADAVG];\n"
                              "    i = i + 1;\n"
                              "  }\n"
                              "}\n";
  ASSERT_TRUE(cluster.procfs(0)
                  .write("/proc/cluster/etna/control", control)
                  .is_ok());
  engine.run_until(SimTime{} + seconds(4.0));
  ASSERT_TRUE(cluster.dmon(2)->tuning().has_filter());

  // With idle CPUs nothing passes the filter, so alan's view of etna's
  // loadavg stops updating while e.g. freemem (also filtered out) does too.
  const core::RemoteMetric* before =
      cluster.dmon(0)->remote_metric(2, "freemem");
  const SimTime before_time = before ? before->received_at : SimTime{};
  engine.run_until(SimTime{} + seconds(8.0));
  const core::RemoteMetric* after =
      cluster.dmon(0)->remote_metric(2, "freemem");
  const SimTime after_time = after ? after->received_at : SimTime{};
  EXPECT_EQ(before_time.ns(), after_time.ns())
      << "filter should have suppressed freemem updates";

  // Load etna: loadavg crosses the threshold and updates resume.
  workload::LinpackTask a{cluster.host(2)}, b{cluster.host(2)},
      c{cluster.host(2)};
  engine.run_until(SimTime{} + seconds(18.0));
  const core::RemoteMetric* loadavg =
      cluster.dmon(0)->remote_metric(2, "loadavg");
  ASSERT_NE(loadavg, nullptr);
  EXPECT_GT(loadavg->value, 2.0);
  EXPECT_GT(loadavg->received_at.ns(), after_time.ns());
}

TEST(Integration, BadFilterIsRejectedAndReported) {
  sim::Engine engine;
  core::Cluster cluster{engine, three_nodes()};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(2.0));

  // Metric ids are a cluster-wide convention, so a filter referencing an
  // unknown metric is rejected at the *writer* — the write itself fails and
  // the error is reported locally instead of dying silently at the remote.
  const Status write_status = cluster.procfs(0).write(
      "/proc/cluster/etna/control",
      "filter { output[0] = input[NOSUCHMETRIC]; }");
  EXPECT_FALSE(write_status.is_ok());
  EXPECT_FALSE(cluster.dmon(0)->last_control_error().empty());
  engine.run_until(SimTime{} + seconds(4.0));
  EXPECT_FALSE(cluster.dmon(2)->tuning().has_filter());
  EXPECT_TRUE(cluster.dmon(2)->last_control_error().empty())
      << "rejected request must never reach the remote";
}

TEST(Integration, RemoteOnlyErrorsSurfaceAtTheRemote) {
  // Module sets are per-node, so a bad module window cannot be checked at
  // the writer; it must travel, fail at the remote publisher, and show up
  // in that node's control-error report.
  sim::Engine engine;
  core::Cluster cluster{engine, three_nodes()};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(2.0));

  ASSERT_TRUE(cluster.procfs(0)
                  .write("/proc/cluster/etna/control", "window nosuchmod 5")
                  .is_ok());
  engine.run_until(SimTime{} + seconds(4.0));
  EXPECT_FALSE(cluster.dmon(2)->last_control_error().empty());
  EXPECT_NE(cluster.dmon(2)->last_control_error().find("nosuchmod"),
            std::string::npos);
}

TEST(Integration, MalformedControlWritesFailAtTheWriter) {
  sim::Engine engine;
  core::Cluster cluster{engine, three_nodes()};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(2.0));
  auto write = [&](const std::string& text) {
    return cluster.procfs(0).write("/proc/cluster/etna/control", text);
  };
  EXPECT_FALSE(write("period 0").is_ok());
  EXPECT_FALSE(write("period -3").is_ok());
  EXPECT_FALSE(write("period 2 5").is_ok()) << "trailing token must reject";
  EXPECT_FALSE(write("differential -10%").is_ok());
  EXPECT_FALSE(write("threshold loadavg change -5%").is_ok());
  EXPECT_FALSE(write("clear now").is_ok());
  EXPECT_FALSE(write("period nosuchmetric 2").is_ok())
      << "unknown metric names must be rejected at the writer";
  // The remote never saw any of it.
  engine.run_until(SimTime{} + seconds(4.0));
  EXPECT_TRUE(cluster.dmon(2)->last_control_error().empty());
}

TEST(Integration, PaperFigure3FilterEndToEnd) {
  // The paper's flagship filter, deployed over the wire and driven by real
  // simulated resource pressure: disk writes push DISKUSAGE up while a
  // memory hog pulls FREEMEM below 50 MB, and loadavg crosses 2 — each
  // clause must fire from genuine monitoring data, not synthetic samples.
  sim::Engine engine;
  core::ClusterConfig cluster_config = three_nodes();
  cluster_config.host_template.memory_bytes = 256ULL << 20;  // 256 MB node
  core::Cluster cluster{engine, cluster_config};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(2.0));

  const std::string control = "filter {\n"
                              "  int i = 0;\n"
                              "  if (input[LOADAVG].value > 2) {\n"
                              "    output[i] = input[LOADAVG];\n"
                              "    i = i + 1;\n"
                              "  }\n"
                              "  if (input[DISKUSAGE].value > 10000 &&\n"
                              "      input[FREEMEM].value < 50e6) {\n"
                              "    output[i] = input[DISKUSAGE];\n"
                              "    i = i + 1;\n"
                              "    output[i] = input[FREEMEM];\n"
                              "    i = i + 1;\n"
                              "  }\n"
                              "  if (input[CACHE_MISSES].value >\n"
                              "      input[CACHE_MISSES].last_value_sent) {\n"
                              "    output[i] = input[CACHE_MISSES];\n"
                              "    i = i + 1;\n"
                              "  }\n"
                              "}\n";
  ASSERT_TRUE(cluster.procfs(0)
                  .write("/proc/cluster/etna/control", control)
                  .is_ok());
  engine.run_until(SimTime{} + seconds(4.0));
  ASSERT_TRUE(cluster.dmon(2)->tuning().has_filter());

  // Quiet node: nothing passes; alan's view of etna freezes.
  const core::RemoteMetric* before = cluster.dmon(0)->remote_metric(2, "freemem");
  engine.run_until(SimTime{} + seconds(8.0));
  const core::RemoteMetric* frozen = cluster.dmon(0)->remote_metric(2, "freemem");
  const SimTime frozen_at = frozen ? frozen->received_at : SimTime{};
  EXPECT_EQ(before ? before->received_at.ns() : 0, frozen_at.ns());

  // Clause 2: disk writes (>10k sectors/s) + memory pressure (<50 MB free).
  workload::MemoryHog hog{cluster.host(2),
                          cluster.host(2).memory().free_bytes() - 40'000'000};
  auto disk_writer = engine.schedule_periodic(milliseconds(100.0), [&] {
    // 1 MB every 100 ms = ~20k sectors/s.
    cluster.host(2).disk().submit(host::Disk::Op::kWrite, 1'000'000);
  });
  engine.run_until(SimTime{} + seconds(14.0));
  const core::RemoteMetric* freemem = cluster.dmon(0)->remote_metric(2, "freemem");
  ASSERT_NE(freemem, nullptr);
  EXPECT_GT(freemem->received_at.ns(), frozen_at.ns())
      << "disk+memory clause should have fired";
  EXPECT_LT(freemem->value, 50e6);
  const core::RemoteMetric* disk = cluster.dmon(0)->remote_metric(2, "diskusage");
  ASSERT_NE(disk, nullptr);
  EXPECT_GT(disk->value, 10'000.0);
  disk_writer.cancel();

  // Clause 1 + 3: linpack drives loadavg past 2 and cache misses upward.
  workload::LinpackTask a{cluster.host(2)}, b{cluster.host(2)},
      c{cluster.host(2)};
  engine.run_until(SimTime{} + seconds(26.0));
  const core::RemoteMetric* loadavg = cluster.dmon(0)->remote_metric(2, "loadavg");
  ASSERT_NE(loadavg, nullptr);
  EXPECT_GT(loadavg->value, 2.0);
  const core::RemoteMetric* misses =
      cluster.dmon(0)->remote_metric(2, "cache_misses");
  ASSERT_NE(misses, nullptr);
  EXPECT_GT(misses->value, 0.0);
}

TEST(Integration, PerConnectionTableRenders) {
  sim::Engine engine;
  core::Cluster cluster{engine, three_nodes()};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(5.0));
  auto table = cluster.procfs(0).read("/proc/net/connections");
  ASSERT_TRUE(table.is_ok());
  // The kecho transports to both peers appear with measured RTTs.
  EXPECT_NE(table.value().find("srtt_us"), std::string::npos);
  EXPECT_GE(std::count(table.value().begin(), table.value().end(), '\n'), 3);
}

TEST(Integration, DeterministicAcrossRuns) {
  auto run = [] {
    sim::Engine engine;
    core::Cluster cluster{engine, three_nodes()};
    cluster.start_dproc();
    workload::LinpackTask load{cluster.host(1)};
    engine.run_until(SimTime{} + seconds(10.0));
    const core::RemoteMetric* m = cluster.dmon(0)->remote_metric(1, "loadavg");
    return std::pair{engine.events_processed(), m ? m->value : -1.0};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace dproc
