// Lexer, parser, and semantic-analysis tests for the E-code front end.
#include <gtest/gtest.h>

#include "dproc/ecode/ecode.hpp"
#include "dproc/ecode/lexer.hpp"
#include "dproc/ecode/parser.hpp"

namespace dproc::ecode {
namespace {

std::vector<Token> lex(std::string_view source) {
  auto tokens = Lexer{source}.tokenize();
  EXPECT_TRUE(tokens.is_ok()) << tokens.status().to_string();
  return tokens.is_ok() ? std::move(tokens).value() : std::vector<Token>{};
}

CompileEnv env_with(std::initializer_list<std::pair<const std::string, std::int64_t>>
                        constants) {
  CompileEnv env;
  env.constants = constants;
  return env;
}

// --- lexer ------------------------------------------------------------

TEST(Lexer, TokenizesKeywordsAndIdentifiers) {
  auto tokens = lex("int foo; if else for while return break continue");
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kKwInt);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].text, "foo");
  EXPECT_EQ(tokens[3].kind, TokenKind::kKwIf);
  EXPECT_EQ(tokens.back().kind, TokenKind::kEof);
}

TEST(Lexer, IntegerLiterals) {
  auto tokens = lex("0 42 10000 0xff");
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 10000);
  EXPECT_EQ(tokens[3].int_value, 255);
}

TEST(Lexer, FloatLiteralsIncludingExponent) {
  auto tokens = lex("1.5 50e6 2.5e-3 1E2");
  EXPECT_EQ(tokens[0].kind, TokenKind::kFloatLiteral);
  EXPECT_DOUBLE_EQ(tokens[0].float_value, 1.5);
  EXPECT_DOUBLE_EQ(tokens[1].float_value, 50e6);  // the paper's 50e6
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 2.5e-3);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, 100.0);
}

TEST(Lexer, MultiCharOperators) {
  auto tokens = lex("== != <= >= && || << >> += -= ++ --");
  const TokenKind expected[] = {
      TokenKind::kEq, TokenKind::kNe, TokenKind::kLe, TokenKind::kGe,
      TokenKind::kAndAnd, TokenKind::kOrOr, TokenKind::kShl, TokenKind::kShr,
      TokenKind::kPlusAssign, TokenKind::kMinusAssign, TokenKind::kPlusPlus,
      TokenKind::kMinusMinus};
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << i;
  }
}

TEST(Lexer, CommentsSkipped) {
  auto tokens = lex("1 // line comment\n 2 /* block\ncomment */ 3");
  ASSERT_EQ(tokens.size(), 4u);  // three ints + eof
  EXPECT_EQ(tokens[2].int_value, 3);
}

TEST(Lexer, TracksLineAndColumn) {
  auto tokens = lex("a\n  b");
  EXPECT_EQ(tokens[0].loc.line, 1u);
  EXPECT_EQ(tokens[1].loc.line, 2u);
  EXPECT_EQ(tokens[1].loc.column, 3u);
}

TEST(Lexer, RejectsUnknownCharacters) {
  EXPECT_FALSE(Lexer{"int @x;"}.tokenize().is_ok());
}

TEST(Lexer, RejectsUnterminatedBlockComment) {
  EXPECT_FALSE(Lexer{"/* never ends"}.tokenize().is_ok());
}

TEST(Lexer, RejectsOutOfRangeInteger) {
  EXPECT_FALSE(Lexer{"99999999999999999999999999"}.tokenize().is_ok());
}

// --- parser -----------------------------------------------------------

Result<Program> parse(std::string_view source) {
  auto tokens = Lexer{source}.tokenize();
  if (!tokens.is_ok()) return tokens.status();
  return Parser{std::move(tokens).value()}.parse_program();
}

TEST(Parser, AcceptsBracedAndBareBodies) {
  EXPECT_TRUE(parse("{ int i = 0; }").is_ok());
  EXPECT_TRUE(parse("int i = 0;").is_ok());
}

TEST(Parser, PrecedenceMulOverAdd) {
  auto program = parse("int x = 1 + 2 * 3;");
  ASSERT_TRUE(program.is_ok());
  const Expr& init = *program.value().statements[0]->expr;
  ASSERT_EQ(init.kind, Expr::Kind::kBinary);
  EXPECT_EQ(init.bin_op, BinaryOp::kAdd);
  EXPECT_EQ(init.b->bin_op, BinaryOp::kMul);
}

TEST(Parser, ComparisonBindsTighterThanLogical) {
  auto program = parse("int x = 1 < 2 && 3 > 2;");
  ASSERT_TRUE(program.is_ok());
  const Expr& init = *program.value().statements[0]->expr;
  EXPECT_EQ(init.bin_op, BinaryOp::kLogicalAnd);
  EXPECT_EQ(init.a->bin_op, BinaryOp::kLt);
}

TEST(Parser, AssignmentIsRightAssociative) {
  auto program = parse("int a = 0; int b = 0; a = b = 3;");
  ASSERT_TRUE(program.is_ok());
  const Expr& expr = *program.value().statements[2]->expr;
  ASSERT_EQ(expr.kind, Expr::Kind::kAssign);
  EXPECT_EQ(expr.b->kind, Expr::Kind::kAssign);
}

TEST(Parser, ParsesPaperFilterShape) {
  // Figure 3 of the paper, verbatim structure.
  auto program = parse(R"({
    int i = 0;
    if (input[0].value > 2) {
      output[i] = input[0];
      i = i + 1;
    }
    if (input[1].value > 10000 && input[2].value < 50e6) {
      output[i] = input[1];
      i = i + 1;
      output[i] = input[2];
      i = i + 1;
    }
    if (input[3].value > input[3].last_value_sent) {
      output[i] = input[3];
      i = i + 1;
    }
  })");
  ASSERT_TRUE(program.is_ok()) << program.status().to_string();
  EXPECT_EQ(program.value().statements.size(), 4u);
}

TEST(Parser, ForWithAllClauses) {
  EXPECT_TRUE(parse("for (int i = 0; i < 10; i = i + 1) { }").is_ok());
}

TEST(Parser, ForWithEmptyClauses) {
  EXPECT_TRUE(parse("for (;;) { break; }").is_ok());
}

TEST(Parser, TernaryParses) {
  EXPECT_TRUE(parse("int x = 1 < 2 ? 3 : 4;").is_ok());
}

TEST(Parser, MissingSemicolonReported) {
  auto program = parse("int x = 1");
  ASSERT_FALSE(program.is_ok());
  EXPECT_NE(program.status().message().find("';'"), std::string::npos);
}

TEST(Parser, UnbalancedBraceReported) {
  EXPECT_FALSE(parse("{ if (1) {").is_ok());
}

TEST(Parser, ErrorsCarryLocations) {
  auto program = parse("int x = ;\nint y = 2;");
  ASSERT_FALSE(program.is_ok());
  EXPECT_NE(program.status().message().find("1:"), std::string::npos);
}

TEST(Parser, MultipleErrorsCollected) {
  auto program = parse("int = 1;\nint y 2;\n");
  ASSERT_FALSE(program.is_ok());
  // Two diagnostics, one per line.
  EXPECT_NE(program.status().message().find('\n'), std::string::npos);
}

// --- semantic analysis --------------------------------------------------

Status analyze(std::string_view source, const CompileEnv& env = {}) {
  return Filter::compile(source, env).status();
}

TEST(Sema, UndeclaredIdentifierRejected) {
  const Status status = analyze("x = 1;");
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("undeclared"), std::string::npos);
}

TEST(Sema, EnvironmentConstantsResolve) {
  EXPECT_TRUE(analyze("output[LOADAVG] = input[LOADAVG];",
                      env_with({{"LOADAVG", 0}}))
                  .is_ok());
}

TEST(Sema, LocalsShadowConstants) {
  EXPECT_TRUE(analyze("int LOADAVG = 3; output[LOADAVG] = input[0];",
                      env_with({{"LOADAVG", 0}}))
                  .is_ok());
}

TEST(Sema, RedeclarationRejected) {
  EXPECT_FALSE(analyze("int x = 1; int x = 2;").is_ok());
}

TEST(Sema, BlockScoping) {
  EXPECT_TRUE(analyze("{ { int x = 1; } { int x = 2; } }").is_ok());
  EXPECT_FALSE(analyze("{ { int x = 1; } x = 2; }").is_ok());
}

TEST(Sema, InputIsReadOnly) {
  EXPECT_FALSE(analyze("input[0] = input[1];").is_ok());
  EXPECT_FALSE(analyze("input[0].value = 1;").is_ok());
}

TEST(Sema, OutputFieldAssignable) {
  EXPECT_TRUE(analyze("output[0].value = 1.5;").is_ok());
  EXPECT_TRUE(analyze("output[0].id = 3;").is_ok());
}

TEST(Sema, UnknownFieldRejected) {
  const Status status = analyze("double v = input[0].velocity;");
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("no field"), std::string::npos);
}

TEST(Sema, OnlyArraysIndexable) {
  EXPECT_FALSE(analyze("int x = 1; int y = x[0];").is_ok());
}

TEST(Sema, BareArrayUseRejected) {
  EXPECT_FALSE(analyze("int x = input;").is_ok());
}

TEST(Sema, SampleAssignmentTypeChecked) {
  EXPECT_FALSE(analyze("output[0] = 5;").is_ok());
  EXPECT_FALSE(analyze("int x = input[0];").is_ok());
  EXPECT_TRUE(analyze("sample s = input[0]; output[0] = s;").is_ok());
}

TEST(Sema, ModRequiresIntegers) {
  EXPECT_FALSE(analyze("double x = 1.5 % 2;").is_ok());
  EXPECT_TRUE(analyze("int x = 7 % 2;").is_ok());
}

TEST(Sema, BitwiseRequiresIntegers) {
  EXPECT_FALSE(analyze("int x = 1.5 & 2;").is_ok());
  EXPECT_FALSE(analyze("int x = ~1.5;").is_ok());
}

TEST(Sema, BreakOutsideLoopRejected) {
  EXPECT_FALSE(analyze("break;").is_ok());
  EXPECT_FALSE(analyze("continue;").is_ok());
  EXPECT_TRUE(analyze("while (0) { break; }").is_ok());
}

TEST(Sema, IncDecOnlyOnLocals) {
  EXPECT_TRUE(analyze("int i = 0; i++; ++i; i--;").is_ok());
  EXPECT_FALSE(analyze("output[0].value++;").is_ok());
  EXPECT_FALSE(analyze("5++;").is_ok());
}

TEST(Sema, ConditionMustBeNumeric) {
  EXPECT_FALSE(analyze("if (input[0]) { }").is_ok());
  EXPECT_FALSE(analyze("while (input[0]) { }").is_ok());
}

TEST(Sema, ReturnValueMustBeNumeric) {
  EXPECT_FALSE(analyze("return input[0];").is_ok());
  EXPECT_TRUE(analyze("return 1;").is_ok());
  EXPECT_TRUE(analyze("return;").is_ok());
}

TEST(Sema, TernaryBranchTypesMustAgree) {
  EXPECT_TRUE(analyze("double x = 1 ? 1.5 : 2;").is_ok());
  EXPECT_TRUE(analyze("sample s = 1 ? input[0] : input[1];").is_ok());
  EXPECT_FALSE(analyze("int x = 1 ? 2 : input[0];").is_ok());
}

TEST(Sema, LongIsIntAlias) {
  EXPECT_TRUE(analyze("long big = 1 << 40; int x = big / 2;").is_ok());
}

TEST(Sema, HexLiteralsUsableInFilters) {
  EXPECT_TRUE(analyze("int mask = 0xFF; output[0].id = mask & 0x0F;").is_ok());
}

TEST(Parser, DeepButReasonableNestingAccepted) {
  std::string source = "return ";
  for (int i = 0; i < 50; ++i) source += '(';
  source += '1';
  for (int i = 0; i < 50; ++i) source += ')';
  source += ';';
  EXPECT_TRUE(parse(source).is_ok());
}

TEST(Parser, PathologicalNestingRejectedWithDiagnostic) {
  std::string source = "return ";
  for (int i = 0; i < 500; ++i) source += '(';
  source += '1';
  for (int i = 0; i < 500; ++i) source += ')';
  source += ';';
  auto program = parse(source);
  ASSERT_FALSE(program.is_ok());
  EXPECT_NE(program.status().message().find("nesting too deep"),
            std::string::npos);
}

TEST(Sema, CannotDeclareBuiltinNames) {
  EXPECT_FALSE(analyze("int input = 1;").is_ok());
  EXPECT_FALSE(analyze("int output = 1;").is_ok());
}

}  // namespace
}  // namespace dproc::ecode
