// KECho channel tests: registry protocol, membership, publish/subscribe
// delivery, poll semantics, and kernel CPU cost accounting.
#include <gtest/gtest.h>

#include "dproc/kecho/node.hpp"
#include "dproc/kecho/registry.hpp"
#include "dproc/net/wire.hpp"

namespace dproc::kecho {
namespace {

class KechoTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodes = 4;

  KechoTest() {
    std::vector<net::NodeId> ids;
    for (std::size_t i = 0; i < kNodes; ++i) {
      ids.push_back(fabric.add_node("n" + std::to_string(i)));
    }
    fabric.build_star(ids, net::LinkConfig{});
    Rng master{99};
    for (std::size_t i = 0; i < kNodes; ++i) {
      host::HostConfig config;
      config.name = "n" + std::to_string(i);
      hosts.push_back(std::make_unique<host::Host>(
          engine, static_cast<host::HostId>(i), config, master.split()));
      nics.push_back(std::make_unique<net::Nic>(fabric, ids[i]));
    }
    registry = std::make_unique<RegistryServer>(*nics[0]);
    for (std::size_t i = 0; i < kNodes; ++i) {
      nodes.push_back(std::make_unique<Node>(*hosts[i], *nics[i], ids[0]));
    }
  }

  void settle(double sec = 1.0) {
    engine.run_until(engine.now() + seconds(sec));
  }

  sim::Engine engine;
  net::Fabric fabric{engine};
  std::vector<std::unique_ptr<host::Host>> hosts;
  std::vector<std::unique_ptr<net::Nic>> nics;
  std::unique_ptr<RegistryServer> registry;
  std::vector<std::unique_ptr<Node>> nodes;
};

TEST_F(KechoTest, FirstJoinCreatesChannel) {
  Channel& channel = nodes[0]->join("monitor");
  EXPECT_FALSE(channel.ready());
  settle();
  EXPECT_TRUE(channel.ready());
  EXPECT_GT(channel.id(), 0u);
  EXPECT_EQ(registry->channel_count(), 1u);
  EXPECT_EQ(channel.remote_member_count(), 0u);
}

TEST_F(KechoTest, SameNameSameChannelId) {
  Channel& a = nodes[0]->join("monitor");
  Channel& b = nodes[1]->join("monitor");
  Channel& c = nodes[2]->join("other");
  settle();
  EXPECT_EQ(a.id(), b.id());
  EXPECT_NE(a.id(), c.id());
  EXPECT_EQ(registry->channel_count(), 2u);
}

TEST_F(KechoTest, MembershipPropagatesToExistingMembers) {
  Channel& a = nodes[0]->join("monitor");
  settle();
  Channel& b = nodes[1]->join("monitor");
  settle();
  EXPECT_EQ(a.remote_member_count(), 1u);  // learned about b via notify
  EXPECT_EQ(b.remote_member_count(), 1u);  // learned about a via response
}

TEST_F(KechoTest, OnReadyCallbackFires) {
  bool ready = false;
  nodes[0]->join("monitor", [&](Channel&) { ready = true; });
  EXPECT_FALSE(ready);
  settle();
  EXPECT_TRUE(ready);
}

TEST_F(KechoTest, RejoinReturnsSameHandle) {
  Channel& a = nodes[0]->join("monitor");
  Channel& b = nodes[0]->join("monitor");
  EXPECT_EQ(&a, &b);
  bool ready = false;
  settle();
  nodes[0]->join("monitor", [&](Channel&) { ready = true; });
  EXPECT_TRUE(ready);  // already-ready channels fire callbacks immediately
}

TEST_F(KechoTest, EventsReachEverySubscriberExactlyOnce) {
  std::vector<Channel*> channels;
  std::vector<int> received(kNodes, 0);
  for (std::size_t i = 0; i < kNodes; ++i) {
    channels.push_back(&nodes[i]->join("monitor"));
  }
  settle();
  for (std::size_t i = 0; i < kNodes; ++i) {
    channels[i]->set_handler([&received, i](const Event&) { ++received[i]; });
  }

  net::ByteWriter w;
  w.str("sample");
  channels[0]->submit(net::make_message(w.take()));
  settle();
  for (std::size_t i = 0; i < kNodes; ++i) nodes[i]->poll();

  EXPECT_EQ(received[0], 0);  // no local loopback, like publishing d-mon
  for (std::size_t i = 1; i < kNodes; ++i) {
    EXPECT_EQ(received[i], 1) << "node " << i;
  }
}

TEST_F(KechoTest, EventsQueueUntilPoll) {
  Channel& pub = nodes[0]->join("monitor");
  Channel& sub = nodes[1]->join("monitor");
  settle();
  int received = 0;
  sub.set_handler([&](const Event&) { ++received; });

  pub.submit(net::make_message({}, 64));
  pub.submit(net::make_message({}, 64));
  settle();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(sub.pending_events(), 2u);

  const PollStats stats = nodes[1]->poll();
  EXPECT_EQ(received, 2);
  EXPECT_EQ(stats.events_delivered, 2u);
  EXPECT_EQ(sub.pending_events(), 0u);
}

TEST_F(KechoTest, EventCarriesSourceAndPayload) {
  Channel& pub = nodes[0]->join("monitor");
  Channel& sub = nodes[1]->join("monitor");
  settle();
  Event got;
  sub.set_handler([&](const Event& event) { got = event; });

  net::ByteWriter w;
  w.u32(777);
  pub.submit(net::make_message(w.take(), 100));
  settle();
  nodes[1]->poll();

  EXPECT_EQ(got.source, nics[0]->node());
  EXPECT_EQ(got.channel, pub.id());
  ASSERT_NE(got.frame, nullptr);
  EXPECT_EQ(got.payload_body_bytes(), 100u);
  net::ByteReader r{got.payload_header()};
  EXPECT_EQ(r.u32(), 777u);
}

TEST_F(KechoTest, ChannelsAreIsolated) {
  Channel& pub = nodes[0]->join("monitor");
  nodes[1]->join("monitor");
  Channel& other = nodes[1]->join("control");
  settle();
  int other_received = 0;
  other.set_handler([&](const Event&) { ++other_received; });
  pub.submit(net::make_message({}, 10));
  settle();
  nodes[1]->poll();
  EXPECT_EQ(other_received, 0);
}

TEST_F(KechoTest, SubmitChargesKernelCpuPerSubscriber) {
  Channel& pub = nodes[0]->join("monitor");
  nodes[1]->join("monitor");
  nodes[2]->join("monitor");
  settle();

  const SimDuration before = hosts[0]->cpu().kernel_cpu_time();
  const SimDuration cost = pub.submit(net::make_message({}, 100));
  const SimDuration after = hosts[0]->cpu().kernel_cpu_time();
  EXPECT_GT(cost, SimDuration::zero());
  EXPECT_EQ((after - before).ns(), cost.ns());

  // Cost scales with subscriber count.
  nodes[3]->join("monitor");
  settle();
  const SimDuration cost3 = pub.submit(net::make_message({}, 100));
  EXPECT_NEAR(cost3.us(), cost.us() * 1.5, cost.us() * 0.01);
}

TEST_F(KechoTest, ReceiveCostScalesWithEventSize) {
  Channel& pub = nodes[0]->join("monitor");
  nodes[1]->join("monitor");
  settle();
  pub.submit(net::make_message({}, 100));
  settle();
  const SimDuration small = nodes[1]->poll().cpu_cost;

  pub.submit(net::make_message({}, 5000));
  settle();
  const SimDuration large = nodes[1]->poll().cpu_cost;
  EXPECT_GT(large, small);
}

TEST_F(KechoTest, SubmitBeforeReadyReachesNobody) {
  Channel& pub = nodes[0]->join("monitor");
  Channel& sub = nodes[1]->join("monitor");
  pub.submit(net::make_message({}, 10));  // registry round-trip pending
  settle();
  nodes[1]->poll();
  EXPECT_EQ(sub.events_received(), 0u);
}

TEST_F(KechoTest, EncodeJoinRequestStable) {
  auto message = encode_join_request("chan", Member{3, 7788});
  net::ByteReader r{message->header};
  EXPECT_EQ(static_cast<RegistryOp>(r.u8()), RegistryOp::kJoinRequest);
  EXPECT_EQ(r.str(), "chan");
  EXPECT_EQ(r.u32(), 3u);
  EXPECT_EQ(r.u16(), 7788);
  EXPECT_TRUE(r.ok());
}

TEST_F(KechoTest, DatagramTransportDelivers) {
  Channel& pub = nodes[0]->join("lossy", {}, ChannelTransport::kDatagram);
  Channel& sub = nodes[1]->join("lossy");
  settle();
  int received = 0;
  sub.set_handler([&](const Event&) { ++received; });
  pub.submit(net::make_message({}, 64));
  pub.submit(net::make_message({}, 64));
  settle();
  nodes[1]->poll();
  EXPECT_EQ(received, 2);
}

TEST_F(KechoTest, DatagramTransportDropsUnderCongestionWithoutRetransmit) {
  // A dedicated fabric with tiny buffers: bursts overflow, and the lossy
  // channel simply loses events — no retransmission traffic follows.
  sim::Engine eng;
  net::Fabric fab{eng};
  std::vector<net::NodeId> ids{fab.add_node("a"), fab.add_node("b")};
  net::LinkConfig tiny;
  tiny.buffer_bytes = 2'000;
  fab.build_star(ids, tiny);
  Rng master{7};
  host::HostConfig hc;
  hc.name = "a";
  host::Host ha{eng, 0, hc, master.split()};
  hc.name = "b";
  host::Host hb{eng, 1, hc, master.split()};
  net::Nic na{fab, ids[0]}, nb{fab, ids[1]};
  RegistryServer reg{na};
  Node ka{ha, na, ids[0]}, kb{hb, nb, ids[0]};

  Channel& pub = ka.join("lossy", {}, ChannelTransport::kDatagram);
  Channel& sub = kb.join("lossy");
  eng.run_until(eng.now() + seconds(1.0));
  int received = 0;
  sub.set_handler([&](const Event&) { ++received; });
  for (int burst = 0; burst < 10; ++burst) {
    eng.schedule_at(eng.now() + seconds(0.01 * burst), [&] {
      for (int i = 0; i < 5; ++i) pub.submit(net::make_message({}, 1200));
    });
  }
  eng.run_until(eng.now() + seconds(2.0));
  kb.poll();
  EXPECT_LT(received, 50) << "tiny buffers must have dropped events";
  EXPECT_GT(received, 0);
  EXPECT_GT(nb.stats().datagrams_lost, 0u);
  // No reliable transport was ever opened for the event path.
  EXPECT_EQ(pub.events_submitted(), 50u);
}

TEST_F(KechoTest, PollBaseCostChargedEvenWhenIdle) {
  const PollStats stats = nodes[0]->poll();
  EXPECT_EQ(stats.events_delivered, 0u);
  EXPECT_GT(stats.cpu_cost, SimDuration::zero());
}

TEST_F(KechoTest, DuplicateJoinRequestIsIdempotent) {
  Channel& a = nodes[0]->join("monitor");
  Channel& b = nodes[1]->join("monitor");
  settle();
  ASSERT_TRUE(a.ready());
  ASSERT_TRUE(b.ready());
  ASSERT_EQ(registry->channel_members("monitor").size(), 2u);

  // Replay node 1's join verbatim, as a restarted kernel module would.
  nics[1]->send_datagram(
      nics[0]->node(), RegistryServer::kDefaultPort,
      encode_join_request("monitor", Member{nics[1]->node(), Node::kChannelPort}),
      Node::kChannelPort);
  settle();

  EXPECT_EQ(registry->stats().duplicate_joins, 1u);
  EXPECT_EQ(registry->channel_members("monitor").size(), 2u);
  // Existing members saw no phantom second copy of node 1.
  EXPECT_EQ(a.members().size(), 1u);
  EXPECT_EQ(b.members().size(), 1u);
}

TEST_F(KechoTest, RejoinAfterCrashLeavesNoDuplicateMembers) {
  Channel& a = nodes[0]->join("monitor");
  Channel& b = nodes[1]->join("monitor");
  settle();
  ASSERT_TRUE(a.ready());

  nodes[0]->crash();
  EXPECT_FALSE(a.ready());
  EXPECT_TRUE(nodes[0]->crashed());
  nodes[0]->restart();
  settle();

  EXPECT_TRUE(a.ready());
  EXPECT_GE(registry->stats().duplicate_joins, 1u);
  EXPECT_EQ(registry->channel_members("monitor").size(), 2u);
  ASSERT_EQ(a.members().size(), 1u);
  EXPECT_EQ(a.members()[0].node, nics[1]->node());
  ASSERT_EQ(b.members().size(), 1u);
  EXPECT_EQ(b.members()[0].node, nics[0]->node());
}

TEST_F(KechoTest, GracefulLeaveRemovesMemberEverywhere) {
  Channel& a = nodes[0]->join("monitor");
  Channel& b = nodes[1]->join("monitor");
  Channel& c = nodes[2]->join("monitor");
  settle();
  ASSERT_EQ(a.members().size(), 2u);

  std::vector<std::pair<MemberEventKind, net::NodeId>> events;
  nodes[0]->add_membership_listener(
      [&](MemberEventKind kind, net::NodeId node) {
        events.emplace_back(kind, node);
      });

  nodes[1]->announce_leave();
  settle();

  EXPECT_EQ(registry->stats().leaves, 1u);
  const auto members = registry->channel_members("monitor");
  ASSERT_EQ(members.size(), 2u);
  for (const Member& m : members) EXPECT_NE(m.node, nics[1]->node());
  EXPECT_EQ(a.members().size(), 1u);
  EXPECT_EQ(c.members().size(), 1u);
  EXPECT_EQ(b.members().size(), 0u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].first, MemberEventKind::kLeft);
  EXPECT_EQ(events[0].second, nics[1]->node());
}

// Liveness-enabled variant of the fixture: short heartbeat period so that
// failure detection and registry retry run inside a few simulated seconds.
class KechoLivenessTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kNodes = 4;

  KechoLivenessTest() {
    for (std::size_t i = 0; i < kNodes; ++i) {
      ids.push_back(fabric.add_node("n" + std::to_string(i)));
    }
    fabric.build_star(ids, net::LinkConfig{});
    Rng master{99};
    liveness.enabled = true;
    liveness.heartbeat_period = seconds(0.2);
    liveness.miss_threshold = 3;
    liveness.retry_base = milliseconds(50.0);
    liveness.retry_cap = seconds(0.4);
    for (std::size_t i = 0; i < kNodes; ++i) {
      host::HostConfig config;
      config.name = "n" + std::to_string(i);
      hosts.push_back(std::make_unique<host::Host>(
          engine, static_cast<host::HostId>(i), config, master.split()));
      nics.push_back(std::make_unique<net::Nic>(fabric, ids[i]));
    }
    registry = std::make_unique<RegistryServer>(*nics[0]);
    for (std::size_t i = 0; i < kNodes; ++i) {
      nodes.push_back(std::make_unique<Node>(*hosts[i], *nics[i], ids[0],
                                             RegistryServer::kDefaultPort,
                                             KechoCosts{}, liveness));
    }
  }

  void settle(double sec = 1.0) {
    engine.run_until(engine.now() + seconds(sec));
  }

  void join_all(const std::string& name) {
    channels.clear();
    for (auto& node : nodes) channels.push_back(&node->join(name));
    settle(0.5);
  }

  sim::Engine engine;
  net::Fabric fabric{engine};
  std::vector<net::NodeId> ids;
  LivenessConfig liveness;
  std::vector<std::unique_ptr<host::Host>> hosts;
  std::vector<std::unique_ptr<net::Nic>> nics;
  std::unique_ptr<RegistryServer> registry;
  std::vector<std::unique_ptr<Node>> nodes;
  std::vector<Channel*> channels;
};

TEST_F(KechoLivenessTest, SilentPeerIsEvictedAfterMissThreshold) {
  join_all("monitor");
  for (std::size_t i = 0; i < kNodes; ++i) {
    ASSERT_EQ(channels[i]->members().size(), kNodes - 1);
  }

  std::vector<std::pair<MemberEventKind, net::NodeId>> events;
  nodes[0]->add_membership_listener(
      [&](MemberEventKind kind, net::NodeId node) {
        events.emplace_back(kind, node);
      });

  fabric.set_node_down(ids[3], true);
  nodes[3]->crash();
  settle(2.0);

  // Survivors noticed the silence, evicted the peer, and the registry
  // propagated the removal exactly once per surviving view.
  EXPECT_GE(registry->stats().evictions, 1u);
  const auto members = registry->channel_members("monitor");
  ASSERT_EQ(members.size(), kNodes - 1);
  for (const Member& m : members) EXPECT_NE(m.node, ids[3]);
  std::uint64_t initiated = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    initiated += nodes[i]->evictions_initiated();
    EXPECT_EQ(channels[i]->members().size(), kNodes - 2);
    EXPECT_GT(nodes[i]->heartbeats_sent(), 0u);
  }
  EXPECT_GE(initiated, 1u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].first, MemberEventKind::kEvicted);
  EXPECT_EQ(events[0].second, ids[3]);
}

TEST_F(KechoLivenessTest, RestartAfterEvictionReconvergesWithoutDuplicates) {
  join_all("monitor");
  fabric.set_node_down(ids[3], true);
  nodes[3]->crash();
  settle(2.0);
  ASSERT_EQ(registry->channel_members("monitor").size(), kNodes - 1);

  fabric.set_node_down(ids[3], false);
  nodes[3]->restart();
  settle(2.0);

  const auto members = registry->channel_members("monitor");
  ASSERT_EQ(members.size(), kNodes);
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t j = i + 1; j < members.size(); ++j) {
      EXPECT_NE(members[i].node, members[j].node);
    }
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    const Channel* channel = channels[i];
    EXPECT_TRUE(channel->ready());
    const auto& view = channel->members();
    ASSERT_EQ(view.size(), kNodes - 1);
    for (std::size_t a = 0; a < view.size(); ++a) {
      EXPECT_NE(view[a].node, ids[i]) << "node " << i << " lists itself";
      for (std::size_t b = a + 1; b < view.size(); ++b) {
        EXPECT_NE(view[a].node, view[b].node);
      }
    }
  }
}

TEST_F(KechoLivenessTest, JoinRetriesThroughRegistryOutage) {
  registry->set_online(false);
  Channel& channel = nodes[1]->join("monitor");
  settle(0.5);
  EXPECT_FALSE(channel.ready());
  EXPECT_GT(registry->stats().drops_offline, 0u);

  registry->set_online(true);
  settle(1.0);
  EXPECT_TRUE(channel.ready());
  EXPECT_EQ(registry->channel_members("monitor").size(), 1u);
}

TEST_F(KechoLivenessTest, LeaveRetriedUntilRegistryAcks) {
  // A solo member: no surviving peer can race the leave with an eviction,
  // so the only way the registry forgets the member is the retried leave.
  Channel& channel = nodes[2]->join("monitor");
  settle(0.3);
  ASSERT_TRUE(channel.ready());

  registry->set_online(false);
  nodes[2]->announce_leave();
  settle(0.5);
  ASSERT_EQ(registry->channel_members("monitor").size(), 1u)
      << "offline registry must not have processed the leave yet";

  registry->set_online(true);
  settle(1.5);
  EXPECT_EQ(registry->stats().leaves, 1u);
  EXPECT_TRUE(registry->channel_members("monitor").empty());
}

}  // namespace
}  // namespace dproc::kecho
