// d-mon tests: module registration, metric id conventions, polling,
// remote-store updates, control propagation, and overhead accounting.
#include <gtest/gtest.h>

#include "dproc/core/cluster.hpp"
#include "dproc/workload/linpack.hpp"

namespace dproc::core {
namespace {

class DmonTest : public ::testing::Test {
 protected:
  DmonTest() {
    ClusterConfig config;
    config.node_count = 3;
    config.node_names = {"alan", "maui", "etna"};
    cluster = std::make_unique<Cluster>(engine, config);
    cluster->start_dproc();
  }

  void settle(double sec) { engine.run_until(engine.now() + seconds(sec)); }

  sim::Engine engine;
  std::unique_ptr<Cluster> cluster;
};

TEST_F(DmonTest, MetricIdsAreClusterConvention) {
  const auto& table0 = cluster->dmon(0)->metric_table();
  const auto& table1 = cluster->dmon(1)->metric_table();
  ASSERT_EQ(table0.size(), table1.size());
  for (std::size_t i = 0; i < table0.size(); ++i) {
    EXPECT_EQ(table0[i].id, i);
    EXPECT_EQ(table0[i].key, table1[i].key);
    EXPECT_EQ(table0[i].id, table1[i].id);
  }
}

TEST_F(DmonTest, StandardModulesProvideExpectedMetrics) {
  DMon& dmon = *cluster->dmon(0);
  for (const char* key : {"loadavg", "cpu_util", "freemem", "disk_reads",
                          "diskusage", "net_in", "net_out", "net_avail",
                          "rtt", "retrans", "udp_lost", "cache_misses"}) {
    EXPECT_TRUE(dmon.metric_id(key).has_value()) << key;
  }
  EXPECT_FALSE(dmon.metric_id("bogus").has_value());
}

TEST_F(DmonTest, LocalProcFilesRenderCollectedValues) {
  settle(3.0);
  auto loadavg = cluster->procfs(0).read("/proc/cpu/loadavg");
  ASSERT_TRUE(loadavg.is_ok());
  EXPECT_NE(loadavg.value(), "no data\n");
  auto freemem = cluster->procfs(0).read("/proc/mem/freemem");
  ASSERT_TRUE(freemem.is_ok());
  EXPECT_GT(std::stod(freemem.value()), 1e8);  // ~512 MB free
}

TEST_F(DmonTest, RemoteValuesArriveWithinOnePeriod) {
  settle(2.5);
  const RemoteMetric* metric = cluster->dmon(0)->remote_metric(1, "freemem");
  ASSERT_NE(metric, nullptr);
  EXPECT_GT(metric->value, 0.0);
  EXPECT_LE((engine.now() - metric->received_at).sec(), 1.1);
}

TEST_F(DmonTest, StatusFileRendersState) {
  settle(2.0);
  auto status = cluster->procfs(0).read("/proc/dproc/status");
  ASSERT_TRUE(status.is_ok());
  EXPECT_NE(status.value().find("modules 5"), std::string::npos);
  EXPECT_NE(status.value().find("poll_period"), std::string::npos);
}

TEST_F(DmonTest, PollReportsSubmitAndReceiveCosts) {
  settle(5.0);
  const PollRecord& record = cluster->dmon(0)->last_poll();
  EXPECT_GT(record.submit_cost, SimDuration::zero());
  EXPECT_GT(record.receive_cost, SimDuration::zero());
  EXPECT_GT(record.events_submitted, 0u);
  EXPECT_GT(record.events_received, 0u);
}

TEST_F(DmonTest, SubmitCostScalesWithPeers) {
  // Larger cluster, same workload: higher submission cost per poll.
  sim::Engine big_engine;
  ClusterConfig config;
  config.node_count = 8;
  Cluster big{big_engine, config};
  big.start_dproc();
  big_engine.run_until(SimTime{} + seconds(5.0));
  settle(5.0);
  EXPECT_GT(big.dmon(0)->last_poll().submit_cost.ns(),
            cluster->dmon(0)->last_poll().submit_cost.ns());
}

TEST_F(DmonTest, ControlFileWritePropagates) {
  settle(2.0);
  ASSERT_TRUE(cluster->procfs(0)
                  .write("/proc/cluster/maui/control", "period 3.0")
                  .is_ok());
  settle(2.0);
  EXPECT_EQ(cluster->dmon(1)->tuning().default_period().sec(), 3.0);
  // Other nodes untouched.
  EXPECT_EQ(cluster->dmon(2)->tuning().default_period().sec(), 1.0);
}

TEST_F(DmonTest, ControlFileRejectsGarbageLocally) {
  settle(2.0);
  const Status status =
      cluster->procfs(0).write("/proc/cluster/maui/control", "gibberish 1");
  EXPECT_FALSE(status.is_ok());
}

TEST_F(DmonTest, SelfTuningAppliesDirectly) {
  TuningConfig config;
  config.differential_pct = 15.0;
  ASSERT_TRUE(cluster->dmon(0)->apply_tuning(config).is_ok());
  EXPECT_EQ(*cluster->dmon(0)->tuning().differential_pct(), 15.0);
}

TEST_F(DmonTest, SendTuningToSelfWorks) {
  TuningConfig config;
  config.default_period = seconds(4.0);
  ASSERT_TRUE(cluster->dmon(0)->send_tuning(0, config).is_ok());
  EXPECT_EQ(cluster->dmon(0)->tuning().default_period().sec(), 4.0);
}

TEST_F(DmonTest, SendTuningBeforeChannelReadyFails) {
  sim::Engine fresh_engine;
  ClusterConfig config;
  config.node_count = 2;
  Cluster fresh{fresh_engine, config};
  fresh.start_dproc();
  // No time for the registry round trip yet.
  TuningConfig tuning;
  tuning.default_period = seconds(2.0);
  EXPECT_EQ(fresh.dmon(0)->send_tuning(1, tuning).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(DmonTest, DifferentialFilterQuenchesSteadyState) {
  settle(3.0);
  TuningConfig config;
  config.differential_pct = 15.0;
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster->dmon(i)->apply_tuning(config).is_ok());
  }
  settle(10.0);  // let the system quiesce under the filter
  StreamingStats events;
  for (int i = 0; i < 10; ++i) {
    settle(1.0);
    events.add(static_cast<double>(cluster->dmon(0)->last_poll().events_submitted));
  }
  // Nearly everything suppressed on an idle cluster.
  EXPECT_LT(events.mean(), 2.0);
}

TEST_F(DmonTest, LoadavgReflectsRemoteLoadWithModuleWindow) {
  settle(2.0);
  workload::LinpackTask t1{cluster->host(2)}, t2{cluster->host(2)};
  settle(10.0);
  const RemoteMetric* loadavg = cluster->dmon(0)->remote_metric(2, "loadavg");
  ASSERT_NE(loadavg, nullptr);
  EXPECT_NEAR(loadavg->value, 2.0, 0.5);
}

TEST_F(DmonTest, PmcMetricTracksCacheMisses) {
  settle(2.0);
  workload::LinpackTask linpack{cluster->host(1)};
  settle(10.0);
  const RemoteMetric* misses = cluster->dmon(0)->remote_metric(1, "cache_misses");
  ASSERT_NE(misses, nullptr);
  EXPECT_GT(misses->value, 0.0);
}

TEST_F(DmonTest, NetMetricsSeeMonitoringTraffic) {
  settle(5.0);
  const RemoteMetric* in_bps = cluster->dmon(0)->remote_metric(1, "net_in");
  ASSERT_NE(in_bps, nullptr);
  EXPECT_GT(in_bps->value, 0.0);
  const RemoteMetric* avail = cluster->dmon(0)->remote_metric(1, "net_avail");
  ASSERT_NE(avail, nullptr);
  EXPECT_LT(avail->value, 100e6);
  EXPECT_GT(avail->value, 90e6);
}

TEST_F(DmonTest, SyntheticModuleExtendsAtRuntime) {
  // The paper's extension story: new modules can be added dynamically.
  DMon& dmon = *cluster->dmon(0);
  const std::size_t before = dmon.metric_table().size();
  dmon.register_module(std::make_unique<SyntheticMonitor>(
      "battery", 1, [](std::size_t, SimTime) { return 87.0; }));
  EXPECT_EQ(dmon.metric_table().size(), before + 1);
  settle(2.0);
  auto reading = cluster->procfs(0).read("/proc/battery/battery0");
  ASSERT_TRUE(reading.is_ok());
  EXPECT_NEAR(std::stod(reading.value()), 87.0, 1e-9);
}

TEST_F(DmonTest, WindowCommandRetunesModule) {
  settle(2.0);
  // Shrink maui's CPU_MON averaging window remotely, then verify its
  // loadavg responds faster than the 5 s default would allow.
  ASSERT_TRUE(cluster->procfs(0)
                  .write("/proc/cluster/maui/control", "window cpu 1")
                  .is_ok());
  settle(2.0);
  workload::LinpackTask a{cluster->host(1)}, b{cluster->host(1)},
      c{cluster->host(1)};
  settle(3.5);
  const RemoteMetric* loadavg = cluster->dmon(0)->remote_metric(1, "loadavg");
  ASSERT_NE(loadavg, nullptr);
  EXPECT_GT(loadavg->value, 2.4) << "1 s window should converge within ~3 s";
}

TEST_F(DmonTest, WindowCommandUnknownModuleRejected) {
  settle(2.0);
  TuningConfig config;
  config.module_periods.emplace_back("warp_drive", seconds(1.0));
  EXPECT_EQ(cluster->dmon(0)->apply_tuning(config).code(),
            StatusCode::kNotFound);
}

TEST_F(DmonTest, FilterDeployChargesCompileCost) {
  settle(2.0);
  const SimDuration before = cluster->host(1).cpu().kernel_cpu_time();
  ASSERT_TRUE(cluster->procfs(0)
                  .write("/proc/cluster/maui/control",
                         "filter { output[0] = input[LOADAVG]; }")
                  .is_ok());
  settle(2.0);
  ASSERT_TRUE(cluster->dmon(1)->tuning().has_filter());
  EXPECT_GT((cluster->host(1).cpu().kernel_cpu_time() - before).ns(), 0);
}

}  // namespace
}  // namespace dproc::core
