#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "dproc/util/ring_buffer.hpp"
#include "dproc/util/rng.hpp"
#include "dproc/util/stats.hpp"
#include "dproc/util/status.hpp"
#include "dproc/util/time.hpp"

namespace dproc {
namespace {

// --- time -------------------------------------------------------------

TEST(Time, UnitConversions) {
  EXPECT_EQ(seconds(1.0).ns(), 1'000'000'000);
  EXPECT_EQ(milliseconds(1.5).ns(), 1'500'000);
  EXPECT_EQ(microseconds(2.0).ns(), 2'000);
  EXPECT_DOUBLE_EQ(seconds(2.5).sec(), 2.5);
  EXPECT_DOUBLE_EQ(milliseconds(1.0).us(), 1000.0);
}

TEST(Time, Arithmetic) {
  const SimTime t = SimTime::zero() + seconds(1.0);
  EXPECT_EQ((t + milliseconds(500.0)).ns(), 1'500'000'000);
  EXPECT_EQ((t - SimTime::zero()).ns(), seconds(1.0).ns());
  EXPECT_EQ((seconds(3.0) - seconds(1.0)).ns(), seconds(2.0).ns());
  EXPECT_DOUBLE_EQ(seconds(4.0) / seconds(2.0), 2.0);
  EXPECT_EQ((seconds(2.0) * 1.5).ns(), seconds(3.0).ns());
}

TEST(Time, Ordering) {
  EXPECT_LT(SimTime{5}, SimTime{6});
  EXPECT_LE(seconds(1.0), seconds(1.0));
  EXPECT_GT(SimTime::max(), SimTime::zero());
}

TEST(Time, ToStringPicksUnits) {
  EXPECT_EQ(to_string(nanoseconds(500)), "500ns");
  EXPECT_EQ(to_string(microseconds(1.5)), "1.500us");
  EXPECT_EQ(to_string(milliseconds(2.25)), "2.250ms");
  EXPECT_EQ(to_string(seconds(1.0)), "1.000s");
}

// --- rng --------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInRange) {
  Rng rng{7};
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng{7};
  StreamingStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng{3};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng{11};
  StreamingStats stats;
  for (int i = 0; i < 100'000; ++i) stats.add(rng.exponential(4.0));
  EXPECT_NEAR(stats.mean(), 4.0, 0.1);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a{42};
  Rng b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, BernoulliProbability) {
  Rng rng{5};
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 100'000.0, 0.3, 0.01);
}

// --- stats ------------------------------------------------------------

TEST(StreamingStats, BasicMoments) {
  StreamingStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, Reset) {
  StreamingStats s;
  s.add(10.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(SampleSet, ExtremesExactInteriorApproximate) {
  SampleSet s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  // min, max and mean are tracked exactly alongside the histogram.
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  // Interior quantiles interpolate inside one log-linear sub-bucket:
  // within the sub-bucket's relative width of the exact answer.
  EXPECT_NEAR(s.median(), 50.5, 50.5 * 0.10);
  EXPECT_NEAR(s.quantile(0.99), 99.01, 99.01 * 0.10);
  // Quantiles are monotone in q.
  EXPECT_LE(s.quantile(0.25), s.quantile(0.5));
  EXPECT_LE(s.quantile(0.5), s.quantile(0.75));
}

TEST(SampleSet, OrderIndependentAndClampedToRange) {
  // The histogram is order-independent: descending inserts read back the
  // same summary, and every quantile stays inside [min, max].
  SampleSet s;
  for (int i = 100; i >= 1; --i) {
    s.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0) << "after adding " << i;
    EXPECT_DOUBLE_EQ(s.quantile(0.0), static_cast<double>(i));
  }
  EXPECT_NEAR(s.median(), 50.5, 50.5 * 0.10);

  s.clear();
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
  s.add(7.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 7.0);
  EXPECT_GE(s.median(), 5.0);
  EXPECT_LE(s.median(), 7.0);
}

TEST(SampleSet, ZeroAndNegativeLandInTheFloorBucket) {
  SampleSet s;
  s.add(0.0);
  s.add(0.0);
  s.add(-2.5);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), -2.5);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), -2.5) << "floor bucket reports exact min";
}

TEST(SampleSet, MergeAddsBucketCounts) {
  // The property zone roll-ups need: merging per-host sets is equivalent
  // to having recorded every sample into one set.
  SampleSet a, b, all;
  for (int i = 1; i <= 50; ++i) {
    a.add(static_cast<double>(i));
    all.add(static_cast<double>(i));
  }
  for (int i = 51; i <= 100; ++i) {
    b.add(static_cast<double>(i));
    all.add(static_cast<double>(i));
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.quantile(0.0), all.quantile(0.0));
  EXPECT_DOUBLE_EQ(a.quantile(1.0), all.quantile(1.0));
  EXPECT_DOUBLE_EQ(a.mean(), all.mean());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_DOUBLE_EQ(a.quantile(q), all.quantile(q)) << "q=" << q;
  }
  // Merging into an empty set copies.
  SampleSet c;
  c.merge(all);
  EXPECT_EQ(c.count(), 100u);
  EXPECT_DOUBLE_EQ(c.max(), 100.0);
}

TEST(SampleSet, AddIsAllocationFreeAfterReserve) {
  SampleSet s;
  s.reserve(1);  // sizes the fixed bucket table
  for (int i = 0; i < 10'000; ++i) s.add(static_cast<double>(i) * 0.37 + 0.01);
  EXPECT_EQ(s.count(), 10'000u);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e{0.5};
  for (int i = 0; i < 32; ++i) e.add(10.0);
  EXPECT_NEAR(e.value(), 10.0, 1e-6);
}

TEST(Ewma, FirstSampleSeeds) {
  Ewma e{0.1};
  EXPECT_FALSE(e.seeded());
  e.add(42.0);
  EXPECT_TRUE(e.seeded());
  EXPECT_DOUBLE_EQ(e.value(), 42.0);
}

TEST(Histogram, BucketsAndOverflow) {
  Histogram h{0.0, 10.0, 10};
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  h.add(-1.0);
  h.add(100.0);
  EXPECT_EQ(h.total(), 12u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(h.bucket(i), 1u);
  EXPECT_FALSE(h.summary().empty());
}

// --- ring buffer --------------------------------------------------------

TEST(RingBuffer, PushAndIndexOldestFirst) {
  RingBuffer<int> ring{3};
  ring.push(1);
  ring.push(2);
  EXPECT_EQ(ring.size(), 2u);
  EXPECT_EQ(ring.front(), 1);
  EXPECT_EQ(ring.back(), 2);
}

TEST(RingBuffer, OverwritesOldestWhenFull) {
  RingBuffer<int> ring{3};
  for (int i = 1; i <= 5; ++i) ring.push(i);
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.front(), 3);
  EXPECT_EQ(ring.back(), 5);
  EXPECT_EQ(ring.at(1), 4);
}

TEST(RingBuffer, AtOutOfRangeThrows) {
  RingBuffer<int> ring{2};
  ring.push(1);
  EXPECT_THROW(ring.at(1), std::out_of_range);
}

TEST(RingBuffer, ZeroCapacityRejected) {
  EXPECT_THROW(RingBuffer<int>{0}, std::invalid_argument);
}

TEST(RingBuffer, ForEachVisitsInOrder) {
  RingBuffer<int> ring{4};
  for (int i = 0; i < 6; ++i) ring.push(i);
  std::vector<int> seen;
  ring.for_each([&](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{2, 3, 4, 5}));
}

TEST(RingBuffer, Clear) {
  RingBuffer<int> ring{2};
  ring.push(1);
  ring.clear();
  EXPECT_TRUE(ring.empty());
}

// --- status / result ----------------------------------------------------

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = Status::not_found("missing thing");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.to_string().find("missing thing"), std::string::npos);
}

TEST(Result, ValueRoundTrip) {
  Result<int> r{42};
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, ErrorAccessThrows) {
  Result<int> r{Status::invalid_argument("nope")};
  EXPECT_FALSE(r.is_ok());
  EXPECT_THROW(r.value(), std::logic_error);
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.ok_or_nullopt(), std::nullopt);
}

TEST(Result, OkStatusWithoutValueIsLogicError) {
  EXPECT_THROW((Result<int>{Status::ok()}), std::logic_error);
}

}  // namespace
}  // namespace dproc
