// Telemetry registry semantics: counter/gauge/latency behaviour against the
// enabled flag, span-ring wraparound, the zero-allocation guarantee of the
// disabled mode (alloc counter from bench/alloc_counter.cpp), Chrome
// trace_event export validity, and the end-to-end self-monitoring path: an
// 8-node cluster publishing each node's own overhead cluster-wide under
// /proc/cluster/<node>/dproc/...
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "../bench/alloc_counter.hpp"
#include "dproc/core/cluster.hpp"
#include "dproc/telemetry/telemetry.hpp"

namespace {

using dproc::SimTime;
using dproc::microseconds;
using dproc::seconds;
using dproc::telemetry::Registry;

TEST(TelemetryCounter, DisabledByDefaultAndGatedOnEnable) {
  Registry registry;
  auto& submits = registry.counter("kecho", "submits");
  submits.add();
  EXPECT_EQ(submits.value(), 0u) << "disabled counters must not move";

  registry.set_enabled(true);
  submits.add();
  submits.add(3);
  EXPECT_EQ(submits.value(), 4u);

  registry.set_enabled(false);
  submits.add(100);
  EXPECT_EQ(submits.value(), 4u) << "disabling freezes accumulation";
}

TEST(TelemetryCounter, GetOrCreateReturnsTheSameInstrument) {
  Registry registry;
  registry.set_enabled(true);
  registry.counter("a", "x").add(5);
  EXPECT_EQ(registry.counter("a", "x").value(), 5u);
  EXPECT_EQ(registry.counter("a", "y").value(), 0u);
}

TEST(TelemetryGauge, SetGatedButPullSourceAlwaysLive) {
  Registry registry;
  auto& gauge = registry.gauge("sim", "events");
  gauge.set(7.0);
  EXPECT_EQ(gauge.value(), 0.0) << "disabled set() must not stick";

  registry.set_enabled(true);
  gauge.set(7.0);
  EXPECT_EQ(gauge.value(), 7.0);

  double pulled = 42.0;
  gauge.set_source([&pulled] { return pulled; });
  EXPECT_EQ(gauge.value(), 42.0);
  pulled = 43.0;
  EXPECT_EQ(gauge.value(), 43.0) << "sources are evaluated at read time";
}

TEST(TelemetryLatency, RecordsQuantiles) {
  Registry registry;
  auto& latency = registry.latency("dmon", "poll_us");
  latency.record_us(999.0);
  EXPECT_EQ(latency.count(), 0u) << "disabled recorders must not sample";

  registry.set_enabled(true);
  for (int i = 1; i <= 100; ++i) latency.record_us(static_cast<double>(i));
  EXPECT_EQ(latency.count(), 100u);
  EXPECT_DOUBLE_EQ(latency.mean_us(), 50.5);
  // Histogram-backed: extremes and mean exact, interior within one
  // sub-bucket of the exact answer.
  EXPECT_NEAR(latency.quantile_us(0.5), 50.5, 50.5 * 0.10);
  EXPECT_DOUBLE_EQ(latency.quantile_us(1.0), 100.0);
  // A later out-of-order record is visible immediately (no sort cache).
  latency.record_us(0.5);
  EXPECT_DOUBLE_EQ(latency.quantile_us(0.0), 0.5);
}

TEST(TelemetrySpans, RingWrapsAndCountsOverwrites) {
  Registry registry{nullptr, 4};
  registry.set_enabled(true);
  for (int i = 0; i < 6; ++i) {
    const SimTime start = SimTime{} + seconds(static_cast<double>(i));
    registry.record_span("test", "span", start, start + microseconds(10.0));
  }
  EXPECT_EQ(registry.span_capacity(), 4u);
  EXPECT_EQ(registry.span_count(), 4u);
  EXPECT_EQ(registry.spans_dropped(), 2u);
  // Oldest retained is the third recorded (t=2s); newest is the sixth.
  EXPECT_EQ(registry.span(0).start_ns, (SimTime{} + seconds(2.0)).ns());
  EXPECT_EQ(registry.span(3).start_ns, (SimTime{} + seconds(5.0)).ns());

  registry.clear_spans();
  EXPECT_EQ(registry.span_count(), 0u);
}

TEST(TelemetrySpans, DisabledRecordsNothing) {
  Registry registry{nullptr, 4};
  registry.record_span("test", "span", SimTime{}, SimTime{} + seconds(1.0));
  EXPECT_EQ(registry.span_count(), 0u);
  EXPECT_EQ(registry.spans_dropped(), 0u);
}

TEST(TelemetryAllocation, DisabledInstrumentsNeverTouchTheHeap) {
  Registry registry;  // default 4096-span ring, pre-allocated
  auto& counter = registry.counter("kecho", "submits");
  auto& gauge = registry.gauge("cpu", "util");
  auto& latency = registry.latency("dmon", "poll_us");

  const std::uint64_t before = dproc::bench::alloc_count();
  for (int i = 0; i < 10'000; ++i) {
    counter.add();
    gauge.set(1.0);
    latency.record_us(1.0);
    registry.record_span("kecho", "submit", SimTime{},
                         SimTime{} + microseconds(5.0));
  }
  EXPECT_EQ(dproc::bench::alloc_count() - before, 0u)
      << "disabled telemetry must be branch-only on hot paths";
}

TEST(TelemetryAllocation, EnabledSpanAndCounterRecordingIsAllocFree) {
  Registry registry;
  registry.set_enabled(true);
  auto& counter = registry.counter("kecho", "submits");

  const std::uint64_t before = dproc::bench::alloc_count();
  for (int i = 0; i < 10'000; ++i) {
    counter.add();
    registry.record_span("kecho", "submit", SimTime{},
                         SimTime{} + microseconds(5.0));
  }
  EXPECT_EQ(dproc::bench::alloc_count() - before, 0u)
      << "the span ring is pre-allocated; recording must not allocate";
}

TEST(TelemetryChromeTrace, ExportIsWellFormed) {
  Registry registry;
  registry.set_enabled(true);
  const SimTime start = SimTime{} + seconds(1.0);
  registry.record_span("kecho", "submit", start, start + microseconds(25.0));
  registry.record_span("dmon", "poll \"q\"", start + seconds(1.0),
                       start + seconds(1.0) + microseconds(100.0));

  const std::string json = registry.export_chrome_trace(3);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":1000000"), std::string::npos);  // µs
  EXPECT_NE(json.find("\"dur\":25"), std::string::npos);
  EXPECT_NE(json.find("poll \\\"q\\\""), std::string::npos)
      << "names must be JSON-escaped";

  Registry other;
  other.set_enabled(true);
  other.record_span("dmon", "poll", start, start + microseconds(10.0));
  const std::string merged = dproc::telemetry::merge_chrome_trace(
      {{0, &registry}, {1, &other}});
  EXPECT_NE(merged.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(merged.find("\"pid\":1"), std::string::npos);
}

TEST(TelemetryRender, ListsInstrumentsByName) {
  Registry registry;
  registry.set_enabled(true);
  registry.counter("kecho", "submits").add(12);
  registry.latency("dmon", "poll_us").record_us(4.0);

  const std::string text = registry.render();
  EXPECT_NE(text.find("telemetry enabled"), std::string::npos);
  EXPECT_NE(text.find("counter kecho/submits 12"), std::string::npos);
  EXPECT_NE(text.find("latency dmon/poll_us count=1"), std::string::npos);
}

// --- cluster integration ---------------------------------------------------

double first_line_value(const std::string& rendered) {
  return std::stod(rendered.substr(0, rendered.find('\n')));
}

TEST(TelemetryCluster, SelfMonitoringPublishesOverheadClusterWide) {
  dproc::sim::Engine engine;
  dproc::core::ClusterConfig config;  // paper platform: 8 nodes
  config.self_monitor = true;
  dproc::core::Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(12.0));

  // Local snapshot file on every node.
  auto snapshot = cluster.procfs(0).read("/proc/dproc/telemetry");
  ASSERT_TRUE(snapshot.is_ok());
  EXPECT_NE(snapshot.value().find("telemetry enabled"), std::string::npos);
  EXPECT_NE(snapshot.value().find("counter kecho/submits"), std::string::npos);

  // Every node's own overhead is visible on every *other* node through the
  // ordinary monitoring channel, under /proc/cluster/<node>/dproc/...
  for (std::size_t observer : {std::size_t{1}, std::size_t{7}}) {
    auto submits =
        cluster.procfs(observer).read("/proc/cluster/node0/dproc/submits");
    ASSERT_TRUE(submits.is_ok()) << "observer node " << observer;
    EXPECT_GT(first_line_value(submits.value()), 0.0);

    auto receives =
        cluster.procfs(observer).read("/proc/cluster/node0/dproc/receives");
    ASSERT_TRUE(receives.is_ok());
    EXPECT_GT(first_line_value(receives.value()), 0.0);

    auto p99 = cluster.procfs(observer).read(
        "/proc/cluster/node0/dproc/submit_p99_us");
    ASSERT_TRUE(p99.is_ok());
    EXPECT_GT(first_line_value(p99.value()), 0.0);
  }

  // The staleness split introduced for render_value: age_s measures from
  // the publisher's sample time, recv_age_s from local arrival; both small
  // and non-negative on a live feed.
  auto rendered =
      cluster.procfs(1).read("/proc/cluster/node0/dproc/submits");
  ASSERT_TRUE(rendered.is_ok());
  EXPECT_NE(rendered.value().find("age_s "), std::string::npos);
  EXPECT_NE(rendered.value().find("recv_age_s "), std::string::npos);

  // Spans accumulated and export merges one pid lane per node.
  std::vector<std::pair<int, const Registry*>> registries;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_GT(cluster.host(i).telemetry().span_count(), 0u) << "node " << i;
    registries.emplace_back(static_cast<int>(i),
                            &cluster.host(i).telemetry());
  }
  const std::string merged = dproc::telemetry::merge_chrome_trace(registries);
  EXPECT_NE(merged.find("\"pid\":7"), std::string::npos);
}

TEST(TelemetryCluster, DisabledByDefaultLeavesNoTrace) {
  dproc::sim::Engine engine;
  dproc::core::Cluster cluster{engine, {}};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(5.0));

  EXPECT_FALSE(cluster.host(0).telemetry().enabled());
  EXPECT_EQ(cluster.host(0).telemetry().counter("kecho", "submits").value(),
            0u);
  EXPECT_EQ(cluster.host(0).telemetry().span_count(), 0u);
  // No DPROC_MON module registered: the dproc metric files don't exist.
  EXPECT_FALSE(
      cluster.procfs(1).read("/proc/cluster/node0/dproc/submits").is_ok());
}

}  // namespace
