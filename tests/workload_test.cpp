#include <gtest/gtest.h>

#include "dproc/core/cluster.hpp"
#include "dproc/workload/iperf.hpp"
#include "dproc/workload/linpack.hpp"
#include "dproc/workload/md_source.hpp"

namespace dproc::workload {
namespace {

class WorkloadTest : public ::testing::Test {
 protected:
  WorkloadTest() {
    core::ClusterConfig config;
    config.node_count = 3;
    config.dproc_nodes.emplace();  // no dproc: pure workload testbed
    cluster = std::make_unique<core::Cluster>(engine, config);
  }

  void run_for(double sec) { engine.run_until(engine.now() + seconds(sec)); }

  sim::Engine engine;
  std::unique_ptr<core::Cluster> cluster;
};

TEST_F(WorkloadTest, LinpackAloneAchievesPeakMflops) {
  LinpackTask linpack{cluster->host(0)};
  run_for(10.0);
  EXPECT_NEAR(linpack.mflops(), 17.4, 1e-6);
}

TEST_F(WorkloadTest, TwoLinpackThreadsHalveEach) {
  LinpackTask a{cluster->host(0)};
  LinpackTask b{cluster->host(0)};
  run_for(10.0);
  EXPECT_NEAR(a.mflops(), 8.7, 1e-6);
  EXPECT_NEAR(b.mflops(), 8.7, 1e-6);
}

TEST_F(WorkloadTest, CheckpointIsolatesWindows) {
  LinpackTask linpack{cluster->host(0)};
  run_for(5.0);
  {
    // A competitor appears for the second window only.
    LinpackTask competitor{cluster->host(0)};
    linpack.checkpoint();
    run_for(5.0);
    EXPECT_NEAR(linpack.mflops_since_checkpoint(), 8.7, 1e-6);
  }
  EXPECT_NEAR(linpack.mflops(), 17.4 * 0.75, 1e-6);  // lifetime average
}

TEST_F(WorkloadTest, LinpackFeedsPmcCounters) {
  LinpackTask linpack{cluster->host(0)};
  run_for(10.0);
  (void)linpack.mflops();
  const std::uint64_t flops = cluster->host(0).pmc().read(host::Pmc::kFlops);
  EXPECT_NEAR(static_cast<double>(flops), 17.4e6 * 10, 17.4e6 * 0.01);
  EXPECT_GT(cluster->host(0).pmc().read(host::Pmc::kCacheMisses), 0u);
}

TEST_F(WorkloadTest, IperfReachesExpectedGoodput) {
  IperfConfig config;
  config.rate_bps = 50e6;  // below line rate: no drops
  IperfReceiver receiver{cluster->nic(1), config.port};
  IperfSender sender{cluster->nic(0), 1, config};
  sender.start();
  run_for(2.0);
  receiver.checkpoint();
  run_for(10.0);
  EXPECT_NEAR(receiver.goodput_bps_since_checkpoint(), 50e6, 1e6);
  EXPECT_EQ(cluster->nic(1).stats().datagrams_lost, 0u);
}

TEST_F(WorkloadTest, IperfSaturationCapsNear96Mbps) {
  IperfConfig config;
  config.rate_bps = 100e6;  // offered at line rate: framing caps goodput
  IperfReceiver receiver{cluster->nic(1), config.port};
  IperfSender sender{cluster->nic(0), 1, config};
  sender.start();
  run_for(5.0);
  receiver.checkpoint();
  run_for(20.0);
  const double goodput = receiver.goodput_bps_since_checkpoint();
  // The paper's testbed measures ~96 Mbps of the nominal 100.
  EXPECT_GT(goodput, 94e6);
  EXPECT_LT(goodput, 97e6);
}

TEST_F(WorkloadTest, IperfStopHaltsTraffic) {
  IperfConfig config;
  IperfReceiver receiver{cluster->nic(1), config.port};
  IperfSender sender{cluster->nic(0), 1, config};
  sender.start();
  run_for(1.0);
  sender.stop();
  const std::uint64_t count = sender.datagrams_sent();
  run_for(1.0);
  EXPECT_EQ(sender.datagrams_sent(), count);
}

TEST_F(WorkloadTest, IperfSetRateTakesEffect) {
  IperfConfig config;
  config.rate_bps = 10e6;
  IperfReceiver receiver{cluster->nic(1), config.port};
  IperfSender sender{cluster->nic(0), 1, config};
  sender.start();
  run_for(5.0);
  sender.set_rate(40e6);
  run_for(1.0);
  receiver.checkpoint();
  run_for(5.0);
  EXPECT_NEAR(receiver.goodput_bps_since_checkpoint(), 40e6, 2e6);
}

TEST(MdSource, FrameNumbersMonotone) {
  MdFrameSource source{1000};
  EXPECT_EQ(source.next_frame(SimTime{}).frame_number, 0u);
  EXPECT_EQ(source.next_frame(SimTime{}).frame_number, 1u);
  EXPECT_EQ(source.atom_count(), 1000u);
  EXPECT_EQ(source.full_frame_bytes(), 1000u * MdLayout::kFullBytesPerAtom);
}

TEST(MdSource, InvalidIperfConfigRejected) {
  sim::Engine engine;
  net::Fabric fabric{engine};
  const net::NodeId a = fabric.add_node("a");
  net::Nic nic{fabric, a};
  IperfConfig bad;
  bad.rate_bps = 0;
  EXPECT_THROW((IperfSender{nic, a, bad}), std::invalid_argument);
}

}  // namespace
}  // namespace dproc::workload
