// Logger behaviour and the umbrella header's self-containedness.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "dproc/dproc.hpp"  // must compile standalone

namespace dproc {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  LoggingTest() {
    Logger::instance().set_sink(
        [this](LogLevel level, const std::string& message) {
          captured.emplace_back(level, message);
        });
    Logger::instance().set_level(LogLevel::kTrace);
  }
  ~LoggingTest() override {
    // Restore defaults so other tests are unaffected.
    Logger::instance().set_sink([](LogLevel, const std::string&) {});
    Logger::instance().set_level(LogLevel::kWarn);
    Logger::instance().set_time_source({});
  }

  std::vector<std::pair<LogLevel, std::string>> captured;
};

TEST_F(LoggingTest, LevelsFilter) {
  Logger::instance().set_level(LogLevel::kWarn);
  DPROC_DEBUG() << "hidden";
  DPROC_WARN() << "visible";
  DPROC_ERROR() << "also visible";
  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarn);
  EXPECT_EQ(captured[0].second, "visible");
  EXPECT_EQ(captured[1].first, LogLevel::kError);
}

TEST_F(LoggingTest, StreamFormatting) {
  DPROC_INFO() << "x=" << 42 << " y=" << 1.5;
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].second, "x=42 y=1.5");
}

TEST_F(LoggingTest, DisabledLevelsSkipEvaluation) {
  Logger::instance().set_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "costly";
  };
  DPROC_ERROR() << expensive();
  EXPECT_EQ(evaluations, 0) << "operands must not evaluate when filtered";
  EXPECT_TRUE(captured.empty());
}

TEST_F(LoggingTest, TimeSourcePrefixesSimTime) {
  Logger::instance().set_time_source(
      [] { return SimTime::zero() + seconds(1.25); });
  DPROC_INFO() << "event";
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_NE(captured[0].second.find("t=1.25"), std::string::npos);
  EXPECT_NE(captured[0].second.find("event"), std::string::npos);
}

// The simulator is single-threaded, but workload generators and embedders
// may call into the logger from helper threads. level_ is an atomic and the
// sink/time-source are mutex-guarded, so concurrent set_level/enabled/log
// traffic must be race-free (run under DPROC_SANITIZE in CI).
TEST(LoggingThreaded, ConcurrentLevelChangesAndLoggingAreSafe) {
  Logger::instance().set_sink([](LogLevel, const std::string&) {});
  Logger::instance().set_level(LogLevel::kInfo);

  std::atomic<bool> stop{false};
  std::thread toggler([&] {
    for (int i = 0; i < 5'000; ++i) {
      Logger::instance().set_level(i % 2 == 0 ? LogLevel::kTrace
                                              : LogLevel::kError);
      Logger::instance().set_time_source(
          i % 2 == 0 ? std::function<SimTime()>{}
                     : std::function<SimTime()>{
                           [] { return SimTime::zero(); }});
    }
    stop.store(true, std::memory_order_relaxed);
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        DPROC_INFO() << "worker " << 42;
        (void)Logger::instance().enabled(LogLevel::kDebug);
      }
    });
  }
  toggler.join();
  for (std::thread& writer : writers) writer.join();

  // Restore defaults so other tests are unaffected.
  Logger::instance().set_sink([](LogLevel, const std::string&) {});
  Logger::instance().set_level(LogLevel::kWarn);
  Logger::instance().set_time_source({});
}

TEST(LogLevelNames, AllNamed) {
  EXPECT_STREQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(to_string(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(to_string(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(to_string(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace dproc
