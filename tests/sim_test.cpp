#include <gtest/gtest.h>

#include <vector>

#include "dproc/sim/engine.hpp"

namespace dproc::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), SimTime::zero());
  EXPECT_EQ(engine.pending_events(), 0u);
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(SimTime{300}, [&] { order.push_back(3); });
  engine.schedule_at(SimTime{100}, [&] { order.push_back(1); });
  engine.schedule_at(SimTime{200}, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, TiesFireInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(SimTime{100}, [&, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, ClockAdvancesToEventTime) {
  Engine engine;
  SimTime observed;
  engine.schedule_after(seconds(2.0), [&] { observed = engine.now(); });
  engine.run();
  EXPECT_EQ(observed, SimTime::zero() + seconds(2.0));
}

TEST(Engine, ClockIsMonotoneThroughCallbacks) {
  Engine engine;
  SimTime last = SimTime::zero();
  for (int i = 0; i < 100; ++i) {
    engine.schedule_at(SimTime{i * 7 % 50}, [&] {
      EXPECT_GE(engine.now(), last);
      last = engine.now();
    });
  }
  engine.run();
}

TEST(Engine, SchedulingInThePastThrows) {
  Engine engine;
  engine.schedule_at(SimTime{100}, [] {});
  engine.run();
  EXPECT_THROW(engine.schedule_at(SimTime{50}, [] {}), std::invalid_argument);
}

TEST(Engine, NegativeDelayClampsToNow) {
  Engine engine;
  bool fired = false;
  engine.schedule_after(seconds(-1.0), [&] { fired = true; });
  engine.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, CancelPreventsFiring) {
  Engine engine;
  bool fired = false;
  EventHandle handle = engine.schedule_after(seconds(1.0), [&] { fired = true; });
  handle.cancel();
  engine.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelIsIdempotentAndSafeAfterFire) {
  Engine engine;
  EventHandle handle = engine.schedule_after(seconds(1.0), [] {});
  engine.run();
  handle.cancel();
  handle.cancel();
}

TEST(Engine, CancelledEventsDontCountAsProcessed) {
  Engine engine;
  EventHandle handle = engine.schedule_after(seconds(1.0), [] {});
  engine.schedule_after(seconds(2.0), [] {});
  handle.cancel();
  engine.run();
  EXPECT_EQ(engine.events_processed(), 1u);
}

TEST(Engine, PeriodicFiresAtPeriod) {
  Engine engine;
  std::vector<SimTime> fires;
  EventHandle timer = engine.schedule_periodic(seconds(1.0), [&] {
    fires.push_back(engine.now());
  });
  engine.run_until(SimTime::zero() + seconds(4.5));
  timer.cancel();
  ASSERT_EQ(fires.size(), 4u);
  for (std::size_t i = 0; i < fires.size(); ++i) {
    EXPECT_EQ(fires[i].ns(), seconds(static_cast<double>(i + 1)).ns());
  }
}

TEST(Engine, PeriodicCancelStopsChain) {
  Engine engine;
  int count = 0;
  EventHandle timer = engine.schedule_periodic(seconds(1.0), [&] { ++count; });
  engine.run_until(SimTime::zero() + seconds(2.5));
  timer.cancel();
  engine.run_until(SimTime::zero() + seconds(10.0));
  EXPECT_EQ(count, 2);
}

TEST(Engine, PeriodicCanCancelItself) {
  Engine engine;
  int count = 0;
  EventHandle timer;
  timer = engine.schedule_periodic(seconds(1.0), [&] {
    if (++count == 3) timer.cancel();
  });
  engine.run_until(SimTime::zero() + seconds(10.0));
  EXPECT_EQ(count, 3);
}

TEST(Engine, NonPositivePeriodThrows) {
  Engine engine;
  EXPECT_THROW(engine.schedule_periodic(SimDuration::zero(), [] {}),
               std::invalid_argument);
}

TEST(Engine, RunUntilAdvancesClockWhenIdle) {
  Engine engine;
  engine.run_until(SimTime::zero() + seconds(5.0));
  EXPECT_EQ(engine.now(), SimTime::zero() + seconds(5.0));
}

TEST(Engine, RunUntilDoesNotFireLaterEvents) {
  Engine engine;
  bool fired = false;
  engine.schedule_after(seconds(10.0), [&] { fired = true; });
  engine.run_until(SimTime::zero() + seconds(5.0));
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.pending_events(), 1u);
}

TEST(Engine, EventsScheduledFromCallbacksRun) {
  Engine engine;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) engine.schedule_after(seconds(1.0), chain);
  };
  engine.schedule_after(seconds(1.0), chain);
  engine.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(engine.now(), SimTime::zero() + seconds(5.0));
}

TEST(Engine, StepReturnsFalseWhenEmpty) {
  Engine engine;
  EXPECT_FALSE(engine.step());
  engine.schedule_after(seconds(1.0), [] {});
  EXPECT_TRUE(engine.step());
  EXPECT_FALSE(engine.step());
}

TEST(Engine, DefaultHandleIsInert) {
  EventHandle handle;
  EXPECT_FALSE(handle.valid());
  handle.cancel();  // no-op
}

}  // namespace
}  // namespace dproc::sim
