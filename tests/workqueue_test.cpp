// Master/worker load-balancing application tests.
#include <gtest/gtest.h>

#include "dproc/apps/workqueue.hpp"
#include "dproc/core/cluster.hpp"
#include "dproc/workload/linpack.hpp"

namespace dproc::apps {
namespace {

class WorkQueueTest : public ::testing::Test {
 protected:
  WorkQueueTest() {
    core::ClusterConfig config;
    config.node_count = 4;  // master + 3 workers
    cluster = std::make_unique<core::Cluster>(engine, config);
    cluster->start_dproc();
    engine.run_until(SimTime{} + seconds(2.0));
    for (std::size_t i = 1; i < 4; ++i) {
      workers.push_back(std::make_unique<Worker>(cluster->host(i),
                                                 cluster->nic(i), config_));
    }
  }

  std::unique_ptr<Master> make_master(SchedulePolicy policy) {
    WorkQueueConfig master_config = config_;
    master_config.policy = policy;
    auto master = std::make_unique<Master>(cluster->host(0), cluster->nic(0),
                                           cluster->dmon(0),
                                           std::vector<net::NodeId>{1, 2, 3},
                                           master_config);
    run_for(0.5);  // let every worker connection establish
    return master;
  }

  void run_for(double sec) { engine.run_until(engine.now() + seconds(sec)); }

  sim::Engine engine;
  WorkQueueConfig config_;
  std::unique_ptr<core::Cluster> cluster;
  std::vector<std::unique_ptr<Worker>> workers;
};

TEST_F(WorkQueueTest, AllUnitsCompleteExactlyOnce) {
  auto master = make_master(SchedulePolicy::kRoundRobin);
  master->submit(30);
  run_for(40.0);
  EXPECT_EQ(master->completed(), 30u);
  EXPECT_EQ(master->pending(), 0u);
  std::uint64_t worker_total = 0;
  for (const auto& worker : workers) worker_total += worker->units_completed();
  EXPECT_EQ(worker_total, 30u);
}

TEST_F(WorkQueueTest, RoundRobinBalancesOnIdleCluster) {
  auto master = make_master(SchedulePolicy::kRoundRobin);
  master->submit(30);
  run_for(40.0);
  for (const auto& [node, count] : master->per_worker_completed()) {
    EXPECT_EQ(count, 10u) << "node " << node;
  }
}

TEST_F(WorkQueueTest, TurnaroundMatchesServiceTimeWhenIdle) {
  auto master = make_master(SchedulePolicy::kDprocLoad);
  master->submit(3);  // one per worker, no queueing
  run_for(10.0);
  ASSERT_EQ(master->completed(), 3u);
  // 0.5 s of CPU plus transfer of 64 KB + 16 KB at 100 Mbps (~7 ms).
  EXPECT_NEAR(master->mean_turnaround_sec(), 0.51, 0.05);
}

TEST_F(WorkQueueTest, DprocPolicySteersAwayFromLoadedWorker) {
  // Worker 1 is crushed by background load; the dproc policy should give
  // it almost nothing once its loadavg propagates.
  workload::LinpackTask hog1{cluster->host(1)}, hog2{cluster->host(1)},
      hog3{cluster->host(1)};
  run_for(8.0);  // let the monitoring observe it

  auto master = make_master(SchedulePolicy::kDprocLoad);
  master->submit(40);
  run_for(60.0);
  EXPECT_EQ(master->completed(), 40u);
  const auto per_worker = master->per_worker_completed();
  EXPECT_LT(per_worker.at(1), per_worker.at(2) / 2) << "loaded worker should "
                                                       "receive far less";
  EXPECT_LT(per_worker.at(1), per_worker.at(3) / 2);
}

TEST_F(WorkQueueTest, DprocPolicyBeatsRoundRobinUnderSkewedLoad) {
  // The win shows in the batch makespan: round-robin keeps feeding the
  // crushed worker its fair share of units, and the batch waits for them.
  // A small outstanding cap would act as implicit backpressure (a
  // rudimentary balancer of its own), so both policies run with a cap
  // large enough that only the placement decision differs.
  config_.max_outstanding_per_worker = 100;
  workload::LinpackTask hog1{cluster->host(1)}, hog2{cluster->host(1)},
      hog3{cluster->host(1)};
  run_for(8.0);

  auto blind = make_master(SchedulePolicy::kRoundRobin);
  const SimTime blind_start = engine.now();
  blind->submit(40);
  run_for(80.0);
  ASSERT_EQ(blind->completed(), 40u);
  const double blind_makespan = (blind->last_completion_at() - blind_start).sec();

  auto informed = make_master(SchedulePolicy::kDprocLoad);
  const SimTime informed_start = engine.now();
  informed->submit(40);
  run_for(80.0);
  ASSERT_EQ(informed->completed(), 40u);
  const double informed_makespan =
      (informed->last_completion_at() - informed_start).sec();

  EXPECT_LT(informed_makespan, blind_makespan * 0.7)
      << "dproc-driven placement should finish the batch substantially "
         "sooner (blind=" << blind_makespan << "s)";
}

TEST_F(WorkQueueTest, OutstandingCapRespected) {
  auto master = make_master(SchedulePolicy::kDprocLoad);
  master->submit(100);
  run_for(0.5);  // nothing completed yet (units cost 0.5 s)
  // At most 3 workers x 4 outstanding are dispatched; the rest queue.
  EXPECT_GE(master->pending(), 100u - 12u);
}

}  // namespace
}  // namespace dproc::apps
