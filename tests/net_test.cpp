#include <gtest/gtest.h>

#include <algorithm>

#include "dproc/net/fabric.hpp"
#include "dproc/net/nic.hpp"
#include "dproc/net/tcp.hpp"
#include "dproc/net/wire.hpp"

namespace dproc::net {
namespace {

// --- wire codec -----------------------------------------------------------

TEST(Wire, RoundTripsScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.14159);
  w.str("hello");

  ByteReader r{w.bytes()};
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Wire, TruncatedReadFailsSafely) {
  ByteWriter w;
  w.u32(7);
  ByteReader r{w.bytes()};
  r.u32();
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_FALSE(r.ok());
}

TEST(Wire, CorruptStringLengthDetected) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes, provides none
  ByteReader r{w.bytes()};
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

// --- link + fabric ----------------------------------------------------------

class FabricTest : public ::testing::Test {
 protected:
  sim::Engine engine;
  Fabric fabric{engine};
};

TEST_F(FabricTest, StarDeliversWithSerializationAndPropagation) {
  const NodeId a = fabric.add_node("a");
  const NodeId b = fabric.add_node("b");
  fabric.build_star({a, b}, LinkConfig{});

  SimTime delivered;
  fabric.set_delivery_handler(b, [&](const Packet&) { delivered = engine.now(); });

  Packet p;
  p.src = a;
  p.dst = b;
  p.payload_bytes = 942;  // 1000 wire bytes with the 58-byte framing
  fabric.send(p);
  engine.run();

  // Two hops at 100 Mbps: 2 x (1000*8/100e6 s serialize + 25 us propagate).
  EXPECT_NEAR((delivered - SimTime::zero()).us(), 2 * (80.0 + 25.0), 1e-6);
}

TEST_F(FabricTest, BandwidthBoundsThroughput) {
  const NodeId a = fabric.add_node("a");
  const NodeId b = fabric.add_node("b");
  fabric.build_star({a, b}, LinkConfig{});

  std::uint64_t received = 0;
  fabric.set_delivery_handler(b, [&](const Packet& p) {
    received += p.wire_bytes();
  });
  // Offer ~2.4x the line rate for one second (20k pkt/s x 1500 B).
  for (int i = 0; i < 20'000; ++i) {
    engine.schedule_at(SimTime{i * 50'000}, [&] {
      Packet p;
      p.src = a;
      p.dst = b;
      p.payload_bytes = 1442;
      fabric.send(p);
    });
  }
  engine.run_until(SimTime::zero() + seconds(1.0));
  // 100 Mbps => at most 12.5 MB/s of wire bytes (minus buffer warmup slack).
  EXPECT_LE(received, 12'500'000u);
  EXPECT_GE(received, 11'000'000u);
}

TEST_F(FabricTest, TailDropWhenBufferFull) {
  const NodeId a = fabric.add_node("a");
  const NodeId b = fabric.add_node("b");
  LinkConfig small;
  small.buffer_bytes = 4000;
  fabric.build_star({a, b}, small);

  int dropped = 0, delivered = 0;
  fabric.set_delivery_handler(b, [&](const Packet&) { ++delivered; });
  for (int i = 0; i < 10; ++i) {
    Packet p;
    p.src = a;
    p.dst = b;
    p.payload_bytes = 1442;
    fabric.send(p, [&](const Packet&) { ++dropped; });
  }
  engine.run();
  EXPECT_GT(dropped, 0);
  EXPECT_GT(delivered, 0);
  EXPECT_EQ(dropped + delivered, 10);
}

TEST_F(FabricTest, TailDropFiresOnDropExactlyOnceAndStatsMatch) {
  const NodeId a = fabric.add_node("a");
  const NodeId b = fabric.add_node("b");
  LinkConfig small;
  small.buffer_bytes = 4000;
  const LinkId ab = fabric.add_link(small);
  fabric.set_route(a, b, {ab});

  constexpr int kPackets = 10;
  constexpr std::uint32_t kPayload = 1442;
  std::vector<int> drop_calls(kPackets, 0);
  int delivered = 0;
  fabric.set_delivery_handler(b, [&](const Packet&) { ++delivered; });
  for (int i = 0; i < kPackets; ++i) {
    Packet p;
    p.src = a;
    p.dst = b;
    p.seq = static_cast<std::uint64_t>(i);
    p.payload_bytes = kPayload;
    fabric.send(p, [&](const Packet& dropped) { ++drop_calls[dropped.seq]; });
  }
  engine.run();

  int total_drops = 0;
  for (int calls : drop_calls) {
    EXPECT_LE(calls, 1) << "on_drop must fire at most once per packet";
    total_drops += calls;
  }
  EXPECT_GT(total_drops, 0);
  EXPECT_EQ(total_drops + delivered, kPackets);
  const LinkStats& stats = fabric.link(ab).stats();
  EXPECT_EQ(stats.packets_dropped, static_cast<std::uint64_t>(total_drops));
  EXPECT_EQ(stats.bytes_dropped,
            static_cast<std::uint64_t>(total_drops) *
                (kPayload + Packet::kHeaderBytes));
  EXPECT_EQ(stats.packets_sent, static_cast<std::uint64_t>(delivered));
}

TEST_F(FabricTest, MultiHopDropEndsTraversal) {
  // a -> b over two links in sequence; the first is the bottleneck. A
  // packet dropped at hop 0 must never reach the second link.
  const NodeId a = fabric.add_node("a");
  const NodeId b = fabric.add_node("b");
  LinkConfig tiny;
  tiny.buffer_bytes = 4000;
  const LinkId first = fabric.add_link(tiny);
  const LinkId second = fabric.add_link(LinkConfig{});
  fabric.set_route(a, b, {first, second});

  int dropped = 0, delivered = 0;
  fabric.set_delivery_handler(b, [&](const Packet&) { ++delivered; });
  for (int i = 0; i < 10; ++i) {
    Packet p;
    p.src = a;
    p.dst = b;
    p.payload_bytes = 1442;
    fabric.send(p, [&](const Packet&) { ++dropped; });
  }
  engine.run();

  EXPECT_GT(dropped, 0);
  EXPECT_EQ(dropped + delivered, 10);
  EXPECT_EQ(fabric.link(first).stats().packets_dropped,
            static_cast<std::uint64_t>(dropped));
  // The downstream link only ever saw the survivors.
  EXPECT_EQ(fabric.link(second).stats().packets_sent,
            static_cast<std::uint64_t>(delivered));
  EXPECT_EQ(fabric.link(second).stats().packets_dropped, 0u);
}

TEST_F(FabricTest, DownLinkDropsEverythingUntilHealed) {
  const NodeId a = fabric.add_node("a");
  const NodeId b = fabric.add_node("b");
  const LinkId ab = fabric.add_link(LinkConfig{});
  fabric.set_route(a, b, {ab});

  int dropped = 0, delivered = 0;
  fabric.set_delivery_handler(b, [&](const Packet&) { ++delivered; });
  auto send_one = [&] {
    Packet p;
    p.src = a;
    p.dst = b;
    p.payload_bytes = 100;
    fabric.send(p, [&](const Packet&) { ++dropped; });
  };

  fabric.set_link_down(ab, true);
  send_one();
  engine.run();
  EXPECT_EQ(dropped, 1);
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(fabric.link(ab).stats().packets_dropped, 1u);

  fabric.set_link_down(ab, false);
  send_one();
  engine.run();
  EXPECT_EQ(dropped, 1);
  EXPECT_EQ(delivered, 1);
}

TEST_F(FabricTest, LossBurstIsSeededAndDeterministic) {
  auto run_pattern = [](std::uint64_t seed) {
    sim::Engine engine;
    Fabric fabric{engine};
    const NodeId a = fabric.add_node("a");
    const NodeId b = fabric.add_node("b");
    const LinkId ab = fabric.add_link(LinkConfig{});
    fabric.set_route(a, b, {ab});
    fabric.set_link_loss(ab, 0.5, seed);
    std::vector<bool> arrived(50, false);
    fabric.set_delivery_handler(
        b, [&](const Packet& p) { arrived[p.seq] = true; });
    for (int i = 0; i < 50; ++i) {
      Packet p;
      p.src = a;
      p.dst = b;
      p.seq = static_cast<std::uint64_t>(i);
      p.payload_bytes = 100;
      fabric.send(p);
      engine.run();
    }
    return arrived;
  };

  const auto first = run_pattern(0xfeed);
  const auto second = run_pattern(0xfeed);
  EXPECT_EQ(first, second) << "same seed must reproduce the drop pattern";
  const auto lost = static_cast<std::size_t>(
      std::count(first.begin(), first.end(), false));
  EXPECT_GT(lost, 10u);
  EXPECT_LT(lost, 40u);
  EXPECT_NE(first, run_pattern(0xbeef)) << "different seed, different burst";
}

TEST_F(FabricTest, LoopbackNeedsNoRoute) {
  const NodeId a = fabric.add_node("a");
  bool delivered = false;
  fabric.set_delivery_handler(a, [&](const Packet&) { delivered = true; });
  Packet p;
  p.src = a;
  p.dst = a;
  fabric.send(p);
  engine.run();
  EXPECT_TRUE(delivered);
}

TEST_F(FabricTest, MissingRouteThrows) {
  const NodeId a = fabric.add_node("a");
  const NodeId b = fabric.add_node("b");
  Packet p;
  p.src = a;
  p.dst = b;
  EXPECT_THROW(fabric.send(p), std::logic_error);
}

TEST_F(FabricTest, SharedLinkContention) {
  // a->c and b->c share c's downlink; combined goodput is capped by it.
  const NodeId a = fabric.add_node("a");
  const NodeId b = fabric.add_node("b");
  const NodeId c = fabric.add_node("c");
  fabric.build_star({a, b, c}, LinkConfig{});

  std::uint64_t received = 0;
  fabric.set_delivery_handler(c, [&](const Packet& p) {
    received += p.wire_bytes();
  });
  for (int i = 0; i < 1700; ++i) {
    engine.schedule_at(SimTime{i * 500'000}, [&, i] {
      for (NodeId src : {a, b}) {
        Packet p;
        p.src = src;
        p.dst = c;
        p.payload_bytes = 1442;
        fabric.send(p);
      }
    });
  }
  engine.run_until(SimTime::zero() + seconds(1.0));
  EXPECT_LE(received, 12'500'000u);
}

TEST_F(FabricTest, TraceHookSeesSendDeliverAndDrop) {
  const NodeId a = fabric.add_node("a");
  const NodeId b = fabric.add_node("b");
  LinkConfig small;
  small.buffer_bytes = 3000;
  fabric.build_star({a, b}, small);
  fabric.set_delivery_handler(b, [](const Packet&) {});

  int sends = 0, delivers = 0, drops = 0;
  SimTime last_event_time;
  fabric.set_trace_hook([&](Fabric::TraceEvent event, DropCause cause,
                            const Packet& p, SimTime at) {
    EXPECT_EQ(p.src, a);
    EXPECT_GE(at, last_event_time);
    last_event_time = at;
    switch (event) {
      case Fabric::TraceEvent::kSend: ++sends; break;
      case Fabric::TraceEvent::kDeliver: ++delivers; break;
      case Fabric::TraceEvent::kDrop: ++drops; break;
    }
    if (event == Fabric::TraceEvent::kDrop) {
      EXPECT_EQ(cause, DropCause::kBufferFull);
    } else {
      EXPECT_EQ(cause, DropCause::kNone);
    }
  });

  for (int i = 0; i < 6; ++i) {
    Packet p;
    p.src = a;
    p.dst = b;
    p.payload_bytes = 1400;
    fabric.send(p);
  }
  engine.run();
  EXPECT_EQ(sends, 6);
  EXPECT_GT(drops, 0);        // the tiny buffer overflowed
  EXPECT_GT(delivers, 0);
  EXPECT_EQ(delivers + drops, sends);  // every packet resolved exactly once
}

TEST_F(FabricTest, TraceHookSeesNodeDownDrops) {
  const NodeId a = fabric.add_node("a");
  const NodeId b = fabric.add_node("b");
  fabric.build_star({a, b}, LinkConfig{});
  int drops = 0;
  fabric.set_trace_hook([&](Fabric::TraceEvent event, DropCause cause,
                            const Packet&, SimTime) {
    if (event == Fabric::TraceEvent::kDrop) {
      ++drops;
      EXPECT_EQ(cause, DropCause::kNodeDown);
    }
  });
  fabric.set_node_down(a, true);
  Packet p;
  p.src = a;
  p.dst = b;
  fabric.send(p);
  engine.run();
  EXPECT_EQ(drops, 1);
}

// --- datagram service ---------------------------------------------------

class NicTest : public ::testing::Test {
 protected:
  NicTest() {
    a = fabric.add_node("a");
    b = fabric.add_node("b");
    fabric.build_star({a, b}, LinkConfig{});
    nic_a = std::make_unique<Nic>(fabric, a);
    nic_b = std::make_unique<Nic>(fabric, b);
  }

  sim::Engine engine;
  Fabric fabric{engine};
  NodeId a{}, b{};
  std::unique_ptr<Nic> nic_a, nic_b;
};

TEST_F(NicTest, DatagramDelivered) {
  std::string got;
  nic_b->bind_datagram(9, [&](NodeId from, Port, const MessagePtr& m) {
    EXPECT_EQ(from, a);
    got.assign(m->header.begin(), m->header.end());
  });
  ByteWriter w;
  w.str("ping");
  nic_a->send_datagram(b, 9, make_message(w.take()));
  engine.run();
  EXPECT_NE(got.find("ping"), std::string::npos);
  EXPECT_EQ(nic_b->stats().datagrams_received, 1u);
}

TEST_F(NicTest, LargeDatagramFragmentsAndReassembles) {
  std::uint64_t got = 0;
  nic_b->bind_datagram(9, [&](NodeId, Port, const MessagePtr& m) {
    got = m->size();
  });
  nic_a->send_datagram(b, 9, make_message({}, 50'000));
  engine.run();
  EXPECT_EQ(got, 50'000u);
}

TEST_F(NicTest, UnboundPortSilentlyDrops) {
  nic_a->send_datagram(b, 1234, make_message({}, 10));
  engine.run();  // no crash; counted as received but unhandled
  EXPECT_EQ(nic_b->stats().datagrams_received, 1u);
}

TEST_F(NicTest, LossDetectedViaSequenceGap) {
  // Tiny buffer: a burst overflows and datagrams vanish.
  sim::Engine eng;
  Fabric fab{eng};
  const NodeId x = fab.add_node("x");
  const NodeId y = fab.add_node("y");
  LinkConfig small;
  small.buffer_bytes = 3000;
  fab.build_star({x, y}, small);
  Nic nx{fab, x}, ny{fab, y};
  int handled = 0;
  ny.bind_datagram(5, [&](NodeId, Port, const MessagePtr&) { ++handled; });
  // Bursts overflow the buffer; the gaps between bursts let survivors
  // through, so the receiver can observe the sequence gaps.
  for (int burst = 0; burst < 10; ++burst) {
    eng.schedule_at(SimTime{burst * 5'000'000}, [&] {
      for (int i = 0; i < 4; ++i) {
        nx.send_datagram(y, 5, make_message({}, 1400), 5);
      }
    });
  }
  eng.run();
  EXPECT_EQ(nx.stats().datagrams_sent, 40u);
  EXPECT_GT(ny.stats().datagrams_lost, 0u);
  const DatagramFlowStats* flow = ny.datagram_flow(x, 5);
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->received, static_cast<std::uint64_t>(handled));
  // FIFO fabric: every datagram before the last delivered one is accounted
  // as either received or lost (a dropped tail is undetectable).
  EXPECT_LE(flow->received + flow->lost, 40u);
  EXPECT_GE(flow->received + flow->lost, 30u);
}

TEST_F(NicTest, EndToEndDelayMeasured) {
  nic_b->bind_datagram(9, [](NodeId, Port, const MessagePtr&) {});
  nic_a->send_datagram(b, 9, make_message({}, 942 - 8), 9);
  engine.run();
  const DatagramFlowStats* flow = nic_b->datagram_flow(a, 9);
  ASSERT_NE(flow, nullptr);
  EXPECT_GT(flow->delay_us.value(), 100.0);  // > 2 hops' propagation
  EXPECT_LT(flow->delay_us.value(), 1000.0);
}

// --- tcp ------------------------------------------------------------------

class TcpTest : public NicTest {};

TEST_F(TcpTest, ConnectEstablishesBothEnds) {
  TcpConnection::Ptr server_side;
  TcpListener listener{*nic_b, 80, TcpConfig{},
                       [&](TcpConnection::Ptr conn) { server_side = conn; }};
  bool established = false;
  auto client = TcpConnection::connect(*nic_a, b, 80, TcpConfig{},
                                       [&] { established = true; });
  engine.run();
  EXPECT_TRUE(established);
  ASSERT_NE(server_side, nullptr);
  EXPECT_TRUE(client->established());
  EXPECT_EQ(server_side->remote_node(), a);
}

TEST_F(TcpTest, SmallMessageRoundTrip) {
  TcpConnection::Ptr server_side;
  TcpListener listener{*nic_b, 80, TcpConfig{},
                       [&](TcpConnection::Ptr conn) {
                         server_side = conn;
                         // Capture a raw pointer: a shared_ptr capture stored
                         // inside the connection itself would cycle and leak.
                         conn->set_message_handler(
                             [c = conn.get()](const MessagePtr& m) {
                               // Echo back.
                               c->send(m);
                             });
                       }};
  auto client = TcpConnection::connect(*nic_a, b, 80);
  std::uint64_t echoed = 0;
  client->set_message_handler([&](const MessagePtr& m) { echoed = m->size(); });
  ByteWriter w;
  w.str("hello world");
  client->send(make_message(w.take()));
  engine.run();
  EXPECT_GT(echoed, 0u);
  EXPECT_EQ(client->stats().messages_delivered, 1u);
}

TEST_F(TcpTest, MultiSegmentMessageDeliveredOnceInOrder) {
  std::vector<std::uint64_t> sizes;
  TcpListener listener{*nic_b, 80, TcpConfig{},
                       [&](TcpConnection::Ptr conn) {
                         conn->set_message_handler([&](const MessagePtr& m) {
                           sizes.push_back(m->size());
                         });
                       }};
  auto client = TcpConnection::connect(*nic_a, b, 80);
  client->send(make_message({}, 1'000'000));
  client->send(make_message({}, 10));
  client->send(make_message({}, 500'000));
  engine.run();
  EXPECT_EQ(sizes, (std::vector<std::uint64_t>{1'000'000, 10, 500'000}));
}

TEST_F(TcpTest, SendBeforeEstablishedIsFlushed) {
  std::uint64_t got = 0;
  TcpListener listener{*nic_b, 80, TcpConfig{},
                       [&](TcpConnection::Ptr conn) {
                         conn->set_message_handler(
                             [&](const MessagePtr& m) { got = m->size(); });
                       }};
  auto client = TcpConnection::connect(*nic_a, b, 80);
  client->send(make_message({}, 4096));  // handshake still in flight
  engine.run();
  EXPECT_EQ(got, 4096u);
}

TEST_F(TcpTest, RecoversFromLossAndCountsRetransmissions) {
  // Force drops with a tiny switch buffer.
  sim::Engine eng;
  Fabric fab{eng};
  const NodeId x = fab.add_node("x");
  const NodeId y = fab.add_node("y");
  LinkConfig small;
  small.buffer_bytes = 8'000;
  fab.build_star({x, y}, small);
  Nic nx{fab, x}, ny{fab, y};

  std::uint64_t got = 0;
  TcpListener listener{ny, 80, TcpConfig{},
                       [&](TcpConnection::Ptr conn) {
                         conn->set_message_handler(
                             [&](const MessagePtr& m) { got = m->size(); });
                       }};
  auto client = TcpConnection::connect(nx, y, 80);
  client->send(make_message({}, 2'000'000));
  eng.run_until(SimTime{} + seconds(30.0));
  EXPECT_EQ(got, 2'000'000u) << "reliable delivery despite drops";
  EXPECT_GT(client->stats().retransmissions, 0u);
}

TEST_F(TcpTest, RttMeasuredOnLan) {
  TcpListener listener{*nic_b, 80, TcpConfig{}, [](TcpConnection::Ptr) {}};
  auto client = TcpConnection::connect(*nic_a, b, 80);
  client->send(make_message({}, 1000));
  engine.run();
  // Two hops each way, ~25 us propagation per hop plus serialization.
  EXPECT_GT(client->srtt().us(), 50.0);
  EXPECT_LT(client->srtt().us(), 2000.0);
}

TEST_F(TcpTest, ThroughputApproachesLineRate) {
  std::uint64_t got = 0;
  TcpListener listener{*nic_b, 80, TcpConfig{},
                       [&](TcpConnection::Ptr conn) {
                         conn->set_message_handler(
                             [&](const MessagePtr& m) { got += m->size(); });
                       }};
  auto client = TcpConnection::connect(*nic_a, b, 80);
  for (int i = 0; i < 10; ++i) client->send(make_message({}, 1'000'000));
  engine.run_until(SimTime{} + seconds(2.0));
  // 10 MB over 100 Mbps takes ~0.85 s; allow slow start and framing slack.
  EXPECT_EQ(got, 10'000'000u);
}

TEST_F(TcpTest, StatsTrackQueueAndFlight) {
  TcpListener listener{*nic_b, 80, TcpConfig{}, [](TcpConnection::Ptr) {}};
  auto client = TcpConnection::connect(*nic_a, b, 80);
  client->send(make_message({}, 10'000'000));
  const TcpStats stats = client->stats();
  EXPECT_EQ(stats.messages_sent, 1u);
  EXPECT_GT(stats.send_queue_bytes, 0u);
  engine.run_until(SimTime{} + seconds(5.0));
  EXPECT_EQ(client->stats().send_queue_bytes, 0u);
  EXPECT_EQ(client->stats().in_flight_bytes, 0u);
  EXPECT_GE(client->stats().bytes_acked, 10'000'000u);
}

TEST_F(TcpTest, CloseStopsTraffic) {
  TcpListener listener{*nic_b, 80, TcpConfig{}, [](TcpConnection::Ptr) {}};
  auto client = TcpConnection::connect(*nic_a, b, 80);
  engine.run();
  client->close();
  client->send(make_message({}, 1000));
  const std::uint64_t sent_before = nic_a->stats().bytes_sent;
  engine.run();
  EXPECT_EQ(nic_a->stats().bytes_sent, sent_before);
}

}  // namespace
}  // namespace dproc::net
