// Golden-trace determinism pin for the hot-path overhaul.
//
// Runs a fig6-style event-submission workload (4-node cluster, d-mons
// polling once per second, an E-code filter deployed everywhere) and
// fingerprints the complete observable trace: every sample vector each
// d-mon collects, every remote metric that arrives over KECho, the
// engine's global event count and final costs. The expected hashes were
// recorded from the seed implementation; the VM scratch-arena reuse, the
// zero-copy KECho frames and the scheduler rework must all reproduce the
// byte-identical trace, or this test fails.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "dproc/core/cluster.hpp"

namespace dproc {
namespace {

/// FNV-1a, the fingerprint accumulator. Doubles are hashed bit-exactly.
struct TraceHash {
  std::uint64_t h = 1469598103934665603ull;

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
};

const char* kDeployedFilter = R"({
  int i = 0;
  if (input[LOADAVG].value > 0.1) {
    output[i] = input[LOADAVG];
    i = i + 1;
  }
  if (input[FREEMEM].value < input[FREEMEM].last_value_sent * 0.999) {
    output[i] = input[FREEMEM];
    i = i + 1;
  }
  if (input[RTT].value > input[RTT].last_value_sent) {
    output[i] = input[RTT];
    i = i + 1;
  }
  if (input[NET_OUT].value > 0) {
    output[i] = input[NET_OUT];
    i = i + 1;
  }
})";

struct TraceResult {
  std::uint64_t hash = 0;
  std::uint64_t remote_metrics_seen = 0;
  std::uint64_t events_processed = 0;
};

TraceResult run_workload() {
  sim::Engine engine;
  core::ClusterConfig config;
  config.node_count = 4;
  config.dmon.poll_period = seconds(1.0);
  core::Cluster cluster{engine, config};
  cluster.start_dproc();

  TraceResult out;
  TraceHash hash;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    cluster.dmon(i)->add_sample_observer(
        [&hash, i](const std::vector<core::MetricSample>& samples,
                   SimTime now) {
          hash.u64(i);
          hash.u64(static_cast<std::uint64_t>(now.ns()));
          for (const core::MetricSample& s : samples) {
            hash.u64(s.id);
            hash.f64(s.value);
            hash.u64(static_cast<std::uint64_t>(s.sampled_at.ns()));
          }
        });
  }

  // Let channels establish on the parameter path, then deploy the E-code
  // filter to every node so the steady state exercises the VM each poll.
  engine.run_until(SimTime{} + seconds(3.0));
  core::TuningConfig tuning;
  tuning.filter_source = kDeployedFilter;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_TRUE(cluster.dmon(i)->apply_tuning(tuning).is_ok())
        << cluster.dmon(i)->last_control_error();
  }
  engine.run_until(SimTime{} + seconds(30.0));

  // Fold in what actually crossed the wire: every peer's view of every
  // remote metric, value and arrival time included.
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    core::DMon& dmon = *cluster.dmon(i);
    for (std::size_t j = 0; j < cluster.size(); ++j) {
      if (i == j) continue;
      const auto node = static_cast<net::NodeId>(j);
      for (core::MetricId id = 0; id < dmon.metric_table().size(); ++id) {
        const core::RemoteMetric* m = dmon.remote_metric(node, id);
        if (m == nullptr || !m->valid) continue;
        ++out.remote_metrics_seen;
        hash.u64(i);
        hash.u64(node);
        hash.u64(id);
        hash.f64(m->value);
        hash.u64(static_cast<std::uint64_t>(m->sampled_at.ns()));
        hash.u64(static_cast<std::uint64_t>(m->received_at.ns()));
      }
    }
    hash.u64(dmon.last_poll().events_received);
    hash.u64(dmon.last_poll().filter_instructions);
    hash.f64(dmon.submit_cost_us().sum());
    hash.f64(dmon.receive_cost_us().sum());
  }
  hash.u64(engine.events_processed());
  hash.u64(static_cast<std::uint64_t>(engine.now().ns()));
  out.events_processed = engine.events_processed();
  out.hash = hash.h;
  return out;
}

// Recorded from the seed implementation (pre-overhaul); the optimized hot
// paths must reproduce this trace exactly.
constexpr std::uint64_t kGoldenTraceHash = 0xbd2349cf9c9ad4d6ull;

TEST(TraceGolden, EventSubmissionWorkloadMatchesSeedTrace) {
  const TraceResult r = run_workload();
  // The workload must be non-trivial: monitoring data crossed the wire and
  // the engine processed a real event volume.
  EXPECT_GT(r.remote_metrics_seen, 50u);
  EXPECT_GT(r.events_processed, 1000u);
  EXPECT_EQ(r.hash, kGoldenTraceHash)
      << "trace hash 0x" << std::hex << r.hash
      << " diverged from the recorded seed trace";
}

TEST(TraceGolden, WorkloadIsRunToRunDeterministic) {
  EXPECT_EQ(run_workload().hash, run_workload().hash);
}

}  // namespace
}  // namespace dproc
