// Replicated-registry tests: leader-lease failover, follower sync, write
// forwarding/queuing, crash recovery, and the client-side channel cache.
//
// The RegistryChaosSmoke suite is the fast fault subset wired into ctest as
// `chaos_smoke_registry`; RegistryStorm holds the 512-node leader-kill
// join-storm acceptance scenario from the ISSUE brief.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "dproc/core/cluster.hpp"
#include "dproc/sim/fault.hpp"

namespace dproc::core {
namespace {

SimTime at(double sec) { return SimTime::zero() + seconds(sec); }

void run_to(Cluster& cluster, double sec) {
  cluster.engine().run_until(at(sec));
}

/// Replicated registry, no d-mons: the kecho layer is driven by hand so the
/// directory traffic is the only thing on the wire.
ClusterConfig replicated_config(std::size_t nodes, bool join_retries = true) {
  ClusterConfig config;
  config.node_count = nodes;
  config.registry.enabled = true;
  config.registry.replicas = 3;
  config.liveness.join_retries = join_retries;
  config.liveness.retry_jitter = 1.0;
  config.dproc_nodes = std::vector<std::size_t>{};  // no monitors
  return config;
}

/// Full channel table of one replica, for cross-replica agreement checks.
std::map<std::string, std::vector<kecho::Member>> table_of(
    kecho::RegistryServer& replica) {
  std::map<std::string, std::vector<kecho::Member>> table;
  for (std::string_view name : replica.channel_names()) {
    const std::string key{name};
    table.emplace(key, replica.channel_members(key));
  }
  return table;
}

void expect_tables_agree(Cluster& cluster,
                         std::initializer_list<std::size_t> replicas) {
  ASSERT_GE(replicas.size(), 2u);
  auto it = replicas.begin();
  const auto reference = table_of(cluster.registry_replica(*it));
  const std::size_t ref_id = *it;
  for (++it; it != replicas.end(); ++it) {
    EXPECT_EQ(table_of(cluster.registry_replica(*it)), reference)
        << "replica " << *it << " disagrees with replica " << ref_id;
  }
}

TEST(RegistryReplication, ReplicaZeroLeadsFromBirth) {
  sim::Engine engine;
  Cluster cluster(engine, replicated_config(4));
  run_to(cluster, 1.2);

  ASSERT_EQ(cluster.registry_replica_count(), 3u);
  EXPECT_TRUE(cluster.registry_replica(0).is_leader());
  EXPECT_FALSE(cluster.registry_replica(1).is_leader());
  EXPECT_FALSE(cluster.registry_replica(2).is_leader());
  EXPECT_EQ(cluster.registry_leader(), &cluster.registry_replica(0));
  // Birth leadership is not a failover and bumps no epoch.
  EXPECT_EQ(cluster.registry_replica(0).epoch(), 0u);
  EXPECT_EQ(cluster.registry_replica(0).stats().failovers, 0u);
  for (std::size_t r = 1; r < 3; ++r) {
    EXPECT_EQ(cluster.registry_replica(r).leader_id(), 0u);
  }
}

TEST(RegistryReplication, SyncKeepsFollowerTablesIdentical) {
  sim::Engine engine;
  Cluster cluster(engine, replicated_config(6));
  cluster.node(3).kecho->join("alpha");
  cluster.node(4).kecho->join("alpha");
  cluster.node(5).kecho->join("alpha");
  cluster.node(4).kecho->join("beta");
  cluster.node(5).kecho->join("beta");
  run_to(cluster, 2.0);

  kecho::RegistryServer& leader = cluster.registry_replica(0);
  EXPECT_EQ(leader.channel_members("alpha").size(), 3u);
  EXPECT_EQ(leader.channel_members("beta").size(), 2u);
  EXPECT_GT(leader.stats().syncs_sent, 0u);
  EXPECT_GT(cluster.registry_replica(1).stats().syncs_applied, 0u);
  expect_tables_agree(cluster, {0, 1, 2});

  // A mutation (graceful leave) propagates to every follower identically.
  cluster.leave_node(4);
  run_to(cluster, 3.0);
  EXPECT_EQ(leader.channel_members("alpha").size(), 2u);
  EXPECT_EQ(leader.channel_members("beta").size(), 1u);
  expect_tables_agree(cluster, {0, 1, 2});
}

TEST(RegistryReplication, DisabledKeepsSingleServer) {
  sim::Engine engine;
  ClusterConfig config;
  config.node_count = 4;
  config.dproc_nodes = std::vector<std::size_t>{};
  Cluster cluster(engine, config);
  EXPECT_EQ(cluster.registry_replica_count(), 1u);
  EXPECT_FALSE(cluster.registry().replicated());
  EXPECT_TRUE(cluster.registry().is_leader());
  EXPECT_EQ(cluster.registry_leader(), &cluster.registry());
}

// --- failover ---------------------------------------------------------------

TEST(RegistryChaosSmoke, LeaderKillFailsOverAndJoinsComplete) {
  sim::Engine engine;
  Cluster cluster(engine, replicated_config(8));
  // Kill the leader just before the joins, so the whole first attempt wave
  // lands on a dead replica and has to ride retries through the failover.
  sim::FaultPlan plan;
  plan.kill_registry_leader(at(0.95));
  cluster.inject(plan);

  std::vector<kecho::Channel*> channels(cluster.size(), nullptr);
  cluster.engine().schedule_at(at(1.0), [&cluster, &channels] {
    for (std::size_t i = 3; i < cluster.size(); ++i) {
      channels[i] = &cluster.node(i).kecho->join("storm");
    }
  });

  // Replica 0's lease (heartbeat 500ms x miss 3) runs out of the last
  // pre-kill heartbeat; replica 1 must claim within one lease plus a
  // heartbeat round, and the queued/retried joins drain right after.
  run_to(cluster, 4.0);
  kecho::RegistryServer& successor = cluster.registry_replica(1);
  EXPECT_EQ(cluster.registry_leader(), &successor);
  EXPECT_TRUE(successor.is_leader());
  EXPECT_GE(successor.epoch(), 1u);
  EXPECT_EQ(successor.stats().failovers, 1u);

  for (std::size_t i = 3; i < cluster.size(); ++i) {
    ASSERT_NE(channels[i], nullptr);
    EXPECT_TRUE(channels[i]->ready()) << "node " << i << " join incomplete";
    EXPECT_EQ(channels[i]->id(), channels[3]->id());
    EXPECT_NE(channels[i]->id(), 0u);
  }
  // The survivors agree on one membership with no duplicates.
  expect_tables_agree(cluster, {1, 2});
  const auto& members = successor.channel_members("storm");
  EXPECT_EQ(members.size(), 5u);
  std::set<net::NodeId> unique_nodes;
  for (const kecho::Member& m : members) unique_nodes.insert(m.node);
  EXPECT_EQ(unique_nodes.size(), members.size());
  // The joins reached the successor as forwards or parked writes.
  EXPECT_GT(successor.stats().forwards + successor.stats().queued_writes +
                cluster.registry_replica(2).stats().forwards,
            0u);
}

TEST(RegistryChaosSmoke, ReturnedLeaderRecoversAndReclaims) {
  sim::Engine engine;
  Cluster cluster(engine, replicated_config(8));
  sim::FaultPlan plan;
  plan.kill_registry_leader(at(0.95));
  plan.restart_node(at(6.0), 0);
  cluster.inject(plan);

  cluster.engine().schedule_at(at(1.0), [&cluster] {
    for (std::size_t i = 3; i < cluster.size(); ++i) {
      cluster.node(i).kecho->join("storm");
    }
  });

  run_to(cluster, 5.0);
  EXPECT_EQ(cluster.registry_leader(), &cluster.registry_replica(1));

  // The old leader returns with a cold table: it must snapshot from the
  // survivors, wait out one grace lease, and only then — lowest live
  // replica again — reclaim leadership with a fresh epoch.
  run_to(cluster, 10.0);
  kecho::RegistryServer& returned = cluster.registry_replica(0);
  EXPECT_TRUE(returned.online());
  EXPECT_FALSE(returned.recovering());
  EXPECT_EQ(cluster.registry_leader(), &returned);
  EXPECT_GE(returned.epoch(), 2u);
  EXPECT_GT(returned.stats().syncs_applied, 0u);
  expect_tables_agree(cluster, {0, 1, 2});
  EXPECT_EQ(returned.channel_members("storm").size(), 5u);
  // Replica 1 yielded cleanly.
  EXPECT_FALSE(cluster.registry_replica(1).is_leader());
}

// --- client-side channel cache ---------------------------------------------

ClusterConfig cache_config(std::size_t nodes) {
  ClusterConfig config = replicated_config(nodes);
  config.registry.client_cache = true;
  config.registry.cache_lease = seconds(1.0);
  return config;
}

TEST(RegistryClientCache, LookupHitsThenExpires) {
  sim::Engine engine;
  Cluster cluster(engine, cache_config(5));
  cluster.node(1).kecho->join("metrics");
  cluster.node(2).kecho->join("metrics");
  run_to(cluster, 0.5);

  kecho::Node& observer = *cluster.node(4).kecho;
  std::size_t responses = 0;
  std::vector<kecho::Member> seen;
  auto record = [&](const kecho::JoinResponse& response) {
    ++responses;
    EXPECT_TRUE(response.found);
    seen = response.members;
  };
  observer.lookup_members("metrics", record);
  run_to(cluster, 1.0);
  ASSERT_EQ(responses, 1u);
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(observer.cache_stats().misses, 1u);
  EXPECT_EQ(observer.cache_stats().hits, 0u);

  // A fresh cached record answers synchronously, without a round trip.
  observer.lookup_members("metrics", record);
  EXPECT_EQ(responses, 2u);
  EXPECT_EQ(observer.cache_stats().hits, 1u);
  EXPECT_EQ(seen.size(), 2u);

  // Past the lease the entry is discarded lazily and the registry is asked
  // again; the served staleness never exceeded the lease.
  run_to(cluster, 2.5);
  observer.lookup_members("metrics", record);
  EXPECT_EQ(observer.cache_stats().expiries, 1u);
  EXPECT_EQ(observer.cache_stats().misses, 2u);
  run_to(cluster, 3.0);
  EXPECT_EQ(responses, 3u);
  EXPECT_LE(observer.cache_stats().max_served_staleness_ns,
            seconds(1.0).ns());
}

TEST(RegistryClientCache, MutationInvalidatesLookupCachers) {
  sim::Engine engine;
  Cluster cluster(engine, cache_config(5));
  cluster.node(1).kecho->join("metrics");
  cluster.node(2).kecho->join("metrics");
  run_to(cluster, 0.5);

  kecho::Node& observer = *cluster.node(4).kecho;
  observer.lookup_members("metrics", [](const kecho::JoinResponse&) {});
  run_to(cluster, 0.8);
  ASSERT_EQ(observer.cache_stats().misses, 1u);

  // Node 2 leaves: the registry invalidates everyone it served a lookup
  // for, so the observer's next lookup misses and sees one member.
  cluster.leave_node(2);
  run_to(cluster, 1.2);
  EXPECT_GE(observer.cache_stats().invalidations, 1u);
  std::vector<kecho::Member> seen;
  observer.lookup_members("metrics",
                          [&](const kecho::JoinResponse& response) {
                            seen = response.members;
                          });
  EXPECT_EQ(observer.cache_stats().hits, 0u);
  run_to(cluster, 1.6);
  EXPECT_EQ(seen.size(), 1u);
  EXPECT_GT(cluster.registry_replica(0).stats().invalidations_sent, 0u);
}

TEST(RegistryClientCache, NegativeLookupIsCachedToo) {
  sim::Engine engine;
  Cluster cluster(engine, cache_config(4));
  run_to(cluster, 0.2);

  kecho::Node& observer = *cluster.node(3).kecho;
  bool found = true;
  observer.lookup_members("ghost", [&](const kecho::JoinResponse& response) {
    found = response.found;
  });
  run_to(cluster, 0.6);
  EXPECT_FALSE(found);
  EXPECT_EQ(observer.cache_stats().misses, 1u);

  found = true;
  observer.lookup_members("ghost", [&](const kecho::JoinResponse& response) {
    found = response.found;
  });
  EXPECT_FALSE(found);  // served synchronously from the cached negative
  EXPECT_EQ(observer.cache_stats().hits, 1u);
}

TEST(RegistryClientCache, JoinAdoptsCachedLookupInstantly) {
  sim::Engine engine;
  Cluster cluster(engine, cache_config(5));
  cluster.node(1).kecho->join("metrics");
  cluster.node(2).kecho->join("metrics");
  run_to(cluster, 0.3);

  // A lookup populates the cache; the join that follows within the lease
  // adopts the cached record synchronously — the channel is ready before
  // any registry round trip — while the registry's authoritative response
  // still lands and re-applies afterwards.
  kecho::Node& joiner = *cluster.node(4).kecho;
  joiner.lookup_members("metrics", [](const kecho::JoinResponse&) {});
  run_to(cluster, 0.6);
  ASSERT_EQ(joiner.cache_stats().misses, 1u);

  kecho::Channel& channel = joiner.join("metrics");
  EXPECT_TRUE(channel.ready());
  EXPECT_EQ(channel.members().size(), 2u);
  EXPECT_GE(joiner.cache_stats().hits, 1u);
  run_to(cluster, 1.0);
  EXPECT_TRUE(channel.ready());
  EXPECT_EQ(channel.members().size(), 2u);
  EXPECT_EQ(cluster.registry_replica(0).channel_members("metrics").size(), 3u);
  EXPECT_LE(joiner.cache_stats().max_served_staleness_ns, seconds(1.0).ns());
}

// --- the ISSUE acceptance scenario -----------------------------------------

TEST(RegistryStorm, LeaderKillMidJoinStorm512) {
  sim::Engine engine;
  Cluster cluster(engine, replicated_config(512));

  std::vector<kecho::Channel*> channels(cluster.size(), nullptr);
  cluster.engine().schedule_at(at(1.0), [&cluster, &channels] {
    for (std::size_t i = 3; i < cluster.size(); ++i) {
      channels[i] = &cluster.node(i).kecho->join("storm");
    }
  });
  // The kill lands 1ms into the storm: part of the wave was served by the
  // old leader (whose responses and syncs still drain the wire), the rest
  // is dropped at the dead NIC and must retry through the failover.
  sim::FaultPlan plan;
  plan.kill_registry_leader(at(1.001));
  cluster.inject(plan);

  // Bounded convergence: replica 0's lease expires 1.5s after its final
  // heartbeat (t=1.0); replica 1 claims at the next tick, so leadership is
  // settled by t=3.0 plus one heartbeat of slack.
  run_to(cluster, 3.6);
  kecho::RegistryServer& successor = cluster.registry_replica(1);
  ASSERT_EQ(cluster.registry_leader(), &successor);
  EXPECT_EQ(successor.stats().failovers, 1u);

  run_to(cluster, 15.0);
  // Every join completed, on one channel id, despite the mid-storm kill.
  std::size_t ready = 0;
  for (std::size_t i = 3; i < cluster.size(); ++i) {
    ASSERT_NE(channels[i], nullptr);
    if (channels[i]->ready()) ++ready;
    EXPECT_EQ(channels[i]->id(), channels[3]->id());
  }
  EXPECT_EQ(ready, cluster.size() - 3);

  // No lost or duplicated registrations: both survivors hold the identical
  // 509-member table.
  expect_tables_agree(cluster, {1, 2});
  const auto& members = successor.channel_members("storm");
  EXPECT_EQ(members.size(), cluster.size() - 3);
  std::set<net::NodeId> unique_nodes;
  for (const kecho::Member& m : members) unique_nodes.insert(m.node);
  EXPECT_EQ(unique_nodes.size(), members.size());

  // Cache-served state never exceeded the lease-staleness bound.
  const std::int64_t lease_ns = cluster.config().registry.cache_lease.ns();
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    EXPECT_LE(cluster.node(i).kecho->cache_stats().max_served_staleness_ns,
              lease_ns);
  }
}

}  // namespace
}  // namespace dproc::core
