// Accuracy and invariants of the core/sketch heavy-hitter library, the
// TOP_K monitoring modules built on it, and the filter sketch bridge. The
// load-bearing properties: count-min never undercounts, top-k recall on a
// skewed (Zipf) stream stays high, and the state footprint is constant in
// the entity count — the resource-aware bound the module family exists for.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <vector>

#include "dproc/core/monitors.hpp"
#include "dproc/core/sketch.hpp"
#include "dproc/ecode/ecode.hpp"
#include "dproc/util/rng.hpp"

namespace dproc::core {
namespace {

/// Exact per-key counts for comparison against the sketch.
using Exact = std::map<std::int64_t, double>;

std::vector<std::int64_t> exact_top(const Exact& counts, std::size_t k) {
  std::vector<std::pair<std::int64_t, double>> sorted(counts.begin(),
                                                      counts.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::vector<std::int64_t> keys;
  for (std::size_t i = 0; i < std::min(k, sorted.size()); ++i) {
    keys.push_back(sorted[i].first);
  }
  return keys;
}

/// Feeds `draws` Zipf(s) observations over `entities` keys into both the
/// sketch and an exact table, using the same deterministic observer the
/// TOP_K monitors use.
Exact feed_zipf(TopKSketch& sketch, std::size_t entities, double s,
                std::uint64_t seed, std::size_t draws) {
  auto observe = make_zipf_observer(entities, s, seed, draws);
  std::vector<std::pair<std::int64_t, double>> obs;
  observe(obs, SimTime::zero());
  Exact exact;
  for (const auto& [key, weight] : obs) {
    sketch.update(key, weight);
    exact[key] += weight;
  }
  return exact;
}

TEST(CountMinSketch, NeverUndercounts) {
  Rng rng{0xC0DE};
  CountMinSketch cm{2, 256, 0x5EED};
  Exact exact;
  for (int i = 0; i < 20'000; ++i) {
    const std::int64_t key = rng.uniform_int(0, 5'000);
    const double weight = rng.uniform(0.1, 3.0);
    cm.add(key, weight);
    exact[key] += weight;
  }
  for (const auto& [key, count] : exact) {
    EXPECT_GE(cm.estimate(key), count - 1e-9) << "key " << key;
  }
  // Keys never added estimate >= 0 (possibly > 0 from collisions).
  EXPECT_GE(cm.estimate(999'999), 0.0);
}

TEST(CountMinSketch, MergeSumsCellWise) {
  CountMinSketch a{2, 128, 7};
  CountMinSketch b{2, 128, 7};
  a.add(1, 5.0);
  b.add(1, 3.0);
  b.add(42, 2.0);
  a.merge(b);
  EXPECT_GE(a.estimate(1), 8.0 - 1e-9);
  EXPECT_GE(a.estimate(42), 2.0 - 1e-9);
}

TEST(HashPipe, HeavyKeysSettleLightKeysChurn) {
  // One dominant key among uniform noise must survive in the table with a
  // near-true count.
  SketchParams params;
  HashPipe pipe{params};
  Rng rng{0x4EA7};
  for (int i = 0; i < 10'000; ++i) {
    pipe.update(7, 1.0);
    pipe.update(rng.uniform_int(100, 2'000), 1.0);
  }
  std::vector<HashPipe::Entry> top;
  ASSERT_GE(pipe.top(1, top), 1u);
  EXPECT_EQ(top[0].key, 7);
  EXPECT_GE(top[0].count, 10'000.0 * 0.9);
  // Estimates never undercount resident + evicted mass for the heavy key.
  EXPECT_GE(pipe.estimate(7), 10'000.0 * 0.9);
}

TEST(HashPipe, TopOrderingIsDeterministicWithTieBreak) {
  SketchParams params;
  params.stages = 2;
  params.stage_slots = 8;
  HashPipe pipe{params};
  pipe.update(30, 5.0);
  pipe.update(10, 5.0);
  pipe.update(20, 9.0);
  std::vector<HashPipe::Entry> top;
  ASSERT_EQ(pipe.top(3, top), 3u);
  EXPECT_EQ(top[0].key, 20);  // heaviest first
  EXPECT_EQ(top[1].key, 10);  // ties broken by ascending key
  EXPECT_EQ(top[2].key, 30);
}

TEST(HashPipe, NegativeKeysAndNonPositiveWeightsAreIgnored) {
  HashPipe pipe{SketchParams{}};
  pipe.update(-1, 100.0);
  pipe.update(5, 0.0);
  pipe.update(5, -3.0);
  std::vector<HashPipe::Entry> top;
  EXPECT_EQ(pipe.top(4, top), 0u);
  EXPECT_EQ(pipe.estimate(-1), 0.0);
}

TEST(TopKSketch, ZipfRecallAtLeastSevenOfEight) {
  // The acceptance bar: on a Zipf(1.2) stream the sketch's top-8 must
  // recover >= 7 of the true top-8 — across entity counts and seeds.
  for (const std::size_t entities : {100ul, 1'000ul, 10'000ul}) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      TopKSketch sketch;
      const Exact exact =
          feed_zipf(sketch, entities, 1.2, seed, /*draws=*/8'192);
      sketch.refresh_top(8);
      const auto truth = exact_top(exact, 8);
      std::size_t hits = 0;
      for (std::size_t rank = 0; rank < 8; ++rank) {
        const std::int64_t key = sketch.rank_key(rank);
        if (std::find(truth.begin(), truth.end(), key) != truth.end()) ++hits;
      }
      EXPECT_GE(hits, 7u) << "entities=" << entities << " seed=" << seed;
    }
  }
}

TEST(TopKSketch, RankAccessorsOutOfRangeAreBenign) {
  TopKSketch sketch;
  sketch.update(3, 2.0);
  sketch.refresh_top(4);
  EXPECT_EQ(sketch.rank_key(0), 3);
  EXPECT_EQ(sketch.rank_key(50), -1);
  EXPECT_EQ(sketch.rank_count(50), 0.0);
}

TEST(TopKSketch, ByteSizeIsConstantInEntityCount) {
  // The whole point: state does not grow with the population it watches.
  std::vector<std::size_t> sizes;
  for (const std::size_t entities : {100ul, 1'000ul, 10'000ul}) {
    TopKSketch sketch;
    feed_zipf(sketch, entities, 1.2, /*seed=*/9, /*draws=*/4'096);
    sketch.refresh_top(8);
    sizes.push_back(sketch.byte_size());
  }
  EXPECT_EQ(sizes[0], sizes[1]);
  EXPECT_EQ(sizes[1], sizes[2]);
  EXPECT_LT(sizes[0], 32u * 1024u);  // defaults stay small
}

TEST(TopKSketch, MergeFoldsAuxiliaryMass) {
  TopKSketch a, b;
  for (int i = 0; i < 500; ++i) {
    a.update(11, 1.0);
    b.update(22, 1.0);
  }
  EXPECT_GT(a.merge(b), 0u);
  a.refresh_top(2);
  EXPECT_GE(a.estimate(22), 500.0 * 0.9);
  const std::int64_t k0 = a.rank_key(0);
  const std::int64_t k1 = a.rank_key(1);
  EXPECT_TRUE((k0 == 11 && k1 == 22) || (k0 == 22 && k1 == 11));
}

TEST(TopKMonitor, PublishesExactlyTwoKMetricsAndFlatState) {
  for (const std::size_t processes : {100ul, 10'000ul}) {
    auto monitor = make_topk_process_monitor(8, processes);
    const auto descs = monitor->metrics();
    ASSERT_EQ(descs.size(), 16u);
    EXPECT_EQ(descs[0].key, "topk_pid_top0_key");
    EXPECT_EQ(descs[1].key, "topk_pid_top0_val");
    std::vector<MetricSample> out;
    monitor->collect(out, SimTime::zero());
    EXPECT_EQ(out.size(), 16u);  // frame width independent of population
  }
  // And the sketch footprint matches across population sizes.
  auto small = make_topk_process_monitor(8, 100);
  auto large = make_topk_process_monitor(8, 10'000);
  std::vector<MetricSample> out;
  small->collect(out, SimTime::zero());
  large->collect(out, SimTime::zero());
  EXPECT_EQ(small->state_bytes(), large->state_bytes());
}

TEST(TopKMonitor, ZipfHeaviestRankIsRankOne) {
  // Zipf rank 1 is the heaviest key by construction; after a few periods
  // the monitor's top slot must report it.
  auto monitor = make_topk_process_monitor(4, 1'000);
  std::vector<MetricSample> out;
  for (int period = 0; period < 16; ++period) {
    out.clear();
    monitor->collect(out, SimTime::zero());
  }
  ASSERT_EQ(out.size(), 8u);
  EXPECT_EQ(out[0].value, 1.0);       // top0_key == Zipf rank 1
  EXPECT_GT(out[1].value, 0.0);       // top0_val carries its mass
}

TEST(FilterSketchBridge, EndToEndThroughCompiledFilter) {
  // A deployed filter reads live sketch state through the builtins: the
  // top-1 key it computes must match the sketch's own answer, and skmerge
  // must fold the auxiliary sketch in.
  TopKSketch primary, aux;
  for (int i = 0; i < 2'000; ++i) {
    primary.update(42, 1.0);
    primary.update(i % 97, 0.25);
    aux.update(77, 3.0);
  }
  primary.refresh_top(4);
  FilterSketchBridge host{primary};
  host.add_aux(aux);

  ecode::CompileEnv env;
  env.sketch_builtins = true;
  auto filter = ecode::Filter::compile(
      "double folded = skmerge(0);\n"
      "if (folded < 0.0) return -1.0;\n"
      "return topkid(0) * 1000000.0 + topk(0) + cmlookup(42);",
      env);
  ASSERT_TRUE(filter.is_ok()) << filter.status().to_string();

  ecode::Vm vm;
  vm.set_sketch_host(&host);
  ecode::FilterResult result;
  ASSERT_TRUE(vm.run(filter.value().bytecode(), {}, result));
  ASSERT_TRUE(result.return_value.has_value());
  // topkid(0) is key 42 (heaviest), so the packed value sits in [42e6, 43e6).
  EXPECT_GE(*result.return_value, 42e6);
  EXPECT_LT(*result.return_value, 43e6);
  // The merge made the auxiliary's heavy key visible to cm lookups.
  EXPECT_GE(primary.estimate(77), 3.0 * 2'000 * 0.9);
}

TEST(FilterSketchBridge, SkMergeUnknownIndexReturnsNegative) {
  TopKSketch primary;
  FilterSketchBridge host{primary};
  EXPECT_EQ(host.merge_aux(0), -1.0);
  EXPECT_EQ(host.merge_aux(-1), -1.0);
}

TEST(SketchBuiltins, RejectedWithoutEnvOptIn) {
  // The gate is at compile (control-file) time: a publisher without sketch
  // state refuses the program instead of faulting at run time.
  auto filter = ecode::Filter::compile("return topk(0);");
  ASSERT_FALSE(filter.is_ok());
  EXPECT_NE(filter.status().message().find("sketch support"),
            std::string::npos)
      << filter.status().message();
}

TEST(SketchBuiltins, RuntimeWithoutHostFailsCleanly) {
  ecode::CompileEnv env;
  env.sketch_builtins = true;
  auto filter = ecode::Filter::compile("return topk(0);", env);
  ASSERT_TRUE(filter.is_ok()) << filter.status().to_string();
  ecode::Vm vm;  // no sketch host bound
  ecode::FilterResult result;
  const Status status = vm.run(filter.value().bytecode(), {}, result);
  ASSERT_FALSE(status);
  EXPECT_NE(status.message().find("no sketch state"), std::string::npos)
      << status.message();
}

}  // namespace
}  // namespace dproc::core
