// Execution semantics of compiled E-code filters.
#include <gtest/gtest.h>

#include "dproc/ecode/ecode.hpp"

namespace dproc::ecode {
namespace {

FilterResult run(std::string_view source, std::vector<Sample> input = {},
                 const CompileEnv& env = {}, VmLimits limits = {}) {
  auto filter = Filter::compile(source, env);
  EXPECT_TRUE(filter.is_ok()) << filter.status().to_string();
  if (!filter.is_ok()) return {};
  auto result = filter.value().run(input, limits);
  EXPECT_TRUE(result.is_ok()) << result.status().to_string();
  return result.is_ok() ? std::move(result).value() : FilterResult{};
}

double ret(std::string_view source, std::vector<Sample> input = {},
           const CompileEnv& env = {}) {
  auto result = run(source, std::move(input), env);
  EXPECT_TRUE(result.return_value.has_value()) << source;
  return result.return_value.value_or(0.0);
}

TEST(Vm, ReturnLiteral) { EXPECT_DOUBLE_EQ(ret("return 42;"), 42.0); }

TEST(Vm, IntegerArithmeticMatchesC) {
  EXPECT_DOUBLE_EQ(ret("return 7 + 3 * 2;"), 13.0);
  EXPECT_DOUBLE_EQ(ret("return 7 / 2;"), 3.0);       // int division
  EXPECT_DOUBLE_EQ(ret("return -7 / 2;"), -3.0);     // truncation toward zero
  EXPECT_DOUBLE_EQ(ret("return 7 % 3;"), 1.0);
  EXPECT_DOUBLE_EQ(ret("return -7 % 3;"), -1.0);
  EXPECT_DOUBLE_EQ(ret("return (1 + 2) * 3;"), 9.0);
}

TEST(Vm, DoubleArithmetic) {
  EXPECT_DOUBLE_EQ(ret("return 7.0 / 2;"), 3.5);  // promotion
  EXPECT_DOUBLE_EQ(ret("return 1.5 + 2.25;"), 3.75);
  EXPECT_DOUBLE_EQ(ret("return 50e6 / 1e6;"), 50.0);
}

TEST(Vm, TruncationOnIntAssignment) {
  EXPECT_DOUBLE_EQ(ret("int x = 2.9; return x;"), 2.0);
  EXPECT_DOUBLE_EQ(ret("int x = -2.9; return x;"), -2.0);
  EXPECT_DOUBLE_EQ(ret("int x = 1; x += 1.5; return x;"), 2.0);
}

TEST(Vm, ComparisonsAndLogic) {
  EXPECT_DOUBLE_EQ(ret("return 3 < 5;"), 1.0);
  EXPECT_DOUBLE_EQ(ret("return 5 <= 4;"), 0.0);
  EXPECT_DOUBLE_EQ(ret("return 2 == 2 && 3 != 4;"), 1.0);
  EXPECT_DOUBLE_EQ(ret("return 0 || 2;"), 1.0);  // normalized to 0/1
  EXPECT_DOUBLE_EQ(ret("return !3;"), 0.0);
  EXPECT_DOUBLE_EQ(ret("return !0;"), 1.0);
  EXPECT_DOUBLE_EQ(ret("return 1.5 > 1;"), 1.0);
}

TEST(Vm, ShortCircuitSkipsSideEffects) {
  EXPECT_DOUBLE_EQ(
      ret("int i = 0; int x = 0 && (i = 1); return i;"), 0.0);
  EXPECT_DOUBLE_EQ(
      ret("int i = 0; int x = 1 || (i = 1); return i;"), 0.0);
  EXPECT_DOUBLE_EQ(
      ret("int i = 0; int x = 1 && (i = 1); return i;"), 1.0);
}

TEST(Vm, BitwiseAndShifts) {
  EXPECT_DOUBLE_EQ(ret("return 12 & 10;"), 8.0);
  EXPECT_DOUBLE_EQ(ret("return 12 | 10;"), 14.0);
  EXPECT_DOUBLE_EQ(ret("return 12 ^ 10;"), 6.0);
  EXPECT_DOUBLE_EQ(ret("return ~0;"), -1.0);
  EXPECT_DOUBLE_EQ(ret("return 1 << 10;"), 1024.0);
  EXPECT_DOUBLE_EQ(ret("return -16 >> 2;"), -4.0);  // arithmetic shift
}

TEST(Vm, TernarySelects) {
  EXPECT_DOUBLE_EQ(ret("return 1 ? 10 : 20;"), 10.0);
  EXPECT_DOUBLE_EQ(ret("return 0 ? 10 : 20;"), 20.0);
  EXPECT_DOUBLE_EQ(ret("return 0 ? 1 : 2.5;"), 2.5);
}

TEST(Vm, IfElseChains) {
  const char* source =
      "int x = 7;\n"
      "if (x > 10) { return 1; } else if (x > 5) { return 2; } else { return 3; }";
  EXPECT_DOUBLE_EQ(ret(source), 2.0);
}

TEST(Vm, ForLoopSums) {
  EXPECT_DOUBLE_EQ(
      ret("int sum = 0; for (int i = 1; i <= 10; i = i + 1) sum += i; return sum;"),
      55.0);
}

TEST(Vm, WhileLoopWithBreakContinue) {
  const char* source =
      "int sum = 0; int i = 0;\n"
      "while (1) {\n"
      "  i = i + 1;\n"
      "  if (i > 10) break;\n"
      "  if (i % 2) continue;\n"
      "  sum += i;\n"
      "}\n"
      "return sum;";  // 2+4+6+8+10
  EXPECT_DOUBLE_EQ(ret(source), 30.0);
}

TEST(Vm, NestedLoopsAndBreakInnerOnly) {
  const char* source =
      "int count = 0;\n"
      "for (int i = 0; i < 3; ++i) {\n"
      "  for (int j = 0; j < 10; ++j) {\n"
      "    if (j == 2) break;\n"
      "    count++;\n"
      "  }\n"
      "}\n"
      "return count;";
  EXPECT_DOUBLE_EQ(ret(source), 6.0);
}

TEST(Vm, IncrementDecrementSemantics) {
  EXPECT_DOUBLE_EQ(ret("int i = 5; int x = i++; return x * 100 + i;"), 506.0);
  EXPECT_DOUBLE_EQ(ret("int i = 5; int x = ++i; return x * 100 + i;"), 606.0);
  EXPECT_DOUBLE_EQ(ret("int i = 5; int x = i--; return x * 100 + i;"), 504.0);
  EXPECT_DOUBLE_EQ(ret("double d = 1.5; ++d; return d;"), 2.5);
}

TEST(Vm, CompoundAssignments) {
  EXPECT_DOUBLE_EQ(ret("int x = 10; x -= 3; x *= 2; x /= 4; x %= 2; return x;"),
                   1.0);
  EXPECT_DOUBLE_EQ(ret("double x = 10; x /= 4; return x;"), 2.5);
}

TEST(Vm, InputFieldsReadable) {
  std::vector<Sample> input{{7, 3.5, 2.0, 1234}};
  EXPECT_DOUBLE_EQ(ret("return input[0].value;", input), 3.5);
  EXPECT_DOUBLE_EQ(ret("return input[0].last_value_sent;", input), 2.0);
  EXPECT_DOUBLE_EQ(ret("return input[0].id;", input), 7.0);
  EXPECT_DOUBLE_EQ(ret("return input[0].timestamp;", input), 1234.0);
}

TEST(Vm, OutputCopiesWholeSample) {
  std::vector<Sample> input{{7, 3.5, 2.0, 1234}};
  auto result = run("output[0] = input[0];", input);
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0].first, 0);
  EXPECT_EQ(result.outputs[0].second, input[0]);
}

TEST(Vm, OutputFieldWrites) {
  auto result = run("output[2].value = 9.5; output[2].id = 4;");
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_EQ(result.outputs[0].first, 2);
  EXPECT_DOUBLE_EQ(result.outputs[0].second.value, 9.5);
  EXPECT_EQ(result.outputs[0].second.id, 4);
}

TEST(Vm, OutputsReportedInIndexOrder) {
  auto result = run("output[5].value = 5; output[1].value = 1; output[3].value = 3;");
  ASSERT_EQ(result.outputs.size(), 3u);
  EXPECT_EQ(result.outputs[0].first, 1);
  EXPECT_EQ(result.outputs[1].first, 3);
  EXPECT_EQ(result.outputs[2].first, 5);
}

TEST(Vm, LocalSampleRoundTrip) {
  std::vector<Sample> input{{1, 10.0, 0.0, 0}};
  auto result = run(
      "sample s = input[0]; s.value = s.value * 2; output[0] = s;", input);
  ASSERT_EQ(result.outputs.size(), 1u);
  EXPECT_DOUBLE_EQ(result.outputs[0].second.value, 20.0);
  EXPECT_EQ(result.outputs[0].second.id, 1);
}

TEST(Vm, PaperFigure3FilterBehaves) {
  CompileEnv env;
  env.constants = {{"LOADAVG", 0}, {"DISKUSAGE", 1}, {"FREEMEM", 2},
                   {"CACHE_MISS", 3}};
  const char* source = R"({
    int i = 0;
    if (input[LOADAVG].value > 2) {
      output[i] = input[LOADAVG];
      i = i + 1;
    }
    if (input[DISKUSAGE].value > 10000 && input[FREEMEM].value < 50e6) {
      output[i] = input[DISKUSAGE];
      i = i + 1;
      output[i] = input[FREEMEM];
      i = i + 1;
    }
    if (input[CACHE_MISS].value > input[CACHE_MISS].last_value_sent) {
      output[i] = input[CACHE_MISS];
      i = i + 1;
    }
  })";

  // Quiet system: nothing passes.
  std::vector<Sample> quiet{
      {0, 0.5, 0.5, 0}, {1, 100, 100, 0}, {2, 400e6, 400e6, 0}, {3, 50, 50, 0}};
  EXPECT_TRUE(run(source, quiet, env).outputs.empty());

  // Loaded system: loadavg and both disk/mem conditions fire, plus cache.
  std::vector<Sample> loaded{
      {0, 3.0, 0.5, 0}, {1, 20000, 100, 0}, {2, 10e6, 400e6, 0}, {3, 99, 50, 0}};
  auto result = run(source, loaded, env);
  ASSERT_EQ(result.outputs.size(), 4u);
  EXPECT_EQ(result.outputs[0].second.id, 0);
  EXPECT_EQ(result.outputs[1].second.id, 1);
  EXPECT_EQ(result.outputs[2].second.id, 2);
  EXPECT_EQ(result.outputs[3].second.id, 3);
}

// --- runtime failures -----------------------------------------------------

TEST(Vm, DivisionByZeroIsRuntimeError) {
  auto filter = Filter::compile("int x = 0; return 1 / x;");
  ASSERT_TRUE(filter.is_ok());
  auto result = filter.value().run({});
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("division by zero"),
            std::string::npos);
}

TEST(Vm, ModuloByZeroIsRuntimeError) {
  auto filter = Filter::compile("int x = 0; return 1 % x;");
  ASSERT_TRUE(filter.is_ok());
  EXPECT_FALSE(filter.value().run({}).is_ok());
}

TEST(Vm, InputIndexOutOfRange) {
  auto filter = Filter::compile("return input[2].value;");
  ASSERT_TRUE(filter.is_ok());
  std::vector<Sample> input{{0, 1, 0, 0}};
  auto result = filter.value().run(input);
  ASSERT_FALSE(result.is_ok());
  EXPECT_NE(result.status().message().find("out of range"), std::string::npos);
}

TEST(Vm, NegativeIndexRejected) {
  auto filter = Filter::compile("output[0-1].value = 1;");
  ASSERT_TRUE(filter.is_ok());
  EXPECT_FALSE(filter.value().run({}).is_ok());
}

TEST(Vm, OutputIndexLimitEnforced) {
  auto filter = Filter::compile("output[1000].value = 1;");
  ASSERT_TRUE(filter.is_ok());
  EXPECT_FALSE(filter.value().run({}).is_ok());
}

TEST(Vm, InfiniteLoopRunsOutOfFuel) {
  auto filter = Filter::compile("while (1) { }");
  ASSERT_TRUE(filter.is_ok());
  auto result = filter.value().run({}, VmLimits{.max_instructions = 10'000});
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(Vm, ShiftOutOfRangeRejected) {
  auto filter = Filter::compile("return 1 << 70;");
  ASSERT_TRUE(filter.is_ok());
  EXPECT_FALSE(filter.value().run({}).is_ok());
}

TEST(Vm, HaltWithoutReturnGivesNoValue) {
  auto result = run("int x = 1;");
  EXPECT_FALSE(result.return_value.has_value());
}

TEST(Vm, EarlyReturnSkipsRest) {
  auto result = run("output[0].value = 1; return 5; output[1].value = 2;");
  EXPECT_EQ(result.outputs.size(), 1u);
  EXPECT_DOUBLE_EQ(result.return_value.value(), 5.0);
}

TEST(Vm, InstructionCountReported) {
  auto result = run("return 1;");
  EXPECT_GT(result.instructions_executed, 0u);
  EXPECT_LT(result.instructions_executed, 10u);
}

TEST(Vm, BuiltinFunctions) {
  EXPECT_DOUBLE_EQ(ret("return abs(0-5);"), 5.0);
  EXPECT_DOUBLE_EQ(ret("return abs(3.5);"), 3.5);
  EXPECT_DOUBLE_EQ(ret("return min(2, 7);"), 2.0);
  EXPECT_DOUBLE_EQ(ret("return max(2.5, 7);"), 7.0);
  EXPECT_DOUBLE_EQ(ret("return floor(2.9);"), 2.0);
  EXPECT_DOUBLE_EQ(ret("return ceil(2.1);"), 3.0);
  EXPECT_DOUBLE_EQ(ret("return sqrt(16);"), 4.0);
  EXPECT_DOUBLE_EQ(ret("return min(max(1, 5), 3);"), 3.0);  // nesting
}

TEST(Vm, BuiltinInFilterContext) {
  std::vector<Sample> input{{0, 100.0, 80.0, 0}};
  // Relative change as a function: |v - last| / max(|last|, 1).
  const char* source =
      "double change = abs(input[0].value - input[0].last_value_sent) /"
      " max(abs(input[0].last_value_sent), 1.0);"
      "if (change > 0.15) output[0] = input[0];"
      "return change;";
  EXPECT_NEAR(ret(source, input), 0.25, 1e-12);
  EXPECT_EQ(run(source, input).outputs.size(), 1u);
}

TEST(Vm, SqrtOfNegativeIsRuntimeError) {
  auto filter = Filter::compile("return sqrt(0-1);");
  ASSERT_TRUE(filter.is_ok());
  EXPECT_FALSE(filter.value().run({}).is_ok());
}

TEST(Vm, UnknownFunctionRejectedAtCompile) {
  auto filter = Filter::compile("return frobnicate(1);");
  ASSERT_FALSE(filter.is_ok());
  EXPECT_NE(filter.status().message().find("unknown function"),
            std::string::npos);
}

TEST(Vm, BuiltinArityChecked) {
  EXPECT_FALSE(Filter::compile("return abs(1, 2);").is_ok());
  EXPECT_FALSE(Filter::compile("return min(1);").is_ok());
}

TEST(Vm, BuiltinArgumentTypeChecked) {
  EXPECT_FALSE(Filter::compile("return abs(input[0]);").is_ok());
}

TEST(Vm, LocalsShadowBuiltinNamesAsVariables) {
  // `min` used as a variable still works when declared.
  EXPECT_DOUBLE_EQ(ret("int min = 4; return min + 1;"), 5.0);
}

// --- sample-operand coercion errors ------------------------------------------
//
// Sema statically rejects samples in numeric contexts, so these paths are
// only reachable from hand-assembled (or corrupted) bytecode — which is
// exactly what a kernel accepting programs over the wire must survive. The
// old behavior silently coerced the sample to 0/false; it must now be a
// clean kInvalidArgument naming the pc.

/// input[0] pushed as a whole sample, then fed to `op`.
Bytecode sample_into(Op op) {
  Bytecode code;
  code.insns.push_back(Insn{.op = Op::kLoadInputImm, .arg = 0});
  code.insns.push_back(Insn{.op = Op::kPushInt, .imm_i = 1});
  code.insns.push_back(Insn{.op = op});
  code.insns.push_back(Insn{.op = Op::kHalt});
  return code;
}

TEST(Vm, SampleOperandInArithmeticIsInvalidArgument) {
  for (const Op op : {Op::kAdd, Op::kSub, Op::kMul, Op::kDiv, Op::kMod,
                      Op::kBitAnd, Op::kShl, Op::kLt, Op::kEq}) {
    Vm vm;
    FilterResult result;
    std::vector<Sample> input{{7, 1.5, 0.5, 0}};
    const Status status = vm.run(sample_into(op), input, result);
    ASSERT_FALSE(status) << "op " << static_cast<int>(op);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("sample operand in numeric context"),
              std::string::npos)
        << status.message();
    EXPECT_NE(status.message().find("pc="), std::string::npos)
        << status.message();  // names the faulting pc
  }
}

TEST(Vm, SampleOperandInUnaryAndReturnIsInvalidArgument) {
  for (const Op op : {Op::kNeg, Op::kNot, Op::kBitNot, Op::kToInt,
                      Op::kToDouble, Op::kToBool, Op::kReturn}) {
    Bytecode code;
    code.insns.push_back(Insn{.op = Op::kLoadInputImm, .imm_i = 0});
    code.insns.push_back(Insn{.op = op});
    code.insns.push_back(Insn{.op = Op::kHalt});
    Vm vm;
    FilterResult result;
    std::vector<Sample> input{{7, 1.5, 0.5, 0}};
    const Status status = vm.run(code, input, result);
    ASSERT_FALSE(status) << "op " << static_cast<int>(op);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(status.message().find("sample operand"), std::string::npos);
  }
}

TEST(Vm, SampleOperandAsJumpConditionIsInvalidArgument) {
  Bytecode code;
  code.insns.push_back(Insn{.op = Op::kLoadInputImm, .imm_i = 0});
  code.insns.push_back(Insn{.op = Op::kJmpIfFalse, .arg = 3});
  code.insns.push_back(Insn{.op = Op::kHalt});
  code.insns.push_back(Insn{.op = Op::kHalt});
  Vm vm;
  FilterResult result;
  std::vector<Sample> input{{7, 1.5, 0.5, 0}};
  const Status status = vm.run(code, input, result);
  ASSERT_FALSE(status);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

// --- dispatch tiers and limits ----------------------------------------------

TEST(Vm, ConstructorClampsInstructionLimitToHardCeiling) {
  // The fuel counter is only checked at control-flow edges; a limit near
  // 2^64 would make exhaustion unreachable. The constructor clamps.
  Vm vm{VmLimits{.max_instructions = ~0ull}};
  EXPECT_EQ(vm.limits().max_instructions, VmLimits::kMaxInstructionLimit);
  Vm sane{VmLimits{.max_instructions = 500}};
  EXPECT_EQ(sane.limits().max_instructions, 500u);
}

TEST(Vm, DispatchTiersGiveIdenticalResults) {
  auto filter = Filter::compile(
      "int s = 0; for (int i = 0; i < 100; ++i) s += i * i; return s;");
  ASSERT_TRUE(filter.is_ok());
  Vm vm_switch;
  vm_switch.set_dispatch(VmDispatch::kSwitch);
  FilterResult via_switch;
  ASSERT_TRUE(vm_switch.run(filter.value().bytecode(), {}, via_switch));
  if (Vm::threaded_available()) {
    Vm vm_threaded;
    vm_threaded.set_dispatch(VmDispatch::kThreaded);
    EXPECT_EQ(vm_threaded.dispatch(), VmDispatch::kThreaded);
    FilterResult via_threaded;
    ASSERT_TRUE(vm_threaded.run(filter.value().bytecode(), {}, via_threaded));
    EXPECT_EQ(via_switch.return_value, via_threaded.return_value);
    EXPECT_EQ(via_switch.instructions_executed,
              via_threaded.instructions_executed);
  }
}

TEST(Vm, PooledEvalMatchesDirectRun) {
  auto filter = Filter::compile("output[0] = input[0]; return 9;");
  ASSERT_TRUE(filter.is_ok());
  VmPool pool;
  std::vector<Sample> input{{3, 2.5, 1.0, 77}};
  {
    auto lease = filter.value().eval(pool, input);
    ASSERT_TRUE(lease.is_ok()) << lease.status().to_string();
    EXPECT_DOUBLE_EQ(lease.value().result().return_value.value_or(0), 9.0);
    ASSERT_EQ(lease.value().result().outputs.size(), 1u);
    EXPECT_EQ(lease.value().result().outputs[0].second, input[0]);
    EXPECT_EQ(pool.created(), 1u);
  }
  {
    auto again = filter.value().eval(pool, input);
    ASSERT_TRUE(again.is_ok());
  }
  EXPECT_EQ(pool.created(), 1u);  // the slot was recycled, not regrown
}

TEST(Vm, DisassemblyNonEmpty) {
  auto filter = Filter::compile("int i = 0; i = i + 1;");
  ASSERT_TRUE(filter.is_ok());
  const std::string disasm = filter.value().bytecode().disassemble();
  EXPECT_NE(disasm.find("store_local"), std::string::npos);
  EXPECT_NE(disasm.find("halt"), std::string::npos);
}

}  // namespace
}  // namespace dproc::ecode
