// Allocation and re-entrancy guarantees for the hot paths.
//
// These pin the properties the perf overhaul is built on: a warm Vm::run
// allocates nothing, a Vm is re-entrant (same program, same input, same
// result on every call), and fire-and-forget scheduling never materializes
// a cancel flag. The alloc counter comes from bench/alloc_counter.cpp,
// whose global operator new/delete override counts every heap allocation
// in the test binary.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "../bench/alloc_counter.hpp"
#include "dproc/core/cluster.hpp"
#include "dproc/ecode/ecode.hpp"
#include "dproc/sim/engine.hpp"

namespace {

using dproc::ecode::CompileEnv;
using dproc::ecode::Filter;
using dproc::ecode::FilterResult;
using dproc::ecode::Sample;
using dproc::ecode::Vm;
using dproc::ecode::VmPool;

const char* kFigure3Filter = R"({
  int i = 0;
  if (input[LOADAVG].value > 2) {
    output[i] = input[LOADAVG];
    i = i + 1;
  }
  if (input[DISKUSAGE].value > 10000 && input[FREEMEM].value < 50e6) {
    output[i] = input[DISKUSAGE];
    i = i + 1;
    output[i] = input[FREEMEM];
    i = i + 1;
  }
  if (input[CACHE_MISS].value > input[CACHE_MISS].last_value_sent) {
    output[i] = input[CACHE_MISS];
    i = i + 1;
  }
})";

Filter compile_figure3() {
  CompileEnv env;
  env.constants = {{"LOADAVG", 0}, {"DISKUSAGE", 1}, {"FREEMEM", 2},
                   {"CACHE_MISS", 3}};
  auto filter = Filter::compile(kFigure3Filter, env);
  EXPECT_TRUE(filter.is_ok()) << filter.status().to_string();
  return std::move(filter).value();
}

std::vector<Sample> figure3_input() {
  return {{0, 2.5, 0.4, 0}, {1, 20'000, 220, 0}, {2, 41e6, 310e6, 0},
          {3, 8'812'004, 8'611'220, 0}};
}

TEST(PerfRegressionTest, WarmVmRunAllocatesNothing) {
  const Filter filter = compile_figure3();
  const std::vector<Sample> input = figure3_input();

  Vm vm;
  FilterResult result;
  // Warm-up: first runs size the scratch arenas and the result vectors.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(vm.run(filter.bytecode(), input, result).is_ok());
  }

  const std::uint64_t before = dproc::bench::alloc_count();
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(vm.run(filter.bytecode(), input, result).is_ok());
  }
  EXPECT_EQ(dproc::bench::alloc_count() - before, 0u)
      << "steady-state Vm::run must not touch the heap";
  EXPECT_EQ(result.outputs.size(), 4u);
}

TEST(PerfRegressionTest, PooledRunAllocatesNothingOnceWarm) {
  // The pooled path (Filter::run(pool, ...)) must match the persistent-Vm
  // guarantee: after the lease slot and the reused result have warmed up,
  // evaluation never touches the heap — and the pool never grows past one
  // Vm under sequential (per-channel) use.
  const Filter filter = compile_figure3();
  const std::vector<Sample> input = figure3_input();

  VmPool pool;
  FilterResult result;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(filter.run(pool, input, result).is_ok());
  }
  ASSERT_EQ(pool.created(), 1u);

  const std::uint64_t before = dproc::bench::alloc_count();
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(filter.run(pool, input, result).is_ok());
  }
  EXPECT_EQ(dproc::bench::alloc_count() - before, 0u)
      << "steady-state pooled evaluation must not touch the heap";
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.idle(), 1u);
  EXPECT_EQ(result.outputs.size(), 4u);
}

TEST(PerfRegressionTest, TouchedListGrowsWithOutputArenaNotMidRun) {
  // ensure_output_slot() grows every output arena together: out_samples_,
  // out_written_ AND the touched-list (the historical gap — out_touched_
  // was left to grow push_back by push_back on the next many-slot run).
  // After one run that touched only the highest slot, a run that touches
  // every slot below it must not allocate.
  CompileEnv env;
  auto high = Filter::compile(
      "int a = 0; a = a + 1; a = a * 2; a = a - 1; a = a ^ 3;"
      "for (int i = 0; i < 80; ++i) a = a + i;"
      "output[63].value = 1.0;",
      env);
  auto many = Filter::compile(
      "for (int i = 0; i < 64; ++i) output[i].value = 1.0;", env);
  ASSERT_TRUE(high.is_ok());
  ASSERT_TRUE(many.is_ok());
  // The pin only holds if `high` dominates the per-program arenas too.
  ASSERT_GE(high.value().bytecode().insns.size(),
            many.value().bytecode().insns.size());

  FilterResult result;
  {
    Vm warm;  // sizes result.outputs' capacity for 64 entries
    ASSERT_TRUE(warm.run(many.value().bytecode(), {}, result).is_ok());
  }
  Vm vm;
  ASSERT_TRUE(vm.run(high.value().bytecode(), {}, result).is_ok());

  const std::uint64_t before = dproc::bench::alloc_count();
  ASSERT_TRUE(vm.run(many.value().bytecode(), {}, result).is_ok());
  EXPECT_EQ(dproc::bench::alloc_count() - before, 0u)
      << "touching 64 pre-grown slots must not reallocate the touched list";
  EXPECT_EQ(result.outputs.size(), 64u);
}

TEST(PerfRegressionTest, LeasedEvalAllocatesNothingOnceWarm) {
  // The lease-returning pooled path (Filter::eval) is the fresh-VM-per-call
  // shape d-mon uses per channel; once the single pool slot has warmed up it
  // must match the persistent-Vm zero-alloc guarantee.
  const Filter filter = compile_figure3();
  const std::vector<Sample> input = figure3_input();

  VmPool pool;
  for (int i = 0; i < 16; ++i) {
    auto lease = filter.eval(pool, input);
    ASSERT_TRUE(lease.is_ok()) << lease.status().to_string();
  }
  ASSERT_EQ(pool.created(), 1u);

  const std::uint64_t before = dproc::bench::alloc_count();
  for (int i = 0; i < 10'000; ++i) {
    auto lease = filter.eval(pool, input);
    ASSERT_TRUE(lease.is_ok());
  }
  EXPECT_EQ(dproc::bench::alloc_count() - before, 0u)
      << "steady-state leased evaluation must not touch the heap";
  EXPECT_EQ(pool.created(), 1u);
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(PerfRegressionTest, VmIsReentrant) {
  const Filter filter = compile_figure3();
  const std::vector<Sample> input = figure3_input();

  Vm vm;
  auto first = vm.run(filter.bytecode(), input);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  auto second = vm.run(filter.bytecode(), input);
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();

  EXPECT_EQ(first.value().outputs, second.value().outputs);
  EXPECT_EQ(first.value().return_value, second.value().return_value);
  EXPECT_EQ(first.value().instructions_executed,
            second.value().instructions_executed);

  // The reuse entry point must agree with the fresh-result entry point.
  FilterResult reused;
  ASSERT_TRUE(vm.run(filter.bytecode(), input, reused).is_ok());
  EXPECT_EQ(reused.outputs, first.value().outputs);
  EXPECT_EQ(reused.instructions_executed, first.value().instructions_executed);
}

// Steady-state heap traffic of one publishing flavour: allocations across
// the whole cluster while the simulation advances a fixed window, after the
// channels and caches have warmed up.
std::uint64_t steady_state_allocs(const dproc::core::BatchConfig& batch,
                                  const std::vector<std::string>& interest) {
  dproc::sim::Engine engine;
  dproc::core::ClusterConfig config;
  config.node_count = 3;
  config.batch = batch;
  dproc::core::Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(dproc::SimTime::zero() + dproc::seconds(2.0));
  if (!interest.empty()) {
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      (void)cluster.dmon(i)->declare_interest(interest);
    }
  }
  // Warm-up: scratch buffers, frame caches and procfs strings size
  // themselves in the first periods.
  engine.run_until(dproc::SimTime::zero() + dproc::seconds(10.0));
  const std::uint64_t before = dproc::bench::alloc_count();
  engine.run_until(dproc::SimTime::zero() + dproc::seconds(40.0));
  return dproc::bench::alloc_count() - before;
}

TEST(PerfRegressionTest, BatchedPublishingAllocatesNoMoreThanPerModule) {
  // The batched path coalesces 5 per-module frames into one — it must not
  // give the saving back in heap churn. Encode buffers, the decode scratch
  // and the per-distinct-interest frame cache are persistent, so a batched
  // period allocates strictly less than five separate submissions.
  const std::uint64_t per_module = steady_state_allocs({}, {});

  dproc::core::BatchConfig batch;
  batch.enabled = true;
  batch.interest = true;
  const std::uint64_t batched = steady_state_allocs(batch, {"cpu", "mem"});

  ASSERT_GT(per_module, 0u);
  EXPECT_LE(batched, per_module)
      << "batched " << batched << " allocs vs per-module " << per_module
      << " over the same simulated window";
}

TEST(PerfRegressionTest, FireAndForgetScheduleAllocatesNoCancelFlags) {
  dproc::sim::Engine engine;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    engine.schedule_after(dproc::milliseconds(1.0 + i), [&] { ++fired; });
  }
  engine.run();
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(engine.cancel_flags_allocated(), 0u)
      << "discarded PendingEvents must not allocate cancel flags";
}

TEST(PerfRegressionTest, RetainedHandleAllocatesExactlyOneFlag) {
  dproc::sim::Engine engine;
  int fired = 0;
  engine.schedule_after(dproc::milliseconds(1.0), [&] { ++fired; });
  dproc::sim::EventHandle handle =
      engine.schedule_after(dproc::milliseconds(2.0), [&] { ++fired; });
  EXPECT_EQ(engine.cancel_flags_allocated(), 1u);
  handle.cancel();
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.cancel_flags_allocated(), 1u);
}

}  // namespace
