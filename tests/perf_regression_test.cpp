// Allocation and re-entrancy guarantees for the hot paths.
//
// These pin the properties the perf overhaul is built on: a warm Vm::run
// allocates nothing, a Vm is re-entrant (same program, same input, same
// result on every call), and fire-and-forget scheduling never materializes
// a cancel flag. The alloc counter comes from bench/alloc_counter.cpp,
// whose global operator new/delete override counts every heap allocation
// in the test binary.
#include <gtest/gtest.h>

#include <vector>

#include "../bench/alloc_counter.hpp"
#include "dproc/ecode/ecode.hpp"
#include "dproc/sim/engine.hpp"

namespace {

using dproc::ecode::CompileEnv;
using dproc::ecode::Filter;
using dproc::ecode::FilterResult;
using dproc::ecode::Sample;
using dproc::ecode::Vm;

const char* kFigure3Filter = R"({
  int i = 0;
  if (input[LOADAVG].value > 2) {
    output[i] = input[LOADAVG];
    i = i + 1;
  }
  if (input[DISKUSAGE].value > 10000 && input[FREEMEM].value < 50e6) {
    output[i] = input[DISKUSAGE];
    i = i + 1;
    output[i] = input[FREEMEM];
    i = i + 1;
  }
  if (input[CACHE_MISS].value > input[CACHE_MISS].last_value_sent) {
    output[i] = input[CACHE_MISS];
    i = i + 1;
  }
})";

Filter compile_figure3() {
  CompileEnv env;
  env.constants = {{"LOADAVG", 0}, {"DISKUSAGE", 1}, {"FREEMEM", 2},
                   {"CACHE_MISS", 3}};
  auto filter = Filter::compile(kFigure3Filter, env);
  EXPECT_TRUE(filter.is_ok()) << filter.status().to_string();
  return std::move(filter).value();
}

std::vector<Sample> figure3_input() {
  return {{0, 2.5, 0.4, 0}, {1, 20'000, 220, 0}, {2, 41e6, 310e6, 0},
          {3, 8'812'004, 8'611'220, 0}};
}

TEST(PerfRegressionTest, WarmVmRunAllocatesNothing) {
  const Filter filter = compile_figure3();
  const std::vector<Sample> input = figure3_input();

  Vm vm;
  FilterResult result;
  // Warm-up: first runs size the scratch arenas and the result vectors.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(vm.run(filter.bytecode(), input, result).is_ok());
  }

  const std::uint64_t before = dproc::bench::alloc_count();
  for (int i = 0; i < 10'000; ++i) {
    ASSERT_TRUE(vm.run(filter.bytecode(), input, result).is_ok());
  }
  EXPECT_EQ(dproc::bench::alloc_count() - before, 0u)
      << "steady-state Vm::run must not touch the heap";
  EXPECT_EQ(result.outputs.size(), 4u);
}

TEST(PerfRegressionTest, VmIsReentrant) {
  const Filter filter = compile_figure3();
  const std::vector<Sample> input = figure3_input();

  Vm vm;
  auto first = vm.run(filter.bytecode(), input);
  ASSERT_TRUE(first.is_ok()) << first.status().to_string();
  auto second = vm.run(filter.bytecode(), input);
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();

  EXPECT_EQ(first.value().outputs, second.value().outputs);
  EXPECT_EQ(first.value().return_value, second.value().return_value);
  EXPECT_EQ(first.value().instructions_executed,
            second.value().instructions_executed);

  // The reuse entry point must agree with the fresh-result entry point.
  FilterResult reused;
  ASSERT_TRUE(vm.run(filter.bytecode(), input, reused).is_ok());
  EXPECT_EQ(reused.outputs, first.value().outputs);
  EXPECT_EQ(reused.instructions_executed, first.value().instructions_executed);
}

TEST(PerfRegressionTest, FireAndForgetScheduleAllocatesNoCancelFlags) {
  dproc::sim::Engine engine;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    engine.schedule_after(dproc::milliseconds(1.0 + i), [&] { ++fired; });
  }
  engine.run();
  EXPECT_EQ(fired, 100);
  EXPECT_EQ(engine.cancel_flags_allocated(), 0u)
      << "discarded PendingEvents must not allocate cancel flags";
}

TEST(PerfRegressionTest, RetainedHandleAllocatesExactlyOneFlag) {
  dproc::sim::Engine engine;
  int fired = 0;
  engine.schedule_after(dproc::milliseconds(1.0), [&] { ++fired; });
  dproc::sim::EventHandle handle =
      engine.schedule_after(dproc::milliseconds(2.0), [&] { ++fired; });
  EXPECT_EQ(engine.cancel_flags_allocated(), 1u);
  handle.cancel();
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.cancel_flags_allocated(), 1u);
}

}  // namespace
