// SmartPointer stream types: representations, cost model, wire codec.
//
// The server can deliver each molecular-dynamics frame in one of several
// derivations (paper §4.2: "a straight data feed, down-sampled data (for
// example, removing velocity data), or a stream of images representing the
// full visualization"). The derivations trade client CPU against network
// bytes in opposite directions, which is exactly the tension Figure 11
// demonstrates: adapting on one resource can overload another.
#pragma once

#include <cstdint>
#include <string>

#include "dproc/net/packet.hpp"
#include "dproc/util/status.hpp"
#include "dproc/util/time.hpp"
#include "dproc/workload/md_source.hpp"

namespace dproc::smartpointer {

enum class Representation : std::uint8_t {
  kFull,          // positions + velocities; client renders everything
  kPositionOnly,  // velocities stripped: fewer bytes, less client work
  kCompressed,    // heavily packed: fewest bytes, most client CPU to unpack
  kPreRendered,   // server-rendered image: most bytes, least client CPU
};

[[nodiscard]] const char* to_string(Representation rep);

/// How the server customizes a client's stream.
enum class FilterMode : std::uint8_t {
  kNone,    // original SmartPointer: full feed, no customization
  kStatic,  // client-chosen fixed derivation, never revisited
  kDynamic, // derivation chosen per frame from dproc monitoring data
};

/// Which dproc feeds the dynamic policy consults (the Figure 11 ablation).
enum class PolicyInputs : std::uint8_t { kCpuOnly, kNetOnly, kHybrid };

/// Client-side processing and size model, shared by server (for estimates)
/// and client (for actual costs). Rates are for the reference 200 MHz node.
struct StreamCostModel {
  /// Rendering a full-feed byte (decode + geometry + raster).
  double cpu_sec_per_mb_full = 0.16;
  /// Position-only data renders with the same per-byte cost but carries
  /// roughly half the bytes.
  double cpu_sec_per_mb_position = 0.16;
  /// Compressed data must be unpacked and reconstructed first.
  double cpu_sec_per_mb_compressed = 0.55;
  /// A pre-rendered image only needs blitting.
  double cpu_sec_per_mb_image = 0.004;

  /// Size factors relative to the full per-atom layout.
  double compressed_size_factor = 0.40;

  [[nodiscard]] std::uint64_t frame_bytes(Representation rep,
                                          std::uint32_t atoms,
                                          double fraction) const;
  [[nodiscard]] double client_cpu_seconds(Representation rep,
                                          std::uint64_t bytes) const;
};

/// One stream frame on the wire.
struct FramePayload {
  std::uint64_t frame_number = 0;
  SimTime generated_at;
  Representation rep = Representation::kFull;
  double fraction = 1.0;  // atom decimation applied by the filter
  std::uint64_t data_bytes = 0;
};

net::MessagePtr encode_frame(const FramePayload& frame);
Result<FramePayload> decode_frame(const net::MessagePtr& message);

/// Subscription request sent by a client after connecting.
struct Subscribe {
  std::uint32_t client_node = 0;
  FilterMode mode = FilterMode::kNone;
  Representation static_rep = Representation::kPositionOnly;
  bool storage_client = false;  // writes received frames to disk
};

net::MessagePtr encode_subscribe(const Subscribe& sub);
Result<Subscribe> decode_subscribe(const net::MessagePtr& message);

}  // namespace dproc::smartpointer
