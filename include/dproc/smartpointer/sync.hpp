// Multi-stream synchronization.
//
// §4.2 of the paper motivates careful staging "particularly ... when
// multiple streams (such as data, video, and audio) must be synchronized".
// A SyncGroup aligns the presentation of frames that share a frame number
// across streams: the faster stream's frames are buffered until their
// counterparts arrive, trading a little latency for bounded skew. The
// measured skew with and without synchronization is the §4.2 story in
// numbers (see tests and the smartpointer example).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "dproc/smartpointer/client.hpp"

namespace dproc::smartpointer {

struct SyncStats {
  std::uint64_t presented = 0;      // frame groups presented
  SampleSet skew_sec;               // |arrival difference| within a group
  SampleSet buffer_delay_sec;       // added wait for the earlier stream
  std::uint64_t max_buffered = 0;   // peak frames held back
};

/// Aligns two or more clients' streams by frame number. Attach before any
/// frames complete; presentation fires when every stream has processed the
/// frame.
class SyncGroup {
 public:
  explicit SyncGroup(std::vector<Client*> streams);
  SyncGroup(const SyncGroup&) = delete;
  SyncGroup& operator=(const SyncGroup&) = delete;

  [[nodiscard]] const SyncStats& stats() const { return stats_; }
  [[nodiscard]] SyncStats& stats() { return stats_; }

  /// Frames currently buffered waiting for slower streams.
  [[nodiscard]] std::size_t buffered() const;

 private:
  void on_frame(std::size_t stream, const FramePayload& frame, SimTime at);

  std::vector<Client*> streams_;
  // frame number -> per-stream completion time (missing = not yet done).
  std::map<std::uint64_t, std::vector<std::pair<bool, SimTime>>> pending_;
  SyncStats stats_;
};

}  // namespace dproc::smartpointer
