// SmartPointer server: the scientific-visualization stream source.
//
// Publishes molecular-dynamics frames to subscribed clients at a constant
// rate. Per client, a tunable data filter picks the frame derivation:
//
//  * FilterMode::kNone    — the original application, full feed;
//  * FilterMode::kStatic  — the client's a-priori choice, never revisited;
//  * FilterMode::kDynamic — chosen per frame from the client's dproc feeds
//    (loadavg, NIC throughput, RTT, retransmissions, disk activity) read
//    from this node's /proc/cluster view via d-mon.
//
// The dynamic policy keeps a per-client available-bandwidth estimate with
// congestion-control dynamics: multiplicative decrease on RTT inflation or
// new retransmissions, additive recovery otherwise. Depending on
// PolicyInputs it considers CPU only, network only, or everything —
// reproducing the Figure 11 comparison.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "dproc/core/dmon.hpp"
#include "dproc/net/tcp.hpp"
#include "dproc/smartpointer/stream.hpp"
#include "dproc/workload/md_source.hpp"

namespace dproc::smartpointer {

struct ServerConfig {
  net::Port port = 9000;
  double frame_rate_hz = 5.0;
  std::uint32_t atom_count = 50'000;
  StreamCostModel costs{};
  PolicyInputs policy = PolicyInputs::kHybrid;
  /// Floor for decimation so a stream never disappears entirely.
  double min_fraction = 0.05;
  /// Assumed path capacity for the bandwidth estimator.
  double link_capacity_bps = 100e6;
  /// Disk streaming bandwidth assumed for storage clients.
  double disk_bandwidth_bps = 160e6;  // 20 MB/s
  /// Degraded-feed fallback for the dynamic policy: when a client's dproc
  /// feed is stale (d-mon flags it after going silent) or dead (evicted),
  /// steering on the cached metrics would chase ghosts, so the stream
  /// drops to this conservative representation until the feed recovers.
  Representation stale_fallback_rep = Representation::kCompressed;
  double stale_fallback_fraction = 0.5;
};

class Server {
 public:
  Server(host::Host& host, net::Nic& nic, core::DMon* dmon,
         ServerConfig config = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  void start();
  void stop();

  struct ClientState {
    net::NodeId node = 0;
    Subscribe subscription;
    net::TcpConnection::Ptr conn;
    // Dynamic-policy state.
    double bandwidth_estimate_bps = 0.0;
    double baseline_rtt_us = 0.0;
    double last_send_rate_bps = 0.0;
    int gap_strikes = 0;            // consecutive congestion signals
    SimTime last_rate_increase_at;  // grace window anchor (EWMA lag)
    // Send rate at the last congestion collapse: recovery is fast below
    // half of it and cautious above (the ssthresh idea).
    double collapse_rate_bps = 0.0;  // 0 = never collapsed
    // Last decision, for observability.
    Representation last_rep = Representation::kFull;
    double last_fraction = 1.0;
    std::uint64_t frames_sent = 0;
    /// Frames steered by the conservative fallback because the client's
    /// monitoring feed was stale or dead.
    std::uint64_t stale_fallbacks = 0;
    /// Frames steered by the fallback because the feed, while updating,
    /// breached its staleness SLO budget (d-mon's watchdog flagged it).
    std::uint64_t slo_distrusts = 0;
    /// Frames steered by the fallback because the client's self-published
    /// health score (dproc_health_score) fell below the trust threshold —
    /// the node itself says its monitoring path is degraded, often before
    /// individual samples start missing their staleness SLO.
    std::uint64_t health_distrusts = 0;
  };

  [[nodiscard]] std::size_t client_count() const { return clients_.size(); }
  [[nodiscard]] const ClientState* client(net::NodeId node) const;
  [[nodiscard]] std::uint64_t frames_generated() const { return frames_; }

 private:
  void on_accept(net::TcpConnection::Ptr conn);
  void tick();
  void send_frame(ClientState& client, const workload::MdFrame& frame);

  /// Reads a client's dproc metric; `fallback` when no data has arrived.
  [[nodiscard]] double metric(net::NodeId node, const std::string& key,
                              double fallback) const;

  /// True when the client's monitoring feed can no longer be trusted:
  /// d-mon marked the peer dead, or stale with old data cached (a peer
  /// that never produced data yet is merely warming up, not degraded).
  [[nodiscard]] bool feed_degraded(net::NodeId node) const;

  void update_bandwidth_estimate(ClientState& client);
  /// Chooses (representation, fraction) for this client per the policy.
  [[nodiscard]] std::pair<Representation, double> choose(ClientState& client);

  /// Stamps the decision hop for the freshest traced metric the dynamic
  /// policy consulted, closing the publish → decision causal chain. No-op
  /// unless tracing is enabled and a consulted value carried a trace id.
  void note_decision(const ClientState& client);

  /// Flight-records a fallback decision (reason: 0 = stale/dead feed,
  /// 1 = staleness-SLO breach, 2 = health-score distrust). Branch-only
  /// when the recorder is off.
  void note_trust_drop(net::NodeId node, std::uint64_t reason);

  host::Host& host_;
  net::Nic& nic_;
  core::DMon* dmon_;
  ServerConfig config_;
  workload::MdFrameSource source_;

  std::unique_ptr<net::TcpListener> listener_;
  std::vector<net::TcpConnection::Ptr> pending_;  // connected, not subscribed
  std::map<net::NodeId, ClientState> clients_;
  sim::EventHandle frame_timer_;
  std::uint64_t frames_ = 0;
};

}  // namespace dproc::smartpointer
