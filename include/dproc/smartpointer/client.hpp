// SmartPointer client: receives, processes, and accounts stream frames.
//
// Processing runs as a user task on the host CPU model, so linpack load on
// the same node slows it down exactly as in the paper's CPU-loaded-client
// experiment; storage clients additionally write each frame to disk. The
// client records per-frame total lag (server generation → processing
// complete), which is the "propagation + processing time" metric of
// Figures 9-11.
#pragma once

#include <cstdint>
#include <vector>

#include "dproc/core/dmon.hpp"
#include "dproc/host/host.hpp"
#include "dproc/net/tcp.hpp"
#include "dproc/smartpointer/stream.hpp"
#include "dproc/util/stats.hpp"

namespace dproc::smartpointer {

struct ClientConfig {
  FilterMode mode = FilterMode::kNone;
  Representation static_rep = Representation::kPositionOnly;
  StreamCostModel costs{};
  bool storage_client = false;
  /// Scales processing cost (Figure 10's client "does very little
  /// processing" => 0.01).
  double processing_scale = 1.0;
  /// When set, the client publishes an application-level metric
  /// ("stream_lag", smoothed seconds of frame lag) through this node's
  /// d-mon — the paper's §1 integration of application-level information
  /// with system-level monitoring. The server's dynamic policy consumes it.
  core::DMon* dmon = nullptr;
};

class Client {
 public:
  using FrameCallback =
      std::function<void(const FramePayload&, SimTime completed_at)>;

  Client(host::Host& host, net::Nic& nic, net::NodeId server,
         net::Port server_port, ClientConfig config = {});
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  void connect();

  struct LagPoint {
    SimTime completed_at;
    SimDuration lag;       // generation -> processing complete
    Representation rep;
  };

  [[nodiscard]] std::uint64_t frames_received() const { return received_; }
  [[nodiscard]] std::uint64_t frames_processed() const { return processed_; }
  [[nodiscard]] const std::vector<LagPoint>& lag_series() const {
    return lag_series_;
  }
  [[nodiscard]] SampleSet& lags() { return lags_; }

  /// Frames processed per second since the previous checkpoint() call.
  [[nodiscard]] double event_rate_since_checkpoint() const;
  void checkpoint();

  /// Frames queued behind the processing task right now.
  [[nodiscard]] std::size_t backlog() const;

  /// Invoked after each frame finishes processing (sync groups, UIs).
  void set_frame_callback(FrameCallback callback) {
    on_frame_processed_ = std::move(callback);
  }

 private:
  void on_frame(const net::MessagePtr& message);

  host::Host& host_;
  net::Nic& nic_;
  net::NodeId server_;
  net::Port server_port_;
  ClientConfig config_;

  net::TcpConnection::Ptr conn_;
  host::TaskId processing_task_ = 0;
  FrameCallback on_frame_processed_;
  Ewma lag_ewma_{0.4};  // published as the "stream_lag" app metric

  std::uint64_t received_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t checkpoint_processed_ = 0;
  SimTime checkpoint_time_;
  SampleSet lags_;
  std::vector<LagPoint> lag_series_;
};

}  // namespace dproc::smartpointer
