// Flight recorder: a per-host, fixed-capacity, allocation-free ring of
// structured events — the post-mortem complement to the metric layer.
//
// Counters say *how much*; the flight recorder says *what happened, when,
// in what order*. Every kernel service records the state transitions that
// matter for debugging a distributed incident (membership churn, leader
// elections, peers going stale, SLO breaches, adaptation clamps) plus the
// fault injector's ground truth, all stamped on the virtual clock. Because
// the simulator shares one global clock, timestamps merged across nodes
// ARE the causal order, so tools/incident_report can reconstruct a
// cluster-wide timeline from per-node dumps.
//
// Disabled (the default) record() is a single relaxed atomic load and a
// branch: no allocation, no locking, no simulated cost — the golden trace
// is untouched. Enabled, record() takes a short spinlock and writes one
// fixed-size slot; the ring is pre-allocated by configure(), so recording
// never allocates. The lock exists only for the concurrent-stress test
// harness — the simulator itself is single-threaded.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace dproc::sim {
class Engine;
}  // namespace dproc::sim

namespace dproc::telemetry {

/// Cluster-level flight recorder knobs. Disabled by default: recorders stay
/// unconfigured and unenabled, so record points are branch-only and the
/// golden trace is byte-identical.
struct FlightConfig {
  bool enabled = false;
  std::size_t capacity = 1024;  // events retained per host
};

enum class Severity : std::uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};
[[nodiscard]] const char* to_string(Severity severity);

/// Which kernel service recorded the event.
enum class FlightSubsystem : std::uint8_t {
  kKecho = 0,
  kRegistry = 1,
  kDmon = 2,
  kAdapt = 3,
  kFault = 4,
  kHealth = 5,
  kSmartPointer = 6,
};
[[nodiscard]] const char* to_string(FlightSubsystem subsystem);

/// Structured event codes, blocked per subsystem so dumps stay greppable
/// and the incident tool can pattern-match without string parsing.
enum class FlightCode : std::uint16_t {
  // kecho membership
  kMemberJoin = 1,    // args: {node}
  kMemberLeave = 2,   // args: {node}
  kMemberEvict = 3,   // args: {node, missed_heartbeats}
  // registry replica set
  kLeaderElected = 100,   // args: {replica, epoch}
  kLeaseExpired = 101,    // args: {replica}
  kSyncApplied = 102,     // args: {replica, entries}
  kRegistryOutage = 103,  // args: {replica}
  kRegistryOnline = 104,  // args: {replica}
  // d-mon peer liveness / collection
  kPeerLive = 200,       // args: {node}
  kPeerStale = 201,      // args: {node, age_ms}
  kPeerDead = 202,       // args: {node, age_ms}
  kCollectError = 203,   // args: {module_index}
  kSloViolation = 204,   // args: {node, age_ms, slo_ms}
  // adaptation controller
  kAdaptRound = 300,  // args: {round, changed}
  kAdaptClamp = 301,  // args: {clamps, overhead_ppm}
  // fault-injector ground truth
  kFaultInjected = 400,  // args: {fault_kind, target, param_ppm, node}
  // health engine
  kHealthDegraded = 500,   // args: {score}
  kHealthRecovered = 501,  // args: {score}
  kIncidentOpened = 502,   // args: {incident_id, trigger_code}
  kWatchdogTrip = 503,     // args: {rule_index, delta}
  // SmartPointer trust decisions
  kTrustDrop = 600,  // args: {node, reason}
};
[[nodiscard]] const char* to_string(FlightCode code);

/// One recorded event. Fixed-size POD so the ring is a flat array; up to
/// four uint64 arguments carry the code-specific payload (see the comments
/// on FlightCode) and trace_id optionally links the event to a PR-4 causal
/// trace.
struct FlightEvent {
  std::int64_t ts_ns = 0;
  std::uint64_t trace_id = 0;
  std::uint64_t args[4] = {0, 0, 0, 0};
  FlightCode code = FlightCode::kMemberJoin;
  Severity severity = Severity::kInfo;
  FlightSubsystem subsystem = FlightSubsystem::kKecho;
};

/// The per-host recorder. Owned by host::Host next to the telemetry
/// Registry; services receive a pointer and call record() at transition
/// points. Oldest events are overwritten when the ring is full (dropped()
/// counts the overwrites) — for post-mortems the most recent history wins.
class FlightRecorder {
 public:
  explicit FlightRecorder(const sim::Engine* clock = nullptr)
      : clock_(clock) {}
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Pre-allocates the ring. Recording stays a no-op until both configure()
  /// and set_enabled(true) have run; reconfiguring clears retained events.
  void configure(std::size_t capacity);
  void set_enabled(bool enabled) {
    enabled_.store(enabled && !ring_.empty(), std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Records one event, stamped on the virtual clock. Disabled: one relaxed
  /// load and a branch. Enabled: spinlock + slot write, no allocation.
  void record(Severity severity, FlightSubsystem subsystem, FlightCode code,
              std::uint64_t a0 = 0, std::uint64_t a1 = 0, std::uint64_t a2 = 0,
              std::uint64_t a3 = 0, std::uint64_t trace_id = 0);

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Event i counted from the oldest retained (0 == oldest).
  [[nodiscard]] const FlightEvent& event(std::size_t i) const {
    return ring_[(head_ + i) % ring_.size()];
  }
  void clear();

  /// Copies the retained events, oldest first, into `out` (appended).
  void snapshot(std::vector<FlightEvent>& out) const;

  /// Text dump, one event per line:
  ///   flight <ts_ns> <severity> <subsystem> <code> <a0> <a1> <a2> <a3>
  ///   [trace=<hex>]
  /// — the format tools/incident_report parses back.
  [[nodiscard]] std::string render() const;

 private:
  const sim::Engine* clock_;
  std::atomic<bool> enabled_{false};
  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  std::vector<FlightEvent> ring_;  // fixed-capacity once configured
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Renders one event in the dump line format (no trailing newline).
[[nodiscard]] std::string render_event(const FlightEvent& event);

/// Parses one dump line produced by render_event/render; returns false on
/// anything that is not a well-formed "flight ..." line.
[[nodiscard]] bool parse_event(const std::string& line, FlightEvent& out);

}  // namespace dproc::telemetry
