// Self-monitoring telemetry: the layer dproc uses to measure itself.
//
// The paper's entire evaluation (§4) is a measurement of dproc's *own*
// overhead — submission cost, receive cost, perturbation of co-located
// applications. This registry makes that measurement a permanent, in-system
// capability instead of something only offline bench binaries can do:
//
//  * counters/gauges/latency recorders keyed by "subsystem/name", created
//    once at component construction and bumped from the hot paths;
//  * a bounded trace-span ring (virtual-clock timestamps) exportable as
//    Chrome trace_event JSON for chrome://tracing / Perfetto;
//  * per-node: every simulated host owns one Registry, so the DPROC
//    monitoring module can publish a node's own overhead on the monitoring
//    channel like any other metric (/proc/cluster/<node>/dproc/...).
//
// Disabled (the default) the layer is inert: recorders no-op behind a
// single branch, nothing allocates, no simulated cost is charged, and no
// events are scheduled — so the deterministic golden trace and the
// zero-allocation guarantees of the perf regression suite are untouched.
// Instrument handles are created eagerly at construction time; enabling
// telemetry mid-run only starts accumulation, it never reshapes the sim.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dproc/util/stats.hpp"
#include "dproc/util/time.hpp"

namespace dproc::sim {
class Engine;
}  // namespace dproc::sim

namespace dproc::telemetry {

class Registry;

/// Interned instrument handle: the index of an instrument inside its
/// registry, resolved once at instrumentation-site construction. Enabled-
/// mode record cost through a handle is an array index — no string hashing
/// or map walk ever sits on a hot path.
using InstrumentId = std::uint32_t;

/// Monotonic event counter. Gated on the owning registry's enabled flag;
/// an increment is a load, a branch, and an add — never an allocation.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (*enabled_) value_ += n;
  }
  [[nodiscard]] std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  friend class Registry;
  explicit Counter(const bool* enabled) : enabled_(enabled) {}
  const bool* enabled_;
  std::uint64_t value_ = 0;
};

/// Last-value gauge. Either set explicitly or backed by a pull source
/// (evaluated at read time, so snapshots see the live value — e.g. the sim
/// engine's events-dispatched count — at zero steady-state cost).
class Gauge {
 public:
  void set(double v) {
    if (*enabled_) value_ = v;
  }
  /// Pull source; overrides any set() value while installed.
  void set_source(std::function<double()> source) {
    source_ = std::move(source);
  }
  [[nodiscard]] double value() const {
    return source_ ? source_() : value_;
  }

 private:
  friend class Registry;
  explicit Gauge(const bool* enabled) : enabled_(enabled) {}
  const bool* enabled_;
  double value_ = 0.0;
  std::function<double()> source_;
};

/// Latency distribution in microseconds, SampleSet-backed so snapshot paths
/// get exact interpolated percentiles. record() may grow the sample vector,
/// so it is only called from per-poll paths, never from the allocation-free
/// inner loops; disabled it is a branch and nothing else.
class LatencyRecorder {
 public:
  void record_us(double us) {
    if (*enabled_) samples_us_.add(us);
  }
  void record(SimDuration d) { record_us(d.us()); }

  [[nodiscard]] std::size_t count() const { return samples_us_.count(); }
  [[nodiscard]] double mean_us() const { return samples_us_.mean(); }
  [[nodiscard]] double quantile_us(double q) const {
    return samples_us_.quantile(q);
  }
  [[nodiscard]] const SampleSet& samples() const { return samples_us_; }
  void reset() { samples_us_.clear(); }

 private:
  friend class Registry;
  explicit LatencyRecorder(const bool* enabled) : enabled_(enabled) {}
  const bool* enabled_;
  SampleSet samples_us_;
};

/// One completed trace span on the virtual clock. Category and name must be
/// string literals (or otherwise outlive the registry): spans store the
/// pointers, keeping the ring allocation-free after construction.
struct Span {
  const char* category = "";
  const char* name = "";
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
};

/// Pipeline stage of one causal-tracing hop. The numeric order is the
/// causal order; reconstruction asserts hop sequences are non-decreasing.
enum class HopStage : std::uint8_t {
  kPublish = 0,   // d-mon collected the sample and decided to publish it
  kSubmit = 1,    // KECho marshalled the frame and handed it to the NIC
  kArrive = 2,    // the frame reached the receiver's kernel (wire latency)
  kDeliver = 3,   // poll() drained it to the handler (queueing delay)
  kRender = 4,    // d-mon updated /proc/cluster (or applied a control event)
  kDecision = 5,  // SmartPointer steered a stream on the rendered value
};
constexpr std::size_t kHopStageCount = 6;
[[nodiscard]] const char* to_string(HopStage stage);

/// One causal-tracing hop in a node's bounded hop log. `dur_ns` is the time
/// spent in the transition that *ended* at this hop (0 for kPublish), so
/// per-stage latency histograms fall out of a single node-local scan.
struct Hop {
  std::uint64_t trace_id = 0;
  std::uint32_t origin = 0;   // publishing node
  std::uint32_t channel = 0;  // KECho channel id
  HopStage stage = HopStage::kPublish;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;
};

/// Per-node instrument registry. Owned by host::Host; every kernel service
/// on that host shares it. Not thread-safe by design — the simulator is a
/// single-threaded event loop (see util/logging.hpp for the one exception).
class Registry {
 public:
  /// `clock` supplies virtual-clock timestamps for spans (nullable: spans
  /// then stamp 0 and the Chrome export is still well-formed).
  explicit Registry(const sim::Engine* clock = nullptr,
                    std::size_t span_capacity = 4096,
                    std::size_t hop_capacity = 8192);
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  void set_enabled(bool enabled) { enabled_ = enabled; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Causal tracing is gated separately from the instrument flag, so a
  /// cluster can trace event provenance without the full metric overlay
  /// (and vice versa). Disabled it is branch-only, exactly like enabled_.
  void set_trace_enabled(bool enabled) { trace_enabled_ = enabled; }
  [[nodiscard]] bool trace_enabled() const { return trace_enabled_; }

  /// Get-or-create instruments; references stay valid for the registry's
  /// lifetime (instruments live in stable deque slabs), so hot paths hold
  /// them as pointers resolved once at construction.
  Counter& counter(const std::string& subsystem, const std::string& name);
  Gauge& gauge(const std::string& subsystem, const std::string& name);
  LatencyRecorder& latency(const std::string& subsystem,
                           const std::string& name);

  /// Interned-handle variants: resolve the "subsystem/name" string exactly
  /// once (get-or-create), then record through an O(1) index. Sites that
  /// cannot hold references (serialized configs, tools, watchdog rules
  /// resolved from user input) pre-intern ids instead of re-hashing
  /// strings per record.
  [[nodiscard]] InstrumentId counter_id(const std::string& subsystem,
                                        const std::string& name);
  [[nodiscard]] InstrumentId gauge_id(const std::string& subsystem,
                                      const std::string& name);
  [[nodiscard]] InstrumentId latency_id(const std::string& subsystem,
                                        const std::string& name);
  [[nodiscard]] Counter& counter(InstrumentId id) { return counters_[id]; }
  [[nodiscard]] Gauge& gauge(InstrumentId id) { return gauges_[id]; }
  [[nodiscard]] LatencyRecorder& latency(InstrumentId id) {
    return latencies_[id];
  }
  [[nodiscard]] const Counter& counter(InstrumentId id) const {
    return counters_[id];
  }
  [[nodiscard]] const Gauge& gauge(InstrumentId id) const {
    return gauges_[id];
  }
  [[nodiscard]] const LatencyRecorder& latency(InstrumentId id) const {
    return latencies_[id];
  }

  // --- trace-span ring ----------------------------------------------------

  /// Records a completed span; overwrites the oldest entry when the ring is
  /// full (spans_dropped() counts the overwrites). No-op when disabled.
  void record_span(const char* category, const char* name, SimTime start,
                   SimTime end);
  [[nodiscard]] std::size_t span_count() const { return span_size_; }
  [[nodiscard]] std::size_t span_capacity() const { return spans_.size(); }
  [[nodiscard]] std::uint64_t spans_dropped() const { return spans_dropped_; }
  /// Span i counted from the oldest retained (0 == oldest).
  [[nodiscard]] const Span& span(std::size_t i) const;
  void clear_spans();

  // --- causal-tracing hop log ---------------------------------------------

  /// Appends one hop to the bounded hop log; overwrites the oldest entry
  /// when full (hops_dropped() counts the overwrites). No-op when tracing
  /// is disabled; never allocates (the ring is pre-sized).
  void record_hop(const Hop& hop);
  [[nodiscard]] std::size_t hop_count() const { return hop_size_; }
  [[nodiscard]] std::size_t hop_capacity() const { return hops_.size(); }
  [[nodiscard]] std::uint64_t hops_dropped() const { return hops_dropped_; }
  /// Hop i counted from the oldest retained (0 == oldest).
  [[nodiscard]] const Hop& hop(std::size_t i) const;
  void clear_hops();

  /// Virtual-clock "now" in nanoseconds (0 without a clock).
  [[nodiscard]] std::int64_t now_ns() const;

  // --- snapshots ----------------------------------------------------------

  /// Visits instruments in name order ("subsystem/name").
  void for_each_counter(
      const std::function<void(const std::string&, const Counter&)>& fn) const;
  void for_each_gauge(
      const std::function<void(const std::string&, const Gauge&)>& fn) const;
  void for_each_latency(const std::function<void(const std::string&,
                                                 const LatencyRecorder&)>& fn)
      const;

  /// Text snapshot for procfs / the shell `telemetry` command.
  [[nodiscard]] std::string render() const;

  /// Complete Chrome trace_event JSON document ({"traceEvents": [...]})
  /// for this registry alone; `pid` labels the process lane.
  [[nodiscard]] std::string export_chrome_trace(int pid = 0) const;

  /// Appends this registry's spans as trace_event objects to `out` (comma
  /// handling via `first`). Emits one thread_name metadata event per
  /// distinct span category so each subsystem renders in its own stable
  /// lane, then the spans on their category tids, then the hop log as
  /// Chrome flow events ("s"/"t"/"f" keyed by trace id) that stitch the
  /// cross-node path together in a merged document.
  void append_chrome_trace_events(std::string& out, int pid,
                                  bool& first) const;

 private:
  const sim::Engine* clock_;
  bool enabled_ = false;
  bool trace_enabled_ = false;

  // Instruments live in deque slabs (stable addresses, O(1) indexing);
  // the name maps only resolve "subsystem/name" -> index at intern time
  // and drive name-ordered snapshot iteration.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<LatencyRecorder> latencies_;
  std::map<std::string, InstrumentId> counter_ids_;
  std::map<std::string, InstrumentId> gauge_ids_;
  std::map<std::string, InstrumentId> latency_ids_;

  std::vector<Span> spans_;  // fixed-capacity ring
  std::size_t span_head_ = 0;
  std::size_t span_size_ = 0;
  std::uint64_t spans_dropped_ = 0;

  std::vector<Hop> hops_;  // fixed-capacity ring
  std::size_t hop_head_ = 0;
  std::size_t hop_size_ = 0;
  std::uint64_t hops_dropped_ = 0;
};

/// RAII span: records [construction, destruction] on the registry's virtual
/// clock. With simulated CPU costs the end usually equals the start (the
/// clock does not advance inside a callback), so prefer record_span with an
/// explicit cost-derived end for kernel-path spans; this helper suits
/// engine-driven intervals.
class ScopedSpan {
 public:
  ScopedSpan(Registry& registry, const char* category, const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Registry& registry_;
  const char* category_;
  const char* name_;
  std::int64_t start_ns_;
};

/// Merges several registries (pid-labelled, typically one per node) into a
/// single Chrome trace_event JSON document, including per-subsystem lane
/// metadata and cross-node flow events from each registry's hop log.
std::string merge_chrome_trace(
    const std::vector<std::pair<int, const Registry*>>& registries);

// --- hop-log analysis -------------------------------------------------------

/// Per-(channel, stage) latency distribution aggregated from hop logs.
/// `durations_us` holds the transition time ending at `stage` for every
/// retained hop on that channel; kPublish rows count samples (dur 0).
struct HopBreakdownRow {
  std::uint32_t channel = 0;
  HopStage stage = HopStage::kPublish;
  SampleSet durations_us;
};

/// Scans the retained hop logs of `registries` and aggregates per-channel,
/// per-stage transition latencies, rows sorted by (channel, stage).
std::vector<HopBreakdownRow> hop_breakdown(
    const std::vector<const Registry*>& registries);

/// One sample's reconstructed causal chain: every retained hop with this
/// trace id across `registries`, sorted by (stage, timestamp). The second
/// member of each entry is the pid/node index the hop was recorded on.
std::vector<std::pair<Hop, int>> collect_trace(
    const std::vector<std::pair<int, const Registry*>>& registries,
    std::uint64_t trace_id);

/// Renders the per-stage latency-breakdown table (channel names resolved
/// through `channel_name`, which may return "" to use the numeric id).
std::string render_hop_breakdown(
    const std::vector<HopBreakdownRow>& rows,
    const std::function<std::string(std::uint32_t)>& channel_name = {});

}  // namespace dproc::telemetry
