// Master/worker load balancing driven by dproc feeds.
//
// The paper's introduction motivates run-time monitoring with exactly this
// application pattern: "reallocation of workers from one parallel task
// component to another to achieve better load balance" and "dynamic
// spawning of subtasks to make use of newly-available resources". This
// library implements the pattern: a master farms fixed-cost work units to
// worker nodes over the network; its scheduling policy is pluggable —
// round-robin (monitoring-blind) or dproc-driven (place each unit on the
// node whose monitored load and queue promise the earliest completion).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "dproc/core/dmon.hpp"
#include "dproc/host/host.hpp"
#include "dproc/net/tcp.hpp"

namespace dproc::apps {

enum class SchedulePolicy : std::uint8_t {
  kRoundRobin,  // monitoring-blind baseline
  kDprocLoad,   // place on the node with the least monitored load
};

struct WorkQueueConfig {
  net::Port port = 9100;
  /// CPU seconds one work unit costs on an unloaded reference node.
  double unit_cpu_seconds = 0.5;
  /// Payload shipped per unit (input data) and per result.
  std::uint64_t unit_request_bytes = 64 * 1024;
  std::uint64_t unit_result_bytes = 16 * 1024;
  SchedulePolicy policy = SchedulePolicy::kDprocLoad;
  /// Max units a worker may have queued or running from this master.
  std::size_t max_outstanding_per_worker = 4;
};

/// Executes received work units on the local CPU and returns results.
class Worker {
 public:
  Worker(host::Host& host, net::Nic& nic, WorkQueueConfig config = {});
  ~Worker();
  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  [[nodiscard]] std::uint64_t units_completed() const { return completed_; }

 private:
  void on_request(net::TcpConnection* conn, const net::MessagePtr& message);

  host::Host& host_;
  net::Nic& nic_;
  WorkQueueConfig config_;
  host::TaskId task_;
  std::unique_ptr<net::TcpListener> listener_;
  std::vector<net::TcpConnection::Ptr> connections_;
  std::uint64_t completed_ = 0;
};

/// Farms work units to workers and records completion statistics.
class Master {
 public:
  Master(host::Host& host, net::Nic& nic, core::DMon* dmon,
         std::vector<net::NodeId> workers, WorkQueueConfig config = {});
  ~Master();
  Master(const Master&) = delete;
  Master& operator=(const Master&) = delete;

  /// Enqueues `count` work units; they are dispatched as worker slots free.
  void submit(std::uint64_t count);

  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t pending() const { return queued_; }
  /// Mean turnaround of completed units (dispatch -> result), seconds.
  [[nodiscard]] double mean_turnaround_sec() const;
  /// When the most recent unit completed (for makespan measurements).
  [[nodiscard]] SimTime last_completion_at() const { return last_completion_; }
  /// Units completed by each worker (for balance inspection).
  [[nodiscard]] std::map<net::NodeId, std::uint64_t> per_worker_completed() const;

 private:
  struct WorkerState {
    net::NodeId node = 0;
    net::TcpConnection::Ptr conn;
    std::size_t outstanding = 0;
    std::uint64_t completed = 0;
  };

  void pump();
  /// Picks the next worker per the policy; nullptr when all are saturated.
  WorkerState* pick_worker();
  void on_result(net::NodeId worker, const net::MessagePtr& message);

  host::Host& host_;
  net::Nic& nic_;
  core::DMon* dmon_;
  WorkQueueConfig config_;
  std::vector<WorkerState> workers_;
  std::size_t round_robin_next_ = 0;

  std::uint64_t next_unit_id_ = 1;
  std::uint64_t queued_ = 0;
  std::uint64_t completed_ = 0;
  std::map<std::uint64_t, SimTime> dispatch_times_;
  double turnaround_sum_sec_ = 0.0;
  SimTime last_completion_;
};

}  // namespace dproc::apps
