// Performance monitoring counters.
//
// Models the per-processor hardware event counters the paper's PMC module
// exposes cluster-wide. Workloads bump named counters; the PMC monitoring
// module reads and publishes them. Counter names are open-ended so that,
// like the paper's extension story, new chip events can be added without
// touching this class.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dproc::host {

class Pmc {
 public:
  // Conventional counter names used by the built-in workloads.
  static constexpr const char* kCacheMisses = "cache_misses";
  static constexpr const char* kInstructions = "instructions";
  static constexpr const char* kFlops = "flops";

  void increment(const std::string& counter, std::uint64_t delta) {
    counters_[counter] += delta;
  }

  /// Reads a counter; unknown counters read 0, matching uninitialized PMCs.
  [[nodiscard]] std::uint64_t read(const std::string& counter) const {
    auto it = counters_.find(counter);
    return it == counters_.end() ? 0 : it->second;
  }

  [[nodiscard]] std::vector<std::string> counter_names() const {
    std::vector<std::string> names;
    names.reserve(counters_.size());
    for (const auto& [name, value] : counters_) names.push_back(name);
    return names;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace dproc::host
