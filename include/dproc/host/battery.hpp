// Battery model: power as a first-class resource.
//
// The paper's future-work section targets wireless and mobile devices where
// "power has to be considered a first-class resource", and its extension
// story names battery monitoring as the canonical dynamically deployed
// module. This model drains charge from three sources — a baseline floor,
// CPU busy time, and NIC traffic — which covers the effects the dproc
// policies would act on (offloading work raises network drain, local
// rendering raises CPU drain).
#pragma once

#include <algorithm>
#include <cstdint>

#include "dproc/host/cpu.hpp"
#include "dproc/net/nic.hpp"
#include "dproc/sim/engine.hpp"

namespace dproc::host {

struct BatteryConfig {
  double capacity_joules = 20'000.0;   // small 2003-era device pack
  double idle_watts = 1.2;             // display + chipset floor
  double cpu_active_watts = 6.0;       // additional draw at 100% CPU
  double nanojoules_per_byte = 900.0;  // radio cost per byte sent/received
};

class Battery {
 public:
  Battery(sim::Engine& engine, Cpu& cpu, net::Nic& nic,
          BatteryConfig config = {});
  Battery(const Battery&) = delete;
  Battery& operator=(const Battery&) = delete;

  /// Remaining charge in [0, 1]. Integrates drain lazily on read.
  [[nodiscard]] double level();

  [[nodiscard]] double remaining_joules();
  [[nodiscard]] bool depleted() { return remaining_joules() <= 0.0; }

  /// Instantaneous draw estimate in watts (for the monitoring module).
  [[nodiscard]] double watts();

  [[nodiscard]] const BatteryConfig& config() const { return config_; }

 private:
  void advance();

  sim::Engine& engine_;
  Cpu& cpu_;
  net::Nic& nic_;
  BatteryConfig config_;

  double consumed_joules_ = 0.0;
  SimTime last_update_;
  SimDuration last_cpu_busy_{0};
  std::uint64_t last_nic_bytes_ = 0;
  double last_watts_ = 0.0;
};

}  // namespace dproc::host
