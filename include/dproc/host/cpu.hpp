// Processor-sharing CPU model.
//
// Models one node's CPU as a processor-sharing queue with two classes:
//
//  * kernel work (monitoring modules, d-mon polling, KECho submission and
//    dispatch) runs at strict priority — this is how a real kernel steals
//    cycles from user programs, and it is precisely the effect Figure 4 of
//    the paper measures as lost linpack Mflops;
//  * user tasks (linpack threads, stream-processing loops) share the
//    remaining capacity equally, the long-run behaviour of the Linux 2.4
//    O(n) scheduler for CPU-bound tasks of equal nice.
//
// Tasks are either compute sinks (always runnable, accumulate work — the
// linpack threads) or work-item queues (runnable while items are pending —
// the SmartPointer client's per-event processing). Accounting is exact: the
// model integrates shares analytically between state changes instead of
// ticking, so results are independent of any sampling interval.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "dproc/sim/engine.hpp"
#include "dproc/util/time.hpp"

namespace dproc::host {

using TaskId = std::uint64_t;

struct CpuConfig {
  /// Peak floating-point throughput; the paper's Pentium Pro 200 MHz
  /// measures ~17.4 Mflops with linpack.
  double mflops_capacity = 17.4;
  /// Core clock, used to convert cycle costs of kernel paths to time.
  double clock_hz = 200e6;
};

class Cpu {
 public:
  Cpu(sim::Engine& engine, CpuConfig config);
  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  // --- user task management -------------------------------------------

  /// Adds an always-runnable compute sink (e.g. a linpack thread).
  TaskId add_compute_task(std::string name);

  /// Adds a work-item queue task; runnable only while items are pending.
  TaskId add_server_task(std::string name);

  /// Removes a task; pending work items are dropped without completion.
  void remove_task(TaskId id);

  /// Sets a task's scheduling weight (default 1.0). Runnable tasks receive
  /// CPU proportionally to weight — the mechanism a QoS manager uses to
  /// enforce reservations (cf. the paper's Q-Fabric integration).
  void set_task_weight(TaskId id, double weight);
  [[nodiscard]] double task_weight(TaskId id) const;

  /// Enqueues `cpu_seconds` of work on a server task; `on_complete` fires
  /// when this item (and everything queued before it) has been executed.
  void submit_work(TaskId id, double cpu_seconds,
                   std::function<void()> on_complete);

  /// Number of unfinished work items queued on a server task.
  [[nodiscard]] std::size_t queued_items(TaskId id) const;

  // --- kernel class ----------------------------------------------------

  /// Accounts `cpu_time` of kernel execution. Runs at strict priority:
  /// user tasks make no progress until the backlog drains.
  void consume_kernel(SimDuration cpu_time);

  /// Convenience for cycle-denominated kernel costs (rdtsc-style numbers).
  void consume_kernel_cycles(double cycles);

  // --- observation -----------------------------------------------------

  /// Instantaneous run-queue length (runnable user tasks). CPU_MON samples
  /// this periodically and averages, mirroring the paper's kernel thread.
  [[nodiscard]] std::size_t run_queue_length() const;

  /// Total CPU time a task has received so far.
  [[nodiscard]] SimDuration task_cpu_time(TaskId id);

  /// Achieved Mflops of a compute task over its lifetime; this is what the
  /// linpack "benchmark" inside the simulation reports.
  [[nodiscard]] double task_mflops(TaskId id);

  /// Total kernel CPU time consumed since construction.
  [[nodiscard]] SimDuration kernel_cpu_time() const { return kernel_total_; }

  /// Fraction of wall time the CPU was busy (kernel + user) so far.
  [[nodiscard]] double utilization();

  [[nodiscard]] const CpuConfig& config() const { return config_; }

 private:
  struct Task {
    std::string name;
    bool compute_sink = false;
    double weight = 1.0;
    // For server tasks: FIFO of (remaining cpu-seconds, completion).
    struct Item {
      double remaining_sec;
      std::function<void()> on_complete;
    };
    std::deque<Item> items;
    double cpu_seconds_done = 0.0;
    SimTime created;
    [[nodiscard]] bool runnable() const { return compute_sink || !items.empty(); }
  };

  /// Integrates progress from last_update_ to now, draining kernel backlog
  /// first and then sharing time among runnable user tasks. Completions are
  /// delivered via scheduled engine events, never from inside advance().
  void advance();

  /// Recomputes and schedules the next server-task item completion.
  void reschedule_completion();

  [[nodiscard]] double runnable_count() const;
  [[nodiscard]] double runnable_weight() const;

  sim::Engine& engine_;
  CpuConfig config_;
  std::map<TaskId, Task> tasks_;
  TaskId next_id_ = 1;

  SimTime last_update_;
  double kernel_backlog_sec_ = 0.0;  // kernel work not yet charged to time
  SimDuration kernel_total_{0};
  double busy_seconds_ = 0.0;

  sim::EventHandle completion_event_;
};

}  // namespace dproc::host
