// Physical memory model. MEM_MON reads free_pages(), the analogue of the
// nr_free_pages() kernel function the paper's module calls.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace dproc::host {

class Memory {
 public:
  static constexpr std::uint64_t kPageSize = 4096;

  explicit Memory(std::uint64_t total_bytes) : total_(total_bytes) {}

  /// Reserves bytes; throws std::bad_alloc-style failure as a Status-free
  /// boolean since callers are simulated workloads.
  [[nodiscard]] bool allocate(std::uint64_t bytes) {
    if (used_ + bytes > total_) return false;
    used_ += bytes;
    return true;
  }

  void release(std::uint64_t bytes) {
    if (bytes > used_) throw std::logic_error{"Memory::release underflow"};
    used_ -= bytes;
  }

  [[nodiscard]] std::uint64_t total_bytes() const { return total_; }
  [[nodiscard]] std::uint64_t used_bytes() const { return used_; }
  [[nodiscard]] std::uint64_t free_bytes() const { return total_ - used_; }
  [[nodiscard]] std::uint64_t free_pages() const { return free_bytes() / kPageSize; }

 private:
  std::uint64_t total_;
  std::uint64_t used_ = 0;
};

/// RAII memory reservation for workload lifetimes.
class MemoryReservation {
 public:
  MemoryReservation() = default;
  MemoryReservation(Memory& memory, std::uint64_t bytes)
      : memory_(&memory), bytes_(memory.allocate(bytes) ? bytes : 0) {}
  ~MemoryReservation() { reset(); }

  MemoryReservation(MemoryReservation&& other) noexcept
      : memory_(other.memory_), bytes_(other.bytes_) {
    other.memory_ = nullptr;
    other.bytes_ = 0;
  }
  MemoryReservation& operator=(MemoryReservation&& other) noexcept {
    if (this != &other) {
      reset();
      memory_ = other.memory_;
      bytes_ = other.bytes_;
      other.memory_ = nullptr;
      other.bytes_ = 0;
    }
    return *this;
  }
  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  [[nodiscard]] bool ok() const { return memory_ == nullptr || bytes_ > 0; }
  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }

  void reset() {
    if (memory_ != nullptr && bytes_ > 0) memory_->release(bytes_);
    memory_ = nullptr;
    bytes_ = 0;
  }

 private:
  Memory* memory_ = nullptr;
  std::uint64_t bytes_ = 0;
};

}  // namespace dproc::host
