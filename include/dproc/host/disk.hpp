// Disk model: a FIFO-served device with seek latency plus streaming
// bandwidth. DISK_MON derives read/write op and sector rates by sampling the
// cumulative counters, exactly as the paper's module samples kernel disk
// statistics over a configurable period (default 1 s).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "dproc/sim/engine.hpp"
#include "dproc/util/time.hpp"

namespace dproc::host {

struct DiskConfig {
  double bandwidth_bytes_per_sec = 20e6;  // c. 2003 IDE streaming rate
  SimDuration seek_time = milliseconds(5.0);
};

struct DiskCounters {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t sectors_read = 0;
  std::uint64_t sectors_written = 0;
};

class Disk {
 public:
  static constexpr std::uint64_t kSectorSize = 512;

  enum class Op { kRead, kWrite };

  Disk(sim::Engine& engine, DiskConfig config);
  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Queues an I/O; `on_complete` fires when the transfer finishes. The
  /// device serves requests in order at seek + size/bandwidth each.
  void submit(Op op, std::uint64_t bytes, std::function<void()> on_complete = {});

  [[nodiscard]] const DiskCounters& counters() const { return counters_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size() + (busy_ ? 1 : 0); }
  [[nodiscard]] SimDuration busy_time() const { return busy_time_; }
  [[nodiscard]] const DiskConfig& config() const { return config_; }

 private:
  struct Request {
    Op op;
    std::uint64_t bytes;
    std::function<void()> on_complete;
  };

  void start_next();

  sim::Engine& engine_;
  DiskConfig config_;
  DiskCounters counters_;
  std::deque<Request> queue_;
  bool busy_ = false;
  SimDuration busy_time_{0};
};

}  // namespace dproc::host
