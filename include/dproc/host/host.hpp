// A simulated cluster node: CPU, memory, disk, and PMCs on one virtual
// clock. The network interface is attached by the net module; the kernel
// services (procfs, KECho, d-mon) are layered on top by the core module.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "dproc/host/cpu.hpp"
#include "dproc/host/disk.hpp"
#include "dproc/host/memory.hpp"
#include "dproc/host/pmc.hpp"
#include "dproc/sim/engine.hpp"
#include "dproc/telemetry/flight.hpp"
#include "dproc/telemetry/telemetry.hpp"
#include "dproc/util/rng.hpp"

namespace dproc::host {

using HostId = std::uint32_t;

struct HostConfig {
  std::string name;
  CpuConfig cpu{};
  std::uint64_t memory_bytes = 512ULL << 20;  // paper hardware: 512 MB
  DiskConfig disk{};
};

class Host {
 public:
  Host(sim::Engine& engine, HostId id, HostConfig config, Rng rng)
      : engine_(engine),
        id_(id),
        name_(config.name),
        rng_(rng),
        cpu_(engine, config.cpu),
        memory_(config.memory_bytes),
        disk_(engine, config.disk),
        telemetry_(&engine),
        flight_(&engine) {
    // Engine-level instrumentation: the dispatch count is pulled from the
    // engine at read time, so the hot event loop carries no telemetry code.
    telemetry_.gauge("sim", "events_dispatched").set_source([&engine] {
      return static_cast<double>(engine.events_processed());
    });
  }

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] HostId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Rng& rng() { return rng_; }

  [[nodiscard]] Cpu& cpu() { return cpu_; }
  [[nodiscard]] Memory& memory() { return memory_; }
  [[nodiscard]] Disk& disk() { return disk_; }
  [[nodiscard]] Pmc& pmc() { return pmc_; }

  /// This node's self-monitoring instrument registry (disabled by default;
  /// the kernel services instrument themselves through it).
  [[nodiscard]] telemetry::Registry& telemetry() { return telemetry_; }
  [[nodiscard]] const telemetry::Registry& telemetry() const {
    return telemetry_;
  }

  /// This node's flight recorder (inert until configured and enabled by the
  /// cluster layer; kernel services record state transitions into it).
  [[nodiscard]] telemetry::FlightRecorder& flight() { return flight_; }
  [[nodiscard]] const telemetry::FlightRecorder& flight() const {
    return flight_;
  }

 private:
  sim::Engine& engine_;
  HostId id_;
  std::string name_;
  Rng rng_;
  Cpu cpu_;
  Memory memory_;
  Disk disk_;
  Pmc pmc_;
  telemetry::Registry telemetry_;
  telemetry::FlightRecorder flight_;
};

}  // namespace dproc::host
