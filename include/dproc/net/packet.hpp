// Packet and message types shared across the network stack.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace dproc::net {

using NodeId = std::uint32_t;
using Port = std::uint16_t;

/// Application payload. `header` holds real encoded bytes (monitoring
/// events, control messages); `body_bytes` adds simulated bulk (stream
/// frames) that occupies wire and buffer space without allocating it.
struct Message {
  std::vector<std::uint8_t> header;
  std::uint64_t body_bytes = 0;

  [[nodiscard]] std::uint64_t size() const { return header.size() + body_bytes; }
};

using MessagePtr = std::shared_ptr<const Message>;

inline MessagePtr make_message(std::vector<std::uint8_t> header,
                               std::uint64_t body_bytes = 0) {
  auto m = std::make_shared<Message>();
  m->header = std::move(header);
  m->body_bytes = body_bytes;
  return m;
}

enum class PacketKind : std::uint8_t {
  kDatagram,   // UDP-like: one packet == one datagram (possibly a fragment)
  kTcpData,    // TCP segment
  kTcpAck,     // TCP cumulative acknowledgment
  kTcpSyn,     // connection setup
  kTcpSynAck,
};

/// One unit of link transmission. Wire size includes per-packet framing
/// overhead (Ethernet + IP + transport headers).
struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  Port src_port = 0;
  Port dst_port = 0;
  PacketKind kind = PacketKind::kDatagram;

  std::uint64_t flow_id = 0;   // connection / datagram-stream identity
  std::uint64_t seq = 0;       // TCP: first payload byte; UDP: datagram index
  std::uint64_t ack = 0;       // TCP ACK: next expected byte
  std::uint32_t payload_bytes = 0;
  std::int64_t sent_at_ns = 0;  // origination time, for end-to-end delay

  /// Present on the packet carrying the *last* byte of a message so the
  /// receiver can deliver the reassembled payload without buffering bulk.
  MessagePtr message;

  /// Total on-the-wire size used for serialization-delay accounting.
  [[nodiscard]] std::uint64_t wire_bytes() const { return payload_bytes + kHeaderBytes; }

  static constexpr std::uint32_t kHeaderBytes = 58;  // eth+ip+tcp/udp framing
};

}  // namespace dproc::net
