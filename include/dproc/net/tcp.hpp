// Reliable, in-order message transport (simplified TCP).
//
// Go-back-N acknowledgment with slow start / AIMD congestion control, RTO
// with exponential backoff, fast retransmit on three duplicate ACKs, and
// EWMA RTT estimation with Karn's rule. Segments never span message
// boundaries, so a cumulative ACK always lands on a segment edge and the
// segment carrying a message's last byte also carries the reassembled
// payload pointer.
//
// KECho channels and the SmartPointer stream both run over this transport;
// its send-queue growth under congestion is the mechanism behind the
// latency blow-up in Figure 10 of the paper.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "dproc/net/nic.hpp"
#include "dproc/net/packet.hpp"
#include "dproc/util/stats.hpp"
#include "dproc/util/time.hpp"

namespace dproc::net {

struct TcpConfig {
  std::uint32_t mss = 1448;
  double initial_cwnd = 2.0;       // segments
  double initial_ssthresh = 64.0;  // segments
  SimDuration min_rto = milliseconds(10.0);
  SimDuration max_rto = seconds(2.0);
};

struct TcpStats {
  std::uint64_t retransmissions = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_acked = 0;
  std::uint64_t wire_bytes_sent = 0;  // data + acks from this endpoint
  double srtt_us = 0.0;
  double cwnd_segments = 0.0;
  std::uint64_t in_flight_bytes = 0;
  std::uint64_t send_queue_bytes = 0;  // segmented-but-unsent + unsegmented
};

class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  using MessageHandler = std::function<void(const MessagePtr&)>;
  using Ptr = std::shared_ptr<TcpConnection>;

  /// Active open. `on_established` fires after the handshake completes;
  /// sends issued earlier are queued and flushed then.
  static Ptr connect(Nic& nic, NodeId remote, Port remote_port,
                     TcpConfig config = {},
                     std::function<void()> on_established = {});

  ~TcpConnection();
  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  void set_message_handler(MessageHandler handler) {
    on_message_ = std::move(handler);
  }

  /// Queues a message for reliable in-order delivery to the peer.
  void send(MessagePtr message);

  [[nodiscard]] bool established() const { return established_; }
  [[nodiscard]] NodeId local_node() const { return nic_ ? nic_->node() : 0; }
  [[nodiscard]] NodeId remote_node() const { return remote_; }
  [[nodiscard]] std::uint64_t flow_id() const { return flow_id_; }

  /// Snapshot of the connection counters NET_MON publishes.
  [[nodiscard]] TcpStats stats() const;

  /// Smoothed RTT; zero until the first sample.
  [[nodiscard]] SimDuration srtt() const { return microseconds(srtt_us_.value()); }

  /// Tears the connection down locally (no FIN exchange is modeled).
  void close();

  /// Called by the Nic's destructor: the NIC is going away while engine
  /// callbacks may still hold this connection alive. Severs the back
  /// reference so late destruction cannot touch freed memory.
  void detach_from_nic();

  /// Packet entry point, called by the owning Nic.
  void on_packet(const Packet& packet);

 private:
  friend class TcpListener;

  enum class Role { kClient, kServer };

  TcpConnection(Nic& nic, NodeId remote, Port remote_port, Port local_port,
                std::uint64_t flow_id, Role role, TcpConfig config);

  void start_handshake(std::function<void()> on_established);
  void become_established();

  void try_transmit();
  void send_segment(std::uint64_t seq);
  void send_ack();
  void on_data(const Packet& packet);
  void on_ack_packet(const Packet& packet);

  void arm_rto();
  void cancel_rto();
  void on_rto_expired();
  void note_rtt_sample(SimDuration sample);

  void emit(Packet packet);

  Nic* nic_;  // null after detach_from_nic()
  NodeId remote_;
  Port remote_port_;
  Port local_port_;
  std::uint64_t flow_id_;
  Role role_;
  TcpConfig config_;

  bool established_ = false;
  bool closed_ = false;
  std::function<void()> on_established_;
  MessageHandler on_message_;

  // --- sender state ---
  struct Segment {
    std::uint32_t length;
    MessagePtr message_end;  // set when this segment carries a message tail
    std::uint32_t transmit_count = 0;
  };
  std::uint64_t snd_una_ = 0;   // oldest unacknowledged byte
  std::uint64_t snd_next_ = 0;  // first never-segmented byte
  // Go-back-N send cursor: next byte to (re)transmit. Rewound to snd_una_
  // on loss so every segment after the gap is resent, matching the
  // receiver's discard-out-of-order policy.
  std::uint64_t send_ptr_ = 0;
  // Recovery guard (NewReno-flavoured): dup-ack bursts that belong to one
  // loss event must not trigger repeated window collapses.
  std::uint64_t recover_ = 0;
  std::map<std::uint64_t, Segment> unacked_;  // keyed by first byte offset
  std::deque<MessagePtr> pending_messages_;
  std::uint64_t pending_bytes_ = 0;
  std::uint64_t head_offset_ = 0;  // bytes of head pending message segmented
  double cwnd_;
  double ssthresh_;
  int dup_acks_ = 0;
  sim::EventHandle rto_event_;
  SimDuration rto_;
  int syn_attempts_ = 0;

  // RTT probe (single outstanding, Karn-safe).
  bool probe_active_ = false;
  std::uint64_t probe_end_seq_ = 0;
  SimTime probe_sent_at_;
  Ewma srtt_us_{0.125};

  // --- receiver state ---
  std::uint64_t rcv_next_ = 0;

  TcpStats counters_;
};

/// Passive open: accepts connections on a port and hands each established
/// connection to `on_accept`.
class TcpListener {
 public:
  using AcceptHandler = std::function<void(TcpConnection::Ptr)>;

  TcpListener(Nic& nic, Port port, TcpConfig config, AcceptHandler on_accept);
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

 private:
  Nic& nic_;
  TcpConfig config_;
  AcceptHandler on_accept_;
  std::map<std::uint64_t, TcpConnection::Ptr> accepted_;  // keep-alive
};

}  // namespace dproc::net
