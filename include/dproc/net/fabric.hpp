// Link and fabric: the switched-Ethernet model.
//
// The fabric is a graph of unidirectional links; each (src, dst) node pair
// has a route (a sequence of links). A link is a store-and-forward FIFO:
// a packet serializes at link bandwidth behind everything already queued,
// then propagates. Tail drop applies when the queue backlog exceeds the
// buffer — this is where UDP floods lose packets and where TCP observes
// congestion. Cross traffic contends exactly where routes share links,
// which is how the Figure 10 topology perturbs the server-client path.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dproc/net/packet.hpp"
#include "dproc/sim/engine.hpp"
#include "dproc/util/rng.hpp"
#include "dproc/util/time.hpp"

namespace dproc::net {

using LinkId = std::uint32_t;

struct LinkConfig {
  double bandwidth_bps = 100e6;        // Fast Ethernet
  SimDuration propagation = microseconds(25.0);
  std::uint64_t buffer_bytes = 256 * 1024;  // switch port buffer
};

struct LinkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;      // wire bytes serialized
  std::uint64_t packets_dropped = 0;
  std::uint64_t bytes_dropped = 0;
};

/// Why the fabric dropped a packet. kNone doubles as "accepted" in
/// Link::transmit's verdict; the other causes feed the per-cause drop
/// counters (FabricStats) and ride along on every TraceHook drop event.
enum class DropCause : std::uint8_t {
  kNone = 0,
  kNodeDown,    // source or destination host powered off
  kLinkDown,    // partitioned link (cable pull)
  kBufferFull,  // switch-port tail drop under congestion
  kLoss,        // injected random loss burst
};
[[nodiscard]] const char* to_string(DropCause cause);

class Link {
 public:
  Link(sim::Engine& engine, LinkConfig config)
      : engine_(engine), config_(config) {}

  /// Attempts to enqueue; returns the drop cause (kNone == accepted:
  /// kLinkDown when partitioned, kBufferFull on tail drop, kLoss on an
  /// injected loss hit). `on_exit` fires when the packet has fully
  /// traversed the link.
  DropCause transmit(const Packet& packet,
                     std::function<void(const Packet&)> on_exit);

  /// Bytes currently waiting or in flight on the serializer.
  [[nodiscard]] std::uint64_t backlog_bytes() const;

  /// Fault injection: a down link drops every offered packet (a cable pull
  /// or switch-port partition). Counted in packets_dropped/bytes_dropped.
  void set_down(bool down) { down_ = down; }
  [[nodiscard]] bool down() const { return down_; }

  /// Fault injection: drop each offered packet with probability `p`, drawn
  /// from a generator seeded with `seed` (deterministic given call order).
  /// p = 0 ends the burst; the check is a single branch when inactive.
  void set_loss(double p, std::uint64_t seed) {
    loss_probability_ = p;
    if (p > 0.0) loss_rng_ = Rng{seed};
  }
  [[nodiscard]] double loss_probability() const { return loss_probability_; }

  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] const LinkConfig& config() const { return config_; }

 private:
  sim::Engine& engine_;
  LinkConfig config_;
  LinkStats stats_;
  SimTime busy_until_;  // when the serializer frees up
  bool down_ = false;
  double loss_probability_ = 0.0;
  Rng loss_rng_{0};
};

/// Fabric-wide packet accounting, including drops broken out by cause —
/// the numbers the telemetry layer surfaces per node.
struct FabricStats {
  std::uint64_t packets_sent = 0;       // accepted into the fabric
  std::uint64_t packets_delivered = 0;  // reached a destination handler
  std::uint64_t drops_node_down = 0;
  std::uint64_t drops_link_down = 0;
  std::uint64_t drops_buffer_full = 0;
  std::uint64_t drops_loss = 0;

  [[nodiscard]] std::uint64_t drops_total() const {
    return drops_node_down + drops_link_down + drops_buffer_full + drops_loss;
  }
};

class Fabric {
 public:
  explicit Fabric(sim::Engine& engine) : engine_(engine) {}
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Registers an attachment point (one host NIC) and returns its address.
  NodeId add_node(std::string name);

  LinkId add_link(LinkConfig config);

  /// Routes src→dst through `links`, in traversal order. Both directions
  /// must be set explicitly (links are unidirectional).
  void set_route(NodeId src, NodeId dst, std::vector<LinkId> links);

  /// Canonical cluster topology: every node gets an uplink and downlink to
  /// one non-blocking switch; route a→b = [uplink(a), downlink(b)].
  /// Returns per-node (uplink, downlink) pairs for stat inspection.
  /// Routing is implicit — the route is derived from the two port links at
  /// send time instead of materializing all N² (src, dst) entries, so a
  /// 4096-node star costs O(N) memory. Explicit set_route entries still
  /// take precedence for the pairs they cover.
  std::vector<std::pair<LinkId, LinkId>> build_star(
      const std::vector<NodeId>& nodes, const LinkConfig& config);

  /// Injects a packet; it traverses the route's links in order. If any hop
  /// drops it, `on_drop` (optional) fires and traversal ends. Delivery
  /// invokes the handler registered by the destination NIC.
  void send(Packet packet, std::function<void(const Packet&)> on_drop = {});

  /// The destination-side delivery hook; installed by Nic.
  using DeliveryHandler = std::function<void(const Packet&)>;
  void set_delivery_handler(NodeId node, DeliveryHandler handler);

  [[nodiscard]] Link& link(LinkId id) { return *links_.at(id); }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] std::size_t node_count() const { return node_names_.size(); }
  [[nodiscard]] const std::string& node_name(NodeId id) const {
    return node_names_.at(id);
  }

  /// Total wire bytes delivered to `node` so far (for bandwidth probes).
  [[nodiscard]] std::uint64_t bytes_delivered_to(NodeId node) const;

  /// Fault injection: a down node neither sends nor receives — packets to
  /// or from it vanish (as with a powered-off machine). Delivery handlers
  /// stay registered so the node can come back.
  void set_node_down(NodeId node, bool down);
  [[nodiscard]] bool node_down(NodeId node) const;

  /// Fault injection on links (partitions and loss bursts); see Link.
  void set_link_down(LinkId id, bool down) { link(id).set_down(down); }
  void set_link_loss(LinkId id, double p, std::uint64_t seed) {
    link(id).set_loss(p, seed);
  }

  /// tcpdump-style tracing: when set, invoked for every packet the fabric
  /// accepts (kind, addressing, wire size, injection time) and again on
  /// delivery or drop. The cause is DropCause::kNone except on kDrop,
  /// where it says why the packet died. Costless when unset; the telemetry
  /// layer piggybacks per-node packet counters on this hook.
  enum class TraceEvent : std::uint8_t { kSend, kDeliver, kDrop };
  using TraceHook =
      std::function<void(TraceEvent, DropCause, const Packet&, SimTime)>;
  void set_trace_hook(TraceHook hook) { trace_ = std::move(hook); }

  /// Fabric-wide packet counters, drops broken out by cause. Always
  /// maintained (plain increments on paths that already branch).
  [[nodiscard]] const FabricStats& stats() const { return stats_; }

 private:
  void forward(Packet packet, const std::vector<LinkId>& route,
               std::size_t hop, std::function<void(const Packet&)> on_drop);
  /// Star-topology forwarding without a route table: hop 0 = sender's
  /// uplink, hop 1 = destination's downlink, hop 2 = delivery.
  void forward_star(Packet packet, std::size_t hop,
                    std::function<void(const Packet&)> on_drop);
  void deliver(const Packet& packet);
  void count_drop(DropCause cause);

  sim::Engine& engine_;
  std::vector<std::string> node_names_;
  std::vector<std::unique_ptr<Link>> links_;
  std::map<std::pair<NodeId, NodeId>, std::vector<LinkId>> routes_;
  /// Implicit star routing (build_star): per-node (uplink, downlink) port
  /// pairs, indexed by NodeId. Empty when no star was built.
  std::vector<std::pair<LinkId, LinkId>> star_ports_;
  std::vector<DeliveryHandler> delivery_;
  std::vector<std::uint64_t> delivered_bytes_;
  std::vector<bool> node_down_;
  TraceHook trace_;
  FabricStats stats_;
};

}  // namespace dproc::net
