// Link and fabric: the switched-Ethernet model.
//
// The fabric is a graph of unidirectional links; each (src, dst) node pair
// has a route (a sequence of links). A link is a store-and-forward FIFO:
// a packet serializes at link bandwidth behind everything already queued,
// then propagates. Tail drop applies when the queue backlog exceeds the
// buffer — this is where UDP floods lose packets and where TCP observes
// congestion. Cross traffic contends exactly where routes share links,
// which is how the Figure 10 topology perturbs the server-client path.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "dproc/net/packet.hpp"
#include "dproc/sim/engine.hpp"
#include "dproc/util/rng.hpp"
#include "dproc/util/time.hpp"

namespace dproc::net {

using LinkId = std::uint32_t;

struct LinkConfig {
  double bandwidth_bps = 100e6;        // Fast Ethernet
  SimDuration propagation = microseconds(25.0);
  std::uint64_t buffer_bytes = 256 * 1024;  // switch port buffer
};

struct LinkStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;      // wire bytes serialized
  std::uint64_t packets_dropped = 0;
  std::uint64_t bytes_dropped = 0;
};

class Link {
 public:
  Link(sim::Engine& engine, LinkConfig config)
      : engine_(engine), config_(config) {}

  /// Attempts to enqueue; returns false (tail drop) when the buffer is
  /// full. `on_exit` fires when the packet has fully traversed the link.
  bool transmit(const Packet& packet, std::function<void(const Packet&)> on_exit);

  /// Bytes currently waiting or in flight on the serializer.
  [[nodiscard]] std::uint64_t backlog_bytes() const;

  /// Fault injection: a down link drops every offered packet (a cable pull
  /// or switch-port partition). Counted in packets_dropped/bytes_dropped.
  void set_down(bool down) { down_ = down; }
  [[nodiscard]] bool down() const { return down_; }

  /// Fault injection: drop each offered packet with probability `p`, drawn
  /// from a generator seeded with `seed` (deterministic given call order).
  /// p = 0 ends the burst; the check is a single branch when inactive.
  void set_loss(double p, std::uint64_t seed) {
    loss_probability_ = p;
    if (p > 0.0) loss_rng_ = Rng{seed};
  }
  [[nodiscard]] double loss_probability() const { return loss_probability_; }

  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] const LinkConfig& config() const { return config_; }

 private:
  sim::Engine& engine_;
  LinkConfig config_;
  LinkStats stats_;
  SimTime busy_until_;  // when the serializer frees up
  bool down_ = false;
  double loss_probability_ = 0.0;
  Rng loss_rng_{0};
};

class Fabric {
 public:
  explicit Fabric(sim::Engine& engine) : engine_(engine) {}
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Registers an attachment point (one host NIC) and returns its address.
  NodeId add_node(std::string name);

  LinkId add_link(LinkConfig config);

  /// Routes src→dst through `links`, in traversal order. Both directions
  /// must be set explicitly (links are unidirectional).
  void set_route(NodeId src, NodeId dst, std::vector<LinkId> links);

  /// Canonical cluster topology: every node gets an uplink and downlink to
  /// one non-blocking switch; route a→b = [uplink(a), downlink(b)].
  /// Returns per-node (uplink, downlink) pairs for stat inspection.
  std::vector<std::pair<LinkId, LinkId>> build_star(
      const std::vector<NodeId>& nodes, const LinkConfig& config);

  /// Injects a packet; it traverses the route's links in order. If any hop
  /// drops it, `on_drop` (optional) fires and traversal ends. Delivery
  /// invokes the handler registered by the destination NIC.
  void send(Packet packet, std::function<void(const Packet&)> on_drop = {});

  /// The destination-side delivery hook; installed by Nic.
  using DeliveryHandler = std::function<void(const Packet&)>;
  void set_delivery_handler(NodeId node, DeliveryHandler handler);

  [[nodiscard]] Link& link(LinkId id) { return *links_.at(id); }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] std::size_t node_count() const { return node_names_.size(); }
  [[nodiscard]] const std::string& node_name(NodeId id) const {
    return node_names_.at(id);
  }

  /// Total wire bytes delivered to `node` so far (for bandwidth probes).
  [[nodiscard]] std::uint64_t bytes_delivered_to(NodeId node) const;

  /// Fault injection: a down node neither sends nor receives — packets to
  /// or from it vanish (as with a powered-off machine). Delivery handlers
  /// stay registered so the node can come back.
  void set_node_down(NodeId node, bool down);
  [[nodiscard]] bool node_down(NodeId node) const;

  /// Fault injection on links (partitions and loss bursts); see Link.
  void set_link_down(LinkId id, bool down) { link(id).set_down(down); }
  void set_link_loss(LinkId id, double p, std::uint64_t seed) {
    link(id).set_loss(p, seed);
  }

  /// tcpdump-style tracing: when set, invoked for every packet the fabric
  /// accepts (kind, addressing, wire size, injection time) and again on
  /// delivery or drop. Costless when unset.
  enum class TraceEvent : std::uint8_t { kSend, kDeliver, kDrop };
  using TraceHook = std::function<void(TraceEvent, const Packet&, SimTime)>;
  void set_trace_hook(TraceHook hook) { trace_ = std::move(hook); }

 private:
  void forward(Packet packet, const std::vector<LinkId>& route,
               std::size_t hop, std::function<void(const Packet&)> on_drop);

  sim::Engine& engine_;
  std::vector<std::string> node_names_;
  std::vector<std::unique_ptr<Link>> links_;
  std::map<std::pair<NodeId, NodeId>, std::vector<LinkId>> routes_;
  std::vector<DeliveryHandler> delivery_;
  std::vector<std::uint64_t> delivered_bytes_;
  std::vector<bool> node_down_;
  TraceHook trace_;
};

}  // namespace dproc::net
