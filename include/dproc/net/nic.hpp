// Network interface: the per-host attachment to the fabric.
//
// Provides the UDP-like datagram service directly and dispatches TCP
// segments to connections. Tracks the per-interface and per-flow statistics
// NET_MON publishes: bytes in/out, datagram loss (detected by receiver-side
// sequence gaps, as the paper's module counts lost UDP messages), and
// end-to-end delay.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "dproc/net/fabric.hpp"
#include "dproc/net/packet.hpp"
#include "dproc/util/stats.hpp"

namespace dproc::net {

class TcpConnection;

struct NicStats {
  std::uint64_t bytes_sent = 0;       // wire bytes offered to the fabric
  std::uint64_t bytes_received = 0;   // wire bytes delivered
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_received = 0;
  std::uint64_t datagrams_lost = 0;   // receiver-side gap detection
};

/// Per-datagram-flow receive state.
struct DatagramFlowStats {
  std::uint64_t received = 0;
  std::uint64_t lost = 0;
  Ewma delay_us{0.25};  // end-to-end datagram delay, microseconds
};

class Nic {
 public:
  using DatagramHandler =
      std::function<void(NodeId from, Port from_port, const MessagePtr&)>;

  Nic(Fabric& fabric, NodeId node);
  ~Nic();
  Nic(const Nic&) = delete;
  Nic& operator=(const Nic&) = delete;

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] Fabric& fabric() { return fabric_; }

  // --- datagram (UDP-like) service --------------------------------------

  void bind_datagram(Port port, DatagramHandler handler);

  /// Sends a datagram; fragments at the MTU. If any fragment is dropped the
  /// whole datagram is lost (receiver counts it via the sequence gap).
  void send_datagram(NodeId dst, Port dst_port, const MessagePtr& message,
                     Port src_port = 0);

  [[nodiscard]] const NicStats& stats() const { return stats_; }

  /// Receiver-side stats for a sender's datagram flow, keyed by
  /// (source node, source port). Missing key => no traffic seen yet.
  [[nodiscard]] const DatagramFlowStats* datagram_flow(NodeId from,
                                                       Port from_port) const;

  // --- TCP integration (used by TcpConnection/TcpListener) --------------

  /// Registers a connection for segment dispatch by flow id.
  void register_tcp(std::uint64_t flow_id, TcpConnection* conn);
  void unregister_tcp(std::uint64_t flow_id);

  using SynHandler = std::function<void(const Packet&)>;
  void bind_tcp_listener(Port port, SynHandler handler);

  /// Raw packet injection used by the TCP layer; accounts NIC tx bytes.
  void send_packet(Packet packet, std::function<void(const Packet&)> on_drop = {});

  /// Enumerates live TCP connections (for NET_MON).
  [[nodiscard]] std::vector<TcpConnection*> tcp_connections() const;

 private:
  void on_delivery(const Packet& packet);
  void deliver_datagram(const Packet& packet);

  Fabric& fabric_;
  NodeId node_;
  NicStats stats_;

  std::map<Port, DatagramHandler> datagram_handlers_;
  std::map<Port, SynHandler> tcp_listeners_;
  std::map<std::uint64_t, TcpConnection*> tcp_conns_;

  // Fabric routes are FIFO with no multipath, so datagram fragments never
  // reorder: any sequence gap is a definitive loss. One state machine per
  // (source node, source port) flow.
  struct FragmentState {
    std::int64_t current_index = -1;  // datagram being reassembled
    std::uint64_t fragments = 0;      // fragments of it seen so far
    bool finished = false;            // delivered or declared lost
  };
  std::map<std::pair<NodeId, Port>, FragmentState> fragment_state_;
  std::map<std::pair<NodeId, Port>, DatagramFlowStats> flow_stats_;

  std::uint64_t next_datagram_index_ = 0;

  static constexpr std::uint32_t kMtuPayload = 1472;  // 1500 - ip/udp headers
};

}  // namespace dproc::net
