// Binary serialization for on-the-wire payloads.
//
// Monitoring events really are encoded to bytes (the paper reports 50–100
// byte events; we measure our encodings), while bulk stream bodies are
// carried as declared lengths so a 3 MB visualization frame does not
// materialize 3 MB of heap per event. Little-endian, length-prefixed
// strings, no alignment padding.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "dproc/util/status.hpp"

namespace dproc::net {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u16(std::uint16_t v) { raw_le(v); }
  void u32(std::uint32_t v) { raw_le(v); }
  void u64(std::uint64_t v) { raw_le(v); }
  void i64(std::int64_t v) { raw_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    raw_le(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void bytes(std::span<const std::uint8_t> data) {
    raw(data.data(), data.size());
  }

  /// Pre-sizes the buffer; an exactly-sized reserve makes a whole frame
  /// encode with a single allocation.
  void reserve(std::size_t n) { buffer_.reserve(buffer_.size() + n); }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

 private:
  template <typename T>
  void raw_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + n);
  }
  std::vector<std::uint8_t> buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  /// Skips `n` bytes (validated like any other read).
  void skip(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return;
    }
    pos_ += n;
  }

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t u8() { return static_cast<std::uint8_t>(raw_le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(raw_le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(raw_le(4)); }
  std::uint64_t u64() { return raw_le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(raw_le(8)); }
  double f64() {
    const std::uint64_t bits = raw_le(8);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

 private:
  std::uint64_t raw_le(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += n;
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// One polling period's monitoring samples coalesced into a single wire
/// message — the per-period batch frame that replaces d-mon's one event per
/// module per period (O(modules × N²) monitoring traffic on an N-node
/// cluster collapses to O(N²) events with the same sample payload).
///
/// Layout (little-endian, no padding):
///   version u8 | flags u8 | count u32 | count × (id u32, value f64,
///   sampled_ns i64)
///
/// Versioning rules: the batch opcode is distinct from the legacy
/// single-module opcode at the layer above, so old frames keep decoding
/// through the old path forever; within the batch, `version` gates the
/// entry layout. Readers reject versions above the one they implement
/// (never guess at an unknown layout) and version 0 (reserved as
/// malformed). New fields must either bump the version or ride in `flags`
/// bits that old readers can ignore.
struct MonitorBatch {
  static constexpr std::uint8_t kVersion = 1;
  /// Keyframe: carries every post-filter sample regardless of delta
  /// suppression, so a peer that restarted (losing its cache) reconverges.
  static constexpr std::uint8_t kFlagKeyframe = 0x01;
  static constexpr std::size_t kHeaderBytes = 1 + 1 + 4;
  static constexpr std::size_t kEntryBytes = 4 + 8 + 8;

  struct Entry {
    std::uint32_t id = 0;       // cluster-convention metric id
    double value = 0.0;
    std::int64_t sampled_ns = 0;  // publisher's virtual sample time
  };

  std::uint8_t flags = 0;
  std::vector<Entry> entries;

  [[nodiscard]] bool keyframe() const { return (flags & kFlagKeyframe) != 0; }
  [[nodiscard]] std::size_t encoded_bytes() const {
    return kHeaderBytes + entries.size() * kEntryBytes;
  }

  void encode(ByteWriter& w) const {
    w.u8(kVersion);
    w.u8(flags);
    w.u32(static_cast<std::uint32_t>(entries.size()));
    for (const Entry& e : entries) {
      w.u32(e.id);
      w.f64(e.value);
      w.i64(e.sampled_ns);
    }
  }

  /// Decodes one batch; false (and reader !ok where truncated) on any
  /// malformation. The declared count is checked against the bytes actually
  /// present *before* reserving, so a corrupted count can neither trigger a
  /// huge allocation nor yield a partially decoded batch.
  [[nodiscard]] static bool decode(ByteReader& r, MonitorBatch& out) {
    const std::uint8_t version = r.u8();
    out.flags = r.u8();
    const std::uint32_t count = r.u32();
    if (!r.ok() || version == 0 || version > kVersion) return false;
    if (r.remaining() < static_cast<std::size_t>(count) * kEntryBytes) {
      return false;
    }
    out.entries.clear();
    out.entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      Entry e;
      e.id = r.u32();
      e.value = r.f64();
      e.sampled_ns = r.i64();
      out.entries.push_back(e);
    }
    return r.ok();
  }
};

/// One zone's per-metric roll-up, republished up the aggregation tree by a
/// zone aggregator — the compact frame that replaces N raw MonitorBatch
/// feeds above the leaf tier. Which statistics ride in each entry is
/// selected per channel through the flag bits, so a summary channel can
/// carry mean-only entries while a capacity channel keeps min/max/top-k.
///
/// Layout (little-endian, no padding):
///   version u8 | flags u8 | tier u8 | zone u32 | count u32 | count × entry
///   entry: id u32 | count u32 | latest_ns i64
///          | min f64 (kFlagMin) | max f64 (kFlagMax) | sum f64 (kFlagMean)
///          | top_count u8 + top_count × (node u32, value f64) (kFlagTopK)
///
/// Versioning rules match MonitorBatch: readers reject version 0 and
/// versions above their own; new statistics ride in new flag bits (the
/// entry layout is self-describing through `flags`), layout changes bump
/// the version. The `zone` field keys the receiving aggregator's child
/// table, so a re-elected aggregator republishing the same zone overwrites
/// rather than double-counts.
struct AggregateBatch {
  static constexpr std::uint8_t kVersion = 1;
  static constexpr std::uint8_t kFlagMin = 0x01;
  static constexpr std::uint8_t kFlagMax = 0x02;
  static constexpr std::uint8_t kFlagMean = 0x04;  // sum rides; mean = sum/count
  static constexpr std::uint8_t kFlagTopK = 0x08;
  static constexpr std::uint8_t kKnownFlags =
      kFlagMin | kFlagMax | kFlagMean | kFlagTopK;
  /// Hard cap on the per-entry top-k list: bounds both the wire size and
  /// what a corrupted top_count can make a reader allocate.
  static constexpr std::uint8_t kMaxTopK = 16;
  static constexpr std::size_t kHeaderBytes = 1 + 1 + 1 + 4 + 4;
  static constexpr std::size_t kEntryFixedBytes = 4 + 4 + 8;
  static constexpr std::size_t kTopBytes = 4 + 8;

  struct Top {
    std::uint32_t node = 0;  // origin node id of the extreme value
    double value = 0.0;

    friend bool operator==(const Top&, const Top&) = default;
  };

  struct Entry {
    std::uint32_t id = 0;      // cluster-convention metric id
    std::uint32_t count = 0;   // origins folded into this entry (>= 1)
    std::int64_t latest_ns = 0;  // newest contributing sample time
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;          // mean = sum / count
    std::vector<Top> top;      // descending by value, <= kMaxTopK

    friend bool operator==(const Entry&, const Entry&) = default;
  };

  std::uint8_t flags = 0;
  std::uint8_t tier = 0;     // tier of the *publishing* zone (0 = leaf)
  std::uint32_t zone = 0;    // publishing zone id within the layout
  std::vector<Entry> entries;

  [[nodiscard]] bool has(std::uint8_t flag) const {
    return (flags & flag) != 0;
  }
  /// Smallest possible encoded entry under `flags` (top list empty).
  [[nodiscard]] static std::size_t min_entry_bytes(std::uint8_t flags) {
    std::size_t n = kEntryFixedBytes;
    if ((flags & kFlagMin) != 0) n += 8;
    if ((flags & kFlagMax) != 0) n += 8;
    if ((flags & kFlagMean) != 0) n += 8;
    if ((flags & kFlagTopK) != 0) n += 1;
    return n;
  }
  [[nodiscard]] std::size_t encoded_bytes() const {
    std::size_t n = kHeaderBytes + entries.size() * min_entry_bytes(flags);
    if (has(kFlagTopK)) {
      for (const Entry& e : entries) n += e.top.size() * kTopBytes;
    }
    return n;
  }

  void encode(ByteWriter& w) const {
    w.u8(kVersion);
    w.u8(flags);
    w.u8(tier);
    w.u32(zone);
    w.u32(static_cast<std::uint32_t>(entries.size()));
    for (const Entry& e : entries) {
      w.u32(e.id);
      w.u32(e.count);
      w.i64(e.latest_ns);
      if (has(kFlagMin)) w.f64(e.min);
      if (has(kFlagMax)) w.f64(e.max);
      if (has(kFlagMean)) w.f64(e.sum);
      if (has(kFlagTopK)) {
        w.u8(static_cast<std::uint8_t>(e.top.size()));
        for (const Top& t : e.top) {
          w.u32(t.node);
          w.f64(t.value);
        }
      }
    }
  }

  /// Decodes one aggregate batch; false (and reader !ok where truncated) on
  /// any malformation: bad version, unknown flag bits, an entry count that
  /// cannot fit the remaining bytes (checked *before* reserving, so a
  /// corrupted count cannot trigger a huge allocation), a zero-origin
  /// entry, or a top list past kMaxTopK.
  [[nodiscard]] static bool decode(ByteReader& r, AggregateBatch& out) {
    const std::uint8_t version = r.u8();
    out.flags = r.u8();
    out.tier = r.u8();
    out.zone = r.u32();
    const std::uint32_t count = r.u32();
    if (!r.ok() || version == 0 || version > kVersion) return false;
    if ((out.flags & ~kKnownFlags) != 0) return false;
    const std::size_t floor = min_entry_bytes(out.flags);
    if (r.remaining() < static_cast<std::size_t>(count) * floor) return false;
    out.entries.clear();
    out.entries.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      Entry e;
      e.id = r.u32();
      e.count = r.u32();
      e.latest_ns = r.i64();
      if (out.has(kFlagMin)) e.min = r.f64();
      if (out.has(kFlagMax)) e.max = r.f64();
      if (out.has(kFlagMean)) e.sum = r.f64();
      if (out.has(kFlagTopK)) {
        const std::uint8_t top_count = r.u8();
        if (top_count > kMaxTopK ||
            r.remaining() < static_cast<std::size_t>(top_count) * kTopBytes) {
          return false;
        }
        e.top.clear();
        e.top.reserve(top_count);
        for (std::uint8_t t = 0; t < top_count; ++t) {
          Top top;
          top.node = r.u32();
          top.value = r.f64();
          e.top.push_back(top);
        }
      }
      if (!r.ok() || e.count == 0) return false;
      out.entries.push_back(std::move(e));
    }
    return r.ok();
  }
};

/// One channel record streamed from the registry leader to its follower
/// replicas (kOpRegistrySync) — the unit of replication. Each mutation the
/// leader serializes (join, leave, evict) bumps the table version and fans
/// one RegistrySync per affected channel to every follower; a recovery
/// snapshot replays the whole table as a sequence of these frames. Record
/// overwrite is keyed by (name, version), so duplicated or reordered syncs
/// are idempotent: a follower applies a record only when its version is
/// newer than the one it holds.
///
/// Layout (little-endian, no padding):
///   version u8 | table_version u64 | next_id u32 | channel_id u32
///   | name str (u32 length prefix) | count u32 | count × (node u32,
///   port u16)
///
/// Versioning rules match MonitorBatch: readers reject version 0 and
/// versions above their own; layout changes bump the version byte.
struct RegistrySync {
  static constexpr std::uint8_t kVersion = 1;
  static constexpr std::size_t kMemberBytes = 4 + 2;
  /// Fixed bytes before the variable-length name: version, table_version,
  /// next_id, channel_id, name length prefix.
  static constexpr std::size_t kFixedBytes = 1 + 8 + 4 + 4 + 4;

  struct Member {
    std::uint32_t node = 0;
    std::uint16_t port = 0;

    friend bool operator==(const Member&, const Member&) = default;
  };

  std::uint64_t table_version = 0;  // leader's version after the mutation
  std::uint32_t next_id = 0;        // leader's next channel id (failover gap)
  std::uint32_t channel_id = 0;
  std::string name;
  std::vector<Member> members;

  [[nodiscard]] std::size_t encoded_bytes() const {
    return kFixedBytes + name.size() + 4 + members.size() * kMemberBytes;
  }

  void encode(ByteWriter& w) const {
    w.u8(kVersion);
    w.u64(table_version);
    w.u32(next_id);
    w.u32(channel_id);
    w.str(name);
    w.u32(static_cast<std::uint32_t>(members.size()));
    for (const Member& m : members) {
      w.u32(m.node);
      w.u16(m.port);
    }
  }

  /// Decodes one sync record; false (and reader !ok where truncated) on any
  /// malformation. The member count is checked against the bytes actually
  /// present *before* reserving, so a corrupted count can neither trigger a
  /// huge allocation nor yield a partially decoded record. A zero table
  /// version is rejected (versions start at 1; 0 is the follower's "never
  /// synced" sentinel).
  [[nodiscard]] static bool decode(ByteReader& r, RegistrySync& out) {
    const std::uint8_t version = r.u8();
    out.table_version = r.u64();
    out.next_id = r.u32();
    out.channel_id = r.u32();
    out.name = r.str();
    const std::uint32_t count = r.u32();
    if (!r.ok() || version == 0 || version > kVersion) return false;
    if (out.table_version == 0) return false;
    if (r.remaining() < static_cast<std::size_t>(count) * kMemberBytes) {
      return false;
    }
    out.members.clear();
    out.members.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      Member m;
      m.node = r.u32();
      m.port = r.u16();
      out.members.push_back(m);
    }
    return r.ok();
  }
};

/// Lease invalidation fanned out by the registry leader when a channel
/// mutates (kOpCacheInvalidate): every member of the affected channel — and
/// the member just removed, who is exactly the node most likely to hold a
/// stale entry — drops its cached record for `name` so the next lookup
/// refetches. Carries the post-mutation table version for observability.
///
/// Layout: version u8 | table_version u64 | name str.
struct CacheInvalidate {
  static constexpr std::uint8_t kVersion = 1;

  std::uint64_t table_version = 0;
  std::string name;

  void encode(ByteWriter& w) const {
    w.u8(kVersion);
    w.u64(table_version);
    w.str(name);
  }

  /// Decodes one invalidation; false on truncation, a bad version byte, a
  /// zero table version, or trailing garbage masquerading as a name (the
  /// string length prefix is validated against the remaining bytes by the
  /// reader itself).
  [[nodiscard]] static bool decode(ByteReader& r, CacheInvalidate& out) {
    const std::uint8_t version = r.u8();
    out.table_version = r.u64();
    out.name = r.str();
    if (!r.ok() || version == 0 || version > kVersion) return false;
    return out.table_version != 0;
  }
};

/// Causal-tracing context carried on the wire behind a KECho event payload.
///
/// When tracing is enabled the publisher appends one TraceContext to each
/// event frame; every hop (submit, wire arrival, poll delivery, procfs
/// render, filter decision) stamps a virtual-clock timestamp into its node's
/// hop log and advances `prev_hop_ns`, so per-stage durations are computed
/// at stamp time without a cross-node log join. With tracing disabled no
/// context is appended and frames are byte-identical to the untraced stack.
struct TraceContext {
  /// Leading marker byte, so a truncated payload cannot masquerade as a
  /// trace context by length alone.
  static constexpr std::uint8_t kMagic = 0x7C;
  /// Encoded size: magic + trace_id + origin + hop + publish_ns + prev_ns.
  static constexpr std::size_t kWireBytes = 1 + 8 + 4 + 1 + 8 + 8;

  std::uint64_t trace_id = 0;    // cluster-unique: origin node << 32 | seq
  std::uint32_t origin = 0;      // publishing node id
  std::uint8_t hop = 0;         // last stage stamped (telemetry::HopStage)
  std::int64_t publish_ns = 0;  // virtual-clock time of the publish hop
  std::int64_t prev_hop_ns = 0; // virtual-clock time of the latest hop

  [[nodiscard]] bool valid() const { return trace_id != 0; }

  void encode(ByteWriter& w) const {
    w.u8(kMagic);
    w.u64(trace_id);
    w.u32(origin);
    w.u8(hop);
    w.i64(publish_ns);
    w.i64(prev_hop_ns);
  }

  /// Decodes one context; false (and reader !ok) on truncation or a bad
  /// marker byte. Never reads past the buffer.
  [[nodiscard]] static bool decode(ByteReader& r, TraceContext& out) {
    if (r.u8() != kMagic) return false;
    out.trace_id = r.u64();
    out.origin = r.u32();
    out.hop = r.u8();
    out.publish_ns = r.i64();
    out.prev_hop_ns = r.i64();
    return r.ok();
  }
};

}  // namespace dproc::net
