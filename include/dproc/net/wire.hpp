// Binary serialization for on-the-wire payloads.
//
// Monitoring events really are encoded to bytes (the paper reports 50–100
// byte events; we measure our encodings), while bulk stream bodies are
// carried as declared lengths so a 3 MB visualization frame does not
// materialize 3 MB of heap per event. Little-endian, length-prefixed
// strings, no alignment padding.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "dproc/util/status.hpp"

namespace dproc::net {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { raw(&v, 1); }
  void u16(std::uint16_t v) { raw_le(v); }
  void u32(std::uint32_t v) { raw_le(v); }
  void u64(std::uint64_t v) { raw_le(v); }
  void i64(std::int64_t v) { raw_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    raw_le(bits);
  }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  void bytes(std::span<const std::uint8_t> data) {
    raw(data.data(), data.size());
  }

  /// Pre-sizes the buffer; an exactly-sized reserve makes a whole frame
  /// encode with a single allocation.
  void reserve(std::size_t n) { buffer_.reserve(buffer_.size() + n); }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buffer_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buffer_); }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

 private:
  template <typename T>
  void raw_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buffer_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void raw(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + n);
  }
  std::vector<std::uint8_t> buffer_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t u8() { return static_cast<std::uint8_t>(raw_le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(raw_le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(raw_le(4)); }
  std::uint64_t u64() { return raw_le(8); }
  std::int64_t i64() { return static_cast<std::int64_t>(raw_le(8)); }
  double f64() {
    const std::uint64_t bits = raw_le(8);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

 private:
  std::uint64_t raw_le(std::size_t n) {
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += n;
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace dproc::net
