// Deterministic fault injection: scripted node churn, link faults, and
// registry outages.
//
// A FaultPlan is pure data — a time-ordered script of fault events built
// with fluent helpers (crash_node, partition_link, loss_burst, ...). The
// FaultInjector schedules the plan on the simulation engine and applies
// each event through caller-provided hooks, so this layer stays free of
// network/cluster dependencies: the cluster builder binds the hooks to its
// fabric, registry, and per-node lifecycle handlers.
//
// Everything is deterministic: events fire at scripted virtual times, and
// probabilistic faults (packet-loss bursts) carry their own RNG seed, so
// the same plan over the same workload reproduces the identical trace. An
// empty plan schedules nothing — fault support costs zero events and zero
// allocations when unused, a property the golden-trace test pins.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "dproc/sim/engine.hpp"
#include "dproc/util/time.hpp"

namespace dproc::sim {

enum class FaultKind : std::uint8_t {
  kNodeCrash,      // target = node: power-off; packets to/from it vanish
  kNodeRestart,    // target = node: power-on; kernel state starts clean
  kLinkDown,       // target = link: partition, every packet dropped
  kLinkUp,         // target = link: partition heals
  kLinkLossStart,  // target = link, param = drop probability, seed = rng
  kLinkLossStop,   // target = link: loss burst ends
  kRegistryDown,   // channel registry stops answering
  kRegistryUp,     // registry resumes
  kRegistryLeaderKill,  // crash whichever node hosts the leader replica
};

[[nodiscard]] const char* to_string(FaultKind kind);

struct FaultEvent {
  SimTime at;
  FaultKind kind{};
  std::uint32_t target = 0;  // node or link id; unused for registry events
  double param = 0.0;        // loss probability for kLinkLossStart
  std::uint64_t seed = 0;    // RNG seed for kLinkLossStart
};

/// A scripted fault schedule. Helpers append events; the injector replays
/// them in (time, insertion) order.
class FaultPlan {
 public:
  FaultPlan& crash_node(SimTime at, std::uint32_t node);
  FaultPlan& restart_node(SimTime at, std::uint32_t node);
  /// Crash at `at`, restart at `until`.
  FaultPlan& node_outage(SimTime at, SimTime until, std::uint32_t node);

  FaultPlan& partition_link(SimTime at, std::uint32_t link);
  FaultPlan& heal_link(SimTime at, std::uint32_t link);
  /// Repeatedly partitions and heals `link`: down at `from`, toggling every
  /// `half_period`, guaranteed healed at `until`.
  FaultPlan& flap_link(SimTime from, SimTime until, SimDuration half_period,
                       std::uint32_t link);
  /// Random drop with probability `p` on `link` during [from, until).
  FaultPlan& loss_burst(SimTime from, SimTime until, std::uint32_t link,
                        double p, std::uint64_t seed);

  FaultPlan& registry_outage(SimTime from, SimTime until);

  /// Crashes whichever node hosts the *current* registry leader replica —
  /// resolved at fire time, not plan-build time, so the plan composes with
  /// earlier failovers. Requires a replicated registry (the hook is a no-op
  /// otherwise).
  FaultPlan& kill_registry_leader(SimTime at);

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }

 private:
  std::vector<FaultEvent> events_;
};

/// How the injector acts on the world. Unset hooks make the corresponding
/// fault kinds no-ops (they are still logged as applied).
struct FaultHooks {
  std::function<void(std::uint32_t node, bool down)> node_down;
  std::function<void(std::uint32_t link, bool down)> link_down;
  std::function<void(std::uint32_t link, double p, std::uint64_t seed)>
      link_loss;
  std::function<void(bool down)> registry_down;
  /// Resolves the current leader replica and crashes its host node.
  std::function<void()> registry_leader_kill;
  /// Ground-truth recording: invoked after every fault is applied (before
  /// the observer), so flight recorders can log what was *actually* injected
  /// alongside the symptoms the services observe.
  std::function<void(const FaultEvent&)> record;
};

class FaultInjector {
 public:
  FaultInjector(Engine& engine, FaultHooks hooks)
      : engine_(engine), hooks_(std::move(hooks)) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedules every event of `plan` on the engine. An empty plan schedules
  /// nothing at all. May be called more than once (plans compose).
  void schedule(const FaultPlan& plan);

  /// Observer called after each fault is applied (chaos-test tracing).
  using Observer = std::function<void(const FaultEvent&)>;
  void set_observer(Observer observer) { observer_ = std::move(observer); }

  [[nodiscard]] std::size_t scheduled() const { return scheduled_; }
  /// Events applied so far, in application order (the deterministic log).
  [[nodiscard]] const std::vector<FaultEvent>& applied() const {
    return applied_;
  }

 private:
  void apply(const FaultEvent& event);

  Engine& engine_;
  FaultHooks hooks_;
  Observer observer_;
  std::size_t scheduled_ = 0;
  std::vector<FaultEvent> applied_;
};

}  // namespace dproc::sim
