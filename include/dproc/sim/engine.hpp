// Discrete-event simulation engine.
//
// The entire cluster — kernels, network fabric, workloads — runs as callbacks
// on one virtual clock. Events fire in non-decreasing time order; ties are
// broken by scheduling order (FIFO), which makes runs fully deterministic:
// the same seed and the same program produce the same trace, a property the
// test suite asserts.
//
// The scheduling hot path is allocation-lean: the queue is a vector-backed
// binary heap whose storage is reused across the run (pop moves the node
// out instead of copying its std::function), and the shared cancellation
// flag behind EventHandle is only allocated when a caller actually keeps a
// handle — fire-and-forget scheduling, the overwhelmingly common case,
// allocates no flag at all (see PendingEvent).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "dproc/util/time.hpp"

namespace dproc::sim {

/// Cancellation handle for a scheduled event. Copyable; cancelling any copy
/// cancels the event. A default-constructed handle is inert.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing. Idempotent; safe after the event fired.
  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }
  [[nodiscard]] bool valid() const { return cancelled_ != nullptr; }

 private:
  friend class Engine;
  friend class PendingEvent;
  explicit EventHandle(std::shared_ptr<bool> flag) : cancelled_(std::move(flag)) {}
  std::shared_ptr<bool> cancelled_;
};

class Engine;

/// Move-only token for a just-scheduled event, returned by schedule_at and
/// schedule_after. Discarding it costs nothing; converting it to an
/// EventHandle (the usual `handle_member_ = engine.schedule_after(...)`
/// pattern) materializes the shared cancellation flag on the queued event
/// at that moment. Convert or drop it before the engine outlives you; the
/// token refers into the engine's live queue.
class PendingEvent {
 public:
  PendingEvent() = default;
  PendingEvent(PendingEvent&& other) noexcept
      : engine_(std::exchange(other.engine_, nullptr)),
        seq_(other.seq_),
        hint_(other.hint_) {}
  PendingEvent& operator=(PendingEvent&& other) noexcept {
    engine_ = std::exchange(other.engine_, nullptr);
    seq_ = other.seq_;
    hint_ = other.hint_;
    return *this;
  }
  PendingEvent(const PendingEvent&) = delete;
  PendingEvent& operator=(const PendingEvent&) = delete;

  /// Materializes a cancellation handle for the event (allocating the
  /// shared flag on first request; a no-op handle if it already fired).
  [[nodiscard]] EventHandle handle();
  operator EventHandle() { return handle(); }

  /// Cancels the event directly.
  void cancel() { handle().cancel(); }

 private:
  friend class Engine;
  PendingEvent(Engine* engine, std::uint64_t seq, std::size_t hint)
      : engine_(engine), seq_(seq), hint_(hint) {}

  Engine* engine_ = nullptr;
  std::uint64_t seq_ = 0;
  std::size_t hint_ = 0;  // heap position right after the push
};

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `when`; `when` must be >= now().
  PendingEvent schedule_at(SimTime when, Callback fn);

  /// Schedules `fn` after `delay` (clamped to >= 0) from now.
  PendingEvent schedule_after(SimDuration delay, Callback fn);

  /// Schedules `fn` every `period`, first firing after one period. The
  /// callback keeps rescheduling itself until the handle is cancelled, so
  /// periodic timers always materialize their flag — the chain needs it.
  EventHandle schedule_periodic(SimDuration period, Callback fn);

  /// Runs events until the queue is empty or `deadline` is reached; the
  /// clock is advanced to `deadline` on return (even if idle earlier).
  void run_until(SimTime deadline);

  void run_for(SimDuration d) { run_until(now_ + d); }

  /// Runs until the event queue drains completely.
  void run();

  /// Processes a single event if one is pending; returns false when empty.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Number of cancellation flags allocated so far — one per event whose
  /// handle was actually retained (plus one per periodic timer). The perf
  /// regression test pins fire-and-forget scheduling to zero.
  [[nodiscard]] std::uint64_t cancel_flags_allocated() const {
    return flag_allocs_;
  }

 private:
  friend class PendingEvent;

  struct Scheduled {
    SimTime when;
    std::uint64_t seq;
    // Null until an EventHandle is materialized for this event; the queue
    // entry stays but is skipped at fire time if set.
    std::shared_ptr<bool> cancelled;
    Callback fn;
  };

  // (when, seq) min-heap over heap_, maintained manually so pushes and
  // pops move nodes instead of copying their std::function.
  [[nodiscard]] bool before(const Scheduled& a, const Scheduled& b) const {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }
  std::size_t heap_push(Scheduled&& ev);
  Scheduled heap_pop();

  /// Finds the queued event `seq` (trying `hint` first) and returns a
  /// handle sharing its flag — or a handle to a fresh dead-end flag if the
  /// event already fired (cancelling is then a harmless no-op).
  EventHandle materialize(std::uint64_t seq, std::size_t hint);

  void fire(Scheduled&& ev);

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::uint64_t flag_allocs_ = 0;
  std::vector<Scheduled> heap_;
};

inline EventHandle PendingEvent::handle() {
  if (engine_ == nullptr) return EventHandle{};
  return engine_->materialize(seq_, hint_);
}

}  // namespace dproc::sim
