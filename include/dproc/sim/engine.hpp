// Discrete-event simulation engine.
//
// The entire cluster — kernels, network fabric, workloads — runs as callbacks
// on one virtual clock. Events fire in non-decreasing time order; ties are
// broken by scheduling order (FIFO), which makes runs fully deterministic:
// the same seed and the same program produce the same trace, a property the
// test suite asserts.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "dproc/util/time.hpp"

namespace dproc::sim {

/// Cancellation handle for a scheduled event. Copyable; cancelling any copy
/// cancels the event. A default-constructed handle is inert.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevents the event from firing. Idempotent; safe after the event fired.
  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }
  [[nodiscard]] bool valid() const { return cancelled_ != nullptr; }

 private:
  friend class Engine;
  explicit EventHandle(std::shared_ptr<bool> flag) : cancelled_(std::move(flag)) {}
  std::shared_ptr<bool> cancelled_;
};

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `when`; `when` must be >= now().
  EventHandle schedule_at(SimTime when, Callback fn);

  /// Schedules `fn` after `delay` (clamped to >= 0) from now.
  EventHandle schedule_after(SimDuration delay, Callback fn);

  /// Schedules `fn` every `period`, first firing after one period. The
  /// callback keeps rescheduling itself until the handle is cancelled.
  EventHandle schedule_periodic(SimDuration period, Callback fn);

  /// Runs events until the queue is empty or `deadline` is reached; the
  /// clock is advanced to `deadline` on return (even if idle earlier).
  void run_until(SimTime deadline);

  void run_for(SimDuration d) { run_until(now_ + d); }

  /// Runs until the event queue drains completely.
  void run();

  /// Processes a single event if one is pending; returns false when empty.
  bool step();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

 private:
  struct Scheduled {
    SimTime when;
    std::uint64_t seq;
    // Shared with EventHandle; the queue entry stays but is skipped if set.
    std::shared_ptr<bool> cancelled;
    Callback fn;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void fire(Scheduled&& ev);

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Scheduled, std::vector<Scheduled>, Later> queue_;
};

}  // namespace dproc::sim
