// KECho per-host endpoint: kernel-level event channels.
//
// One Node per simulated host multiplexes all of that host's channels over
// a single reliable kernel-to-kernel connection per peer (the paper's
// "strictly kernel-kernel messaging"). Received events are queued and
// delivered on poll(), matching d-mon's once-per-second socket polling, so
// the receive overhead of Figure 8 is observable as the poll's CPU cost.
//
// Every channel operation charges the host CPU's kernel class through the
// KechoCosts model; those cycles are exactly the perturbation Figures 4-8
// measure.
//
// Failure awareness (LivenessConfig, disabled by default so the baseline
// traces and benchmarks are untouched): registry joins are retried with
// capped exponential backoff until acknowledged; every peer is tracked by
// when it was last heard from, with data frames doubling as heartbeats and
// an explicit channel-0 heartbeat filling idle gaps; a peer silent past the
// miss threshold is evicted (reported to the registry with kMemberEvict,
// retried until acked) and dropped locally; a crashed node can restart()
// and idempotently re-join everything it was a member of.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "dproc/host/host.hpp"
#include "dproc/kecho/registry.hpp"
#include "dproc/net/tcp.hpp"
#include "dproc/net/wire.hpp"

namespace dproc::kecho {

/// Cycle costs of kernel-level channel operations on the reference CPU
/// (Pentium Pro 200 MHz). Calibrated so the microbenchmarks land in the
/// paper's reported ranges; see EXPERIMENTS.md.
struct KechoCosts {
  double submit_base_cycles = 9000;     // per event, per remote subscriber
  double submit_per_byte_cycles = 3.0;  // marshalling + copy
  double receive_base_cycles = 10000;   // per event drained at poll()
  double receive_per_byte_cycles = 2.2;
  double poll_base_cycles = 1500;       // fixed cost of one poll iteration
};

/// Channel transport selection: reliable kernel-to-kernel TCP (the
/// paper's default) or lossy datagrams — monitoring data is periodically
/// refreshed anyway, so dropping an update under congestion can beat
/// retransmitting stale values.
enum class ChannelTransport : std::uint8_t { kReliable, kDatagram };

/// Liveness and retry behaviour of one node's KECho endpoint. Disabled by
/// default: with `enabled == false` no timers are scheduled, no heartbeats
/// are sent and joins are single fire-and-forget datagrams, so the default
/// configuration is event-for-event identical to the failure-unaware stack
/// (the golden-trace test pins this).
struct LivenessConfig {
  bool enabled = false;
  /// Heartbeat period; a data frame to a peer within the period suppresses
  /// the explicit heartbeat (piggybacking on the monitoring traffic).
  SimDuration heartbeat_period = seconds(1.0);
  /// A peer silent for more than miss_threshold heartbeat periods is
  /// declared dead and evicted.
  int miss_threshold = 3;
  /// Capped exponential backoff for registry retries (join, leave, evict):
  /// delay(n) = min(retry_base * 2^n, retry_cap).
  SimDuration retry_base = milliseconds(100.0);
  SimDuration retry_cap = seconds(2.0);
  /// Join retries only, without the rest of the liveness machinery (no
  /// heartbeats, no eviction timers) — lets a benchmark boot every node at
  /// t=0 and ride the backoff through the join storm without paying for
  /// heartbeat traffic. Implied by `enabled`.
  bool join_retries = false;
  /// Deterministic per-node jitter on the retry backoff: the delay is
  /// stretched by up to this fraction, keyed by a hash of (node id,
  /// attempt). 0 keeps the legacy synchronized backoff; 1.0 spreads a
  /// simultaneous join storm across a full extra backoff step so the
  /// retries do not re-collide every round.
  double retry_jitter = 0.0;
};

/// Client-side view of the (possibly replicated) channel registry.
struct RegistryClientConfig {
  /// Fabric node of every registry replica, indexed by replica id. Empty
  /// means the single registry node passed to the Node constructor; when
  /// set, join/removal retries rotate across the replicas (attempt n goes
  /// to replica n mod R) and lookups spread across followers.
  std::vector<net::NodeId> replicas;
  /// Lease-stamped local channel cache: join responses, membership
  /// notifications and lookup responses populate it; kCacheInvalidate and
  /// lease expiry (checked lazily, no timers) bound its staleness.
  bool cache = false;
  SimDuration cache_lease = seconds(5.0);
};

/// Client cache counters (observability for tests and telemetry).
struct ClientCacheStats {
  std::uint64_t hits = 0;    // lookups served from a fresh cached record
  std::uint64_t misses = 0;  // absent or expired — went to the registry
  std::uint64_t invalidations = 0;  // kCacheInvalidate frames processed
  std::uint64_t expiries = 0;       // entries discarded past their lease
  /// Worst record age ever served from the cache; by construction at most
  /// the lease (the staleness bound the chaos test asserts).
  std::int64_t max_served_staleness_ns = 0;
};

/// Membership change observed by this node (for d-mon degradation logic).
enum class MemberEventKind : std::uint8_t { kJoined, kLeft, kEvicted };

/// A delivered channel event. The payload is a zero-copy view into the
/// wire frame: `frame` is shared with the sender and every other receiver
/// of the same submission, and `payload_offset` marks where the
/// application's encoded header starts inside it. Nothing is copied out on
/// receive — decode is a bounds check plus an offset.
struct Event {
  ChannelId channel = 0;
  net::NodeId source = 0;
  SimTime submitted_at;
  net::MessagePtr frame;
  std::size_t payload_offset = 0;
  std::size_t payload_bytes = 0;
  /// Causal-tracing context decoded from the frame's optional trailer;
  /// trace_id 0 when the sender was not tracing.
  net::TraceContext trace;

  /// The application payload's encoded header bytes.
  [[nodiscard]] std::span<const std::uint8_t> payload_header() const {
    return std::span<const std::uint8_t>{frame->header}.subspan(payload_offset,
                                                                payload_bytes);
  }
  /// Simulated bulk bytes riding behind the header.
  [[nodiscard]] std::uint64_t payload_body_bytes() const {
    return frame->body_bytes;
  }
  /// Total payload size (header view + bulk), as the receiver is charged.
  [[nodiscard]] std::uint64_t payload_size() const {
    return payload_header().size() + frame->body_bytes;
  }
};

/// Decodes one wire frame into `event` (channel, source, submit time,
/// payload view and the optional trace-context trailer). Returns false on
/// any malformation: a short header, a payload length overrunning the
/// frame, or trailing bytes that are neither empty nor one well-formed
/// TraceContext. Exposed so tests can fuzz the frame decoder directly.
[[nodiscard]] bool decode_event_frame(const net::MessagePtr& frame,
                                      Event& event);

class Node;

/// Handle to one joined channel on one host.
class Channel {
 public:
  using Handler = std::function<void(const Event&)>;

  /// Registers the receive handler; events are delivered at poll() time.
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Publishes to every remote member known at submission time. Returns the
  /// kernel CPU cost charged for the submission.
  SimDuration submit(const net::MessagePtr& payload);

  /// Traced publish: stamps the submit hop into this node's hop log and
  /// appends the context to the wire frame so downstream hops can continue
  /// the chain. Falls back to the untraced path (byte-identical frames)
  /// when tracing is disabled on this host or `trace` is invalid.
  SimDuration submit(const net::MessagePtr& payload, net::TraceContext trace);

  /// Per-member payload selection, for interest-scoped fan-out: `select`
  /// returns the payload one member should receive — or nullptr to skip
  /// that member entirely (it is neither sent to nor charged for). Members
  /// whose selector returns the *same* MessagePtr share one encoded wire
  /// frame, so callers should cache payloads per interest group. Counts as
  /// one submitted event however many members were reached; the kernel
  /// cost charged is per member actually sent to, sized by its own frame.
  using PayloadSelector = std::function<net::MessagePtr(net::NodeId)>;
  SimDuration submit_to_each(const PayloadSelector& select);
  /// Traced variant; same fallback rules as the traced submit().
  SimDuration submit_to_each(const PayloadSelector& select,
                             net::TraceContext trace);

  /// Publishes to one specific member only — the hierarchical overlay's
  /// leaf-to-aggregator path. Other members are neither sent to nor
  /// charged; a `member` not currently on the channel makes the call a
  /// zero-cost no-op (the frame would reach nobody). Counts as one
  /// submitted event, like a submit_to_each that skipped everyone else.
  SimDuration submit_to(net::NodeId member, const net::MessagePtr& payload);
  /// Traced variant; same fallback rules as the traced submit().
  SimDuration submit_to(net::NodeId member, const net::MessagePtr& payload,
                        net::TraceContext trace);

  [[nodiscard]] ChannelId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool ready() const { return ready_; }
  [[nodiscard]] const std::vector<Member>& members() const { return members_; }
  [[nodiscard]] std::size_t remote_member_count() const;
  [[nodiscard]] std::uint64_t events_submitted() const { return submitted_; }
  [[nodiscard]] std::uint64_t events_received() const { return received_; }
  [[nodiscard]] std::size_t pending_events() const { return rx_queue_.size(); }

 private:
  friend class Node;
  Channel(Node& node, std::string name) : node_(node), name_(std::move(name)) {}

  /// Shared fan-out path; `trace` non-null appends the wire trailer.
  SimDuration submit_impl(const net::MessagePtr& payload,
                          const net::TraceContext* trace);
  SimDuration submit_each_impl(const PayloadSelector& select,
                               const net::TraceContext* trace);
  SimDuration submit_to_impl(net::NodeId member, const net::MessagePtr& payload,
                             const net::TraceContext* trace);

  Node& node_;
  std::string name_;
  ChannelId id_ = 0;
  ChannelTransport transport_ = ChannelTransport::kReliable;
  bool ready_ = false;
  std::vector<Member> members_;  // remote members
  Handler handler_;
  std::deque<Event> rx_queue_;
  std::uint64_t submitted_ = 0;
  std::uint64_t received_ = 0;
  /// Reused one-element member list for submit_to's heartbeat suppression.
  std::vector<Member> single_member_scratch_;
  std::vector<std::function<void(Channel&)>> on_ready_;
  int join_attempts_ = 0;        // backoff exponent for the next retry
  sim::EventHandle join_retry_;  // pending retry; cancelled on response
};

struct PollStats {
  std::size_t events_delivered = 0;
  SimDuration cpu_cost{0};
};

class Node {
 public:
  static constexpr net::Port kChannelPort = 7788;
  static constexpr net::Port kDatagramEventPort = 7789;
  /// Channel id of liveness-only frames. The registry hands out ids
  /// starting at 1, so id 0 is never a real channel; heartbeat frames are
  /// discarded after refreshing the sender's last-heard time.
  static constexpr ChannelId kHeartbeatChannel = 0;

  Node(host::Host& host, net::Nic& nic, net::NodeId registry_node,
       net::Port registry_port = RegistryServer::kDefaultPort,
       KechoCosts costs = {}, LivenessConfig liveness = {},
       RegistryClientConfig registry_client = {});
  ~Node();
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Joins (or creates) a channel by name. The returned handle is usable
  /// immediately; submissions before the registry answers reach no one,
  /// exactly like publishing on a channel nobody subscribed to yet. The
  /// transport applies to this node's submissions on the channel.
  Channel& join(const std::string& name,
                std::function<void(Channel&)> on_ready = {},
                ChannelTransport transport = ChannelTransport::kReliable);

  /// Drains every channel's receive queue, charging receive costs and
  /// invoking handlers. d-mon calls this once per polling period.
  PollStats poll();

  /// Cache-first membership lookup by channel name. A fresh cached record
  /// answers synchronously (a hit); otherwise a kLookupRequest goes to a
  /// registry replica (followers serve reads) and the callback fires when
  /// the response arrives — `found == false` reports a channel the
  /// registry does not know. Concurrent lookups of the same name share one
  /// in-flight request; with retries enabled a lost request is re-sent
  /// with the same capped backoff as joins, rotating replicas.
  using LookupCallback = std::function<void(const JoinResponse&)>;
  void lookup_members(const std::string& name, LookupCallback callback);

  [[nodiscard]] const ClientCacheStats& cache_stats() const {
    return cache_stats_;
  }

  /// Observes membership changes this node learns about (its own joins
  /// excluded): a new peer, a graceful leave, an eviction. Fired once per
  /// node-level change, after the local membership state was updated.
  using MembershipListener =
      std::function<void(MemberEventKind, net::NodeId)>;
  void add_membership_listener(MembershipListener listener) {
    membership_listeners_.push_back(std::move(listener));
  }

  /// Graceful node-level departure: tells the registry (retried until
  /// acked when liveness is on) and stops heartbeating. Channel handles
  /// stay valid but no longer receive membership updates.
  void announce_leave();

  /// Fail-stop crash: drops all channel state, peer transports, queued
  /// events and timers, as a kernel reboot would. Channel handles remain
  /// valid (they are owned by this node) but are not ready.
  void crash();

  /// Restart after crash(): idempotently re-joins every channel this node
  /// had joined and resumes heartbeating. Peers and the registry treat the
  /// re-join as a duplicate, so membership reconverges without duplicates.
  void restart();

  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] const LivenessConfig& liveness() const { return liveness_; }
  [[nodiscard]] std::uint64_t heartbeats_sent() const {
    return heartbeats_sent_;
  }
  /// Evictions this node initiated (dead peers it reported).
  [[nodiscard]] std::uint64_t evictions_initiated() const {
    return evictions_initiated_;
  }

  [[nodiscard]] host::Host& host() { return host_; }
  [[nodiscard]] net::Nic& nic() { return nic_; }
  [[nodiscard]] const KechoCosts& costs() const { return costs_; }

  /// Joined channels as (id, name), in poll (name) order; a channel's id is
  /// 0 until the registry answers. Trace reports use this to resolve the
  /// channel ids recorded in hop logs back to names.
  [[nodiscard]] std::vector<std::pair<ChannelId, std::string>> channels()
      const;

 private:
  friend class Channel;

  void on_registry_datagram(const net::MessagePtr& message);
  void on_peer_message(const net::MessagePtr& message);
  /// Lazily opens (or reuses) the transport to a peer kernel.
  net::TcpConnection::Ptr& transport_to(net::NodeId peer);

  /// Sends the join request for `channel` and, when retries are on, arms a
  /// backoff retry that refires until the join response arrives. Retries
  /// rotate across the registry replicas so a dead leader cannot absorb
  /// the whole storm.
  void send_join(Channel& channel);
  /// Sends a leave/evict to the registry; with liveness on, retried with
  /// capped backoff until the matching kOpAck arrives.
  void send_registry_removal(RegistryOp op, Member member, int attempt);
  [[nodiscard]] SimDuration backoff_delay(int attempt) const;
  /// True when join/lookup retries are armed (full liveness or the
  /// join-retries-only mode).
  [[nodiscard]] bool retries_enabled() const {
    return liveness_.enabled || liveness_.join_retries;
  }
  /// The registry endpoint attempt `attempt` addresses.
  [[nodiscard]] net::NodeId registry_target(int attempt) const;
  /// Applies an authoritative membership record to `channel`: cancels the
  /// join retry, rebuilds the member list, marks the channel ready and
  /// fires the on-ready callbacks. Shared by the join-response path and
  /// the cache-adoption path.
  void apply_membership(Channel& channel, ChannelId id,
                        const std::vector<Member>& members);
  /// Re-join fast path: adopts a fresh cached record into `channel` (the
  /// registry is still asked, its response re-applies authoritatively).
  /// Returns true on a cache hit.
  bool try_cache_adopt(Channel& channel);
  /// Fresh (unexpired) cached record for `name`, or nullptr; expired
  /// entries are discarded and counted on the way.
  struct CachedRecord {
    ChannelId id = 0;
    bool found = true;
    std::vector<Member> members;
    SimTime stamped;
  };
  [[nodiscard]] const CachedRecord* fresh_cache_entry(const std::string& name);
  void cache_store(const std::string& name, ChannelId id, bool found,
                   const std::vector<Member>& members);
  void send_lookup(const std::string& name);

  void start_heartbeat_timer();
  /// Periodic liveness pass: evicts peers silent past the miss threshold,
  /// then heartbeats every peer nothing was sent to this period.
  void liveness_tick();
  void send_heartbeat(net::NodeId peer);
  /// Records a newly learned peer; returns true the first time a node-level
  /// peer appears (used to fire kJoined exactly once per node).
  bool member_learned(Member member);
  /// Closes and drops every cached peer transport (both directions); used
  /// when this node learns it was dropped from the cluster, after which
  /// the peers' endpoints of those connections are gone.
  void reset_transports();
  /// Declares a silent peer dead: forgets it locally, reports kMemberEvict.
  void evict_peer(net::NodeId peer);
  /// Removes a peer from every channel, closes its transports and drops its
  /// liveness entry. Idempotent.
  void forget_peer(net::NodeId peer);
  [[nodiscard]] bool member_of_any_channel(net::NodeId peer) const;
  void notify_membership(MemberEventKind kind, net::NodeId node);
  /// Data-frame piggybacking: marks `members` as sent-to now, suppressing
  /// this period's explicit heartbeat to them.
  void note_submission(const std::vector<Member>& members);

  host::Host& host_;
  net::Nic& nic_;
  net::NodeId registry_node_;
  net::Port registry_port_;
  KechoCosts costs_;
  LivenessConfig liveness_;
  RegistryClientConfig registry_client_;

  std::map<std::string, std::unique_ptr<Channel>> channels_by_name_;
  /// Poll drain order, kept sorted by channel name (matching the name-map
  /// walk it replaced — drain order is part of the deterministic trace).
  std::vector<Channel*> poll_list_;
  /// Dense id → channel lookup; the registry hands out small sequential
  /// ids, so the receive path indexes instead of tree-walking.
  std::vector<Channel*> channels_by_id_;
  std::map<net::NodeId, net::TcpConnection::Ptr> transports_;
  std::unique_ptr<net::TcpListener> listener_;
  std::vector<net::TcpConnection::Ptr> accepted_;

  /// Per-peer liveness state; maintained (cheaply, on membership changes)
  /// even with liveness disabled so listeners see kJoined exactly once,
  /// but only read on receive / refreshed on submit when enabled.
  struct PeerLiveness {
    SimTime last_heard;  // any frame from the peer refreshes this
    SimTime last_sent;   // any frame to the peer suppresses the heartbeat
  };
  std::map<net::NodeId, PeerLiveness> peer_liveness_;
  std::vector<MembershipListener> membership_listeners_;
  /// Pending leave/evict retries keyed by (op, member node); erased when
  /// the registry acks.
  std::map<std::pair<std::uint8_t, net::NodeId>, sim::EventHandle>
      pending_removals_;
  sim::EventHandle heartbeat_timer_;
  net::MessagePtr heartbeat_payload_;  // shared empty payload
  /// Lease-stamped channel cache plus the lookups waiting on the registry
  /// (one in-flight request per name, shared by all concurrent callers).
  std::map<std::string, CachedRecord> channel_cache_;
  struct PendingLookup {
    std::vector<LookupCallback> callbacks;
    int attempts = 0;
    sim::EventHandle retry;
  };
  std::map<std::string, PendingLookup> pending_lookups_;
  std::uint64_t lookup_rr_ = 0;  // read fan-out across replicas
  ClientCacheStats cache_stats_;
  bool crashed_ = false;
  std::uint64_t heartbeats_sent_ = 0;
  std::uint64_t evictions_initiated_ = 0;

  /// Self-monitoring instruments, resolved once from the host registry at
  /// construction; inert (a branch each) until telemetry is enabled.
  telemetry::Counter& tm_submits_;
  telemetry::Counter& tm_receives_;
  telemetry::Counter& tm_heartbeats_;
  telemetry::Counter& tm_evictions_;
  telemetry::Counter& tm_join_retries_;
  telemetry::Counter& tm_removal_retries_;
  telemetry::Counter& tm_cache_hits_;
  telemetry::Counter& tm_cache_misses_;
  telemetry::Counter& tm_cache_invalidations_;
  telemetry::LatencyRecorder& tm_submit_us_;
};

}  // namespace dproc::kecho
