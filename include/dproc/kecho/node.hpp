// KECho per-host endpoint: kernel-level event channels.
//
// One Node per simulated host multiplexes all of that host's channels over
// a single reliable kernel-to-kernel connection per peer (the paper's
// "strictly kernel-kernel messaging"). Received events are queued and
// delivered on poll(), matching d-mon's once-per-second socket polling, so
// the receive overhead of Figure 8 is observable as the poll's CPU cost.
//
// Every channel operation charges the host CPU's kernel class through the
// KechoCosts model; those cycles are exactly the perturbation Figures 4-8
// measure.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>

#include "dproc/host/host.hpp"
#include "dproc/kecho/registry.hpp"
#include "dproc/net/tcp.hpp"

namespace dproc::kecho {

/// Cycle costs of kernel-level channel operations on the reference CPU
/// (Pentium Pro 200 MHz). Calibrated so the microbenchmarks land in the
/// paper's reported ranges; see EXPERIMENTS.md.
struct KechoCosts {
  double submit_base_cycles = 9000;     // per event, per remote subscriber
  double submit_per_byte_cycles = 3.0;  // marshalling + copy
  double receive_base_cycles = 10000;   // per event drained at poll()
  double receive_per_byte_cycles = 2.2;
  double poll_base_cycles = 1500;       // fixed cost of one poll iteration
};

/// Channel transport selection: reliable kernel-to-kernel TCP (the
/// paper's default) or lossy datagrams — monitoring data is periodically
/// refreshed anyway, so dropping an update under congestion can beat
/// retransmitting stale values.
enum class ChannelTransport : std::uint8_t { kReliable, kDatagram };

/// A delivered channel event. The payload is a zero-copy view into the
/// wire frame: `frame` is shared with the sender and every other receiver
/// of the same submission, and `payload_offset` marks where the
/// application's encoded header starts inside it. Nothing is copied out on
/// receive — decode is a bounds check plus an offset.
struct Event {
  ChannelId channel = 0;
  net::NodeId source = 0;
  SimTime submitted_at;
  net::MessagePtr frame;
  std::size_t payload_offset = 0;

  /// The application payload's encoded header bytes.
  [[nodiscard]] std::span<const std::uint8_t> payload_header() const {
    return std::span<const std::uint8_t>{frame->header}.subspan(payload_offset);
  }
  /// Simulated bulk bytes riding behind the header.
  [[nodiscard]] std::uint64_t payload_body_bytes() const {
    return frame->body_bytes;
  }
  /// Total payload size (header view + bulk), as the receiver is charged.
  [[nodiscard]] std::uint64_t payload_size() const {
    return payload_header().size() + frame->body_bytes;
  }
};

class Node;

/// Handle to one joined channel on one host.
class Channel {
 public:
  using Handler = std::function<void(const Event&)>;

  /// Registers the receive handler; events are delivered at poll() time.
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  /// Publishes to every remote member known at submission time. Returns the
  /// kernel CPU cost charged for the submission.
  SimDuration submit(const net::MessagePtr& payload);

  [[nodiscard]] ChannelId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool ready() const { return ready_; }
  [[nodiscard]] std::size_t remote_member_count() const;
  [[nodiscard]] std::uint64_t events_submitted() const { return submitted_; }
  [[nodiscard]] std::uint64_t events_received() const { return received_; }
  [[nodiscard]] std::size_t pending_events() const { return rx_queue_.size(); }

 private:
  friend class Node;
  Channel(Node& node, std::string name) : node_(node), name_(std::move(name)) {}

  Node& node_;
  std::string name_;
  ChannelId id_ = 0;
  ChannelTransport transport_ = ChannelTransport::kReliable;
  bool ready_ = false;
  std::vector<Member> members_;  // remote members
  Handler handler_;
  std::deque<Event> rx_queue_;
  std::uint64_t submitted_ = 0;
  std::uint64_t received_ = 0;
  std::vector<std::function<void(Channel&)>> on_ready_;
};

struct PollStats {
  std::size_t events_delivered = 0;
  SimDuration cpu_cost{0};
};

class Node {
 public:
  static constexpr net::Port kChannelPort = 7788;
  static constexpr net::Port kDatagramEventPort = 7789;

  Node(host::Host& host, net::Nic& nic, net::NodeId registry_node,
       net::Port registry_port = RegistryServer::kDefaultPort,
       KechoCosts costs = {});
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Joins (or creates) a channel by name. The returned handle is usable
  /// immediately; submissions before the registry answers reach no one,
  /// exactly like publishing on a channel nobody subscribed to yet. The
  /// transport applies to this node's submissions on the channel.
  Channel& join(const std::string& name,
                std::function<void(Channel&)> on_ready = {},
                ChannelTransport transport = ChannelTransport::kReliable);

  /// Drains every channel's receive queue, charging receive costs and
  /// invoking handlers. d-mon calls this once per polling period.
  PollStats poll();

  [[nodiscard]] host::Host& host() { return host_; }
  [[nodiscard]] net::Nic& nic() { return nic_; }
  [[nodiscard]] const KechoCosts& costs() const { return costs_; }

 private:
  friend class Channel;

  void on_registry_datagram(const net::MessagePtr& message);
  void on_peer_message(const net::MessagePtr& message);
  /// Lazily opens (or reuses) the transport to a peer kernel.
  net::TcpConnection::Ptr& transport_to(net::NodeId peer);

  host::Host& host_;
  net::Nic& nic_;
  net::NodeId registry_node_;
  net::Port registry_port_;
  KechoCosts costs_;

  std::map<std::string, std::unique_ptr<Channel>> channels_by_name_;
  /// Poll drain order, kept sorted by channel name (matching the name-map
  /// walk it replaced — drain order is part of the deterministic trace).
  std::vector<Channel*> poll_list_;
  /// Dense id → channel lookup; the registry hands out small sequential
  /// ids, so the receive path indexes instead of tree-walking.
  std::vector<Channel*> channels_by_id_;
  std::map<net::NodeId, net::TcpConnection::Ptr> transports_;
  std::unique_ptr<net::TcpListener> listener_;
  std::vector<net::TcpConnection::Ptr> accepted_;
};

}  // namespace dproc::kecho
