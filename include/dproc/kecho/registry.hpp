// KECho channel registry: the user-level channel directory server.
//
// The first d-mon to contact the registry creates a channel; later joiners
// retrieve its id and current membership, and existing members receive a
// notification about the newcomer. The registry speaks a small datagram
// protocol so it behaves like the paper's out-of-kernel directory process.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dproc/net/nic.hpp"

namespace dproc::kecho {

using ChannelId = std::uint32_t;

struct Member {
  net::NodeId node;
  net::Port port;

  friend auto operator<=>(const Member&, const Member&) = default;
};

/// Wire ops of the registry protocol.
enum class RegistryOp : std::uint8_t {
  kJoinRequest = 1,   // name, member -> response + notifications
  kJoinResponse = 2,  // channel id, member list
  kMemberNotify = 3,  // channel id, new member
};

class RegistryServer {
 public:
  static constexpr net::Port kDefaultPort = 7000;

  RegistryServer(net::Nic& nic, net::Port port = kDefaultPort);
  RegistryServer(const RegistryServer&) = delete;
  RegistryServer& operator=(const RegistryServer&) = delete;

  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }
  [[nodiscard]] net::Port port() const { return port_; }

 private:
  void handle_request(net::NodeId from, const net::MessagePtr& message);

  struct ChannelRecord {
    ChannelId id;
    std::string name;
    std::vector<Member> members;
  };

  net::Nic& nic_;
  net::Port port_;
  std::map<std::string, ChannelRecord> channels_;
  ChannelId next_id_ = 1;
};

/// Encodes a join request (used by kecho::Node; exposed for tests).
net::MessagePtr encode_join_request(const std::string& name, Member member);

}  // namespace dproc::kecho
