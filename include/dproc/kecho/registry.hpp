// KECho channel registry: the user-level channel directory server.
//
// The first d-mon to contact the registry creates a channel; later joiners
// retrieve its id and current membership, and existing members receive a
// notification about the newcomer. The registry speaks a small datagram
// protocol so it behaves like the paper's out-of-kernel directory process.
//
// Failure awareness: join requests are idempotent (a crash-restart re-join
// neither duplicates the Member entry nor creates a second channel record),
// members can leave gracefully (kMemberLeave) or be reported dead by a
// surviving peer (kMemberEvict) — both remove the member from every channel
// and fan a kMemberDrop notification out to the remaining members (and to
// the removed member itself, so a spuriously evicted node knows to
// re-join). Leave/evict are acked (kOpAck) so senders can retry through
// registry outages, and set_online() models such an outage window: an
// offline registry silently drops every request, exactly like a crashed
// directory process.
//
// Replication (RegistryReplication, disabled by default so the single
// directory process — and the golden trace — stay byte-identical): the
// channel table is replicated across a small replica set with a
// leader-lease scheme and no external consensus. Leadership is
// deterministic: the lowest-indexed replica heard from within the lease
// window (heartbeat_period × miss_threshold, on the virtual clock) leads;
// the leader serializes every mutation and streams versioned
// net::RegistrySync records to the followers. Followers answer lookups
// from their synced table and forward client writes to the leader — or
// queue them when the leader has gone quiet, draining the queue when a new
// leader emerges (possibly themselves). The client ops were already
// idempotent (duplicate joins are no-ops, leave/evict are acked and
// retried), so replaying a queued or retried write after a leader death is
// safe. A replica that discovers it missed a failover (a higher-indexed
// peer heartbeats a newer epoch) recovers before serving: it requests a
// snapshot, applies the record stream, and only then counts toward
// leadership again.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "dproc/net/nic.hpp"
#include "dproc/net/wire.hpp"
#include "dproc/sim/engine.hpp"

namespace dproc::telemetry {
class Counter;
class FlightRecorder;
class Gauge;
class Registry;
}  // namespace dproc::telemetry

namespace dproc::kecho {

using ChannelId = std::uint32_t;

struct Member {
  net::NodeId node;
  net::Port port;

  friend auto operator<=>(const Member&, const Member&) = default;
};

/// Wire ops of the registry protocol.
enum class RegistryOp : std::uint8_t {
  kJoinRequest = 1,   // name, member -> response + notifications
  kJoinResponse = 2,  // channel id, member list (doubles as the join ack)
  kMemberNotify = 3,  // channel id, new member
  kMemberLeave = 4,   // member -> registry: graceful node-level departure
  kMemberEvict = 5,   // member -> registry: report of a dead member
  kMemberDrop = 6,    // registry -> members: member removed (reason byte)
  kOpAck = 7,         // registry -> sender: ack for leave/evict

  // --- replication (leader <-> follower replicas) -----------------------
  kReplicaHeartbeat = 8,  // replica id, epoch, recovering, version, next id
  kRegistrySync = 9,      // one net::RegistrySync channel record
  kSyncRequest = 10,      // recovering replica -> leader: snapshot please
  kSyncDone = 11,         // leader -> recovering replica: snapshot complete
  kForward = 12,          // follower -> leader: wrapped client request

  // --- client cache (registry <-> kecho::Node) --------------------------
  kCacheInvalidate = 13,  // registry -> members: cached entry is stale
  kLookupRequest = 14,    // client -> any replica: read channel record
  kLookupResponse = 15,   // replica -> client: record (or not-found)
};

/// Why a member was dropped from a channel (carried in kMemberDrop).
enum class DropReason : std::uint8_t { kLeave = 0, kEvict = 1 };

/// Replication configuration for the channel registry (and the client-side
/// channel cache fronting it). Disabled by default: one RegistryServer,
/// no timers, no replica traffic — byte-identical to the single directory
/// process the golden trace pins.
struct RegistryReplication {
  bool enabled = false;
  /// Replica-set size; the cluster builder places replica r on node r.
  std::size_t replicas = 3;
  /// Replica-to-replica heartbeat period (virtual time).
  SimDuration heartbeat_period = milliseconds(500.0);
  /// A replica silent past miss_threshold heartbeat periods has lost its
  /// lease: lease = heartbeat_period × miss_threshold.
  int miss_threshold = 3;
  /// Channel-id headroom a new leader skips on takeover, covering id
  /// assignments the dead leader made whose sync frames were still in
  /// flight. Ids stay small and dense (the client indexes a vector by id),
  /// just never collide across a failover.
  ChannelId failover_id_gap = 64;
  /// Client-side channel cache (lease-stamped local table in kecho::Node).
  bool client_cache = true;
  /// A cached record older than this is expired at lookup time; the lease
  /// bounds worst-case staleness for entries no invalidation reaches.
  SimDuration cache_lease = seconds(5.0);

  [[nodiscard]] SimDuration lease() const {
    return heartbeat_period * static_cast<double>(miss_threshold);
  }
};

/// Wiring of one replica into its set (who am I, where are my peers).
struct ReplicaSetup {
  std::uint32_t replica_id = 0;
  /// Fabric node of every replica, indexed by replica id.
  std::vector<net::NodeId> replica_nodes;
  RegistryReplication config{};
};

struct RegistryStats {
  std::uint64_t joins = 0;            // join requests honoured
  std::uint64_t duplicate_joins = 0;  // idempotent re-joins (no-op)
  std::uint64_t leaves = 0;           // members removed via kMemberLeave
  std::uint64_t evictions = 0;        // members removed via kMemberEvict
  std::uint64_t lookups = 0;          // kLookupRequest answered
  // Request drops by cause (replacing the old single
  // dropped_while_offline bucket).
  std::uint64_t drops_offline = 0;     // registry offline, request dropped
  std::uint64_t drops_malformed = 0;   // undecodable request
  std::uint64_t drops_unknown_op = 0;  // op byte outside the protocol
  std::uint64_t drops_queue_full = 0;  // failover write queue overflowed
  // Replication traffic.
  std::uint64_t syncs_sent = 0;      // RegistrySync records fanned out
  std::uint64_t syncs_applied = 0;   // records applied from the leader
  std::uint64_t forwards = 0;        // client writes forwarded to the leader
  std::uint64_t queued_writes = 0;   // writes parked during failover
  std::uint64_t invalidations_sent = 0;  // kCacheInvalidate fanned out
  std::uint64_t failovers = 0;       // times this replica assumed leadership
};

class RegistryServer {
 public:
  static constexpr net::Port kDefaultPort = 7000;
  /// Bound on the failover write queue; beyond it writes are dropped (and
  /// counted) — the clients' capped-backoff retries provide the real
  /// durability, the queue just shortens the common-case failover.
  static constexpr std::size_t kMaxQueuedWrites = 8192;

  RegistryServer(net::Nic& nic, net::Port port = kDefaultPort);
  /// Replica constructor: one of `setup.config.replicas` servers, each on
  /// its own node, heartbeating its peers on the virtual clock.
  RegistryServer(net::Nic& nic, ReplicaSetup setup,
                 net::Port port = kDefaultPort);
  ~RegistryServer();
  RegistryServer(const RegistryServer&) = delete;
  RegistryServer& operator=(const RegistryServer&) = delete;

  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }
  [[nodiscard]] net::Port port() const { return port_; }
  [[nodiscard]] const RegistryStats& stats() const { return stats_; }

  /// Fault injection: an offline registry drops every request on the floor
  /// (the directory process crashed); clients must retry. A replica coming
  /// back online re-enters through recovery: it wipes its record versions,
  /// snapshots from the surviving replicas, and waits out one full lease
  /// before counting toward leadership again — a returned stale leader can
  /// neither serve stale reads nor reclaim the lease with missed (or
  /// version-colliding unsynced) mutations.
  void set_online(bool online);
  [[nodiscard]] bool online() const { return online_; }

  // --- replication observability ----------------------------------------

  [[nodiscard]] bool replicated() const { return replicated_; }
  [[nodiscard]] std::uint32_t replica_id() const { return replica_id_; }
  /// The replica this server currently believes leads (its own view; views
  /// may briefly diverge mid-failover).
  [[nodiscard]] std::uint32_t leader_id() const;
  [[nodiscard]] bool is_leader() const;
  [[nodiscard]] bool recovering() const { return recovering_; }
  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }
  [[nodiscard]] std::uint64_t table_version() const { return version_; }
  [[nodiscard]] std::size_t queued_write_count() const {
    return queued_writes_.size();
  }

  /// Current membership of a named channel; empty if the channel does not
  /// exist (observability for tests and the chaos harness). Returns a
  /// reference into the live table — copy before mutating the server.
  [[nodiscard]] const std::vector<Member>& channel_members(
      const std::string& name) const;

  /// Names of every channel ever created, in name order, as views into the
  /// live table (stable until a channel is created). The hierarchy tests
  /// use this to assert the zone-scoped channel set; the chaos tests
  /// compare it across replicas.
  [[nodiscard]] std::vector<std::string_view> channel_names() const;

  /// Mirrors the op counters into `telemetry` (typically the hosting node's
  /// registry) under "registry/..."; nullptr detaches. Purely additive: the
  /// plain RegistryStats keep counting either way.
  void set_telemetry(telemetry::Registry* telemetry);

  /// Attaches the hosting node's flight recorder; replica-set transitions
  /// (elections, lease expiries, outages, sync catch-up) are recorded into
  /// it. nullptr detaches. Inert when the recorder is disabled.
  void set_flight(telemetry::FlightRecorder* flight) { flight_ = flight; }

  /// The datagram handler, exposed so robustness tests can feed malformed
  /// requests directly without standing up a second fabric endpoint.
  void handle_request(net::NodeId from, net::Port from_port,
                      const net::MessagePtr& message);

 private:
  struct ChannelRecord {
    ChannelId id;
    std::string name;
    std::vector<Member> members;
    std::uint64_t version = 0;  // table version of the last mutation
  };

  /// Removes `member` from every channel, notifying survivors (and the
  /// removed member) per affected channel. Idempotent.
  void remove_member(Member member, DropReason reason);
  void handle_client_request(net::NodeId from, net::Port from_port,
                             RegistryOp op, net::ByteReader& r,
                             const net::MessagePtr& message);
  void handle_join(net::NodeId from, net::ByteReader& r);
  void handle_lookup(net::ByteReader& r);

  // --- replication internals --------------------------------------------

  [[nodiscard]] bool replica_live(std::uint32_t r) const;
  [[nodiscard]] SimTime now() const;
  void heartbeat_tick();
  /// Broadcasts kSyncRequest to every peer; whoever is not itself
  /// recovering streams a snapshot back. Re-sent every heartbeat tick
  /// while recovering, so a lost request (or a peer that was mid-recovery)
  /// cannot wedge recovery.
  void request_snapshot();
  void check_leadership();
  void become_leader();
  void drain_queued_writes();
  /// Fans the post-mutation record to every follower and a cache
  /// invalidation to the members (+ `removed`, when a removal). Leader-side
  /// only; bumps the table version.
  void replicate_mutation(ChannelRecord& record, const Member* removed);
  /// Fans kCacheInvalidate for `name` to the clients this replica served
  /// lookup responses to (plus `removed`, when set), then forgets them.
  void invalidate_cachers(const std::string& name, std::uint64_t version,
                          const Member* removed);
  void send_sync_record(net::NodeId to, const ChannelRecord& record) const;
  void handle_replica_op(net::NodeId from, RegistryOp op, net::ByteReader& r);
  void apply_sync(const net::RegistrySync& sync);
  /// True when this write should be handled here; false after forwarding
  /// or queueing it for the leader.
  bool accept_write(net::NodeId from, net::Port from_port,
                    const net::MessagePtr& message);

  net::Nic& nic_;
  net::Port port_;
  bool online_ = true;
  RegistryStats stats_;
  std::map<std::string, ChannelRecord> channels_;
  ChannelId next_id_ = 1;
  /// Clients served a lookup response per channel — the cache holders a
  /// mutation must invalidate. Members are excluded: they receive the
  /// authoritative kMemberNotify/kMemberDrop pushes instead. Cleared after
  /// each invalidation fan-out (a holder re-registers by looking up again).
  std::map<std::string, std::vector<Member>> lookup_cachers_;

  // Replication state (inert in single-server mode).
  bool replicated_ = false;
  std::uint32_t replica_id_ = 0;
  std::vector<net::NodeId> replica_nodes_;
  RegistryReplication rep_;
  std::uint32_t epoch_ = 0;     // bumped by each new leader on takeover
  std::uint64_t version_ = 0;   // table version (one per mutation)
  bool recovering_ = false;
  std::uint64_t recovery_target_ = 0;  // version the snapshot must reach
  /// A replica back from an outage may not claim leadership before this
  /// instant (one lease past its return): it must hear the world first.
  SimTime not_before_{};
  bool was_leader_ = false;
  /// Leader id this replica last observed; lets check_leadership() record a
  /// lease expiry exactly once when the old leader's view goes stale.
  std::uint32_t last_leader_view_ = 0;
  sim::EventHandle heartbeat_timer_;
  /// What this replica last heard from each peer replica.
  struct ReplicaView {
    SimTime last_heard;
    std::uint32_t epoch = 0;
    std::uint64_t version = 0;
    ChannelId next_id = 1;
    bool recovering = false;
  };
  std::vector<ReplicaView> views_;
  /// Client writes parked while no leader is reachable; drained on the
  /// next leadership change (applied here or forwarded to the new leader).
  struct QueuedWrite {
    net::NodeId from;
    net::Port from_port;
    net::MessagePtr message;
  };
  std::deque<QueuedWrite> queued_writes_;

  /// Telemetry mirrors of RegistryStats (null until set_telemetry).
  telemetry::Counter* tm_joins_ = nullptr;
  telemetry::Counter* tm_duplicate_joins_ = nullptr;
  telemetry::Counter* tm_leaves_ = nullptr;
  telemetry::Counter* tm_evictions_ = nullptr;
  telemetry::Counter* tm_drops_offline_ = nullptr;
  telemetry::Counter* tm_drops_malformed_ = nullptr;
  telemetry::Counter* tm_drops_unknown_op_ = nullptr;
  telemetry::Counter* tm_syncs_sent_ = nullptr;
  telemetry::Counter* tm_syncs_applied_ = nullptr;
  telemetry::Counter* tm_forwards_ = nullptr;
  telemetry::Counter* tm_failovers_ = nullptr;
  telemetry::Gauge* tm_role_ = nullptr;  // 1 while leading, else 0
  telemetry::FlightRecorder* flight_ = nullptr;
};

/// Encodes a join request (used by kecho::Node; exposed for tests).
net::MessagePtr encode_join_request(const std::string& name, Member member);
/// Encodes a leave/evict request (`op` must be one of those two).
net::MessagePtr encode_member_removal(RegistryOp op, Member member);
/// Encodes a membership lookup (client cache miss path).
net::MessagePtr encode_lookup_request(const std::string& name, Member reply_to);

/// A decoded kJoinResponse / kLookupResponse body (after the op byte).
struct JoinResponse {
  std::string name;
  ChannelId id = 0;
  bool found = true;  // lookups may miss; join responses always carry a record
  std::vector<Member> members;
};
/// Decodes a join/lookup response body. The member count is validated
/// against the remaining bytes before any allocation, so a corrupted count
/// cannot over-allocate. `lookup` selects the kLookupResponse layout (one
/// extra found byte).
[[nodiscard]] bool decode_join_response(net::ByteReader& r, bool lookup,
                                        JoinResponse& out);

}  // namespace dproc::kecho
