// KECho channel registry: the user-level channel directory server.
//
// The first d-mon to contact the registry creates a channel; later joiners
// retrieve its id and current membership, and existing members receive a
// notification about the newcomer. The registry speaks a small datagram
// protocol so it behaves like the paper's out-of-kernel directory process.
//
// Failure awareness: join requests are idempotent (a crash-restart re-join
// neither duplicates the Member entry nor creates a second channel record),
// members can leave gracefully (kMemberLeave) or be reported dead by a
// surviving peer (kMemberEvict) — both remove the member from every channel
// and fan a kMemberDrop notification out to the remaining members (and to
// the removed member itself, so a spuriously evicted node knows to
// re-join). Leave/evict are acked (kOpAck) so senders can retry through
// registry outages, and set_online() models such an outage window: an
// offline registry silently drops every request, exactly like a crashed
// directory process.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dproc/net/nic.hpp"

namespace dproc::telemetry {
class Counter;
class Registry;
}  // namespace dproc::telemetry

namespace dproc::kecho {

using ChannelId = std::uint32_t;

struct Member {
  net::NodeId node;
  net::Port port;

  friend auto operator<=>(const Member&, const Member&) = default;
};

/// Wire ops of the registry protocol.
enum class RegistryOp : std::uint8_t {
  kJoinRequest = 1,   // name, member -> response + notifications
  kJoinResponse = 2,  // channel id, member list (doubles as the join ack)
  kMemberNotify = 3,  // channel id, new member
  kMemberLeave = 4,   // member -> registry: graceful node-level departure
  kMemberEvict = 5,   // member -> registry: report of a dead member
  kMemberDrop = 6,    // registry -> members: member removed (reason byte)
  kOpAck = 7,         // registry -> sender: ack for leave/evict
};

/// Why a member was dropped from a channel (carried in kMemberDrop).
enum class DropReason : std::uint8_t { kLeave = 0, kEvict = 1 };

struct RegistryStats {
  std::uint64_t joins = 0;            // join requests honoured
  std::uint64_t duplicate_joins = 0;  // idempotent re-joins (no-op)
  std::uint64_t leaves = 0;           // members removed via kMemberLeave
  std::uint64_t evictions = 0;        // members removed via kMemberEvict
  std::uint64_t dropped_while_offline = 0;
};

class RegistryServer {
 public:
  static constexpr net::Port kDefaultPort = 7000;

  RegistryServer(net::Nic& nic, net::Port port = kDefaultPort);
  RegistryServer(const RegistryServer&) = delete;
  RegistryServer& operator=(const RegistryServer&) = delete;

  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }
  [[nodiscard]] net::Port port() const { return port_; }
  [[nodiscard]] const RegistryStats& stats() const { return stats_; }

  /// Fault injection: an offline registry drops every request on the floor
  /// (the directory process crashed); clients must retry.
  void set_online(bool online) { online_ = online; }
  [[nodiscard]] bool online() const { return online_; }

  /// Current membership of a named channel; empty if the channel does not
  /// exist (observability for tests and the chaos harness).
  [[nodiscard]] std::vector<Member> channel_members(
      const std::string& name) const;

  /// Names of every channel ever created, in name order. The hierarchy
  /// tests use this to assert the zone-scoped channel set (one channel per
  /// zone, not one flat channel with N members).
  [[nodiscard]] std::vector<std::string> channel_names() const;

  /// Mirrors the op counters into `telemetry` (typically the hosting node's
  /// registry) under "registry/..."; nullptr detaches. Purely additive: the
  /// plain RegistryStats keep counting either way.
  void set_telemetry(telemetry::Registry* telemetry);

 private:
  void handle_request(net::NodeId from, net::Port from_port,
                      const net::MessagePtr& message);
  /// Removes `member` from every channel, notifying survivors (and the
  /// removed member) per affected channel. Idempotent.
  void remove_member(Member member, DropReason reason);

  struct ChannelRecord {
    ChannelId id;
    std::string name;
    std::vector<Member> members;
  };

  net::Nic& nic_;
  net::Port port_;
  bool online_ = true;
  RegistryStats stats_;
  std::map<std::string, ChannelRecord> channels_;
  ChannelId next_id_ = 1;

  /// Telemetry mirrors of RegistryStats (null until set_telemetry).
  telemetry::Counter* tm_joins_ = nullptr;
  telemetry::Counter* tm_duplicate_joins_ = nullptr;
  telemetry::Counter* tm_leaves_ = nullptr;
  telemetry::Counter* tm_evictions_ = nullptr;
  telemetry::Counter* tm_dropped_offline_ = nullptr;
};

/// Encodes a join request (used by kecho::Node; exposed for tests).
net::MessagePtr encode_join_request(const std::string& name, Member member);
/// Encodes a leave/evict request (`op` must be one of those two).
net::MessagePtr encode_member_removal(RegistryOp op, Member member);

}  // namespace dproc::kecho
