// E-code bytecode.
//
// The paper's E-code generates native binary at the publishing host; this
// reproduction compiles to a compact stack bytecode executed by a fueled VM
// instead (see DESIGN.md for why the substitution preserves the system's
// behaviour). Every store instruction leaves the stored value on the stack,
// giving C's assignment-as-expression semantics; statement contexts emit an
// explicit kPop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dproc/ecode/ast.hpp"

namespace dproc::ecode {

enum class Op : std::uint8_t {
  kPushInt,      // push imm_i
  kPushFloat,    // push imm_f
  kLoadLocal,    // push locals[arg]
  kStoreLocal,   // locals[arg] = top (value stays)
  kDup,
  kPop,
  kSwap,

  kLoadInput,    // pop idx; push input[idx] (sample)
  kLoadOutput,   // pop idx; push output[idx] (sample; zero if unwritten)
  kStoreOutput,  // pop value, pop idx; output[idx] = value; push value
  kFieldGet,     // pop sample; push sample.field(arg)
  kOutputFieldSet,  // pop value, pop idx; output[idx].field(arg) = value; push value
  kLocalFieldSet,   // pop value; locals[arg].field(arg2) = value; push value

  kAdd, kSub, kMul, kDiv, kMod,
  kNeg, kNot, kBitNot,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
  kLt, kLe, kGt, kGe, kEq, kNe,

  kToInt,     // truncate top to int
  kToDouble,  // widen top to double
  kToBool,    // top = (top != 0) as int
  kPushZeroSample,  // push a zero-initialized sample (declaration default)
  kCallBuiltin,     // pop arg(arg2) args; push builtin(arg) result

  kJmp,         // pc = arg
  kJmpIfFalse,  // pop; if zero pc = arg
  kJmpIfTrue,   // pop; if nonzero pc = arg

  kReturn,      // pop return value; halt
  kHalt,        // end of program, no return value
};

struct Insn {
  Op op;
  std::int32_t arg = 0;    // slot / jump target / field
  std::int32_t arg2 = 0;   // kLocalFieldSet: field
  std::int64_t imm_i = 0;  // kPushInt
  double imm_f = 0.0;      // kPushFloat
};

struct Bytecode {
  std::vector<Insn> insns;
  std::size_t local_slot_count = 0;

  [[nodiscard]] std::string disassemble() const;
};

[[nodiscard]] const char* to_string(Op op);

}  // namespace dproc::ecode
