// E-code bytecode.
//
// The paper's E-code generates native binary at the publishing host; this
// reproduction compiles to a compact stack bytecode executed by a fueled VM
// instead (see DESIGN.md for why the substitution preserves the system's
// behaviour). Every store instruction leaves the stored value on the stack,
// giving C's assignment-as-expression semantics; statement contexts emit an
// explicit kPop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dproc/ecode/ast.hpp"

namespace dproc::ecode {

enum class Op : std::uint8_t {
  kPushInt,      // push imm_i
  kPushFloat,    // push imm_f
  kLoadLocal,    // push locals[arg]
  kStoreLocal,   // locals[arg] = top (value stays)
  kDup,
  kPop,
  kSwap,

  kLoadInput,    // pop idx; push input[idx] (sample)
  kLoadOutput,   // pop idx; push output[idx] (sample; zero if unwritten)
  kStoreOutput,  // pop value, pop idx; output[idx] = value; push value
  kFieldGet,     // pop sample; push sample.field(arg)
  kOutputFieldSet,  // pop value, pop idx; output[idx].field(arg) = value; push value
  kLocalFieldSet,   // pop value; locals[arg].field(arg2) = value; push value

  kAdd, kSub, kMul, kDiv, kMod,
  kNeg, kNot, kBitNot,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
  kLt, kLe, kGt, kGe, kEq, kNe,

  kToInt,     // truncate top to int
  kToDouble,  // widen top to double
  kToBool,    // top = (top != 0) as int
  kPushZeroSample,  // push a zero-initialized sample (declaration default)
  kCallBuiltin,     // pop arg(arg2) args; push builtin(arg) result
  kCallSketch,      // pop arg(arg2) args; push sketch-host fn(arg) result

  kJmp,         // pc = arg
  kJmpIfFalse,  // pop; if zero pc = arg
  kJmpIfTrue,   // pop; if nonzero pc = arg

  kReturn,      // pop return value; halt
  kHalt,        // end of program, no return value

  // --- superinstructions ---------------------------------------------------
  // Emitted only by the bytecode peephole pass (never by the compiler).
  // Each carries `width` = number of plain instructions it replaces, so
  // fuel accounting is identical to unoptimized execution.
  kLoadInputImm,      // push input[imm_i]                  [push_int; load_input]
  kLoadInputField,    // pop idx; push input[idx].field(arg) [load_input; field_get]
  kLoadInputFieldImm, // push input[imm_i].field(arg)  [push_int; load_input; field_get]
  kAddImmI,           // top = top + imm_i (int imm, numeric promotion) [push_int; add]
  kStoreLocalPop,     // locals[arg] = pop()                [store_local; pop]
  kCmpJmpIfFalse,     // pop b, a; if !cmp<arg2>(a, b) pc = arg  [cmp; jmp_if_false]
  kCmpJmpIfTrue,      // pop b, a; if  cmp<arg2>(a, b) pc = arg  [cmp; jmp_if_true]
  kCmpImmJmpIfFalse,  // pop a; if !cmp<arg2>(a, imm) pc = arg   [push; cmp; jmp_if_false]
  kCmpImmJmpIfTrue,   // pop a; if  cmp<arg2>(a, imm) pc = arg   [push; cmp; jmp_if_true]
  kStoreOutputPop,    // pop value, pop idx; output[idx] = value [store_output; pop]
  kLocalAddImm,       // locals[arg] += imm_i   [load_local; push_int; add; store_local; pop]
  kCopyInputToOutput, // output[locals[arg]] = input[imm_i]
                      //   [load_local; push_int; load_input; store_output; pop]
};

/// Number of opcodes; the threaded interpreter's dispatch table is indexed
/// by Op and must stay exactly this long (vm_dispatch.inc static_asserts).
inline constexpr std::size_t kOpCount =
    static_cast<std::size_t>(Op::kCopyInputToOutput) + 1;

/// Comparison encoding for the kCmp* superinstructions: arg2 & 7 selects
/// the predicate (offset from kLt), kCmpImmFloatBit selects imm_f over
/// imm_i as the right-hand operand.
inline constexpr std::int32_t kCmpImmFloatBit = 8;

struct Insn {
  Op op;
  std::uint8_t width = 1;  // fuel units: plain instructions this represents
  std::int32_t arg = 0;    // slot / jump target / field
  std::int32_t arg2 = 0;   // kLocalFieldSet: field; kCmp*: predicate
  std::int64_t imm_i = 0;  // kPushInt
  double imm_f = 0.0;      // kPushFloat
};

struct Bytecode {
  std::vector<Insn> insns;
  std::size_t local_slot_count = 0;

  [[nodiscard]] std::string disassemble() const;
};

[[nodiscard]] const char* to_string(Op op);

}  // namespace dproc::ecode
