// Token definitions for the E-code lexer.
#pragma once

#include <cstdint>
#include <string>

#include "dproc/ecode/source.hpp"

namespace dproc::ecode {

enum class TokenKind : std::uint8_t {
  kEof,
  kIntLiteral,
  kFloatLiteral,
  kIdentifier,

  // keywords
  kKwInt,
  kKwLong,
  kKwDouble,
  kKwSample,
  kKwIf,
  kKwElse,
  kKwFor,
  kKwWhile,
  kKwReturn,
  kKwBreak,
  kKwContinue,

  // punctuation
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kSemicolon,
  kComma,
  kDot,
  kQuestion,
  kColon,

  // operators
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kAssign,
  kPlusAssign,
  kMinusAssign,
  kStarAssign,
  kSlashAssign,
  kPercentAssign,
  kPlusPlus,
  kMinusMinus,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAndAnd,
  kOrOr,
  kNot,
  kAmp,
  kPipe,
  kCaret,
  kTilde,
  kShl,
  kShr,
};

[[nodiscard]] const char* to_string(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  SourceLoc loc;
  std::string text;        // identifier spelling
  std::int64_t int_value = 0;
  double float_value = 0.0;
};

}  // namespace dproc::ecode
