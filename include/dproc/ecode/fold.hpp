// Constant folding: an AST optimization pass.
//
// Filters are compiled on every deployment and executed on every polling
// iteration at kernel level, so shrinking them is worth a pass. Folding
// runs between semantic analysis and code generation: literal arithmetic
// collapses (including resolved environment constants like `LOADAVG * 2`),
// short-circuit and ternary operators with constant conditions drop dead
// branches. Division by a constant zero is left in place so the runtime
// error (and its diagnostic) still happens.
#pragma once

#include "dproc/ecode/ast.hpp"

namespace dproc::ecode {

/// Folds constants in place. Requires a semantically analyzed program;
/// annotations (types, slots) are preserved or re-derived for new literals.
void fold_constants(Program& program);

/// Exposed for tests: folds one expression tree, returning true if the
/// node was replaced by a literal.
bool fold_expr(ExprPtr& expr);

}  // namespace dproc::ecode
