// Bytecode peephole optimizer.
//
// Fuses common instruction sequences the compiler emits — constant pushes
// feeding loads, compare-and-branch pairs, store-then-discard — into the
// superinstructions declared in bytecode.hpp. Runs after constant folding;
// purely a bytecode-to-bytecode rewrite. Each superinstruction records the
// number of plain instructions it replaced in Insn::width, so the VM's fuel
// accounting (and therefore every instruction-count-derived overhead figure)
// is identical to unoptimized execution. Fusion windows never span a jump
// target: an instruction some branch lands on keeps its own program point.
#pragma once

#include "dproc/ecode/bytecode.hpp"

namespace dproc::ecode {

void peephole_optimize(Bytecode& code);

}  // namespace dproc::ecode
