// E-code recursive-descent parser with C operator precedence.
#pragma once

#include <vector>

#include "dproc/ecode/ast.hpp"
#include "dproc/ecode/token.hpp"
#include "dproc/util/status.hpp"

namespace dproc::ecode {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  /// Parses a filter body: either `{ stmts }` (the paper's Figure 3 shape)
  /// or a bare statement list. Errors carry line:column diagnostics.
  Result<Program> parse_program();

 private:
  // statements
  StmtPtr parse_statement();
  StmtPtr parse_block();
  StmtPtr parse_if();
  StmtPtr parse_for();
  StmtPtr parse_while();
  StmtPtr parse_return();
  StmtPtr parse_var_decl(Type type);

  // expressions (precedence climbing)
  ExprPtr parse_expression();        // assignment level
  ExprPtr parse_ternary();
  ExprPtr parse_binary(int min_precedence);
  ExprPtr parse_unary();
  ExprPtr parse_postfix();
  ExprPtr parse_primary();

  // helpers
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const;
  const Token& advance();
  [[nodiscard]] bool check(TokenKind kind) const { return peek().kind == kind; }
  bool match(TokenKind kind);
  bool expect(TokenKind kind, const char* context);
  void error(SourceLoc loc, std::string message);
  void synchronize();

  [[nodiscard]] static bool is_type_keyword(TokenKind kind);
  [[nodiscard]] static Type keyword_type(TokenKind kind);

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  std::vector<Diagnostic> diagnostics_;
  // Expression recursion guard: pathological nesting must produce a
  // diagnostic, not a stack overflow in the publishing kernel.
  int expr_depth_ = 0;
  static constexpr int kMaxExprDepth = 200;
};

}  // namespace dproc::ecode
