// Source locations and diagnostics for the E-code front end.
//
// Filters arrive over the control channel as strings written by remote
// applications; compile errors must travel back as readable text, so every
// stage carries line/column positions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dproc::ecode {

struct SourceLoc {
  std::uint32_t line = 1;
  std::uint32_t column = 1;

  [[nodiscard]] std::string to_string() const {
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

struct Diagnostic {
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return loc.to_string() + ": " + message;
  }
};

/// Joins diagnostics into the error string returned through the control
/// file, one per line.
[[nodiscard]] inline std::string format_diagnostics(
    const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const auto& d : diags) {
    if (!out.empty()) out += '\n';
    out += d.to_string();
  }
  return out;
}

}  // namespace dproc::ecode
