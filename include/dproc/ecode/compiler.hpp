// AST → bytecode compiler.
#pragma once

#include "dproc/ecode/ast.hpp"
#include "dproc/ecode/bytecode.hpp"
#include "dproc/util/status.hpp"

namespace dproc::ecode {

class Compiler {
 public:
  /// Compiles a semantically analyzed program. The program must have passed
  /// Sema::analyze; compilation itself cannot fail on well-typed input.
  Bytecode compile(const Program& program);

 private:
  void compile_stmt(const Stmt& stmt);
  void compile_expr(const Expr& expr);
  void compile_assign(const Expr& expr);
  void compile_inc_dec(const Expr& expr);
  void compile_logical(const Expr& expr);

  /// Emits a conversion when the value type differs from the target type.
  void emit_conversion(Type from, Type to);

  std::size_t emit(Op op, std::int32_t arg = 0, std::int32_t arg2 = 0);
  std::size_t emit_push_int(std::int64_t value);
  std::size_t emit_push_float(double value);
  /// Emits a jump with a placeholder target; patch later.
  std::size_t emit_jump(Op op);
  void patch_jump(std::size_t at);
  void patch_jump_to(std::size_t at, std::size_t target);

  Bytecode code_;
  std::vector<std::size_t> break_patches_;
  std::vector<std::size_t> continue_patches_;
  std::vector<std::size_t> break_frame_;     // break_patches_ size per loop
  std::vector<std::size_t> continue_frame_;  // continue_patches_ size per loop
  std::vector<std::size_t> continue_targets_;
};

}  // namespace dproc::ecode
