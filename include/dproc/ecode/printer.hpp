// E-code AST pretty-printer.
//
// Renders a parsed program back to canonical source. Used by tooling (the
// filter playground, the control-file `describe` path) and by the test
// suite's round-trip property: parse → print → parse must produce the same
// bytecode.
#pragma once

#include <string>

#include "dproc/ecode/ast.hpp"

namespace dproc::ecode {

/// Renders canonical source for a parsed (not necessarily analyzed) program.
[[nodiscard]] std::string to_source(const Program& program);

/// Renders a single expression (exposed for diagnostics and tests).
[[nodiscard]] std::string to_source(const Expr& expr);

}  // namespace dproc::ecode
