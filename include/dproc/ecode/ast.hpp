// E-code abstract syntax tree.
//
// One tagged node type per syntactic class keeps the parser, semantic
// analyzer, and bytecode compiler compact; semantic analysis annotates the
// nodes in place (types, local slots, resolved symbols).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dproc/ecode/source.hpp"

namespace dproc::ecode {

enum class Type : std::uint8_t { kUnknown, kInt, kDouble, kSample, kVoid };

[[nodiscard]] constexpr const char* to_string(Type type) {
  switch (type) {
    case Type::kUnknown: return "<unknown>";
    case Type::kInt: return "int";
    case Type::kDouble: return "double";
    case Type::kSample: return "sample";
    case Type::kVoid: return "void";
  }
  return "?";
}

enum class BinaryOp : std::uint8_t {
  kAdd, kSub, kMul, kDiv, kMod,
  kLt, kLe, kGt, kGe, kEq, kNe,
  kLogicalAnd, kLogicalOr,
  kBitAnd, kBitOr, kBitXor, kShl, kShr,
};

enum class UnaryOp : std::uint8_t { kNeg, kNot, kBitNot };

/// Which storage an identifier resolved to during semantic analysis.
enum class Resolution : std::uint8_t {
  kUnresolved,
  kLocal,       // declared variable; `slot` is the frame index
  kConstant,    // environment constant (LOADAVG, ...); `const_value` holds it
  kInputArray,  // the builtin `input`
  kOutputArray, // the builtin `output`
};

/// Fields of the builtin `sample` struct.
enum class SampleField : std::uint8_t { kValue, kLastValueSent, kId, kTimestamp };

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  enum class Kind : std::uint8_t {
    kIntLit,
    kFloatLit,
    kIdent,
    kUnary,
    kBinary,
    kAssign,    // a = b, or compound via `bin_op` when `compound` is true
    kTernary,   // a ? b : c
    kIndex,     // a[b]
    kField,     // a.field
    kIncDec,    // ++a, a++, --a, a--
    kCall,      // builtin(args...)
  };

  Kind kind;
  SourceLoc loc;

  std::int64_t int_value = 0;
  double float_value = 0.0;
  std::string name;  // identifier or field spelling

  UnaryOp unary_op{};
  BinaryOp bin_op{};
  bool compound = false;   // kAssign: compound assignment using bin_op
  bool prefix = false;     // kIncDec
  bool increment = false;  // kIncDec: ++ vs --

  ExprPtr a, b, c;
  std::vector<ExprPtr> args;  // kCall arguments

  // --- semantic annotations ---
  Type type = Type::kUnknown;
  Resolution resolution = Resolution::kUnresolved;
  int local_slot = -1;
  std::int64_t const_value = 0;
  SampleField field{};
  int builtin = -1;  // kCall: resolved builtin function index
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

struct Stmt {
  enum class Kind : std::uint8_t {
    kExpr,
    kVarDecl,
    kBlock,
    kIf,
    kFor,
    kWhile,
    kReturn,
    kBreak,
    kContinue,
  };

  Kind kind;
  SourceLoc loc;

  ExprPtr expr;        // kExpr, kReturn (optional), kVarDecl initializer
  Type decl_type{};    // kVarDecl
  std::string name;    // kVarDecl
  std::vector<StmtPtr> body;  // kBlock

  // kIf: expr=cond, then_branch, else_branch (optional)
  StmtPtr then_branch, else_branch;
  // kFor: init (optional stmt), expr=cond (optional), step (optional expr), loop_body
  StmtPtr init;
  ExprPtr step;
  StmtPtr loop_body;  // kFor, kWhile

  // --- semantic annotations ---
  int local_slot = -1;  // kVarDecl
};

/// A parsed filter: the brace-enclosed statement list of the paper's filter
/// syntax (Figure 3), or a bare statement list.
struct Program {
  std::vector<StmtPtr> statements;
  std::size_t local_slot_count = 0;  // filled by semantic analysis
};

}  // namespace dproc::ecode
