// Public facade of the E-code filter language.
//
// Usage, mirroring the paper's deployment path: an application writes filter
// source to a node's control file; d-mon ships the string over the control
// channel; the receiving d-mon compiles it with the monitoring-source
// constants bound (LOADAVG, FREEMEM, ...) and runs it before each
// publication.
//
//   ecode::CompileEnv env;
//   env.constants = {{"LOADAVG", 0}, {"FREEMEM", 1}};
//   auto filter = ecode::Filter::compile(source, env);
//   if (!filter) { /* report filter.status() back through the control file */ }
//   auto out = filter.value().run(samples);
#pragma once

#include <string>
#include <string_view>

#include "dproc/ecode/bytecode.hpp"
#include "dproc/ecode/sema.hpp"
#include "dproc/ecode/vm.hpp"
#include "dproc/util/status.hpp"

namespace dproc::ecode {

struct CompileOptions {
  /// Constant folding (on by default). Exposed for tooling and for the
  /// optimizer-equivalence property tests.
  bool fold_constants = true;
  /// Bytecode superinstruction fusion (on by default). Fuel-neutral: fused
  /// instructions carry the weight of the sequence they replace.
  bool peephole = true;
};

class Filter {
 public:
  /// Compiles filter source against the environment's constant bindings.
  /// Errors carry line:column diagnostics suitable for the control file.
  static Result<Filter> compile(std::string_view source,
                                const CompileEnv& env = {},
                                CompileOptions options = {});

  /// Runs the filter; `input[i]` is the sample for monitoring source i.
  [[nodiscard]] Result<FilterResult> run(std::span<const Sample> input,
                                         VmLimits limits = {}) const {
    return Vm{limits}.run(bytecode_, input);
  }

  /// Pooled evaluation: runs on a Vm leased from `pool` into the caller's
  /// reusable `result`. With a persistent pool and result this is the
  /// steady-state path for callers without their own long-lived Vm — zero
  /// heap allocations once the leased arenas and `result` have warmed up.
  Status run(VmPool& pool, std::span<const Sample> input,
             FilterResult& result) const {
    VmPool::Lease lease = pool.acquire();
    return lease.vm().run(bytecode_, input, result);
  }

  /// Fresh-call convenience at steady-state cost: leases a warm slot from
  /// `pool`, runs into the slot's pooled result arena, and hands back the
  /// lease so the caller reads outputs without owning a FilterResult. Once
  /// the slot has warmed up this performs zero heap allocations — the path
  /// callers should use where they previously paid the cold `run(input)`.
  [[nodiscard]] Result<VmPool::Lease> eval(VmPool& pool,
                                           std::span<const Sample> input) const {
    VmPool::Lease lease = pool.acquire();
    if (Status status = lease.vm().run(bytecode_, input, lease.result());
        !status) {
      return status;
    }
    return lease;
  }

  [[nodiscard]] const Bytecode& bytecode() const { return bytecode_; }
  [[nodiscard]] const std::string& source() const { return source_; }

 private:
  Filter(std::string source, Bytecode bytecode)
      : source_(std::move(source)), bytecode_(std::move(bytecode)) {}

  std::string source_;
  Bytecode bytecode_;
};

}  // namespace dproc::ecode
