// E-code lexer: source string → token stream.
#pragma once

#include <string_view>
#include <vector>

#include "dproc/ecode/token.hpp"
#include "dproc/util/status.hpp"

namespace dproc::ecode {

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  /// Tokenizes the whole input; the last token is always kEof. Returns an
  /// error Status carrying formatted diagnostics on invalid characters or
  /// malformed numbers.
  Result<std::vector<Token>> tokenize();

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= source_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const;
  char advance();
  bool match(char expected);
  void skip_whitespace_and_comments();
  Token lex_number();
  Token lex_identifier();

  std::string_view source_;
  std::size_t pos_ = 0;
  SourceLoc loc_;
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace dproc::ecode
