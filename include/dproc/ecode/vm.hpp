// E-code virtual machine.
//
// A fueled stack machine: every instruction consumes one unit of fuel, so a
// filter containing an endless loop cannot wedge the publishing kernel — a
// guarantee the paper's native-code generator would have needed too. Runtime
// errors (division by zero, out-of-range input index, fuel exhaustion)
// surface as Status and cause d-mon to fall back to unfiltered publication.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "dproc/ecode/bytecode.hpp"
#include "dproc/util/status.hpp"

namespace dproc::ecode {

/// The monitoring sample record filters operate on. Field names mirror the
/// paper's filter example (Figure 3): `value` is the current measurement,
/// `last_value_sent` the value most recently published to subscribers.
struct Sample {
  std::int64_t id = 0;
  double value = 0.0;
  double last_value_sent = 0.0;
  std::int64_t timestamp_ns = 0;

  friend bool operator==(const Sample&, const Sample&) = default;
};

struct VmLimits {
  std::uint64_t max_instructions = 1'000'000;
  std::int64_t max_output_index = 255;
};

struct FilterResult {
  /// Written output slots in ascending index order.
  std::vector<std::pair<std::int64_t, Sample>> outputs;
  std::optional<double> return_value;
  std::uint64_t instructions_executed = 0;
};

class Vm {
 public:
  explicit Vm(VmLimits limits = {}) : limits_(limits) {}

  /// Executes `code` against the input samples.
  Result<FilterResult> run(const Bytecode& code, std::span<const Sample> input);

 private:
  VmLimits limits_;
};

}  // namespace dproc::ecode
