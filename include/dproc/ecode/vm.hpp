// E-code virtual machine.
//
// A fueled stack machine: every instruction consumes one unit of fuel, so a
// filter containing an endless loop cannot wedge the publishing kernel — a
// guarantee the paper's native-code generator would have needed too. Runtime
// errors (division by zero, out-of-range input index, a sample operand in a
// numeric context, fuel exhaustion) surface as Status and cause d-mon to
// fall back to unfiltered publication.
//
// The VM is built for steady-state speed: the operand stack, the locals
// frame and the output slots are reusable per-Vm scratch arenas, so a d-mon
// evaluating the same filter once per polling period performs zero heap
// allocations after the first (warm-up) run. Outputs live in a flat dense
// array indexed by slot (bounded by VmLimits::max_output_index) instead of
// an ordered map; a small touched-list remembers which slots were written
// so clearing between runs is O(written), not O(max_output_index). Fuel is
// accounted per instruction (superinstructions emitted by the bytecode
// peephole pass carry the weight of the sequence they replaced, keeping
// instructions_executed identical to unoptimized execution) but the limit
// is only *checked* at control-flow edges — straight-line code cannot loop,
// so checking at jumps and returns bounds execution all the same.
//
// Dispatch tiers: the interpreter body lives once in vm_dispatch.inc and is
// compiled twice — as the portable switch loop (the reference interpreter)
// and, when the build has DPROC_VM_THREADED and a compiler with GNU
// labels-as-values, as a computed-goto threaded loop whose per-handler
// indirect branches predict far better than the switch's single one. Both
// tiers execute identical semantics (the differential fuzz harness pins
// outputs, status and fuel); set_dispatch() selects at run time.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "dproc/ecode/bytecode.hpp"
#include "dproc/util/status.hpp"

namespace dproc::ecode {

/// The monitoring sample record filters operate on. Field names mirror the
/// paper's filter example (Figure 3): `value` is the current measurement,
/// `last_value_sent` the value most recently published to subscribers.
struct Sample {
  std::int64_t id = 0;
  double value = 0.0;
  double last_value_sent = 0.0;
  std::int64_t timestamp_ns = 0;

  friend bool operator==(const Sample&, const Sample&) = default;
};

struct VmLimits {
  /// Hard ceiling on max_instructions. The fuel counter is only checked at
  /// control-flow edges, so a limit near 2^64 would make out_of_fuel()
  /// effectively unreachable; the Vm constructor clamps to this bound and
  /// the control-file path (`fuel <n>`) rejects larger requests outright.
  static constexpr std::uint64_t kMaxInstructionLimit = 1'000'000'000;

  std::uint64_t max_instructions = 1'000'000;
  std::int64_t max_output_index = 255;
};

struct FilterResult {
  /// Written output slots in ascending index order.
  std::vector<std::pair<std::int64_t, Sample>> outputs;
  std::optional<double> return_value;
  std::uint64_t instructions_executed = 0;
};

/// Embedder-provided sketch state the kCallSketch builtins operate on: a
/// primary heavy-hitter sketch (rank-indexed top-k plus count-min lookups)
/// and zero or more auxiliary sketches that can be merged into it. The
/// concrete implementation lives in core/sketch (FilterSketchBridge); the
/// VM sees only this interface so the ecode layer stays core-free.
class SketchHost {
 public:
  virtual ~SketchHost() = default;

  /// Estimated count of the rank-th heaviest key (0 = heaviest); 0.0 when
  /// fewer than rank+1 keys are tracked.
  [[nodiscard]] virtual double topk_count(std::int64_t rank) const = 0;
  /// Key of the rank-th heaviest entry; -1.0 when absent.
  [[nodiscard]] virtual double topk_key(std::int64_t rank) const = 0;
  /// Count-min estimate for an arbitrary key (never under the true count).
  [[nodiscard]] virtual double cm_estimate(std::int64_t key) const = 0;
  /// Merges auxiliary sketch `index` into the primary; returns the number
  /// of heavy-hitter entries folded in, or -1.0 when `index` is unknown.
  virtual double merge_aux(std::int64_t index) = 0;
};

/// Run-time interpreter selection. kAuto picks the threaded tier when the
/// build carries it and falls back to the switch loop otherwise; kSwitch
/// forces the reference interpreter (differential testing, debugging).
enum class VmDispatch : std::uint8_t { kAuto, kSwitch, kThreaded };

class Vm {
 public:
  explicit Vm(VmLimits limits = {}) : limits_(limits) {
    limits_.max_instructions =
        std::min(limits_.max_instructions, VmLimits::kMaxInstructionLimit);
  }

  /// Executes `code` against the input samples into a fresh result.
  Result<FilterResult> run(const Bytecode& code, std::span<const Sample> input);

  /// Steady-state entry point: executes `code` and fills `result`, reusing
  /// the VM's scratch arenas and the capacity already held by `result`.
  /// After one warm-up run of the same program this allocates nothing.
  Status run(const Bytecode& code, std::span<const Sample> input,
             FilterResult& result);

  /// True when this build carries the computed-goto interpreter.
  [[nodiscard]] static bool threaded_available();

  /// Selects the dispatch tier for subsequent run() calls. Requesting
  /// kThreaded in a build without it silently runs the switch loop — the
  /// two tiers are semantically identical by contract.
  void set_dispatch(VmDispatch dispatch) { dispatch_ = dispatch; }
  [[nodiscard]] VmDispatch dispatch() const { return dispatch_; }

  /// Binds the sketch state the kCallSketch builtins read; nullptr (the
  /// default) makes any sketch builtin a runtime error. Not owned.
  void set_sketch_host(SketchHost* host) { sketch_ = host; }
  [[nodiscard]] SketchHost* sketch_host() const { return sketch_; }

  /// Effective limits (after the constructor's max_instructions clamp).
  [[nodiscard]] const VmLimits& limits() const { return limits_; }

 private:
  /// Compact tagged runtime value: an int, a double, or a sample. The
  /// payload is a union, so an int-valued entry no longer drags a full
  /// Sample through every stack push.
  struct Value {
    enum class Kind : std::uint8_t { kInt, kDouble, kSample };
    // Sample's default constructor is non-trivial, so the union (and with
    // it Value) needs an explicit default constructor. All members are
    // trivially copyable, so Value still copies as raw bytes.
    Value() : kind(Kind::kInt), i(0) {}
    Kind kind;
    union {
      std::int64_t i;
      double d;
      Sample s;
    };
  };

  /// The interpreter body (vm_dispatch.inc), compiled per dispatch tier.
  Status run_switch(const Bytecode& code, std::span<const Sample> input,
                    FilterResult& result);
  Status run_threaded(const Bytecode& code, std::span<const Sample> input,
                      FilterResult& result);

  /// Grows the dense output arrays to cover `idx` (cold path).
  void ensure_output_slot(std::size_t idx);

  VmLimits limits_;
  VmDispatch dispatch_ = VmDispatch::kAuto;
  SketchHost* sketch_ = nullptr;

  // Scratch arenas, reused across runs.
  std::vector<Value> stack_;
  std::vector<Value> locals_;
  std::vector<Sample> out_samples_;       // dense, indexed by output slot
  std::vector<std::uint8_t> out_written_; // parallel written flags
  std::vector<std::int32_t> out_touched_; // slots written this run, any order
};

/// A freelist of warm Vm instances — one pool per channel. The
/// compatibility path (`Filter::run(input)`) constructs a cold Vm per
/// evaluation, paying fresh scratch-arena growth on every call (~4x the
/// steady-state latency, ~14 allocations per run); a Vm leased from the
/// pool keeps the arenas its earlier runs sized, so pooled evaluation
/// allocates nothing once every lease slot has warmed up. Each pool slot
/// also carries a warm FilterResult, so the fresh-call convenience path
/// (Filter::eval) runs at steady-state cost without a caller-owned result.
/// Leases are RAII: the slot returns to the freelist when the handle dies,
/// and concurrent leases (nested filter evaluation) simply grow the pool.
class VmPool {
 public:
  explicit VmPool(VmLimits limits = {}) : limits_(limits) {}
  VmPool(const VmPool&) = delete;
  VmPool& operator=(const VmPool&) = delete;

  /// One warm Vm + FilterResult pair owned by the pool.
  struct Slot {
    std::unique_ptr<Vm> vm;
    std::unique_ptr<FilterResult> result;
  };

  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), slot_(std::move(other.slot_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    ~Lease() {
      if (pool_ != nullptr) pool_->release(std::move(slot_));
    }
    [[nodiscard]] Vm& vm() { return *slot_.vm; }
    /// The slot's pooled result arena (Filter::eval runs into this).
    [[nodiscard]] FilterResult& result() { return *slot_.result; }
    [[nodiscard]] const FilterResult& result() const { return *slot_.result; }

   private:
    friend class VmPool;
    Lease(VmPool* pool, Slot slot) : pool_(pool), slot_(std::move(slot)) {}
    VmPool* pool_;
    Slot slot_;
  };

  /// Leases a warm slot (or creates one on first use / under nesting).
  [[nodiscard]] Lease acquire() {
    if (free_.empty()) {
      ++created_;
      return Lease{this, Slot{std::make_unique<Vm>(limits_),
                              std::make_unique<FilterResult>()}};
    }
    Slot slot = std::move(free_.back());
    free_.pop_back();
    return Lease{this, std::move(slot)};
  }

  /// Vms ever constructed by this pool (1 in the steady state of one
  /// channel evaluating one filter per period).
  [[nodiscard]] std::size_t created() const { return created_; }
  [[nodiscard]] std::size_t idle() const { return free_.size(); }

 private:
  void release(Slot slot) { free_.push_back(std::move(slot)); }

  VmLimits limits_;
  std::vector<Slot> free_;
  std::size_t created_ = 0;
};

}  // namespace dproc::ecode
