// E-code virtual machine.
//
// A fueled stack machine: every instruction consumes one unit of fuel, so a
// filter containing an endless loop cannot wedge the publishing kernel — a
// guarantee the paper's native-code generator would have needed too. Runtime
// errors (division by zero, out-of-range input index, fuel exhaustion)
// surface as Status and cause d-mon to fall back to unfiltered publication.
//
// The VM is built for steady-state speed: the operand stack, the locals
// frame and the output slots are reusable per-Vm scratch arenas, so a d-mon
// evaluating the same filter once per polling period performs zero heap
// allocations after the first (warm-up) run. Outputs live in a flat dense
// array indexed by slot (bounded by VmLimits::max_output_index) instead of
// an ordered map; a small touched-list remembers which slots were written
// so clearing between runs is O(written), not O(max_output_index). Fuel is
// accounted per instruction (superinstructions emitted by the bytecode
// peephole pass carry the weight of the sequence they replaced, keeping
// instructions_executed identical to unoptimized execution) but the limit
// is only *checked* at control-flow edges — straight-line code cannot loop,
// so checking at jumps and returns bounds execution all the same.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "dproc/ecode/bytecode.hpp"
#include "dproc/util/status.hpp"

namespace dproc::ecode {

/// The monitoring sample record filters operate on. Field names mirror the
/// paper's filter example (Figure 3): `value` is the current measurement,
/// `last_value_sent` the value most recently published to subscribers.
struct Sample {
  std::int64_t id = 0;
  double value = 0.0;
  double last_value_sent = 0.0;
  std::int64_t timestamp_ns = 0;

  friend bool operator==(const Sample&, const Sample&) = default;
};

struct VmLimits {
  std::uint64_t max_instructions = 1'000'000;
  std::int64_t max_output_index = 255;
};

struct FilterResult {
  /// Written output slots in ascending index order.
  std::vector<std::pair<std::int64_t, Sample>> outputs;
  std::optional<double> return_value;
  std::uint64_t instructions_executed = 0;
};

class Vm {
 public:
  explicit Vm(VmLimits limits = {}) : limits_(limits) {}

  /// Executes `code` against the input samples into a fresh result.
  Result<FilterResult> run(const Bytecode& code, std::span<const Sample> input);

  /// Steady-state entry point: executes `code` and fills `result`, reusing
  /// the VM's scratch arenas and the capacity already held by `result`.
  /// After one warm-up run of the same program this allocates nothing.
  Status run(const Bytecode& code, std::span<const Sample> input,
             FilterResult& result);

 private:
  /// Compact tagged runtime value: an int, a double, or a sample. The
  /// payload is a union, so an int-valued entry no longer drags a full
  /// Sample through every stack push.
  struct Value {
    enum class Kind : std::uint8_t { kInt, kDouble, kSample };
    // Sample's default constructor is non-trivial, so the union (and with
    // it Value) needs an explicit default constructor. All members are
    // trivially copyable, so Value still copies as raw bytes.
    Value() : kind(Kind::kInt), i(0) {}
    Kind kind;
    union {
      std::int64_t i;
      double d;
      Sample s;
    };
  };

  /// Grows the dense output arrays to cover `idx` (cold path).
  void ensure_output_slot(std::size_t idx);

  VmLimits limits_;

  // Scratch arenas, reused across runs.
  std::vector<Value> stack_;
  std::vector<Value> locals_;
  std::vector<Sample> out_samples_;       // dense, indexed by output slot
  std::vector<std::uint8_t> out_written_; // parallel written flags
  std::vector<std::int32_t> out_touched_; // slots written this run, any order
};

/// A freelist of warm Vm instances — one pool per channel. The
/// compatibility path (`Filter::run(input)`) constructs a cold Vm per
/// evaluation, paying fresh scratch-arena growth on every call (~4x the
/// steady-state latency, ~14 allocations per run); a Vm leased from the
/// pool keeps the arenas its earlier runs sized, so pooled evaluation
/// allocates nothing once every lease slot has warmed up. Leases are RAII:
/// the Vm returns to the freelist when the handle dies, and concurrent
/// leases (nested filter evaluation) simply grow the pool.
class VmPool {
 public:
  explicit VmPool(VmLimits limits = {}) : limits_(limits) {}
  VmPool(const VmPool&) = delete;
  VmPool& operator=(const VmPool&) = delete;

  class Lease {
   public:
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), vm_(std::move(other.vm_)) {
      other.pool_ = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    ~Lease() {
      if (pool_ != nullptr) pool_->release(std::move(vm_));
    }
    [[nodiscard]] Vm& vm() { return *vm_; }

   private:
    friend class VmPool;
    Lease(VmPool* pool, std::unique_ptr<Vm> vm)
        : pool_(pool), vm_(std::move(vm)) {}
    VmPool* pool_;
    std::unique_ptr<Vm> vm_;
  };

  /// Leases a warm Vm (or creates one on first use / under nesting).
  [[nodiscard]] Lease acquire() {
    if (free_.empty()) {
      ++created_;
      return Lease{this, std::make_unique<Vm>(limits_)};
    }
    std::unique_ptr<Vm> vm = std::move(free_.back());
    free_.pop_back();
    return Lease{this, std::move(vm)};
  }

  /// Vms ever constructed by this pool (1 in the steady state of one
  /// channel evaluating one filter per period).
  [[nodiscard]] std::size_t created() const { return created_; }
  [[nodiscard]] std::size_t idle() const { return free_.size(); }

 private:
  void release(std::unique_ptr<Vm> vm) { free_.push_back(std::move(vm)); }

  VmLimits limits_;
  std::vector<std::unique_ptr<Vm>> free_;
  std::size_t created_ = 0;
};

}  // namespace dproc::ecode
