// E-code semantic analysis: name resolution, type checking, slot layout.
//
// Identifiers resolve against three namespaces, in order: declared locals,
// the builtin arrays `input`/`output`, and the embedding environment's
// integer constants (the monitoring-source indices like LOADAVG that d-mon
// binds when it installs a filter). `input` is read-only; `output` and its
// fields are assignable.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dproc/ecode/ast.hpp"
#include "dproc/util/status.hpp"

namespace dproc::ecode {

/// Compile-time bindings supplied by the embedder.
struct CompileEnv {
  std::map<std::string, std::int64_t> constants;
  /// Accept the sketch builtins (topk/topkid/cmlookup/skmerge). Off by
  /// default: a filter using them is rejected at compile time unless the
  /// embedder has sketch state to bind (Vm::set_sketch_host), so the error
  /// surfaces in the control file instead of at evaluation time.
  bool sketch_builtins = false;
};

/// Builtin math functions callable from filters.
struct BuiltinFn {
  const char* name;
  int arity;
  /// Reads embedder sketch state (compiles to kCallSketch, never folded).
  bool sketch = false;
};

/// Index into this table is the id stored in Expr::builtin.
[[nodiscard]] const std::vector<BuiltinFn>& builtin_functions();
[[nodiscard]] int find_builtin(const std::string& name);

/// First sketch entry in builtin_functions(); kCallSketch's arg is the
/// builtin id minus this base.
inline constexpr int kSketchBuiltinBase = 6;

class Sema {
 public:
  explicit Sema(const CompileEnv& env) : env_(env) {}

  /// Annotates the program in place; returns diagnostics on type or name
  /// errors. On success, program.local_slot_count is set.
  Status analyze(Program& program);

 private:
  void check_stmt(Stmt& stmt);
  /// Returns the expression's type; annotates the node.
  Type check_expr(Expr& expr);
  Type check_assign(Expr& expr);
  /// Validates that `expr` is assignable; returns its type.
  Type check_lvalue(Expr& expr);
  Type check_index(Expr& expr);
  Type check_call(Expr& expr);
  Type check_field(Expr& expr);
  void resolve_ident(Expr& expr);

  [[nodiscard]] static bool is_numeric(Type type) {
    return type == Type::kInt || type == Type::kDouble;
  }
  [[nodiscard]] static Type unify_numeric(Type a, Type b) {
    return (a == Type::kDouble || b == Type::kDouble) ? Type::kDouble : Type::kInt;
  }

  void error(SourceLoc loc, std::string message) {
    diagnostics_.push_back({loc, std::move(message)});
  }

  void push_scope();
  void pop_scope();
  int declare(const std::string& name, Type type, SourceLoc loc);

  struct Local {
    std::string name;
    Type type;
    int slot;
  };

  const CompileEnv& env_;
  std::vector<std::vector<Local>> scopes_;
  int next_slot_ = 0;
  int loop_depth_ = 0;
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace dproc::ecode
