// Simulated-time representation shared by every dproc module.
//
// The simulator runs on a virtual clock with nanosecond resolution. A strong
// type (rather than a bare int64) keeps wall-clock durations, simulated
// durations, and byte counts from being mixed up at call sites.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace dproc {

/// A point in simulated time, in nanoseconds since simulation start.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;

 private:
  std::int64_t ns_ = 0;
};

/// A span of simulated time, in nanoseconds.
class SimDuration {
 public:
  constexpr SimDuration() = default;
  constexpr explicit SimDuration(std::int64_t ns) : ns_(ns) {}

  static constexpr SimDuration zero() { return SimDuration{0}; }

  [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
  [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimDuration&) const = default;

  constexpr SimDuration& operator+=(SimDuration d) { ns_ += d.ns_; return *this; }
  constexpr SimDuration& operator-=(SimDuration d) { ns_ -= d.ns_; return *this; }

 private:
  std::int64_t ns_ = 0;
};

constexpr SimDuration nanoseconds(std::int64_t v) { return SimDuration{v}; }
constexpr SimDuration microseconds(double v) {
  return SimDuration{static_cast<std::int64_t>(v * 1e3)};
}
constexpr SimDuration milliseconds(double v) {
  return SimDuration{static_cast<std::int64_t>(v * 1e6)};
}
constexpr SimDuration seconds(double v) {
  return SimDuration{static_cast<std::int64_t>(v * 1e9)};
}

constexpr SimTime operator+(SimTime t, SimDuration d) { return SimTime{t.ns() + d.ns()}; }
constexpr SimTime operator-(SimTime t, SimDuration d) { return SimTime{t.ns() - d.ns()}; }
constexpr SimDuration operator-(SimTime a, SimTime b) { return SimDuration{a.ns() - b.ns()}; }
constexpr SimDuration operator+(SimDuration a, SimDuration b) {
  return SimDuration{a.ns() + b.ns()};
}
constexpr SimDuration operator-(SimDuration a, SimDuration b) {
  return SimDuration{a.ns() - b.ns()};
}
constexpr SimDuration operator*(SimDuration d, double k) {
  return SimDuration{static_cast<std::int64_t>(static_cast<double>(d.ns()) * k)};
}
constexpr SimDuration operator*(double k, SimDuration d) { return d * k; }
constexpr SimDuration operator/(SimDuration d, double k) {
  return SimDuration{static_cast<std::int64_t>(static_cast<double>(d.ns()) / k)};
}
constexpr double operator/(SimDuration a, SimDuration b) {
  return static_cast<double>(a.ns()) / static_cast<double>(b.ns());
}

/// Renders "12.345ms" style strings for logs and bench tables.
std::string to_string(SimDuration d);
std::string to_string(SimTime t);

}  // namespace dproc
