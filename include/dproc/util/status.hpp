// Minimal status/result types for recoverable errors.
//
// Procfs writes, E-code compilation, and control-message parsing all fail on
// user input; those paths return Status / Result<T> instead of throwing so
// the error text can be surfaced through the pseudo-file interface the way
// a real kernel returns errno + dmesg diagnostics.
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace dproc {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kFailedPrecondition,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
};

[[nodiscard]] constexpr const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return {}; }
  static Status invalid_argument(std::string m) {
    return {StatusCode::kInvalidArgument, std::move(m)};
  }
  static Status not_found(std::string m) {
    return {StatusCode::kNotFound, std::move(m)};
  }
  static Status already_exists(std::string m) {
    return {StatusCode::kAlreadyExists, std::move(m)};
  }
  static Status failed_precondition(std::string m) {
    return {StatusCode::kFailedPrecondition, std::move(m)};
  }
  static Status internal(std::string m) {
    return {StatusCode::kInternal, std::move(m)};
  }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  [[nodiscard]] std::string to_string() const {
    return is_ok() ? "OK" : std::string{dproc::to_string(code_)} + ": " + message_;
  }

  explicit operator bool() const { return is_ok(); }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or an error Status. value() throws on error access so
/// misuse fails loudly in tests.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : state_(std::move(status)) {  // NOLINT
    if (std::get<Status>(state_).is_ok()) {
      throw std::logic_error{"Result constructed from OK status without value"};
    }
  }

  [[nodiscard]] bool is_ok() const { return std::holds_alternative<T>(state_); }
  explicit operator bool() const { return is_ok(); }

  [[nodiscard]] const T& value() const& {
    if (!is_ok()) throw std::logic_error{"Result::value on error: " + status().to_string()};
    return std::get<T>(state_);
  }
  [[nodiscard]] T&& value() && {
    if (!is_ok()) throw std::logic_error{"Result::value on error: " + status().to_string()};
    return std::get<T>(std::move(state_));
  }

  [[nodiscard]] Status status() const {
    return is_ok() ? Status::ok() : std::get<Status>(state_);
  }

  [[nodiscard]] std::optional<T> ok_or_nullopt() const {
    if (is_ok()) return std::get<T>(state_);
    return std::nullopt;
  }

 private:
  std::variant<T, Status> state_;
};

}  // namespace dproc
