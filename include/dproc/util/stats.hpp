// Streaming statistics used by monitoring modules and benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dproc {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class StreamingStats {
 public:
  void add(double x);
  void reset();

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Retains samples for exact quantiles; intended for bench-sized data sets.
/// The lazy sort is a mutable cache, so read-only snapshot paths (telemetry,
/// procfs renders) can query quantiles through a `const SampleSet&`.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { samples_.reserve(n); }
  void clear() { samples_.clear(); sorted_ = false; }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  /// Linear-interpolated quantile; q in [0, 1]. Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double max() const { return quantile(1.0); }

 private:
  mutable std::vector<double> samples_;  // sorted in place on first quantile
  mutable bool sorted_ = false;
};

/// Exponentially weighted moving average, the smoothing the NET_MON module
/// applies to round-trip time samples (same recurrence TCP uses for SRTT).
class Ewma {
 public:
  explicit Ewma(double alpha = 0.125) : alpha_(alpha) {}

  void add(double x) {
    value_ = seeded_ ? (1.0 - alpha_) * value_ + alpha_ * x : x;
    seeded_ = true;
  }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool seeded() const { return seeded_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Fixed-width histogram for distribution summaries in bench output.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// One-line summary like "[lo,hi) n=... |▁▂▅█...|" for logs.
  [[nodiscard]] std::string summary() const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace dproc
