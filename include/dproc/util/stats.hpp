// Streaming statistics used by monitoring modules and benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace dproc {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class StreamingStats {
 public:
  void add(double x);
  void reset();

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Quantile sketch backed by a fixed log-linear histogram (HdrHistogram
/// style): each power-of-two octave is split into kSubBuckets linear
/// sub-buckets, so record is O(1), memory is bounded (~2 KB, allocated on
/// the first add), and two sets merge by adding bucket counts — the shape
/// zone roll-ups need. min/max/sum are tracked exactly, so quantile(0),
/// quantile(1) and mean() are exact; interior quantiles interpolate inside
/// one sub-bucket (<= ~9% relative width, typically much closer). Values
/// at or below zero land in the lowest bucket and are reported as min().
class SampleSet {
 public:
  void add(double x);
  /// Pre-allocates the bucket table so later add() calls never allocate.
  void reserve(std::size_t n);
  void clear();
  /// Folds `other` into this set (bucket-count addition; exact min/max/sum
  /// merge). The histogram geometry is a compile-time constant, so any two
  /// SampleSets — including ones from different hosts — are mergeable.
  void merge(const SampleSet& other);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double sum() const { return sum_; }
  /// Interpolated quantile; q in [0, 1]. Returns 0 when empty; exact at
  /// the extremes, sub-bucket interpolated in between.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }

 private:
  // 8 sub-buckets per octave over octaves [2^-25, 2^39): covers tens of
  // nanoseconds-as-fractional-us up to ~5.5e11 with out-of-range values
  // clamped to the edge buckets (min/max stay exact regardless).
  static constexpr int kSubBuckets = 8;
  static constexpr int kMinExp = -25;
  static constexpr int kMaxExp = 39;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSubBuckets;

  [[nodiscard]] static std::size_t bucket_of(double v);
  [[nodiscard]] static double bucket_lo(std::size_t b);
  [[nodiscard]] static double bucket_hi(std::size_t b);

  std::vector<std::uint32_t> counts_;  // kBuckets entries once allocated
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponentially weighted moving average, the smoothing the NET_MON module
/// applies to round-trip time samples (same recurrence TCP uses for SRTT).
class Ewma {
 public:
  explicit Ewma(double alpha = 0.125) : alpha_(alpha) {}

  void add(double x) {
    value_ = seeded_ ? (1.0 - alpha_) * value_ + alpha_ * x : x;
    seeded_ = true;
  }
  [[nodiscard]] double value() const { return value_; }
  [[nodiscard]] bool seeded() const { return seeded_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Fixed-width histogram for distribution summaries in bench output.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x);
  [[nodiscard]] std::size_t bucket_count() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// One-line summary like "[lo,hi) n=... |▁▂▅█...|" for logs.
  [[nodiscard]] std::string summary() const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace dproc
