// Fixed-capacity ring buffer.
//
// Used for bounded monitoring-sample history (MAGNeT-style circular record
// buffers) and for per-connection RTT sample windows in NET_MON.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

namespace dproc {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : items_(capacity) {
    if (capacity == 0) throw std::invalid_argument{"RingBuffer capacity must be > 0"};
  }

  /// Appends an item, overwriting the oldest when full.
  void push(T item) {
    items_[(head_ + size_) % items_.size()] = std::move(item);
    if (size_ == items_.size()) {
      head_ = (head_ + 1) % items_.size();
    } else {
      ++size_;
    }
  }

  /// Element i counted from the oldest retained item (0 == oldest).
  [[nodiscard]] const T& at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range{"RingBuffer::at"};
    return items_[(head_ + i) % items_.size()];
  }

  [[nodiscard]] const T& front() const { return at(0); }
  [[nodiscard]] const T& back() const { return at(size_ - 1); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t capacity() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == items_.size(); }

  void clear() { head_ = 0; size_ = 0; }

  /// Visits items oldest-to-newest.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < size_; ++i) fn(at(i));
  }

 private:
  std::vector<T> items_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dproc
