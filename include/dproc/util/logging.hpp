// Leveled logging with a simulated-time-aware prefix.
//
// The simulator is single-threaded by design (a discrete-event loop), so the
// logger favors simplicity over lock-free cleverness; a mutex still guards
// the sink because examples may log from helper threads.
#pragma once

#include <atomic>
#include <functional>
#include <sstream>
#include <string>

#include "dproc/util/time.hpp"

namespace dproc {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

[[nodiscard]] const char* to_string(LogLevel level);

class Logger {
 public:
  using Sink = std::function<void(LogLevel, const std::string&)>;

  static Logger& instance();

  // The level is read by enabled() on every DPROC_LOG call site, possibly
  // from helper threads, while set_level() may run concurrently; a relaxed
  // atomic makes that race benign (no ordering is needed — a slightly stale
  // level only delays the filter change by one message).
  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled(LogLevel level) const {
    return level >= level_.load(std::memory_order_relaxed);
  }

  /// Replaces the output sink (default: stderr). Tests install capture sinks.
  /// Guarded by the sink mutex, like every sink_ use.
  void set_sink(Sink sink);

  /// Clock hook so log lines carry simulated time when a sim is running.
  /// Guarded by the sink mutex, like every time_source_ use in log().
  void set_time_source(std::function<SimTime()> source);

  void log(LogLevel level, const std::string& message);

 private:
  Logger();
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  Sink sink_;
  std::function<SimTime()> time_source_;
};

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Logger::instance().log(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace dproc

#define DPROC_LOG(level)                                      \
  if (!::dproc::Logger::instance().enabled(level)) {          \
  } else                                                      \
    ::dproc::detail::LogLine { level }

#define DPROC_TRACE() DPROC_LOG(::dproc::LogLevel::kTrace)
#define DPROC_DEBUG() DPROC_LOG(::dproc::LogLevel::kDebug)
#define DPROC_INFO() DPROC_LOG(::dproc::LogLevel::kInfo)
#define DPROC_WARN() DPROC_LOG(::dproc::LogLevel::kWarn)
#define DPROC_ERROR() DPROC_LOG(::dproc::LogLevel::kError)
