// Deterministic random number generation.
//
// Every stochastic element of the simulation (event sizes, jitter, packet
// loss) draws from an explicitly seeded generator so two runs with the same
// seed produce bitwise-identical traces. xoshiro256** is used instead of
// std::mt19937 because its state is small, seeding is well-defined across
// standard library implementations, and splitting substreams is cheap.
#pragma once

#include <cstdint>
#include <array>

namespace dproc {

/// splitmix64: used to expand a single seed into generator state.
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5eed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  constexpr std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    // Modulo bias is < 2^-40 for the spans used here (< 2^24); acceptable
    // for a simulator and keeps the generator branch-free and constexpr.
    return lo + static_cast<std::int64_t>((*this)() % span);
  }

  /// True with probability p.
  constexpr bool bernoulli(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Derives an independent substream; used to give each simulated host its
  /// own generator while staying reproducible from one master seed.
  constexpr Rng split() {
    return Rng{(*this)() ^ 0x9e3779b97f4a7c15ULL};
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace dproc
