// Q-Fabric-style QoS management driven by dproc monitoring.
//
// The paper closes by situating dproc inside the Q-Fabric project: "the
// monitoring results delivered by dproc can be used by QoS management
// mechanisms to optimally allocate resources to applications and to
// integrate application adaptation with resource management." This module
// is that consumer: applications register CPU-share reservations for their
// tasks; a feedback controller measures achieved shares each epoch and
// adjusts scheduler weights to converge on the targets; when the admitted
// reservations cannot all be met the manager notifies the application so it
// can adapt (the SmartPointer-style response) instead of silently thrashing.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "dproc/host/host.hpp"
#include "dproc/sim/engine.hpp"
#include "dproc/util/status.hpp"

namespace dproc::qos {

struct ReservationConfig {
  /// Fraction of the CPU this task should receive while runnable, (0, 1].
  double cpu_share = 0.1;
  /// Called when the controller detects the reservation cannot be met
  /// (admission was optimistic or kernel load grew). The application can
  /// shed work; the manager keeps trying either way.
  std::function<void(double achieved_share)> on_violation;
};

struct ReservationStatus {
  double target_share = 0.0;
  double achieved_share = 0.0;  // over the last epoch
  double weight = 1.0;
  std::uint64_t violations = 0;
};

struct QosManagerConfig {
  SimDuration epoch = seconds(1.0);
  /// Proportional gain of the weight controller.
  double gain = 4.0;
  double min_weight = 0.05;
  double max_weight = 64.0;
  /// A reservation is violated when achieved < tolerance * target.
  double violation_tolerance = 0.85;
  /// Admission ceiling: sum of shares accepted (leave room for best-effort).
  double admission_limit = 0.9;
};

class Manager {
 public:
  Manager(host::Host& host, QosManagerConfig config = {});
  ~Manager();
  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  /// Admits a reservation for an existing CPU task. Fails (leaving the task
  /// best-effort) when the admission limit would be exceeded.
  Status reserve(host::TaskId task, ReservationConfig config);

  /// Drops a reservation; the task returns to weight 1 (best effort).
  void release(host::TaskId task);

  [[nodiscard]] const ReservationStatus* status(host::TaskId task) const;
  [[nodiscard]] double admitted_share() const { return admitted_share_; }
  [[nodiscard]] std::size_t reservation_count() const {
    return reservations_.size();
  }

  /// Renders the table for a /proc/qos pseudo-file.
  [[nodiscard]] std::string describe() const;

 private:
  struct Reservation {
    ReservationConfig config;
    ReservationStatus status;
    SimDuration last_cpu_time{0};
    bool seeded = false;
  };

  void epoch_tick();

  host::Host& host_;
  QosManagerConfig config_;
  std::map<host::TaskId, Reservation> reservations_;
  double admitted_share_ = 0.0;
  SimTime last_epoch_at_;
  sim::EventHandle epoch_timer_;
};

}  // namespace dproc::qos
