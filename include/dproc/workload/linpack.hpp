// Synthetic linpack: a CPU-bound floating-point benchmark task.
//
// The paper uses linpack both as the measurement probe for Figure 4 (how
// many Mflops survive dproc's monitoring overhead) and as the artificial
// load for the Figure 9/11 client experiments. Here a linpack thread is a
// compute-sink task on the host CPU model; achieved Mflops is the CPU share
// it received times the machine's peak rate. The task also feeds the PMC
// model: flops and cache misses accrue in proportion to work done.
#pragma once

#include <memory>
#include <string>

#include "dproc/host/host.hpp"
#include "dproc/sim/engine.hpp"
#include "dproc/util/time.hpp"

namespace dproc::workload {

class LinpackTask {
 public:
  /// Starts a linpack thread on `host`; runs until destruction.
  LinpackTask(host::Host& host, std::string name = "linpack");
  ~LinpackTask();
  LinpackTask(const LinpackTask&) = delete;
  LinpackTask& operator=(const LinpackTask&) = delete;

  /// Achieved Mflops since the task started.
  [[nodiscard]] double mflops();

  /// Achieved Mflops since the previous checkpoint() call.
  [[nodiscard]] double mflops_since_checkpoint();
  void checkpoint();

 private:
  void sync_pmc();

  host::Host& host_;
  host::TaskId task_;
  SimTime started_;
  SimTime checkpoint_time_;
  SimDuration checkpoint_cpu_{0};
  double pmc_flops_accounted_ = 0.0;
  sim::EventHandle pmc_timer_;
};

/// Holds a memory reservation and optionally grows it over time — drives
/// MEM_MON's freemem metric (the paper's batch-scheduler §3 example needs
/// observable memory pressure).
class MemoryHog {
 public:
  /// Reserves `initial_bytes`; every `grow_interval` adds `grow_bytes`
  /// until the allocation fails (then it stops growing).
  MemoryHog(host::Host& host, std::uint64_t initial_bytes,
            std::uint64_t grow_bytes = 0,
            SimDuration grow_interval = seconds(1.0));
  ~MemoryHog();
  MemoryHog(const MemoryHog&) = delete;
  MemoryHog& operator=(const MemoryHog&) = delete;

  [[nodiscard]] std::uint64_t held_bytes() const { return held_; }

 private:
  host::Host& host_;
  std::uint64_t held_ = 0;
  sim::EventHandle grow_timer_;
};

}  // namespace dproc::workload
