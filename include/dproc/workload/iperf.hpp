// Synthetic Iperf: a constant-rate UDP datagram flood plus a receiver that
// measures goodput. Used two ways, matching the paper: as the bandwidth
// probe for Figure 5 (how much of the 100 Mbps survives dproc's monitoring
// traffic) and as the perturbation source for Figures 10 and 11.
#pragma once

#include <cstdint>

#include "dproc/net/nic.hpp"
#include "dproc/sim/engine.hpp"
#include "dproc/util/time.hpp"

namespace dproc::workload {

struct IperfConfig {
  double rate_bps = 90e6;
  std::uint32_t datagram_bytes = 1470;  // iperf's classic UDP default
  net::Port port = 5001;
};

/// Paced UDP sender.
class IperfSender {
 public:
  IperfSender(net::Nic& nic, net::NodeId dst, IperfConfig config);
  ~IperfSender();
  IperfSender(const IperfSender&) = delete;
  IperfSender& operator=(const IperfSender&) = delete;

  void start();
  void stop();
  /// Retunes the offered rate; takes effect from the next datagram.
  void set_rate(double rate_bps);

  [[nodiscard]] std::uint64_t datagrams_sent() const { return sent_; }

 private:
  void schedule_next();

  net::Nic& nic_;
  net::NodeId dst_;
  IperfConfig config_;
  bool running_ = false;
  std::uint64_t sent_ = 0;
  sim::EventHandle next_send_;
};

/// Goodput-measuring UDP receiver.
class IperfReceiver {
 public:
  IperfReceiver(net::Nic& nic, net::Port port = 5001);
  IperfReceiver(const IperfReceiver&) = delete;
  IperfReceiver& operator=(const IperfReceiver&) = delete;

  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_; }
  [[nodiscard]] std::uint64_t datagrams_received() const { return datagrams_; }

  /// Goodput in bits/s since the previous checkpoint() call.
  [[nodiscard]] double goodput_bps_since_checkpoint() const;
  void checkpoint();

 private:
  net::Nic& nic_;
  std::uint64_t bytes_ = 0;
  std::uint64_t datagrams_ = 0;
  std::uint64_t checkpoint_bytes_ = 0;
  SimTime checkpoint_time_;
};

}  // namespace dproc::workload
