// Molecular-dynamics frame source for the SmartPointer application.
//
// Generates frame descriptors like the paper's server: N atoms with
// position, velocity, and species per timestep. Frames are wire Messages
// with a small real header (stream id, frame number, atom count, timestamp)
// and a declared bulk body; derived representations (down-sampled, image)
// are computed from the same descriptor by the SmartPointer filters.
#pragma once

#include <cstdint>

#include "dproc/net/packet.hpp"
#include "dproc/util/time.hpp"

namespace dproc::workload {

struct MdFrame {
  std::uint64_t frame_number = 0;
  std::uint32_t atom_count = 0;
  SimTime generated_at;
};

/// Per-atom payload sizes of the stream derivations (bytes).
struct MdLayout {
  // position (3 x f32) + velocity (3 x f32) + species tag.
  static constexpr std::uint32_t kFullBytesPerAtom = 25;
  // velocity removed: the paper's canonical down-sampling example.
  static constexpr std::uint32_t kPositionOnlyBytesPerAtom = 13;
  // rendered image: fixed size regardless of atom count (1024x1024 RGB).
  static constexpr std::uint64_t kImageBytes = 1024ULL * 1024ULL * 3ULL;
};

class MdFrameSource {
 public:
  explicit MdFrameSource(std::uint32_t atom_count) : atom_count_(atom_count) {}

  /// Produces the next frame descriptor stamped with the current time.
  MdFrame next_frame(SimTime now) {
    return MdFrame{next_frame_number_++, atom_count_, now};
  }

  [[nodiscard]] std::uint32_t atom_count() const { return atom_count_; }
  [[nodiscard]] std::uint64_t full_frame_bytes() const {
    return static_cast<std::uint64_t>(atom_count_) * MdLayout::kFullBytesPerAtom;
  }

 private:
  std::uint32_t atom_count_;
  std::uint64_t next_frame_number_ = 0;
};

}  // namespace dproc::workload
