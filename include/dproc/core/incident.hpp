// Incident bundles and the cross-node post-mortem pipeline.
//
// An IncidentBundle is the health engine's frozen snapshot at the moment a
// watchdog rule tripped: the flight-ring tail, the metric history rings and
// the score, stamped with the node's identity. Bundles render to a
// line-oriented text format (render_bundles) that survives a round-trip
// through parse_bundles — the same bytes /proc/dproc/incidents serves and
// tools/incident_report consumes.
//
// The merge/align half turns per-node dumps into one cluster-wide story:
// the simulator's single virtual clock means timestamps merged across
// nodes ARE the causal order, so merge_timeline just sorts (deduplicating
// the fault-injector ground truth, which every host records), and
// align_faults walks the merged timeline matching each injected fault to
// the first symptom any node observed — the "did monitoring explain the
// outage?" verdict the chaos tests assert.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dproc/telemetry/flight.hpp"

namespace dproc::core {

struct IncidentBundle {
  std::uint32_t node = 0;
  std::string node_name;
  std::uint64_t id = 0;         // per-node, monotone from 1
  std::int64_t opened_ns = 0;   // virtual time the trigger tripped
  std::string trigger;          // watchdog series that tripped
  double score = 100.0;         // health score at open
  std::uint64_t symptoms = 0;   // triggers absorbed while open (dedup)
  /// Flight-ring tail at open, oldest first.
  std::vector<telemetry::FlightEvent> events;
  /// History rings at open: (series, windowed deltas oldest first).
  std::vector<std::pair<std::string, std::vector<double>>> history;
};

/// Text dump of a bundle list — the /proc/dproc/incidents format:
///   incident <id> node <n> <name> opened_ns <t> trigger <series>
///       score <s> symptoms <k>
///   history <series> <v0> <v1> ...
///   flight <ts_ns> <severity> <subsystem> <code>:<name> <a0..a3> [trace=..]
///   end
[[nodiscard]] std::string render_bundles(
    const std::vector<IncidentBundle>& bundles);

/// Parses render_bundles output (possibly several nodes' dumps
/// concatenated), appending to `out`. Tolerant of unknown lines between
/// bundles; returns false only on a structurally broken bundle (header
/// that does not parse, or a body line outside any bundle). Fuzzed.
[[nodiscard]] bool parse_bundles(const std::string& text,
                                 std::vector<IncidentBundle>& out);

/// One merged-timeline entry: a flight event attributed to the node whose
/// bundle carried it.
struct TimelineEntry {
  std::uint32_t node = 0;
  telemetry::FlightEvent event;
};

/// Merges every bundle's events into one timeline ordered by virtual
/// timestamp (ties: node, then code). Duplicates are collapsed: the same
/// (node, ts, code, args) seen in overlapping ring snapshots once, and
/// fault-injector ground truth (recorded on every host) once cluster-wide.
[[nodiscard]] std::vector<TimelineEntry> merge_timeline(
    const std::vector<IncidentBundle>& bundles);

/// Verdict for one injected fault found in the merged timeline.
struct FaultFinding {
  telemetry::FlightEvent fault;  // the kFaultInjected ground truth
  bool disruptive = false;       // heal/restore events need no symptom
  bool observed = false;         // some node recorded a matching symptom
  std::uint32_t symptom_node = 0;
  telemetry::FlightEvent symptom;  // first matching symptom (if observed)
};

/// Walks the merged timeline matching each kFaultInjected event to the
/// first subsequent symptom event that implicates it (crash -> peer
/// stale/dead/evicted for that node; registry outage -> kRegistryOutage;
/// leader kill -> election/lease-expiry; link faults -> degradation of the
/// node recorded behind the link). Healing faults (restart, link up, loss
/// stop, registry up) are marked non-disruptive and auto-observed.
[[nodiscard]] std::vector<FaultFinding> align_faults(
    const std::vector<TimelineEntry>& timeline);

/// True when every disruptive injected fault has an observed symptom.
[[nodiscard]] bool faults_recovered(const std::vector<FaultFinding>& findings);

/// JSON report for tools/incident_report: the merged timeline plus the
/// fault-alignment verdicts.
[[nodiscard]] std::string timeline_json(
    const std::vector<TimelineEntry>& timeline,
    const std::vector<FaultFinding>& findings);

}  // namespace dproc::core
