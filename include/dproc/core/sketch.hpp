// Constant-space heavy-hitter sketches for monitoring streams.
//
// The paper's resource-aware theme is that a monitor must not grow with the
// system it watches: publishing "the top-8 CPU consumers" must cost the same
// whether the node runs 100 processes or 10,000. Two classic streaming
// structures deliver that bound:
//
//   CountMinSketch — a rows x cols counter matrix; add() increments one
//   counter per row, estimate() takes the min across rows. Estimates never
//   undercount; overcounts shrink with cols.
//
//   HashPipe — a d-stage pipeline of (key, count) slots (HashPipe, SOSR'17;
//   eHashPipe applies it to host telemetry). An update walks the stages
//   carrying the minimum entry along and evicts it from the last stage, so
//   heavy keys settle in the table and light keys churn through. Evicted
//   residual mass lands in a backing count-min sketch so estimates for
//   evicted-then-reinserted keys stay near the true count.
//
// TopKSketch composes the two behind the rank/key/estimate interface the
// E-code sketch builtins (topk/topkid/cmlookup/skmerge) expect, and
// FilterSketchBridge adapts it to ecode::SketchHost so a deployed filter
// can publish top-k frames in constant space.
//
// Everything here is deterministic: hashing is seeded splitmix64, no global
// state, so tests and the golden trace can pin exact outputs.
#pragma once

#include <cstdint>
#include <vector>

#include "dproc/ecode/vm.hpp"

namespace dproc::core {

/// Sizing knobs for TopKSketch (and the TOP_K monitor family built on it).
/// Defaults hold the whole structure under 16 KiB.
struct SketchParams {
  std::uint32_t stages = 3;       // HashPipe pipeline depth
  std::uint32_t stage_slots = 32; // (key, count) slots per stage
  std::uint32_t cm_rows = 2;      // count-min rows
  std::uint32_t cm_cols = 512;    // count-min columns (power of two)
  std::uint64_t seed = 0x6470726f63ULL;  // hash seed ("dproc")
};

/// Count-min sketch over int64 keys with double counts.
class CountMinSketch {
 public:
  CountMinSketch(std::uint32_t rows, std::uint32_t cols, std::uint64_t seed);

  void add(std::int64_t key, double weight);
  /// Never below the true added weight for `key`.
  [[nodiscard]] double estimate(std::int64_t key) const;
  /// Cell-wise sum; other must share rows/cols/seed.
  void merge(const CountMinSketch& other);
  void clear();

  [[nodiscard]] std::uint32_t rows() const { return rows_; }
  [[nodiscard]] std::uint32_t cols() const { return cols_; }
  [[nodiscard]] std::size_t byte_size() const {
    return counters_.size() * sizeof(double);
  }

 private:
  [[nodiscard]] std::size_t cell(std::uint32_t row, std::int64_t key) const;

  std::uint32_t rows_;
  std::uint32_t cols_;
  std::uint64_t seed_;
  std::vector<double> counters_;  // rows_ x cols_, row-major
};

/// HashPipe heavy-hitter table with a count-min backing store for evicted
/// mass. Memory is fixed at construction; update() is O(stages) and
/// allocation-free.
class HashPipe {
 public:
  explicit HashPipe(const SketchParams& params);

  /// Accounts `weight` to `key` (keys must be >= 0; negative keys are
  /// ignored — slot 0 uses key -1 internally for "empty").
  void update(std::int64_t key, double weight);

  struct Entry {
    std::int64_t key = -1;
    double count = 0.0;
  };

  /// Fills `out` with up to `k` heaviest tracked entries, heaviest first
  /// (count descending, key ascending to break ties deterministically).
  /// Returns the number written. No allocation if out.capacity() >= k.
  std::size_t top(std::size_t k, std::vector<Entry>& out) const;

  /// Estimate for an arbitrary key: its table count (if resident) plus the
  /// count-min estimate of mass evicted from the table.
  [[nodiscard]] double estimate(std::int64_t key) const;

  /// Folds another pipe's tracked entries and evicted mass into this one;
  /// returns the number of entries folded. Params must match.
  std::size_t merge(const HashPipe& other);

  void clear();

  [[nodiscard]] const SketchParams& params() const { return params_; }
  [[nodiscard]] std::size_t byte_size() const {
    return slots_.size() * sizeof(Entry) + evicted_.byte_size();
  }

 private:
  [[nodiscard]] std::size_t slot_index(std::uint32_t stage,
                                       std::int64_t key) const;

  SketchParams params_;
  std::vector<Entry> slots_;  // stages x stage_slots, row-major
  CountMinSketch evicted_;    // residual mass of evicted keys
};

/// The composition the E-code builtins address: a primary heavy-hitter
/// sketch plus rank-ordered top-k snapshots.
class TopKSketch {
 public:
  explicit TopKSketch(const SketchParams& params = {});

  void update(std::int64_t key, double weight) { pipe_.update(key, weight); }

  /// Recomputes the rank-ordered snapshot the rank accessors read. Call
  /// once per collection period, after the updates.
  void refresh_top(std::size_t k);

  /// Estimated count of the rank-th heaviest key (0 = heaviest); 0 when
  /// fewer than rank+1 keys are tracked.
  [[nodiscard]] double rank_count(std::size_t rank) const;
  /// Key at `rank`, or -1 when absent.
  [[nodiscard]] std::int64_t rank_key(std::size_t rank) const;
  [[nodiscard]] std::size_t top_size() const { return top_.size(); }

  [[nodiscard]] double estimate(std::int64_t key) const {
    return pipe_.estimate(key);
  }
  std::size_t merge(const TopKSketch& other) { return pipe_.merge(other.pipe_); }
  void clear();

  [[nodiscard]] std::size_t byte_size() const {
    return pipe_.byte_size() + top_.capacity() * sizeof(HashPipe::Entry);
  }

 private:
  HashPipe pipe_;
  std::vector<HashPipe::Entry> top_;  // last refresh_top snapshot
};

/// Adapts a primary TopKSketch (+ optional auxiliaries, e.g. per-zone
/// sketches to fold in) to the VM's SketchHost interface.
class FilterSketchBridge final : public ecode::SketchHost {
 public:
  explicit FilterSketchBridge(TopKSketch& primary) : primary_(&primary) {}

  /// Registers an auxiliary sketch addressable by skmerge(index).
  void add_aux(TopKSketch& aux) { aux_.push_back(&aux); }

  [[nodiscard]] double topk_count(std::int64_t rank) const override {
    return primary_->rank_count(static_cast<std::size_t>(rank));
  }
  [[nodiscard]] double topk_key(std::int64_t rank) const override {
    return static_cast<double>(
        primary_->rank_key(static_cast<std::size_t>(rank)));
  }
  [[nodiscard]] double cm_estimate(std::int64_t key) const override {
    return primary_->estimate(key);
  }
  double merge_aux(std::int64_t index) override {
    if (index < 0 || static_cast<std::size_t>(index) >= aux_.size()) {
      return -1.0;
    }
    return static_cast<double>(
        primary_->merge(*aux_[static_cast<std::size_t>(index)]));
  }

 private:
  TopKSketch* primary_;
  std::vector<TopKSketch*> aux_;
};

}  // namespace dproc::core
