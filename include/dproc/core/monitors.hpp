// dproc monitoring modules: CPU_MON, MEM_MON, DISK_MON, NET_MON, PMC.
//
// Each module registers with d-mon via register_module(); d-mon invokes
// collect() once per polling period through the stored callback, exactly the
// paper's register-service/callback structure. Modules that need finer
// sampling than the polling period (CPU_MON's run-queue averaging) own a
// kernel thread, modeled as a periodic engine timer whose per-wakeup CPU
// cost is charged to the kernel class.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dproc/core/metrics.hpp"
#include "dproc/core/sketch.hpp"
#include "dproc/host/battery.hpp"
#include "dproc/host/host.hpp"
#include "dproc/net/tcp.hpp"
#include "dproc/sim/engine.hpp"

namespace dproc::core {

class MonitoringModule {
 public:
  virtual ~MonitoringModule() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Metric descriptors, ids left 0; d-mon assigns ids at registration.
  [[nodiscard]] virtual std::vector<MetricDesc> metrics() const = 0;

  /// Appends one sample per metric, in metrics() order.
  virtual void collect(std::vector<MetricSample>& out, SimTime now) = 0;

  /// Applications can retune the module's internal sampling period via the
  /// control interface; the default implementation ignores it.
  virtual void set_period(SimDuration period) { (void)period; }

 protected:
  /// Helper for collect() implementations.
  static MetricSample sample(MetricId id, double value, SimTime now) {
    return MetricSample{id, value, now};
  }
};

/// Average run-queue length over an application-specified window (default
/// 1 minute, like /proc/loadavg's shortest standard window), sampled by a
/// kernel thread at 10 Hz. Also reports instantaneous CPU utilization.
class CpuMonitor : public MonitoringModule {
 public:
  CpuMonitor(host::Host& host, SimDuration window = seconds(60.0),
             SimDuration sample_interval = milliseconds(100.0),
             double sample_cycles = 1200.0);
  ~CpuMonitor() override;

  [[nodiscard]] std::string name() const override { return "cpu"; }
  [[nodiscard]] std::vector<MetricDesc> metrics() const override;
  void collect(std::vector<MetricSample>& out, SimTime now) override;
  void set_period(SimDuration period) override { window_ = period; }

  [[nodiscard]] double load_average() const;

 private:
  void schedule_next_sample();

  host::Host& host_;
  SimDuration window_;
  SimDuration sample_interval_;
  double sample_cycles_;
  std::vector<std::pair<SimTime, double>> samples_;  // bounded ring
  std::size_t max_samples_;
  sim::EventHandle timer_;
};

/// Free memory via the nr_free_pages() analogue.
class MemMonitor : public MonitoringModule {
 public:
  explicit MemMonitor(host::Host& host) : host_(host) {}

  [[nodiscard]] std::string name() const override { return "mem"; }
  [[nodiscard]] std::vector<MetricDesc> metrics() const override;
  void collect(std::vector<MetricSample>& out, SimTime now) override;

 private:
  host::Host& host_;
};

/// Read/write ops and sector rates over the collection interval (default
/// driven by d-mon's polling period; the paper's default is 1 s).
class DiskMonitor : public MonitoringModule {
 public:
  explicit DiskMonitor(host::Host& host) : host_(host) {}

  [[nodiscard]] std::string name() const override { return "disk"; }
  [[nodiscard]] std::vector<MetricDesc> metrics() const override;
  void collect(std::vector<MetricSample>& out, SimTime now) override;

 private:
  host::Host& host_;
  host::DiskCounters last_{};
  SimTime last_at_;
  bool seeded_ = false;
};

/// Interface throughput, connection RTT, TCP retransmissions, UDP losses,
/// and an available-bandwidth estimate (link capacity minus observed use) —
/// the quantity SmartPointer's dynamic filters consume.
class NetMonitor : public MonitoringModule {
 public:
  NetMonitor(host::Host& host, net::Nic& nic, double link_capacity_bps = 100e6);

  [[nodiscard]] std::string name() const override { return "net"; }
  [[nodiscard]] std::vector<MetricDesc> metrics() const override;
  void collect(std::vector<MetricSample>& out, SimTime now) override;

  /// Renders per-connection stats (the paper's "round-trip times of
  /// established network connections ... of all individual connections");
  /// d-mon serves it as /proc/net/connections.
  [[nodiscard]] std::string render_connections() const;

 private:
  host::Host& host_;
  net::Nic& nic_;
  double link_capacity_bps_;
  std::uint64_t last_bytes_in_ = 0;
  std::uint64_t last_bytes_out_ = 0;
  std::uint64_t last_datagrams_lost_ = 0;
  SimTime last_at_;
  bool seeded_ = false;
  // Interface rates are smoothed so that periodic event bursts on an
  // otherwise idle node do not masquerade as load changes.
  Ewma in_bps_{0.35};
  Ewma out_bps_{0.35};
};

/// Exposes hardware performance counters cluster-wide. Counter selection is
/// dynamic: this is the module the paper's extension story deploys at run
/// time to remote kernels.
class PmcMonitor : public MonitoringModule {
 public:
  PmcMonitor(host::Host& host, std::vector<std::string> counters);

  [[nodiscard]] std::string name() const override { return "pmc"; }
  [[nodiscard]] std::vector<MetricDesc> metrics() const override;
  void collect(std::vector<MetricSample>& out, SimTime now) override;

 private:
  host::Host& host_;
  std::vector<std::string> counters_;
};

/// Battery charge and instantaneous power draw — the paper's future-work
/// "power as a first-class resource" and the canonical example of a module
/// deployed dynamically into a remote kernel (§2.1). The Battery is owned
/// by the embedder (it outlives monitoring), matching a driver-provided
/// power supply object.
class BatteryMonitor : public MonitoringModule {
 public:
  explicit BatteryMonitor(host::Battery& battery) : battery_(battery) {}

  [[nodiscard]] std::string name() const override { return "power"; }
  [[nodiscard]] std::vector<MetricDesc> metrics() const override;
  void collect(std::vector<MetricSample>& out, SimTime now) override;

 private:
  host::Battery& battery_;
};

/// DPROC_MON: the self-monitoring module. Publishes this node's own dproc
/// overhead — event counts, submit/receive/poll latency quantiles, filter
/// work, suppressed samples, fabric drops — on the monitoring channel like
/// any other metric, so each node's monitoring cost is visible cluster-wide
/// under /proc/cluster/<node>/dproc/... and is steerable and filterable
/// with the same tuning machinery as application metrics. Reads the host's
/// telemetry registry; with telemetry disabled every value reads 0.
class DprocMonitor : public MonitoringModule {
 public:
  /// `with_health` appends the two health-engine metrics (dproc_health_score,
  /// dproc_health_incidents) so the published schema — and thus the wire
  /// bytes — only change when the health engine is actually on.
  explicit DprocMonitor(host::Host& host, bool with_health = false);

  [[nodiscard]] std::string name() const override { return "dproc"; }
  [[nodiscard]] std::vector<MetricDesc> metrics() const override;
  void collect(std::vector<MetricSample>& out, SimTime now) override;

 private:
  host::Host& host_;
  bool with_health_ = false;
  telemetry::Counter& submits_;
  telemetry::Counter& receives_;
  telemetry::Counter& heartbeats_;
  telemetry::Counter& suppressed_;
  telemetry::Counter& filter_insns_;
  telemetry::Counter& net_drops_;
  telemetry::Counter& slo_violations_;
  telemetry::Counter& adapt_rounds_;
  telemetry::Counter& adapt_changes_;
  telemetry::Gauge& adapt_overhead_;
  telemetry::LatencyRecorder& submit_us_;
  telemetry::LatencyRecorder& receive_us_;
  telemetry::LatencyRecorder& poll_us_;
};

/// Configurable-width module for experiments and extension testing: emits
/// `metric_count` metrics whose values come from `value_fn` (constant zero
/// by default). With 250 metrics one monitoring event is ~5 KB on the wire,
/// the size used by the paper's Figure 7.
class SyntheticMonitor : public MonitoringModule {
 public:
  using ValueFn = std::function<double(std::size_t metric, SimTime now)>;

  SyntheticMonitor(std::string name, std::size_t metric_count,
                   ValueFn value_fn = {});

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::vector<MetricDesc> metrics() const override;
  void collect(std::vector<MetricSample>& out, SimTime now) override;

 private:
  std::string name_;
  std::size_t metric_count_;
  ValueFn value_fn_;
};

/// TOP_K: publishes the k heaviest consumers of some per-entity quantity —
/// CPU cycles per PID, bytes per flow — through a constant-space
/// heavy-hitter sketch (core/sketch). The published frame is always 2k
/// metrics (`<name>_top<i>_key` / `<name>_top<i>_val`), so the monitoring
/// cost is identical whether the node runs 100 processes or 10,000: the
/// resource-aware answer to "who is eating this node?". The sketch is also
/// exposed so d-mon can bind it as the filter sketch host, letting deployed
/// E-code filters call topk()/topkid()/cmlookup() against live state.
class TopKMonitor : public MonitoringModule {
 public:
  /// Appends this period's (entity key, weight) observations.
  using ObserveFn = std::function<void(
      std::vector<std::pair<std::int64_t, double>>& out, SimTime now)>;

  TopKMonitor(std::string name, std::size_t k, ObserveFn observe,
              SketchParams params = {});

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] std::vector<MetricDesc> metrics() const override;
  void collect(std::vector<MetricSample>& out, SimTime now) override;

  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] TopKSketch& sketch() { return sketch_; }
  [[nodiscard]] const TopKSketch& sketch() const { return sketch_; }
  /// Sketch footprint in bytes — constant in the entity count.
  [[nodiscard]] std::size_t state_bytes() const { return sketch_.byte_size(); }

 private:
  std::string name_;
  std::size_t k_;
  ObserveFn observe_;
  TopKSketch sketch_;
  std::vector<std::pair<std::int64_t, double>> obs_;  // reused per collect
};

/// Deterministic Zipf(s) observation source over `entity_count` keys: each
/// collect draws `draws_per_collect` unit-weight observations from a fixed
/// seeded stream. Stands in for a real per-PID scheduler account (the
/// per-PID CPU and per-flow byte distributions both skew heavily in
/// practice) while keeping tests and the accuracy experiments exactly
/// reproducible.
[[nodiscard]] TopKMonitor::ObserveFn make_zipf_observer(
    std::size_t entity_count, double s, std::uint64_t seed,
    std::size_t draws_per_collect = 256);

/// The family's stock members: top-k CPU consumers by PID and top-k flows
/// by bytes. Both are Zipf-backed (see make_zipf_observer); entity count is
/// the knob the constant-space experiment sweeps.
[[nodiscard]] std::unique_ptr<TopKMonitor> make_topk_process_monitor(
    std::size_t k, std::size_t process_count, double zipf_s = 1.2,
    std::uint64_t seed = 1, SketchParams params = {});
[[nodiscard]] std::unique_ptr<TopKMonitor> make_topk_flow_monitor(
    std::size_t k, std::size_t flow_count, double zipf_s = 1.2,
    std::uint64_t seed = 2, SketchParams params = {});

}  // namespace dproc::core
