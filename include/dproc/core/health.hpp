// Cluster health engine: per-metric history rings, a per-node health score,
// and triggered incident bundles for post-mortem debugging.
//
// The flight recorder (telemetry/flight.hpp) answers *what happened*; the
// health engine answers *how bad is it right now* and decides *when to
// snapshot*. Each poll it reads a small set of failure-signal counters from
// the host's telemetry registry (network drops, staleness-SLO violations,
// collect errors, evictions, registry failovers), pushes the windowed
// deltas into fixed-depth history rings, folds them with the peer-staleness
// census into a 0-100 score, and runs ACME-style watchdog rules (counter
// delta >= threshold over a window) that open incident bundles — each a
// frozen copy of the flight ring plus the history rings at the moment the
// rule tripped, dumpable via /proc/dproc/incidents and mergeable across
// nodes by tools/incident_report.
//
// Everything is off by default (HealthConfig::enabled = false): no engine
// is built, no procfs file registered, no counter resolved — the golden
// trace and the baseline benchmarks stay byte-identical.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dproc/core/incident.hpp"
#include "dproc/telemetry/flight.hpp"
#include "dproc/util/time.hpp"

namespace dproc::host {
class Host;
}  // namespace dproc::host

namespace dproc::telemetry {
class Counter;
class Gauge;
}  // namespace dproc::telemetry

namespace dproc::core {

/// One ACME-style watchdog rule: trips when the named series accumulates at
/// least `min_delta` over its newest `window` polls. Series names are the
/// engine's tracked telemetry series ("kecho/evictions", ...).
struct WatchdogRule {
  std::string series;
  double min_delta = 1.0;
  int window = 1;
};

/// Health-engine knobs. Disabled by default: no engine, no score, no
/// incidents — byte-identical golden trace. Enabling it implies
/// self-monitoring at the cluster builder (the score is computed from
/// telemetry counters and published through DPROC_MON).
struct HealthConfig {
  bool enabled = false;
  /// Windowed-delta entries retained per tracked series.
  std::size_t history_depth = 32;
  /// Newest polls folded into the score (failure signals age out of the
  /// score after this many clean polls).
  int score_window = 4;
  // Score weights: penalty = weight x (fraction of the score window with a
  // nonzero delta), except staleness which scales with the fraction of
  // peers not live. Weights sum to 100 so a node failing on every axis
  // bottoms out at 0.
  double weight_drops = 20.0;
  double weight_stale = 30.0;
  double weight_slo = 20.0;
  double weight_collect = 10.0;
  double weight_evict = 20.0;
  /// Consumers (SmartPointer) distrust a peer whose published score is
  /// below this.
  double trust_threshold = 60.0;
  /// Incident bundles retained (oldest evicted first).
  std::size_t incident_capacity = 8;
  /// Flight events frozen into each bundle (the newest tail of the ring).
  std::size_t incident_events = 128;
  /// A trigger landing within this window of the last open incident is
  /// absorbed as a symptom of it instead of opening a duplicate.
  SimDuration dedup_window = seconds(2.0);
  /// Extra watchdog rules, appended to the defaults (one per failure
  /// series, min_delta 1, window 1).
  std::vector<WatchdogRule> watchdogs;
};

/// Fixed-depth ring of doubles: the last K windowed deltas of one series.
/// Pre-allocated by configure(); push() never allocates.
class MetricHistory {
 public:
  void configure(std::size_t depth) {
    ring_.assign(depth > 0 ? depth : 1, 0.0);
    head_ = 0;
    size_ = 0;
  }
  void push(double v) {
    if (ring_.empty()) return;
    if (size_ < ring_.size()) {
      ring_[(head_ + size_) % ring_.size()] = v;
      ++size_;
    } else {
      ring_[head_] = v;
      head_ = (head_ + 1) % ring_.size();
    }
  }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t depth() const { return ring_.size(); }
  /// Entry i counted from the oldest retained (0 == oldest).
  [[nodiscard]] double at(std::size_t i) const {
    return ring_[(head_ + i) % ring_.size()];
  }
  /// Sum over the newest min(window, size) entries.
  [[nodiscard]] double window_sum(std::size_t window) const;
  /// Fraction of the newest min(window, size) entries that are nonzero;
  /// 0 when empty.
  [[nodiscard]] double window_active(std::size_t window) const;

 private:
  std::vector<double> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

/// Peer-staleness census d-mon hands the engine each poll.
struct HealthSnapshot {
  std::size_t peers_total = 0;
  std::size_t peers_stale = 0;
  std::size_t peers_dead = 0;
};

class HealthEngine {
 public:
  HealthEngine(host::Host& host, telemetry::FlightRecorder* flight,
               HealthConfig config);
  HealthEngine(const HealthEngine&) = delete;
  HealthEngine& operator=(const HealthEngine&) = delete;

  /// Identity stamped into incident bundles (the cluster builder's node
  /// index and name).
  void set_node(std::uint32_t node, std::string name);

  /// One engine round, driven from d-mon's poll: reads the counters,
  /// pushes windowed deltas, recomputes the score, runs the watchdogs.
  void on_poll(const HealthSnapshot& snapshot, SimTime now);

  [[nodiscard]] double score() const { return score_; }
  [[nodiscard]] bool trusted() const {
    return score_ >= config_.trust_threshold;
  }
  [[nodiscard]] const HealthConfig& config() const { return config_; }

  [[nodiscard]] const std::vector<IncidentBundle>& incidents() const {
    return incidents_;
  }
  /// Incidents opened since construction (monotone; unlike incidents_,
  /// never truncated by the capacity cap).
  [[nodiscard]] std::uint64_t incidents_opened() const { return opened_; }
  /// Triggers absorbed into an already-open incident (dedup hits).
  [[nodiscard]] std::uint64_t triggers_deduped() const { return deduped_; }

  /// Tracked series names, in score order (stable across polls).
  [[nodiscard]] const std::vector<std::string>& series_names() const;
  [[nodiscard]] const MetricHistory* history(const std::string& series) const;

  /// Renders /proc/dproc/health (score, per-series window state).
  [[nodiscard]] std::string render() const;
  /// Renders /proc/dproc/incidents (render_bundles format).
  [[nodiscard]] std::string render_incidents() const;

 private:
  struct Series {
    std::string name;
    const telemetry::Counter* counter = nullptr;  // null: pushed directly
    std::uint64_t last_value = 0;
    MetricHistory history;
  };

  [[nodiscard]] Series* find_series(const std::string& name);
  void open_incident(const std::string& trigger, SimTime now);

  host::Host& host_;
  telemetry::FlightRecorder* flight_;
  HealthConfig config_;
  std::uint32_t node_ = 0;
  std::string node_name_;

  std::vector<Series> series_;
  std::vector<std::string> series_names_;
  std::vector<WatchdogRule> rules_;

  double score_ = 100.0;
  bool degraded_ = false;  // below trust threshold (flight-edge tracking)
  HealthSnapshot last_snapshot_{};

  std::vector<IncidentBundle> incidents_;
  std::uint64_t opened_ = 0;
  std::uint64_t deduped_ = 0;
  std::int64_t last_open_ns_ = -1;

  telemetry::Gauge& tm_score_;
  telemetry::Counter& tm_incidents_;
  std::vector<telemetry::FlightEvent> snapshot_scratch_;
};

}  // namespace dproc::core
