// Monitoring history: a MAGNeT-style circular record buffer.
//
// The paper contrasts dproc with MAGNeT, whose instrumented kernel logs
// events into an in-kernel circular buffer that tools drain later. That
// capability is genuinely useful alongside live channels — post-mortem
// analysis, replaying a perturbation — so dproc gets it as an optional
// observer: the recorder snapshots every locally collected sample, exposes
// recent history under /proc/history/<metric>, and can export/import a
// compact binary trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dproc/core/dmon.hpp"
#include "dproc/util/ring_buffer.hpp"

namespace dproc::core {

struct HistoryPoint {
  SimTime at;
  double value = 0.0;
};

class HistoryRecorder {
 public:
  /// Attaches to a d-mon; `depth` samples are retained per metric.
  /// Registers /proc/history/<metric-key> files on the node's procfs.
  HistoryRecorder(DMon& dmon, procfs::ProcFs& procfs, std::size_t depth = 512);
  HistoryRecorder(const HistoryRecorder&) = delete;
  HistoryRecorder& operator=(const HistoryRecorder&) = delete;

  [[nodiscard]] std::size_t depth() const { return depth_; }

  /// History of one metric, oldest first (empty if the id is unknown).
  [[nodiscard]] std::vector<HistoryPoint> history(MetricId id) const;

  /// Serializes all retained history into a compact binary trace.
  [[nodiscard]] std::vector<std::uint8_t> export_trace() const;

  /// Parses a trace produced by export_trace(). Returns per-metric series
  /// keyed by metric id.
  static Result<std::vector<std::pair<MetricId, std::vector<HistoryPoint>>>>
  import_trace(const std::vector<std::uint8_t>& bytes);

 private:
  void on_samples(const std::vector<MetricSample>& samples);

  DMon& dmon_;
  std::size_t depth_;
  std::vector<RingBuffer<HistoryPoint>> rings_;  // indexed by metric id
};

}  // namespace dproc::core
