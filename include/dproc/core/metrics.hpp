// Metric identity and sample records shared across dproc.
//
// Metric ids are a cluster-wide convention: every node registers the same
// standard modules in the same order, so id k means the same quantity on
// every node (the tests assert this invariant). Filter programs reference
// metrics through uppercase constants (LOADAVG, FREEMEM, ...) bound to
// these ids at compile time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dproc/util/time.hpp"

namespace dproc::core {

using MetricId = std::uint32_t;

struct MetricDesc {
  MetricId id = 0;
  /// Flat key, also the filter constant in uppercase: "loadavg" → LOADAVG.
  std::string key;
  /// procfs path relative to the node directory, e.g. "cpu/loadavg".
  std::string path;
};

struct MetricSample {
  MetricId id = 0;
  double value = 0.0;
  SimTime sampled_at;
};

/// A remote metric value as stored under /proc/cluster/<node>/...
struct RemoteMetric {
  double value = 0.0;
  SimTime sampled_at;   // when the publisher measured it
  SimTime received_at;  // when it arrived here
  bool valid = false;
  /// Causal-trace id of the monitoring event that carried this value
  /// (0 when the publisher was not tracing). Consumers stamp decision
  /// hops against it, closing the publish → decision chain.
  std::uint64_t trace_id = 0;
};

/// Uppercases a metric key into its filter-constant spelling.
[[nodiscard]] std::string to_filter_constant(const std::string& key);

}  // namespace dproc::core
