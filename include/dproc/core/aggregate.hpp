// Cluster-wide aggregate views.
//
// Central-collector tools (Supermon, Ganglia) answer "what does the whole
// cluster look like" queries at their master node; dproc's peer-to-peer
// design means every node already holds the data to answer them locally.
// The aggregator renders min/mean/max/count across all peers (plus this
// node's own latest sample) under /proc/cluster/summary/<metric>.
#pragma once

#include <string>

#include "dproc/core/dmon.hpp"

namespace dproc::core {

struct AggregateView {
  std::size_t nodes = 0;  // nodes contributing a fresh value
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

class ClusterAggregator {
 public:
  /// Registers /proc/cluster/summary/<key> for every metric in the d-mon's
  /// table. `staleness` bounds how old a peer value may be to count.
  ClusterAggregator(DMon& dmon, procfs::ProcFs& procfs,
                    SimDuration staleness = seconds(5.0));
  ClusterAggregator(const ClusterAggregator&) = delete;
  ClusterAggregator& operator=(const ClusterAggregator&) = delete;

  /// Computes the aggregate for one metric right now.
  [[nodiscard]] AggregateView aggregate(MetricId id) const;
  [[nodiscard]] AggregateView aggregate(const std::string& key) const;

 private:
  DMon& dmon_;
  SimDuration staleness_;
};

}  // namespace dproc::core
