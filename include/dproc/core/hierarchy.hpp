// Hierarchical aggregation overlay: zone partitioning and roll-up state.
//
// The flat monitoring channel has every node publishing to every subscriber,
// so fabric traffic and /proc/cluster state grow O(N²) with cluster size.
// The overlay partitions the cluster into leaf zones of consecutive nodes;
// each zone elects an aggregator that folds its members' raw MonitorBatch
// feeds into one compact per-metric AggregateBatch and republishes it to the
// parent tier, recursively, until a single root summary reaches the
// subscribers. Election is deterministic: every zone carries an ordered
// candidate list, the first live candidate acts, and everyone (leaves,
// standby candidates, parents) derives the same answer from the shared
// membership view — no election protocol on the wire.
//
// This header holds the pure parts — the layout builder and the roll-up
// state machines — so they are unit-testable without a cluster; the d-mon
// wires them to channels, procfs and the drill-down protocol.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dproc/net/wire.hpp"
#include "dproc/util/time.hpp"

namespace dproc::core {

/// Which statistics a zone's AggregateBatch entries carry. Selectable per
/// channel (see HierarchyConfig::channel_rollup); count and the newest
/// sample time always ride.
struct RollupSpec {
  bool min = true;
  bool max = true;
  bool mean = true;
  /// Per-metric top-k list of (origin node, value), descending by value;
  /// 0 disables, capped at net::AggregateBatch::kMaxTopK.
  std::uint8_t top_k = 0;

  [[nodiscard]] std::uint8_t flags() const {
    std::uint8_t f = 0;
    if (min) f |= net::AggregateBatch::kFlagMin;
    if (max) f |= net::AggregateBatch::kFlagMax;
    if (mean) f |= net::AggregateBatch::kFlagMean;
    if (top_k > 0) f |= net::AggregateBatch::kFlagTopK;
    return f;
  }
};

/// The zone/tree overlay configuration. Off by default: with
/// `enabled == false` nothing joins zone channels, no aggregate frames
/// exist on the wire and the stack is byte-identical to the flat topology
/// (the golden-trace test pins this).
struct HierarchyConfig {
  bool enabled = false;
  /// Leaf zone width: consecutive node indices [k*zone_size, ...) form
  /// zone k. The first member is the configured aggregator, the rest the
  /// deterministic fallback order.
  std::size_t zone_size = 8;
  /// Child zones per upper-tier group; tiers are added until one root
  /// zone covers the cluster.
  std::size_t fanout = 8;
  /// Statistics rolled up by default on every zone channel.
  RollupSpec rollup{};
  /// Per-zone-channel overrides, keyed by zone name ("t1.z0", ...).
  std::vector<std::pair<std::string, RollupSpec>> channel_rollup;
  /// A drill-down subscription expires this many poll periods after its
  /// last refresh (the requester re-sends every poll while active).
  int drill_ttl_periods = 30;
  /// Nodes that subscribe to the root summary (and keep a control-channel
  /// membership). nullopt = every node subscribes — fine for small
  /// clusters, ruinous at thousands of nodes.
  std::optional<std::vector<std::size_t>> subscribers;
  /// Declare each node's zone mates as peers (procfs files for their raw
  /// feeds). Benches at thousands of nodes turn this off; peers are then
  /// learned lazily from the first raw batch an aggregator receives.
  bool declare_zone_peers = true;

  [[nodiscard]] const RollupSpec& rollup_for(const std::string& zone) const {
    for (const auto& [name, spec] : channel_rollup) {
      if (name == zone) return spec;
    }
    return rollup;
  }
};

/// One zone of the overlay. Leaf zones (tier 0) own consecutive node
/// indices; upper tiers group `fanout` child zones. `candidates` is the
/// aggregator election order: for a leaf zone its members, for an upper
/// zone the members of the leftmost leaf in its subtree — so failover
/// needs only leaf membership knowledge and a node's duties follow it up
/// the tree.
struct HierarchyZone {
  std::uint32_t id = 0;      // index into HierarchyLayout::zones()
  std::uint32_t tier = 0;    // 0 = leaf
  std::string name;          // "t<tier>.z<index within tier>"
  std::optional<std::uint32_t> parent;
  std::vector<std::uint32_t> children;   // zone ids, tier > 0 only
  std::vector<std::size_t> members;      // node indices, tier 0 only
  std::vector<std::size_t> candidates;   // election priority order
  std::size_t first_node = 0;            // subtree covers [first, first+count)
  std::size_t node_count = 0;

  [[nodiscard]] bool contains(std::size_t node) const {
    return node >= first_node && node < first_node + node_count;
  }
};

class HierarchyLayout {
 public:
  [[nodiscard]] const std::vector<HierarchyZone>& zones() const {
    return zones_;
  }
  [[nodiscard]] const HierarchyZone& zone(std::uint32_t id) const {
    return zones_.at(id);
  }
  [[nodiscard]] const HierarchyZone& root() const { return zones_.at(root_); }
  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] std::uint32_t tiers() const { return root().tier + 1; }

  /// The leaf zone a node belongs to.
  [[nodiscard]] const HierarchyZone& leaf_of(std::size_t node) const {
    return zones_.at(leaf_of_.at(node));
  }

  /// Zones for which `node` is an election candidate, leaf first.
  [[nodiscard]] std::vector<std::uint32_t> duty_zones(std::size_t node) const;

  /// The acting aggregator of a zone: the first candidate `alive` accepts.
  /// nullopt when every candidate is down.
  [[nodiscard]] std::optional<std::size_t> acting(
      const HierarchyZone& zone,
      const std::function<bool(std::size_t)>& alive) const;

 private:
  friend HierarchyLayout build_hierarchy(std::size_t node_count,
                                         const HierarchyConfig& config);
  std::vector<HierarchyZone> zones_;
  std::vector<std::uint32_t> leaf_of_;  // node index -> leaf zone id
  std::uint32_t root_ = 0;
  std::size_t node_count_ = 0;
};

/// Builds the zone tree for `node_count` nodes: ceil(N / zone_size) leaf
/// zones of consecutive nodes, grouped `fanout` at a time per tier until a
/// single root remains. Deterministic for a given (node_count, config).
[[nodiscard]] HierarchyLayout build_hierarchy(std::size_t node_count,
                                              const HierarchyConfig& config);

/// Roll-up state machine of one zone, maintained by its aggregator
/// candidates. A leaf aggregator folds raw MonitorBatch feeds per origin
/// node; an upper-tier aggregator folds child AggregateBatch frames keyed
/// by child zone id (overwrite semantics — a re-elected child aggregator
/// republishing the same zone never double-counts). build() emits only
/// contributions fresher than the staleness horizon, so a crashed origin
/// or child silently ages out of the summary.
class ZoneRollup {
 public:
  /// Leaf tier: latest value per (origin, metric id).
  void update_origin(std::uint32_t origin, const net::MonitorBatch& batch,
                     SimTime now);
  /// Convenience for the aggregator's own samples (no wire frame).
  void update_origin_sample(std::uint32_t origin, std::uint32_t id,
                            double value, std::int64_t sampled_ns, SimTime now);
  /// Upper tiers: latest AggregateBatch per child zone.
  void update_child(const net::AggregateBatch& batch, SimTime now);
  /// Forgets one origin (leaf tier, after an eviction).
  void forget_origin(std::uint32_t origin);

  /// Builds the zone's outgoing aggregate into `out` (entries in ascending
  /// metric id), folding every origin/child heard within `horizon` of
  /// `now`. The emitted flags are `spec`'s statistics intersected with what
  /// every contributing child actually carried (a parent cannot invent a
  /// min its children never sent). Returns false when nothing is fresh.
  bool build(net::AggregateBatch& out, const RollupSpec& spec, SimTime now,
             SimDuration horizon) const;

  [[nodiscard]] std::size_t origin_count() const { return origins_.size(); }
  [[nodiscard]] std::size_t child_count() const { return children_.size(); }
  void clear();

 private:
  struct OriginState {
    SimTime last_update;
    // Indexed by metric id; parallel valid flags (dense, ids are small).
    std::vector<double> values;
    std::vector<std::int64_t> sampled_ns;
    std::vector<std::uint8_t> valid;
  };
  struct ChildState {
    SimTime last_update;
    net::AggregateBatch batch;
  };

  std::map<std::uint32_t, OriginState> origins_;
  std::map<std::uint32_t, ChildState> children_;
};

}  // namespace dproc::core
