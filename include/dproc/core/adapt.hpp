// Self-adapting monitoring periods under an explicit overhead budget.
//
// The paper's tuning interface makes monitoring *customizable* — operators
// hand-tune per-metric periods through `control` files — but leaves the
// tuning loop open: somebody has to watch the streams and rewrite the
// periods. This controller closes it, borrowing DAMON's core idea (see
// DESIGN.md §14): the operator states a *goal* — an overhead budget (max
// fraction of simulated CPU the monitor may burn) and an accuracy target
// (how much normalized change per poll a metric may accumulate before its
// period is too slow) — and the mechanism adjusts per-region periods to
// meet it.
//
// Regions follow DAMON's shape too: adaptation operates on contiguous
// metric-id ranges (one per monitoring module — the same ranges d-mon's
// group_by_range batching uses), scored by the hottest metric inside, so
// the controller's state stays O(modules), not O(metrics x peers).
//
// The controller owns no wires and no clocks: d-mon feeds it observations
// each poll (observe) and the measured overhead each adaptation interval
// (adapt), then copies the resulting periods into PublisherTuning as
// *adaptive* periods — a layer that overrides only the default period, so
// an operator's explicit `period <metric> ...` rule always wins.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dproc/core/metrics.hpp"
#include "dproc/util/status.hpp"
#include "dproc/util/time.hpp"

namespace dproc::core {

/// Adaptation knobs. Off by default: no controller is built, no periods
/// move, and the golden trace stays byte-identical.
struct AdaptConfig {
  bool enabled = false;
  /// Max fraction of simulated CPU the d-mon may spend on monitoring
  /// (poll + submit + receive kernel time over wall time). When the
  /// measured overhead exceeds it, every region's period is scaled up
  /// proportionally — the budget clamp outranks accuracy.
  double overhead_budget = 0.01;
  /// Target normalized change per poll: a region whose hottest metric
  /// accumulates more change than this tightens (down to min_period);
  /// one accumulating less than half of it relaxes (up to max_period).
  double accuracy_target = 0.05;
  /// Run the controller once every this many polls.
  int adapt_every_periods = 5;
  SimDuration min_period = seconds(1.0);
  SimDuration max_period = seconds(30.0);
  /// EWMA smoothing for per-metric change rates and magnitude scales.
  double ewma_alpha = 0.3;
  /// Multiplicative period moves per round (decrease/increase).
  double tighten_factor = 0.5;
  double relax_factor = 1.5;
};

/// Last value a publisher sent per metric id. Shared between the batching
/// path (delta suppression) and the controller: the published value is the
/// accuracy baseline — |collected - published| is exactly how wrong the
/// cluster's view of this metric currently is.
struct PublishedState {
  bool published = false;
  double value = 0.0;
};

/// The per-d-mon period controller (pure state machine; d-mon drives it).
class PeriodController {
 public:
  /// One adaptation region: a module's contiguous metric-id range, its
  /// current adaptive period and last round's score.
  struct Region {
    std::string module;
    MetricId first = 0;
    std::size_t count = 0;
    SimDuration period{};
    double score = 0.0;  // hottest metric's change rate, last round
  };

  PeriodController(AdaptConfig config, SimDuration base_period);

  /// Registers one module's metric-id range (regions start at the base
  /// period). Ranges must be disjoint; order is irrelevant.
  void add_region(std::string module, MetricId first, std::size_t count);

  /// Per-poll rate tracking. `collected` is the id-dense local sample
  /// vector; `last_published` the publisher's delta-suppression cache. A
  /// metric's change is measured against its last *published* value when
  /// one exists (how stale is the cluster's view), else against its own
  /// previous collection (plain per-poll delta, e.g. with batching off).
  void observe(const std::vector<MetricSample>& collected,
               const std::vector<PublishedState>& last_published);

  /// One adaptation round: re-scores every region, tightens/relaxes its
  /// period against the accuracy target, then applies the budget clamp on
  /// the measured overhead. Returns true when any period changed.
  bool adapt(double measured_overhead);

  /// Restart support: forgets rates, resets periods to base and zeroes the
  /// counters (a rebooted monitor has no memory).
  void reset();

  [[nodiscard]] const std::vector<Region>& regions() const { return regions_; }
  /// Current smoothed change rate of one metric (0 when never observed).
  [[nodiscard]] double rate(MetricId id) const;
  /// The region covering `id`, or nullptr when no region does.
  [[nodiscard]] const Region* region_of(MetricId id) const;

  // --- knobs (procfs-writable) --------------------------------------------
  Status set_budget(double budget);
  Status set_target(double target);
  [[nodiscard]] double budget() const { return config_.overhead_budget; }
  [[nodiscard]] double target() const { return config_.accuracy_target; }
  [[nodiscard]] const AdaptConfig& config() const { return config_; }

  // --- counters (telemetry / procfs) --------------------------------------
  [[nodiscard]] std::uint64_t rounds() const { return rounds_; }
  [[nodiscard]] std::uint64_t periods_tightened() const { return tightened_; }
  [[nodiscard]] std::uint64_t periods_relaxed() const { return relaxed_; }
  [[nodiscard]] std::uint64_t budget_clamps() const { return clamps_; }
  [[nodiscard]] double last_overhead() const { return last_overhead_; }

  /// Renders state for /proc/dproc/adapt.
  [[nodiscard]] std::string describe() const;

 private:
  struct MetricState {
    bool seen = false;
    double prev = 0.0;   // last collected value
    double scale = 0.0;  // EWMA of |value| (normalization denominator)
    double rate = 0.0;   // EWMA of |delta| / scale
  };

  AdaptConfig config_;
  SimDuration base_period_;
  std::vector<Region> regions_;
  std::vector<MetricState> metrics_;  // indexed by metric id

  std::uint64_t rounds_ = 0;
  std::uint64_t tightened_ = 0;
  std::uint64_t relaxed_ = 0;
  std::uint64_t clamps_ = 0;
  double last_overhead_ = 0.0;
};

}  // namespace dproc::core
