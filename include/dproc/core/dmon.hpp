// d-mon: the distributed monitor coordinator (one per kernel).
//
// Responsibilities, mirroring §2 of the paper:
//  * joins the cluster's monitoring and control KECho channels;
//  * maintains a registry of monitoring modules and polls them each period
//    through their callbacks;
//  * applies the publisher tuning (parameters, differential filter, E-code
//    filters) and submits the surviving samples, grouped per module into
//    50–100 byte events;
//  * drains incoming events at each poll: monitoring events update the
//    /proc/cluster/<node>/... pseudo-files, control events retune this
//    publisher (including dynamic filter compilation);
//  * exposes everything through procfs, including a `control` file per
//    remote node used to deploy parameters and filters there.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dproc/core/monitors.hpp"
#include "dproc/core/tuning.hpp"
#include "dproc/kecho/node.hpp"
#include "dproc/procfs/procfs.hpp"
#include "dproc/util/stats.hpp"

namespace dproc::core {

/// Calibration knobs for kernel-path costs that are not already covered by
/// the KECho cost model. Values are cycles on the reference 200 MHz CPU;
/// EXPERIMENTS.md discusses the calibration against the paper's figures.
struct OverheadModel {
  double collect_cycles_per_module = 2500;
  double procfs_update_cycles_per_event = 2500;
  double control_apply_cycles = 20000;
  double filter_compile_cycles_per_byte = 400;  // dynamic code generation
  double filter_exec_cycles_per_insn = 8;
  /// Indirect perturbation per event (cache pollution, softirq work,
  /// deferred bookkeeping). Charged to the kernel class but *outside* the
  /// rdtsc-measured submit/receive windows, like the real costs it models.
  double collateral_cycles_per_event = 40000;
};

/// Causal tracing and the staleness SLO watchdog. Disabled by default:
/// no trace context is appended to frames (byte-identical wire format),
/// no hops are recorded, and the watchdog never fires — the golden trace
/// and the benchmarks are untouched.
struct TraceConfig {
  bool enabled = false;
  /// End-to-end staleness budget (publish stamp → render at the consumer)
  /// for channels without an explicit entry. Zero disables the watchdog
  /// for such channels.
  SimDuration default_slo = SimDuration::zero();
  /// Per-channel-name budget overrides, e.g. {"dproc.monitor", 250 ms}.
  std::vector<std::pair<std::string, SimDuration>> channel_slo;

  [[nodiscard]] SimDuration slo_for(const std::string& channel) const {
    for (const auto& [name, budget] : channel_slo) {
      if (name == channel) return budget;
    }
    return default_slo;
  }
};

struct DmonConfig {
  SimDuration poll_period = seconds(1.0);
  std::string monitor_channel = "dproc.monitor";
  std::string control_channel = "dproc.control";
  OverheadModel overheads{};
  /// A peer's feed is flagged stale after this many poll periods without a
  /// monitoring update (graceful degradation under churn and partitions).
  int stale_after_periods = 3;
  /// Causal tracing + staleness SLO watchdog (off by default).
  TraceConfig trace{};
};

/// Degradation state of one peer's monitoring feed, derived from update
/// recency and KECho membership events:
///  * kLive  — updating within the staleness horizon;
///  * kStale — silent past stale_after_periods poll periods, but not (yet)
///             evicted: consumers should distrust the cached values;
///  * kDead  — evicted from the monitoring channel (or never known).
enum class PeerState : std::uint8_t { kLive, kStale, kDead };
[[nodiscard]] const char* to_string(PeerState state);

struct PeerHealth {
  PeerState state = PeerState::kDead;
  SimTime last_update;    // last monitoring event from the peer
  bool has_data = false;  // any update since this d-mon (re)started
  /// False while the feed has a staleness-SLO violation inside the
  /// staleness horizon; consumers should distrust the cached values.
  bool slo_ok = true;
};

/// Per-poll measurements (what the paper's rdtsc instrumentation reports).
struct PollRecord {
  SimDuration submit_cost{0};
  SimDuration receive_cost{0};
  std::size_t events_submitted = 0;
  std::size_t events_received = 0;
  std::uint64_t filter_instructions = 0;
};

class DMon {
 public:
  DMon(host::Host& host, net::Nic& nic, kecho::Node& kecho,
       procfs::ProcFs& procfs, DmonConfig config = {});
  ~DMon();
  DMon(const DMon&) = delete;
  DMon& operator=(const DMon&) = delete;

  /// Registers a monitoring module (before or after start()); assigns
  /// cluster-convention metric ids and creates the local pseudo-files.
  void register_module(std::unique_ptr<MonitoringModule> module);

  /// Declares a peer node: creates /proc/cluster/<name>/... including the
  /// control file through which applications retune that node.
  void add_peer(net::NodeId node, const std::string& name);

  /// Joins the channels and starts the periodic polling loop.
  void start();
  void stop();

  /// Restart after a crash: clears every peer's cached data and health
  /// (a rebooted monitor has no memory of the old values) and starts the
  /// polling loop again. The kecho node must have been restart()ed first.
  void restart();

  /// One polling iteration (normally driven by the internal timer; exposed
  /// for tests and microbenchmarks).
  PollRecord poll();

  // --- observation ------------------------------------------------------

  [[nodiscard]] const PollRecord& last_poll() const { return last_poll_; }
  [[nodiscard]] const StreamingStats& submit_cost_us() const {
    return submit_cost_us_;
  }
  [[nodiscard]] const StreamingStats& receive_cost_us() const {
    return receive_cost_us_;
  }
  [[nodiscard]] PublisherTuning& tuning() { return *tuning_; }
  [[nodiscard]] const std::vector<MetricDesc>& metric_table() const {
    return metric_table_;
  }
  [[nodiscard]] std::optional<MetricId> metric_id(const std::string& key) const;

  /// The node's current simulated time (for staleness checks).
  [[nodiscard]] SimTime host_now() const { return host_.engine().now(); }

  /// This node's latest locally collected value for a metric.
  [[nodiscard]] const MetricSample* local_metric(MetricId id) const {
    if (id >= last_collected_.size()) return nullptr;
    return &last_collected_[id];
  }

  /// Visits every declared peer: fn(node, name).
  template <typename Fn>
  void for_each_peer(Fn&& fn) const {
    for (const auto& [node, peer] : peers_) fn(node, peer.name);
  }

  /// Observer invoked after each poll's collection phase with the full
  /// local sample vector (history recorders, QoS managers, ...).
  using SampleObserver =
      std::function<void(const std::vector<MetricSample>&, SimTime)>;
  void add_sample_observer(SampleObserver observer) {
    sample_observers_.push_back(std::move(observer));
  }

  /// Health of a declared peer's feed; nullopt for undeclared peers.
  [[nodiscard]] std::optional<PeerHealth> peer_health(net::NodeId node) const;
  /// Convenience: kDead for undeclared peers.
  [[nodiscard]] PeerState peer_state(net::NodeId node) const;

  /// SLO watchdog verdict on a peer's monitoring feed: false while the
  /// peer has an end-to-end staleness violation within the staleness
  /// horizon (sticky so one late burst keeps the feed distrusted until
  /// fresh in-budget updates age it out). Undeclared peers report true —
  /// distrust for *missing* data is peer_state()'s job.
  [[nodiscard]] bool feed_within_slo(net::NodeId node) const;
  /// End-to-end violations the watchdog has flagged on this consumer.
  [[nodiscard]] std::uint64_t slo_violations() const {
    return tm_slo_violations_.value();
  }

  /// KECho channel id of the monitoring channel (0 before start()); trace
  /// consumers use it to stamp decision hops on the right channel.
  [[nodiscard]] kecho::ChannelId monitor_channel_id() const {
    return monitor_channel_ != nullptr ? monitor_channel_->id() : 0;
  }

  /// Latest value received from a peer, if any.
  [[nodiscard]] const RemoteMetric* remote_metric(net::NodeId node,
                                                  MetricId id) const;
  /// Convenience: remote metric by key.
  [[nodiscard]] const RemoteMetric* remote_metric(net::NodeId node,
                                                  const std::string& key) const;

  /// Applies a tuning request locally, as if it had arrived on the control
  /// channel (used by tests and by the node's own applications).
  Status apply_tuning(const TuningConfig& config);

  /// Sends a tuning request to a peer over the control channel.
  Status send_tuning(net::NodeId target, const TuningConfig& config);

  [[nodiscard]] const std::string& last_control_error() const {
    return last_control_error_;
  }

 private:
  struct ModuleEntry {
    std::unique_ptr<MonitoringModule> module;
    MetricId first_id = 0;
    std::size_t metric_count = 0;
  };
  struct Peer {
    std::string name;
    std::vector<RemoteMetric> metrics;  // indexed by metric id
    SimTime declared_at;   // staleness basis until the first update
    SimTime last_update;   // last monitoring event received
    bool has_data = false;
    bool dead = false;     // evicted from the monitoring channel
    bool slo_violated = false;     // any SLO violation observed yet
    SimTime last_slo_violation;    // most recent violation (watchdog)
  };

  void on_monitor_event(const kecho::Event& event);
  void on_control_event(const kecho::Event& event);
  /// Allocates the next publish-side trace context (publish hop stamped).
  [[nodiscard]] net::TraceContext begin_trace(kecho::ChannelId channel);
  /// Stamps the render hop for a delivered traced event and runs the
  /// staleness-SLO watchdog against `slo_channel`'s budget.
  void note_render(const kecho::Event& event, const std::string& slo_channel,
                   Peer* peer);
  void on_membership(kecho::MemberEventKind kind, net::NodeId node);
  [[nodiscard]] PeerState state_of(const Peer& peer) const;
  void register_local_files(const ModuleEntry& entry);
  void rebuild_tuning();
  void charge(double cycles);

  host::Host& host_;
  net::Nic& nic_;
  kecho::Node& kecho_;
  procfs::ProcFs& procfs_;
  DmonConfig config_;

  std::vector<ModuleEntry> modules_;
  std::vector<MetricDesc> metric_table_;
  std::map<std::string, MetricId> metric_ids_;
  std::vector<MetricSample> last_collected_;  // local values, id order

  std::unique_ptr<PublisherTuning> tuning_;
  std::map<net::NodeId, Peer> peers_;

  kecho::Channel* monitor_channel_ = nullptr;
  kecho::Channel* control_channel_ = nullptr;
  sim::EventHandle poll_timer_;
  bool started_ = false;

  // Costs accumulated by event handlers during the current kecho.poll().
  SimDuration handler_cost_{0};

  std::uint32_t trace_seq_ = 0;  // per-node trace-id sequence

  std::vector<SampleObserver> sample_observers_;
  PollRecord last_poll_;
  StreamingStats submit_cost_us_;
  StreamingStats receive_cost_us_;
  std::string last_control_error_;

  /// Self-monitoring instruments, resolved once from the host registry at
  /// construction; inert (a branch each) until telemetry is enabled.
  telemetry::Counter& tm_polls_;
  telemetry::Counter& tm_events_submitted_;
  telemetry::Counter& tm_events_received_;
  telemetry::Counter& tm_suppressed_;
  telemetry::Counter& tm_filter_compiles_;
  telemetry::Counter& tm_filter_insns_;
  telemetry::Counter& tm_slo_violations_;
  telemetry::LatencyRecorder& tm_poll_us_;
  telemetry::LatencyRecorder& tm_submit_us_;
  telemetry::LatencyRecorder& tm_receive_us_;
};

}  // namespace dproc::core
