// d-mon: the distributed monitor coordinator (one per kernel).
//
// Responsibilities, mirroring §2 of the paper:
//  * joins the cluster's monitoring and control KECho channels;
//  * maintains a registry of monitoring modules and polls them each period
//    through their callbacks;
//  * applies the publisher tuning (parameters, differential filter, E-code
//    filters) and submits the surviving samples, grouped per module into
//    50–100 byte events;
//  * drains incoming events at each poll: monitoring events update the
//    /proc/cluster/<node>/... pseudo-files, control events retune this
//    publisher (including dynamic filter compilation);
//  * exposes everything through procfs, including a `control` file per
//    remote node used to deploy parameters and filters there.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "dproc/core/adapt.hpp"
#include "dproc/core/health.hpp"
#include "dproc/core/hierarchy.hpp"
#include "dproc/core/monitors.hpp"
#include "dproc/core/tuning.hpp"
#include "dproc/kecho/node.hpp"
#include "dproc/procfs/procfs.hpp"
#include "dproc/util/stats.hpp"

namespace dproc::core {

/// Calibration knobs for kernel-path costs that are not already covered by
/// the KECho cost model. Values are cycles on the reference 200 MHz CPU;
/// EXPERIMENTS.md discusses the calibration against the paper's figures.
struct OverheadModel {
  double collect_cycles_per_module = 2500;
  double procfs_update_cycles_per_event = 2500;
  double control_apply_cycles = 20000;
  double filter_compile_cycles_per_byte = 400;  // dynamic code generation
  double filter_exec_cycles_per_insn = 8;
  /// Indirect perturbation per event (cache pollution, softirq work,
  /// deferred bookkeeping). Charged to the kernel class but *outside* the
  /// rdtsc-measured submit/receive windows, like the real costs it models.
  double collateral_cycles_per_event = 40000;
};

/// Causal tracing and the staleness SLO watchdog. Disabled by default:
/// no trace context is appended to frames (byte-identical wire format),
/// no hops are recorded, and the watchdog never fires — the golden trace
/// and the benchmarks are untouched.
struct TraceConfig {
  bool enabled = false;
  /// End-to-end staleness budget (publish stamp → render at the consumer)
  /// for channels without an explicit entry. Zero disables the watchdog
  /// for such channels.
  SimDuration default_slo = SimDuration::zero();
  /// Per-channel-name budget overrides, e.g. {"dproc.monitor", 250 ms}.
  std::vector<std::pair<std::string, SimDuration>> channel_slo;

  [[nodiscard]] SimDuration slo_for(const std::string& channel) const {
    for (const auto& [name, budget] : channel_slo) {
      if (name == channel) return budget;
    }
    return default_slo;
  }
};

/// Per-period batch publishing, delta suppression and interest-scoped
/// fan-out. Everything defaults off: the wire format, the golden trace and
/// the baseline benchmarks are byte-identical to per-module publishing.
struct BatchConfig {
  /// Coalesce every module's post-filter samples into one MonitorBatch
  /// frame per poll period — one KECho submit (base cost, frame header,
  /// trace trailer) instead of one per module.
  bool enabled = false;
  /// Delta suppression: a batch entry whose value moved by no more than
  /// epsilon since this publisher last sent it is skipped. Negative
  /// disables. Only applies when `enabled`.
  double delta_epsilon = -1.0;
  /// Every Nth batch is a keyframe carrying all post-filter samples
  /// regardless of delta suppression, so restarted peers (whose caches are
  /// empty) converge within N periods. Values <= 1 make every batch a
  /// keyframe. Only meaningful with delta suppression on.
  int keyframe_every = 10;
  /// Honour peers' declared per-module interest sets (declare_interest):
  /// each channel member receives only the modules it registered for, via
  /// KECho's per-member payload selection — a node that only reads
  /// /proc/cluster/<n>/cpu never receives DISK/NET bytes. Peers that never
  /// declared anything receive the full batch. Only applies when `enabled`.
  bool interest = false;
};

/// Sketch-backed top-k support (off by default: filters using the sketch
/// builtins are rejected at compile time, no sketch state exists, and the
/// golden trace is byte-identical). When enabled, d-mon accepts the sketch
/// builtins in deployed filters and binds the first registered
/// TopKMonitor's sketch as their host; later TopKMonitors become auxiliary
/// sketches addressable via skmerge(i).
struct SketchConfig {
  bool enabled = false;
  /// Ranks a TopKMonitor publishes and refreshes for topk()/topkid().
  std::size_t k = 8;
  /// Sizing of sketches built by the cluster builder's standard modules.
  SketchParams params{};
  /// Entity population of the builder's stock per-PID TOP_K module; the
  /// constant-space experiment sweeps this while frame bytes stay flat.
  std::size_t process_count = 1000;
  /// Skew of the stock module's deterministic per-PID load distribution.
  double zipf_s = 1.2;
};

struct DmonConfig {
  SimDuration poll_period = seconds(1.0);
  std::string monitor_channel = "dproc.monitor";
  std::string control_channel = "dproc.control";
  OverheadModel overheads{};
  /// A peer's feed is flagged stale after this many poll periods without a
  /// monitoring update (graceful degradation under churn and partitions).
  int stale_after_periods = 3;
  /// Causal tracing + staleness SLO watchdog (off by default).
  TraceConfig trace{};
  /// Batched publishing, delta suppression, interest fan-out (off by
  /// default).
  BatchConfig batch{};
  /// Self-adapting periods under an overhead budget (off by default; see
  /// adapt.hpp). Regions are built from the modules registered before
  /// start(); later registrations keep their static periods.
  AdaptConfig adapt{};
  /// Hierarchical aggregation overlay (off by default; see hierarchy.hpp).
  HierarchyConfig hierarchy{};
  /// Health engine: history rings, health score, incident bundles (off by
  /// default; see health.hpp). Requires host telemetry to be meaningful —
  /// the cluster builder normalizes health.enabled => self_monitor.
  HealthConfig health{};
  /// The cluster-wide zone layout, built once (build_hierarchy) and shared
  /// by every d-mon so they all derive identical election answers. Required
  /// when hierarchy.enabled; ignored otherwise.
  std::shared_ptr<const HierarchyLayout> hierarchy_layout;
  /// Sketch-backed top-k filter support (off by default; see SketchConfig).
  SketchConfig sketch{};
};

/// Degradation state of one peer's monitoring feed, derived from update
/// recency and KECho membership events:
///  * kLive  — updating within the staleness horizon;
///  * kStale — silent past stale_after_periods poll periods, but not (yet)
///             evicted: consumers should distrust the cached values;
///  * kDead  — evicted from the monitoring channel (or never known).
enum class PeerState : std::uint8_t { kLive, kStale, kDead };
[[nodiscard]] const char* to_string(PeerState state);

struct PeerHealth {
  PeerState state = PeerState::kDead;
  SimTime last_update;    // last monitoring event from the peer
  bool has_data = false;  // any update since this d-mon (re)started
  /// False while the feed has a staleness-SLO violation inside the
  /// staleness horizon; consumers should distrust the cached values.
  bool slo_ok = true;
};

/// Per-poll measurements (what the paper's rdtsc instrumentation reports).
struct PollRecord {
  SimDuration submit_cost{0};
  SimDuration receive_cost{0};
  std::size_t events_submitted = 0;
  std::size_t events_received = 0;
  std::uint64_t filter_instructions = 0;
  /// Samples actually published this period (post-filter, post-delta).
  std::size_t samples_published = 0;
  /// Batch entries skipped by delta suppression this period.
  std::size_t delta_suppressed = 0;
  /// The batch published this period carried the keyframe flag.
  bool keyframe = false;
};

/// Contiguous metric-id range owned by one monitoring module.
struct MetricRange {
  MetricId first = 0;
  std::size_t count = 0;
};

/// Partitions `sorted` (ascending metric id) into one group per range
/// (`groups` is reset to ranges.size() entries). A sample whose id falls
/// outside every range — a stale or never-registered id emitted by a
/// filter — is grouped nowhere: it must not ride along in a neighbouring
/// module's frame under the wrong module. Returns the stray count.
/// `ranges` must be ascending and disjoint (d-mon's are contiguous from 0).
std::size_t group_by_range(const std::vector<MetricSample>& sorted,
                           const std::vector<MetricRange>& ranges,
                           std::vector<std::vector<MetricSample>>& groups);

class DMon {
 public:
  DMon(host::Host& host, net::Nic& nic, kecho::Node& kecho,
       procfs::ProcFs& procfs, DmonConfig config = {});
  ~DMon();
  DMon(const DMon&) = delete;
  DMon& operator=(const DMon&) = delete;

  /// Registers a monitoring module (before or after start()); assigns
  /// cluster-convention metric ids and creates the local pseudo-files.
  void register_module(std::unique_ptr<MonitoringModule> module);

  /// Declares a peer node: creates /proc/cluster/<name>/... including the
  /// control file through which applications retune that node.
  void add_peer(net::NodeId node, const std::string& name);

  /// Joins the channels and starts the periodic polling loop.
  void start();
  void stop();

  /// Restart after a crash: clears every peer's cached data and health
  /// (a rebooted monitor has no memory of the old values) and starts the
  /// polling loop again. The kecho node must have been restart()ed first.
  void restart();

  /// One polling iteration (normally driven by the internal timer; exposed
  /// for tests and microbenchmarks).
  PollRecord poll();

  // --- observation ------------------------------------------------------

  [[nodiscard]] const PollRecord& last_poll() const { return last_poll_; }
  [[nodiscard]] const StreamingStats& submit_cost_us() const {
    return submit_cost_us_;
  }
  [[nodiscard]] const StreamingStats& receive_cost_us() const {
    return receive_cost_us_;
  }
  [[nodiscard]] PublisherTuning& tuning() { return *tuning_; }
  [[nodiscard]] const std::vector<MetricDesc>& metric_table() const {
    return metric_table_;
  }
  [[nodiscard]] std::optional<MetricId> metric_id(const std::string& key) const;

  /// The node's current simulated time (for staleness checks).
  [[nodiscard]] SimTime host_now() const { return host_.engine().now(); }

  /// This node's latest locally collected value for a metric.
  [[nodiscard]] const MetricSample* local_metric(MetricId id) const {
    if (id >= last_collected_.size()) return nullptr;
    return &last_collected_[id];
  }

  /// Visits every declared peer: fn(node, name).
  template <typename Fn>
  void for_each_peer(Fn&& fn) const {
    for (const auto& [node, peer] : peers_) fn(node, peer.name);
  }

  /// Observer invoked after each poll's collection phase with the full
  /// local sample vector (history recorders, QoS managers, ...).
  using SampleObserver =
      std::function<void(const std::vector<MetricSample>&, SimTime)>;
  void add_sample_observer(SampleObserver observer) {
    sample_observers_.push_back(std::move(observer));
  }

  /// Health of a declared peer's feed; nullopt for undeclared peers.
  [[nodiscard]] std::optional<PeerHealth> peer_health(net::NodeId node) const;
  /// Convenience: kDead for undeclared peers.
  [[nodiscard]] PeerState peer_state(net::NodeId node) const;

  /// SLO watchdog verdict on a peer's monitoring feed: false while the
  /// peer has an end-to-end staleness violation within the staleness
  /// horizon (sticky so one late burst keeps the feed distrusted until
  /// fresh in-budget updates age it out). Undeclared peers report true —
  /// distrust for *missing* data is peer_state()'s job.
  [[nodiscard]] bool feed_within_slo(net::NodeId node) const;
  /// End-to-end violations the watchdog has flagged on this consumer.
  [[nodiscard]] std::uint64_t slo_violations() const {
    return tm_slo_violations_.value();
  }

  /// KECho channel id of the monitoring channel (0 before start()); trace
  /// consumers use it to stamp decision hops on the right channel.
  [[nodiscard]] kecho::ChannelId monitor_channel_id() const {
    return monitor_channel_ != nullptr ? monitor_channel_->id() : 0;
  }

  /// Latest value received from a peer, if any.
  [[nodiscard]] const RemoteMetric* remote_metric(net::NodeId node,
                                                  MetricId id) const;
  /// Convenience: remote metric by key.
  [[nodiscard]] const RemoteMetric* remote_metric(net::NodeId node,
                                                  const std::string& key) const;

  /// Applies a tuning request locally, as if it had arrived on the control
  /// channel (used by tests and by the node's own applications).
  Status apply_tuning(const TuningConfig& config);

  /// Sends a tuning request to a peer over the control channel.
  Status send_tuning(net::NodeId target, const TuningConfig& config);

  [[nodiscard]] const std::string& last_control_error() const {
    return last_control_error_;
  }

  /// The period-adaptation controller; nullptr until start() with
  /// DmonConfig::adapt.enabled.
  [[nodiscard]] PeriodController* adaptation() { return adapter_.get(); }
  [[nodiscard]] const PeriodController* adaptation() const {
    return adapter_.get();
  }

  /// The health engine; nullptr unless DmonConfig::health.enabled.
  [[nodiscard]] HealthEngine* health_engine() { return health_.get(); }
  [[nodiscard]] const HealthEngine* health_engine() const {
    return health_.get();
  }

  /// The sketch host deployed filters read; nullptr until a TopKMonitor is
  /// registered with DmonConfig::sketch.enabled.
  [[nodiscard]] FilterSketchBridge* sketch_bridge() {
    return sketch_bridge_.get();
  }

  /// Health-score trust verdict on a peer: false when the peer's published
  /// dproc_health_score (its own self-assessment, received over the
  /// monitoring channel) sits below the configured trust threshold. True
  /// with the health engine off, for undeclared peers, and before the
  /// first score arrives — missing data is peer_state()'s job.
  [[nodiscard]] bool peer_health_ok(net::NodeId node) const;

  // --- interest-scoped fan-out -------------------------------------------

  /// Broadcasts this node's module interest set on the control channel:
  /// publishers running with BatchConfig::interest then send this node only
  /// the listed modules' samples. An empty list restores the default
  /// (interested in everything). The declaration is remembered and
  /// re-broadcast whenever a new peer joins, so publishers that come up
  /// later converge without application help. Also writable as module names
  /// through /proc/dproc/interest ("all" clears).
  Status declare_interest(std::vector<std::string> modules);

  /// This node's current interest declaration (empty = everything).
  [[nodiscard]] const std::vector<std::string>& local_interest() const {
    return local_interest_;
  }

  /// Publisher-side view: interest sets peers have declared to us.
  [[nodiscard]] const std::map<net::NodeId, std::vector<std::string>>&
  peer_interests() const {
    return peer_interests_;
  }

  // --- hierarchical aggregation overlay ----------------------------------

  /// True when this node runs the zone overlay (enabled config + layout,
  /// after start()).
  [[nodiscard]] bool hierarchy_active() const { return hier_; }

  /// Latest root summary this node received (or built, at the acting
  /// root); nullptr before the first summary or with the overlay off.
  [[nodiscard]] const net::AggregateBatch* cluster_summary() const {
    return summary_valid_ ? &summary_ : nullptr;
  }
  [[nodiscard]] SimTime cluster_summary_at() const { return summary_at_; }

  /// The acting aggregator this node currently derives for a zone: the
  /// first election candidate not believed dead by the local membership
  /// view. nullopt off-hierarchy or when every candidate is down.
  [[nodiscard]] std::optional<std::size_t> zone_acting(
      std::uint32_t zone_id) const;

  /// Drill-down: temporarily pull `target`'s raw feed through the tree
  /// (enable), or cancel the pull. The subscription rides the summary
  /// channel, is re-announced every poll while active, and expires at the
  /// aggregators drill_ttl_periods after the last refresh — so a crashed
  /// requester's drill ages out on its own. Requires summary membership.
  Status drill_down(net::NodeId target, bool enable);
  /// Targets this node is currently drilling into (requester side).
  [[nodiscard]] const std::set<net::NodeId>& drill_targets() const {
    return local_drills_;
  }

  // --- error / savings accounting (plain counters; the telemetry twins
  // --- only move when the registry is enabled) ---------------------------

  /// Module collections dropped for returning the wrong sample count.
  [[nodiscard]] std::uint64_t collect_errors() const { return collect_errors_; }
  /// Publish-ready samples whose id fit no registered module range.
  [[nodiscard]] std::uint64_t stray_samples() const { return stray_samples_; }
  /// Wire bytes avoided by interest-filtered fan-out versus sending every
  /// member the full batch frame.
  [[nodiscard]] std::uint64_t interest_bytes_saved() const {
    return interest_bytes_saved_;
  }
  /// Batch entries skipped by delta suppression since start.
  [[nodiscard]] std::uint64_t delta_suppressed_total() const {
    return delta_suppressed_total_;
  }

 private:
  struct ModuleEntry {
    std::unique_ptr<MonitoringModule> module;
    MetricId first_id = 0;
    std::size_t metric_count = 0;
  };
  struct Peer {
    std::string name;
    std::vector<RemoteMetric> metrics;  // indexed by metric id
    SimTime declared_at;   // staleness basis until the first update
    SimTime last_update;   // last monitoring event received
    bool has_data = false;
    bool dead = false;     // evicted from the monitoring channel
    bool slo_violated = false;     // any SLO violation observed yet
    SimTime last_slo_violation;    // most recent violation (watchdog)
    /// Last state the flight recorder saw; transitions are recorded at
    /// each poll's liveness scan (kPeerLive/kPeerStale/kPeerDead).
    PeerState last_state = PeerState::kLive;
  };

  /// Per-zone aggregator duty: roll-up state, channel handles and
  /// drill-down routing of one zone this node is an election candidate
  /// for. Every node has at least its leaf-zone duty (leaf candidates are
  /// the zone members); standby candidates keep the state warm so failover
  /// needs no handoff protocol.
  struct ZoneDuty {
    const HierarchyZone* zone = nullptr;
    ZoneRollup rollup;
    kecho::Channel* channel = nullptr;         // channel(zone)
    kecho::Channel* parent_channel = nullptr;  // channel(parent)/summary
    /// Drill-down routing state: target -> (requester -> expiry).
    std::map<net::NodeId, std::map<net::NodeId, SimTime>> drills;
    /// Latest aggregate this node built for the zone (procfs rendering).
    net::AggregateBatch last_built;
    SimTime last_built_at;
    bool last_built_valid = false;
  };

  void on_monitor_event(const kecho::Event& event);
  void on_control_event(const kecho::Event& event);
  /// Stores a peer's interest declaration (control-channel kOpInterest).
  void on_interest_event(const kecho::Event& event, net::ByteReader& r);
  /// Legacy per-module publication (one frame per module with samples).
  void submit_per_module(const std::vector<MetricSample>& sorted,
                         PollRecord& record);
  /// Batched publication: one MonitorBatch frame per period, with delta
  /// suppression, keyframes and (optionally) interest-filtered fan-out.
  void submit_batch(std::vector<MetricSample>& sorted, PollRecord& record);
  /// Builds this period's publish batch (stray removal, keyframe phase,
  /// delta suppression) into `batch`, updating the published-value cache
  /// and the record; false when nothing survives (no frame goes out).
  bool build_publish_batch(std::vector<MetricSample>& sorted,
                           PollRecord& record, net::MonitorBatch& batch);

  // --- hierarchy ---------------------------------------------------------
  /// Joins zone channels, installs handlers and registers the overlay's
  /// procfs files, per this node's duties in the shared layout.
  void start_hierarchy();
  kecho::Channel* join_zone_channel(std::uint32_t zone_id);
  [[nodiscard]] ZoneDuty* duty_of(std::uint32_t zone_id);
  [[nodiscard]] bool hier_alive(std::size_t node) const;
  void on_zone_event(std::uint32_t zone_id, const kecho::Event& event);
  /// Leaf publication into the zone aggregator — a single-member submit,
  /// or a local fold (no wire frame) when this node is itself acting.
  void submit_hier(std::vector<MetricSample>& sorted, PollRecord& record);
  /// Aggregator duty: builds and republishes every acting zone's roll-up
  /// to the parent tier (the root's goes to the summary channel).
  void publish_rollups(PollRecord& record);
  /// Records a drill subscription on `duty` and propagates it down the
  /// tree (wire to remote child candidates, directly to own child duties).
  void apply_drill(ZoneDuty& duty, net::NodeId requester, net::NodeId target,
                   bool enable, SimTime expiry);
  /// Requester side: (re-)announces a drill on the summary channel and
  /// applies it locally when this node is itself a root candidate.
  void send_drill_request(net::NodeId target, bool enable);
  /// Forwards a drilled origin's raw batch one hop up the acting chain,
  /// or to the requesters at the root.
  void send_drill_up(ZoneDuty& duty, net::NodeId origin,
                     const net::MessagePtr& frame, PollRecord* record);
  /// Leaf capture: wraps `batch` as drill data if `origin` is drilled.
  void maybe_forward_drill(ZoneDuty& leaf_duty, net::NodeId origin,
                           const net::MonitorBatch& batch, PollRecord* record);
  void prune_drills(SimTime now);
  void register_hier_files();
  /// Looks up (or lazily declares, from the fabric name table) a peer.
  Peer& ensure_peer(net::NodeId origin);
  void apply_batch_to_peer(Peer& peer, const net::MonitorBatch& batch,
                           std::uint64_t trace_id);
  /// Re-sends the local interest declaration (no-op before the control
  /// channel is ready; errors are ignored — the next join retries).
  void broadcast_interest();
  /// Counts samples outside every registered range; warns on first sight.
  void note_strays(std::size_t count);
  /// Allocates the next publish-side trace context (publish hop stamped).
  [[nodiscard]] net::TraceContext begin_trace(kecho::ChannelId channel);
  /// Stamps the render hop for a delivered traced event and runs the
  /// staleness-SLO watchdog against `slo_channel`'s budget.
  void note_render(const kecho::Event& event, const std::string& slo_channel,
                   Peer* peer);
  void on_membership(kecho::MemberEventKind kind, net::NodeId node);
  [[nodiscard]] PeerState state_of(const Peer& peer) const;
  void register_local_files(const ModuleEntry& entry);
  void rebuild_tuning();
  void charge(double cycles);
  /// Tail of every poll(): accumulates this poll's kernel cost into the
  /// adaptation window and, at interval boundaries, runs one controller
  /// round and applies the resulting adaptive periods.
  void run_adaptation(SimDuration kernel_before);
  /// Per-poll liveness scan: records peer state transitions into the
  /// flight recorder and, with the health engine on, feeds it the
  /// staleness census for this round.
  void scan_peer_health(SimTime now);

  host::Host& host_;
  net::Nic& nic_;
  kecho::Node& kecho_;
  procfs::ProcFs& procfs_;
  DmonConfig config_;

  std::vector<ModuleEntry> modules_;
  std::vector<MetricDesc> metric_table_;
  std::map<std::string, MetricId> metric_ids_;
  std::vector<MetricSample> last_collected_;  // local values, id order

  std::unique_ptr<PublisherTuning> tuning_;
  std::map<net::NodeId, Peer> peers_;

  /// Bridge from the first TopKMonitor's sketch to the filter VM
  /// (DmonConfig::sketch; additional TopKMonitors register as auxiliaries).
  std::unique_ptr<FilterSketchBridge> sketch_bridge_;

  // --- health engine (DmonConfig::health; see health.hpp) ----------------
  std::unique_ptr<HealthEngine> health_;
  /// Cached metric id of the peers' published health score (resolved on
  /// first use; nullopt until DPROC_MON registers with health metrics).
  mutable std::optional<MetricId> health_score_id_;

  // --- period adaptation (DmonConfig::adapt; see adapt.hpp) --------------
  std::unique_ptr<PeriodController> adapter_;
  int adapt_poll_count_ = 0;            // polls since the last round
  SimDuration adapt_window_cost_{0};    // kernel cost over those polls

  kecho::Channel* monitor_channel_ = nullptr;
  kecho::Channel* control_channel_ = nullptr;
  sim::EventHandle poll_timer_;
  bool started_ = false;

  // Costs accumulated by event handlers during the current kecho.poll().
  SimDuration handler_cost_{0};

  std::uint32_t trace_seq_ = 0;  // per-node trace-id sequence

  // --- batching state ----------------------------------------------------
  /// Last value this publisher sent per metric id (delta suppression and
  /// the adaptation controller's accuracy baseline; see adapt.hpp).
  std::vector<PublishedState> last_published_;
  /// Next batch must be a keyframe regardless of phase: set on any
  /// effective-period change (control write or adaptation round) so
  /// delta-suppressed subscribers re-anchor instead of decoding against a
  /// stale baseline until the next scheduled keyframe.
  bool force_keyframe_ = false;
  std::uint64_t batch_seq_ = 0;  // batches submitted; phase for keyframes
  /// Module ranges in id order (mirror of modules_, for grouping).
  std::vector<MetricRange> module_ranges_;
  std::vector<std::vector<MetricSample>> groups_scratch_;
  /// Interest sets declared *by* peers (publisher side), sorted + deduped.
  std::map<net::NodeId, std::vector<std::string>> peer_interests_;
  /// Interest this node declared (subscriber side); re-broadcast on joins.
  std::vector<std::string> local_interest_;
  bool interest_declared_ = false;
  bool warned_strays_ = false;

  // --- receive/encode scratch, reused across periods so the steady state
  // --- allocates nothing (see perf_regression_test) ----------------------
  net::MonitorBatch rx_batch_;        // on_monitor_event / on_zone_event
  net::MonitorBatch batch_scratch_;   // this period's outgoing batch
  net::MonitorBatch filtered_scratch_;  // interest-filtered variant
  net::AggregateBatch agg_scratch_;   // outgoing roll-up
  net::AggregateBatch agg_rx_;        // incoming roll-up
  /// Per-distinct-interest-set frame cache (cleared, capacity kept).
  std::vector<std::pair<const std::vector<std::string>*, net::MessagePtr>>
      interest_cache_;

  // --- hierarchy state ---------------------------------------------------
  bool hier_ = false;
  const HierarchyZone* leaf_zone_ = nullptr;
  std::vector<ZoneDuty> duties_;  // leaf duty first
  std::map<std::uint32_t, kecho::Channel*> zone_channels_;
  /// Nodes this d-mon believes dead (membership evictions/leaves) — the
  /// local view the deterministic election runs against.
  std::set<std::size_t> hier_dead_;
  std::set<net::NodeId> local_drills_;  // requester-side drill targets
  net::AggregateBatch summary_;         // latest root summary
  SimTime summary_at_;
  bool summary_valid_ = false;
  bool hier_files_registered_ = false;

  /// Per-tier overlay telemetry (indexed by the publishing zone's tier),
  /// resolved when the overlay starts.
  struct TierTelemetry {
    telemetry::Counter* tx_events = nullptr;
    telemetry::Counter* tx_bytes = nullptr;
    telemetry::Counter* rx_events = nullptr;
    telemetry::Counter* rx_bytes = nullptr;
  };
  std::vector<TierTelemetry> tm_tier_;
  telemetry::Counter* tm_hier_rollups_ = nullptr;
  telemetry::Counter* tm_hier_drill_req_ = nullptr;
  telemetry::Counter* tm_hier_drill_data_ = nullptr;

  std::uint64_t collect_errors_ = 0;
  std::uint64_t stray_samples_ = 0;
  std::uint64_t interest_bytes_saved_ = 0;
  std::uint64_t delta_suppressed_total_ = 0;

  std::vector<SampleObserver> sample_observers_;
  PollRecord last_poll_;
  StreamingStats submit_cost_us_;
  StreamingStats receive_cost_us_;
  std::string last_control_error_;

  /// Self-monitoring instruments, resolved once from the host registry at
  /// construction; inert (a branch each) until telemetry is enabled.
  telemetry::Counter& tm_polls_;
  telemetry::Counter& tm_events_submitted_;
  telemetry::Counter& tm_events_received_;
  telemetry::Counter& tm_suppressed_;
  telemetry::Counter& tm_filter_compiles_;
  telemetry::Counter& tm_filter_insns_;
  telemetry::Counter& tm_slo_violations_;
  telemetry::Counter& tm_collect_errors_;
  telemetry::Counter& tm_stray_samples_;
  telemetry::Counter& tm_batch_submits_;
  telemetry::Counter& tm_batch_samples_;
  telemetry::Counter& tm_batch_delta_suppressed_;
  telemetry::Counter& tm_batch_keyframes_;
  telemetry::Counter& tm_bytes_saved_;
  telemetry::Counter& tm_adapt_rounds_;
  telemetry::Counter& tm_adapt_changes_;
  telemetry::Gauge& tm_adapt_overhead_;
  telemetry::LatencyRecorder& tm_poll_us_;
  telemetry::LatencyRecorder& tm_submit_us_;
  telemetry::LatencyRecorder& tm_receive_us_;
};

}  // namespace dproc::core
