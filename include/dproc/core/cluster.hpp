// Cluster builder: assembles the full simulated testbed.
//
// Reproduces the paper's experimental platform by default: N nodes (the
// paper uses 8 Pentium Pro 200 MHz machines, 512 MB RAM, 512 KB cache) on
// switched 100 Mbps Fast Ethernet; the channel registry runs on node 0; an
// optional dual-switch topology puts a shared trunk between two node groups
// for the Figure 10/11 perturbation experiments.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dproc/core/dmon.hpp"
#include "dproc/host/host.hpp"
#include "dproc/kecho/node.hpp"
#include "dproc/kecho/registry.hpp"
#include "dproc/net/fabric.hpp"
#include "dproc/net/nic.hpp"
#include "dproc/procfs/procfs.hpp"
#include "dproc/sim/engine.hpp"
#include "dproc/sim/fault.hpp"

namespace dproc::core {

struct ClusterConfig {
  std::size_t node_count = 8;
  host::HostConfig host_template{};  // name field is overridden per node
  net::LinkConfig link{};
  DmonConfig dmon{};
  /// KECho liveness (heartbeats, eviction, registry retries). Disabled by
  /// default so baseline experiments are byte-identical to the
  /// failure-unaware stack; chaos tests turn it on.
  kecho::LivenessConfig liveness{};
  /// Registry replication + client-side channel cache. Disabled by default:
  /// one directory server on node 0, no replica traffic, no cache — the
  /// golden trace stays byte-identical. Enabled, replica r runs on node r
  /// (r < registry.replicas) and every kecho::Node gets the replica list
  /// and the lease-stamped cache.
  kecho::RegistryReplication registry{};
  std::uint64_t seed = 0x5eed;
  /// Node names; generated ("node0", ...) when empty. The paper's 3-node
  /// example uses {"alan", "maui", "etna"}.
  std::vector<std::string> node_names;
  /// Dual-switch topology: nodes [0, trunk_split) sit on switch A, the rest
  /// on switch B, with one full-duplex trunk between them. nullopt = single
  /// non-blocking switch (star).
  std::optional<std::size_t> trunk_split;
  net::LinkConfig trunk{};
  /// Which nodes run a d-mon: nullopt = all, empty list = none. The
  /// Figure 4/5 benches vary this count.
  std::optional<std::vector<std::size_t>> dproc_nodes;
  /// Replaces the standard module set when non-null (e.g. Figure 7's 5 KB
  /// synthetic events). Called once per dproc node.
  std::function<void(DMon&, host::Host&, net::Nic&)> module_factory;
  /// Self-monitoring: enables every host's telemetry registry, appends the
  /// DPROC_MON module on every dproc node (uniformly, preserving the
  /// cluster-wide metric-id convention), mirrors the registry server's op
  /// counters into node 0's telemetry, and installs a fabric trace hook
  /// attributing per-node packet sends/delivers/drops. Off by default: the
  /// golden trace and the baseline benchmarks are byte-identical without it.
  bool self_monitor = false;
  /// Causal tracing + staleness SLO watchdog: enables every host's hop log
  /// and makes every d-mon publish trace contexts on the wire. Off by
  /// default for the same byte-identity reason as self_monitor. Copied
  /// into DmonConfig::trace for every d-mon the builder creates.
  TraceConfig trace{};
  /// Batched per-period publishing, delta suppression and interest-scoped
  /// fan-out. Off by default for the same byte-identity reason. Copied
  /// into DmonConfig::batch for every d-mon the builder creates.
  BatchConfig batch{};
  /// Self-adapting monitoring periods under an overhead budget. Off by
  /// default for the same byte-identity reason. Copied into
  /// DmonConfig::adapt for every d-mon the builder creates.
  AdaptConfig adapt{};
  /// Hierarchical aggregation overlay: zone aggregators, roll-up
  /// republish, drill-down. Off by default for the same byte-identity
  /// reason. The builder constructs one HierarchyLayout for the cluster
  /// and shares it with every d-mon. With the overlay on, peer declaration
  /// is zone-scoped (each node pre-declares only its zone mates; everyone
  /// else is learned lazily) instead of all-pairs.
  HierarchyConfig hierarchy{};
  /// Flight recorder: per-host structured event rings for post-mortem
  /// debugging. Off by default for the same byte-identity reason. Enabled,
  /// every host's recorder is configured and every kernel service records
  /// its state transitions; the fault injector records ground truth into
  /// every host's ring.
  telemetry::FlightConfig flight{};
  /// Cluster health engine: per-metric history rings, a per-node health
  /// score published as dproc_health_* metrics, and triggered incident
  /// bundles. Off by default for the same byte-identity reason. Implies
  /// self_monitor (the score is computed from telemetry counters). Copied
  /// into DmonConfig::health for every d-mon the builder creates.
  HealthConfig health{};
  /// Sketch-backed TOP_K monitoring: appends a constant-space per-PID
  /// heavy-hitter module on every dproc node and lets deployed filters use
  /// the sketch builtins (topk/topkid/cmlookup/skmerge). Off by default
  /// for the same byte-identity reason. Copied into DmonConfig::sketch for
  /// every d-mon the builder creates.
  SketchConfig sketch{};
};

/// One fully wired cluster node.
struct ClusterNode {
  std::unique_ptr<host::Host> host;
  std::unique_ptr<net::Nic> nic;
  std::unique_ptr<procfs::ProcFs> procfs;
  std::unique_ptr<kecho::Node> kecho;
  std::unique_ptr<DMon> dmon;  // null when this node does not run dproc
};

class Cluster {
 public:
  explicit Cluster(sim::Engine& engine, ClusterConfig config = {});
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Starts every d-mon and returns once they are scheduled; run the engine
  /// for a couple of simulated seconds to let channels establish.
  void start_dproc();

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] net::Fabric& fabric() { return *fabric_; }
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] ClusterNode& node(std::size_t i) { return nodes_.at(i); }
  [[nodiscard]] host::Host& host(std::size_t i) { return *nodes_.at(i).host; }
  [[nodiscard]] net::Nic& nic(std::size_t i) { return *nodes_.at(i).nic; }
  [[nodiscard]] DMon* dmon(std::size_t i) { return nodes_.at(i).dmon.get(); }
  [[nodiscard]] procfs::ProcFs& procfs(std::size_t i) {
    return *nodes_.at(i).procfs;
  }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  /// The registry: the single server, or replica 0 when replicated.
  [[nodiscard]] kecho::RegistryServer& registry() {
    return registry_ ? *registry_ : *registry_replicas_.front();
  }
  /// Replicated-registry observability (valid when config().registry
  /// is enabled).
  [[nodiscard]] std::size_t registry_replica_count() const {
    return registry_ ? 1 : registry_replicas_.size();
  }
  [[nodiscard]] kecho::RegistryServer& registry_replica(std::size_t r) {
    return registry_ ? *registry_ : *registry_replicas_.at(r);
  }
  /// The replica currently claiming leadership (by its own lease view), or
  /// nullptr mid-failover / when no online replica claims the lease.
  [[nodiscard]] kecho::RegistryServer* registry_leader();

  /// Access links of node `i` in the fabric (both topologies): uplink
  /// carries its traffic toward the switch, downlink toward the node.
  [[nodiscard]] net::LinkId uplink(std::size_t i) const {
    return ports_.at(i).first;
  }
  [[nodiscard]] net::LinkId downlink(std::size_t i) const {
    return ports_.at(i).second;
  }

  // --- failure choreography ----------------------------------------------

  /// Fail-stop crash of node `i`: the fabric drops its packets, its d-mon
  /// stops polling, its kecho state is wiped.
  void crash_node(std::size_t i);
  /// Restart after crash_node: the kernel re-joins its channels and the
  /// d-mon resumes with empty caches.
  void restart_node(std::size_t i);
  /// Graceful departure: announces kMemberLeave (node stays powered so the
  /// announcement and its retries actually leave the NIC).
  void leave_node(std::size_t i);

  /// Hooks binding the sim-layer fault injector to this cluster's fabric,
  /// registry, and node lifecycle.
  [[nodiscard]] sim::FaultHooks fault_hooks();
  /// Schedules a fault plan against this cluster; returns the injector for
  /// observation. Repeated calls compose onto the same injector.
  sim::FaultInjector& inject(const sim::FaultPlan& plan);
  [[nodiscard]] sim::FaultInjector* injector() { return injector_.get(); }

  /// Registers the standard module set (CPU, MEM, DISK, NET, PMC) on one
  /// node's d-mon; the builder calls this for every dproc node.
  static void register_standard_modules(DMon& dmon, host::Host& host,
                                        net::Nic& nic,
                                        double link_capacity_bps);

 private:
  sim::Engine& engine_;
  ClusterConfig config_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<kecho::RegistryServer> registry_;  // single-server mode
  /// Replica r on node r (replicated mode; registry_ is null then).
  std::vector<std::unique_ptr<kecho::RegistryServer>> registry_replicas_;
  std::vector<ClusterNode> nodes_;
  std::vector<std::pair<net::LinkId, net::LinkId>> ports_;  // per-node
  std::unique_ptr<sim::FaultInjector> injector_;
};

}  // namespace dproc::core
