// Publisher-side stream tuning: parameters and dynamic filters.
//
// The paper distinguishes two customization mechanisms and argues parameters
// are the cheap path and E-code filters the powerful one (§3):
//
//  * parameters — update periods (optionally conditional on another metric:
//    "update CPU info every 2 s IF utilization is above 80%") and thresholds
//    (above/below/range/percent-change bounds);
//  * dynamic filters — E-code programs shipped over the control channel,
//    compiled at the publishing host, and run before every publication.
//
// Tuning is publisher-global, matching the paper's model of filters that
// "manipulate the information being sent out by a dproc node".
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dproc/core/metrics.hpp"
#include "dproc/ecode/ecode.hpp"
#include "dproc/util/status.hpp"
#include "dproc/util/time.hpp"

namespace dproc::core {

enum class ThresholdKind : std::uint8_t { kAbove, kBelow, kRange, kChangePct };

struct Threshold {
  std::string metric;
  ThresholdKind kind{};
  double a = 0.0;
  double b = 0.0;  // kRange upper bound
};

struct MetricPeriod {
  std::string metric;
  SimDuration period{};
  // Optional condition on another metric's current value.
  bool conditional = false;
  std::string cond_metric;
  ThresholdKind cond_kind{};  // kAbove or kBelow
  double cond_value = 0.0;
};

/// A tuning request as parsed from a control-file write / decoded from a
/// control-channel event. Metric references travel as names and are
/// resolved at the publisher.
struct TuningConfig {
  bool clear = false;  // reset to defaults before applying the rest
  std::optional<SimDuration> default_period;
  std::vector<MetricPeriod> metric_periods;
  std::vector<Threshold> thresholds;
  std::optional<double> differential_pct;  // the paper's differential filter
  std::optional<std::string> filter_source;  // E-code; empty string removes
  /// Module-internal sampling periods ("window cpu 5"): the paper's
  /// application-specified CPU_MON run-queue averaging window (§2.1).
  std::vector<std::pair<std::string, SimDuration>> module_periods;
  /// Filter instruction budget ("fuel <n>"): caps the VM fuel available to
  /// the deployed filter per evaluation. Must be positive and no larger
  /// than ecode::VmLimits::kMaxInstructionLimit — the control file is
  /// user-writable, and an unbounded value would let a runaway filter
  /// outlive the out-of-fuel guard.
  std::optional<std::uint64_t> max_filter_instructions;
};

/// Parses the control-file command language:
///   period <seconds>
///   period <metric> <seconds> [if <metric> above|below <value>]
///   threshold <metric> above <v> | below <v> | range <lo> <hi> | change <pct>%
///   differential <pct>%
///   window <module> <seconds>      (module-internal sampling period)
///   fuel <n>                       (per-evaluation filter instruction cap)
///   filter <rest of the write is E-code source>
///   clear
Result<TuningConfig> parse_control_commands(const std::string& text);

/// Wire codec for control-channel tuning events.
std::vector<std::uint8_t> encode_tuning(const TuningConfig& config);
Result<TuningConfig> decode_tuning(std::span<const std::uint8_t> bytes);

/// What a publication decision costs and contains.
struct Decision {
  std::vector<MetricSample> to_send;
  std::uint64_t filter_instructions = 0;
  bool filter_error = false;  // runtime error: data passed through unfiltered
};

/// Runtime tuning state at one publisher.
class PublisherTuning {
 public:
  /// `metric_ids` maps metric key → id; `descs` is the full metric table in
  /// id order. Both must outlive this object’s apply() calls.
  PublisherTuning(SimDuration default_period,
                  std::map<std::string, MetricId> metric_ids);

  /// Applies a config; compiles the filter if one is present. On error the
  /// previous state is kept and the error is returned (the paper's d-mon
  /// reports compile failures instead of installing broken filters).
  Status apply(const TuningConfig& config);

  /// Checks a config without applying anything: every metric reference must
  /// resolve and the filter must compile. Lets the *sender* of a control
  /// request reject bad parameters before they travel (metric ids are a
  /// cluster-wide convention, so local resolution is authoritative).
  /// Module-period targets are not checked — module sets are per-node.
  [[nodiscard]] Status validate(const TuningConfig& config) const;

  /// Decides which samples to publish now. `samples` holds every metric in
  /// id order. Updates last-sent bookkeeping for the chosen metrics.
  Decision decide(const std::vector<MetricSample>& samples, SimTime now);

  [[nodiscard]] bool has_filter() const { return filter_.has_value(); }
  [[nodiscard]] const std::string& filter_source() const {
    static const std::string kEmpty;
    return filter_ ? filter_->source() : kEmpty;
  }
  [[nodiscard]] std::optional<double> differential_pct() const {
    return differential_pct_;
  }
  [[nodiscard]] SimDuration default_period() const { return default_period_; }

  /// Accept the sketch builtins (topk/...) in filters compiled here. Set by
  /// d-mon from its SketchConfig before any filter arrives; off by default
  /// so a sketch-less publisher rejects such filters at compile time.
  void enable_sketch_builtins(bool on) { sketch_builtins_ = on; }
  [[nodiscard]] bool sketch_builtins() const { return sketch_builtins_; }

  /// Binds the sketch state filter evaluations read (not owned; nullptr
  /// detaches). Typically a FilterSketchBridge over a TopKMonitor's sketch.
  void set_sketch_host(ecode::SketchHost* host) {
    sketch_host_ = host;
    vm_.set_sketch_host(host);
  }

  /// Effective VM limits (reflects any `fuel <n>` override).
  [[nodiscard]] const ecode::VmLimits& vm_limits() const {
    return vm_.limits();
  }

  /// Successful filter compilations performed by apply(). Re-installing an
  /// unchanged source hits the compiled-program cache and does not move
  /// this counter — d-mon uses the delta to charge compile cycles only for
  /// real compilations.
  [[nodiscard]] std::uint64_t filter_compiles() const {
    return filter_compiles_;
  }

  /// Adaptation-owned per-metric periods (core/adapt). They sit between the
  /// operator's rules and the default: an explicit `period <metric> ...`
  /// rule always wins, an adaptive period overrides only the default.
  /// Non-positive clears the metric's adaptive period.
  void set_adaptive_period(MetricId id, SimDuration period);
  void clear_adaptive_periods();
  [[nodiscard]] std::optional<SimDuration> adaptive_period(MetricId id) const;

  /// Renders the active configuration (for the local status pseudo-file).
  [[nodiscard]] std::string describe() const;

 private:
  struct ResolvedPeriod {
    SimDuration period;
    bool conditional = false;
    MetricId cond_metric = 0;
    ThresholdKind cond_kind{};
    double cond_value = 0.0;
  };
  struct ResolvedThreshold {
    ThresholdKind kind{};
    double a = 0.0, b = 0.0;
  };
  struct SentState {
    bool sent = false;
    double last_value = 0.0;
    SimTime last_time;
  };

  Result<MetricId> resolve(const std::string& name) const;
  /// Compile environment for filter compilation: metric constants plus the
  /// sketch-builtin gate.
  [[nodiscard]] ecode::CompileEnv compile_env() const;
  /// Reconstructs vm_ with the current fuel override, preserving the
  /// dispatch tier default and the bound sketch host.
  void rebuild_vm();
  [[nodiscard]] bool passes_parameters(const MetricSample& sample,
                                       const std::vector<MetricSample>& all,
                                       SimTime now) const;

  SimDuration base_period_;     // construction-time default
  SimDuration default_period_;  // possibly overridden by control
  std::map<std::string, MetricId> metric_ids_;

  std::map<MetricId, ResolvedPeriod> periods_;
  /// Controller-set periods, indexed by metric id; zero = unset.
  std::vector<SimDuration> adaptive_;
  std::map<MetricId, std::vector<ResolvedThreshold>> thresholds_;
  std::optional<double> differential_pct_;
  std::optional<ecode::Filter> filter_;
  /// Sketch-builtin gate active when filter_ was compiled (cache key part).
  bool filter_sketch_env_ = false;
  std::optional<std::uint64_t> fuel_override_;

  bool sketch_builtins_ = false;
  ecode::SketchHost* sketch_host_ = nullptr;
  std::uint64_t filter_compiles_ = 0;

  // Reused across decide() calls so the per-poll filter path is
  // allocation-free in steady state.
  ecode::Vm vm_;
  ecode::FilterResult filter_result_;
  std::vector<ecode::Sample> filter_input_;

  std::vector<SentState> sent_;  // indexed by metric id
};

}  // namespace dproc::core
