// In-memory /proc pseudo-filesystem.
//
// Files are handler pairs: reads render current state on demand (like a real
// procfs read_proc), writes parse user input and may fail with an error the
// caller sees (the errno + dmesg experience). dproc mounts its cluster tree
// under /proc/cluster/<node>/..., with one `control` file per node entry for
// parameters and filter deployment.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dproc/util/status.hpp"

namespace dproc::procfs {

class ProcFs {
 public:
  using ReadHandler = std::function<std::string()>;
  using WriteHandler = std::function<Status(const std::string&)>;

  ProcFs();
  ProcFs(const ProcFs&) = delete;
  ProcFs& operator=(const ProcFs&) = delete;

  /// Registers a pseudo-file; intermediate directories are created. A null
  /// `write` makes the file read-only (writes return PERMISSION_DENIED).
  Status register_file(const std::string& path, ReadHandler read,
                       WriteHandler write = {});

  /// Creates a directory (and parents). Idempotent.
  Status mkdir(const std::string& path);

  /// Removes a file or directory subtree.
  Status remove(const std::string& path);

  [[nodiscard]] Result<std::string> read(const std::string& path) const;
  Status write(const std::string& path, const std::string& data);

  /// Lists directory entries in name order; directories get a '/' suffix.
  [[nodiscard]] Result<std::vector<std::string>> list(
      const std::string& path) const;

  [[nodiscard]] bool exists(const std::string& path) const;
  [[nodiscard]] bool is_directory(const std::string& path) const;

  /// Renders the whole tree as an indented listing (Figure 1 style).
  [[nodiscard]] std::string tree() const;

 private:
  struct Node {
    bool directory = true;
    ReadHandler read;
    WriteHandler write;
    std::map<std::string, std::unique_ptr<Node>> children;
  };

  static Result<std::vector<std::string>> split_path(const std::string& path);
  [[nodiscard]] const Node* find(const std::string& path) const;
  Node* ensure_directories(const std::vector<std::string>& components,
                           std::size_t count, Status& status);
  static void render(const Node& node, const std::string& name, int depth,
                     std::string& out);

  std::unique_ptr<Node> root_;
};

}  // namespace dproc::procfs
