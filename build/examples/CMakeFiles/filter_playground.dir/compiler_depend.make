# Empty compiler generated dependencies file for filter_playground.
# This may be replaced when dependencies are built.
