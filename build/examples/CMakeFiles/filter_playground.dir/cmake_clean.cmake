file(REMOVE_RECURSE
  "CMakeFiles/filter_playground.dir/filter_playground.cpp.o"
  "CMakeFiles/filter_playground.dir/filter_playground.cpp.o.d"
  "filter_playground"
  "filter_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
