# Empty dependencies file for dproc_shell.
# This may be replaced when dependencies are built.
