file(REMOVE_RECURSE
  "CMakeFiles/dproc_shell.dir/dproc_shell.cpp.o"
  "CMakeFiles/dproc_shell.dir/dproc_shell.cpp.o.d"
  "dproc_shell"
  "dproc_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dproc_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
