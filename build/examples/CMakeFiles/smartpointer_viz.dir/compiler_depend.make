# Empty compiler generated dependencies file for smartpointer_viz.
# This may be replaced when dependencies are built.
