file(REMOVE_RECURSE
  "CMakeFiles/smartpointer_viz.dir/smartpointer_viz.cpp.o"
  "CMakeFiles/smartpointer_viz.dir/smartpointer_viz.cpp.o.d"
  "smartpointer_viz"
  "smartpointer_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smartpointer_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
