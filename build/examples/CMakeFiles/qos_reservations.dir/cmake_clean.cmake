file(REMOVE_RECURSE
  "CMakeFiles/qos_reservations.dir/qos_reservations.cpp.o"
  "CMakeFiles/qos_reservations.dir/qos_reservations.cpp.o.d"
  "qos_reservations"
  "qos_reservations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_reservations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
