# Empty compiler generated dependencies file for qos_reservations.
# This may be replaced when dependencies are built.
