# Empty dependencies file for dproc_procfs.
# This may be replaced when dependencies are built.
