file(REMOVE_RECURSE
  "CMakeFiles/dproc_procfs.dir/procfs.cpp.o"
  "CMakeFiles/dproc_procfs.dir/procfs.cpp.o.d"
  "libdproc_procfs.a"
  "libdproc_procfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dproc_procfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
