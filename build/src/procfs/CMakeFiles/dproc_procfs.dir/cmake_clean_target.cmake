file(REMOVE_RECURSE
  "libdproc_procfs.a"
)
