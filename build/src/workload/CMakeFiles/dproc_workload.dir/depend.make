# Empty dependencies file for dproc_workload.
# This may be replaced when dependencies are built.
