file(REMOVE_RECURSE
  "CMakeFiles/dproc_workload.dir/iperf.cpp.o"
  "CMakeFiles/dproc_workload.dir/iperf.cpp.o.d"
  "CMakeFiles/dproc_workload.dir/linpack.cpp.o"
  "CMakeFiles/dproc_workload.dir/linpack.cpp.o.d"
  "libdproc_workload.a"
  "libdproc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dproc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
