file(REMOVE_RECURSE
  "libdproc_workload.a"
)
