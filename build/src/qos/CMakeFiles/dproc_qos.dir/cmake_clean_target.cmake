file(REMOVE_RECURSE
  "libdproc_qos.a"
)
