file(REMOVE_RECURSE
  "CMakeFiles/dproc_qos.dir/manager.cpp.o"
  "CMakeFiles/dproc_qos.dir/manager.cpp.o.d"
  "libdproc_qos.a"
  "libdproc_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dproc_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
