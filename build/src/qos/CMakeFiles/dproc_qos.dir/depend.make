# Empty dependencies file for dproc_qos.
# This may be replaced when dependencies are built.
