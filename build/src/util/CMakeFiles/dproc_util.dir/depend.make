# Empty dependencies file for dproc_util.
# This may be replaced when dependencies are built.
