file(REMOVE_RECURSE
  "CMakeFiles/dproc_util.dir/logging.cpp.o"
  "CMakeFiles/dproc_util.dir/logging.cpp.o.d"
  "CMakeFiles/dproc_util.dir/stats.cpp.o"
  "CMakeFiles/dproc_util.dir/stats.cpp.o.d"
  "libdproc_util.a"
  "libdproc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dproc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
