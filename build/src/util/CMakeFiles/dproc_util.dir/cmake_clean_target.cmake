file(REMOVE_RECURSE
  "libdproc_util.a"
)
