file(REMOVE_RECURSE
  "libdproc_core.a"
)
