file(REMOVE_RECURSE
  "CMakeFiles/dproc_core.dir/aggregate.cpp.o"
  "CMakeFiles/dproc_core.dir/aggregate.cpp.o.d"
  "CMakeFiles/dproc_core.dir/cluster.cpp.o"
  "CMakeFiles/dproc_core.dir/cluster.cpp.o.d"
  "CMakeFiles/dproc_core.dir/control.cpp.o"
  "CMakeFiles/dproc_core.dir/control.cpp.o.d"
  "CMakeFiles/dproc_core.dir/dmon.cpp.o"
  "CMakeFiles/dproc_core.dir/dmon.cpp.o.d"
  "CMakeFiles/dproc_core.dir/history.cpp.o"
  "CMakeFiles/dproc_core.dir/history.cpp.o.d"
  "CMakeFiles/dproc_core.dir/monitors.cpp.o"
  "CMakeFiles/dproc_core.dir/monitors.cpp.o.d"
  "CMakeFiles/dproc_core.dir/tuning.cpp.o"
  "CMakeFiles/dproc_core.dir/tuning.cpp.o.d"
  "libdproc_core.a"
  "libdproc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dproc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
