# Empty dependencies file for dproc_core.
# This may be replaced when dependencies are built.
