file(REMOVE_RECURSE
  "CMakeFiles/dproc_host.dir/battery.cpp.o"
  "CMakeFiles/dproc_host.dir/battery.cpp.o.d"
  "CMakeFiles/dproc_host.dir/cpu.cpp.o"
  "CMakeFiles/dproc_host.dir/cpu.cpp.o.d"
  "CMakeFiles/dproc_host.dir/disk.cpp.o"
  "CMakeFiles/dproc_host.dir/disk.cpp.o.d"
  "libdproc_host.a"
  "libdproc_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dproc_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
