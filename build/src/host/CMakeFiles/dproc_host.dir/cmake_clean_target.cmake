file(REMOVE_RECURSE
  "libdproc_host.a"
)
