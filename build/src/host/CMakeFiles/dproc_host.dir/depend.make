# Empty dependencies file for dproc_host.
# This may be replaced when dependencies are built.
