# Empty dependencies file for dproc_kecho.
# This may be replaced when dependencies are built.
