file(REMOVE_RECURSE
  "CMakeFiles/dproc_kecho.dir/node.cpp.o"
  "CMakeFiles/dproc_kecho.dir/node.cpp.o.d"
  "CMakeFiles/dproc_kecho.dir/registry.cpp.o"
  "CMakeFiles/dproc_kecho.dir/registry.cpp.o.d"
  "libdproc_kecho.a"
  "libdproc_kecho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dproc_kecho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
