file(REMOVE_RECURSE
  "libdproc_kecho.a"
)
