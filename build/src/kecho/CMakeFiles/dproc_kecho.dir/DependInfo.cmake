
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kecho/node.cpp" "src/kecho/CMakeFiles/dproc_kecho.dir/node.cpp.o" "gcc" "src/kecho/CMakeFiles/dproc_kecho.dir/node.cpp.o.d"
  "/root/repo/src/kecho/registry.cpp" "src/kecho/CMakeFiles/dproc_kecho.dir/registry.cpp.o" "gcc" "src/kecho/CMakeFiles/dproc_kecho.dir/registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/host/CMakeFiles/dproc_host.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dproc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dproc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dproc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
