file(REMOVE_RECURSE
  "libdproc_apps.a"
)
