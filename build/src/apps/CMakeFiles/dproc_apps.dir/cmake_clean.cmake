file(REMOVE_RECURSE
  "CMakeFiles/dproc_apps.dir/workqueue.cpp.o"
  "CMakeFiles/dproc_apps.dir/workqueue.cpp.o.d"
  "libdproc_apps.a"
  "libdproc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dproc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
