# Empty compiler generated dependencies file for dproc_apps.
# This may be replaced when dependencies are built.
