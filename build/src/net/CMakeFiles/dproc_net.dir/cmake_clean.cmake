file(REMOVE_RECURSE
  "CMakeFiles/dproc_net.dir/fabric.cpp.o"
  "CMakeFiles/dproc_net.dir/fabric.cpp.o.d"
  "CMakeFiles/dproc_net.dir/nic.cpp.o"
  "CMakeFiles/dproc_net.dir/nic.cpp.o.d"
  "CMakeFiles/dproc_net.dir/tcp.cpp.o"
  "CMakeFiles/dproc_net.dir/tcp.cpp.o.d"
  "libdproc_net.a"
  "libdproc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dproc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
