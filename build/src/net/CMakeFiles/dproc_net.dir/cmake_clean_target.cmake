file(REMOVE_RECURSE
  "libdproc_net.a"
)
