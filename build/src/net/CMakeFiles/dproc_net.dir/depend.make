# Empty dependencies file for dproc_net.
# This may be replaced when dependencies are built.
