file(REMOVE_RECURSE
  "libdproc_ecode.a"
)
