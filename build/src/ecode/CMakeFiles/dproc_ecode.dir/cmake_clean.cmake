file(REMOVE_RECURSE
  "CMakeFiles/dproc_ecode.dir/compiler.cpp.o"
  "CMakeFiles/dproc_ecode.dir/compiler.cpp.o.d"
  "CMakeFiles/dproc_ecode.dir/ecode.cpp.o"
  "CMakeFiles/dproc_ecode.dir/ecode.cpp.o.d"
  "CMakeFiles/dproc_ecode.dir/fold.cpp.o"
  "CMakeFiles/dproc_ecode.dir/fold.cpp.o.d"
  "CMakeFiles/dproc_ecode.dir/lexer.cpp.o"
  "CMakeFiles/dproc_ecode.dir/lexer.cpp.o.d"
  "CMakeFiles/dproc_ecode.dir/parser.cpp.o"
  "CMakeFiles/dproc_ecode.dir/parser.cpp.o.d"
  "CMakeFiles/dproc_ecode.dir/printer.cpp.o"
  "CMakeFiles/dproc_ecode.dir/printer.cpp.o.d"
  "CMakeFiles/dproc_ecode.dir/sema.cpp.o"
  "CMakeFiles/dproc_ecode.dir/sema.cpp.o.d"
  "CMakeFiles/dproc_ecode.dir/vm.cpp.o"
  "CMakeFiles/dproc_ecode.dir/vm.cpp.o.d"
  "libdproc_ecode.a"
  "libdproc_ecode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dproc_ecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
