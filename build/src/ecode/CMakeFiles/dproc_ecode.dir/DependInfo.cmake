
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecode/compiler.cpp" "src/ecode/CMakeFiles/dproc_ecode.dir/compiler.cpp.o" "gcc" "src/ecode/CMakeFiles/dproc_ecode.dir/compiler.cpp.o.d"
  "/root/repo/src/ecode/ecode.cpp" "src/ecode/CMakeFiles/dproc_ecode.dir/ecode.cpp.o" "gcc" "src/ecode/CMakeFiles/dproc_ecode.dir/ecode.cpp.o.d"
  "/root/repo/src/ecode/fold.cpp" "src/ecode/CMakeFiles/dproc_ecode.dir/fold.cpp.o" "gcc" "src/ecode/CMakeFiles/dproc_ecode.dir/fold.cpp.o.d"
  "/root/repo/src/ecode/lexer.cpp" "src/ecode/CMakeFiles/dproc_ecode.dir/lexer.cpp.o" "gcc" "src/ecode/CMakeFiles/dproc_ecode.dir/lexer.cpp.o.d"
  "/root/repo/src/ecode/parser.cpp" "src/ecode/CMakeFiles/dproc_ecode.dir/parser.cpp.o" "gcc" "src/ecode/CMakeFiles/dproc_ecode.dir/parser.cpp.o.d"
  "/root/repo/src/ecode/printer.cpp" "src/ecode/CMakeFiles/dproc_ecode.dir/printer.cpp.o" "gcc" "src/ecode/CMakeFiles/dproc_ecode.dir/printer.cpp.o.d"
  "/root/repo/src/ecode/sema.cpp" "src/ecode/CMakeFiles/dproc_ecode.dir/sema.cpp.o" "gcc" "src/ecode/CMakeFiles/dproc_ecode.dir/sema.cpp.o.d"
  "/root/repo/src/ecode/vm.cpp" "src/ecode/CMakeFiles/dproc_ecode.dir/vm.cpp.o" "gcc" "src/ecode/CMakeFiles/dproc_ecode.dir/vm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dproc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
