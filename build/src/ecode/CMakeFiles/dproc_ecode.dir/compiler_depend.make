# Empty compiler generated dependencies file for dproc_ecode.
# This may be replaced when dependencies are built.
