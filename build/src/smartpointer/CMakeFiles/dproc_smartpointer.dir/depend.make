# Empty dependencies file for dproc_smartpointer.
# This may be replaced when dependencies are built.
