file(REMOVE_RECURSE
  "libdproc_smartpointer.a"
)
