file(REMOVE_RECURSE
  "CMakeFiles/dproc_smartpointer.dir/client.cpp.o"
  "CMakeFiles/dproc_smartpointer.dir/client.cpp.o.d"
  "CMakeFiles/dproc_smartpointer.dir/server.cpp.o"
  "CMakeFiles/dproc_smartpointer.dir/server.cpp.o.d"
  "CMakeFiles/dproc_smartpointer.dir/stream.cpp.o"
  "CMakeFiles/dproc_smartpointer.dir/stream.cpp.o.d"
  "CMakeFiles/dproc_smartpointer.dir/sync.cpp.o"
  "CMakeFiles/dproc_smartpointer.dir/sync.cpp.o.d"
  "libdproc_smartpointer.a"
  "libdproc_smartpointer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dproc_smartpointer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
