# Empty dependencies file for dproc_sim.
# This may be replaced when dependencies are built.
