file(REMOVE_RECURSE
  "libdproc_sim.a"
)
