file(REMOVE_RECURSE
  "CMakeFiles/dproc_sim.dir/engine.cpp.o"
  "CMakeFiles/dproc_sim.dir/engine.cpp.o.d"
  "libdproc_sim.a"
  "libdproc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dproc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
