file(REMOVE_RECURSE
  "CMakeFiles/test_ecode_vm.dir/ecode_vm_test.cpp.o"
  "CMakeFiles/test_ecode_vm.dir/ecode_vm_test.cpp.o.d"
  "test_ecode_vm"
  "test_ecode_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecode_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
