file(REMOVE_RECURSE
  "CMakeFiles/test_system_property.dir/system_property_test.cpp.o"
  "CMakeFiles/test_system_property.dir/system_property_test.cpp.o.d"
  "test_system_property"
  "test_system_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_system_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
