# Empty compiler generated dependencies file for test_ecode_fold.
# This may be replaced when dependencies are built.
