file(REMOVE_RECURSE
  "CMakeFiles/test_ecode_fold.dir/ecode_fold_test.cpp.o"
  "CMakeFiles/test_ecode_fold.dir/ecode_fold_test.cpp.o.d"
  "test_ecode_fold"
  "test_ecode_fold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecode_fold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
