# Empty dependencies file for test_smartpointer.
# This may be replaced when dependencies are built.
