file(REMOVE_RECURSE
  "CMakeFiles/test_smartpointer.dir/smartpointer_test.cpp.o"
  "CMakeFiles/test_smartpointer.dir/smartpointer_test.cpp.o.d"
  "test_smartpointer"
  "test_smartpointer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smartpointer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
