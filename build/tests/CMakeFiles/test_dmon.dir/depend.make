# Empty dependencies file for test_dmon.
# This may be replaced when dependencies are built.
