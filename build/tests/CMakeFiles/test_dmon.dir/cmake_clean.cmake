file(REMOVE_RECURSE
  "CMakeFiles/test_dmon.dir/dmon_test.cpp.o"
  "CMakeFiles/test_dmon.dir/dmon_test.cpp.o.d"
  "test_dmon"
  "test_dmon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dmon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
