file(REMOVE_RECURSE
  "CMakeFiles/test_workqueue.dir/workqueue_test.cpp.o"
  "CMakeFiles/test_workqueue.dir/workqueue_test.cpp.o.d"
  "test_workqueue"
  "test_workqueue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workqueue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
