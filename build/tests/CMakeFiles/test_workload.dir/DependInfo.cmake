
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/test_workload.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/test_workload.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/dproc_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/smartpointer/CMakeFiles/dproc_smartpointer.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dproc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/qos/CMakeFiles/dproc_qos.dir/DependInfo.cmake"
  "/root/repo/build/src/kecho/CMakeFiles/dproc_kecho.dir/DependInfo.cmake"
  "/root/repo/build/src/procfs/CMakeFiles/dproc_procfs.dir/DependInfo.cmake"
  "/root/repo/build/src/ecode/CMakeFiles/dproc_ecode.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dproc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dproc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/dproc_host.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dproc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dproc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
