# Empty dependencies file for test_kecho.
# This may be replaced when dependencies are built.
