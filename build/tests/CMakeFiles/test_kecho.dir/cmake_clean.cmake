file(REMOVE_RECURSE
  "CMakeFiles/test_kecho.dir/kecho_test.cpp.o"
  "CMakeFiles/test_kecho.dir/kecho_test.cpp.o.d"
  "test_kecho"
  "test_kecho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kecho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
