file(REMOVE_RECURSE
  "CMakeFiles/test_ecode_property.dir/ecode_property_test.cpp.o"
  "CMakeFiles/test_ecode_property.dir/ecode_property_test.cpp.o.d"
  "test_ecode_property"
  "test_ecode_property.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecode_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
