# Empty dependencies file for test_ecode_property.
# This may be replaced when dependencies are built.
