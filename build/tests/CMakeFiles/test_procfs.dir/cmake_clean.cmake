file(REMOVE_RECURSE
  "CMakeFiles/test_procfs.dir/procfs_test.cpp.o"
  "CMakeFiles/test_procfs.dir/procfs_test.cpp.o.d"
  "test_procfs"
  "test_procfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_procfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
