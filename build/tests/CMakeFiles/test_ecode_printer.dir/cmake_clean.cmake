file(REMOVE_RECURSE
  "CMakeFiles/test_ecode_printer.dir/ecode_printer_test.cpp.o"
  "CMakeFiles/test_ecode_printer.dir/ecode_printer_test.cpp.o.d"
  "test_ecode_printer"
  "test_ecode_printer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecode_printer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
