file(REMOVE_RECURSE
  "CMakeFiles/test_ecode_frontend.dir/ecode_frontend_test.cpp.o"
  "CMakeFiles/test_ecode_frontend.dir/ecode_frontend_test.cpp.o.d"
  "test_ecode_frontend"
  "test_ecode_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ecode_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
