# Empty dependencies file for test_ecode_frontend.
# This may be replaced when dependencies are built.
