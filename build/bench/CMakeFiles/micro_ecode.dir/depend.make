# Empty dependencies file for micro_ecode.
# This may be replaced when dependencies are built.
