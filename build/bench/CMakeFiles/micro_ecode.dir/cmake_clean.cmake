file(REMOVE_RECURSE
  "CMakeFiles/micro_ecode.dir/micro_ecode.cpp.o"
  "CMakeFiles/micro_ecode.dir/micro_ecode.cpp.o.d"
  "micro_ecode"
  "micro_ecode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_ecode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
