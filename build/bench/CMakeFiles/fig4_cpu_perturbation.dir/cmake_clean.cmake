file(REMOVE_RECURSE
  "CMakeFiles/fig4_cpu_perturbation.dir/fig4_cpu_perturbation.cpp.o"
  "CMakeFiles/fig4_cpu_perturbation.dir/fig4_cpu_perturbation.cpp.o.d"
  "fig4_cpu_perturbation"
  "fig4_cpu_perturbation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_cpu_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
