# Empty compiler generated dependencies file for fig4_cpu_perturbation.
# This may be replaced when dependencies are built.
