file(REMOVE_RECURSE
  "CMakeFiles/fig11_hybrid_client.dir/fig11_hybrid_client.cpp.o"
  "CMakeFiles/fig11_hybrid_client.dir/fig11_hybrid_client.cpp.o.d"
  "fig11_hybrid_client"
  "fig11_hybrid_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_hybrid_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
