# Empty dependencies file for fig11_hybrid_client.
# This may be replaced when dependencies are built.
