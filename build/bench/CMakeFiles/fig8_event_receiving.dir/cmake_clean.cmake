file(REMOVE_RECURSE
  "CMakeFiles/fig8_event_receiving.dir/fig8_event_receiving.cpp.o"
  "CMakeFiles/fig8_event_receiving.dir/fig8_event_receiving.cpp.o.d"
  "fig8_event_receiving"
  "fig8_event_receiving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_event_receiving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
