# Empty compiler generated dependencies file for fig8_event_receiving.
# This may be replaced when dependencies are built.
