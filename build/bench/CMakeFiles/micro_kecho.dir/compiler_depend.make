# Empty compiler generated dependencies file for micro_kecho.
# This may be replaced when dependencies are built.
