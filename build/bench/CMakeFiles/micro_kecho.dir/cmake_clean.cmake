file(REMOVE_RECURSE
  "CMakeFiles/micro_kecho.dir/micro_kecho.cpp.o"
  "CMakeFiles/micro_kecho.dir/micro_kecho.cpp.o.d"
  "micro_kecho"
  "micro_kecho.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_kecho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
