# Empty dependencies file for fig6_event_submission.
# This may be replaced when dependencies are built.
