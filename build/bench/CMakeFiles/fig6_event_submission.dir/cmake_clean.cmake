file(REMOVE_RECURSE
  "CMakeFiles/fig6_event_submission.dir/fig6_event_submission.cpp.o"
  "CMakeFiles/fig6_event_submission.dir/fig6_event_submission.cpp.o.d"
  "fig6_event_submission"
  "fig6_event_submission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_event_submission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
