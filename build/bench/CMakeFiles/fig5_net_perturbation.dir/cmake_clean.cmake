file(REMOVE_RECURSE
  "CMakeFiles/fig5_net_perturbation.dir/fig5_net_perturbation.cpp.o"
  "CMakeFiles/fig5_net_perturbation.dir/fig5_net_perturbation.cpp.o.d"
  "fig5_net_perturbation"
  "fig5_net_perturbation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_net_perturbation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
