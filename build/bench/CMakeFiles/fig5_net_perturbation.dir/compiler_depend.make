# Empty compiler generated dependencies file for fig5_net_perturbation.
# This may be replaced when dependencies are built.
