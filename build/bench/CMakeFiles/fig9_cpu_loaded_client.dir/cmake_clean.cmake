file(REMOVE_RECURSE
  "CMakeFiles/fig9_cpu_loaded_client.dir/fig9_cpu_loaded_client.cpp.o"
  "CMakeFiles/fig9_cpu_loaded_client.dir/fig9_cpu_loaded_client.cpp.o.d"
  "fig9_cpu_loaded_client"
  "fig9_cpu_loaded_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cpu_loaded_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
