# Empty dependencies file for fig9_cpu_loaded_client.
# This may be replaced when dependencies are built.
