file(REMOVE_RECURSE
  "CMakeFiles/motivation_load_balance.dir/motivation_load_balance.cpp.o"
  "CMakeFiles/motivation_load_balance.dir/motivation_load_balance.cpp.o.d"
  "motivation_load_balance"
  "motivation_load_balance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motivation_load_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
