# Empty dependencies file for motivation_load_balance.
# This may be replaced when dependencies are built.
