# Empty compiler generated dependencies file for fig7_large_events.
# This may be replaced when dependencies are built.
