file(REMOVE_RECURSE
  "CMakeFiles/fig7_large_events.dir/fig7_large_events.cpp.o"
  "CMakeFiles/fig7_large_events.dir/fig7_large_events.cpp.o.d"
  "fig7_large_events"
  "fig7_large_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_large_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
