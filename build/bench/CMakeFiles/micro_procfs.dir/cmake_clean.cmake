file(REMOVE_RECURSE
  "CMakeFiles/micro_procfs.dir/micro_procfs.cpp.o"
  "CMakeFiles/micro_procfs.dir/micro_procfs.cpp.o.d"
  "micro_procfs"
  "micro_procfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_procfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
