# Empty dependencies file for micro_procfs.
# This may be replaced when dependencies are built.
