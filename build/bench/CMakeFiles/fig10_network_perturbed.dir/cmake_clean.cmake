file(REMOVE_RECURSE
  "CMakeFiles/fig10_network_perturbed.dir/fig10_network_perturbed.cpp.o"
  "CMakeFiles/fig10_network_perturbed.dir/fig10_network_perturbed.cpp.o.d"
  "fig10_network_perturbed"
  "fig10_network_perturbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_network_perturbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
