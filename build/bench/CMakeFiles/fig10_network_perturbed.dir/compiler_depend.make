# Empty compiler generated dependencies file for fig10_network_perturbed.
# This may be replaced when dependencies are built.
