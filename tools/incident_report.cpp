// incident_report: merges per-node incident-bundle dumps into one causally
// ordered cross-node timeline and checks the recorded symptoms against the
// fault injector's ground truth.
//
// Two modes:
//
//  * Dump mode (default): reads /proc/dproc/incidents dumps from the files
//    given on the command line (or stdin), parses the bundles, merges the
//    flight events of every node on the shared virtual clock, and prints
//    the timeline plus an injected-fault vs observed-symptom alignment.
//    Because the simulator runs one global clock, sorting by timestamp IS
//    the causal order — no clock reconciliation pass is needed.
//
//  * --demo: self-contained 8-node chaos run with the flight recorder and
//    health engine enabled. Injects a node crash, an access-link partition,
//    a registry outage, and a registry-leader kill, then post-mortems the
//    run purely from the /proc/dproc/incidents dumps — the same path an
//    operator would use. Exits nonzero when any disruptive fault cannot be
//    explained from the recorded symptoms, which is what CI asserts.
//
// --json renders the merged timeline and findings as a JSON document.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dproc/core/cluster.hpp"
#include "dproc/core/incident.hpp"
#include "dproc/sim/fault.hpp"

namespace {

using dproc::core::FaultFinding;
using dproc::core::IncidentBundle;
using dproc::core::TimelineEntry;

dproc::SimTime at(double sec) {
  return dproc::SimTime::zero() + dproc::seconds(sec);
}

/// Runs the demo chaos scenario and returns every node's incident dump.
std::vector<std::string> run_demo() {
  dproc::sim::Engine engine;
  dproc::core::ClusterConfig config;
  config.node_count = 8;
  config.liveness.enabled = true;
  config.liveness.heartbeat_period = dproc::seconds(1.0);
  config.liveness.miss_threshold = 5;
  config.dmon.stale_after_periods = 3;
  config.registry.enabled = true;
  config.registry.replicas = 3;
  config.flight.enabled = true;
  config.health.enabled = true;

  dproc::core::Cluster cluster(engine, config);
  cluster.start_dproc();

  dproc::sim::FaultPlan plan;
  plan.crash_node(at(5.0), 6)
      .restart_node(at(20.0), 6)
      .partition_link(at(8.0), cluster.uplink(5))
      .heal_link(at(14.0), cluster.uplink(5))
      .registry_outage(at(10.0), at(16.0))
      .kill_registry_leader(at(25.0));
  cluster.inject(plan);
  engine.run_until(at(45.0));

  std::vector<std::string> dumps;
  dumps.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    auto dump = cluster.procfs(i).read("/proc/dproc/incidents");
    dumps.push_back(dump.is_ok() ? dump.value() : std::string{});
  }
  return dumps;
}

void print_report(const std::vector<TimelineEntry>& timeline,
                  const std::vector<FaultFinding>& findings) {
  std::cout << "timeline (" << timeline.size() << " events):\n";
  for (const TimelineEntry& entry : timeline) {
    const auto& e = entry.event;
    std::cout << "  t=" << static_cast<double>(e.ts_ns) / 1e9 << "s node"
              << entry.node << " " << dproc::telemetry::to_string(e.severity)
              << " " << dproc::telemetry::to_string(e.subsystem) << " "
              << dproc::telemetry::to_string(e.code) << " [" << e.args[0]
              << " " << e.args[1] << " " << e.args[2] << " " << e.args[3]
              << "]";
    if (e.trace_id != 0) {
      std::cout << " trace=0x" << std::hex << e.trace_id << std::dec;
    }
    std::cout << "\n";
  }
  std::cout << "\nfault alignment (" << findings.size() << " injected):\n";
  for (const FaultFinding& f : findings) {
    std::cout << "  t=" << static_cast<double>(f.fault.ts_ns) / 1e9 << "s "
              << dproc::sim::to_string(
                     static_cast<dproc::sim::FaultKind>(f.fault.args[0]))
              << " target=" << f.fault.args[1];
    if (!f.disruptive) {
      std::cout << " (heal)\n";
      continue;
    }
    if (f.observed) {
      std::cout << " -> first symptom t="
                << static_cast<double>(f.symptom.ts_ns) / 1e9 << "s node"
                << f.symptom_node << " "
                << dproc::telemetry::to_string(f.symptom.code) << "\n";
    } else {
      std::cout << " -> NO SYMPTOM RECORDED\n";
    }
  }
  std::cout << (dproc::core::faults_recovered(findings)
                    ? "\nverdict: every disruptive fault explained\n"
                    : "\nverdict: UNEXPLAINED faults remain\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool demo = false;
  bool json = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--demo") {
      demo = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: incident_report [--json] [dump files...]\n"
                   "       incident_report --demo [--json]\n"
                   "Reads /proc/dproc/incidents dumps (stdin when no files)\n"
                   "and prints a merged cross-node timeline with the\n"
                   "injected-fault vs observed-symptom alignment.\n";
      return 0;
    } else {
      files.push_back(arg);
    }
  }

  std::vector<std::string> dumps;
  if (demo) {
    dumps = run_demo();
  } else if (files.empty()) {
    std::ostringstream all;
    all << std::cin.rdbuf();
    dumps.push_back(all.str());
  } else {
    for (const std::string& path : files) {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "incident_report: cannot open " << path << "\n";
        return 2;
      }
      std::ostringstream all;
      all << in.rdbuf();
      dumps.push_back(all.str());
    }
  }

  std::vector<IncidentBundle> bundles;
  for (const std::string& dump : dumps) {
    if (!dproc::core::parse_bundles(dump, bundles)) {
      std::cerr << "incident_report: malformed incident dump\n";
      return 2;
    }
  }

  const std::vector<TimelineEntry> timeline =
      dproc::core::merge_timeline(bundles);
  const std::vector<FaultFinding> findings =
      dproc::core::align_faults(timeline);

  if (json) {
    std::cout << dproc::core::timeline_json(timeline, findings);
  } else {
    std::cout << "bundles: " << bundles.size() << " across " << dumps.size()
              << " dump(s)\n";
    print_report(timeline, findings);
  }
  const bool recovered = dproc::core::faults_recovered(findings);
  return recovered ? 0 : 1;
}
