// Causal-tracing report over a short traced cluster run:
//
//  * per-channel, per-stage hop latency breakdown (the table the paper's
//    Figure 6–8 latency discussion implies but never shows);
//  * one fully reconstructed causal chain — publish → submit → arrive →
//    deliver → render — printed hop by hop with per-stage durations and a
//    monotonicity check on the virtual-clock timestamps;
//  * per-node staleness-SLO violation counts when a budget is armed;
//  * the merged Chrome trace (spans + cross-node flow arrows) on disk.
//
//   $ ./trace_report [--out PATH] [--seconds S] [--nodes N] [--slo-ms MS]
//
// Defaults: dproc_trace_report.json, 10 simulated seconds, 8 nodes, SLO off.
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dproc/core/cluster.hpp"
#include "dproc/telemetry/telemetry.hpp"
#include "trace_common.hpp"

int main(int argc, char** argv) {
  using namespace dproc;

  tools::TraceToolOptions opts;
  opts.out_path = "dproc_trace_report.json";
  if (!tools::parse_trace_tool_args(argc, argv, opts)) return 1;

  sim::Engine engine;
  core::Cluster cluster{engine, tools::traced_cluster_config(opts)};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(opts.run_seconds));

  std::vector<std::pair<int, const telemetry::Registry*>> registries;
  std::vector<const telemetry::Registry*> bare;
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    registries.emplace_back(static_cast<int>(i), &cluster.host(i).telemetry());
    bare.push_back(&cluster.host(i).telemetry());
  }

  // Channel ids are a cluster-wide registry convention; any node resolves.
  const auto channels = cluster.node(0).kecho->channels();
  auto channel_name = [&channels](std::uint32_t id) -> std::string {
    for (const auto& [cid, name] : channels) {
      if (cid == id) return name;
    }
    return {};
  };

  std::printf("=== per-stage hop latency breakdown (%zu nodes, %.1f s) ===\n",
              cluster.size(), opts.run_seconds);
  std::fputs(
      telemetry::render_hop_breakdown(telemetry::hop_breakdown(bare),
                                      channel_name)
          .c_str(),
      stdout);

  // Pick the trace id covering the most pipeline stages and reconstruct it.
  std::map<std::uint64_t, std::set<telemetry::HopStage>> stages_of;
  for (const telemetry::Registry* registry : bare) {
    for (std::size_t i = 0; i < registry->hop_count(); ++i) {
      const telemetry::Hop& hop = registry->hop(i);
      stages_of[hop.trace_id].insert(hop.stage);
    }
  }
  std::uint64_t best_id = 0;
  std::size_t best_stages = 0;
  for (const auto& [id, stages] : stages_of) {
    if (stages.size() > best_stages) {
      best_stages = stages.size();
      best_id = id;
    }
  }
  if (best_id == 0) {
    std::fprintf(stderr, "no traced events recorded — is tracing enabled?\n");
    return 1;
  }

  const auto chain = telemetry::collect_trace(registries, best_id);
  std::printf("\n=== causal chain for trace 0x%llx (origin node %u) ===\n",
              static_cast<unsigned long long>(best_id),
              static_cast<std::uint32_t>(best_id >> 32));
  bool monotonic = true;
  std::int64_t prev_ts = 0;
  for (const auto& [hop, node] : chain) {
    const std::string name = channel_name(hop.channel);
    std::printf("  %-8s node %-2d  t=%12.3f us  +%10.3f us  %s\n",
                telemetry::to_string(hop.stage), node,
                static_cast<double>(hop.ts_ns) / 1000.0,
                static_cast<double>(hop.dur_ns) / 1000.0,
                name.empty() ? "?" : name.c_str());
    if (hop.ts_ns < prev_ts) monotonic = false;
    prev_ts = hop.ts_ns;
  }
  std::printf("  stages %zu/%zu, timestamps %s\n", best_stages,
              telemetry::kHopStageCount,
              monotonic ? "non-decreasing" : "OUT OF ORDER");

  if (opts.slo_ms > 0.0) {
    std::printf("\n=== staleness SLO (budget %.1f ms on %s) ===\n",
                opts.slo_ms, cluster.config().dmon.monitor_channel.c_str());
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      if (cluster.dmon(i) == nullptr) continue;
      std::printf("  %-8s violations %llu\n", cluster.host(i).name().c_str(),
                  static_cast<unsigned long long>(
                      cluster.dmon(i)->slo_violations()));
    }
  }

  const std::string json = telemetry::merge_chrome_trace(registries);
  std::FILE* out = std::fopen(opts.out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n",
                 opts.out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("\nwrote %zu bytes to %s (flow arrows stitch the chain in "
              "Perfetto)\n",
              json.size(), opts.out_path.c_str());
  return monotonic ? 0 : 2;
}
