// Runs the paper's cluster with self-monitoring and causal tracing enabled
// and exports every node's telemetry as one Chrome trace_event JSON
// document, loadable in chrome://tracing or Perfetto (ui.perfetto.dev).
// Each node is a pid lane with per-subsystem named threads; spans cover the
// kernel CPU time the simulator charged for KECho submits/polls and d-mon
// polls on the virtual clock, and cross-node flow arrows stitch each traced
// monitoring event's publish → submit → deliver → render path together.
//
//   $ ./trace_export [--out PATH] [--seconds S] [--nodes N] [--slo-ms MS]
//   $ ./trace_export [output.json] [seconds]        # legacy positional form
//
// Defaults: dproc_trace.json, 10 simulated seconds, 8 nodes. A per-node
// telemetry summary is printed to stdout alongside the export.
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "dproc/core/cluster.hpp"
#include "dproc/telemetry/telemetry.hpp"
#include "trace_common.hpp"

int main(int argc, char** argv) {
  using namespace dproc;

  tools::TraceToolOptions opts;
  opts.out_path = "dproc_trace.json";
  if (!tools::parse_trace_tool_args(argc, argv, opts)) return 1;

  sim::Engine engine;
  core::Cluster cluster{engine, tools::traced_cluster_config(opts)};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(opts.run_seconds));

  std::vector<std::pair<int, const telemetry::Registry*>> registries;
  registries.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const telemetry::Registry& registry = cluster.host(i).telemetry();
    registries.emplace_back(static_cast<int>(i), &registry);
    std::printf("--- %s ---\n%s", cluster.host(i).name().c_str(),
                registry.render().c_str());
  }

  const std::string json = telemetry::merge_chrome_trace(registries);
  std::FILE* out = std::fopen(opts.out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n",
                 opts.out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("wrote %zu bytes to %s (load in chrome://tracing or Perfetto)\n",
              json.size(), opts.out_path.c_str());
  return 0;
}
