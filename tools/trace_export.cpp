// Runs the paper's 8-node cluster with self-monitoring enabled and exports
// every node's telemetry spans as one Chrome trace_event JSON document,
// loadable in chrome://tracing or Perfetto (ui.perfetto.dev). Each node is
// a pid lane; spans cover the kernel CPU time the simulator charged for
// KECho submits/polls and d-mon polls on the virtual clock.
//
//   $ ./trace_export [output.json] [seconds]
//
// Defaults: dproc_trace.json, 10 simulated seconds. A per-node telemetry
// summary is printed to stdout alongside the export.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "dproc/core/cluster.hpp"
#include "dproc/telemetry/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace dproc;

  const std::string out_path = argc > 1 ? argv[1] : "dproc_trace.json";
  const double run_seconds = argc > 2 ? std::atof(argv[2]) : 10.0;
  if (run_seconds <= 0.0) {
    std::fprintf(stderr, "usage: %s [output.json] [seconds > 0]\n", argv[0]);
    return 1;
  }

  sim::Engine engine;
  core::ClusterConfig config;  // paper platform: 8 nodes, Fast Ethernet
  config.self_monitor = true;
  core::Cluster cluster{engine, config};
  cluster.start_dproc();
  engine.run_until(SimTime{} + seconds(run_seconds));

  std::vector<std::pair<int, const telemetry::Registry*>> registries;
  registries.reserve(cluster.size());
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const telemetry::Registry& registry = cluster.host(i).telemetry();
    registries.emplace_back(static_cast<int>(i), &registry);
    std::printf("--- %s ---\n%s", cluster.host(i).name().c_str(),
                registry.render().c_str());
  }

  const std::string json = telemetry::merge_chrome_trace(registries);
  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), out);
  std::fclose(out);
  std::printf("wrote %zu bytes to %s (load in chrome://tracing or Perfetto)\n",
              json.size(), out_path.c_str());
  return 0;
}
