// Shared command-line plumbing for the trace tools (trace_export,
// trace_report): one option struct, one parser accepting both the new
// flag style and trace_export's original positional form, and the cluster
// configuration the tools run — the paper's 8-node platform with
// self-monitoring and causal tracing switched on.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "dproc/core/cluster.hpp"

namespace dproc::tools {

struct TraceToolOptions {
  std::string out_path;
  double run_seconds = 10.0;
  std::size_t nodes = 8;
  /// End-to-end staleness budget for the monitoring channel in
  /// milliseconds; 0 leaves the SLO watchdog off.
  double slo_ms = 0.0;
};

/// Parses `--out PATH`, `--seconds S`, `--nodes N`, `--slo-ms MS`, plus the
/// legacy positional form `[output.json] [seconds]`. Returns false (with a
/// usage line on stderr) on malformed input.
inline bool parse_trace_tool_args(int argc, char** argv,
                                  TraceToolOptions& opts) {
  auto usage = [&] {
    std::fprintf(stderr,
                 "usage: %s [--out PATH] [--seconds S] [--nodes N] "
                 "[--slo-ms MS] | [output.json] [seconds]\n",
                 argv[0]);
    return false;
  };
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (std::strcmp(arg, "--out") == 0) {
      const char* v = value();
      if (v == nullptr) return usage();
      opts.out_path = v;
    } else if (std::strcmp(arg, "--seconds") == 0) {
      const char* v = value();
      if (v == nullptr || std::atof(v) <= 0.0) return usage();
      opts.run_seconds = std::atof(v);
    } else if (std::strcmp(arg, "--nodes") == 0) {
      const char* v = value();
      if (v == nullptr || std::atol(v) < 2) return usage();
      opts.nodes = static_cast<std::size_t>(std::atol(v));
    } else if (std::strcmp(arg, "--slo-ms") == 0) {
      const char* v = value();
      if (v == nullptr || std::atof(v) < 0.0) return usage();
      opts.slo_ms = std::atof(v);
    } else if (arg[0] == '-') {
      return usage();
    } else if (positional == 0) {
      opts.out_path = arg;
      ++positional;
    } else if (positional == 1) {
      if (std::atof(arg) <= 0.0) return usage();
      opts.run_seconds = std::atof(arg);
      ++positional;
    } else {
      return usage();
    }
  }
  return true;
}

/// Cluster configuration both tools run: `--nodes` nodes on the paper's
/// Fast Ethernet star, self-monitoring on (spans + DPROC_MON metrics) and
/// causal tracing on (hop logs + wire trace contexts); a nonzero
/// `--slo-ms` arms the monitoring channel's staleness watchdog.
inline core::ClusterConfig traced_cluster_config(
    const TraceToolOptions& opts) {
  core::ClusterConfig config;
  config.node_count = opts.nodes;
  config.self_monitor = true;
  config.trace.enabled = true;
  if (opts.slo_ms > 0.0) {
    config.trace.channel_slo.emplace_back(config.dmon.monitor_channel,
                                          milliseconds(opts.slo_ms));
  }
  return config;
}

}  // namespace dproc::tools
