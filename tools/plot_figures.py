#!/usr/bin/env python3
"""Plot the paper's figures from the bench binaries' CSV output.

Usage:
    for b in build/bench/*; do $b; done | tee bench_output.txt
    python3 tools/plot_figures.py bench_output.txt out/

Each bench prints rows of the form `csv,<series-name>,<x>,<y1>,<y2>,...`;
this script groups them by series name and renders one PNG per series
(matplotlib required; falls back to writing per-series .tsv files when
matplotlib is unavailable).
"""
import collections
import os
import sys

SERIES_COLUMNS = {
    "fig4_linpack_mflops_vs_dproc_nodes":
        ("dproc nodes", "Mflops", ["1s period", "2s period", "differential"]),
    "fig5_iperf_goodput_mbps_vs_dproc_nodes":
        ("dproc nodes", "Mbps", ["1s period", "2s period", "differential"]),
    "fig6_submit_overhead_us_vs_nodes":
        ("nodes", "us/poll", ["1s period", "2s period", "differential"]),
    "fig7_submit_overhead_us_5kb_events":
        ("nodes", "us/poll", ["1s period", "2s period", "differential"]),
    "fig8_receive_overhead_us_vs_nodes":
        ("nodes", "us/poll", ["1s period", "2s period", "differential"]),
    "fig9a_latency_vs_time_cpu_loaded":
        ("time (s)", "lag (s)", ["no filter", "static", "dynamic"]),
    "fig9b_event_rate_vs_linpack_threads":
        ("linpack threads", "events/s", ["no filter", "static", "dynamic"]),
    "fig10_latency_vs_network_perturbation":
        ("perturbation (Mbps)", "lag (s)", ["no filter", "static", "dynamic"]),
    "fig11_latency_vs_combined_perturbation":
        ("k (threads, x10 Mbps)", "lag (s)", ["cpu only", "net only", "hybrid"]),
}


def parse(path):
    series = collections.defaultdict(list)
    with open(path) as handle:
        for line in handle:
            if not line.startswith("csv,"):
                continue
            parts = line.strip().split(",")
            name = parts[1]
            try:
                values = [float(v) for v in parts[2:]]
            except ValueError:
                continue
            series[name].append(values)
    return series


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    rows_by_series = parse(sys.argv[1])
    out_dir = sys.argv[2]
    os.makedirs(out_dir, exist_ok=True)

    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
        have_mpl = True
    except ImportError:
        have_mpl = False
        print("matplotlib not available; writing .tsv files instead")

    for name, rows in sorted(rows_by_series.items()):
        rows.sort(key=lambda r: r[0])
        xlabel, ylabel, labels = SERIES_COLUMNS.get(
            name, ("x", "y", [f"y{i}" for i in range(len(rows[0]) - 1)]))
        if not have_mpl:
            with open(os.path.join(out_dir, name + ".tsv"), "w") as out:
                out.write("\t".join([xlabel] + list(labels)) + "\n")
                for row in rows:
                    out.write("\t".join(str(v) for v in row) + "\n")
            continue
        plt.figure(figsize=(6, 4))
        xs = [row[0] for row in rows]
        for column, label in enumerate(labels, start=1):
            ys = [row[column] for row in rows if column < len(row)]
            plt.plot(xs[: len(ys)], ys, marker="o", label=label)
        plt.xlabel(xlabel)
        plt.ylabel(ylabel)
        plt.title(name)
        if name.startswith(("fig9a", "fig10", "fig11")):
            plt.yscale("log")
        plt.legend()
        plt.grid(True, alpha=0.3)
        plt.tight_layout()
        plt.savefig(os.path.join(out_dir, name + ".png"), dpi=120)
        plt.close()
        print("wrote", os.path.join(out_dir, name + ".png"))


if __name__ == "__main__":
    main()
