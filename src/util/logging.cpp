#include "dproc/util/logging.hpp"

#include <cmath>
#include <cstdio>
#include <iomanip>
#include <mutex>
#include <sstream>

namespace dproc {

namespace {
std::mutex g_sink_mutex;
}  // namespace

const char* to_string(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, const std::string& message) {
    std::fprintf(stderr, "[%s] %s\n", to_string(level), message.c_str());
  };
}

void Logger::set_sink(Sink sink) {
  const std::scoped_lock lock{g_sink_mutex};
  sink_ = std::move(sink);
}

void Logger::set_time_source(std::function<SimTime()> source) {
  const std::scoped_lock lock{g_sink_mutex};
  time_source_ = std::move(source);
}

void Logger::log(LogLevel level, const std::string& message) {
  const std::scoped_lock lock{g_sink_mutex};
  if (!sink_) return;
  if (time_source_) {
    std::ostringstream prefixed;
    prefixed << "t=" << std::fixed << std::setprecision(6)
             << time_source_().sec() << "s " << message;
    sink_(level, prefixed.str());
  } else {
    sink_(level, message);
  }
}

std::string to_string(SimDuration d) {
  std::ostringstream out;
  out << std::fixed;
  const double abs_ns = std::abs(static_cast<double>(d.ns()));
  if (abs_ns < 1e3) {
    out << d.ns() << "ns";
  } else if (abs_ns < 1e6) {
    out << std::setprecision(3) << d.us() << "us";
  } else if (abs_ns < 1e9) {
    out << std::setprecision(3) << d.ms() << "ms";
  } else {
    out << std::setprecision(3) << d.sec() << "s";
  }
  return out.str();
}

std::string to_string(SimTime t) { return to_string(t - SimTime::zero()); }

}  // namespace dproc
