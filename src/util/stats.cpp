#include "dproc/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "dproc/util/rng.hpp"

namespace dproc {

void StreamingStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::reset() { *this = StreamingStats{}; }

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

std::size_t SampleSet::bucket_of(double v) {
  if (!(v > 0.0) || !std::isfinite(v)) return 0;
  int exp = 0;
  // v = m * 2^exp with m in [0.5, 1) => v lives in octave [2^(exp-1), 2^exp).
  const double m = std::frexp(v, &exp);
  const int octave = exp - 1;
  if (octave < kMinExp) return 0;
  if (octave >= kMaxExp) return kBuckets - 1;
  // Position inside the octave, split linearly into kSubBuckets parts.
  const int sub = std::min(kSubBuckets - 1,
                           static_cast<int>((m * 2.0 - 1.0) * kSubBuckets));
  return static_cast<std::size_t>(octave - kMinExp) * kSubBuckets +
         static_cast<std::size_t>(sub);
}

double SampleSet::bucket_lo(std::size_t b) {
  const int octave = static_cast<int>(b) / kSubBuckets + kMinExp;
  const int sub = static_cast<int>(b) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, octave);
}

double SampleSet::bucket_hi(std::size_t b) { return bucket_lo(b + 1); }

void SampleSet::add(double x) {
  if (counts_.empty()) counts_.assign(kBuckets, 0);
  std::uint32_t& slot = counts_[bucket_of(x)];
  if (slot != std::numeric_limits<std::uint32_t>::max()) ++slot;
  ++count_;
  sum_ += x;
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void SampleSet::reserve(std::size_t n) {
  (void)n;  // bounded backend: one fixed table regardless of sample count
  if (counts_.empty()) counts_.assign(kBuckets, 0);
}

void SampleSet::clear() {
  if (!counts_.empty()) std::fill(counts_.begin(), counts_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

void SampleSet::merge(const SampleSet& other) {
  if (other.count_ == 0) return;
  if (counts_.empty()) counts_.assign(kBuckets, 0);
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t sum = static_cast<std::uint64_t>(counts_[b]) +
                              (b < other.counts_.size() ? other.counts_[b] : 0);
    counts_[b] = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(sum, std::numeric_limits<std::uint32_t>::max()));
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double SampleSet::mean() const {
  if (count_ == 0) return 0.0;
  return sum_ / static_cast<double>(count_);
}

double SampleSet::quantile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  // Same rank convention the exact backend used: position q*(n-1) in the
  // sorted order, interpolated — here inside one sub-bucket.
  const double rank = q * static_cast<double>(count_ - 1);
  double cumulative = 0.0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const double c = static_cast<double>(counts_[b]);
    if (c == 0.0) continue;
    if (cumulative + c > rank) {
      // The floor bucket also absorbs zero/negative/underflow values whose
      // true magnitude the geometry cannot represent; report the exact min.
      if (b == 0) return min_;
      const double frac = (rank - cumulative) / c;
      const double lo = bucket_lo(b);
      const double hi = bucket_hi(b);
      return std::clamp(lo + frac * (hi - lo), min_, max_);
    }
    cumulative += c;
  }
  return max_;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    ++counts_[static_cast<std::size_t>((x - lo_) / width_)];
  }
}

std::string Histogram::summary() const {
  static const char* kBars[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  out << "[" << lo_ << "," << hi_ << ") n=" << total_ << " |";
  for (auto c : counts_) {
    out << kBars[(c * 8 + peak - 1) / peak];
  }
  out << "|";
  if (underflow_ != 0) out << " under=" << underflow_;
  if (overflow_ != 0) out << " over=" << overflow_;
  return out.str();
}

double Rng::exponential(double mean) {
  // Inverse-CDF sampling; uniform() < 1 so the log argument is positive.
  return -mean * std::log(1.0 - uniform());
}

}  // namespace dproc
