#include "dproc/util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "dproc/util/rng.hpp"

namespace dproc {

void StreamingStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void StreamingStats::reset() { *this = StreamingStats{}; }

double StreamingStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
  } else if (x >= hi_) {
    ++overflow_;
  } else {
    ++counts_[static_cast<std::size_t>((x - lo_) / width_)];
  }
}

std::string Histogram::summary() const {
  static const char* kBars[] = {" ", "▁", "▂", "▃", "▄", "▅", "▆", "▇", "█"};
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  out << "[" << lo_ << "," << hi_ << ") n=" << total_ << " |";
  for (auto c : counts_) {
    out << kBars[(c * 8 + peak - 1) / peak];
  }
  out << "|";
  if (underflow_ != 0) out << " under=" << underflow_;
  if (overflow_ != 0) out << " over=" << overflow_;
  return out.str();
}

double Rng::exponential(double mean) {
  // Inverse-CDF sampling; uniform() < 1 so the log argument is positive.
  return -mean * std::log(1.0 - uniform());
}

}  // namespace dproc
