#include "dproc/qos/manager.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "dproc/util/logging.hpp"

namespace dproc::qos {

Manager::Manager(host::Host& host, QosManagerConfig config)
    : host_(host), config_(config), last_epoch_at_(host.engine().now()) {
  epoch_timer_ =
      host_.engine().schedule_periodic(config_.epoch, [this] { epoch_tick(); });
}

Manager::~Manager() { epoch_timer_.cancel(); }

Status Manager::reserve(host::TaskId task, ReservationConfig config) {
  if (config.cpu_share <= 0.0 || config.cpu_share > 1.0) {
    return Status::invalid_argument("cpu_share must be in (0, 1]");
  }
  auto existing = reservations_.find(task);
  const double current = existing == reservations_.end()
                             ? 0.0
                             : existing->second.status.target_share;
  if (admitted_share_ - current + config.cpu_share > config_.admission_limit) {
    return Status{StatusCode::kResourceExhausted,
                  "admission limit exceeded: " +
                      std::to_string(admitted_share_ - current +
                                     config.cpu_share) +
                      " > " + std::to_string(config_.admission_limit)};
  }
  // Verify the task exists (throws on unknown ids).
  (void)host_.cpu().task_weight(task);

  admitted_share_ += config.cpu_share - current;
  Reservation& reservation = reservations_[task];
  reservation.config = std::move(config);
  reservation.status.target_share = reservation.config.cpu_share;
  reservation.status.weight = host_.cpu().task_weight(task);
  reservation.seeded = false;
  return Status::ok();
}

void Manager::release(host::TaskId task) {
  auto it = reservations_.find(task);
  if (it == reservations_.end()) return;
  admitted_share_ -= it->second.status.target_share;
  try {
    host_.cpu().set_task_weight(task, 1.0);
  } catch (const std::invalid_argument&) {
    // Task already removed; nothing to restore.
  }
  reservations_.erase(it);
}

const ReservationStatus* Manager::status(host::TaskId task) const {
  auto it = reservations_.find(task);
  return it == reservations_.end() ? nullptr : &it->second.status;
}

void Manager::epoch_tick() {
  const SimTime now = host_.engine().now();
  const double dt = (now - last_epoch_at_).sec();
  last_epoch_at_ = now;
  if (dt <= 0) return;

  for (auto it = reservations_.begin(); it != reservations_.end();) {
    Reservation& reservation = it->second;
    SimDuration cpu_time;
    try {
      cpu_time = host_.cpu().task_cpu_time(it->first);
    } catch (const std::invalid_argument&) {
      // The task vanished; drop the reservation.
      admitted_share_ -= reservation.status.target_share;
      it = reservations_.erase(it);
      continue;
    }

    if (!reservation.seeded) {
      reservation.last_cpu_time = cpu_time;
      reservation.seeded = true;
      ++it;
      continue;
    }

    const double achieved = (cpu_time - reservation.last_cpu_time).sec() / dt;
    reservation.last_cpu_time = cpu_time;
    reservation.status.achieved_share = achieved;

    const double target = reservation.status.target_share;
    // Proportional control on the scheduling weight. Anti-windup: when the
    // task overachieves merely because it runs (nearly) alone, leave the
    // weight in place — winding it down would cost a long transient the
    // moment competitors arrive.
    const double error = target - achieved;
    const bool overachieving_alone =
        error < 0 && host_.cpu().run_queue_length() <= 1;
    if (!overachieving_alone &&
        (achieved > 0 || host_.cpu().run_queue_length() > 0)) {
      const double factor = 1.0 + config_.gain * error;
      const double new_weight =
          std::clamp(reservation.status.weight * std::max(factor, 0.1),
                     config_.min_weight, config_.max_weight);
      reservation.status.weight = new_weight;
      try {
        host_.cpu().set_task_weight(it->first, new_weight);
      } catch (const std::invalid_argument&) {
        ++it;
        continue;
      }
    }

    if (achieved < config_.violation_tolerance * target) {
      ++reservation.status.violations;
      if (reservation.config.on_violation) {
        reservation.config.on_violation(achieved);
      }
      DPROC_DEBUG() << "qos: task " << it->first << " achieved " << achieved
                    << " of reserved " << target;
    }
    ++it;
  }
}

std::string Manager::describe() const {
  std::ostringstream out;
  out << std::fixed << std::setprecision(3);
  out << "admitted_share " << admitted_share_ << "\n";
  for (const auto& [task, reservation] : reservations_) {
    out << "task " << task << " target " << reservation.status.target_share
        << " achieved " << reservation.status.achieved_share << " weight "
        << reservation.status.weight << " violations "
        << reservation.status.violations << "\n";
  }
  return out.str();
}

}  // namespace dproc::qos
