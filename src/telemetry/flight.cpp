#include "dproc/telemetry/flight.hpp"

#include <cstdio>
#include <cstring>
#include <sstream>

#include "dproc/sim/engine.hpp"

namespace dproc::telemetry {

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kDebug: return "debug";
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kError: return "error";
  }
  return "?";
}

const char* to_string(FlightSubsystem subsystem) {
  switch (subsystem) {
    case FlightSubsystem::kKecho: return "kecho";
    case FlightSubsystem::kRegistry: return "registry";
    case FlightSubsystem::kDmon: return "dmon";
    case FlightSubsystem::kAdapt: return "adapt";
    case FlightSubsystem::kFault: return "fault";
    case FlightSubsystem::kHealth: return "health";
    case FlightSubsystem::kSmartPointer: return "smartptr";
  }
  return "?";
}

const char* to_string(FlightCode code) {
  switch (code) {
    case FlightCode::kMemberJoin: return "member_join";
    case FlightCode::kMemberLeave: return "member_leave";
    case FlightCode::kMemberEvict: return "member_evict";
    case FlightCode::kLeaderElected: return "leader_elected";
    case FlightCode::kLeaseExpired: return "lease_expired";
    case FlightCode::kSyncApplied: return "sync_applied";
    case FlightCode::kRegistryOutage: return "registry_outage";
    case FlightCode::kRegistryOnline: return "registry_online";
    case FlightCode::kPeerLive: return "peer_live";
    case FlightCode::kPeerStale: return "peer_stale";
    case FlightCode::kPeerDead: return "peer_dead";
    case FlightCode::kCollectError: return "collect_error";
    case FlightCode::kSloViolation: return "slo_violation";
    case FlightCode::kAdaptRound: return "adapt_round";
    case FlightCode::kAdaptClamp: return "adapt_clamp";
    case FlightCode::kFaultInjected: return "fault_injected";
    case FlightCode::kHealthDegraded: return "health_degraded";
    case FlightCode::kHealthRecovered: return "health_recovered";
    case FlightCode::kIncidentOpened: return "incident_opened";
    case FlightCode::kWatchdogTrip: return "watchdog_trip";
    case FlightCode::kTrustDrop: return "trust_drop";
  }
  return "?";
}

void FlightRecorder::configure(std::size_t capacity) {
  while (lock_.test_and_set(std::memory_order_acquire)) {}
  ring_.assign(capacity == 0 ? 1 : capacity, FlightEvent{});
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
  lock_.clear(std::memory_order_release);
}

void FlightRecorder::record(Severity severity, FlightSubsystem subsystem,
                            FlightCode code, std::uint64_t a0, std::uint64_t a1,
                            std::uint64_t a2, std::uint64_t a3,
                            std::uint64_t trace_id) {
  if (!enabled_.load(std::memory_order_relaxed)) return;
  FlightEvent event;
  event.ts_ns = clock_ ? clock_->now().ns() : 0;
  event.trace_id = trace_id;
  event.args[0] = a0;
  event.args[1] = a1;
  event.args[2] = a2;
  event.args[3] = a3;
  event.code = code;
  event.severity = severity;
  event.subsystem = subsystem;

  while (lock_.test_and_set(std::memory_order_acquire)) {}
  ring_[(head_ + size_) % ring_.size()] = event;
  if (size_ == ring_.size()) {
    head_ = (head_ + 1) % ring_.size();
    ++dropped_;
  } else {
    ++size_;
  }
  lock_.clear(std::memory_order_release);
}

void FlightRecorder::clear() {
  while (lock_.test_and_set(std::memory_order_acquire)) {}
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
  lock_.clear(std::memory_order_release);
}

void FlightRecorder::snapshot(std::vector<FlightEvent>& out) const {
  while (lock_.test_and_set(std::memory_order_acquire)) {}
  out.reserve(out.size() + size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  lock_.clear(std::memory_order_release);
}

std::string render_event(const FlightEvent& event) {
  std::ostringstream out;
  out << "flight " << event.ts_ns << " " << to_string(event.severity) << " "
      << to_string(event.subsystem) << " "
      << static_cast<unsigned>(event.code) << ":" << to_string(event.code);
  for (std::uint64_t arg : event.args) out << " " << arg;
  if (event.trace_id != 0) {
    char hex[24];
    std::snprintf(hex, sizeof hex, "0x%llx",
                  static_cast<unsigned long long>(event.trace_id));
    out << " trace=" << hex;
  }
  return out.str();
}

std::string FlightRecorder::render() const {
  // Event lines only — every line parses back via parse_event. Summary
  // headers (enabled state, capacity, drops) are the procfs wrapper's job.
  std::vector<FlightEvent> events;
  snapshot(events);
  std::ostringstream out;
  for (const FlightEvent& event : events) {
    out << render_event(event) << "\n";
  }
  return out.str();
}

namespace {

bool severity_of(const std::string& word, Severity& out) {
  for (Severity s : {Severity::kDebug, Severity::kInfo, Severity::kWarn,
                     Severity::kError}) {
    if (word == to_string(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

bool subsystem_of(const std::string& word, FlightSubsystem& out) {
  for (FlightSubsystem s :
       {FlightSubsystem::kKecho, FlightSubsystem::kRegistry,
        FlightSubsystem::kDmon, FlightSubsystem::kAdapt,
        FlightSubsystem::kFault, FlightSubsystem::kHealth,
        FlightSubsystem::kSmartPointer}) {
    if (word == to_string(s)) {
      out = s;
      return true;
    }
  }
  return false;
}

}  // namespace

bool parse_event(const std::string& line, FlightEvent& out) {
  std::istringstream in(line);
  std::string tag;
  if (!(in >> tag) || tag != "flight") return false;
  FlightEvent event;
  std::string severity_word, subsystem_word, code_word;
  if (!(in >> event.ts_ns >> severity_word >> subsystem_word >> code_word)) {
    return false;
  }
  if (!severity_of(severity_word, event.severity)) return false;
  if (!subsystem_of(subsystem_word, event.subsystem)) return false;
  // code renders as "<number>:<name>"; only the number is authoritative.
  const std::size_t colon = code_word.find(':');
  unsigned long code_value = 0;
  try {
    code_value = std::stoul(code_word.substr(0, colon));
  } catch (...) {
    return false;
  }
  if (code_value > 0xffff) return false;
  event.code = static_cast<FlightCode>(code_value);
  for (std::uint64_t& arg : event.args) {
    if (!(in >> arg)) return false;
  }
  std::string trace_word;
  if (in >> trace_word) {
    if (trace_word.rfind("trace=", 0) != 0) return false;
    try {
      event.trace_id = std::stoull(trace_word.substr(6), nullptr, 0);
    } catch (...) {
      return false;
    }
  }
  out = event;
  return true;
}

}  // namespace dproc::telemetry
