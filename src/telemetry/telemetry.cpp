#include "dproc/telemetry/telemetry.hpp"

#include <sstream>

#include "dproc/sim/engine.hpp"

namespace dproc::telemetry {

namespace {

std::string full_name(const std::string& subsystem, const std::string& name) {
  return subsystem + "/" + name;
}

/// trace_event strings are instrument/category names (ASCII identifiers),
/// but escape defensively so a stray quote cannot corrupt the document.
void append_json_string(std::string& out, const char* s) {
  out += '"';
  for (const char* p = s; *p != '\0'; ++p) {
    switch (*p) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += *p; break;
    }
  }
  out += '"';
}

void append_complete_event(std::string& out, const Span& span, int pid,
                           bool& first) {
  if (!first) out += ",\n";
  first = false;
  out += R"({"name":)";
  append_json_string(out, span.name);
  out += R"(,"cat":)";
  append_json_string(out, span.category);
  // Chrome trace timestamps are microseconds; keep ns precision as decimals.
  out += R"(,"ph":"X","ts":)";
  out += std::to_string(static_cast<double>(span.start_ns) / 1000.0);
  out += R"(,"dur":)";
  out +=
      std::to_string(static_cast<double>(span.end_ns - span.start_ns) / 1000.0);
  out += R"(,"pid":)";
  out += std::to_string(pid);
  out += R"(,"tid":0})";
}

}  // namespace

Registry::Registry(const sim::Engine* clock, std::size_t span_capacity)
    : clock_(clock), spans_(span_capacity == 0 ? 1 : span_capacity) {}

Counter& Registry::counter(const std::string& subsystem,
                           const std::string& name) {
  auto& slot = counters_[full_name(subsystem, name)];
  if (!slot) slot.reset(new Counter{&enabled_});
  return *slot;
}

Gauge& Registry::gauge(const std::string& subsystem, const std::string& name) {
  auto& slot = gauges_[full_name(subsystem, name)];
  if (!slot) slot.reset(new Gauge{&enabled_});
  return *slot;
}

LatencyRecorder& Registry::latency(const std::string& subsystem,
                                   const std::string& name) {
  auto& slot = latencies_[full_name(subsystem, name)];
  if (!slot) slot.reset(new LatencyRecorder{&enabled_});
  return *slot;
}

void Registry::record_span(const char* category, const char* name,
                           SimTime start, SimTime end) {
  if (!enabled_) return;
  Span& slot = spans_[(span_head_ + span_size_) % spans_.size()];
  slot = Span{category, name, start.ns(), end.ns()};
  if (span_size_ == spans_.size()) {
    span_head_ = (span_head_ + 1) % spans_.size();
    ++spans_dropped_;
  } else {
    ++span_size_;
  }
}

const Span& Registry::span(std::size_t i) const {
  return spans_[(span_head_ + i) % spans_.size()];
}

void Registry::clear_spans() {
  span_head_ = 0;
  span_size_ = 0;
  spans_dropped_ = 0;
}

std::int64_t Registry::now_ns() const {
  return clock_ ? clock_->now().ns() : 0;
}

void Registry::for_each_counter(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  for (const auto& [name, counter] : counters_) fn(name, *counter);
}

void Registry::for_each_gauge(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  for (const auto& [name, gauge] : gauges_) fn(name, *gauge);
}

void Registry::for_each_latency(
    const std::function<void(const std::string&, const LatencyRecorder&)>& fn)
    const {
  for (const auto& [name, latency] : latencies_) fn(name, *latency);
}

std::string Registry::render() const {
  std::ostringstream out;
  out << "telemetry " << (enabled_ ? "enabled" : "disabled") << "\n";
  for (const auto& [name, counter] : counters_) {
    out << "counter " << name << " " << counter->value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    out << "gauge " << name << " " << gauge->value() << "\n";
  }
  for (const auto& [name, latency] : latencies_) {
    out << "latency " << name << " count=" << latency->count();
    if (latency->count() > 0) {
      out << " mean_us=" << latency->mean_us()
          << " p50_us=" << latency->quantile_us(0.5)
          << " p95_us=" << latency->quantile_us(0.95)
          << " p99_us=" << latency->quantile_us(0.99)
          << " max_us=" << latency->quantile_us(1.0);
    }
    out << "\n";
  }
  out << "spans " << span_size_ << "/" << spans_.size() << " dropped "
      << spans_dropped_ << "\n";
  return out.str();
}

void Registry::append_chrome_trace_events(std::string& out, int pid,
                                          bool& first) const {
  for (std::size_t i = 0; i < span_size_; ++i) {
    append_complete_event(out, span(i), pid, first);
  }
}

std::string Registry::export_chrome_trace(int pid) const {
  return merge_chrome_trace({{pid, this}});
}

std::string merge_chrome_trace(
    const std::vector<std::pair<int, const Registry*>>& registries) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [pid, registry] : registries) {
    if (registry != nullptr) {
      registry->append_chrome_trace_events(out, pid, first);
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

ScopedSpan::ScopedSpan(Registry& registry, const char* category,
                       const char* name)
    : registry_(registry),
      category_(category),
      name_(name),
      start_ns_(registry.now_ns()) {}

ScopedSpan::~ScopedSpan() {
  registry_.record_span(category_, name_, SimTime{start_ns_},
                        SimTime{registry_.now_ns()});
}

}  // namespace dproc::telemetry
