#include "dproc/telemetry/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iomanip>
#include <set>
#include <sstream>

#include "dproc/sim/engine.hpp"

namespace dproc::telemetry {

namespace {

std::string full_name(const std::string& subsystem, const std::string& name) {
  return subsystem + "/" + name;
}

/// Lane reserved for flow events stitched from the hop log; span categories
/// take tids 1..N in sorted order, so the trace lane sits above them all.
constexpr int kFlowLaneTid = 0;

/// Stable per-subsystem tids for one registry's export: distinct span
/// categories sorted by name, tids assigned 1..N. The same category set
/// always yields the same lane layout, so merged traces from repeated runs
/// line up.
std::vector<std::pair<std::string, int>> category_lanes(
    const Registry& registry) {
  std::set<std::string> categories;
  for (std::size_t i = 0; i < registry.span_count(); ++i) {
    categories.insert(registry.span(i).category);
  }
  std::vector<std::pair<std::string, int>> lanes;
  lanes.reserve(categories.size());
  int tid = 1;
  for (const std::string& category : categories) {
    lanes.emplace_back(category, tid++);
  }
  return lanes;
}

int lane_of(const std::vector<std::pair<std::string, int>>& lanes,
            const char* category) {
  for (const auto& [name, tid] : lanes) {
    if (name == category) return tid;
  }
  return kFlowLaneTid;
}

/// trace_event strings are instrument/category names (ASCII identifiers),
/// but escape defensively so a stray quote cannot corrupt the document.
void append_json_string(std::string& out, const char* s) {
  out += '"';
  for (const char* p = s; *p != '\0'; ++p) {
    switch (*p) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += *p; break;
    }
  }
  out += '"';
}

void append_complete_event(std::string& out, const Span& span, int pid,
                           int tid, bool& first) {
  if (!first) out += ",\n";
  first = false;
  out += R"({"name":)";
  append_json_string(out, span.name);
  out += R"(,"cat":)";
  append_json_string(out, span.category);
  // Chrome trace timestamps are microseconds; keep ns precision as decimals.
  out += R"(,"ph":"X","ts":)";
  out += std::to_string(static_cast<double>(span.start_ns) / 1000.0);
  out += R"(,"dur":)";
  out +=
      std::to_string(static_cast<double>(span.end_ns - span.start_ns) / 1000.0);
  out += R"(,"pid":)";
  out += std::to_string(pid);
  out += R"(,"tid":)";
  out += std::to_string(tid);
  out += '}';
}

void append_thread_name_event(std::string& out, int pid, int tid,
                              const std::string& name, bool& first) {
  if (!first) out += ",\n";
  first = false;
  out += R"({"name":"thread_name","ph":"M","pid":)";
  out += std::to_string(pid);
  out += R"(,"tid":)";
  out += std::to_string(tid);
  out += R"(,"args":{"name":)";
  append_json_string(out, name.c_str());
  out += "}}";
}

/// One hop as a Chrome flow event. A publish hop starts the flow ("s"), a
/// decision hop finishes it ("f", binding to the enclosing slice), every
/// hop in between is a step ("t"); Chrome stitches them across pid lanes by
/// the shared id.
void append_flow_event(std::string& out, const Hop& hop, int pid,
                       bool& first) {
  const char* phase = "t";
  if (hop.stage == HopStage::kPublish) phase = "s";
  if (hop.stage == HopStage::kDecision) phase = "f";
  if (!first) out += ",\n";
  first = false;
  char id_hex[24];
  std::snprintf(id_hex, sizeof id_hex, "0x%llx",
                static_cast<unsigned long long>(hop.trace_id));
  out += R"({"name":"chan)";
  out += std::to_string(hop.channel);
  out += R"(","cat":"trace","ph":")";
  out += phase;
  out += R"(","id":")";
  out += id_hex;
  out += R"(","ts":)";
  out += std::to_string(static_cast<double>(hop.ts_ns) / 1000.0);
  out += R"(,"pid":)";
  out += std::to_string(pid);
  out += R"(,"tid":)";
  out += std::to_string(kFlowLaneTid);
  if (hop.stage == HopStage::kDecision) out += R"(,"bp":"e")";
  out += R"(,"args":{"stage":")";
  out += to_string(hop.stage);
  out += R"(","dur_us":)";
  out += std::to_string(static_cast<double>(hop.dur_ns) / 1000.0);
  out += "}}";
}

}  // namespace

const char* to_string(HopStage stage) {
  switch (stage) {
    case HopStage::kPublish: return "publish";
    case HopStage::kSubmit: return "submit";
    case HopStage::kArrive: return "wire";
    case HopStage::kDeliver: return "deliver";
    case HopStage::kRender: return "render";
    case HopStage::kDecision: return "decision";
  }
  return "?";
}

Registry::Registry(const sim::Engine* clock, std::size_t span_capacity,
                   std::size_t hop_capacity)
    : clock_(clock),
      spans_(span_capacity == 0 ? 1 : span_capacity),
      hops_(hop_capacity == 0 ? 1 : hop_capacity) {}

Counter& Registry::counter(const std::string& subsystem,
                           const std::string& name) {
  return counters_[counter_id(subsystem, name)];
}

Gauge& Registry::gauge(const std::string& subsystem, const std::string& name) {
  return gauges_[gauge_id(subsystem, name)];
}

LatencyRecorder& Registry::latency(const std::string& subsystem,
                                   const std::string& name) {
  return latencies_[latency_id(subsystem, name)];
}

InstrumentId Registry::counter_id(const std::string& subsystem,
                                  const std::string& name) {
  const auto [it, inserted] = counter_ids_.emplace(
      full_name(subsystem, name),
      static_cast<InstrumentId>(counters_.size()));
  if (inserted) counters_.push_back(Counter{&enabled_});
  return it->second;
}

InstrumentId Registry::gauge_id(const std::string& subsystem,
                                const std::string& name) {
  const auto [it, inserted] = gauge_ids_.emplace(
      full_name(subsystem, name), static_cast<InstrumentId>(gauges_.size()));
  if (inserted) gauges_.push_back(Gauge{&enabled_});
  return it->second;
}

InstrumentId Registry::latency_id(const std::string& subsystem,
                                  const std::string& name) {
  const auto [it, inserted] = latency_ids_.emplace(
      full_name(subsystem, name),
      static_cast<InstrumentId>(latencies_.size()));
  if (inserted) latencies_.push_back(LatencyRecorder{&enabled_});
  return it->second;
}

void Registry::record_span(const char* category, const char* name,
                           SimTime start, SimTime end) {
  if (!enabled_) return;
  Span& slot = spans_[(span_head_ + span_size_) % spans_.size()];
  slot = Span{category, name, start.ns(), end.ns()};
  if (span_size_ == spans_.size()) {
    span_head_ = (span_head_ + 1) % spans_.size();
    ++spans_dropped_;
  } else {
    ++span_size_;
  }
}

const Span& Registry::span(std::size_t i) const {
  return spans_[(span_head_ + i) % spans_.size()];
}

void Registry::clear_spans() {
  span_head_ = 0;
  span_size_ = 0;
  spans_dropped_ = 0;
}

void Registry::record_hop(const Hop& hop) {
  if (!trace_enabled_) return;
  Hop& slot = hops_[(hop_head_ + hop_size_) % hops_.size()];
  slot = hop;
  if (hop_size_ == hops_.size()) {
    hop_head_ = (hop_head_ + 1) % hops_.size();
    ++hops_dropped_;
  } else {
    ++hop_size_;
  }
}

const Hop& Registry::hop(std::size_t i) const {
  return hops_[(hop_head_ + i) % hops_.size()];
}

void Registry::clear_hops() {
  hop_head_ = 0;
  hop_size_ = 0;
  hops_dropped_ = 0;
}

std::int64_t Registry::now_ns() const {
  return clock_ ? clock_->now().ns() : 0;
}

void Registry::for_each_counter(
    const std::function<void(const std::string&, const Counter&)>& fn) const {
  for (const auto& [name, id] : counter_ids_) fn(name, counters_[id]);
}

void Registry::for_each_gauge(
    const std::function<void(const std::string&, const Gauge&)>& fn) const {
  for (const auto& [name, id] : gauge_ids_) fn(name, gauges_[id]);
}

void Registry::for_each_latency(
    const std::function<void(const std::string&, const LatencyRecorder&)>& fn)
    const {
  for (const auto& [name, id] : latency_ids_) fn(name, latencies_[id]);
}

std::string Registry::render() const {
  std::ostringstream out;
  out << "telemetry " << (enabled_ ? "enabled" : "disabled") << "\n";
  for (const auto& [name, id] : counter_ids_) {
    out << "counter " << name << " " << counters_[id].value() << "\n";
  }
  for (const auto& [name, id] : gauge_ids_) {
    out << "gauge " << name << " " << gauges_[id].value() << "\n";
  }
  for (const auto& [name, id] : latency_ids_) {
    const LatencyRecorder& latency = latencies_[id];
    out << "latency " << name << " count=" << latency.count();
    if (latency.count() > 0) {
      out << " mean_us=" << latency.mean_us()
          << " p50_us=" << latency.quantile_us(0.5)
          << " p95_us=" << latency.quantile_us(0.95)
          << " p99_us=" << latency.quantile_us(0.99)
          << " max_us=" << latency.quantile_us(1.0);
    }
    out << "\n";
  }
  out << "spans " << span_size_ << "/" << spans_.size() << " dropped "
      << spans_dropped_ << "\n";
  out << "hops " << hop_size_ << "/" << hops_.size() << " dropped "
      << hops_dropped_ << " tracing "
      << (trace_enabled_ ? "enabled" : "disabled") << "\n";
  return out.str();
}

void Registry::append_chrome_trace_events(std::string& out, int pid,
                                          bool& first) const {
  const std::vector<std::pair<std::string, int>> lanes = category_lanes(*this);
  for (const auto& [category, tid] : lanes) {
    append_thread_name_event(out, pid, tid, category, first);
  }
  if (hop_size_ > 0) {
    append_thread_name_event(out, pid, kFlowLaneTid, "trace", first);
  }
  for (std::size_t i = 0; i < span_size_; ++i) {
    const Span& s = span(i);
    append_complete_event(out, s, pid, lane_of(lanes, s.category), first);
  }
  for (std::size_t i = 0; i < hop_size_; ++i) {
    append_flow_event(out, hop(i), pid, first);
  }
}

std::string Registry::export_chrome_trace(int pid) const {
  return merge_chrome_trace({{pid, this}});
}

std::string merge_chrome_trace(
    const std::vector<std::pair<int, const Registry*>>& registries) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [pid, registry] : registries) {
    if (registry != nullptr) {
      registry->append_chrome_trace_events(out, pid, first);
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::vector<HopBreakdownRow> hop_breakdown(
    const std::vector<const Registry*>& registries) {
  // Keyed (channel, stage); a map keeps the output sorted without a second
  // pass. This runs on snapshot/report paths, never in the event loop.
  std::map<std::pair<std::uint32_t, std::uint8_t>, SampleSet> cells;
  for (const Registry* registry : registries) {
    if (registry == nullptr) continue;
    for (std::size_t i = 0; i < registry->hop_count(); ++i) {
      const Hop& hop = registry->hop(i);
      cells[{hop.channel, static_cast<std::uint8_t>(hop.stage)}].add(
          static_cast<double>(hop.dur_ns) / 1000.0);
    }
  }
  std::vector<HopBreakdownRow> rows;
  rows.reserve(cells.size());
  for (auto& [key, samples] : cells) {
    HopBreakdownRow row;
    row.channel = key.first;
    row.stage = static_cast<HopStage>(key.second);
    row.durations_us = std::move(samples);
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<std::pair<Hop, int>> collect_trace(
    const std::vector<std::pair<int, const Registry*>>& registries,
    std::uint64_t trace_id) {
  std::vector<std::pair<Hop, int>> chain;
  for (const auto& [pid, registry] : registries) {
    if (registry == nullptr) continue;
    for (std::size_t i = 0; i < registry->hop_count(); ++i) {
      const Hop& hop = registry->hop(i);
      if (hop.trace_id == trace_id) chain.emplace_back(hop, pid);
    }
  }
  std::sort(chain.begin(), chain.end(),
            [](const std::pair<Hop, int>& a, const std::pair<Hop, int>& b) {
              if (a.first.stage != b.first.stage) {
                return a.first.stage < b.first.stage;
              }
              return a.first.ts_ns < b.first.ts_ns;
            });
  return chain;
}

std::string render_hop_breakdown(
    const std::vector<HopBreakdownRow>& rows,
    const std::function<std::string(std::uint32_t)>& channel_name) {
  std::ostringstream out;
  out << std::left << std::setw(18) << "channel" << std::setw(10) << "stage"
      << std::right << std::setw(8) << "count" << std::setw(12) << "mean_us"
      << std::setw(12) << "p50_us" << std::setw(12) << "p99_us"
      << std::setw(12) << "max_us" << "\n";
  for (const HopBreakdownRow& row : rows) {
    std::string name;
    if (channel_name) name = channel_name(row.channel);
    if (name.empty()) name = "chan" + std::to_string(row.channel);
    out << std::left << std::setw(18) << name << std::setw(10)
        << to_string(row.stage) << std::right << std::setw(8)
        << row.durations_us.count();
    const SampleSet& s = row.durations_us;
    out << std::fixed << std::setprecision(1) << std::setw(12) << s.mean()
        << std::setw(12) << s.quantile(0.5) << std::setw(12)
        << s.quantile(0.99) << std::setw(12) << s.quantile(1.0)
        << std::defaultfloat << std::setprecision(6);
    out << "\n";
  }
  return out.str();
}

ScopedSpan::ScopedSpan(Registry& registry, const char* category,
                       const char* name)
    : registry_(registry),
      category_(category),
      name_(name),
      start_ns_(registry.now_ns()) {}

ScopedSpan::~ScopedSpan() {
  registry_.record_span(category_, name_, SimTime{start_ns_},
                        SimTime{registry_.now_ns()});
}

}  // namespace dproc::telemetry
